//! Scheduler stress: many more tasks than workers, uneven task costs, and
//! repeated batches on one pool. CI runs this under `RUST_TEST_THREADS=1`
//! as a sanitizer-style smoke job so scheduler races fail loudly.

use std::sync::atomic::{AtomicU64, Ordering};
use sw_pool::ThreadPool;

/// The ISSUE's headline stress shape: 64 tasks × 8 workers (9 jobs = the
/// caller + 8 spawned workers), with deliberately skewed task costs so the
/// fast threads must steal the stragglers' queued work.
#[test]
fn stress_64_tasks_on_8_workers() {
    let pool = ThreadPool::new(9);
    assert_eq!(pool.workers(), 8);
    let total = AtomicU64::new(0);
    for round in 0..10u64 {
        let out = pool.par_map_indexed(64, |i| {
            // Skewed cost: item 0 spins the longest, later items are cheap.
            let spin = (64 - i as u64) * 1_000;
            let mut acc = round;
            for k in 0..spin {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            total.fetch_add(1, Ordering::Relaxed);
            (i as u64) ^ (acc & 1)
        });
        assert_eq!(out.len(), 64, "round {round} lost items");
    }
    assert_eq!(total.load(Ordering::Relaxed), 640);
    let stats = pool.stats();
    assert_eq!(stats.items, 640);
    assert_eq!(stats.batches, 10);
    assert!(
        stats.queue_depth_high_water >= 1,
        "tickets never reached the queues"
    );
}

/// Many small batches in a row reuse the same workers without leaking
/// queued tickets between batches.
#[test]
fn repeated_small_batches_stay_clean() {
    let pool = ThreadPool::new(4);
    for len in [1usize, 2, 3, 5, 8, 13, 21, 34] {
        let out = pool.par_map_indexed(len, |i| i + 1);
        assert_eq!(out, (1..=len).collect::<Vec<_>>());
    }
    let stats = pool.stats();
    assert_eq!(stats.items, 1 + 2 + 3 + 5 + 8 + 13 + 21 + 34);
}

//! Scheduler-independent properties of the work-stealing pool: exactly-once
//! execution, input-order results, panic propagation, and nested batches
//! that never deadlock — for arbitrary pool sizes and batch shapes.

use proptest::prelude::*;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use sw_pool::ThreadPool;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every item is processed exactly once, whatever the jobs/len mix.
    #[test]
    fn every_item_processed_exactly_once(jobs in 1usize..9, len in 0usize..200) {
        let pool = ThreadPool::new(jobs);
        let hits: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
        pool.par_map_indexed(len, |i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        for (i, h) in hits.iter().enumerate() {
            prop_assert_eq!(h.load(Ordering::SeqCst), 1, "item {} ran a wrong number of times", i);
        }
        prop_assert_eq!(pool.stats().items, len as u64);
    }

    /// Collected output preserves the input order regardless of which
    /// thread ran which item.
    #[test]
    fn output_preserves_input_order(jobs in 1usize..9, len in 0usize..200, salt in any::<u32>()) {
        let pool = ThreadPool::new(jobs);
        let items: Vec<u64> = (0..len as u64).map(|i| i ^ u64::from(salt)).collect();
        let out = pool.par_map(&items, |&x| x.wrapping_mul(3));
        let expect: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(3)).collect();
        prop_assert_eq!(out, expect);
    }

    /// A panicking item reaches the caller as a panic (never a silent
    /// drop), and the pool keeps working afterwards.
    #[test]
    fn worker_panics_propagate(jobs in 1usize..9, len in 1usize..64, which in 0usize..64) {
        let victim = which % len;
        let pool = ThreadPool::new(jobs);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.par_map_indexed(len, |i| {
                if i == victim {
                    panic!("deliberate failure in item {i}");
                }
                i
            })
        }));
        prop_assert!(result.is_err(), "panic in item {} was swallowed", victim);
        // The batch drained fully before re-raising: nothing is stuck.
        let after = pool.par_map_indexed(len, |i| i * 2);
        prop_assert_eq!(after, (0..len).map(|i| i * 2).collect::<Vec<_>>());
    }

    /// Nested `par_map` calls on the same pool complete (the caller helps
    /// drain its own batch, so blocking on a child cannot starve it).
    #[test]
    fn nested_batches_terminate(jobs in 1usize..5, outer in 1usize..9, inner in 1usize..9) {
        let pool = ThreadPool::new(jobs);
        let pool = &pool;
        let out = pool.par_map_indexed(outer, |i| {
            pool.par_map_indexed(inner, move |j| i * inner + j)
                .into_iter()
                .sum::<usize>()
        });
        let expect: Vec<usize> = (0..outer)
            .map(|i| (0..inner).map(|j| i * inner + j).sum())
            .collect();
        prop_assert_eq!(out, expect);
    }
}

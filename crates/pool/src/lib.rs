//! A small `std::thread` work-stealing pool.
//!
//! This crate backs the workspace's parallel iterators (the vendored
//! `rayon` facade) and the halo-sharded frame runner in `sw-core`. It is
//! deliberately tiny: one global injector queue plus one deque per worker,
//! condvar parking, and a *caller-helps* batch primitive
//! ([`ThreadPool::par_map_indexed`]) that guarantees forward progress even
//! with zero workers — the calling thread claims and runs items itself, so
//! nested parallel calls can never deadlock. A fire-and-forget
//! [`ThreadPool::spawn`] rides the same queues for detached closures (the
//! serving reactor's dispatch primitive); with zero workers it degenerates
//! to inline execution on the caller.
//!
//! # Scheduling model
//!
//! A batch of `len` items is represented by a single atomic claim counter.
//! Up to `min(len, workers)` *tickets* are pushed onto the queues; each
//! ticket (and the caller) loops `fetch_add`-claiming indices until the
//! counter passes `len`. Workers prefer their own deque (LIFO), then the
//! injector, then steal from sibling deques (FIFO) — steals are counted in
//! [`PoolStats`]. Tickets pushed from inside a worker (nested batches) go
//! to that worker's own deque so siblings can steal them.
//!
//! # Determinism
//!
//! `par_map_indexed` writes the result of item `i` into slot `i`, so the
//! collected output order is always the input order, independent of how
//! the items were interleaved across threads. Panics in items are caught
//! and re-raised on the calling thread after the batch drains.
//!
//! # Pool sizing
//!
//! `jobs` counts *participating threads*: the calling thread plus
//! `jobs − 1` workers. `jobs = 1` therefore means fully sequential
//! execution on the caller with no threads spawned. The process-wide
//! [`global`] pool is sized from `SWC_JOBS` or `available_parallelism`
//! (see [`default_jobs`]) unless [`configure_global`] ran first.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;
use std::time::Duration;

/// How long an idle worker sleeps before re-polling the queues. A missed
/// wakeup therefore costs at most one interval; correctness never depends
/// on `notify` delivery.
const PARK_INTERVAL: Duration = Duration::from_millis(10);

/// Work that can be driven by claiming item indices.
///
/// # Safety contract (internal)
///
/// Implementations are only ever dereferenced through a [`WorkPtr`] after a
/// successful index claim (`i < len`), and the owning batch cannot be
/// dropped until every claimed index has called `finish_one` — see
/// [`Ticket::run`].
trait IndexWork: Sync {
    fn run_index(&self, i: usize);
}

/// Type- and lifetime-erased pointer to a stack-borrowed [`IndexWork`].
///
/// Safety: the pointee lives on the stack frame of `par_map_indexed`,
/// which does not return until the batch counter proves no ticket will
/// dereference this pointer again (every index claimed → every claim
/// finished). Stale tickets left on a queue after a batch completes never
/// dereference: their first claim already yields `i >= len`.
#[derive(Clone, Copy)]
struct WorkPtr(*const (dyn IndexWork + 'static));

// Safety: see `WorkPtr` — the pointee is `Sync` and outlives every deref.
unsafe impl Send for WorkPtr {}
unsafe impl Sync for WorkPtr {}

/// Shared completion state of one batch.
struct BatchState {
    /// Next index to claim; claims at or past `len` are no-ops.
    next: AtomicUsize,
    len: usize,
    done: Mutex<DoneState>,
    cv: Condvar,
}

struct DoneState {
    completed: usize,
    /// First captured panic payload (subsequent ones are dropped).
    panic: Option<Box<dyn Any + Send + 'static>>,
}

impl BatchState {
    fn new(len: usize) -> Self {
        Self {
            next: AtomicUsize::new(0),
            len,
            done: Mutex::new(DoneState {
                completed: 0,
                panic: None,
            }),
            cv: Condvar::new(),
        }
    }

    fn record_panic(&self, payload: Box<dyn Any + Send + 'static>) {
        let mut d = self.done.lock().expect("batch lock");
        d.panic.get_or_insert(payload);
    }

    fn finish_one(&self) {
        let mut d = self.done.lock().expect("batch lock");
        d.completed += 1;
        if d.completed == self.len {
            self.cv.notify_all();
        }
    }
}

/// One borrowed batch: the mapping function plus one result slot per item.
struct Batch<'f, R> {
    func: &'f (dyn Fn(usize) -> R + Sync),
    slots: Vec<Mutex<Option<R>>>,
    state: Arc<BatchState>,
}

impl<R: Send> IndexWork for Batch<'_, R> {
    fn run_index(&self, i: usize) {
        match panic::catch_unwind(AssertUnwindSafe(|| (self.func)(i))) {
            Ok(v) => *self.slots[i].lock().expect("slot lock") = Some(v),
            Err(payload) => self.state.record_panic(payload),
        }
        self.state.finish_one();
    }
}

/// A queued invitation to help drain one batch.
struct Ticket {
    state: Arc<BatchState>,
    work: WorkPtr,
}

/// One unit of queued work: either a batch ticket (caller-helps, borrowed
/// from a blocked `par_map_indexed` frame) or a detached owned closure
/// submitted via [`ThreadPool::spawn`].
enum Task {
    Batch(Ticket),
    Detached(Box<dyn FnOnce() + Send + 'static>),
}

impl Ticket {
    /// Claim-and-run items until the batch counter is exhausted.
    fn run(&self, shared: &Shared, is_worker: bool) {
        loop {
            let i = self.state.next.fetch_add(1, Ordering::SeqCst);
            if i >= self.state.len {
                return;
            }
            shared.stats.items.fetch_add(1, Ordering::Relaxed);
            if is_worker {
                shared.stats.worker_items.fetch_add(1, Ordering::Relaxed);
            }
            // Safety: `i < len`, so the batch owner is still blocked in
            // `par_map_indexed` waiting for this index to finish — the
            // pointee is alive (see `WorkPtr`).
            unsafe { (*self.work.0).run_index(i) };
        }
    }
}

#[derive(Default)]
struct StatsCells {
    batches: AtomicU64,
    items: AtomicU64,
    worker_items: AtomicU64,
    steals: AtomicU64,
    injected: AtomicU64,
    local_pushes: AtomicU64,
    queue_depth_high_water: AtomicU64,
    detached: AtomicU64,
    detached_panics: AtomicU64,
}

/// A point-in-time snapshot of a pool's scheduling counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Participating threads (caller + workers).
    pub jobs: usize,
    /// Spawned worker threads (`jobs − 1`).
    pub workers: usize,
    /// Batches executed via [`ThreadPool::par_map_indexed`].
    pub batches: u64,
    /// Items executed, on any thread.
    pub items: u64,
    /// Items executed on worker threads (the rest ran on callers).
    pub worker_items: u64,
    /// Tickets taken from a *sibling* worker's deque.
    pub steals: u64,
    /// Tickets pushed onto the global injector (from non-worker threads).
    pub injected: u64,
    /// Tickets pushed onto a worker's own deque (nested batches).
    pub local_pushes: u64,
    /// High-water mark of tickets simultaneously queued.
    pub queue_depth_high_water: u64,
    /// Detached closures executed via [`ThreadPool::spawn`].
    pub detached: u64,
    /// Detached closures that panicked (caught; the worker survives).
    pub detached_panics: u64,
}

struct Shared {
    /// Identity used to match `WORKER` thread-locals to this pool.
    pool_id: u64,
    injector: Mutex<VecDeque<Task>>,
    locals: Vec<Mutex<VecDeque<Task>>>,
    /// Tickets currently queued anywhere (injector + locals).
    pending: AtomicUsize,
    sleep: Mutex<()>,
    wake: Condvar,
    shutdown: AtomicBool,
    stats: StatsCells,
}

thread_local! {
    /// `(pool_id, worker_index)` when the current thread is a pool worker.
    static WORKER: Cell<Option<(u64, usize)>> = const { Cell::new(None) };
}

static POOL_IDS: AtomicU64 = AtomicU64::new(1);

impl Shared {
    /// The current thread's worker index *in this pool*, if any.
    fn worker_index(&self) -> Option<usize> {
        WORKER
            .get()
            .and_then(|(id, idx)| (id == self.pool_id).then_some(idx))
    }

    fn push(&self, task: Task) {
        match self.worker_index() {
            Some(idx) => {
                self.locals[idx]
                    .lock()
                    .expect("local deque lock")
                    .push_back(task);
                self.stats.local_pushes.fetch_add(1, Ordering::Relaxed);
            }
            None => {
                self.injector.lock().expect("injector lock").push_back(task);
                self.stats.injected.fetch_add(1, Ordering::Relaxed);
            }
        }
        let depth = self.pending.fetch_add(1, Ordering::SeqCst) as u64 + 1;
        self.stats
            .queue_depth_high_water
            .fetch_max(depth, Ordering::Relaxed);
        let _guard = self.sleep.lock().expect("sleep lock");
        self.wake.notify_all();
    }

    /// Pop a task: own deque first (LIFO), then the injector, then steal
    /// from siblings (FIFO).
    fn take(&self, me: Option<usize>) -> Option<Task> {
        if let Some(m) = me {
            if let Some(t) = self.locals[m].lock().expect("local deque lock").pop_back() {
                self.pending.fetch_sub(1, Ordering::SeqCst);
                return Some(t);
            }
        }
        if let Some(t) = self.injector.lock().expect("injector lock").pop_front() {
            self.pending.fetch_sub(1, Ordering::SeqCst);
            return Some(t);
        }
        for (j, deque) in self.locals.iter().enumerate() {
            if Some(j) == me {
                continue;
            }
            if let Some(t) = deque.lock().expect("sibling deque lock").pop_front() {
                self.pending.fetch_sub(1, Ordering::SeqCst);
                self.stats.steals.fetch_add(1, Ordering::Relaxed);
                return Some(t);
            }
        }
        None
    }

    /// Execute one dequeued task. Detached closures run under
    /// `catch_unwind` so a panicking submission can never kill a worker.
    fn run_task(&self, task: Task, is_worker: bool) {
        match task {
            Task::Batch(ticket) => ticket.run(self, is_worker),
            Task::Detached(f) => {
                self.stats.detached.fetch_add(1, Ordering::Relaxed);
                if panic::catch_unwind(AssertUnwindSafe(f)).is_err() {
                    self.stats.detached_panics.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

fn worker_main(shared: Arc<Shared>, me: usize) {
    WORKER.set(Some((shared.pool_id, me)));
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if let Some(task) = shared.take(Some(me)) {
            shared.run_task(task, true);
            continue;
        }
        let guard = shared.sleep.lock().expect("sleep lock");
        if shared.shutdown.load(Ordering::SeqCst) || shared.pending.load(Ordering::SeqCst) > 0 {
            continue;
        }
        // Timed park: even a lost notification only costs PARK_INTERVAL.
        let _ = shared
            .wake
            .wait_timeout(guard, PARK_INTERVAL)
            .expect("sleep lock");
    }
}

/// A fixed-size work-stealing thread pool.
///
/// Dropping the pool shuts the workers down and joins them. Batches in
/// flight cannot outlive the pool: `par_map_indexed` borrows `self` for
/// its whole duration.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<thread::JoinHandle<()>>,
    jobs: usize,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("jobs", &self.jobs)
            .finish()
    }
}

impl ThreadPool {
    /// Build a pool with `jobs` participating threads (the caller plus
    /// `jobs − 1` spawned workers).
    ///
    /// # Panics
    ///
    /// Panics if `jobs == 0` — zero threads cannot make progress. CLI
    /// layers should validate with [`parse_jobs`] first.
    pub fn new(jobs: usize) -> Self {
        assert!(jobs >= 1, "a thread pool needs at least 1 job");
        let workers = jobs - 1;
        let shared = Arc::new(Shared {
            pool_id: POOL_IDS.fetch_add(1, Ordering::Relaxed),
            injector: Mutex::new(VecDeque::new()),
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            stats: StatsCells::default(),
        });
        let handles = (0..workers)
            .map(|me| {
                let shared = shared.clone();
                thread::Builder::new()
                    .name(format!("sw-pool-{me}"))
                    .spawn(move || worker_main(shared, me))
                    .expect("spawn pool worker")
            })
            .collect();
        Self {
            shared,
            handles,
            jobs,
        }
    }

    /// Participating threads (caller + workers).
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Spawned worker threads (`jobs() − 1`).
    pub fn workers(&self) -> usize {
        self.jobs - 1
    }

    /// Snapshot the scheduling counters.
    pub fn stats(&self) -> PoolStats {
        let s = &self.shared.stats;
        PoolStats {
            jobs: self.jobs,
            workers: self.jobs - 1,
            batches: s.batches.load(Ordering::Relaxed),
            items: s.items.load(Ordering::Relaxed),
            worker_items: s.worker_items.load(Ordering::Relaxed),
            steals: s.steals.load(Ordering::Relaxed),
            injected: s.injected.load(Ordering::Relaxed),
            local_pushes: s.local_pushes.load(Ordering::Relaxed),
            queue_depth_high_water: s.queue_depth_high_water.load(Ordering::Relaxed),
            detached: s.detached.load(Ordering::Relaxed),
            detached_panics: s.detached_panics.load(Ordering::Relaxed),
        }
    }

    /// Submit a detached closure for execution on a worker thread.
    ///
    /// Unlike [`par_map_indexed`](Self::par_map_indexed) this does not
    /// block: the closure is queued and the call returns immediately. With
    /// zero workers (`jobs == 1`) the closure runs inline on the caller —
    /// there is no other thread that could ever drain it. Panics inside
    /// the closure are caught and counted in [`PoolStats::detached_panics`];
    /// they never poison the pool or kill a worker.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'static,
    {
        if self.workers() == 0 {
            self.shared.run_task(Task::Detached(Box::new(f)), false);
            return;
        }
        self.shared.push(Task::Detached(Box::new(f)));
    }

    /// Run `f(0..len)` across the pool, returning results in index order.
    ///
    /// The calling thread participates (it claims items like any worker),
    /// so this never deadlocks — including when called from inside another
    /// `par_map_indexed` item, or on a pool with zero workers, where it
    /// simply degenerates to a sequential loop.
    ///
    /// # Panics
    ///
    /// If any item panics, the first payload is re-raised on the calling
    /// thread once the whole batch has drained.
    pub fn par_map_indexed<R, F>(&self, len: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if len == 0 {
            return Vec::new();
        }
        self.shared.stats.batches.fetch_add(1, Ordering::Relaxed);
        let state = Arc::new(BatchState::new(len));
        let mut slots = Vec::with_capacity(len);
        for _ in 0..len {
            slots.push(Mutex::new(None));
        }
        let batch = Batch {
            func: &f,
            slots,
            state: state.clone(),
        };
        // Erase the batch's lifetime so tickets can sit on the queues.
        // Safety: justified at `WorkPtr` — this frame blocks below until
        // no live claim can dereference the pointer again.
        let work = {
            let obj: &(dyn IndexWork + '_) = &batch;
            #[allow(clippy::missing_transmute_annotations)]
            WorkPtr(unsafe { std::mem::transmute(obj as *const (dyn IndexWork + '_)) })
        };
        // One ticket per worker that could usefully help.
        for _ in 0..self.workers().min(len) {
            self.shared.push(Task::Batch(Ticket {
                state: state.clone(),
                work,
            }));
        }
        // The caller helps until the claim counter is exhausted…
        Ticket {
            state: state.clone(),
            work,
        }
        .run(&self.shared, false);
        // …then waits for items claimed by workers to finish.
        let mut done = state.done.lock().expect("batch lock");
        while done.completed < state.len {
            let (guard, _) = state
                .cv
                .wait_timeout(done, PARK_INTERVAL)
                .expect("batch lock");
            done = guard;
        }
        let panicked = done.panic.take();
        drop(done);
        let Batch { slots, .. } = batch;
        if let Some(payload) = panicked {
            panic::resume_unwind(payload);
        }
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("slot lock")
                    .expect("every index claimed exactly once")
            })
            .collect()
    }

    /// Map `f` over a slice on the pool, preserving input order.
    pub fn par_map<'a, T, R, F>(&self, items: &'a [T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        self.par_map_indexed(items.len(), |i| f(&items[i]))
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let _guard = self.shared.sleep.lock().expect("sleep lock");
            self.shared.wake.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Parse a user-supplied `--jobs` value with friendly errors.
///
/// Rejects `0` (zero threads cannot make progress) and anything that is
/// not a positive integer.
pub fn parse_jobs(s: &str) -> Result<usize, String> {
    match s.trim().parse::<usize>() {
        Ok(0) => Err("--jobs must be at least 1 (0 threads cannot make progress)".to_string()),
        Ok(n) => Ok(n),
        Err(_) => Err(format!(
            "invalid --jobs value '{s}': expected a positive integer"
        )),
    }
}

/// The default pool size: `SWC_JOBS` when set to a positive integer,
/// otherwise [`std::thread::available_parallelism`] (1 if unknown).
pub fn default_jobs() -> usize {
    if let Ok(v) = std::env::var("SWC_JOBS") {
        if let Ok(n) = parse_jobs(&v) {
            return n;
        }
        eprintln!("warning: ignoring invalid SWC_JOBS='{v}' (expected a positive integer)");
    }
    thread::available_parallelism().map_or(1, |n| n.get())
}

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

/// The process-wide pool used by the `rayon` facade's `par_iter`.
///
/// First use initialises it with [`default_jobs`] threads unless
/// [`configure_global`] ran earlier.
pub fn global() -> &'static ThreadPool {
    GLOBAL.get_or_init(|| ThreadPool::new(default_jobs()))
}

/// Size the global pool explicitly (e.g. from a `--jobs` flag) before its
/// first use.
///
/// Succeeds if the pool is not yet initialised, or is already initialised
/// with the same size; errs if a differently-sized global pool exists.
pub fn configure_global(jobs: usize) -> Result<(), String> {
    assert!(jobs >= 1, "a thread pool needs at least 1 job");
    let mut fresh = false;
    let pool = GLOBAL.get_or_init(|| {
        fresh = true;
        ThreadPool::new(jobs)
    });
    if !fresh && pool.jobs() != jobs {
        return Err(format!(
            "global pool already initialised with {} jobs (requested {jobs})",
            pool.jobs()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;
    use std::time::Instant;

    #[test]
    fn zero_items_is_a_noop() {
        let pool = ThreadPool::new(2);
        let out: Vec<u32> = pool.par_map_indexed(0, |_| unreachable!("no items"));
        assert!(out.is_empty());
    }

    #[test]
    fn results_come_back_in_input_order() {
        let pool = ThreadPool::new(4);
        let items: Vec<usize> = (0..257).collect();
        let out = pool.par_map(&items, |&x| x * 3);
        assert_eq!(out, (0..257).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn single_job_pool_runs_everything_on_the_caller() {
        let pool = ThreadPool::new(1);
        let caller = thread::current().id();
        let out = pool.par_map_indexed(16, |i| (i, thread::current().id()));
        assert!(out.iter().all(|&(_, id)| id == caller));
        let stats = pool.stats();
        assert_eq!(stats.workers, 0);
        assert_eq!(stats.items, 16);
        assert_eq!(stats.worker_items, 0);
        assert_eq!(stats.injected, 0, "no tickets queued with no workers");
    }

    #[test]
    fn each_item_runs_exactly_once() {
        let pool = ThreadPool::new(4);
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        pool.par_map_indexed(100, |i| hits[i].fetch_add(1, Ordering::SeqCst));
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
        assert_eq!(pool.stats().items, 100);
    }

    /// The acceptance-criteria assertion: a parallel batch demonstrably
    /// runs on more than one OS thread. Two items rendezvous — each blocks
    /// until both have *started*, which is only possible if two distinct
    /// threads are executing them concurrently.
    #[test]
    fn batch_uses_more_than_one_os_thread() {
        let pool = ThreadPool::new(2);
        let started = AtomicUsize::new(0);
        let ids = pool.par_map_indexed(2, |i| {
            started.fetch_add(1, Ordering::SeqCst);
            let deadline = Instant::now() + Duration::from_secs(20);
            while started.load(Ordering::SeqCst) < 2 {
                assert!(
                    Instant::now() < deadline,
                    "item {i} waited 20s for a second thread: pool is sequential"
                );
                thread::yield_now();
            }
            thread::current().id()
        });
        assert_ne!(ids[0], ids[1], "both items ran on the same OS thread");
        assert!(pool.stats().worker_items >= 1);
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let pool = ThreadPool::new(3);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.par_map_indexed(8, |i| {
                if i == 5 {
                    panic!("boom at {i}");
                }
                i
            })
        }));
        let payload = result.expect_err("panic must cross par_map_indexed");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("boom at 5"), "got payload message {msg:?}");
        // The pool survives a panicked batch.
        assert_eq!(pool.par_map_indexed(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn nested_batches_do_not_deadlock() {
        let pool = ThreadPool::new(3);
        let pool = &pool;
        let out = pool.par_map_indexed(6, |i| {
            let inner = pool.par_map_indexed(5, move |j| i * 10 + j);
            inner.into_iter().sum::<usize>()
        });
        let expect: Vec<usize> = (0..6).map(|i| (0..5).map(|j| i * 10 + j).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn deeply_nested_on_a_workerless_pool_still_progresses() {
        let pool = ThreadPool::new(1);
        let pool = &pool;
        let out = pool.par_map_indexed(2, |i| {
            pool.par_map_indexed(2, move |j| {
                pool.par_map_indexed(2, move |k| i * 100 + j * 10 + k)
                    .into_iter()
                    .sum::<usize>()
            })
            .into_iter()
            .sum::<usize>()
        });
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn distinct_worker_threads_are_spawned() {
        // With enough rendezvousing items, a 4-job pool must show >= 2
        // distinct thread ids even on a single hardware core.
        let pool = ThreadPool::new(4);
        let started = AtomicUsize::new(0);
        let ids = pool.par_map_indexed(4, |_| {
            started.fetch_add(1, Ordering::SeqCst);
            let deadline = Instant::now() + Duration::from_secs(20);
            while started.load(Ordering::SeqCst) < 2 {
                assert!(Instant::now() < deadline, "no concurrency after 20s");
                thread::yield_now();
            }
            thread::current().id()
        });
        let distinct: HashSet<_> = ids.into_iter().collect();
        assert!(distinct.len() >= 2, "expected >= 2 OS threads");
    }

    #[test]
    fn parse_jobs_accepts_positive_integers() {
        assert_eq!(parse_jobs("1"), Ok(1));
        assert_eq!(parse_jobs(" 8 "), Ok(8));
    }

    #[test]
    fn parse_jobs_rejects_zero_and_garbage() {
        assert!(parse_jobs("0").unwrap_err().contains("at least 1"));
        assert!(parse_jobs("four").unwrap_err().contains("positive integer"));
        assert!(parse_jobs("").unwrap_err().contains("positive integer"));
        assert!(parse_jobs("-2").unwrap_err().contains("positive integer"));
    }

    #[test]
    fn queue_depth_high_water_is_recorded() {
        let pool = ThreadPool::new(4);
        pool.par_map_indexed(64, |i| i * i);
        let stats = pool.stats();
        assert!(stats.queue_depth_high_water >= 1);
        assert!(stats.queue_depth_high_water <= 64);
        assert_eq!(stats.batches, 1);
    }

    #[test]
    fn spawn_runs_detached_work() {
        let pool = ThreadPool::new(2);
        let (tx, rx) = std::sync::mpsc::channel();
        for i in 0..8usize {
            let tx = tx.clone();
            pool.spawn(move || tx.send(i).expect("receiver alive"));
        }
        let mut got: Vec<usize> = (0..8)
            .map(|_| {
                rx.recv_timeout(Duration::from_secs(10))
                    .expect("detached task ran")
            })
            .collect();
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
        assert_eq!(pool.stats().detached, 8);
        assert_eq!(pool.stats().detached_panics, 0);
    }

    #[test]
    fn spawn_runs_inline_with_zero_workers() {
        let pool = ThreadPool::new(1);
        let caller = thread::current().id();
        let (tx, rx) = std::sync::mpsc::channel();
        pool.spawn(move || tx.send(thread::current().id()).expect("receiver alive"));
        // Inline execution: the result is already there, on the caller.
        assert_eq!(rx.try_recv().expect("ran inline"), caller);
        assert_eq!(pool.stats().detached, 1);
    }

    #[test]
    fn spawn_panic_is_contained() {
        let pool = ThreadPool::new(2);
        pool.spawn(|| panic!("detached boom"));
        let deadline = Instant::now() + Duration::from_secs(10);
        while pool.stats().detached_panics == 0 {
            assert!(Instant::now() < deadline, "panic never recorded");
            thread::yield_now();
        }
        // The worker survives and the pool stays usable.
        assert_eq!(pool.par_map_indexed(3, |i| i), vec![0, 1, 2]);
        assert_eq!(pool.stats().detached_panics, 1);
    }

    #[test]
    fn drop_joins_workers_quickly() {
        let pool = ThreadPool::new(8);
        pool.par_map_indexed(16, |i| i);
        let t0 = Instant::now();
        drop(pool);
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "drop should join promptly"
        );
    }
}

//! Wall-clock span timers.

use crate::metrics::Counter;
use std::time::Instant;

/// A scoped wall-clock timer. On drop, an active span adds its elapsed
/// nanoseconds to one counter and bumps a call counter; a no-op span does
/// nothing. Obtain spans from [`crate::TelemetryHandle::span`].
#[derive(Debug)]
pub struct Span {
    started: Option<(Instant, Counter, Counter)>,
}

impl Span {
    /// A span that records nothing on drop.
    pub fn noop() -> Self {
        Self { started: None }
    }

    /// Start timing now; on drop, `ns_total` gains the elapsed nanoseconds
    /// and `calls` gains one.
    pub fn started(ns_total: Counter, calls: Counter) -> Self {
        Self {
            started: Some((Instant::now(), ns_total, calls)),
        }
    }

    /// Whether this span will record on drop.
    pub fn is_active(&self) -> bool {
        self.started.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((t0, ns_total, calls)) = self.started.take() {
            let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            ns_total.add(ns);
            calls.inc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    #[test]
    fn noop_span_is_inactive() {
        assert!(!Span::noop().is_active());
    }

    #[test]
    fn active_span_records_on_drop() {
        let r = MetricsRegistry::new();
        {
            let _s = Span::started(r.counter("w.ns_total"), r.counter("w.calls"));
            assert!(_s.is_active());
        }
        assert_eq!(r.counter("w.calls").get(), 1);
    }
}

//! Observability substrate for the sliding-window reproduction.
//!
//! The paper's whole evaluation is *measured internals* — NBits widths,
//! packed-stream sizes, FIFO occupancy, cycles per pixel. This crate gives
//! every layer of the stack one way to surface those signals:
//!
//! * [`MetricsRegistry`] — named [`Counter`]s, [`Gauge`]s and fixed-bucket
//!   [`Histogram`]s with atomic backends, safe to share across threads.
//! * [`Span`] — lightweight wall-clock timers feeding `<name>.ns_total` /
//!   `<name>.calls` counter pairs.
//! * [`SpanProfiler`] / [`ProfileSpan`] — hierarchical spans with parent /
//!   child nesting on a thread-local stack, self-time vs child-time
//!   attribution, log₂-bucketed duration percentiles, and a flame-style
//!   self-time table ([`ProfileSnapshot::flame_table`]).
//! * [`TraceEvent`] / [`TraceRing`] — a bounded cycle-domain event sink
//!   (window shifts, IWT decompositions, pack/unpack, FIFO push/pop,
//!   threshold changes) with a JSON-lines writer.
//! * [`Report`] — a point-in-time snapshot exportable as a human-readable
//!   table, JSON (round-trippable via [`Report::from_json`]), or Prometheus
//!   text exposition.
//!
//! The entry point is [`TelemetryHandle`]: a cheaply clonable handle that is
//! either *enabled* (backed by a shared registry + trace ring) or *disabled*
//! (the default). Disabled handles hand out no-op instruments — a plain
//! `Option<Arc<_>>` check per record, no allocation, no locking — so the
//! 1-pixel-per-clock hot paths can be instrumented unconditionally.
//!
//! ```
//! use sw_telemetry::TelemetryHandle;
//!
//! let t = TelemetryHandle::new();
//! let pixels = t.counter("stage.demo.pixels");
//! pixels.add(64 * 64);
//! let occ = t.histogram("fifo.demo.occupancy_bits", &[64, 256, 1024]);
//! occ.observe(300);
//! let report = t.report();
//! assert_eq!(report.counters["stage.demo.pixels"], 64 * 64);
//! let parsed = sw_telemetry::Report::from_json(&report.to_json()).unwrap();
//! assert_eq!(parsed, report);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod profile;
pub mod report;
pub mod span;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry};
pub use profile::{PathProfile, ProfileSnapshot, ProfileSpan, SpanProfiler};
pub use report::{prometheus_series, HistogramSnapshot, Report};
pub use span::Span;
pub use trace::{TraceEvent, TraceKind, TraceRing};

use std::io::{self, Write};
use std::sync::{Arc, Mutex};

/// Default capacity of the trace ring (events).
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

#[derive(Debug)]
struct TelemetryInner {
    registry: MetricsRegistry,
    trace: Mutex<TraceRing>,
    profiler: SpanProfiler,
}

/// A cheaply clonable telemetry context: either enabled (shared registry +
/// trace ring) or disabled (all instruments are no-ops).
#[derive(Debug, Clone, Default)]
pub struct TelemetryHandle {
    inner: Option<Arc<TelemetryInner>>,
}

impl TelemetryHandle {
    /// An enabled handle with the default trace capacity.
    pub fn new() -> Self {
        Self::with_trace_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// An enabled handle whose trace ring holds `capacity` events.
    pub fn with_trace_capacity(capacity: usize) -> Self {
        Self {
            inner: Some(Arc::new(TelemetryInner {
                registry: MetricsRegistry::new(),
                trace: Mutex::new(TraceRing::new(capacity)),
                profiler: SpanProfiler::new(),
            })),
        }
    }

    /// A disabled handle: every instrument it hands out is a no-op.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A named counter (no-op when disabled).
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            Some(i) => i.registry.counter(name),
            None => Counter::noop(),
        }
    }

    /// A named gauge (no-op when disabled).
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.inner {
            Some(i) => i.registry.gauge(name),
            None => Gauge::noop(),
        }
    }

    /// A named histogram with inclusive upper bucket bounds (no-op when
    /// disabled). Bounds must be strictly increasing; an overflow bucket is
    /// added automatically.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        match &self.inner {
            Some(i) => i.registry.histogram(name, bounds),
            None => Histogram::noop(),
        }
    }

    /// Start a wall-clock span feeding `<name>.ns_total` / `<name>.calls`.
    /// Records on drop; free when disabled.
    pub fn span(&self, name: &str) -> Span {
        if self.is_enabled() {
            Span::started(
                self.counter(&format!("{name}.ns_total")),
                self.counter(&format!("{name}.calls")),
            )
        } else {
            Span::noop()
        }
    }

    /// Open a hierarchical profiling span (no-op when disabled). Nested
    /// calls on the same thread build slash-separated paths; see
    /// [`profile::SpanProfiler`].
    pub fn profile_span(&self, name: &str) -> ProfileSpan {
        match &self.inner {
            Some(i) => i.profiler.begin(name),
            None => ProfileSpan::noop(),
        }
    }

    /// Record an aggregate of `calls` already-timed invocations of `name`
    /// totalling `total_ns`, attributed under the currently open profiling
    /// span (no-op when disabled).
    pub fn profile_record(&self, name: &str, total_ns: u64, calls: u64) {
        if let Some(i) = &self.inner {
            i.profiler.record_aggregate(name, total_ns, calls);
        }
    }

    /// Snapshot the hierarchical profiler. Empty when disabled.
    pub fn profile_snapshot(&self) -> ProfileSnapshot {
        match &self.inner {
            Some(i) => i.profiler.snapshot(),
            None => ProfileSnapshot::default(),
        }
    }

    /// Render the profiler's flame-style self-time table.
    pub fn flame_table(&self) -> String {
        self.profile_snapshot().flame_table()
    }

    /// Profiling spans whose timing was lost (dropped cross-thread or out
    /// of order). Also surfaced in [`TelemetryHandle::report`] as the
    /// `telemetry.spans_abandoned` counter when non-zero.
    pub fn spans_abandoned(&self) -> u64 {
        match &self.inner {
            Some(i) => i.profiler.abandoned(),
            None => 0,
        }
    }

    /// Record one cycle-domain trace event (dropped silently when
    /// disabled; counted by the ring when it overwrites).
    #[inline]
    pub fn trace(&self, event: TraceEvent) {
        if let Some(i) = &self.inner {
            i.trace.lock().expect("trace lock").push(event);
        }
    }

    /// Snapshot all metrics into a [`Report`]. Empty when disabled. If any
    /// profiling span was abandoned (timing lost), the report carries a
    /// `telemetry.spans_abandoned` counter.
    pub fn report(&self) -> Report {
        match &self.inner {
            Some(i) => {
                let mut r = i.registry.snapshot();
                let abandoned = i.profiler.abandoned();
                if abandoned > 0 {
                    r.counters
                        .insert("telemetry.spans_abandoned".to_string(), abandoned);
                }
                r
            }
            None => Report::default(),
        }
    }

    /// Write the trace ring as JSON lines; returns the number of events
    /// written (0 when disabled).
    pub fn write_trace_jsonl<W: Write>(&self, w: &mut W) -> io::Result<usize> {
        match &self.inner {
            Some(i) => i.trace.lock().expect("trace lock").write_jsonl(w),
            None => Ok(0),
        }
    }

    /// Write the trace ring as a Chrome `trace_event` JSON document
    /// (loadable in `chrome://tracing` / Perfetto; 1 simulation cycle maps
    /// to 1 µs on the viewer timeline). Returns the number of trace-event
    /// records written (0 when disabled; nothing is written then).
    pub fn write_chrome_trace<W: Write>(&self, w: &mut W) -> io::Result<usize> {
        match &self.inner {
            Some(i) => i.trace.lock().expect("trace lock").write_chrome_trace(w),
            None => Ok(0),
        }
    }

    /// Events overwritten because the trace ring was full.
    pub fn trace_dropped(&self) -> u64 {
        match &self.inner {
            Some(i) => i.trace.lock().expect("trace lock").dropped(),
            None => 0,
        }
    }

    /// Number of events currently held in the trace ring.
    pub fn trace_len(&self) -> usize {
        match &self.inner {
            Some(i) => i.trace.lock().expect("trace lock").len(),
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = TelemetryHandle::disabled();
        assert!(!t.is_enabled());
        let c = t.counter("a");
        c.add(5);
        assert_eq!(c.get(), 0);
        t.trace(TraceEvent::new(1, TraceKind::Pack, 2, 3));
        assert_eq!(t.trace_len(), 0);
        assert!(t.report().is_empty());
        drop(t.span("s"));
        assert!(t.report().is_empty());
    }

    #[test]
    fn enabled_handle_shares_instruments_across_clones() {
        let t = TelemetryHandle::new();
        let c1 = t.counter("shared");
        let t2 = t.clone();
        let c2 = t2.counter("shared");
        c1.inc();
        c2.add(2);
        assert_eq!(t.report().counters["shared"], 3);
    }

    #[test]
    fn span_records_time_and_calls() {
        let t = TelemetryHandle::new();
        for _ in 0..3 {
            let _s = t.span("work");
        }
        let r = t.report();
        assert_eq!(r.counters["work.calls"], 3);
        // ns_total is monotone; zero only if the clock is broken, but allow
        // it: just check the key exists.
        assert!(r.counters.contains_key("work.ns_total"));
    }

    #[test]
    fn profile_spans_nest_through_the_handle() {
        let t = TelemetryHandle::new();
        {
            let _frame = t.profile_span("frame");
            let _stage = t.profile_span("stage0");
            t.profile_record("encode", 1_000, 4);
        }
        let snap = t.profile_snapshot();
        assert!(snap.paths.contains_key("frame"));
        assert!(snap.paths.contains_key("frame/stage0"));
        assert_eq!(snap.paths["frame/stage0/encode"].calls, 4);
        let table = t.flame_table();
        assert!(table.contains("frame/stage0/encode"));
    }

    #[test]
    fn abandoned_spans_surface_in_the_report() {
        let t = TelemetryHandle::new();
        t.counter("work.items").add(7);
        assert!(!t
            .report()
            .counters
            .contains_key("telemetry.spans_abandoned"));
        let a = t.profile_span("a");
        let b = t.profile_span("b");
        drop(a);
        drop(b); // displaced -> abandoned
        assert_eq!(t.spans_abandoned(), 1);
        let r = t.report();
        assert_eq!(r.counters["telemetry.spans_abandoned"], 1);
        assert_eq!(r.counters["work.items"], 7);
    }

    #[test]
    fn disabled_profiling_is_inert() {
        let t = TelemetryHandle::disabled();
        let s = t.profile_span("x");
        assert!(!s.is_active());
        drop(s);
        t.profile_record("y", 10, 1);
        assert!(t.profile_snapshot().is_empty());
        assert_eq!(t.spans_abandoned(), 0);
        let mut buf = Vec::new();
        assert_eq!(t.write_chrome_trace(&mut buf).unwrap(), 0);
        assert!(buf.is_empty());
    }

    #[test]
    fn chrome_trace_through_the_handle_is_valid_json() {
        let t = TelemetryHandle::new();
        t.trace(TraceEvent::new(0, TraceKind::FrameStart, 64, 48));
        t.trace(TraceEvent::new(5, TraceKind::Stall, 3, 108));
        t.trace(TraceEvent::new(9, TraceKind::FrameEnd, 9, 0));
        let mut buf = Vec::new();
        let n = t.write_chrome_trace(&mut buf).unwrap();
        assert!(n >= 3);
        let doc = json::parse(&String::from_utf8(buf).unwrap()).unwrap();
        let obj = doc.as_obj().unwrap();
        assert_eq!(obj["traceEvents"].as_arr().unwrap().len(), n);
    }

    #[test]
    fn trace_events_round_trip_through_jsonl() {
        let t = TelemetryHandle::new();
        t.trace(TraceEvent::new(7, TraceKind::FifoPush, 100, 0));
        t.trace(TraceEvent::new(8, TraceKind::FifoPop, 99, 0));
        let mut buf = Vec::new();
        let n = t.write_trace_jsonl(&mut buf).unwrap();
        assert_eq!(n, 2);
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"event\":\"fifo_push\""));
        assert!(lines[0].contains("\"cycle\":7"));
    }
}

//! Cycle-domain trace events and the bounded ring that stores them.
//!
//! Simulated hardware emits one [`TraceEvent`] per interesting transition
//! (window shift, IWT column decompose, pack/unpack, FIFO push/pop,
//! threshold change, …). Events carry the simulation cycle plus two
//! free-form operands whose meaning depends on the kind — e.g. a
//! `FifoPush` records `(occupancy_bits_after, bits_pushed)`.
//!
//! The ring is bounded: once full it overwrites the oldest event and counts
//! the loss, so tracing a multi-megapixel run costs O(capacity) memory.

use crate::json::{self, write_escaped, Json};
use std::collections::VecDeque;
use std::io::{self, Write};

/// What a [`TraceEvent`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// A new pixel column entered the sliding window. `a` = column index.
    WindowShift,
    /// A forward IWT decomposed a column pair. `a` = tag/cycle of the pair.
    IwtDecompose,
    /// A coefficient column was packed. `a` = packed bits, `b` = NBits.
    Pack,
    /// A packed column was decoded. `a` = packed bits, `b` = NBits.
    Unpack,
    /// Bits entered a FIFO. `a` = occupancy after, `b` = bits pushed.
    FifoPush,
    /// Bits left a FIFO. `a` = occupancy after, `b` = bits popped.
    FifoPop,
    /// The adaptive threshold moved. `a` = new threshold, `b` = old.
    ThresholdChange,
    /// A column exceeded the memory budget. `a` = occupancy, `b` = capacity.
    Overflow,
    /// A frame began. `a` = width, `b` = height.
    FrameStart,
    /// A frame completed. `a` = total cycles.
    FrameEnd,
    /// The memory unit stalled the producer. `a` = stall cycles charged,
    /// `b` = deficit bits that forced the stall.
    Stall,
}

impl TraceKind {
    /// Every kind, in declaration order.
    pub const ALL: [TraceKind; 11] = [
        TraceKind::WindowShift,
        TraceKind::IwtDecompose,
        TraceKind::Pack,
        TraceKind::Unpack,
        TraceKind::FifoPush,
        TraceKind::FifoPop,
        TraceKind::ThresholdChange,
        TraceKind::Overflow,
        TraceKind::FrameStart,
        TraceKind::FrameEnd,
        TraceKind::Stall,
    ];

    /// Stable snake_case label used in the JSONL export.
    pub fn label(self) -> &'static str {
        match self {
            TraceKind::WindowShift => "window_shift",
            TraceKind::IwtDecompose => "iwt_decompose",
            TraceKind::Pack => "pack",
            TraceKind::Unpack => "unpack",
            TraceKind::FifoPush => "fifo_push",
            TraceKind::FifoPop => "fifo_pop",
            TraceKind::ThresholdChange => "threshold_change",
            TraceKind::Overflow => "overflow",
            TraceKind::FrameStart => "frame_start",
            TraceKind::FrameEnd => "frame_end",
            TraceKind::Stall => "stall",
        }
    }

    /// Inverse of [`TraceKind::label`].
    pub fn from_label(label: &str) -> Option<TraceKind> {
        TraceKind::ALL.into_iter().find(|k| k.label() == label)
    }
}

/// One cycle-stamped event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulation cycle at which the event occurred.
    pub cycle: u64,
    /// Event kind.
    pub kind: TraceKind,
    /// First operand; meaning depends on `kind`.
    pub a: u64,
    /// Second operand; meaning depends on `kind`.
    pub b: u64,
}

impl TraceEvent {
    /// Build an event.
    pub fn new(cycle: u64, kind: TraceKind, a: u64, b: u64) -> Self {
        Self { cycle, kind, a, b }
    }

    /// Serialize as one JSON object (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(64);
        s.push_str("{\"cycle\":");
        s.push_str(&self.cycle.to_string());
        s.push_str(",\"event\":");
        write_escaped(&mut s, self.kind.label());
        s.push_str(",\"a\":");
        s.push_str(&self.a.to_string());
        s.push_str(",\"b\":");
        s.push_str(&self.b.to_string());
        s.push('}');
        s
    }

    /// Parse one line produced by [`TraceEvent::to_json_line`] with the
    /// strict JSON parser. Unknown event labels and missing fields are
    /// errors.
    pub fn parse_json_line(line: &str) -> Result<TraceEvent, String> {
        let doc = json::parse(line.trim()).map_err(|e| e.to_string())?;
        let obj = doc.as_obj().ok_or("trace line must be a JSON object")?;
        let num = |key: &str| -> Result<u64, String> {
            obj.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("trace line missing u64 field '{key}'"))
        };
        let label = match obj.get("event") {
            Some(Json::Str(s)) => s.as_str(),
            _ => return Err("trace line missing string field 'event'".to_string()),
        };
        let kind = TraceKind::from_label(label)
            .ok_or_else(|| format!("unknown trace event label '{label}'"))?;
        Ok(TraceEvent {
            cycle: num("cycle")?,
            kind,
            a: num("a")?,
            b: num("b")?,
        })
    }

    /// Render this event as Chrome `trace_event` records (1 cycle = 1 µs on
    /// the viewer timeline). Most kinds map to one record; FIFO transitions
    /// and threshold changes also emit a counter sample so the viewer draws
    /// occupancy/threshold as a graph.
    fn chrome_records(&self, out: &mut Vec<String>) {
        let ts = self.cycle;
        let args_pair =
            |k1: &str, v1: u64, k2: &str, v2: u64| format!("\"{k1}\":{v1},\"{k2}\":{v2}");
        let instant = |name: &str, args: String| {
            format!(
                "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":0,\"tid\":0,\"args\":{{{args}}}}}"
            )
        };
        let counter = |name: &str, key: &str, value: u64| {
            format!(
                "{{\"name\":\"{name}\",\"ph\":\"C\",\"ts\":{ts},\"pid\":0,\"tid\":0,\"args\":{{\"{key}\":{value}}}}}"
            )
        };
        match self.kind {
            TraceKind::FrameStart => out.push(format!(
                "{{\"name\":\"frame\",\"cat\":\"frame\",\"ph\":\"B\",\"ts\":{ts},\"pid\":0,\"tid\":0,\"args\":{{{}}}}}",
                args_pair("width", self.a, "height", self.b)
            )),
            TraceKind::FrameEnd => out.push(format!(
                "{{\"name\":\"frame\",\"cat\":\"frame\",\"ph\":\"E\",\"ts\":{ts},\"pid\":0,\"tid\":0,\"args\":{{{}}}}}",
                args_pair("cycles", self.a, "b", self.b)
            )),
            TraceKind::Stall => out.push(format!(
                "{{\"name\":\"stall\",\"cat\":\"memory\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{},\"pid\":0,\"tid\":0,\"args\":{{{}}}}}",
                self.a.max(1),
                args_pair("stall_cycles", self.a, "deficit_bits", self.b)
            )),
            TraceKind::WindowShift => {
                out.push(instant("window_shift", format!("\"column\":{}", self.a)));
            }
            TraceKind::IwtDecompose => {
                out.push(instant("iwt_decompose", format!("\"tag\":{}", self.a)));
            }
            TraceKind::Pack => {
                out.push(instant("pack", args_pair("bits", self.a, "nbits", self.b)));
            }
            TraceKind::Unpack => {
                out.push(instant("unpack", args_pair("bits", self.a, "nbits", self.b)));
            }
            TraceKind::FifoPush => {
                out.push(instant(
                    "fifo_push",
                    args_pair("occupancy_bits", self.a, "bits", self.b),
                ));
                out.push(counter("fifo_occupancy_bits", "bits", self.a));
            }
            TraceKind::FifoPop => {
                out.push(instant(
                    "fifo_pop",
                    args_pair("occupancy_bits", self.a, "bits", self.b),
                ));
                out.push(counter("fifo_occupancy_bits", "bits", self.a));
            }
            TraceKind::ThresholdChange => {
                out.push(counter("threshold", "value", self.a));
            }
            TraceKind::Overflow => {
                out.push(instant(
                    "overflow",
                    args_pair("occupancy_bits", self.a, "capacity_bits", self.b),
                ));
            }
        }
    }
}

/// A bounded ring of trace events: pushing onto a full ring evicts the
/// oldest event and increments the drop counter.
#[derive(Debug, Clone)]
pub struct TraceRing {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl TraceRing {
    /// A ring holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            events: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Append an event, evicting the oldest if the ring is full.
    pub fn push(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Maximum events held before eviction starts.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterate events oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Write every held event as a JSON line, oldest first; returns how
    /// many lines were written.
    pub fn write_jsonl<W: Write>(&self, w: &mut W) -> io::Result<usize> {
        for e in &self.events {
            writeln!(w, "{}", e.to_json_line())?;
        }
        Ok(self.events.len())
    }

    /// Write every held event as one Chrome `trace_event` JSON document
    /// (`{"displayTimeUnit":"ms","traceEvents":[…]}`), loadable in
    /// `chrome://tracing` or Perfetto. Simulation cycles map 1:1 to the
    /// viewer's microsecond timeline. Returns the number of trace-event
    /// records written (some [`TraceKind`]s expand to two records).
    ///
    /// After ring wraparound the document may open with an `"E"` (frame
    /// end) whose `"B"` was evicted; the viewers tolerate that.
    pub fn write_chrome_trace<W: Write>(&self, w: &mut W) -> io::Result<usize> {
        write!(w, "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")?;
        let mut records = Vec::new();
        for e in &self.events {
            e.chrome_records(&mut records);
        }
        for (i, r) in records.iter().enumerate() {
            if i > 0 {
                w.write_all(b",")?;
            }
            write!(w, "\n{r}")?;
        }
        writeln!(w, "\n]}}")?;
        Ok(records.len())
    }

    /// Remove all events (the drop counter is preserved).
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut r = TraceRing::new(2);
        for cycle in 0..5 {
            r.push(TraceEvent::new(cycle, TraceKind::WindowShift, cycle, 0));
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 3);
        let cycles: Vec<u64> = r.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![3, 4]);
    }

    #[test]
    fn jsonl_line_shape() {
        let e = TraceEvent::new(7, TraceKind::FifoPush, 100, 12);
        assert_eq!(
            e.to_json_line(),
            "{\"cycle\":7,\"event\":\"fifo_push\",\"a\":100,\"b\":12}"
        );
    }

    #[test]
    fn write_jsonl_is_chronological() {
        let mut r = TraceRing::new(8);
        r.push(TraceEvent::new(1, TraceKind::FrameStart, 64, 64));
        r.push(TraceEvent::new(2, TraceKind::Pack, 33, 4));
        let mut buf = Vec::new();
        assert_eq!(r.write_jsonl(&mut buf).unwrap(), 2);
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("frame_start"));
        assert!(lines[1].contains("\"event\":\"pack\""));
    }

    #[test]
    fn every_label_is_snake_case_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for k in TraceKind::ALL {
            let l = k.label();
            assert!(l.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
            assert!(seen.insert(l), "duplicate label {l}");
            assert_eq!(TraceKind::from_label(l), Some(k));
        }
        assert_eq!(TraceKind::from_label("no_such_event"), None);
    }

    #[test]
    fn every_kind_round_trips_through_jsonl() {
        for (i, k) in TraceKind::ALL.into_iter().enumerate() {
            let e = TraceEvent::new(i as u64, k, 10 + i as u64, 20 + i as u64);
            let parsed = TraceEvent::parse_json_line(&e.to_json_line()).unwrap();
            assert_eq!(parsed, e);
        }
    }

    #[test]
    fn parse_json_line_rejects_malformed_input() {
        assert!(TraceEvent::parse_json_line("not json").is_err());
        assert!(TraceEvent::parse_json_line("{\"cycle\":1}").is_err());
        assert!(
            TraceEvent::parse_json_line("{\"cycle\":1,\"event\":\"bogus\",\"a\":0,\"b\":0}")
                .is_err()
        );
        assert!(
            TraceEvent::parse_json_line("{\"cycle\":-1,\"event\":\"pack\",\"a\":0,\"b\":0}")
                .is_err()
        );
    }

    #[test]
    fn wraparound_keeps_dropped_consistent_with_emitted_lines() {
        const CAPACITY: usize = 4;
        const PUSHED: u64 = 11;
        let mut r = TraceRing::new(CAPACITY);
        for cycle in 0..PUSHED {
            r.push(TraceEvent::new(cycle, TraceKind::Pack, cycle, 1));
        }
        let mut buf = Vec::new();
        let written = r.write_jsonl(&mut buf).unwrap();
        // Accounting invariant: every pushed event is either emitted or
        // counted as dropped.
        assert_eq!(written as u64 + r.dropped(), PUSHED);
        assert_eq!(written, r.len());
        // Every emitted line round-trips through the strict parser and the
        // survivors are exactly the newest `capacity` events, in order.
        let text = String::from_utf8(buf).unwrap();
        let events: Vec<TraceEvent> = text
            .lines()
            .map(|l| TraceEvent::parse_json_line(l).unwrap())
            .collect();
        assert_eq!(events.len(), written);
        let cycles: Vec<u64> = events.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![7, 8, 9, 10]);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_phases() {
        let mut r = TraceRing::new(16);
        r.push(TraceEvent::new(0, TraceKind::FrameStart, 64, 48));
        r.push(TraceEvent::new(3, TraceKind::FifoPush, 120, 36));
        r.push(TraceEvent::new(4, TraceKind::Stall, 2, 72));
        r.push(TraceEvent::new(5, TraceKind::ThresholdChange, 6, 4));
        r.push(TraceEvent::new(9, TraceKind::FrameEnd, 9, 0));
        let mut buf = Vec::new();
        // FifoPush expands to instant + counter, so 6 records total.
        let n = r.write_chrome_trace(&mut buf).unwrap();
        assert_eq!(n, 6);
        let text = String::from_utf8(buf).unwrap();
        let doc = json::parse(&text).unwrap();
        let obj = doc.as_obj().unwrap();
        let events = obj["traceEvents"].as_arr().unwrap();
        assert_eq!(events.len(), n);
        let phase = |e: &Json| match e.as_obj().unwrap().get("ph") {
            Some(Json::Str(s)) => s.clone(),
            _ => panic!("record missing ph"),
        };
        assert_eq!(phase(&events[0]), "B");
        assert_eq!(phase(&events[n - 1]), "E");
        // The stall renders as a complete event with a duration.
        let stall = events
            .iter()
            .find(|e| phase(e) == "X")
            .expect("stall record");
        assert_eq!(stall.as_obj().unwrap()["dur"].as_u64(), Some(2));
        // Counter samples exist for FIFO occupancy and threshold.
        assert_eq!(events.iter().filter(|e| phase(e) == "C").count(), 2);
    }

    #[test]
    fn chrome_trace_of_empty_ring_is_valid() {
        let r = TraceRing::new(4);
        let mut buf = Vec::new();
        assert_eq!(r.write_chrome_trace(&mut buf).unwrap(), 0);
        let doc = json::parse(&String::from_utf8(buf).unwrap()).unwrap();
        assert!(doc.as_obj().unwrap()["traceEvents"]
            .as_arr()
            .unwrap()
            .is_empty());
    }
}

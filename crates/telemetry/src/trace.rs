//! Cycle-domain trace events and the bounded ring that stores them.
//!
//! Simulated hardware emits one [`TraceEvent`] per interesting transition
//! (window shift, IWT column decompose, pack/unpack, FIFO push/pop,
//! threshold change, …). Events carry the simulation cycle plus two
//! free-form operands whose meaning depends on the kind — e.g. a
//! `FifoPush` records `(occupancy_bits_after, bits_pushed)`.
//!
//! The ring is bounded: once full it overwrites the oldest event and counts
//! the loss, so tracing a multi-megapixel run costs O(capacity) memory.

use crate::json::write_escaped;
use std::collections::VecDeque;
use std::io::{self, Write};

/// What a [`TraceEvent`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// A new pixel column entered the sliding window. `a` = column index.
    WindowShift,
    /// A forward IWT decomposed a column pair. `a` = tag/cycle of the pair.
    IwtDecompose,
    /// A coefficient column was packed. `a` = packed bits, `b` = NBits.
    Pack,
    /// A packed column was decoded. `a` = packed bits, `b` = NBits.
    Unpack,
    /// Bits entered a FIFO. `a` = occupancy after, `b` = bits pushed.
    FifoPush,
    /// Bits left a FIFO. `a` = occupancy after, `b` = bits popped.
    FifoPop,
    /// The adaptive threshold moved. `a` = new threshold, `b` = old.
    ThresholdChange,
    /// A column exceeded the memory budget. `a` = occupancy, `b` = capacity.
    Overflow,
    /// A frame began. `a` = width, `b` = height.
    FrameStart,
    /// A frame completed. `a` = total cycles.
    FrameEnd,
}

impl TraceKind {
    /// Stable snake_case label used in the JSONL export.
    pub fn label(self) -> &'static str {
        match self {
            TraceKind::WindowShift => "window_shift",
            TraceKind::IwtDecompose => "iwt_decompose",
            TraceKind::Pack => "pack",
            TraceKind::Unpack => "unpack",
            TraceKind::FifoPush => "fifo_push",
            TraceKind::FifoPop => "fifo_pop",
            TraceKind::ThresholdChange => "threshold_change",
            TraceKind::Overflow => "overflow",
            TraceKind::FrameStart => "frame_start",
            TraceKind::FrameEnd => "frame_end",
        }
    }
}

/// One cycle-stamped event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulation cycle at which the event occurred.
    pub cycle: u64,
    /// Event kind.
    pub kind: TraceKind,
    /// First operand; meaning depends on `kind`.
    pub a: u64,
    /// Second operand; meaning depends on `kind`.
    pub b: u64,
}

impl TraceEvent {
    /// Build an event.
    pub fn new(cycle: u64, kind: TraceKind, a: u64, b: u64) -> Self {
        Self { cycle, kind, a, b }
    }

    /// Serialize as one JSON object (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(64);
        s.push_str("{\"cycle\":");
        s.push_str(&self.cycle.to_string());
        s.push_str(",\"event\":");
        write_escaped(&mut s, self.kind.label());
        s.push_str(",\"a\":");
        s.push_str(&self.a.to_string());
        s.push_str(",\"b\":");
        s.push_str(&self.b.to_string());
        s.push('}');
        s
    }
}

/// A bounded ring of trace events: pushing onto a full ring evicts the
/// oldest event and increments the drop counter.
#[derive(Debug, Clone)]
pub struct TraceRing {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl TraceRing {
    /// A ring holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            events: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Append an event, evicting the oldest if the ring is full.
    pub fn push(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Maximum events held before eviction starts.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterate events oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Write every held event as a JSON line, oldest first; returns how
    /// many lines were written.
    pub fn write_jsonl<W: Write>(&self, w: &mut W) -> io::Result<usize> {
        for e in &self.events {
            writeln!(w, "{}", e.to_json_line())?;
        }
        Ok(self.events.len())
    }

    /// Remove all events (the drop counter is preserved).
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut r = TraceRing::new(2);
        for cycle in 0..5 {
            r.push(TraceEvent::new(cycle, TraceKind::WindowShift, cycle, 0));
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 3);
        let cycles: Vec<u64> = r.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![3, 4]);
    }

    #[test]
    fn jsonl_line_shape() {
        let e = TraceEvent::new(7, TraceKind::FifoPush, 100, 12);
        assert_eq!(
            e.to_json_line(),
            "{\"cycle\":7,\"event\":\"fifo_push\",\"a\":100,\"b\":12}"
        );
    }

    #[test]
    fn write_jsonl_is_chronological() {
        let mut r = TraceRing::new(8);
        r.push(TraceEvent::new(1, TraceKind::FrameStart, 64, 64));
        r.push(TraceEvent::new(2, TraceKind::Pack, 33, 4));
        let mut buf = Vec::new();
        assert_eq!(r.write_jsonl(&mut buf).unwrap(), 2);
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("frame_start"));
        assert!(lines[1].contains("\"event\":\"pack\""));
    }

    #[test]
    fn every_label_is_snake_case_and_unique() {
        let kinds = [
            TraceKind::WindowShift,
            TraceKind::IwtDecompose,
            TraceKind::Pack,
            TraceKind::Unpack,
            TraceKind::FifoPush,
            TraceKind::FifoPop,
            TraceKind::ThresholdChange,
            TraceKind::Overflow,
            TraceKind::FrameStart,
            TraceKind::FrameEnd,
        ];
        let mut seen = std::collections::HashSet::new();
        for k in kinds {
            let l = k.label();
            assert!(l.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
            assert!(seen.insert(l), "duplicate label {l}");
        }
    }
}

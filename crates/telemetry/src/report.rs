//! Point-in-time metric snapshots and their export formats.

use crate::json::{self, write_escaped, Json, JsonError};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Snapshot of one histogram's buckets and aggregates.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bucket bounds (strictly increasing).
    pub bounds: Vec<u64>,
    /// Per-bucket counts; one entry per bound plus a final overflow bucket.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean observed value, if any observations were recorded.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }
}

/// A point-in-time snapshot of every metric in a registry, exportable as a
/// human-readable table, JSON (round-trippable), or Prometheus text.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Report {
    /// Whether the report holds no metrics at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Serialize as a single JSON document:
    ///
    /// ```json
    /// {"version":1,
    ///  "counters":{"name":123},
    ///  "gauges":{"name":45},
    ///  "histograms":{"name":{"bounds":[..],"counts":[..],
    ///                        "count":N,"sum":N,"max":N}}}
    /// ```
    pub fn to_json(&self) -> String {
        fn num_map(out: &mut String, map: &BTreeMap<String, u64>) {
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                let _ = write!(out, ":{v}");
            }
            out.push('}');
        }
        fn num_arr(out: &mut String, vals: &[u64]) {
            out.push('[');
            for (i, v) in vals.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{v}");
            }
            out.push(']');
        }
        let mut out = String::with_capacity(256);
        out.push_str("{\"version\":1,\"counters\":");
        num_map(&mut out, &self.counters);
        out.push_str(",\"gauges\":");
        num_map(&mut out, &self.gauges);
        out.push_str(",\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_escaped(&mut out, name);
            out.push_str(":{\"bounds\":");
            num_arr(&mut out, &h.bounds);
            out.push_str(",\"counts\":");
            num_arr(&mut out, &h.counts);
            let _ = write!(
                out,
                ",\"count\":{},\"sum\":{},\"max\":{}}}",
                h.count, h.sum, h.max
            );
        }
        out.push_str("}}");
        out
    }

    /// Parse a document produced by [`Report::to_json`]. Round-trips
    /// exactly: `Report::from_json(&r.to_json()).unwrap() == r`.
    pub fn from_json(text: &str) -> Result<Self, JsonError> {
        let bad = |message: &str| JsonError {
            message: message.to_string(),
            offset: 0,
        };
        let doc = json::parse(text)?;
        let obj = doc
            .as_obj()
            .ok_or_else(|| bad("report must be an object"))?;
        match obj.get("version").and_then(Json::as_u64) {
            Some(1) => {}
            _ => return Err(bad("unsupported report version")),
        }
        let num_map = |key: &str| -> Result<BTreeMap<String, u64>, JsonError> {
            let mut out = BTreeMap::new();
            if let Some(m) = obj.get(key).and_then(Json::as_obj) {
                for (k, v) in m {
                    let v = v
                        .as_u64()
                        .ok_or_else(|| bad(&format!("{key}.{k} must be a u64")))?;
                    out.insert(k.clone(), v);
                }
            }
            Ok(out)
        };
        let num_arr = |v: &Json, what: &str| -> Result<Vec<u64>, JsonError> {
            v.as_arr()
                .ok_or_else(|| bad(&format!("{what} must be an array")))?
                .iter()
                .map(|x| {
                    x.as_u64()
                        .ok_or_else(|| bad(&format!("{what} must hold u64s")))
                })
                .collect()
        };
        let mut histograms = BTreeMap::new();
        if let Some(m) = obj.get("histograms").and_then(Json::as_obj) {
            for (name, v) in m {
                let h = v
                    .as_obj()
                    .ok_or_else(|| bad(&format!("histogram {name} must be an object")))?;
                let field = |key: &str| -> Result<u64, JsonError> {
                    h.get(key)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| bad(&format!("histogram {name}.{key} must be a u64")))
                };
                histograms.insert(
                    name.clone(),
                    HistogramSnapshot {
                        bounds: num_arr(
                            h.get("bounds").unwrap_or(&Json::Null),
                            &format!("histogram {name}.bounds"),
                        )?,
                        counts: num_arr(
                            h.get("counts").unwrap_or(&Json::Null),
                            &format!("histogram {name}.counts"),
                        )?,
                        count: field("count")?,
                        sum: field("sum")?,
                        max: field("max")?,
                    },
                );
            }
        }
        Ok(Report {
            counters: num_map("counters")?,
            gauges: num_map("gauges")?,
            histograms,
        })
    }

    /// Render as an aligned human-readable table.
    pub fn to_table(&self) -> String {
        let width = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .map(|k| k.len())
            .max()
            .unwrap_or(0)
            .max(6);
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (k, v) in &self.counters {
                let _ = writeln!(out, "  {k:<width$}  {v}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (k, v) in &self.gauges {
                let _ = writeln!(out, "  {k:<width$}  {v}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (k, h) in &self.histograms {
                let mean = h
                    .mean()
                    .map_or_else(|| "-".to_string(), |m| format!("{m:.1}"));
                let _ = writeln!(
                    out,
                    "  {k:<width$}  count={} mean={mean} max={}",
                    h.count, h.max
                );
                for (i, c) in h.counts.iter().enumerate() {
                    if *c == 0 {
                        continue;
                    }
                    let label = match h.bounds.get(i) {
                        Some(b) => format!("<= {b}"),
                        None => format!("> {}", h.bounds.last().copied().unwrap_or(0)),
                    };
                    let _ = writeln!(out, "  {:<width$}    {label:>12}  {c}", "");
                }
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }

    /// Render as Prometheus text exposition. Metric names have `.` and any
    /// other non-`[a-zA-Z0-9_:]` characters replaced by `_`. A metric key
    /// may carry a label block built by [`prometheus_series`]
    /// (`name{key="value"}`); the block is emitted verbatim — values were
    /// escaped when the key was built — and only the base name is
    /// sanitized. Histogram bucket counts are **cumulative** and terminated
    /// by a `+Inf` bucket, as real scrapers require; the observed maximum
    /// is exported as an untyped `<name>_max` sample so
    /// [`Report::from_prometheus`] can round-trip the snapshot.
    pub fn to_prometheus(&self) -> String {
        fn sanitize(name: &str) -> String {
            name.chars()
                .map(|c| {
                    if c.is_ascii_alphanumeric() || c == ':' {
                        c
                    } else {
                        '_'
                    }
                })
                .collect()
        }
        /// Split `name{label="block"}` into the sanitized base and the
        /// verbatim label block (if present and well-bracketed).
        fn split(key: &str) -> (String, Option<&str>) {
            match key.find('{') {
                Some(i) if key.ends_with('}') && key.len() > i + 2 => {
                    (sanitize(&key[..i]), Some(&key[i..]))
                }
                _ => (sanitize(key), None),
            }
        }
        let mut out = String::new();
        for (k, v) in &self.counters {
            let (n, labels) = split(k);
            let l = labels.unwrap_or("");
            let _ = writeln!(out, "# TYPE {n} counter\n{n}{l} {v}");
        }
        for (k, v) in &self.gauges {
            let (n, labels) = split(k);
            let l = labels.unwrap_or("");
            let _ = writeln!(out, "# TYPE {n} gauge\n{n}{l} {v}");
        }
        for (k, h) in &self.histograms {
            let (n, labels) = split(k);
            let l = labels.unwrap_or("");
            let inner = labels.map(|l| &l[1..l.len() - 1]);
            let _ = writeln!(out, "# TYPE {n} histogram");
            let mut cumulative = 0u64;
            for (i, c) in h.counts.iter().enumerate() {
                cumulative += c;
                let le = match h.bounds.get(i) {
                    Some(b) => b.to_string(),
                    None => "+Inf".to_string(),
                };
                match inner {
                    Some(inner) => {
                        let _ = writeln!(out, "{n}_bucket{{{inner},le=\"{le}\"}} {cumulative}");
                    }
                    None => {
                        let _ = writeln!(out, "{n}_bucket{{le=\"{le}\"}} {cumulative}");
                    }
                }
            }
            let _ = writeln!(
                out,
                "{n}_sum{l} {}\n{n}_count{l} {}\n{n}_max{l} {}",
                h.sum, h.count, h.max
            );
        }
        out
    }

    /// Parse a text exposition produced by [`Report::to_prometheus`] back
    /// into a report. Strict about the histogram contract: bucket counts
    /// must be cumulative (non-decreasing), the final bucket must be
    /// `le="+Inf"`, and `_count` must equal the `+Inf` cumulative count.
    ///
    /// Round-trips exactly when the original metric keys were already
    /// Prometheus-safe (sanitization is lossy otherwise): label blocks are
    /// re-canonicalized through [`prometheus_series`].
    pub fn from_prometheus(text: &str) -> Result<Self, String> {
        #[derive(Default)]
        struct HistAcc {
            cumulative: Vec<(Option<u64>, u64)>,
            sum: Option<u64>,
            count: Option<u64>,
            max: Option<u64>,
        }
        let mut types: BTreeMap<String, String> = BTreeMap::new();
        let mut report = Report::default();
        let mut hists: BTreeMap<String, HistAcc> = BTreeMap::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let at = |msg: String| format!("line {}: {msg}", idx + 1);
            if line.is_empty() {
                continue;
            }
            if let Some(comment) = line.strip_prefix('#') {
                if let Some(t) = comment.trim_start().strip_prefix("TYPE ") {
                    let mut it = t.split_whitespace();
                    let name = it
                        .next()
                        .ok_or_else(|| at("TYPE without a metric name".into()))?;
                    let kind = it
                        .next()
                        .ok_or_else(|| at(format!("TYPE {name} without a kind")))?;
                    types.insert(name.to_string(), kind.to_string());
                }
                continue;
            }
            let (base, labels, value) = parse_prometheus_sample(line).map_err(at)?;
            match types.get(&base).map(String::as_str) {
                Some("counter") => {
                    report
                        .counters
                        .insert(rebuild_series(&base, &labels), value);
                    continue;
                }
                Some("gauge") => {
                    report.gauges.insert(rebuild_series(&base, &labels), value);
                    continue;
                }
                _ => {}
            }
            let hist_part = ["_bucket", "_sum", "_count", "_max"]
                .into_iter()
                .find_map(|suffix| {
                    base.strip_suffix(suffix)
                        .filter(|stem| types.get(*stem).map(String::as_str) == Some("histogram"))
                        .map(|stem| (stem.to_string(), suffix))
                });
            let Some((stem, suffix)) = hist_part else {
                return Err(at(format!("sample '{base}' has no preceding # TYPE")));
            };
            if suffix == "_bucket" {
                let mut le = None;
                let mut rest = Vec::new();
                for (k, v) in labels {
                    if k == "le" {
                        le = Some(v);
                    } else {
                        rest.push((k, v));
                    }
                }
                let le = le.ok_or_else(|| at(format!("{base} sample without an le label")))?;
                let bound = if le == "+Inf" {
                    None
                } else {
                    Some(
                        le.parse::<u64>()
                            .map_err(|_| at(format!("{base}: bad le bound '{le}'")))?,
                    )
                };
                hists
                    .entry(rebuild_series(&stem, &rest))
                    .or_default()
                    .cumulative
                    .push((bound, value));
            } else {
                let acc = hists.entry(rebuild_series(&stem, &labels)).or_default();
                match suffix {
                    "_sum" => acc.sum = Some(value),
                    "_count" => acc.count = Some(value),
                    _ => acc.max = Some(value),
                }
            }
        }
        for (key, acc) in hists {
            let mut bounds = Vec::new();
            let mut counts = Vec::new();
            let mut prev = 0u64;
            let mut inf_seen = false;
            for (bound, cum) in &acc.cumulative {
                if *cum < prev {
                    return Err(format!("histogram {key}: bucket counts are not cumulative"));
                }
                match bound {
                    Some(b) => {
                        if inf_seen {
                            return Err(format!("histogram {key}: +Inf bucket is not last"));
                        }
                        if bounds.last().is_some_and(|prev_b| b <= prev_b) {
                            return Err(format!("histogram {key}: bounds are not increasing"));
                        }
                        bounds.push(*b);
                    }
                    None => inf_seen = true,
                }
                counts.push(cum - prev);
                prev = *cum;
            }
            if !inf_seen {
                return Err(format!("histogram {key}: missing +Inf bucket"));
            }
            let count = acc
                .count
                .ok_or_else(|| format!("histogram {key}: missing _count"))?;
            if count != prev {
                return Err(format!(
                    "histogram {key}: _count {count} disagrees with +Inf cumulative {prev}"
                ));
            }
            let sum = acc
                .sum
                .ok_or_else(|| format!("histogram {key}: missing _sum"))?;
            report.histograms.insert(
                key,
                HistogramSnapshot {
                    bounds,
                    counts,
                    count,
                    sum,
                    max: acc.max.unwrap_or(0),
                },
            );
        }
        Ok(report)
    }
}

/// Build a canonical Prometheus series key `name{key="value",…}` with label
/// values escaped per the text exposition format (`\\`, `\"`, `\n`). With
/// no labels the bare name is returned. Use the result as a metric name in
/// a registry / [`Report`]; [`Report::to_prometheus`] emits the label block
/// verbatim and [`Report::from_prometheus`] parses it back.
pub fn prometheus_series(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut out = String::with_capacity(name.len() + 16 * labels.len());
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

fn rebuild_series(base: &str, labels: &[(String, String)]) -> String {
    let borrowed: Vec<(&str, &str)> = labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .collect();
    prometheus_series(base, &borrowed)
}

/// Parsed label pairs of one exposition sample line.
type LabelPairs = Vec<(String, String)>;

/// Parse one sample line `name{k="v",…} value` into its parts, unescaping
/// label values.
fn parse_prometheus_sample(line: &str) -> Result<(String, LabelPairs, u64), String> {
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() && bytes[i] != b'{' && !bytes[i].is_ascii_whitespace() {
        i += 1;
    }
    let base = line[..i].to_string();
    if base.is_empty() {
        return Err("missing metric name".to_string());
    }
    let mut labels = Vec::new();
    if i < bytes.len() && bytes[i] == b'{' {
        i += 1;
        loop {
            while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            if bytes.get(i) == Some(&b'}') {
                i += 1;
                break;
            }
            let key_start = i;
            while i < bytes.len() && bytes[i] != b'=' {
                i += 1;
            }
            if i >= bytes.len() {
                return Err("label without '='".to_string());
            }
            let key = line[key_start..i].trim().to_string();
            if key.is_empty() {
                return Err("empty label key".to_string());
            }
            i += 1;
            if bytes.get(i) != Some(&b'"') {
                return Err(format!("label {key}: value must be double-quoted"));
            }
            i += 1;
            let mut value = String::new();
            loop {
                match bytes.get(i) {
                    None => return Err(format!("label {key}: unterminated value")),
                    Some(b'"') => {
                        i += 1;
                        break;
                    }
                    Some(b'\\') => {
                        match bytes.get(i + 1) {
                            Some(b'\\') => value.push('\\'),
                            Some(b'"') => value.push('"'),
                            Some(b'n') => value.push('\n'),
                            _ => return Err(format!("label {key}: bad escape")),
                        }
                        i += 2;
                    }
                    Some(_) => {
                        let c = line[i..].chars().next().expect("in-bounds char");
                        value.push(c);
                        i += c.len_utf8();
                    }
                }
            }
            labels.push((key, value));
            match bytes.get(i) {
                Some(b',') => i += 1,
                Some(b'}') => {
                    i += 1;
                    break;
                }
                _ => return Err("expected ',' or '}' after a label".to_string()),
            }
        }
    }
    let value = line[i..].trim();
    let value = value
        .parse::<u64>()
        .map_err(|_| format!("bad sample value '{value}'"))?;
    Ok((base, labels, value))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::default();
        r.counters.insert("stage.s0.cycles".into(), 4096);
        r.counters.insert("packer.bytes".into(), 512);
        r.gauges.insert("fifo.lh.high_water_bits".into(), 900);
        r.histograms.insert(
            "packer.nbits".into(),
            HistogramSnapshot {
                bounds: vec![4, 8, 12],
                counts: vec![10, 5, 1, 0],
                count: 16,
                sum: 80,
                max: 11,
            },
        );
        r
    }

    #[test]
    fn json_round_trips_exactly() {
        let r = sample();
        let parsed = Report::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn empty_report_round_trips() {
        let r = Report::default();
        assert!(r.is_empty());
        assert_eq!(Report::from_json(&r.to_json()).unwrap(), r);
    }

    #[test]
    fn from_json_rejects_wrong_version() {
        let err = Report::from_json("{\"version\":2,\"counters\":{}}").unwrap_err();
        assert!(err.message.contains("version"));
    }

    #[test]
    fn from_json_rejects_non_integer_counter() {
        let doc = "{\"version\":1,\"counters\":{\"x\":1.5},\"gauges\":{},\"histograms\":{}}";
        assert!(Report::from_json(doc).is_err());
    }

    #[test]
    fn table_lists_every_metric() {
        let t = sample().to_table();
        assert!(t.contains("stage.s0.cycles"));
        assert!(t.contains("fifo.lh.high_water_bits"));
        assert!(t.contains("packer.nbits"));
        assert!(t.contains("count=16"));
        assert!(t.contains("<= 4"));
    }

    #[test]
    fn prometheus_output_is_sanitized_and_cumulative() {
        let p = sample().to_prometheus();
        assert!(p.contains("# TYPE stage_s0_cycles counter"));
        assert!(p.contains("packer_nbits_bucket{le=\"4\"} 10"));
        assert!(p.contains("packer_nbits_bucket{le=\"8\"} 15"));
        assert!(p.contains("packer_nbits_bucket{le=\"+Inf\"} 16"));
        assert!(p.contains("packer_nbits_sum 80"));
    }

    #[test]
    fn histogram_mean() {
        assert_eq!(sample().histograms["packer.nbits"].mean(), Some(5.0));
        assert_eq!(HistogramSnapshot::default().mean(), None);
    }

    /// A report whose keys are already Prometheus-safe (labels built with
    /// [`prometheus_series`]), so the exposition round-trips exactly.
    fn prom_sample() -> Report {
        let mut r = Report::default();
        r.counters.insert("stage_s0_cycles".into(), 4096);
        r.counters.insert(
            prometheus_series("span_ns_total", &[("path", "frame/encode \"hot\"\\loop")]),
            77,
        );
        r.gauges
            .insert(prometheus_series("fifo_bits", &[("fifo", "lh")]), 900);
        r.histograms.insert(
            prometheus_series("packer_nbits", &[("codec", "haar")]),
            HistogramSnapshot {
                bounds: vec![4, 8, 12],
                counts: vec![10, 5, 1, 0],
                count: 16,
                sum: 80,
                max: 11,
            },
        );
        r
    }

    #[test]
    fn prometheus_round_trips_exactly_with_labels() {
        let r = prom_sample();
        let text = r.to_prometheus();
        // Label values are escaped in the exposition...
        assert!(text.contains("span_ns_total{path=\"frame/encode \\\"hot\\\"\\\\loop\"} 77"));
        // ...bucket counts stay cumulative with +Inf, labels intact.
        assert!(text.contains("packer_nbits_bucket{codec=\"haar\",le=\"4\"} 10"));
        assert!(text.contains("packer_nbits_bucket{codec=\"haar\",le=\"+Inf\"} 16"));
        assert!(text.contains("packer_nbits_max{codec=\"haar\"} 11"));
        let parsed = Report::from_prometheus(&text).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn prometheus_series_escapes_label_values() {
        assert_eq!(prometheus_series("m", &[]), "m");
        assert_eq!(
            prometheus_series("m", &[("a", "x\"y\\z\nw"), ("b", "ok")]),
            "m{a=\"x\\\"y\\\\z\\nw\",b=\"ok\"}"
        );
    }

    #[test]
    fn from_prometheus_rejects_non_cumulative_buckets() {
        let text = "# TYPE h histogram\n\
                    h_bucket{le=\"4\"} 10\n\
                    h_bucket{le=\"8\"} 7\n\
                    h_bucket{le=\"+Inf\"} 12\n\
                    h_sum 1\nh_count 12\n";
        let err = Report::from_prometheus(text).unwrap_err();
        assert!(err.contains("not cumulative"), "{err}");
    }

    #[test]
    fn from_prometheus_rejects_missing_inf_bucket() {
        let text = "# TYPE h histogram\n\
                    h_bucket{le=\"4\"} 10\n\
                    h_sum 1\nh_count 10\n";
        let err = Report::from_prometheus(text).unwrap_err();
        assert!(err.contains("+Inf"), "{err}");
    }

    #[test]
    fn from_prometheus_rejects_count_mismatch() {
        let text = "# TYPE h histogram\n\
                    h_bucket{le=\"4\"} 10\n\
                    h_bucket{le=\"+Inf\"} 12\n\
                    h_sum 1\nh_count 99\n";
        let err = Report::from_prometheus(text).unwrap_err();
        assert!(err.contains("disagrees"), "{err}");
    }

    #[test]
    fn from_prometheus_rejects_untyped_samples_and_bad_labels() {
        assert!(Report::from_prometheus("mystery 5\n").is_err());
        let unquoted = "# TYPE c counter\nc{k=v} 5\n";
        assert!(Report::from_prometheus(unquoted).is_err());
        let unterminated = "# TYPE c counter\nc{k=\"v} 5\n";
        assert!(Report::from_prometheus(unterminated).is_err());
    }

    #[test]
    fn empty_exposition_parses_to_empty_report() {
        assert_eq!(Report::from_prometheus("").unwrap(), Report::default());
        let r = Report::default();
        assert_eq!(Report::from_prometheus(&r.to_prometheus()).unwrap(), r);
    }
}

//! Point-in-time metric snapshots and their export formats.

use crate::json::{self, write_escaped, Json, JsonError};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Snapshot of one histogram's buckets and aggregates.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bucket bounds (strictly increasing).
    pub bounds: Vec<u64>,
    /// Per-bucket counts; one entry per bound plus a final overflow bucket.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean observed value, if any observations were recorded.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }
}

/// A point-in-time snapshot of every metric in a registry, exportable as a
/// human-readable table, JSON (round-trippable), or Prometheus text.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Report {
    /// Whether the report holds no metrics at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Serialize as a single JSON document:
    ///
    /// ```json
    /// {"version":1,
    ///  "counters":{"name":123},
    ///  "gauges":{"name":45},
    ///  "histograms":{"name":{"bounds":[..],"counts":[..],
    ///                        "count":N,"sum":N,"max":N}}}
    /// ```
    pub fn to_json(&self) -> String {
        fn num_map(out: &mut String, map: &BTreeMap<String, u64>) {
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                let _ = write!(out, ":{v}");
            }
            out.push('}');
        }
        fn num_arr(out: &mut String, vals: &[u64]) {
            out.push('[');
            for (i, v) in vals.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{v}");
            }
            out.push(']');
        }
        let mut out = String::with_capacity(256);
        out.push_str("{\"version\":1,\"counters\":");
        num_map(&mut out, &self.counters);
        out.push_str(",\"gauges\":");
        num_map(&mut out, &self.gauges);
        out.push_str(",\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_escaped(&mut out, name);
            out.push_str(":{\"bounds\":");
            num_arr(&mut out, &h.bounds);
            out.push_str(",\"counts\":");
            num_arr(&mut out, &h.counts);
            let _ = write!(
                out,
                ",\"count\":{},\"sum\":{},\"max\":{}}}",
                h.count, h.sum, h.max
            );
        }
        out.push_str("}}");
        out
    }

    /// Parse a document produced by [`Report::to_json`]. Round-trips
    /// exactly: `Report::from_json(&r.to_json()).unwrap() == r`.
    pub fn from_json(text: &str) -> Result<Self, JsonError> {
        let bad = |message: &str| JsonError {
            message: message.to_string(),
            offset: 0,
        };
        let doc = json::parse(text)?;
        let obj = doc
            .as_obj()
            .ok_or_else(|| bad("report must be an object"))?;
        match obj.get("version").and_then(Json::as_u64) {
            Some(1) => {}
            _ => return Err(bad("unsupported report version")),
        }
        let num_map = |key: &str| -> Result<BTreeMap<String, u64>, JsonError> {
            let mut out = BTreeMap::new();
            if let Some(m) = obj.get(key).and_then(Json::as_obj) {
                for (k, v) in m {
                    let v = v
                        .as_u64()
                        .ok_or_else(|| bad(&format!("{key}.{k} must be a u64")))?;
                    out.insert(k.clone(), v);
                }
            }
            Ok(out)
        };
        let num_arr = |v: &Json, what: &str| -> Result<Vec<u64>, JsonError> {
            v.as_arr()
                .ok_or_else(|| bad(&format!("{what} must be an array")))?
                .iter()
                .map(|x| {
                    x.as_u64()
                        .ok_or_else(|| bad(&format!("{what} must hold u64s")))
                })
                .collect()
        };
        let mut histograms = BTreeMap::new();
        if let Some(m) = obj.get("histograms").and_then(Json::as_obj) {
            for (name, v) in m {
                let h = v
                    .as_obj()
                    .ok_or_else(|| bad(&format!("histogram {name} must be an object")))?;
                let field = |key: &str| -> Result<u64, JsonError> {
                    h.get(key)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| bad(&format!("histogram {name}.{key} must be a u64")))
                };
                histograms.insert(
                    name.clone(),
                    HistogramSnapshot {
                        bounds: num_arr(
                            h.get("bounds").unwrap_or(&Json::Null),
                            &format!("histogram {name}.bounds"),
                        )?,
                        counts: num_arr(
                            h.get("counts").unwrap_or(&Json::Null),
                            &format!("histogram {name}.counts"),
                        )?,
                        count: field("count")?,
                        sum: field("sum")?,
                        max: field("max")?,
                    },
                );
            }
        }
        Ok(Report {
            counters: num_map("counters")?,
            gauges: num_map("gauges")?,
            histograms,
        })
    }

    /// Render as an aligned human-readable table.
    pub fn to_table(&self) -> String {
        let width = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .map(|k| k.len())
            .max()
            .unwrap_or(0)
            .max(6);
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (k, v) in &self.counters {
                let _ = writeln!(out, "  {k:<width$}  {v}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (k, v) in &self.gauges {
                let _ = writeln!(out, "  {k:<width$}  {v}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (k, h) in &self.histograms {
                let mean = h
                    .mean()
                    .map_or_else(|| "-".to_string(), |m| format!("{m:.1}"));
                let _ = writeln!(
                    out,
                    "  {k:<width$}  count={} mean={mean} max={}",
                    h.count, h.max
                );
                for (i, c) in h.counts.iter().enumerate() {
                    if *c == 0 {
                        continue;
                    }
                    let label = match h.bounds.get(i) {
                        Some(b) => format!("<= {b}"),
                        None => format!("> {}", h.bounds.last().copied().unwrap_or(0)),
                    };
                    let _ = writeln!(out, "  {:<width$}    {label:>12}  {c}", "");
                }
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }

    /// Render as Prometheus text exposition (metric names have `.` and any
    /// other non-`[a-zA-Z0-9_:]` characters replaced by `_`).
    pub fn to_prometheus(&self) -> String {
        fn sanitize(name: &str) -> String {
            name.chars()
                .map(|c| {
                    if c.is_ascii_alphanumeric() || c == ':' {
                        c
                    } else {
                        '_'
                    }
                })
                .collect()
        }
        let mut out = String::new();
        for (k, v) in &self.counters {
            let n = sanitize(k);
            let _ = writeln!(out, "# TYPE {n} counter\n{n} {v}");
        }
        for (k, v) in &self.gauges {
            let n = sanitize(k);
            let _ = writeln!(out, "# TYPE {n} gauge\n{n} {v}");
        }
        for (k, h) in &self.histograms {
            let n = sanitize(k);
            let _ = writeln!(out, "# TYPE {n} histogram");
            let mut cumulative = 0u64;
            for (i, c) in h.counts.iter().enumerate() {
                cumulative += c;
                let le = match h.bounds.get(i) {
                    Some(b) => b.to_string(),
                    None => "+Inf".to_string(),
                };
                let _ = writeln!(out, "{n}_bucket{{le=\"{le}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{n}_sum {}\n{n}_count {}", h.sum, h.count);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::default();
        r.counters.insert("stage.s0.cycles".into(), 4096);
        r.counters.insert("packer.bytes".into(), 512);
        r.gauges.insert("fifo.lh.high_water_bits".into(), 900);
        r.histograms.insert(
            "packer.nbits".into(),
            HistogramSnapshot {
                bounds: vec![4, 8, 12],
                counts: vec![10, 5, 1, 0],
                count: 16,
                sum: 80,
                max: 11,
            },
        );
        r
    }

    #[test]
    fn json_round_trips_exactly() {
        let r = sample();
        let parsed = Report::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn empty_report_round_trips() {
        let r = Report::default();
        assert!(r.is_empty());
        assert_eq!(Report::from_json(&r.to_json()).unwrap(), r);
    }

    #[test]
    fn from_json_rejects_wrong_version() {
        let err = Report::from_json("{\"version\":2,\"counters\":{}}").unwrap_err();
        assert!(err.message.contains("version"));
    }

    #[test]
    fn from_json_rejects_non_integer_counter() {
        let doc = "{\"version\":1,\"counters\":{\"x\":1.5},\"gauges\":{},\"histograms\":{}}";
        assert!(Report::from_json(doc).is_err());
    }

    #[test]
    fn table_lists_every_metric() {
        let t = sample().to_table();
        assert!(t.contains("stage.s0.cycles"));
        assert!(t.contains("fifo.lh.high_water_bits"));
        assert!(t.contains("packer.nbits"));
        assert!(t.contains("count=16"));
        assert!(t.contains("<= 4"));
    }

    #[test]
    fn prometheus_output_is_sanitized_and_cumulative() {
        let p = sample().to_prometheus();
        assert!(p.contains("# TYPE stage_s0_cycles counter"));
        assert!(p.contains("packer_nbits_bucket{le=\"4\"} 10"));
        assert!(p.contains("packer_nbits_bucket{le=\"8\"} 15"));
        assert!(p.contains("packer_nbits_bucket{le=\"+Inf\"} 16"));
        assert!(p.contains("packer_nbits_sum 80"));
    }

    #[test]
    fn histogram_mean() {
        assert_eq!(sample().histograms["packer.nbits"].mean(), Some(5.0));
        assert_eq!(HistogramSnapshot::default().mean(), None);
    }
}

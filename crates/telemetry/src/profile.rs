//! Hierarchical span profiling with self-time attribution.
//!
//! [`crate::Span`] gives flat `<name>.ns_total` counters; this module adds
//! the structure the flat counters cannot express: *which stage inside which
//! stage* the time went to. A [`ProfileSpan`] pushed while another is open
//! becomes its child — nesting is tracked per thread on a thread-local span
//! stack, so the hot path never takes a lock to discover its parent. Each
//! completed span records into a per-*path* statistics table ("pipeline",
//! "pipeline/stage0", "frame/encode", …) keeping:
//!
//! * call count, total wall nanoseconds, child nanoseconds (and therefore
//!   **self time** = total − children),
//! * a log₂-bucketed duration histogram from which p50/p90/p99 are read.
//!
//! By construction the self-times of a span's whole subtree sum to exactly
//! the root's total time, which is what makes the flame table trustworthy.
//!
//! Spans that cannot be attributed — dropped on a different thread than they
//! started on, or dropped after their stack frame was displaced by an
//! out-of-order drop — lose their timing; that loss is *counted* under the
//! profiler's `abandoned` counter (surfaced as the
//! `telemetry.spans_abandoned` metric) instead of vanishing silently.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Number of log₂ duration buckets; bucket `i` holds values `v` with
/// `2^(i-1) < v <= 2^i` (bucket 0 holds 0 and 1 ns).
const LOG2_BUCKETS: usize = 64;

/// Bucket index for a nanosecond duration (see [`LOG2_BUCKETS`]).
fn bucket_index(ns: u64) -> usize {
    match ns.max(1).checked_next_power_of_two() {
        Some(p) => (p.trailing_zeros() as usize).min(LOG2_BUCKETS - 1),
        None => LOG2_BUCKETS - 1,
    }
}

fn elapsed_ns(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[derive(Debug, Clone)]
struct PathStats {
    calls: u64,
    total_ns: u64,
    child_ns: u64,
    max_ns: u64,
    buckets: [u64; LOG2_BUCKETS],
}

impl PathStats {
    fn new() -> Self {
        Self {
            calls: 0,
            total_ns: 0,
            child_ns: 0,
            max_ns: 0,
            buckets: [0; LOG2_BUCKETS],
        }
    }

    fn observe(&mut self, value_ns: u64, times: u64) {
        self.buckets[bucket_index(value_ns)] += times;
        self.max_ns = self.max_ns.max(value_ns);
    }
}

#[derive(Debug)]
struct ProfilerCore {
    paths: Mutex<BTreeMap<String, PathStats>>,
    abandoned: AtomicU64,
    serial: AtomicU64,
}

/// The shared profiler behind a [`crate::TelemetryHandle`]: a table of
/// per-path span statistics plus the thread-local nesting machinery.
#[derive(Debug, Clone)]
pub struct SpanProfiler {
    core: Arc<ProfilerCore>,
}

struct Frame {
    core: Arc<ProfilerCore>,
    serial: u64,
    path: String,
    start: Instant,
    child_ns: u64,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

impl Default for SpanProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl SpanProfiler {
    /// An empty profiler.
    pub fn new() -> Self {
        Self {
            core: Arc::new(ProfilerCore {
                paths: Mutex::new(BTreeMap::new()),
                abandoned: AtomicU64::new(0),
                serial: AtomicU64::new(0),
            }),
        }
    }

    /// Open a span named `name`. Its path is the enclosing open span's path
    /// (on this thread, for this profiler) plus `/name`, or just `name` at
    /// top level. The span records when the returned guard drops.
    pub fn begin(&self, name: &str) -> ProfileSpan {
        let serial = self.core.serial.fetch_add(1, Ordering::Relaxed) + 1;
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let path = stack
                .iter()
                .rev()
                .find(|f| Arc::ptr_eq(&f.core, &self.core))
                .map(|f| format!("{}/{name}", f.path))
                .unwrap_or_else(|| name.to_string());
            stack.push(Frame {
                core: self.core.clone(),
                serial,
                path,
                start: Instant::now(),
                child_ns: 0,
            });
        });
        ProfileSpan {
            active: Some((self.clone(), serial)),
        }
    }

    /// Record an aggregate of `calls` already-timed child invocations of
    /// `name` totalling `total_ns`, attributed under the current open span.
    ///
    /// This is the cheap path for per-pixel/per-group work: accumulate
    /// locally, flush once, instead of one guard per invocation.
    pub fn record_aggregate(&self, name: &str, total_ns: u64, calls: u64) {
        if calls == 0 {
            return;
        }
        let path = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let parent = stack
                .iter_mut()
                .rev()
                .find(|f| Arc::ptr_eq(&f.core, &self.core));
            match parent {
                Some(f) => {
                    f.child_ns = f.child_ns.saturating_add(total_ns);
                    format!("{}/{name}", f.path)
                }
                None => name.to_string(),
            }
        });
        let mut paths = self.core.paths.lock().expect("profiler lock");
        let st = paths.entry(path).or_insert_with(PathStats::new);
        st.calls += calls;
        st.total_ns = st.total_ns.saturating_add(total_ns);
        st.observe(total_ns / calls, calls);
    }

    fn end(&self, serial: u64) {
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let Some(idx) = stack
                .iter()
                .rposition(|f| f.serial == serial && Arc::ptr_eq(&f.core, &self.core))
            else {
                // Cross-thread drop, or this frame was displaced by an
                // out-of-order drop below it: the timing is unattributable.
                self.core.abandoned.fetch_add(1, Ordering::Relaxed);
                return;
            };
            // Frames this profiler opened *after* the one being closed are
            // displaced; their own guards will count themselves abandoned.
            let mut i = stack.len();
            while i > idx + 1 {
                i -= 1;
                if Arc::ptr_eq(&stack[i].core, &self.core) {
                    stack.remove(i);
                }
            }
            let frame = stack.remove(idx);
            let total = elapsed_ns(frame.start);
            {
                let mut paths = self.core.paths.lock().expect("profiler lock");
                let st = paths.entry(frame.path).or_insert_with(PathStats::new);
                st.calls += 1;
                st.total_ns = st.total_ns.saturating_add(total);
                st.child_ns = st.child_ns.saturating_add(frame.child_ns);
                st.observe(total, 1);
            }
            if let Some(parent) = stack
                .iter_mut()
                .rev()
                .find(|f| Arc::ptr_eq(&f.core, &self.core))
            {
                parent.child_ns = parent.child_ns.saturating_add(total);
            }
        });
    }

    /// Spans whose timing was lost (dropped cross-thread or out of order).
    pub fn abandoned(&self) -> u64 {
        self.core.abandoned.load(Ordering::Relaxed)
    }

    /// Snapshot every path's statistics.
    pub fn snapshot(&self) -> ProfileSnapshot {
        let paths = self.core.paths.lock().expect("profiler lock");
        ProfileSnapshot {
            paths: paths
                .iter()
                .map(|(k, v)| {
                    (
                        k.clone(),
                        PathProfile {
                            calls: v.calls,
                            total_ns: v.total_ns,
                            child_ns: v.child_ns,
                            max_ns: v.max_ns,
                            buckets: v.buckets.to_vec(),
                        },
                    )
                })
                .collect(),
            abandoned: self.abandoned(),
        }
    }
}

/// Guard for one open hierarchical span; records on drop. Obtain from
/// [`crate::TelemetryHandle::profile_span`] or [`SpanProfiler::begin`].
#[derive(Debug)]
pub struct ProfileSpan {
    active: Option<(SpanProfiler, u64)>,
}

impl ProfileSpan {
    /// A span that records nothing (disabled telemetry).
    pub fn noop() -> Self {
        Self { active: None }
    }

    /// Whether this span will record on drop.
    pub fn is_active(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for ProfileSpan {
    fn drop(&mut self) {
        if let Some((profiler, serial)) = self.active.take() {
            profiler.end(serial);
        }
    }
}

/// Aggregated statistics for one span path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathProfile {
    /// Completed invocations recorded under this path.
    pub calls: u64,
    /// Total wall nanoseconds across all invocations.
    pub total_ns: u64,
    /// Nanoseconds attributed to child spans / aggregates.
    pub child_ns: u64,
    /// Longest single observation in nanoseconds.
    pub max_ns: u64,
    buckets: Vec<u64>,
}

impl PathProfile {
    /// Time spent in this path itself, excluding children.
    pub fn self_ns(&self) -> u64 {
        self.total_ns.saturating_sub(self.child_ns)
    }

    /// Approximate `q`-quantile (0 < q <= 1) of per-call duration, read from
    /// the log₂ bucket bounds (upper bound of the bucket holding the
    /// quantile, clamped to the observed maximum).
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let count: u64 = self.buckets.iter().sum();
        if count == 0 {
            return 0;
        }
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cum = 0u64;
        for (i, c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                let bound = 1u64.checked_shl(i as u32).unwrap_or(u64::MAX);
                return bound.min(self.max_ns.max(1));
            }
        }
        self.max_ns
    }

    /// Median per-call duration (log₂-bucket resolution).
    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    /// 90th percentile per-call duration (log₂-bucket resolution).
    pub fn p90_ns(&self) -> u64 {
        self.quantile_ns(0.90)
    }

    /// 99th percentile per-call duration (log₂-bucket resolution).
    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }
}

/// Point-in-time copy of a [`SpanProfiler`]'s per-path statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileSnapshot {
    /// Statistics keyed by span path ("pipeline/stage0", "frame/encode", …).
    /// `BTreeMap` order places every parent directly before its children.
    pub paths: BTreeMap<String, PathProfile>,
    /// Spans whose timing was lost (see [`SpanProfiler::abandoned`]).
    pub abandoned: u64,
}

impl ProfileSnapshot {
    /// Whether any path was recorded.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Sum of self-times across all paths — equals the sum of root spans'
    /// totals when nothing was abandoned.
    pub fn total_self_ns(&self) -> u64 {
        self.paths.values().map(PathProfile::self_ns).sum()
    }

    /// Render a flame-style table: one row per path, indented by depth,
    /// with calls, total, self time, self share and per-call percentiles.
    pub fn flame_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<44} {:>8} {:>9} {:>9} {:>6} {:>9} {:>9} {:>9}",
            "path", "calls", "total", "self", "self%", "p50", "p90", "p99"
        );
        let grand = self.total_self_ns().max(1);
        for (path, p) in &self.paths {
            let depth = path.matches('/').count();
            let label = format!("{}{}", "  ".repeat(depth), path);
            let pct = p.self_ns() as f64 / grand as f64 * 100.0;
            let _ = writeln!(
                out,
                "{:<44} {:>8} {:>9} {:>9} {:>5.1}% {:>9} {:>9} {:>9}",
                label,
                p.calls,
                fmt_ns(p.total_ns),
                fmt_ns(p.self_ns()),
                pct,
                fmt_ns(p.p50_ns()),
                fmt_ns(p.p90_ns()),
                fmt_ns(p.p99_ns()),
            );
        }
        if self.abandoned > 0 {
            let _ = writeln!(out, "({} span(s) abandoned — timing lost)", self.abandoned);
        }
        out
    }
}

/// Format nanoseconds with an adaptive unit (`ns`, `us`, `ms`, `s`).
pub fn fmt_ns(ns: u64) -> String {
    if ns < 10_000 {
        format!("{ns}ns")
    } else if ns < 10_000_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.1}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn nesting_builds_paths_and_attributes_self_time() {
        let p = SpanProfiler::new();
        {
            let _root = p.begin("root");
            std::thread::sleep(Duration::from_millis(2));
            {
                let _child = p.begin("child");
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        let snap = p.snapshot();
        assert_eq!(
            snap.paths.keys().collect::<Vec<_>>(),
            vec!["root", "root/child"]
        );
        let root = &snap.paths["root"];
        let child = &snap.paths["root/child"];
        assert_eq!(root.calls, 1);
        assert_eq!(child.calls, 1);
        assert_eq!(root.child_ns, child.total_ns);
        // Self-times over the subtree sum exactly to the root total.
        assert_eq!(root.self_ns() + child.self_ns(), root.total_ns);
        assert!(root.self_ns() >= 1_000_000, "slept 2ms outside child");
    }

    #[test]
    fn sibling_spans_share_a_path() {
        let p = SpanProfiler::new();
        let _root = p.begin("r");
        for _ in 0..3 {
            let _s = p.begin("s");
        }
        drop(_root);
        let snap = p.snapshot();
        assert_eq!(snap.paths["r/s"].calls, 3);
        assert_eq!(snap.paths["r"].calls, 1);
    }

    #[test]
    fn aggregate_records_nest_under_open_span() {
        let p = SpanProfiler::new();
        {
            let _root = p.begin("frame");
            p.record_aggregate("encode", 5_000, 10);
            p.record_aggregate("encode", 3_000, 6);
        }
        let snap = p.snapshot();
        let enc = &snap.paths["frame/encode"];
        assert_eq!(enc.calls, 16);
        assert_eq!(enc.total_ns, 8_000);
        assert_eq!(snap.paths["frame"].child_ns, 8_000);
        // Zero-call aggregates are ignored.
        p.record_aggregate("noop", 0, 0);
        assert!(!p.snapshot().paths.contains_key("noop"));
    }

    #[test]
    fn out_of_order_drop_counts_abandoned() {
        let p = SpanProfiler::new();
        let a = p.begin("a");
        let b = p.begin("b");
        drop(a); // displaces b's frame
        assert_eq!(p.abandoned(), 0);
        drop(b); // frame already gone -> abandoned
        assert_eq!(p.abandoned(), 1);
        let snap = p.snapshot();
        assert_eq!(snap.paths["a"].calls, 1);
        assert_eq!(snap.abandoned, 1);
    }

    #[test]
    fn cross_thread_drop_counts_abandoned() {
        let p = SpanProfiler::new();
        let span = p.begin("here");
        let p2 = p.clone();
        std::thread::spawn(move || drop(span)).join().unwrap();
        assert_eq!(p2.abandoned(), 1);
        // The displaced frame stays on this thread's stack until another
        // same-profiler span closes around it; a fresh root span adopting it
        // as parent is acceptable (path "here/next"), but closing it must
        // not panic.
        let _ = p2.begin("next");
    }

    #[test]
    fn quantiles_come_from_log_buckets() {
        let mut stats = PathStats::new();
        for v in [100u64, 100, 100, 100, 100, 100, 100, 100, 100, 900_000] {
            stats.observe(v, 1);
        }
        let prof = PathProfile {
            calls: 10,
            total_ns: 900_900,
            child_ns: 0,
            max_ns: 900_000,
            buckets: stats.buckets.to_vec(),
        };
        // 100 falls in the (64,128] bucket -> bound 128.
        assert_eq!(prof.p50_ns(), 128);
        // p99 lands in the outlier's bucket, clamped to observed max.
        assert_eq!(prof.p99_ns(), 900_000);
        assert_eq!(
            PathProfile {
                calls: 0,
                total_ns: 0,
                child_ns: 0,
                max_ns: 0,
                buckets: vec![0; LOG2_BUCKETS]
            }
            .p50_ns(),
            0
        );
    }

    #[test]
    fn bucket_index_is_monotone_and_bounded() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(u64::MAX), LOG2_BUCKETS - 1);
        let mut prev = 0;
        for shift in 0..63 {
            let i = bucket_index(1u64 << shift);
            assert!(i >= prev);
            prev = i;
        }
    }

    #[test]
    fn flame_table_lists_paths_with_percentages() {
        let p = SpanProfiler::new();
        {
            let _r = p.begin("pipeline");
            let _s = p.begin("stage0");
        }
        let table = p.snapshot().flame_table();
        assert!(table.contains("pipeline"));
        assert!(table.contains("  pipeline/stage0"));
        assert!(table.contains("self%"));
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(900), "900ns");
        assert_eq!(fmt_ns(25_000), "25.0us");
        assert_eq!(fmt_ns(25_000_000), "25.0ms");
        assert_eq!(fmt_ns(25_000_000_000), "25.0s");
    }

    #[test]
    fn noop_span_is_inert() {
        let s = ProfileSpan::noop();
        assert!(!s.is_active());
        drop(s);
    }
}

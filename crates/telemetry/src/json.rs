//! A minimal JSON value, writer and parser.
//!
//! The workspace is dependency-free by constraint (offline build), so the
//! report format is hand-rolled. Only what [`crate::Report`] and the trace
//! writer need is implemented — but that subset is a complete, strict JSON
//! parser (objects, arrays, strings with escapes, integers, floats, bools,
//! null), so external tools can both consume and produce report files.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value. Integers are kept exact (`i128` covers u64).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number without fraction/exponent.
    Int(i128),
    /// A number with fraction or exponent.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (order-normalized).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value as `u64`, if it is a non-negative integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as `f64` (integers convert; precision may be lost beyond
    /// 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Escape and quote `s` as a JSON string literal into `out`.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with byte offset context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("non-scalar \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // on char boundaries is safe via chars()).
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest).map_err(|_| self.err("bad UTF-8"))?;
                    let c = text.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("bad float"))
        } else {
            text.parse::<i128>()
                .map(Json::Int)
                .map_err(|_| self.err("bad integer"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#" {"a": [1, -2, 3.5], "b": {"c": true, "d": null}, "s": "x\ny"} "#;
        let v = parse(doc).unwrap();
        let obj = v.as_obj().unwrap();
        assert_eq!(obj["a"].as_arr().unwrap()[0], Json::Int(1));
        assert_eq!(obj["a"].as_arr().unwrap()[2], Json::Float(3.5));
        assert_eq!(obj["b"].as_obj().unwrap()["c"], Json::Bool(true));
        assert_eq!(obj["s"], Json::Str("x\ny".into()));
    }

    #[test]
    fn u64_values_survive_exactly() {
        let big = u64::MAX;
        let v = parse(&format!("{{\"x\": {big}}}")).unwrap();
        assert_eq!(v.as_obj().unwrap()["x"].as_u64(), Some(big));
    }

    #[test]
    fn escaping_round_trips() {
        let mut out = String::new();
        write_escaped(&mut out, "a\"b\\c\nd\u{1}");
        let v = parse(&out).unwrap();
        assert_eq!(v, Json::Str("a\"b\\c\nd\u{1}".into()));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("{,}").is_err());
        assert!(parse("[1,]").is_err());
    }
}

//! The metrics registry and its instruments.
//!
//! Instruments are null-object style: a disabled [`Counter`] / [`Gauge`] /
//! [`Histogram`] holds `None` and records nothing, so hot paths can call
//! them unconditionally. Enabled instruments share `Arc`ed atomic cells
//! with the registry, so cloning an instrument or the handle is free and
//! all clones feed the same series.

use crate::report::{HistogramSnapshot, Report};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A counter that records nothing.
    pub fn noop() -> Self {
        Self(None)
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 when no-op).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A last-value (or maximum) gauge.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// A gauge that records nothing.
    pub fn noop() -> Self {
        Self(None)
    }

    /// Set the current value.
    #[inline]
    pub fn set(&self, v: u64) {
        if let Some(g) = &self.0 {
            g.store(v, Ordering::Relaxed);
        }
    }

    /// Raise the gauge to `v` if `v` is larger (high-water-mark semantics).
    #[inline]
    pub fn observe_max(&self, v: u64) {
        if let Some(g) = &self.0 {
            g.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Add `d` to the current value (level semantics, e.g. inflight jobs).
    #[inline]
    pub fn add(&self, d: u64) {
        if let Some(g) = &self.0 {
            g.fetch_add(d, Ordering::Relaxed);
        }
    }

    /// Subtract `d` from the current value, saturating at zero.
    #[inline]
    pub fn sub(&self, d: u64) {
        if let Some(g) = &self.0 {
            let mut cur = g.load(Ordering::Relaxed);
            loop {
                match g.compare_exchange_weak(
                    cur,
                    cur.saturating_sub(d),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        }
    }

    /// Current value (0 when no-op).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |g| g.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
pub(crate) struct HistogramCell {
    /// Inclusive upper bounds, strictly increasing.
    bounds: Vec<u64>,
    /// One count per bound plus a final overflow bucket.
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistogramCell {
    fn new(bounds: &[u64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Self {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A fixed-bucket histogram: each bucket's bound is an inclusive upper
/// limit; values above the last bound land in an implicit overflow bucket.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCell>>);

impl Histogram {
    /// A histogram that records nothing.
    pub fn noop() -> Self {
        Self(None)
    }

    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        if let Some(h) = &self.0 {
            let idx = h.bounds.partition_point(|&b| b < v);
            h.counts[idx].fetch_add(1, Ordering::Relaxed);
            h.count.fetch_add(1, Ordering::Relaxed);
            h.sum.fetch_add(v, Ordering::Relaxed);
            h.max.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Number of observations (0 when no-op).
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |h| h.count.load(Ordering::Relaxed))
    }

    /// Largest observation (0 when no-op).
    pub fn max(&self) -> u64 {
        self.0.as_ref().map_or(0, |h| h.max.load(Ordering::Relaxed))
    }

    /// Snapshot buckets and aggregates (empty snapshot when no-op).
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0
            .as_ref()
            .map_or_else(HistogramSnapshot::default, |h| h.snapshot())
    }
}

#[derive(Debug)]
enum Slot {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCell>),
}

/// A concurrent registry of named metrics.
///
/// Instrument creation takes a lock (call it at setup time, not per pixel);
/// the returned instruments record lock-free.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    slots: Mutex<BTreeMap<String, Slot>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut slots = self.slots.lock().expect("registry lock");
        let slot = slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Counter(Arc::new(AtomicU64::new(0))));
        match slot {
            Slot::Counter(c) => Counter(Some(c.clone())),
            _ => panic!("metric '{name}' already registered with a different kind"),
        }
    }

    /// Get or create the gauge `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut slots = self.slots.lock().expect("registry lock");
        let slot = slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Gauge(Arc::new(AtomicU64::new(0))));
        match slot {
            Slot::Gauge(g) => Gauge(Some(g.clone())),
            _ => panic!("metric '{name}' already registered with a different kind"),
        }
    }

    /// Get or create the histogram `name` with the given inclusive upper
    /// bucket bounds. If the histogram already exists it is returned as-is
    /// (its original bounds win).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind, or if
    /// `bounds` is not strictly increasing.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        let mut slots = self.slots.lock().expect("registry lock");
        let slot = slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Histogram(Arc::new(HistogramCell::new(bounds))));
        match slot {
            Slot::Histogram(h) => Histogram(Some(h.clone())),
            _ => panic!("metric '{name}' already registered with a different kind"),
        }
    }

    /// Snapshot every metric into a [`Report`].
    pub fn snapshot(&self) -> Report {
        let slots = self.slots.lock().expect("registry lock");
        let mut report = Report::default();
        for (name, slot) in slots.iter() {
            match slot {
                Slot::Counter(c) => {
                    report
                        .counters
                        .insert(name.clone(), c.load(Ordering::Relaxed));
                }
                Slot::Gauge(g) => {
                    report
                        .gauges
                        .insert(name.clone(), g.load(Ordering::Relaxed));
                }
                Slot::Histogram(h) => {
                    report.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        report
    }
}

/// Exponentially spaced histogram bounds: `start, start*factor, …`
/// (`count` bounds total).
///
/// # Panics
///
/// Panics if `start == 0`, `factor < 2`, or `count == 0`.
pub fn exponential_bounds(start: u64, factor: u64, count: usize) -> Vec<u64> {
    assert!(start > 0 && factor >= 2 && count > 0, "degenerate bounds");
    let mut v = Vec::with_capacity(count);
    let mut b = start;
    for _ in 0..count {
        v.push(b);
        b = b.saturating_mul(factor);
    }
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let r = MetricsRegistry::new();
        let c = r.counter("c");
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        let g = r.gauge("g");
        g.set(5);
        g.observe_max(3); // ignored: smaller
        g.observe_max(8);
        assert_eq!(g.get(), 8);
    }

    #[test]
    fn same_name_shares_the_cell() {
        let r = MetricsRegistry::new();
        r.counter("x").add(1);
        r.counter("x").add(2);
        assert_eq!(r.counter("x").get(), 3);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let r = MetricsRegistry::new();
        r.counter("m");
        r.gauge("m");
    }

    #[test]
    fn histogram_buckets_values_inclusively() {
        let r = MetricsRegistry::new();
        let h = r.histogram("h", &[10, 100]);
        for v in [0, 10, 11, 100, 101, 5000] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 2, 2]); // <=10, <=100, overflow
        assert_eq!(s.count, 6);
        assert_eq!(s.max, 5000);
        assert_eq!(s.sum, 5222); // 0 + 10 + 11 + 100 + 101 + 5000
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_rejected() {
        let r = MetricsRegistry::new();
        r.histogram("h", &[10, 10]);
    }

    #[test]
    fn exponential_bounds_grow() {
        assert_eq!(exponential_bounds(64, 4, 4), vec![64, 256, 1024, 4096]);
    }

    #[test]
    fn snapshot_collects_every_kind() {
        let r = MetricsRegistry::new();
        r.counter("a").inc();
        r.gauge("b").set(2);
        r.histogram("c", &[1]).observe(1);
        let s = r.snapshot();
        assert_eq!(s.counters.len(), 1);
        assert_eq!(s.gauges.len(), 1);
        assert_eq!(s.histograms.len(), 1);
    }
}

//! Property tests for the related-work baselines: correctness of the
//! functional models and losslessness of the LOCO-I comparator on arbitrary
//! inputs.

use proptest::prelude::*;
use sw_core::kernels::BoxFilter;
use sw_core::reference::direct_sliding_window;
use sw_image::ImageU8;
use sw_related::{locoi_decode, locoi_encode, BlockBufferPlan, SegmentedPlan};

fn image_from_seed(w: usize, h: usize, seed: u32, smooth: bool) -> ImageU8 {
    let mut state = seed | 1;
    ImageU8::from_fn(w, h, |x, y| {
        state = state.wrapping_mul(1664525).wrapping_add(1013904223);
        if smooth {
            (100.0 + 60.0 * ((x + 2 * y) as f64 * 0.08).sin() + ((state >> 29) as f64))
                .clamp(0.0, 255.0) as u8
        } else {
            (state >> 24) as u8
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn locoi_roundtrip_any_image(
        w in 2usize..40,
        h in 2usize..24,
        seed in any::<u32>(),
        smooth in any::<bool>(),
    ) {
        let img = image_from_seed(w, h, seed, smooth);
        let bytes = locoi_encode(&img);
        prop_assert_eq!(locoi_decode(&bytes, w, h), img);
    }

    #[test]
    fn block_buffer_matches_reference(
        n in (2usize..4).prop_map(|k| k * 2),      // 4, 6
        extra in 1usize..12,
        seed in any::<u32>(),
    ) {
        let b = n + extra;
        let (w, h) = (b + 13, b + 9);
        let img = image_from_seed(w, h, seed, true);
        let kernel = BoxFilter::new(n);
        let plan = BlockBufferPlan::new(n, b, w, h);
        prop_assert_eq!(
            plan.process_frame(&img, &kernel),
            direct_sliding_window(&img, &kernel)
        );
    }

    #[test]
    fn segmented_matches_reference(
        n in (2usize..4).prop_map(|k| k * 2),
        extra in 2usize..12,
        seed in any::<u32>(),
    ) {
        let s = n + extra;
        let (w, h) = (s + 17, n + 11);
        let img = image_from_seed(w, h, seed, false);
        let kernel = BoxFilter::new(n);
        let plan = SegmentedPlan::new(n, s, w, h);
        prop_assert_eq!(
            plan.process_frame(&img, &kernel),
            direct_sliding_window(&img, &kernel)
        );
    }

    #[test]
    fn block_buffer_traffic_always_exceeds_streaming(
        n in (2usize..9).prop_map(|k| k * 2),
        extra in 1usize..40,
    ) {
        let plan = BlockBufferPlan::new(n, n + extra, 512, 512);
        prop_assert!(plan.reads_per_window() > 1.0);
    }
}

//! LOCO-I / JPEG-LS-style lossless compressor (paper ref \[8]).
//!
//! The implementation moved to [`sw_bitstream::locoi`] so the pluggable
//! line-codec layer in `sw-core` can wrap it without creating a dependency
//! cycle (`sw-related` already depends on `sw-core` for the block-buffer
//! baselines). This module re-exports the public API so existing users of
//! `sw_related::locoi` keep working unchanged.

pub use sw_bitstream::locoi::{locoi_compressed_bits, locoi_decode, locoi_encode};

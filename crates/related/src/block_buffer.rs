//! Block-buffering baseline (paper refs \[5], \[6] — Yu & Leeser).
//!
//! Instead of buffering full image rows, read a `B × B` pixel block
//! (`B > N`), compute every window fully contained in it, and prefetch the
//! next block while processing (double buffering). Adjacent blocks must
//! overlap by `N − 1` pixels in both axes, so every off-chip pixel in the
//! overlap region is fetched more than once — the paper's criticism: "its
//! average number of off-chip accesses is greater than 1 pixel per window
//! operation".

use sw_core::kernels::WindowKernel;
use sw_core::reference::direct_sliding_window;
use sw_fpga::bram::brams_for_bits;
use sw_image::ImageU8;

/// Cost model of a block-buffering configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockBufferPlan {
    /// Window size N.
    pub window: usize,
    /// Block size B (must exceed N).
    pub block: usize,
    /// Image width.
    pub width: usize,
    /// Image height.
    pub height: usize,
}

impl BlockBufferPlan {
    /// New plan.
    ///
    /// # Panics
    ///
    /// Panics unless `block > window` and the image holds at least one
    /// window.
    pub fn new(window: usize, block: usize, width: usize, height: usize) -> Self {
        assert!(block > window, "block must exceed the window");
        assert!(width >= window && height >= window, "image too small");
        Self {
            window,
            block,
            width,
            height,
        }
    }

    /// Horizontal/vertical block stride: `B − N + 1` fresh windows per axis.
    #[inline]
    pub fn stride(&self) -> usize {
        self.block - self.window + 1
    }

    /// Number of blocks fetched for the whole frame.
    pub fn blocks(&self) -> usize {
        let out_w = self.width - self.window + 1;
        let out_h = self.height - self.window + 1;
        out_w.div_ceil(self.stride()) * out_h.div_ceil(self.stride())
    }

    /// Output windows per frame.
    pub fn windows(&self) -> usize {
        (self.width - self.window + 1) * (self.height - self.window + 1)
    }

    /// Total off-chip pixel reads per frame (every block is a full `B × B`
    /// fetch).
    pub fn offchip_reads(&self) -> u64 {
        self.blocks() as u64 * (self.block * self.block) as u64
    }

    /// Average off-chip reads per output window — the paper's headline
    /// criticism (> 1; the line-buffer architectures achieve exactly 1 read
    /// per *pixel*, i.e. ≈ 1 per window).
    pub fn reads_per_window(&self) -> f64 {
        self.offchip_reads() as f64 / self.windows() as f64
    }

    /// On-chip bits: two `B × B` 8-bit blocks (double buffering).
    pub fn onchip_bits(&self) -> u64 {
        2 * (self.block * self.block) as u64 * 8
    }

    /// 18 Kb BRAMs by raw capacity.
    pub fn brams(&self) -> u32 {
        brams_for_bits(self.onchip_bits())
    }

    /// The block size minimizing off-chip traffic under an on-chip bit
    /// budget (larger blocks amortize the overlap better).
    pub fn best_block_for_budget(
        window: usize,
        width: usize,
        height: usize,
        budget_bits: u64,
    ) -> Option<BlockBufferPlan> {
        (window + 1..=width.min(height))
            .map(|b| BlockBufferPlan::new(window, b, width, height))
            .take_while(|p| p.onchip_bits() <= budget_bits)
            .last()
    }

    /// Functional model: process the frame block by block. Produces output
    /// identical to the direct sliding window (proves the cost model
    /// corresponds to a correct architecture).
    pub fn process_frame(&self, img: &ImageU8, kernel: &dyn WindowKernel) -> ImageU8 {
        assert_eq!(img.width(), self.width, "image width mismatch");
        assert_eq!(img.height(), self.height, "image height mismatch");
        assert_eq!(kernel.window_size(), self.window, "kernel size mismatch");
        let n = self.window;
        let out_w = self.width - n + 1;
        let out_h = self.height - n + 1;
        let mut out = ImageU8::filled(out_w, out_h, 0);
        let stride = self.stride();
        let mut by = 0;
        while by < out_h {
            let mut bx = 0;
            while bx < out_w {
                // Fetch one block (clamped to the image edge).
                let bw = self.block.min(self.width - bx);
                let bh = self.block.min(self.height - by);
                let block = img.crop(bx, by, bw, bh);
                // Process every window inside it.
                if bw >= n && bh >= n {
                    let sub = direct_sliding_window(&block, kernel);
                    for y in 0..sub.height().min(stride) {
                        for x in 0..sub.width().min(stride) {
                            if bx + x < out_w && by + y < out_h {
                                out.set(bx + x, by + y, sub.get(x, y));
                            }
                        }
                    }
                }
                bx += stride;
            }
            by += stride;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_core::kernels::{BoxFilter, MedianFilter};

    #[test]
    fn output_matches_direct_reference() {
        let img = ImageU8::from_fn(40, 28, |x, y| ((x * 7 + y * 13) % 256) as u8);
        for (n, b) in [(4usize, 8usize), (4, 11), (8, 12)] {
            let kernel = BoxFilter::new(n);
            let plan = BlockBufferPlan::new(n, b, 40, 28);
            let got = plan.process_frame(&img, &kernel);
            assert_eq!(got, direct_sliding_window(&img, &kernel), "N={n} B={b}");
        }
    }

    #[test]
    fn output_matches_for_nonlinear_kernel() {
        let img = ImageU8::from_fn(30, 30, |x, y| ((x * x + y * 3) % 256) as u8);
        let kernel = MedianFilter::new(4);
        let plan = BlockBufferPlan::new(4, 9, 30, 30);
        assert_eq!(
            plan.process_frame(&img, &kernel),
            direct_sliding_window(&img, &kernel)
        );
    }

    #[test]
    fn reads_per_window_exceed_one() {
        // The paper's criticism, quantified: for any finite block size the
        // overlap forces > 1 off-chip read per window.
        for b in [9usize, 16, 32, 64] {
            let plan = BlockBufferPlan::new(8, b, 512, 512);
            assert!(
                plan.reads_per_window() > 1.0,
                "B={b}: {}",
                plan.reads_per_window()
            );
        }
        // And it approaches 1 as the block grows.
        let small = BlockBufferPlan::new(8, 9, 512, 512).reads_per_window();
        let large = BlockBufferPlan::new(8, 64, 512, 512).reads_per_window();
        assert!(large < small / 4.0, "{small} -> {large}");
    }

    #[test]
    fn onchip_cost_is_two_blocks() {
        let plan = BlockBufferPlan::new(8, 32, 512, 512);
        assert_eq!(plan.onchip_bits(), 2 * 32 * 32 * 8);
        assert_eq!(plan.brams(), 1);
    }

    #[test]
    fn best_block_respects_budget() {
        let budget = 4 * 18 * 1024; // 4 BRAMs
        let plan = BlockBufferPlan::best_block_for_budget(8, 512, 512, budget).unwrap();
        assert!(plan.onchip_bits() <= budget);
        // The next size up must exceed the budget.
        let bigger = BlockBufferPlan::new(8, plan.block + 1, 512, 512);
        assert!(bigger.onchip_bits() > budget);
    }

    #[test]
    #[should_panic(expected = "block must exceed")]
    fn block_must_exceed_window() {
        BlockBufferPlan::new(8, 8, 64, 64);
    }
}

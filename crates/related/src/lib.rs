//! Related-work baselines (paper Section II).
//!
//! The paper positions its architecture against three families of prior
//! work. This crate implements each of them so the comparison is
//! reproducible rather than rhetorical:
//!
//! * [`block_buffer`] — the block-buffering method of Yu & Leeser
//!   (refs \[5], \[6]): read a `B × B` block (B > N), process all interior
//!   windows, double-buffer the next block. Saves on-chip memory but "its
//!   average number of off-chip accesses is greater than 1 pixel per window
//!   operation".
//! * [`segmented`] — the segment-partitioning method of Dong et al.
//!   (ref \[7]): process the image in vertical segments so line buffers span
//!   a segment instead of the full width. Saves BRAMs, but columns shared
//!   by adjacent segments are fetched twice and "it requires pixels to be
//!   in off-chip memory" (no camera streaming).
//! * [`locoi`] — a LOCO-I / JPEG-LS-style lossless compressor (ref \[8]):
//!   MED prediction plus adaptive Golomb–Rice coding. The paper's first
//!   contribution claims its much simpler scheme "gives comparable
//!   compression ratios to the state of the art compression algorithms";
//!   this module lets the benchmark harness check that claim on the same
//!   dataset.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block_buffer;
pub mod locoi;
pub mod segmented;

pub use block_buffer::BlockBufferPlan;
pub use locoi::{locoi_compressed_bits, locoi_decode, locoi_encode};
pub use segmented::SegmentedPlan;

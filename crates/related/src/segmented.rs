//! Segment-partitioning baseline (paper ref \[7] — Dong et al.).
//!
//! The image is split into vertical segments of width `S`; each segment is
//! processed with ordinary line buffers that only span `S` pixels instead of
//! the full width `W`, cutting BRAM. Adjacent segments must overlap by
//! `N − 1` columns (to produce the border windows), so overlap columns are
//! fetched from off-chip memory once per adjacent segment — and the whole
//! frame must reside off-chip, which is the paper's criticism: "not
//! efficient for streaming applications when pixels come directly from a
//! camera sensor".

use sw_core::config::ArchConfig;
use sw_core::kernels::WindowKernel;
use sw_core::traditional::TraditionalSlidingWindow;
use sw_fpga::bram::{best_config, brams_for_bits};
use sw_image::ImageU8;

/// Cost model of a segmented configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentedPlan {
    /// Window size N.
    pub window: usize,
    /// Segment width S (window < S ≤ image width).
    pub segment: usize,
    /// Image width.
    pub width: usize,
    /// Image height.
    pub height: usize,
}

impl SegmentedPlan {
    /// New plan.
    ///
    /// # Panics
    ///
    /// Panics unless `window < segment <= width`.
    pub fn new(window: usize, segment: usize, width: usize, height: usize) -> Self {
        assert!(segment > window, "segment must exceed the window");
        assert!(segment <= width, "segment wider than the image");
        Self {
            window,
            segment,
            width,
            height,
        }
    }

    /// Fresh output columns per segment.
    #[inline]
    pub fn stride(&self) -> usize {
        self.segment - self.window + 1
    }

    /// Number of segments per frame.
    pub fn segments(&self) -> usize {
        (self.width - self.window + 1).div_ceil(self.stride())
    }

    /// Total off-chip pixel reads per frame (each segment re-reads its full
    /// `S × H` span).
    pub fn offchip_reads(&self) -> u64 {
        self.segments() as u64 * (self.segment * self.height) as u64
    }

    /// Off-chip reads per input pixel (1.0 would be streaming-optimal).
    pub fn reads_per_pixel(&self) -> f64 {
        self.offchip_reads() as f64 / (self.width * self.height) as f64
    }

    /// On-chip line-buffer bits: `(N − 1)` rows of `S − N` pixels.
    pub fn onchip_bits(&self) -> u64 {
        (self.window as u64 - 1) * (self.segment - self.window) as u64 * 8
    }

    /// 18 Kb BRAM count, width-aware (one FIFO line per buffered row, as in
    /// the traditional architecture but `S` wide).
    pub fn brams(&self) -> u32 {
        let per_line = best_config(8, (self.segment - self.window) as u32).1;
        (self.window as u32 - 1) * per_line
    }

    /// 18 Kb BRAM count by raw capacity (lower bound).
    pub fn brams_capacity(&self) -> u32 {
        brams_for_bits(self.onchip_bits())
    }

    /// Functional model: process each segment independently and stitch the
    /// outputs; identical to the direct sliding window over the full frame.
    pub fn process_frame(&self, img: &ImageU8, kernel: &dyn WindowKernel) -> ImageU8 {
        assert_eq!(img.width(), self.width, "image width mismatch");
        assert_eq!(img.height(), self.height, "image height mismatch");
        let n = self.window;
        let out_w = self.width - n + 1;
        let out_h = self.height - n + 1;
        let mut out = ImageU8::filled(out_w, out_h, 0);
        let mut x0 = 0;
        while x0 < out_w {
            let seg_w = self.segment.min(self.width - x0);
            let segment = img.crop(x0, 0, seg_w, self.height);
            if seg_w > n {
                let cfg = ArchConfig::new(n, seg_w);
                let mut arch = TraditionalSlidingWindow::new(cfg);
                let sub = arch
                    .process_frame(&segment, kernel)
                    .expect("segment geometry is validated above");
                for y in 0..sub.image.height() {
                    for x in 0..sub.image.width().min(self.stride()) {
                        if x0 + x < out_w {
                            out.set(x0 + x, y, sub.image.get(x, y));
                        }
                    }
                }
            } else {
                // Edge remainder narrower than the architecture minimum:
                // fall back to direct computation for the last columns.
                let sub = sw_core::reference::direct_sliding_window(&segment, kernel);
                for y in 0..sub.height() {
                    for x in 0..sub.width() {
                        out.set(x0 + x, y, sub.get(x, y));
                    }
                }
            }
            x0 += self.stride();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_core::kernels::{BoxFilter, Dilate};
    use sw_core::reference::direct_sliding_window;

    #[test]
    fn output_matches_direct_reference() {
        let img = ImageU8::from_fn(48, 20, |x, y| ((x * 11 + y * 29) % 256) as u8);
        for (n, s) in [(4usize, 12usize), (4, 17), (8, 16)] {
            let kernel = BoxFilter::new(n);
            let plan = SegmentedPlan::new(n, s, 48, 20);
            let got = plan.process_frame(&img, &kernel);
            assert_eq!(got, direct_sliding_window(&img, &kernel), "N={n} S={s}");
        }
    }

    #[test]
    fn output_matches_for_morphology() {
        let img = ImageU8::from_fn(37, 19, |x, y| ((x * y + 3) % 256) as u8);
        let plan = SegmentedPlan::new(4, 10, 37, 19);
        let kernel = Dilate::new(4);
        assert_eq!(
            plan.process_frame(&img, &kernel),
            direct_sliding_window(&img, &kernel)
        );
    }

    #[test]
    fn brams_shrink_with_segment_width_but_traffic_grows() {
        let full = SegmentedPlan::new(64, 512, 512, 512);
        let half = SegmentedPlan::new(64, 256, 512, 512);
        let quarter = SegmentedPlan::new(64, 128, 512, 512);
        assert!(half.onchip_bits() < full.onchip_bits());
        assert!(quarter.onchip_bits() < half.onchip_bits());
        // One segment == the traditional architecture == streaming optimal.
        assert_eq!(full.segments(), 1);
        assert!((full.reads_per_pixel() - 1.0).abs() < 1e-9);
        assert!(half.reads_per_pixel() > 1.0);
        assert!(quarter.reads_per_pixel() > half.reads_per_pixel());
    }

    #[test]
    fn bram_counts_match_traditional_formula_at_full_width() {
        // A single full-width segment degenerates to the traditional
        // architecture (N−1 lines, one BRAM each at width 512).
        let plan = SegmentedPlan::new(8, 512, 512, 512);
        assert_eq!(plan.brams(), 7);
    }

    #[test]
    #[should_panic(expected = "segment must exceed")]
    fn segment_must_exceed_window() {
        SegmentedPlan::new(8, 8, 64, 64);
    }
}

//! Register-level model of the paper's **Bit Unpacking** unit (Figures 8–9).
//!
//! The block reconstructs coefficients from the packed stream. Its state:
//!
//! * `CBits` — count of valid bits remaining in the remainder register,
//! * `Yout_rem` — the remainder register holding bits left over after each
//!   extraction (16 bits in the paper: worst case is 7 leftover bits plus a
//!   fresh 8-bit word; the generalized 16-bit datapath here needs up to 31,
//!   modeled in a `u64`),
//! * `Yout_Reg` — the sign-extended output register.
//!
//! Per output, the block reads one BitMap bit and the column's NBits value.
//! BitMap 0 short-circuits to an output of zero without consuming payload
//! bits; BitMap 1 extracts the next `NBits` payload bits and sign-extends
//! them "to the pixel size" (paper Section IV-C). When `CBits < NBits` the
//! block first pulls another word from the Pixel FIFO — modeled by
//! [`BitUnpackingUnit::needs_word`] / [`BitUnpackingUnit::feed_word`].

use crate::writer::sign_extend;
use crate::Coeff;

/// The Bit Unpacking unit.
#[derive(Debug, Clone)]
pub struct BitUnpackingUnit {
    word_bits: u32,
    /// `Yout_rem`: leftover payload bits, LSB-first.
    rem: u64,
    /// `CBits`: number of valid bits in `rem`.
    cbits: u32,
    /// Total payload bits consumed.
    consumed_bits: u64,
}

impl BitUnpackingUnit {
    /// New unpacker with the paper's 8-bit FIFO words.
    pub fn new() -> Self {
        Self::with_word_bits(8)
    }

    /// New unpacker with a custom FIFO word width (8 or 16).
    pub fn with_word_bits(word_bits: u32) -> Self {
        assert!(
            word_bits == 8 || word_bits == 16,
            "word width must be 8 or 16"
        );
        Self {
            word_bits,
            rem: 0,
            cbits: 0,
            consumed_bits: 0,
        }
    }

    /// Bits currently available in `Yout_rem`.
    #[inline]
    pub fn available_bits(&self) -> u32 {
        self.cbits
    }

    /// Total payload bits consumed since construction/reset.
    #[inline]
    pub fn consumed_bits(&self) -> u64 {
        self.consumed_bits
    }

    /// Whether another FIFO word must be fed before an `nbits`-wide
    /// extraction can proceed (the paper's `CBits < 8` comparator,
    /// generalized to the exact requirement).
    #[inline]
    pub fn needs_word(&self, nbits: u32) -> bool {
        self.cbits < nbits
    }

    /// Feed one word from the Pixel FIFO into `Yout_rem`.
    ///
    /// # Panics
    ///
    /// Panics if the remainder register would overflow (the architecture
    /// never feeds more than it needs — `Yout_rem` is sized for exactly one
    /// starved extraction).
    pub fn feed_word(&mut self, w: u8) {
        assert!(
            self.cbits + self.word_bits <= 48,
            "Yout_rem overflow: the controller fed too many words"
        );
        self.rem |= (w as u64) << self.cbits;
        self.cbits += self.word_bits;
    }

    /// Feed fewer than a full word of bits (the packer bypass path; see
    /// `BitPackingUnit::drain_staged`).
    ///
    /// # Panics
    ///
    /// Panics if the remainder register would overflow or `n > 16`.
    pub fn feed_bits(&mut self, bits: u32, n: u32) {
        assert!(n <= 16, "at most one word of bypass bits");
        assert!(self.cbits + n <= 48, "Yout_rem overflow");
        self.rem |= ((bits & ((1u32 << n) - 1)) as u64) << self.cbits;
        self.cbits += n;
    }

    /// One output cycle.
    ///
    /// * `bitmap_bit == false` ⇒ outputs `Some(0)` without consuming bits.
    /// * `bitmap_bit == true` ⇒ extracts `nbits` bits, sign-extends, and
    ///   returns the coefficient; returns `None` when starved (caller must
    ///   [`feed_word`](Self::feed_word) and retry — in hardware this is the
    ///   same-cycle FIFO read path through the big multiplexer).
    pub fn clock(&mut self, bitmap_bit: bool, nbits: u32) -> Option<Coeff> {
        assert!((1..=16).contains(&nbits), "NBits out of range");
        if !bitmap_bit {
            return Some(0);
        }
        if self.cbits < nbits {
            return None;
        }
        let raw = (self.rem & ((1u64 << nbits) - 1)) as u32;
        self.rem >>= nbits;
        self.cbits -= nbits;
        self.consumed_bits += nbits as u64;
        Some(sign_extend(raw, nbits))
    }

    /// Discard any leftover bits (frame boundary / padded flush).
    pub fn reset(&mut self) {
        self.rem = 0;
        self.cbits = 0;
        self.consumed_bits = 0;
    }

    /// Drop up to `word_bits − 1` zero padding bits left by a packer flush.
    ///
    /// # Panics
    ///
    /// Panics if the leftover bits are not all zero (stream corruption) or if
    /// a full word or more is left (controller bug).
    pub fn consume_padding(&mut self) {
        assert!(
            self.cbits < self.word_bits,
            "a full word remains: not padding"
        );
        assert_eq!(self.rem, 0, "non-zero padding bits: corrupt stream");
        self.cbits = 0;
    }
}

impl Default for BitUnpackingUnit {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nbits::min_bits_significant;
    use crate::packer::BitPackingUnit;
    use crate::{is_significant, Coeff};

    /// End-to-end: pack columns with the hardware packer, then unpack with
    /// the hardware unpacker, driving the FIFO hand-shake exactly as the
    /// architecture does.
    fn roundtrip(columns: &[Vec<Coeff>], threshold: Coeff) -> Vec<Vec<Coeff>> {
        let mut packer = BitPackingUnit::new(threshold);
        let mut fifo: std::collections::VecDeque<u8> = Default::default();
        let mut meta = Vec::new(); // (nbits, bitmap bits per column)
        for col in columns {
            let nbits = min_bits_significant(col, threshold);
            let mut bits = Vec::new();
            for &c in col {
                let out = packer.clock(c, nbits);
                bits.push(out.bitmap_bit);
                fifo.extend(out.words);
            }
            meta.push((nbits, bits));
        }
        if let Some(w) = packer.flush() {
            fifo.push_back(w);
        }

        let mut unpacker = BitUnpackingUnit::new();
        let mut out = Vec::new();
        for (nbits, bits) in &meta {
            let mut col = Vec::new();
            for &b in bits {
                loop {
                    match unpacker.clock(b, *nbits) {
                        Some(c) => {
                            col.push(c);
                            break;
                        }
                        None => unpacker.feed_word(fifo.pop_front().expect("FIFO underrun")),
                    }
                }
            }
            out.push(col);
        }
        out
    }

    #[test]
    fn lossless_roundtrip_restores_exactly() {
        let columns = vec![
            vec![13, 12, -9, 7],
            vec![0, 0, 3, -3],
            vec![0, 0, 0, 0],
            vec![255, -255, 1, 0],
            vec![-510, 510, -1, 1],
        ];
        assert_eq!(roundtrip(&columns, 0), columns);
    }

    #[test]
    fn lossy_roundtrip_zeroes_sub_threshold() {
        let columns = vec![vec![13, 1, -2, 7], vec![5, -5, 4, -4]];
        let expect: Vec<Vec<Coeff>> = columns
            .iter()
            .map(|col| {
                col.iter()
                    .map(|&c| if is_significant(c, 4) { c } else { 0 })
                    .collect()
            })
            .collect();
        assert_eq!(roundtrip(&columns, 4), expect);
    }

    #[test]
    fn paper_figure9_walkthrough() {
        // Figure 9: the block reads 8 bits containing pixel A's bits and part
        // of B's; extracts NBits, sign-extends, keeps the remainder. Model:
        // A = -9 at 5 bits (10111), B = 13 at 5 bits (01101):
        // first byte = 0b101_10111 (A in bits 0-4, B's low 3 bits above).
        let mut u = BitUnpackingUnit::new();
        assert!(u.needs_word(5));
        u.feed_word(0b101_10111);
        assert_eq!(u.clock(true, 5), Some(-9));
        assert_eq!(u.available_bits(), 3); // B's low bits wait in Yout_rem
        assert!(u.needs_word(5));
        u.feed_word(0b0000_0001); // B's high bits
        assert_eq!(u.clock(true, 5), Some(13));
        assert_eq!(u.available_bits(), 6);
    }

    #[test]
    fn bitmap_zero_outputs_zero_without_consuming() {
        let mut u = BitUnpackingUnit::new();
        u.feed_word(0xff);
        assert_eq!(u.clock(false, 8), Some(0));
        assert_eq!(u.available_bits(), 8);
        assert_eq!(u.consumed_bits(), 0);
    }

    #[test]
    fn starved_extraction_returns_none() {
        let mut u = BitUnpackingUnit::new();
        u.feed_word(0x0f);
        assert_eq!(u.available_bits(), 8);
        assert!(u.needs_word(9));
        assert_eq!(u.clock(true, 9), None);
        u.feed_word(0x00);
        assert_eq!(u.clock(true, 9), Some(0x0f));
    }

    #[test]
    fn consume_padding_accepts_zero_tail() {
        let mut u = BitUnpackingUnit::new();
        u.feed_word(0b0000_0101);
        assert_eq!(u.clock(true, 3), Some(-3)); // 101 -> -3
        u.consume_padding();
        assert_eq!(u.available_bits(), 0);
    }

    #[test]
    #[should_panic(expected = "corrupt")]
    fn consume_padding_rejects_nonzero_tail() {
        let mut u = BitUnpackingUnit::new();
        u.feed_word(0b0100_0101);
        let _ = u.clock(true, 3);
        u.consume_padding();
    }

    #[test]
    fn wide_coefficients_roundtrip_through_16bit_path() {
        let columns = vec![vec![-510, 509, 255, -256]];
        assert_eq!(roundtrip(&columns, 0), columns);
    }
}

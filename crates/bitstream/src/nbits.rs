//! Minimum two's-complement width ("NBits") computation.
//!
//! The paper finds, per sub-band column, the minimum number of bits that
//! represents every coefficient of the column in two's complement
//! (Section V-B, Figure 7). This module provides:
//!
//! * [`min_bits`] / [`min_bits_column`] — the arithmetic definition,
//! * [`NBitsCircuit`] — a faithful structural model of the paper's circuit
//!   (per-coefficient XOR of the sign bit against the lower bits, an
//!   OR-reduction across coefficients, then a priority encoder),
//!
//! and tests proving the two agree bit for bit.

use crate::{Coeff, Sample};
use sw_wavelet::swar::load_lanes;

/// Minimum number of two's-complement bits needed to represent `v`.
///
/// `0` and `−1` need 1 bit; `1` needs 2 bits (`01`); `−6` needs 4 (`1010`);
/// `255` needs 9 (`0_1111_1111`).
///
/// ```
/// use sw_bitstream::min_bits;
/// assert_eq!(min_bits(0), 1);
/// assert_eq!(min_bits(-1), 1);
/// assert_eq!(min_bits(13), 5);   // paper Figure 2: column (13,12,-9,7) -> 5
/// assert_eq!(min_bits(-6), 4);   // paper Figure 7 example
/// assert_eq!(min_bits(255), 9);
/// assert_eq!(min_bits(-510), 10);
/// ```
#[inline]
pub fn min_bits(v: Coeff) -> u32 {
    min_bits_of(v)
}

/// Width-generic twin of [`min_bits`].
///
/// For `v ≥ 0` we need the highest '1' plus a sign bit; for `v < 0` the
/// highest '0' of `v` (i.e. highest '1' of `!v`) plus the sign bit — which is
/// exactly one leading-zeros count of the sign-XOR [`Sample::magnitude`].
#[inline]
pub fn min_bits_of<S: Sample>(v: S) -> u32 {
    v.min_bits()
}

/// Minimum width that represents *every* coefficient in `column`.
///
/// Returns 1 for an empty column (the paper always stores an NBits field, so
/// an all-insignificant column still carries a well-defined width).
#[inline]
pub fn min_bits_column(column: &[Coeff]) -> u32 {
    min_bits_column_of(column)
}

/// Width-generic twin of [`min_bits_column`].
#[inline]
pub fn min_bits_column_of<S: Sample>(column: &[S]) -> u32 {
    column.iter().map(|&c| min_bits_of(c)).max().unwrap_or(1)
}

/// Minimum width over only the *significant* coefficients of a column.
///
/// Insignificant coefficients are not packed, so they must not inflate the
/// column width. Falls back to 1 when nothing is significant.
#[inline]
pub fn min_bits_significant(column: &[Coeff], threshold: Coeff) -> u32 {
    min_bits_significant_of(column, threshold)
}

/// Width-generic twin of [`min_bits_significant`].
#[inline]
pub fn min_bits_significant_of<S: Sample>(column: &[S], threshold: S) -> u32 {
    column
        .iter()
        .copied()
        .filter(|&c| crate::is_significant_of(c, threshold))
        .map(min_bits_of)
        .max()
        .unwrap_or(1)
}

/// Bit-sliced NBits width scan: the hot-path twin of
/// [`min_bits_significant`], guaranteed to return the identical width.
///
/// Works the way the paper's Figure 7 circuit does, but four 16-bit lanes at
/// a time: each coefficient is mapped to its sign-XOR magnitude
/// (`v ^ (v >> 15)`, exactly the XOR stage of [`NBitsCircuit`]), the
/// magnitudes are OR-reduced across the whole column, and a single leading-
/// zeros count priority-encodes the final width. The threshold filter is
/// folded into the magnitude form: a lane's magnitude participates only when
/// `v != 0 && |v| >= T`.
pub fn min_bits_significant_sliced(column: &[Coeff], threshold: Coeff) -> u32 {
    min_bits_significant_sliced_of(column, threshold)
}

/// Width-generic twin of [`min_bits_significant_sliced`], `S::LANES` lanes at
/// a time (4×16 for [`Coeff`], 2×32 for the wide instance).
pub fn min_bits_significant_sliced_of<S: Sample>(column: &[S], threshold: S) -> u32 {
    let or_mag: u64 = if threshold.to_i64() <= 1 {
        // T <= 1 means significance is simply `v != 0`, and mag(0) == 0
        // contributes nothing to an OR-fold — no per-lane masking needed.
        let mut or64 = 0u64;
        let mut chunks = column.chunks_exact(S::LANES);
        for lanes in &mut chunks {
            let x = load_lanes::<S>(lanes);
            // Per-lane sign mask: lane = all-ones where the coefficient is
            // negative, 0 otherwise; XOR yields the sign-XOR magnitude.
            let sign = ((x >> (S::LANE_BITS - 1)) & S::LANE_ONE).wrapping_mul(S::LANE0_MASK);
            or64 |= x ^ sign;
        }
        // Fold the lanes of the accumulated OR into one lane-wide mask.
        let mut folded = or64;
        let mut width = 64u32;
        while width > S::LANE_BITS {
            width /= 2;
            folded |= folded >> width;
        }
        let mut or_mag = folded & S::LANE0_MASK;
        for &v in chunks.remainder() {
            or_mag |= v.magnitude();
        }
        or_mag
    } else {
        // Lossy thresholds need a per-coefficient compare before the
        // OR-fold; the filter must be the scalar `is_significant` itself so
        // the two paths cannot disagree on any input.
        let mut or_mag = 0u64;
        for &v in column {
            if crate::is_significant_of(v, threshold) {
                or_mag |= v.magnitude();
            }
        }
        or_mag
    };
    // Priority encode: mag(0) == 0 so an all-insignificant column falls back
    // to the architectural minimum width of 1.
    65 - or_mag.leading_zeros().min(64)
}

/// Gate-level model of the paper's "Find Minimum Number of Bits" block
/// (Figure 7), generalised to `width`-bit coefficients.
///
/// Structure, exactly as drawn in the paper:
///
/// 1. per coefficient, `width − 1` two-input XOR gates compare the sign bit
///    against bits `0..width−1`;
/// 2. `width − 1` n-input OR gates combine the XOR outputs across the `n`
///    coefficients of the column;
/// 3. a priority encoder maps the highest asserted OR output at position `p`
///    to `NBits = p + 2` (no asserted output ⇒ `NBits = 1`).
#[derive(Debug, Clone, Copy)]
pub struct NBitsCircuit {
    width: u32,
}

impl NBitsCircuit {
    /// Create a circuit model for `width`-bit two's-complement inputs
    /// (2 ..= 32; the paper instantiates `width = 8`, the wide integral
    /// datapath `width = 32`).
    pub fn new(width: u32) -> Self {
        assert!((2..=32).contains(&width), "coefficient width out of range");
        Self { width }
    }

    /// Coefficient width the circuit was instantiated for.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The per-coefficient XOR stage: bit `i` of the result is
    /// `sign ^ bit_i(v)` for `i` in `0..width−1`.
    ///
    /// Paper example: `−6 = 0b1111_1010` → `0b000_0101`.
    #[inline]
    pub fn xor_stage(&self, v: Coeff) -> u32 {
        self.xor_stage_of(v) as u32
    }

    /// Width-generic twin of [`NBitsCircuit::xor_stage`] for any sample
    /// instance whose coefficients fit the configured circuit width.
    #[inline]
    pub fn xor_stage_of<S: Sample>(&self, v: S) -> u64 {
        let bits = v.to_raw();
        let low = (1u64 << (self.width - 1)) - 1;
        let sign = (bits >> (self.width - 1)) & 1;
        let sign_mask = if sign == 1 { low } else { 0 };
        (bits & low) ^ sign_mask
    }

    /// Evaluate the full circuit on one column of coefficients.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if any coefficient does not fit in the
    /// configured width — the hardware wires simply cannot carry it.
    pub fn evaluate(&self, column: &[Coeff]) -> u32 {
        self.evaluate_of(column)
    }

    /// Width-generic twin of [`NBitsCircuit::evaluate`].
    pub fn evaluate_of<S: Sample>(&self, column: &[S]) -> u32 {
        let mut or_reduce = 0u64;
        for &c in column {
            debug_assert!(
                min_bits_of(c) <= self.width,
                "coefficient {c} exceeds the {}-bit datapath",
                self.width
            );
            or_reduce |= self.xor_stage_of(c);
        }
        // Priority encode: highest asserted position p ⇒ p + 2 bits.
        if or_reduce == 0 {
            1
        } else {
            (64 - or_reduce.leading_zeros()) + 1
        }
    }

    /// Number of two-input XOR gates the block instantiates for `n`
    /// coefficients (used by the resource estimator).
    pub fn xor_gate_count(&self, n: usize) -> usize {
        n * (self.width as usize - 1)
    }

    /// Number of OR-gate inputs (an `n`-input OR per bit position).
    pub fn or_gate_inputs(&self, n: usize) -> usize {
        n * (self.width as usize - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure7_worked_example() {
        // X1 = -6, X2 = -2, X3 = 6 — paper says XOR outputs 0000101,
        // 0000001, 0000110, OR output 0000111, minimum bits = 4.
        let circuit = NBitsCircuit::new(8);
        assert_eq!(circuit.xor_stage(-6), 0b0000101);
        assert_eq!(circuit.xor_stage(-2), 0b0000001);
        assert_eq!(circuit.xor_stage(6), 0b0000110);
        assert_eq!(circuit.evaluate(&[-6, -2, 6]), 4);
    }

    #[test]
    fn paper_figure2_hl_column() {
        // HL column (13, 12, -9, 7) needs 5 bits (01101, 01100, 10111, 00111).
        assert_eq!(min_bits_column(&[13, 12, -9, 7]), 5);
        assert_eq!(NBitsCircuit::new(8).evaluate(&[13, 12, -9, 7]), 5);
    }

    #[test]
    fn min_bits_boundary_values() {
        // Positive boundaries: 2^(b-1) - 1 is the largest b-bit value.
        for b in 2..15u32 {
            let max_pos = (1 << (b - 1)) - 1;
            let min_neg = -(1 << (b - 1));
            assert_eq!(min_bits(max_pos as Coeff), b, "max positive for {b}");
            assert_eq!(min_bits(min_neg as Coeff), b, "min negative for {b}");
            assert_eq!(min_bits((max_pos + 1) as Coeff), b + 1);
            assert_eq!(min_bits((min_neg - 1) as Coeff), b + 1);
        }
    }

    #[test]
    fn circuit_matches_arithmetic_for_all_8bit_values() {
        let circuit = NBitsCircuit::new(8);
        for v in -128..=127 {
            assert_eq!(circuit.evaluate(&[v]), min_bits(v), "v = {v}");
        }
    }

    #[test]
    fn circuit_matches_arithmetic_for_all_10bit_values() {
        let circuit = NBitsCircuit::new(10);
        for v in -512..=511 {
            assert_eq!(circuit.evaluate(&[v]), min_bits(v), "v = {v}");
        }
    }

    #[test]
    fn circuit_column_is_max_of_singles() {
        let circuit = NBitsCircuit::new(12);
        let col = [0, -1, 100, -300, 7];
        let expect = col.iter().map(|&v| min_bits(v)).max().unwrap();
        assert_eq!(circuit.evaluate(&col), expect);
        assert_eq!(min_bits_column(&col), expect);
    }

    #[test]
    fn significant_only_width_ignores_thresholded() {
        // 100 dominates, but with T=101 only 3 remains significant... no:
        // |3| < 101 too, so nothing is significant and the width is 1.
        assert_eq!(min_bits_significant(&[100, 3], 101), 1);
        // With T=4, 100 is significant (7+1 bits... 100 = 0b0110_0100 -> 8).
        assert_eq!(min_bits_significant(&[100, 3], 4), 8);
        // Zeros never count.
        assert_eq!(min_bits_significant(&[0, 0, 0], 0), 1);
    }

    #[test]
    fn gate_counts_scale_linearly() {
        let c = NBitsCircuit::new(8);
        assert_eq!(c.xor_gate_count(4), 28);
        assert_eq!(c.xor_gate_count(64), 448);
    }

    #[test]
    fn empty_column_defaults_to_one_bit() {
        assert_eq!(min_bits_column(&[]), 1);
        assert_eq!(NBitsCircuit::new(8).evaluate(&[]), 1);
        assert_eq!(min_bits_significant_sliced(&[], 0), 1);
        assert_eq!(min_bits_significant_sliced(&[], 9), 1);
    }

    #[test]
    fn sliced_scan_matches_scalar_exhaustively_for_single_lanes() {
        // Every i16 value except i16::MIN (whose `abs()` in the scalar
        // significance filter is a debug panic by design) at a spread of
        // thresholds, in every lane position of the 4-wide word.
        for v in (-32767i32..=32767).step_by(257).map(|v| v as Coeff) {
            for t in [0, 1, 2, 4, 100, 32767] {
                for lane in 0..4 {
                    let mut col = [0 as Coeff; 7];
                    col[lane] = v;
                    assert_eq!(
                        min_bits_significant_sliced(&col, t),
                        min_bits_significant(&col, t),
                        "v={v} t={t} lane={lane}"
                    );
                }
            }
        }
    }

    #[test]
    fn sliced_scan_handles_i16_min_without_widening() {
        // i16::MIN's magnitude is !v = 32767 → 16 bits; the sliced scan must
        // agree with min_bits even though the scalar *significance* filter
        // cannot be asked about it in debug builds. Lossless path only.
        assert_eq!(min_bits(Coeff::MIN), 16);
        assert_eq!(min_bits_significant_sliced(&[Coeff::MIN], 0), 16);
        assert_eq!(min_bits_significant_sliced(&[Coeff::MIN, 1, -1, 3], 1), 16);
    }

    #[test]
    fn wide_min_bits_boundary_values_cover_17_to_32() {
        // 2^(b−1) − 1 / −2^(b−1) are the extreme b-bit values; widths 17..=32
        // only exist on the wide instance.
        for b in 17..=32u32 {
            let hi = ((1i64 << (b - 1)) - 1) as i32;
            let lo = (-(1i64 << (b - 1))) as i32;
            assert_eq!(min_bits_of(hi), b, "max positive for {b}");
            assert_eq!(min_bits_of(lo), b, "min negative for {b}");
            if b < 32 {
                assert_eq!(min_bits_of(hi + 1), b + 1);
                assert_eq!(min_bits_of(lo - 1), b + 1);
            }
        }
        assert_eq!(min_bits_of(i32::MAX), 32);
        assert_eq!(min_bits_of(i32::MIN), 32);
    }

    #[test]
    fn wide_circuit_matches_arithmetic_at_32bit_sign_edges() {
        // Widths 17..=32 exercise the priority encoder above the i16 range;
        // the sign-extension edges (±2^(b−1), ±(2^(b−1) − 1)) are exactly
        // where the XOR stage flips from magnitude to complement form.
        for width in 17..=32u32 {
            let circuit = NBitsCircuit::new(width);
            let mut values = vec![0i32, 1, -1];
            for b in 2..=width {
                values.push(((1i64 << (b - 1)) - 1) as i32);
                values.push((-(1i64 << (b - 1))) as i32);
            }
            for &v in &values {
                assert_eq!(
                    circuit.evaluate_of(&[v]),
                    min_bits_of(v),
                    "width={width} v={v}"
                );
            }
            let expect = values.iter().map(|&v| min_bits_of(v)).max().unwrap();
            assert_eq!(circuit.evaluate_of(&values), expect, "width={width}");
        }
    }

    #[test]
    fn wide_sliced_scan_matches_scalar_at_32bit_boundaries() {
        // Every width 17..=32 in every lane position of the 2-wide word,
        // across threshold regimes, plus i32::MIN on the lossless path
        // (mirrors `sliced_scan_handles_i16_min_without_widening`).
        for b in 17..=32u32 {
            for v in [((1i64 << (b - 1)) - 1) as i32, (-(1i64 << (b - 1))) as i32] {
                if v == i32::MIN {
                    continue; // scalar significance filter debug-panics at MIN
                }
                for t in [0i32, 1, 2, 100, i32::MAX] {
                    for lane in 0..2 {
                        let mut col = [0i32; 5];
                        col[lane] = v;
                        assert_eq!(
                            min_bits_significant_sliced_of(&col, t),
                            min_bits_significant_of(&col, t),
                            "b={b} v={v} t={t} lane={lane}"
                        );
                    }
                }
            }
        }
        assert_eq!(min_bits_of(i32::MIN), 32);
        assert_eq!(min_bits_significant_sliced_of(&[i32::MIN], 0), 32);
        assert_eq!(min_bits_significant_sliced_of(&[i32::MIN, 1, -1], 1), 32);
    }

    #[test]
    fn wide_sliced_scan_matches_scalar_on_prefix_sum_ramps() {
        // Monotone prefix-sum content — the integral-image worst case — at
        // odd lengths (tail path) and mixed signs.
        let mut state = 0x1234_5678_u32;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 17;
            state ^= state << 5;
            state
        };
        for len in [1usize, 2, 3, 4, 5, 7, 64, 65] {
            for t in [0i32, 1, 2, 1 << 20] {
                let mut acc = 0i64;
                let col: Vec<i32> = (0..len)
                    .map(|_| {
                        acc += i64::from(next() % 522_240); // 255 × 2048 rows
                        (acc % i64::from(i32::MAX)) as i32
                    })
                    .collect();
                assert_eq!(
                    min_bits_significant_sliced_of(&col, t),
                    min_bits_significant_of(&col, t),
                    "len={len} t={t}"
                );
            }
        }
    }

    #[test]
    fn sliced_scan_matches_scalar_on_mixed_columns() {
        // Deterministic pseudo-random columns across odd lengths (tail path)
        // and all threshold regimes.
        let mut state = 0x9e37_79b9_u32;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 17;
            state ^= state << 5;
            state
        };
        for len in [1usize, 2, 3, 4, 5, 7, 8, 12, 33, 64] {
            for t in [0 as Coeff, 1, 2, 8, 500] {
                let col: Vec<Coeff> = (0..len)
                    .map(|_| {
                        let v = (next() & 0xffff) as u16 as Coeff;
                        if v == Coeff::MIN {
                            0
                        } else {
                            v
                        }
                    })
                    .collect();
                assert_eq!(
                    min_bits_significant_sliced(&col, t),
                    min_bits_significant(&col, t),
                    "len={len} t={t} col={col:?}"
                );
            }
        }
    }
}

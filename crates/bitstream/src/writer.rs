//! LSB-first bit-granular serialization.
//!
//! [`BitWriter`] and [`BitReader`] are the software-reference implementation
//! of the packed-payload format. The hardware models in [`crate::packer`] and
//! [`crate::unpacker`] must produce/consume byte streams identical to these —
//! the test suites cross-check them.

use crate::{Coeff, Sample};

/// Accumulates variable-width fields LSB-first into a byte vector.
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits staged in `acc` but not yet flushed to `bytes` (0..8).
    acc: u32,
    acc_bits: u32,
    total_bits: u64,
}

impl BitWriter {
    /// New empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of bits written so far (flushed or staged).
    #[inline]
    pub fn bit_len(&self) -> u64 {
        self.total_bits
    }

    /// Append the low `nbits` bits of `value` (LSB first).
    ///
    /// # Panics
    ///
    /// Panics if `nbits > 32`.
    pub fn write_bits(&mut self, value: u32, nbits: u32) {
        assert!(nbits <= 32, "at most 32 bits per write");
        if nbits == 0 {
            return;
        }
        let masked = if nbits == 32 {
            value
        } else {
            value & ((1u32 << nbits) - 1)
        };
        let mut v = masked as u64;
        let mut remaining = nbits;
        self.total_bits += nbits as u64;
        // Stage into the accumulator, flushing whole bytes as they fill.
        while remaining > 0 {
            let take = (8 - self.acc_bits).min(remaining);
            self.acc |= ((v & ((1 << take) - 1)) as u32) << self.acc_bits;
            self.acc_bits += take;
            v >>= take;
            remaining -= take;
            if self.acc_bits == 8 {
                self.bytes.push(self.acc as u8);
                self.acc = 0;
                self.acc_bits = 0;
            }
        }
    }

    /// Append a signed coefficient using `nbits` bits of two's complement.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `value` does not fit in `nbits` bits.
    pub fn write_signed(&mut self, value: Coeff, nbits: u32) {
        self.write_signed_of(value, nbits)
    }

    /// Width-generic twin of [`BitWriter::write_signed`] for any sample
    /// width up to 32 bits.
    pub fn write_signed_of<S: Sample>(&mut self, value: S, nbits: u32) {
        debug_assert!(
            value.min_bits() <= nbits,
            "{value} does not fit in {nbits} bits"
        );
        self.write_bits(value.to_raw() as u32, nbits);
    }

    /// Finish, padding the final partial byte with zeros.
    pub fn into_bytes(mut self) -> Vec<u8> {
        if self.acc_bits > 0 {
            self.bytes.push(self.acc as u8);
        }
        self.bytes
    }

    /// Bytes flushed so far, excluding any staged partial byte.
    pub fn flushed(&self) -> &[u8] {
        &self.bytes
    }
}

/// Reads variable-width fields LSB-first from a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Next bit position within `bytes`.
    pos: u64,
}

impl<'a> BitReader<'a> {
    /// Reader over `bytes` starting at bit 0.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Bits consumed so far.
    #[inline]
    pub fn bit_pos(&self) -> u64 {
        self.pos
    }

    /// Bits remaining in the underlying buffer.
    #[inline]
    pub fn remaining_bits(&self) -> u64 {
        (self.bytes.len() as u64 * 8).saturating_sub(self.pos)
    }

    /// Read `nbits` bits (LSB first). Returns `None` once the buffer is
    /// exhausted.
    pub fn read_bits(&mut self, nbits: u32) -> Option<u32> {
        assert!(nbits <= 32, "at most 32 bits per read");
        if nbits == 0 {
            return Some(0);
        }
        if self.remaining_bits() < nbits as u64 {
            return None;
        }
        let mut out: u64 = 0;
        let mut got = 0u32;
        while got < nbits {
            let byte = self.bytes[(self.pos / 8) as usize] as u64;
            let bit_off = (self.pos % 8) as u32;
            let avail = 8 - bit_off;
            let take = avail.min(nbits - got);
            let chunk = (byte >> bit_off) & ((1 << take) - 1);
            out |= chunk << got;
            got += take;
            self.pos += take as u64;
        }
        Some(out as u32)
    }

    /// Read an `nbits`-wide two's-complement value and sign-extend it.
    pub fn read_signed(&mut self, nbits: u32) -> Option<Coeff> {
        let raw = self.read_bits(nbits)?;
        Some(sign_extend(raw, nbits))
    }

    /// Width-generic twin of [`BitReader::read_signed`].
    pub fn read_signed_of<S: Sample>(&mut self, nbits: u32) -> Option<S> {
        let raw = self.read_bits(nbits)?;
        Some(sign_extend_of(u64::from(raw), nbits))
    }
}

/// Sign-extend the low `nbits` bits of `raw` into a [`Coeff`].
///
/// This is the operation the paper's Bit Unpacking block performs after
/// extracting "the least significant NBits" (Section IV-C).
#[inline]
pub fn sign_extend(raw: u32, nbits: u32) -> Coeff {
    debug_assert!((1..=16).contains(&nbits));
    let shift = 32 - nbits;
    (((raw << shift) as i32) >> shift) as Coeff
}

/// Width-generic twin of [`sign_extend`]: the low `nbits` bits of `raw`
/// become an `S`, for any `nbits` up to `S::BITS`.
#[inline]
pub fn sign_extend_of<S: Sample>(raw: u64, nbits: u32) -> S {
    debug_assert!((1..=S::BITS).contains(&nbits));
    let shift = 64 - nbits;
    S::from_i64(((raw << shift) as i64) >> shift)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_widths() {
        let mut w = BitWriter::new();
        let fields: &[(u32, u32)] = &[(0b1, 1), (0b1011, 4), (0x3ff, 10), (0, 3), (0xffff, 16)];
        for &(v, n) in fields {
            w.write_bits(v, n);
        }
        assert_eq!(w.bit_len(), 34);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 5); // ceil(34 / 8)
        let mut r = BitReader::new(&bytes);
        for &(v, n) in fields {
            assert_eq!(r.read_bits(n), Some(v), "field ({v},{n})");
        }
    }

    #[test]
    fn signed_roundtrip_all_widths() {
        for nbits in 1..=16u32 {
            let lo = -(1i32 << (nbits - 1));
            let hi = (1i32 << (nbits - 1)) - 1;
            let mut w = BitWriter::new();
            let vals: Vec<Coeff> = (lo..=hi)
                .step_by(((hi - lo) as usize / 17).max(1))
                .map(|v| v as Coeff)
                .collect();
            for &v in &vals {
                w.write_signed(v, nbits);
            }
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            for &v in &vals {
                assert_eq!(r.read_signed(nbits), Some(v), "width {nbits}");
            }
        }
    }

    #[test]
    fn wide_signed_roundtrip_covers_widths_17_to_32() {
        for nbits in 17..=32u32 {
            let lo = -(1i64 << (nbits - 1));
            let hi = (1i64 << (nbits - 1)) - 1;
            let vals: Vec<i32> = [lo, lo + 1, -1, 0, 1, hi - 1, hi]
                .iter()
                .map(|&v| v as i32)
                .collect();
            let mut w = BitWriter::new();
            for &v in &vals {
                w.write_signed_of(v, nbits);
            }
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            for &v in &vals {
                assert_eq!(r.read_signed_of::<i32>(nbits), Some(v), "width {nbits}");
            }
        }
    }

    #[test]
    fn generic_sign_extend_agrees_with_narrow_form() {
        for nbits in 1..=16u32 {
            for raw in [0u32, 1, (1 << (nbits - 1)) - 1, 1 << (nbits - 1)] {
                let narrow = sign_extend(raw, nbits);
                let wide: i16 = sign_extend_of(u64::from(raw), nbits);
                assert_eq!(narrow, wide, "raw={raw} nbits={nbits}");
            }
        }
        // Paper Figure 2's −9 at the wide instance.
        assert_eq!(sign_extend_of::<i32>(0b10111, 5), -9);
        assert_eq!(sign_extend_of::<i32>(0xffff_ffff, 32), -1);
    }

    #[test]
    fn sign_extend_matches_paper_examples() {
        // Paper Figure 2: -9 packs as 10111 in 5 bits.
        assert_eq!(sign_extend(0b10111, 5), -9);
        assert_eq!(sign_extend(0b01101, 5), 13);
        assert_eq!(sign_extend(0b00111, 5), 7);
        assert_eq!(sign_extend(0b1, 1), -1);
        assert_eq!(sign_extend(0b0, 1), 0);
    }

    #[test]
    fn lsb_first_layout_is_stable() {
        // 3 bits of 0b101 then 5 bits of 0b11111 -> byte 0b11111_101.
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0b11111, 5);
        assert_eq!(w.into_bytes(), vec![0b1111_1101]);
    }

    #[test]
    fn reader_stops_at_end() {
        let mut r = BitReader::new(&[0xff]);
        assert_eq!(r.read_bits(8), Some(0xff));
        assert_eq!(r.read_bits(1), None);
        assert_eq!(r.remaining_bits(), 0);
    }

    #[test]
    fn zero_width_reads_and_writes_are_noops() {
        let mut w = BitWriter::new();
        w.write_bits(0xdead, 0);
        assert_eq!(w.bit_len(), 0);
        let bytes = w.into_bytes();
        assert!(bytes.is_empty());
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(0), Some(0));
    }

    #[test]
    fn flushed_excludes_partial_byte() {
        let mut w = BitWriter::new();
        w.write_bits(0xabc, 12);
        assert_eq!(w.flushed().len(), 1);
        assert_eq!(w.bit_len(), 12);
    }
}

//! The column codec: the unit of compression the architecture performs every
//! clock cycle (paper Section IV-B).
//!
//! A *column* here is one sub-band column of the decomposed image — `N/2`
//! coefficients belonging to a single sub-band (the architecture encodes the
//! two sub-bands of a decomposed image column as two such codec columns).
//!
//! The encoded form is
//!
//! * `NBits` — the column's coefficient width (4-bit management field),
//! * `BitMap` — one significance bit per coefficient,
//! * payload — the low `NBits` bits of each significant coefficient,
//!   LSB-first.
//!
//! [`column_cost`] computes the exact storage cost without materializing the
//! encoding; it is the hot path of the memory analyzer that regenerates the
//! paper's Figure 3, Figure 13 and Tables II–V.

use crate::bitmap::Bitmap;
use crate::nbits::{min_bits_of, min_bits_significant_of, min_bits_significant_sliced_of};
use crate::writer::{BitReader, BitWriter};
use crate::{is_significant_of, Coeff, Sample, NBITS_FIELD_BITS};

/// A fully encoded sub-band column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedColumn {
    /// Coefficient width used for every significant coefficient (1..=16).
    pub nbits: u32,
    /// Significance bitmap, one bit per input coefficient.
    pub bitmap: Bitmap,
    /// Packed payload bytes (zero-padded to a whole byte).
    pub payload: Vec<u8>,
    /// Exact number of payload bits (before padding).
    pub payload_bits: u64,
}

impl Default for EncodedColumn {
    /// An empty encoding — the natural starting point for a scratch column
    /// that [`encode_column_into`] will fill in place.
    fn default() -> Self {
        Self {
            nbits: 1,
            bitmap: Bitmap::new(),
            payload: Vec::new(),
            payload_bits: 0,
        }
    }
}

impl EncodedColumn {
    /// Number of coefficients in the column.
    pub fn len(&self) -> usize {
        self.bitmap.len()
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.bitmap.is_empty()
    }

    /// Total cost in bits: payload + BitMap + NBits field.
    pub fn total_bits(&self) -> u64 {
        self.total_bits_for(NBITS_FIELD_BITS)
    }

    /// Total cost in bits under an explicit NBits field width — the wide
    /// datapath carries [`Sample::NBITS_FIELD_BITS`] = 5-bit fields.
    pub fn total_bits_for(&self, nbits_field_bits: u32) -> u64 {
        self.payload_bits + self.bitmap.len() as u64 + u64::from(nbits_field_bits)
    }
}

/// Exact storage cost of a column without encoding it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ColumnCost {
    /// Payload bits (`significant × nbits`).
    pub payload_bits: u64,
    /// BitMap management bits (one per coefficient).
    pub bitmap_bits: u64,
    /// NBits management bits (one 4-bit field).
    pub nbits_bits: u64,
    /// Number of significant coefficients.
    pub significant: usize,
    /// The column width the NBits block would report.
    pub nbits: u32,
}

impl ColumnCost {
    /// Payload + management.
    #[inline]
    pub fn total_bits(&self) -> u64 {
        self.payload_bits + self.bitmap_bits + self.nbits_bits
    }

    /// Accumulate another column's cost (for per-sub-band totals).
    pub fn accumulate(&mut self, other: &ColumnCost) {
        self.payload_bits += other.payload_bits;
        self.bitmap_bits += other.bitmap_bits;
        self.nbits_bits += other.nbits_bits;
        self.significant += other.significant;
        self.nbits = self.nbits.max(other.nbits);
    }
}

/// Compute the storage cost of one sub-band column under threshold `T`.
///
/// This is allocation-free and is what the sweep benchmarks call millions of
/// times.
pub fn column_cost(coeffs: &[Coeff], threshold: Coeff) -> ColumnCost {
    column_cost_of(coeffs, threshold)
}

/// Width-generic twin of [`column_cost`]; the NBits management field costs
/// [`Sample::NBITS_FIELD_BITS`] bits (4 for i16, 5 for the wide instance).
pub fn column_cost_of<S: Sample>(coeffs: &[S], threshold: S) -> ColumnCost {
    let mut significant = 0usize;
    let mut nbits = 1u32;
    for &c in coeffs {
        if is_significant_of(c, threshold) {
            significant += 1;
            nbits = nbits.max(min_bits_of(c));
        }
    }
    ColumnCost {
        payload_bits: significant as u64 * nbits as u64,
        bitmap_bits: coeffs.len() as u64,
        nbits_bits: u64::from(S::NBITS_FIELD_BITS),
        significant,
        nbits,
    }
}

/// Encode one sub-band column.
///
/// ```
/// use sw_bitstream::{encode_column, decode_column};
/// // The paper's Figure 2 HL column: width 5, all significant.
/// let enc = encode_column(&[13, 12, -9, 7], 0);
/// assert_eq!((enc.nbits, enc.payload_bits), (5, 20));
/// assert_eq!(decode_column(&enc), vec![13, 12, -9, 7]);
/// ```
pub fn encode_column(coeffs: &[Coeff], threshold: Coeff) -> EncodedColumn {
    encode_column_of(coeffs, threshold)
}

/// Width-generic twin of [`encode_column`].
pub fn encode_column_of<S: Sample>(coeffs: &[S], threshold: S) -> EncodedColumn {
    let nbits = min_bits_significant_of(coeffs, threshold);
    let mut bitmap = Bitmap::new();
    let mut w = BitWriter::new();
    for &c in coeffs {
        let sig = is_significant_of(c, threshold);
        bitmap.push(sig);
        if sig {
            w.write_signed_of(c, nbits);
        }
    }
    let payload_bits = w.bit_len();
    EncodedColumn {
        nbits,
        bitmap,
        payload: w.into_bytes(),
        payload_bits,
    }
}

/// Scalar twin of [`encode_column`] that reuses `out`'s buffers instead of
/// allocating — the zero-copy arena building block. Produces a bit-identical
/// [`EncodedColumn`].
pub fn encode_column_into(coeffs: &[Coeff], threshold: Coeff, out: &mut EncodedColumn) {
    encode_column_into_of(coeffs, threshold, out)
}

/// Width-generic twin of [`encode_column_into`].
pub fn encode_column_into_of<S: Sample>(coeffs: &[S], threshold: S, out: &mut EncodedColumn) {
    let nbits = min_bits_significant_of(coeffs, threshold);
    out.bitmap.clear();
    out.payload.clear();
    // Inline BitWriter: LSB-first staging, whole bytes flushed, partial byte
    // zero-padded at the end — byte-identical to the reference writer. The
    // accumulator holds at most 7 + nbits <= 39 bits, so u64 always fits.
    let mut acc: u64 = 0;
    let mut acc_bits: u32 = 0;
    let mut payload_bits: u64 = 0;
    let mask = (1u64 << nbits) - 1;
    for &c in coeffs {
        let sig = is_significant_of(c, threshold);
        out.bitmap.push(sig);
        if sig {
            debug_assert!(min_bits_of(c) <= nbits);
            acc |= (c.to_raw() & mask) << acc_bits;
            acc_bits += nbits;
            payload_bits += u64::from(nbits);
            while acc_bits >= 8 {
                out.payload.push((acc & 0xff) as u8);
                acc >>= 8;
                acc_bits -= 8;
            }
        }
    }
    if acc_bits > 0 {
        out.payload.push(acc as u8);
    }
    out.nbits = nbits;
    out.payload_bits = payload_bits;
}

/// Bit-sliced twin of [`encode_column`]: the NBits width comes from the
/// OR-fold scan ([`min_bits_significant_sliced`]) and the payload is packed
/// through a 128-bit concatenation register flushed eight bytes at a time,
/// instead of one coefficient and one byte per step. Reuses `out`'s buffers
/// and produces a bit-identical [`EncodedColumn`] (pinned by tests and the
/// `HotPathEquivalence` conformance oracle).
pub fn encode_column_sliced_into(coeffs: &[Coeff], threshold: Coeff, out: &mut EncodedColumn) {
    encode_column_sliced_into_of(coeffs, threshold, out)
}

/// Width-generic twin of [`encode_column_sliced_into`].
pub fn encode_column_sliced_into_of<S: Sample>(
    coeffs: &[S],
    threshold: S,
    out: &mut EncodedColumn,
) {
    let nbits = min_bits_significant_sliced_of(coeffs, threshold);
    out.bitmap.clear();
    out.payload.clear();
    let mask = (1u128 << nbits) - 1;
    let mut acc: u128 = 0;
    let mut bits: u32 = 0;
    let mut payload_bits: u64 = 0;
    for &c in coeffs {
        let sig = is_significant_of(c, threshold);
        out.bitmap.push(sig);
        if sig {
            acc |= ((c.to_raw() as u128) & mask) << bits;
            bits += nbits;
            payload_bits += u64::from(nbits);
            if bits >= 64 {
                out.payload.extend_from_slice(&(acc as u64).to_le_bytes());
                acc >>= 64;
                bits -= 64;
            }
        }
    }
    while bits > 0 {
        out.payload.push((acc & 0xff) as u8);
        acc >>= 8;
        bits = bits.saturating_sub(8);
    }
    out.nbits = nbits;
    out.payload_bits = payload_bits;
}

/// Decode an encoded column back to coefficients (insignificant ⇒ 0).
///
/// # Panics
///
/// Panics if the encoding fails a consistency guard; use
/// [`decode_column_checked`] to handle corruption as an error.
pub fn decode_column(enc: &EncodedColumn) -> Vec<Coeff> {
    match decode_column_checked(enc) {
        Ok(v) => v,
        Err(e) => panic!("{e}"),
    }
}

/// Decode with consistency guards: the NBits field must be in range and
/// the payload length must equal `significant × NBits`. A corrupted
/// management word (bit-flipped NBits or BitMap) trips a guard and
/// returns `Err` instead of silently mis-reconstructing or panicking.
pub fn decode_column_checked(enc: &EncodedColumn) -> Result<Vec<Coeff>, String> {
    let mut out = Vec::new();
    decode_column_checked_into(enc, &mut out)?;
    Ok(out)
}

/// The consistency guards shared by every decode variant, so the scalar and
/// bit-sliced paths reject corruption with identical error strings. The NBits
/// range is the sample width: `1..=16` on the i16 datapath, `1..=32` wide.
fn validate_encoded_of<S: Sample>(enc: &EncodedColumn) -> Result<(), String> {
    let ones = enc.bitmap.count_ones() as u64;
    if ones > 0 && !(1..=S::BITS).contains(&enc.nbits) {
        return Err(format!("NBits field {} outside 1..={}", enc.nbits, S::BITS));
    }
    let expect_bits = if ones > 0 {
        ones * u64::from(enc.nbits)
    } else {
        0
    };
    if enc.payload_bits != expect_bits {
        return Err(format!(
            "payload of {} bits inconsistent with {} significant coefficients × NBits {}",
            enc.payload_bits, ones, enc.nbits
        ));
    }
    if (enc.payload.len() as u64) * 8 < enc.payload_bits {
        return Err(format!(
            "payload bytes hold {} bits but {} are declared",
            enc.payload.len() * 8,
            enc.payload_bits
        ));
    }
    Ok(())
}

/// Scalar twin of [`decode_column_checked`] that reuses `out` instead of
/// allocating a fresh coefficient vector per column.
pub fn decode_column_checked_into(enc: &EncodedColumn, out: &mut Vec<Coeff>) -> Result<(), String> {
    decode_column_checked_into_of(enc, out)
}

/// Width-generic twin of [`decode_column_checked_into`].
pub fn decode_column_checked_into_of<S: Sample>(
    enc: &EncodedColumn,
    out: &mut Vec<S>,
) -> Result<(), String> {
    validate_encoded_of::<S>(enc)?;
    out.clear();
    out.reserve(enc.bitmap.len());
    let mut r = BitReader::new(&enc.payload);
    for sig in enc.bitmap.iter() {
        if sig {
            out.push(
                r.read_signed_of(enc.nbits)
                    .ok_or_else(|| "truncated column payload".to_string())?,
            );
        } else {
            out.push(S::ZERO);
        }
    }
    Ok(())
}

/// Bit-sliced twin of [`decode_column_checked_into`]: walks the bitmap a
/// 64-bit word at a time (all-zero words reconstruct 64 coefficients in one
/// step) and extracts payload bits through a 64-bit remainder window instead
/// of one `BitReader` call per coefficient. Same guards, same error strings,
/// identical output (pinned by tests and the `HotPathEquivalence` oracle).
pub fn decode_column_sliced_into(enc: &EncodedColumn, out: &mut Vec<Coeff>) -> Result<(), String> {
    decode_column_sliced_into_of(enc, out)
}

/// Width-generic twin of [`decode_column_sliced_into`].
pub fn decode_column_sliced_into_of<S: Sample>(
    enc: &EncodedColumn,
    out: &mut Vec<S>,
) -> Result<(), String> {
    validate_encoded_of::<S>(enc)?;
    out.clear();
    let n = enc.bitmap.len();
    out.reserve(n);
    let nbits = enc.nbits;
    // `u64::MAX >> (64 − nbits)`, not `(1 << nbits) − 1`: the wide instance
    // reaches nbits = 32 and the shift form must not overflow at the top.
    let mask = u64::MAX >> (64 - nbits);
    let sign = 1u64 << (nbits - 1);
    let payload = &enc.payload;
    let mut byte_pos = 0usize;
    let mut window: u64 = 0;
    let mut avail: u32 = 0;
    for (wi, &w) in enc.bitmap.words().iter().enumerate() {
        let bits_in_word = (n - wi * 64).min(64);
        if w == 0 {
            out.resize(out.len() + bits_in_word, S::ZERO);
            continue;
        }
        for b in 0..bits_in_word {
            if (w >> b) & 1 == 0 {
                out.push(S::ZERO);
                continue;
            }
            if avail < nbits {
                while avail <= 56 && byte_pos < payload.len() {
                    window |= u64::from(payload[byte_pos]) << avail;
                    avail += 8;
                    byte_pos += 1;
                }
                if avail < nbits {
                    return Err("truncated column payload".to_string());
                }
            }
            let raw = window & mask;
            window >>= nbits;
            avail -= nbits;
            // Sign extension via the xor-sub identity, equal to
            // `writer::sign_extend` for every (raw, nbits) pair.
            out.push(S::from_raw((raw ^ sign).wrapping_sub(sign)));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply_threshold;

    #[test]
    fn paper_figure2_hl_first_column() {
        // (13, 12, -9, 7): NBits = 5, all significant, payload 20 bits,
        // BitMap "1111".
        let enc = encode_column(&[13, 12, -9, 7], 0);
        assert_eq!(enc.nbits, 5);
        assert_eq!(enc.payload_bits, 20);
        assert_eq!(enc.bitmap.to_bit_string(), "1111");
        assert_eq!(decode_column(&enc), vec![13, 12, -9, 7]);
        assert_eq!(enc.total_bits(), 20 + 4 + 4);
    }

    #[test]
    fn paper_figure2_last_column_with_zeros() {
        // BitMap 0011: first two zero, zeros cost no payload.
        let enc = encode_column(&[0, 0, 5, -6], 0);
        assert_eq!(enc.bitmap.to_bit_string(), "0011");
        assert_eq!(enc.nbits, 4);
        assert_eq!(enc.payload_bits, 8);
        assert_eq!(decode_column(&enc), vec![0, 0, 5, -6]);
    }

    #[test]
    fn all_zero_column_costs_only_management() {
        let enc = encode_column(&[0; 32], 0);
        assert_eq!(enc.payload_bits, 0);
        assert!(enc.payload.is_empty());
        assert_eq!(enc.total_bits(), 32 + 4);
        assert_eq!(decode_column(&enc), vec![0; 32]);
    }

    #[test]
    fn lossy_decode_matches_thresholded_input() {
        let coeffs: Vec<Coeff> = vec![9, -3, 2, 0, -11, 5, -5, 1];
        for t in [0, 2, 4, 6, 100] {
            let enc = encode_column(&coeffs, t);
            let expect: Vec<Coeff> = coeffs.iter().map(|&c| apply_threshold(c, t)).collect();
            assert_eq!(decode_column(&enc), expect, "threshold {t}");
        }
    }

    #[test]
    fn cost_matches_encoding_exactly() {
        let coeffs: Vec<Coeff> = vec![0, 1, -1, 127, -128, 255, -255, 0, 33, -17];
        for t in [0, 2, 4, 6, 30] {
            let cost = column_cost(&coeffs, t);
            let enc = encode_column(&coeffs, t);
            assert_eq!(cost.payload_bits, enc.payload_bits, "T={t}");
            assert_eq!(cost.nbits, enc.nbits, "T={t}");
            assert_eq!(cost.bitmap_bits, enc.bitmap.len() as u64);
            assert_eq!(
                cost.total_bits(),
                enc.total_bits(),
                "T={t}: cost function must equal real encoding"
            );
        }
    }

    #[test]
    fn higher_threshold_never_costs_more() {
        let coeffs: Vec<Coeff> = (0..64).map(|i| ((i * 37) % 23 - 11) as Coeff).collect();
        let mut prev = u64::MAX;
        for t in [0, 1, 2, 4, 6, 8, 16] {
            let bits = column_cost(&coeffs, t).total_bits();
            assert!(bits <= prev, "cost must be monotone in T");
            prev = bits;
        }
    }

    #[test]
    fn accumulate_sums_and_maxes() {
        let a = column_cost(&[1, 2, 3], 0);
        let b = column_cost(&[100, 0], 0);
        let mut acc = a;
        acc.accumulate(&b);
        assert_eq!(acc.payload_bits, a.payload_bits + b.payload_bits);
        assert_eq!(acc.significant, 4);
        assert_eq!(acc.nbits, 8); // 100 needs 8 bits
    }

    #[test]
    fn wide_coefficients_supported() {
        let enc = encode_column(&[-510, 510], 0);
        assert_eq!(enc.nbits, 10);
        assert_eq!(decode_column(&enc), vec![-510, 510]);
    }

    /// Deterministic pseudo-random columns spanning lengths (odd, short,
    /// multi-word bitmaps) and thresholds for the hot-path battery below.
    fn battery() -> Vec<(Vec<Coeff>, Coeff)> {
        let mut state = 0xdead_beef_u32;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 17;
            state ^= state << 5;
            state
        };
        let mut cases = Vec::new();
        for len in [0usize, 1, 2, 3, 4, 7, 8, 31, 64, 65, 130] {
            for t in [0 as Coeff, 1, 2, 5, 300] {
                let col: Vec<Coeff> = (0..len)
                    .map(|_| {
                        // Mostly codec-domain magnitudes with occasional wide
                        // values; avoid i16::MIN (debug-panics in the scalar
                        // significance filter by design).
                        let v = (next() % 1021) as Coeff - 510;
                        if next() % 7 == 0 {
                            0
                        } else {
                            v
                        }
                    })
                    .collect();
                cases.push((col, t));
            }
        }
        cases.push((vec![Coeff::MAX, Coeff::MIN + 1, -1, 0, 1], 0));
        cases
    }

    #[test]
    fn into_variants_match_allocating_encoders_bit_for_bit() {
        // One shared scratch across every case: stale state from a longer
        // previous column must never leak into a shorter one.
        let mut scratch = EncodedColumn::default();
        let mut sliced = EncodedColumn::default();
        for (col, t) in battery() {
            let reference = encode_column(&col, t);
            encode_column_into(&col, t, &mut scratch);
            assert_eq!(scratch, reference, "scalar-into col={col:?} t={t}");
            encode_column_sliced_into(&col, t, &mut sliced);
            assert_eq!(sliced, reference, "sliced-into col={col:?} t={t}");
        }
    }

    #[test]
    fn sliced_decode_matches_scalar_bit_for_bit() {
        let mut scalar_out = vec![99 as Coeff; 3];
        let mut sliced_out = vec![-42 as Coeff; 500];
        for (col, t) in battery() {
            let enc = encode_column(&col, t);
            decode_column_checked_into(&enc, &mut scalar_out).expect("scalar decode");
            decode_column_sliced_into(&enc, &mut sliced_out).expect("sliced decode");
            assert_eq!(scalar_out, sliced_out, "col={col:?} t={t}");
            assert_eq!(scalar_out, decode_column(&enc));
        }
    }

    #[test]
    fn sliced_decode_rejects_corruption_with_identical_errors() {
        let mut enc = encode_column(&[13, 12, -9, 7], 0);
        enc.nbits = 17; // corrupt the management field
        let mut a = Vec::new();
        let mut b = Vec::new();
        let ea = decode_column_checked_into(&enc, &mut a).unwrap_err();
        let eb = decode_column_sliced_into(&enc, &mut b).unwrap_err();
        assert_eq!(ea, eb);

        let mut enc = encode_column(&[13, 12, -9, 7], 0);
        enc.payload_bits += 1; // inconsistent payload length
        let ea = decode_column_checked_into(&enc, &mut a).unwrap_err();
        let eb = decode_column_sliced_into(&enc, &mut b).unwrap_err();
        assert_eq!(ea, eb);

        let mut enc = encode_column(&[13, 12, -9, 7], 0);
        enc.payload.pop(); // truncated byte stream
        let ea = decode_column_checked_into(&enc, &mut a).unwrap_err();
        let eb = decode_column_sliced_into(&enc, &mut b).unwrap_err();
        assert_eq!(ea, eb);
    }

    /// Deterministic wide-instance columns: prefix-sum ramps (the integral
    /// workload), 32-bit extremes, and mixed sparse content.
    fn wide_battery() -> Vec<(Vec<i32>, i32)> {
        let mut state = 0xfeed_face_u32;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 17;
            state ^= state << 5;
            state
        };
        let mut cases = Vec::new();
        for len in [0usize, 1, 2, 3, 5, 8, 64, 65, 130] {
            for t in [0i32, 1, 2, 1 << 16, 1 << 28] {
                let mut acc = 0i64;
                let col: Vec<i32> = (0..len)
                    .map(|_| {
                        acc += i64::from(next() % 522_240);
                        let v = (acc % i64::from(i32::MAX)) as i32;
                        if next() % 5 == 0 {
                            0
                        } else if next() % 7 == 0 {
                            -v
                        } else {
                            v
                        }
                    })
                    .collect();
                cases.push((col, t));
            }
        }
        cases.push((vec![i32::MAX, i32::MIN + 1, -1, 0, 1], 0));
        cases
    }

    #[test]
    fn wide_roundtrip_matches_across_all_variants() {
        // Encode (allocating, scalar-into, sliced-into) and decode (scalar,
        // sliced) must agree pairwise at the 32-bit width, and the decode
        // must be the thresholded input.
        let mut scratch = EncodedColumn::default();
        let mut sliced = EncodedColumn::default();
        let mut scalar_out: Vec<i32> = Vec::new();
        let mut sliced_out: Vec<i32> = Vec::new();
        for (col, t) in wide_battery() {
            let reference = encode_column_of(&col, t);
            encode_column_into_of(&col, t, &mut scratch);
            assert_eq!(scratch, reference, "scalar-into t={t}");
            encode_column_sliced_into_of(&col, t, &mut sliced);
            assert_eq!(sliced, reference, "sliced-into t={t}");
            assert_eq!(
                reference.total_bits_for(5),
                reference.payload_bits + col.len() as u64 + 5
            );

            decode_column_checked_into_of(&reference, &mut scalar_out).expect("scalar decode");
            decode_column_sliced_into_of(&reference, &mut sliced_out).expect("sliced decode");
            assert_eq!(scalar_out, sliced_out, "decode t={t}");
            let expect: Vec<i32> = col
                .iter()
                .map(|&c| crate::apply_threshold_of(c, t))
                .collect();
            assert_eq!(scalar_out, expect, "roundtrip t={t}");
        }
    }

    #[test]
    fn wide_cost_matches_encoding_and_charges_five_bit_fields() {
        for (col, t) in wide_battery() {
            let cost = column_cost_of(&col, t);
            let enc = encode_column_of(&col, t);
            assert_eq!(cost.payload_bits, enc.payload_bits, "t={t}");
            assert_eq!(cost.nbits, enc.nbits, "t={t}");
            assert_eq!(cost.nbits_bits, 5);
            assert_eq!(cost.total_bits(), enc.total_bits_for(5), "t={t}");
        }
    }

    #[test]
    fn wide_validation_window_admits_32_and_rejects_33() {
        let enc = encode_column_of(&[i32::MAX, i32::MIN + 1], 0);
        assert_eq!(enc.nbits, 32);
        let mut out: Vec<i32> = Vec::new();
        decode_column_checked_into_of(&enc, &mut out).expect("nbits = 32 is legal wide");
        assert_eq!(out, vec![i32::MAX, i32::MIN + 1]);

        // The same encoding is corrupt on the narrow datapath…
        let mut narrow: Vec<Coeff> = Vec::new();
        let err = decode_column_checked_into(&enc, &mut narrow).unwrap_err();
        assert_eq!(err, "NBits field 32 outside 1..=16");

        // …and nbits = 33 is corrupt on both, with matching sliced errors.
        let mut bad = enc.clone();
        bad.nbits = 33;
        bad.payload_bits = 2 * 33;
        let ea = decode_column_checked_into_of::<i32>(&bad, &mut out).unwrap_err();
        let eb = decode_column_sliced_into_of::<i32>(&bad, &mut out).unwrap_err();
        assert_eq!(ea, "NBits field 33 outside 1..=32");
        assert_eq!(ea, eb);
    }

    #[test]
    fn scratch_reuse_performs_no_reallocation_once_warm() {
        let cols: Vec<Vec<Coeff>> = (0..16)
            .map(|i| {
                (0..32)
                    .map(|k| ((i * 37 + k * 11) % 400 - 200) as Coeff)
                    .collect()
            })
            .collect();
        let mut scratch = EncodedColumn::default();
        let mut decoded = Vec::new();
        // Warm-up pass establishes the high-water capacities.
        for col in &cols {
            encode_column_sliced_into(col, 0, &mut scratch);
            decode_column_sliced_into(&scratch, &mut decoded).expect("decode");
        }
        let payload_cap = scratch.payload.capacity();
        let decoded_cap = decoded.capacity();
        for col in &cols {
            encode_column_sliced_into(col, 0, &mut scratch);
            decode_column_sliced_into(&scratch, &mut decoded).expect("decode");
        }
        assert_eq!(scratch.payload.capacity(), payload_cap, "payload realloc");
        assert_eq!(decoded.capacity(), decoded_cap, "decode buffer realloc");
    }
}

//! The column codec: the unit of compression the architecture performs every
//! clock cycle (paper Section IV-B).
//!
//! A *column* here is one sub-band column of the decomposed image — `N/2`
//! coefficients belonging to a single sub-band (the architecture encodes the
//! two sub-bands of a decomposed image column as two such codec columns).
//!
//! The encoded form is
//!
//! * `NBits` — the column's coefficient width (4-bit management field),
//! * `BitMap` — one significance bit per coefficient,
//! * payload — the low `NBits` bits of each significant coefficient,
//!   LSB-first.
//!
//! [`column_cost`] computes the exact storage cost without materializing the
//! encoding; it is the hot path of the memory analyzer that regenerates the
//! paper's Figure 3, Figure 13 and Tables II–V.

use crate::bitmap::Bitmap;
use crate::nbits::min_bits_significant;
use crate::writer::{BitReader, BitWriter};
use crate::{is_significant, Coeff, NBITS_FIELD_BITS};

/// A fully encoded sub-band column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedColumn {
    /// Coefficient width used for every significant coefficient (1..=16).
    pub nbits: u32,
    /// Significance bitmap, one bit per input coefficient.
    pub bitmap: Bitmap,
    /// Packed payload bytes (zero-padded to a whole byte).
    pub payload: Vec<u8>,
    /// Exact number of payload bits (before padding).
    pub payload_bits: u64,
}

impl EncodedColumn {
    /// Number of coefficients in the column.
    pub fn len(&self) -> usize {
        self.bitmap.len()
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.bitmap.is_empty()
    }

    /// Total cost in bits: payload + BitMap + NBits field.
    pub fn total_bits(&self) -> u64 {
        self.payload_bits + self.bitmap.len() as u64 + NBITS_FIELD_BITS as u64
    }
}

/// Exact storage cost of a column without encoding it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ColumnCost {
    /// Payload bits (`significant × nbits`).
    pub payload_bits: u64,
    /// BitMap management bits (one per coefficient).
    pub bitmap_bits: u64,
    /// NBits management bits (one 4-bit field).
    pub nbits_bits: u64,
    /// Number of significant coefficients.
    pub significant: usize,
    /// The column width the NBits block would report.
    pub nbits: u32,
}

impl ColumnCost {
    /// Payload + management.
    #[inline]
    pub fn total_bits(&self) -> u64 {
        self.payload_bits + self.bitmap_bits + self.nbits_bits
    }

    /// Accumulate another column's cost (for per-sub-band totals).
    pub fn accumulate(&mut self, other: &ColumnCost) {
        self.payload_bits += other.payload_bits;
        self.bitmap_bits += other.bitmap_bits;
        self.nbits_bits += other.nbits_bits;
        self.significant += other.significant;
        self.nbits = self.nbits.max(other.nbits);
    }
}

/// Compute the storage cost of one sub-band column under threshold `T`.
///
/// This is allocation-free and is what the sweep benchmarks call millions of
/// times.
pub fn column_cost(coeffs: &[Coeff], threshold: Coeff) -> ColumnCost {
    let mut significant = 0usize;
    let mut nbits = 1u32;
    for &c in coeffs {
        if is_significant(c, threshold) {
            significant += 1;
            nbits = nbits.max(crate::nbits::min_bits(c));
        }
    }
    ColumnCost {
        payload_bits: significant as u64 * nbits as u64,
        bitmap_bits: coeffs.len() as u64,
        nbits_bits: NBITS_FIELD_BITS as u64,
        significant,
        nbits,
    }
}

/// Encode one sub-band column.
///
/// ```
/// use sw_bitstream::{encode_column, decode_column};
/// // The paper's Figure 2 HL column: width 5, all significant.
/// let enc = encode_column(&[13, 12, -9, 7], 0);
/// assert_eq!((enc.nbits, enc.payload_bits), (5, 20));
/// assert_eq!(decode_column(&enc), vec![13, 12, -9, 7]);
/// ```
pub fn encode_column(coeffs: &[Coeff], threshold: Coeff) -> EncodedColumn {
    let nbits = min_bits_significant(coeffs, threshold);
    let mut bitmap = Bitmap::new();
    let mut w = BitWriter::new();
    for &c in coeffs {
        let sig = is_significant(c, threshold);
        bitmap.push(sig);
        if sig {
            w.write_signed(c, nbits);
        }
    }
    let payload_bits = w.bit_len();
    EncodedColumn {
        nbits,
        bitmap,
        payload: w.into_bytes(),
        payload_bits,
    }
}

/// Decode an encoded column back to coefficients (insignificant ⇒ 0).
///
/// # Panics
///
/// Panics if the encoding fails a consistency guard; use
/// [`decode_column_checked`] to handle corruption as an error.
pub fn decode_column(enc: &EncodedColumn) -> Vec<Coeff> {
    match decode_column_checked(enc) {
        Ok(v) => v,
        Err(e) => panic!("{e}"),
    }
}

/// Decode with consistency guards: the NBits field must be in range and
/// the payload length must equal `significant × NBits`. A corrupted
/// management word (bit-flipped NBits or BitMap) trips a guard and
/// returns `Err` instead of silently mis-reconstructing or panicking.
pub fn decode_column_checked(enc: &EncodedColumn) -> Result<Vec<Coeff>, String> {
    let ones = enc.bitmap.count_ones() as u64;
    if ones > 0 && !(1..=16).contains(&enc.nbits) {
        return Err(format!("NBits field {} outside 1..=16", enc.nbits));
    }
    let expect_bits = if ones > 0 {
        ones * u64::from(enc.nbits)
    } else {
        0
    };
    if enc.payload_bits != expect_bits {
        return Err(format!(
            "payload of {} bits inconsistent with {} significant coefficients × NBits {}",
            enc.payload_bits, ones, enc.nbits
        ));
    }
    if (enc.payload.len() as u64) * 8 < enc.payload_bits {
        return Err(format!(
            "payload bytes hold {} bits but {} are declared",
            enc.payload.len() * 8,
            enc.payload_bits
        ));
    }
    let mut r = BitReader::new(&enc.payload);
    enc.bitmap
        .iter()
        .map(|sig| {
            if sig {
                r.read_signed(enc.nbits)
                    .ok_or_else(|| "truncated column payload".to_string())
            } else {
                Ok(0)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply_threshold;

    #[test]
    fn paper_figure2_hl_first_column() {
        // (13, 12, -9, 7): NBits = 5, all significant, payload 20 bits,
        // BitMap "1111".
        let enc = encode_column(&[13, 12, -9, 7], 0);
        assert_eq!(enc.nbits, 5);
        assert_eq!(enc.payload_bits, 20);
        assert_eq!(enc.bitmap.to_bit_string(), "1111");
        assert_eq!(decode_column(&enc), vec![13, 12, -9, 7]);
        assert_eq!(enc.total_bits(), 20 + 4 + 4);
    }

    #[test]
    fn paper_figure2_last_column_with_zeros() {
        // BitMap 0011: first two zero, zeros cost no payload.
        let enc = encode_column(&[0, 0, 5, -6], 0);
        assert_eq!(enc.bitmap.to_bit_string(), "0011");
        assert_eq!(enc.nbits, 4);
        assert_eq!(enc.payload_bits, 8);
        assert_eq!(decode_column(&enc), vec![0, 0, 5, -6]);
    }

    #[test]
    fn all_zero_column_costs_only_management() {
        let enc = encode_column(&[0; 32], 0);
        assert_eq!(enc.payload_bits, 0);
        assert!(enc.payload.is_empty());
        assert_eq!(enc.total_bits(), 32 + 4);
        assert_eq!(decode_column(&enc), vec![0; 32]);
    }

    #[test]
    fn lossy_decode_matches_thresholded_input() {
        let coeffs: Vec<Coeff> = vec![9, -3, 2, 0, -11, 5, -5, 1];
        for t in [0, 2, 4, 6, 100] {
            let enc = encode_column(&coeffs, t);
            let expect: Vec<Coeff> = coeffs.iter().map(|&c| apply_threshold(c, t)).collect();
            assert_eq!(decode_column(&enc), expect, "threshold {t}");
        }
    }

    #[test]
    fn cost_matches_encoding_exactly() {
        let coeffs: Vec<Coeff> = vec![0, 1, -1, 127, -128, 255, -255, 0, 33, -17];
        for t in [0, 2, 4, 6, 30] {
            let cost = column_cost(&coeffs, t);
            let enc = encode_column(&coeffs, t);
            assert_eq!(cost.payload_bits, enc.payload_bits, "T={t}");
            assert_eq!(cost.nbits, enc.nbits, "T={t}");
            assert_eq!(cost.bitmap_bits, enc.bitmap.len() as u64);
            assert_eq!(
                cost.total_bits(),
                enc.total_bits(),
                "T={t}: cost function must equal real encoding"
            );
        }
    }

    #[test]
    fn higher_threshold_never_costs_more() {
        let coeffs: Vec<Coeff> = (0..64).map(|i| ((i * 37) % 23 - 11) as Coeff).collect();
        let mut prev = u64::MAX;
        for t in [0, 1, 2, 4, 6, 8, 16] {
            let bits = column_cost(&coeffs, t).total_bits();
            assert!(bits <= prev, "cost must be monotone in T");
            prev = bits;
        }
    }

    #[test]
    fn accumulate_sums_and_maxes() {
        let a = column_cost(&[1, 2, 3], 0);
        let b = column_cost(&[100, 0], 0);
        let mut acc = a;
        acc.accumulate(&b);
        assert_eq!(acc.payload_bits, a.payload_bits + b.payload_bits);
        assert_eq!(acc.significant, 4);
        assert_eq!(acc.nbits, 8); // 100 needs 8 bits
    }

    #[test]
    fn wide_coefficients_supported() {
        let enc = encode_column(&[-510, 510], 0);
        assert_eq!(enc.nbits, 10);
        assert_eq!(decode_column(&enc), vec![-510, 510]);
    }
}

//! Register-level model of the paper's **Bit Packing** unit (Figure 6).
//!
//! The hardware block owns three registers:
//!
//! * `CBits` — a 4-bit counter of valid bits staged in the concatenation
//!   register,
//! * `Yout_Current` — the concatenation register collecting compressed bits,
//! * `Yout_Reg` — the output register, loaded (with `WEN = 1`) whenever the
//!   staged bit count reaches `BitMax` (8 in the paper).
//!
//! plus a threshold comparator producing the BitMap bit and an adder updating
//! `CBits`. One block processes one coefficient per clock.
//!
//! The paper instantiates one block per window row; this model is the single
//! block. The architecture in `sw-core` serializes each decomposed column's
//! coefficients through a packer — functionally identical storage cost and
//! byte-exact against the [`crate::writer::BitWriter`] reference (see tests).

use crate::nbits::{min_bits, min_bits_significant, min_bits_significant_sliced};
use crate::{is_significant, Coeff};

/// Words emitted by one packer clock (0, 1, or 2 full words).
///
/// With the paper's 8-bit coefficients at most one word per clock is
/// produced; the generalized 16-bit datapath can complete two.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WordBurst {
    buf: [u8; 2],
    len: u8,
}

impl WordBurst {
    fn push(&mut self, w: u8) {
        assert!(self.len < 2, "at most two words per clock");
        self.buf[self.len as usize] = w;
        self.len += 1;
    }

    /// Number of words in the burst.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the burst is empty (no `WEN` this clock).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The words, oldest first.
    #[inline]
    pub fn words(&self) -> &[u8] {
        &self.buf[..self.len as usize]
    }
}

impl IntoIterator for WordBurst {
    type Item = u8;
    type IntoIter = std::iter::Take<std::array::IntoIter<u8, 2>>;
    fn into_iter(self) -> Self::IntoIter {
        self.buf.into_iter().take(self.len as usize)
    }
}

/// Result of one packer clock cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackOutput {
    /// The BitMap bit for this coefficient (1 = packed / significant).
    pub bitmap_bit: bool,
    /// Full output words completed this clock (`WEN` pulses).
    pub words: WordBurst,
}

/// The Bit Packing unit.
#[derive(Debug, Clone)]
pub struct BitPackingUnit {
    threshold: Coeff,
    word_bits: u32,
    /// `Yout_Current` (+ headroom): staged bits, LSB-first.
    acc: u64,
    /// `CBits`: number of valid bits in `acc`.
    cbits: u32,
    /// Total payload bits accepted (significant coefficients × their widths).
    payload_bits: u64,
}

impl BitPackingUnit {
    /// New packer with the paper's `BitMax = 8` output word.
    pub fn new(threshold: Coeff) -> Self {
        Self::with_word_bits(threshold, 8)
    }

    /// New packer with a custom output word width (8 or 16).
    pub fn with_word_bits(threshold: Coeff, word_bits: u32) -> Self {
        assert!(
            word_bits == 8 || word_bits == 16,
            "word width must be 8 or 16"
        );
        Self {
            threshold,
            word_bits,
            acc: 0,
            cbits: 0,
            payload_bits: 0,
        }
    }

    /// The configured threshold `T`.
    #[inline]
    pub fn threshold(&self) -> Coeff {
        self.threshold
    }

    /// Bits currently staged in `Yout_Current` (the `CBits` register).
    #[inline]
    pub fn staged_bits(&self) -> u32 {
        self.cbits
    }

    /// Total payload bits accepted since construction/reset.
    #[inline]
    pub fn payload_bits(&self) -> u64 {
        self.payload_bits
    }

    /// One clock cycle: present coefficient `xin` with the column width
    /// `nbits` (from the NBits block).
    ///
    /// Insignificant coefficients contribute only their BitMap 0 bit; the
    /// concatenation registers are untouched, exactly as in the hardware
    /// (the `WEN` path is gated by the threshold comparator).
    ///
    /// # Panics
    ///
    /// Panics (debug) if a significant `xin` does not fit in `nbits` bits —
    /// the NBits block guarantees it does.
    pub fn clock(&mut self, xin: Coeff, nbits: u32) -> PackOutput {
        assert!((1..=16).contains(&nbits), "NBits out of range");
        let significant = is_significant(xin, self.threshold);
        let mut words = WordBurst::default();
        if significant {
            debug_assert!(
                min_bits(xin) <= nbits,
                "coefficient {xin} wider than NBits {nbits}"
            );
            let mask = (1u64 << nbits) - 1;
            self.acc |= ((xin as u16 as u64) & mask) << self.cbits;
            self.cbits += nbits;
            self.payload_bits += nbits as u64;
            while self.cbits >= self.word_bits {
                words.push((self.acc & ((1 << self.word_bits) - 1)) as u8);
                self.acc >>= self.word_bits;
                self.cbits -= self.word_bits;
            }
        }
        PackOutput {
            bitmap_bit: significant,
            words,
        }
    }

    /// Drain the staged bits exactly (no padding): returns `(bits, count)`
    /// with the oldest staged bit in bit 0, and clears the concatenation
    /// registers. This is the *bypass path*: when the downstream unpacker
    /// starves on a sparsely-coded stretch, the hardware must forward the
    /// partial word (the paper's Figure 8 multiplexer "selects bits from
    /// Yout_rem and/or Xin" — i.e. the read side can see not-yet-written
    /// bits). Draining keeps the bit stream contiguous, unlike
    /// [`flush`](Self::flush) which zero-pads.
    pub fn drain_staged(&mut self) -> (u32, u32) {
        let bits = (self.acc & 0xffff_ffff) as u32;
        let count = self.cbits;
        debug_assert!(count < self.word_bits, "full words must go through WEN");
        self.acc = 0;
        self.cbits = 0;
        (bits, count)
    }

    /// Flush the partial word (zero-padded) at end of stream, if any.
    pub fn flush(&mut self) -> Option<u8> {
        if self.cbits == 0 {
            return None;
        }
        let w = (self.acc & ((1 << self.word_bits) - 1)) as u8;
        self.acc = 0;
        self.cbits = 0;
        Some(w)
    }

    /// Reset all registers (frame boundary).
    pub fn reset(&mut self) {
        self.acc = 0;
        self.cbits = 0;
        self.payload_bits = 0;
    }
}

/// Drive a coefficient sequence through the packer, one column at a time
/// (each column supplies its own NBits), collecting the byte stream and the
/// BitMap into caller-provided scratch buffers.
///
/// The buffers are cleared, not reallocated: across frames of the same
/// geometry a warm pair of buffers is reused with zero heap traffic (pinned
/// by the capacity-watermark test below).
pub fn pack_columns(
    columns: &[Vec<Coeff>],
    threshold: Coeff,
    bytes: &mut Vec<u8>,
    bitmap: &mut Vec<bool>,
) {
    bytes.clear();
    bitmap.clear();
    let mut packer = BitPackingUnit::new(threshold);
    for col in columns {
        let nbits = min_bits_significant(col, threshold);
        for &c in col {
            let out = packer.clock(c, nbits);
            bitmap.push(out.bitmap_bit);
            bytes.extend(out.words);
        }
    }
    if let Some(w) = packer.flush() {
        bytes.push(w);
    }
}

/// Bit-sliced twin of [`pack_columns`]: per column the width comes from the
/// OR-fold scan and the payload goes through a 128-bit concatenation
/// register flushed eight bytes at a time. Byte- and bit-identical to
/// [`pack_columns`] (pinned by tests).
pub fn pack_columns_sliced(
    columns: &[Vec<Coeff>],
    threshold: Coeff,
    bytes: &mut Vec<u8>,
    bitmap: &mut Vec<bool>,
) {
    bytes.clear();
    bitmap.clear();
    let mut acc: u128 = 0;
    let mut bits: u32 = 0;
    for col in columns {
        let nbits = min_bits_significant_sliced(col, threshold);
        let mask = (1u128 << nbits) - 1;
        for &c in col {
            let sig = is_significant(c, threshold);
            bitmap.push(sig);
            if sig {
                acc |= ((c as u16 as u128) & mask) << bits;
                bits += nbits;
                if bits >= 64 {
                    bytes.extend_from_slice(&(acc as u64).to_le_bytes());
                    acc >>= 64;
                    bits -= 64;
                }
            }
        }
    }
    while bits > 0 {
        bytes.push((acc & 0xff) as u8);
        acc >>= 8;
        bits = bits.saturating_sub(8);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::BitWriter;

    /// Allocating convenience wrapper over the scratch-buffer API.
    fn pack_columns(columns: &[Vec<Coeff>], threshold: Coeff) -> (Vec<u8>, Vec<bool>) {
        let mut bytes = Vec::new();
        let mut bitmap = Vec::new();
        super::pack_columns(columns, threshold, &mut bytes, &mut bitmap);
        (bytes, bitmap)
    }

    /// Reference byte stream via BitWriter.
    fn reference_bytes(columns: &[Vec<Coeff>], threshold: Coeff) -> Vec<u8> {
        let mut w = BitWriter::new();
        for col in columns {
            let nbits = min_bits_significant(col, threshold);
            for &c in col {
                if is_significant(c, threshold) {
                    w.write_signed(c, nbits);
                }
            }
        }
        w.into_bytes()
    }

    #[test]
    fn matches_bitwriter_reference_lossless() {
        let columns = vec![
            vec![13, 12, -9, 7],
            vec![0, 0, 3, -3],
            vec![0, 0, 0, 0],
            vec![255, -255, 1, 0],
        ];
        let (hw, bitmap) = pack_columns(&columns, 0);
        assert_eq!(hw, reference_bytes(&columns, 0));
        // Figure 2: first column all significant, bitmap 1111.
        assert_eq!(&bitmap[..4], &[true; 4]);
        // All-zero column: bitmap 0000, no payload contribution.
        assert_eq!(&bitmap[8..12], &[false; 4]);
    }

    #[test]
    fn matches_bitwriter_reference_lossy() {
        let columns = vec![vec![13, 1, -2, 7], vec![5, -5, 4, -4], vec![100, -3, 3, 0]];
        for t in [2, 4, 6] {
            let (hw, _) = pack_columns(&columns, t);
            assert_eq!(hw, reference_bytes(&columns, t), "threshold {t}");
        }
    }

    #[test]
    fn paper_figure2_first_hl_column_payload() {
        // Column (13, 12, -9, 7) at NBits=5 packs 01101, 01100, 10111, 00111
        // LSB-first: total 20 bits.
        let (bytes, bitmap) = pack_columns(&[vec![13, 12, -9, 7]], 0);
        assert_eq!(bitmap, vec![true; 4]);
        assert_eq!(bytes.len(), 3); // ceil(20/8)
                                    // Decode back with the reference reader to be sure.
        let mut r = crate::writer::BitReader::new(&bytes);
        assert_eq!(r.read_signed(5), Some(13));
        assert_eq!(r.read_signed(5), Some(12));
        assert_eq!(r.read_signed(5), Some(-9));
        assert_eq!(r.read_signed(5), Some(7));
    }

    #[test]
    fn insignificant_coefficients_touch_nothing() {
        let mut p = BitPackingUnit::new(4);
        let out = p.clock(3, 8);
        assert!(!out.bitmap_bit);
        assert!(out.words.is_empty());
        assert_eq!(p.staged_bits(), 0);
        assert_eq!(p.payload_bits(), 0);
    }

    #[test]
    fn wen_fires_exactly_on_word_boundaries() {
        let mut p = BitPackingUnit::new(0);
        // 3 bits + 3 bits = 6 staged, no word yet.
        assert!(p.clock(2, 3).words.is_empty());
        assert!(p.clock(-1, 3).words.is_empty());
        assert_eq!(p.staged_bits(), 6);
        // +3 bits crosses 8: one word out, 1 bit left.
        let out = p.clock(1, 3);
        assert_eq!(out.words.len(), 1);
        assert_eq!(p.staged_bits(), 1);
    }

    #[test]
    fn sixteen_bit_nbits_can_emit_two_words() {
        let mut p = BitPackingUnit::new(0);
        p.clock(1, 7); // 7 staged
        let out = p.clock(-300, 16); // 23 staged -> two words + 7 left
        assert_eq!(out.words.len(), 2);
        assert_eq!(p.staged_bits(), 7);
    }

    #[test]
    fn flush_pads_and_clears() {
        let mut p = BitPackingUnit::new(0);
        p.clock(-2, 3); // 110 staged
        let w = p.flush().expect("partial word");
        assert_eq!(w, 0b110);
        assert!(p.flush().is_none());
        assert_eq!(p.staged_bits(), 0);
    }

    #[test]
    fn payload_bits_counts_only_significant() {
        let mut p = BitPackingUnit::new(3);
        p.clock(5, 4);
        p.clock(2, 4); // below threshold
        p.clock(-7, 4);
        assert_eq!(p.payload_bits(), 8);
    }

    #[test]
    fn sliced_pack_matches_register_model_bit_for_bit() {
        let columns = vec![
            vec![13, 12, -9, 7],
            vec![0, 0, 3, -3],
            vec![0, 0, 0, 0],
            vec![255, -255, 1, 0],
            vec![-510, 510, -1, 1],
            (0..67).map(|k| ((k * 29) % 300 - 150) as Coeff).collect(),
        ];
        for t in [0, 1, 2, 4, 100] {
            let (bytes, bitmap) = pack_columns(&columns, t);
            let mut sb = Vec::new();
            let mut sm = Vec::new();
            pack_columns_sliced(&columns, t, &mut sb, &mut sm);
            assert_eq!(sb, bytes, "threshold {t}");
            assert_eq!(sm, bitmap, "threshold {t}");
        }
    }

    #[test]
    fn two_frame_run_reuses_scratch_without_reallocation() {
        // Satellite: a second frame of the same geometry through warm scratch
        // buffers must perform zero reallocations.
        let frame: Vec<Vec<Coeff>> = (0..48)
            .map(|i| {
                (0..8)
                    .map(|k| ((i * 13 + k * 7) % 200 - 100) as Coeff)
                    .collect()
            })
            .collect();
        let mut bytes = Vec::new();
        let mut bitmap = Vec::new();
        super::pack_columns(&frame, 0, &mut bytes, &mut bitmap); // frame 1: warms
        let (bytes_cap, bitmap_cap) = (bytes.capacity(), bitmap.capacity());
        let first = (bytes.clone(), bitmap.clone());
        super::pack_columns(&frame, 0, &mut bytes, &mut bitmap); // frame 2: warm
        assert_eq!((bytes.clone(), bitmap.clone()), first, "frames must agree");
        assert_eq!(bytes.capacity(), bytes_cap, "byte scratch reallocated");
        assert_eq!(bitmap.capacity(), bitmap_cap, "bitmap scratch reallocated");

        let mut sb = Vec::new();
        let mut sm = Vec::new();
        pack_columns_sliced(&frame, 0, &mut sb, &mut sm);
        let (sb_cap, sm_cap) = (sb.capacity(), sm.capacity());
        pack_columns_sliced(&frame, 0, &mut sb, &mut sm);
        assert_eq!(sb.capacity(), sb_cap, "sliced byte scratch reallocated");
        assert_eq!(sm.capacity(), sm_cap, "sliced bitmap scratch reallocated");
        assert_eq!((sb, sm), first, "sliced packer must agree");
    }

    #[test]
    fn reset_clears_registers() {
        let mut p = BitPackingUnit::new(0);
        p.clock(1, 5);
        p.reset();
        assert_eq!(p.staged_bits(), 0);
        assert_eq!(p.payload_bits(), 0);
        assert!(p.flush().is_none());
    }
}

//! Codec-side telemetry: counters and distributions for the bit packing and
//! unpacking units.
//!
//! One [`CodecTelemetry`] bundle covers one codec instance (e.g. one
//! sub-band's packer). The default bundle is a no-op, so architecture models
//! embed it unconditionally and the hot encode path stays allocation-free
//! when telemetry is disabled.

use crate::{EncodedColumn, NBITS_FIELD_BITS};
use sw_telemetry::{Counter, Histogram, TelemetryHandle};

/// Inclusive bucket bounds for the NBits distribution: one bucket per legal
/// coefficient width (the 4-bit management field covers 1..=16).
pub const NBITS_BOUNDS: [u64; 16] = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16];

/// Instruments describing what one column codec packed and unpacked.
#[derive(Debug, Clone, Default)]
pub struct CodecTelemetry {
    columns: Counter,
    payload_bits: Counter,
    payload_bytes: Counter,
    mgmt_bits: Counter,
    significant: Counter,
    coefficients: Counter,
    nbits: Histogram,
    decoded_columns: Counter,
    decoded_bits: Counter,
}

impl CodecTelemetry {
    /// A bundle that records nothing.
    pub fn noop() -> Self {
        Self::default()
    }

    /// Bind to `telemetry` under `<prefix>.packer.*` / `<prefix>.unpacker.*`:
    ///
    /// * `<prefix>.packer.columns` — encoded columns
    /// * `<prefix>.packer.payload_bits` — exact packed payload bits
    /// * `<prefix>.packer.payload_bytes` — byte-padded payload size
    /// * `<prefix>.packer.mgmt_bits` — BitMap + NBits management bits
    /// * `<prefix>.packer.significant` / `.coefficients` — bitmap density
    /// * `<prefix>.packer.nbits` — histogram of column widths (1..=16)
    /// * `<prefix>.unpacker.columns` / `.bits` — decode traffic
    pub fn attach(telemetry: &TelemetryHandle, prefix: &str) -> Self {
        Self {
            columns: telemetry.counter(&format!("{prefix}.packer.columns")),
            payload_bits: telemetry.counter(&format!("{prefix}.packer.payload_bits")),
            payload_bytes: telemetry.counter(&format!("{prefix}.packer.payload_bytes")),
            mgmt_bits: telemetry.counter(&format!("{prefix}.packer.mgmt_bits")),
            significant: telemetry.counter(&format!("{prefix}.packer.significant")),
            coefficients: telemetry.counter(&format!("{prefix}.packer.coefficients")),
            nbits: telemetry.histogram(&format!("{prefix}.packer.nbits"), &NBITS_BOUNDS),
            decoded_columns: telemetry.counter(&format!("{prefix}.unpacker.columns")),
            decoded_bits: telemetry.counter(&format!("{prefix}.unpacker.bits")),
        }
    }

    /// Record one encoded column.
    #[inline]
    pub fn record_encoded(&self, col: &EncodedColumn) {
        self.columns.inc();
        self.payload_bits.add(col.payload_bits);
        self.payload_bytes.add(col.payload.len() as u64);
        self.mgmt_bits
            .add(col.bitmap.len() as u64 + NBITS_FIELD_BITS as u64);
        self.significant.add(col.bitmap.count_ones() as u64);
        self.coefficients.add(col.len() as u64);
        self.nbits.observe(col.nbits as u64);
    }

    /// Record one decoded column.
    #[inline]
    pub fn record_decoded(&self, col: &EncodedColumn) {
        self.decoded_columns.inc();
        self.decoded_bits.add(col.total_bits());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode_column;

    #[test]
    fn noop_bundle_records_nothing() {
        let tele = CodecTelemetry::noop();
        tele.record_encoded(&encode_column(&[1, 2, 3, 4], 0));
        // No registry backs the bundle; nothing to assert beyond "no panic".
    }

    #[test]
    fn encoded_columns_feed_every_series() {
        let t = TelemetryHandle::new();
        let tele = CodecTelemetry::attach(&t, "band.hl");
        // Figure 2 HL column: width 5, all 4 coefficients significant.
        let col = encode_column(&[13, 12, -9, 7], 0);
        tele.record_encoded(&col);
        tele.record_decoded(&col);

        let r = t.report();
        assert_eq!(r.counters["band.hl.packer.columns"], 1);
        assert_eq!(r.counters["band.hl.packer.payload_bits"], 20);
        assert_eq!(r.counters["band.hl.packer.payload_bytes"], 3);
        assert_eq!(
            r.counters["band.hl.packer.mgmt_bits"],
            4 + NBITS_FIELD_BITS as u64
        );
        assert_eq!(r.counters["band.hl.packer.significant"], 4);
        assert_eq!(r.counters["band.hl.packer.coefficients"], 4);
        let h = &r.histograms["band.hl.packer.nbits"];
        assert_eq!(h.count, 1);
        assert_eq!(h.max, 5);
        assert_eq!(r.counters["band.hl.unpacker.columns"], 1);
        assert_eq!(r.counters["band.hl.unpacker.bits"], col.total_bits());
    }

    #[test]
    fn thresholded_column_reports_reduced_density() {
        let t = TelemetryHandle::new();
        let tele = CodecTelemetry::attach(&t, "c");
        tele.record_encoded(&encode_column(&[13, 3, -2, 7], 8));
        let r = t.report();
        assert_eq!(r.counters["c.packer.significant"], 1);
        assert_eq!(r.counters["c.packer.coefficients"], 4);
    }
}

//! LOCO-I / JPEG-LS-style lossless compressor (paper ref \[8]).
//!
//! The paper rejects JPEG-LS for the line-buffer use case on hardware
//! grounds (6-stage pipeline, ~27 MHz reported by ref \[8]) while claiming
//! its own scheme "gives comparable compression ratios to the state of the
//! art compression algorithms" (contribution 1). This module implements the
//! core of LOCO-I — MED (median edge detector) prediction plus
//! context-adaptive Golomb–Rice coding — so the benchmark harness can test
//! that claim on the same dataset.
//!
//! Simplifications relative to full JPEG-LS, documented for honesty: the
//! bias-cancellation terms are omitted; contexts are a 9-way quantization
//! of the local gradients instead of JPEG-LS's 365; run mode uses
//! Exp-Golomb run lengths instead of MELCODE. These simplifications *hurt*
//! this baseline slightly, so the measured ratio is a mild under-estimate
//! of real JPEG-LS — the comparison errs in the baseline's disfavor by a
//! few percent, not the paper's.

use crate::writer::{BitReader, BitWriter};
use sw_image::ImageU8;

/// Unary/remainder length limit; longer codes escape to 8 raw bits
/// (mirrors the JPEG-LS `LIMIT` mechanism).
const ESCAPE_Q: u32 = 24;

/// Per-context adaptive Golomb state.
#[derive(Debug, Clone, Copy)]
struct Ctx {
    /// Sum of mapped-residual magnitudes.
    a: u32,
    /// Sample count.
    n: u32,
}

impl Ctx {
    fn new() -> Self {
        Self { a: 4, n: 1 }
    }

    /// Optimal Rice parameter `k`: smallest `k` with `N << k >= A`.
    fn k(&self) -> u32 {
        let mut k = 0;
        while (self.n << k) < self.a && k < 12 {
            k += 1;
        }
        k
    }

    fn update(&mut self, mapped: u32) {
        self.a += mapped;
        self.n += 1;
        // Periodic halving keeps the statistics adaptive (JPEG-LS RESET).
        if self.n >= 64 {
            self.a = (self.a + 1) >> 1;
            self.n >>= 1;
        }
    }
}

/// MED (median edge detector) prediction from left / above / above-left.
#[inline]
fn med_predict(a: i32, b: i32, c: i32) -> i32 {
    if c >= a.max(b) {
        a.min(b)
    } else if c <= a.min(b) {
        a.max(b)
    } else {
        a + b - c
    }
}

/// Quantize the local gradient pair into one of 9 contexts.
#[inline]
fn context_of(a: i32, b: i32, c: i32) -> usize {
    let q = |d: i32| -> usize {
        match d.abs() {
            0 => 0,
            1..=6 => 1,
            _ => 2,
        }
    };
    q(b - c) * 3 + q(c - a)
}

/// Fold a signed residual into a non-negative code index.
#[inline]
fn fold(e: i32) -> u32 {
    if e >= 0 {
        (e as u32) << 1
    } else {
        ((-e as u32) << 1) - 1
    }
}

/// Inverse of [`fold`].
#[inline]
fn unfold(m: u32) -> i32 {
    if m & 1 == 0 {
        (m >> 1) as i32
    } else {
        -(((m + 1) >> 1) as i32)
    }
}

/// Neighbourhood fetch with JPEG-LS edge rules.
#[inline]
fn neighbours(img: &ImageU8, x: usize, y: usize) -> (i32, i32, i32) {
    let a = if x > 0 {
        img.get(x - 1, y) as i32
    } else if y > 0 {
        img.get(x, y - 1) as i32
    } else {
        0
    };
    let b = if y > 0 { img.get(x, y - 1) as i32 } else { a };
    let c = if x > 0 && y > 0 {
        img.get(x - 1, y - 1) as i32
    } else {
        b
    };
    (a, b, c)
}

/// Losslessly encode an image; returns the bitstream.
pub fn locoi_encode(img: &ImageU8) -> Vec<u8> {
    let mut w = BitWriter::new();
    let mut ctxs = [Ctx::new(); 9];
    for y in 0..img.height() {
        let mut x = 0;
        while x < img.width() {
            let (a, b, c) = neighbours(img, x, y);
            // Run mode: in a flat neighbourhood, code the length of the run
            // of pixels equal to the left neighbour.
            if a == b && b == c && (x > 0 || y > 0) {
                let mut run = 0usize;
                while x + run < img.width() && img.get(x + run, y) as i32 == a {
                    run += 1;
                }
                write_exp_golomb(&mut w, run as u32);
                x += run;
                if x >= img.width() {
                    continue; // run reached the row end; no break pixel
                }
                // fall through: encode the breaking pixel in regular mode
            }
            let (a, b, c) = neighbours(img, x, y);
            let pred = med_predict(a, b, c).clamp(0, 255);
            let e = img.get(x, y) as i32 - pred;
            // Residuals live in (−256, 256); fold to a code index.
            let m = fold(e);
            let ctx = &mut ctxs[context_of(a, b, c)];
            let k = ctx.k();
            let q = m >> k;
            if q < ESCAPE_Q {
                // q ones, a zero, then k remainder bits.
                for _ in 0..q {
                    w.write_bits(1, 1);
                }
                w.write_bits(0, 1);
                w.write_bits(m & ((1 << k) - 1), k);
            } else {
                // Escape: ESCAPE_Q ones, a zero, then 9 raw bits.
                for _ in 0..ESCAPE_Q {
                    w.write_bits(1, 1);
                }
                w.write_bits(0, 1);
                w.write_bits(m, 9);
            }
            ctx.update(m);
            x += 1;
        }
    }
    w.into_bytes()
}

/// Exp-Golomb (order 0) encoding of a non-negative integer.
fn write_exp_golomb(w: &mut BitWriter, v: u32) {
    let v1 = v + 1;
    let bits = 32 - v1.leading_zeros(); // position of the top set bit
    for _ in 0..bits - 1 {
        w.write_bits(0, 1);
    }
    w.write_bits(1, 1);
    if bits > 1 {
        w.write_bits(v1 & ((1 << (bits - 1)) - 1), bits - 1);
    }
}

/// Exp-Golomb (order 0) decoding with corruption detection.
fn read_exp_golomb(r: &mut BitReader<'_>) -> Result<u32, String> {
    let mut zeros = 0u32;
    loop {
        match r.read_bits(1) {
            None => return Err("truncated exp-golomb prefix".into()),
            Some(0) => {
                zeros += 1;
                if zeros > 32 {
                    return Err("corrupt exp-golomb prefix".into());
                }
            }
            Some(_) => break,
        }
    }
    let rest = if zeros > 0 {
        r.read_bits(zeros)
            .ok_or_else(|| String::from("truncated exp-golomb suffix"))?
    } else {
        0
    };
    Ok(((1 << zeros) | rest) - 1)
}

/// Decode a [`locoi_encode`] stream back into a `width × height` image.
///
/// # Panics
///
/// Panics if the stream is truncated or corrupt; use
/// [`locoi_try_decode`] to handle corruption as an error.
pub fn locoi_decode(bytes: &[u8], width: usize, height: usize) -> ImageU8 {
    match locoi_try_decode(bytes, width, height) {
        Ok(img) => img,
        Err(e) => panic!("{e}"),
    }
}

/// Decode a [`locoi_encode`] stream, reporting truncation or structural
/// corruption (impossible run lengths, over-long unary prefixes) as an
/// error instead of panicking.
pub fn locoi_try_decode(bytes: &[u8], width: usize, height: usize) -> Result<ImageU8, String> {
    let mut r = BitReader::new(bytes);
    let mut ctxs = [Ctx::new(); 9];
    let mut img = ImageU8::filled(width, height, 0);
    for y in 0..height {
        let mut x = 0;
        while x < width {
            let (a, b, c) = neighbours(&img, x, y);
            if a == b && b == c && (x > 0 || y > 0) {
                let run = read_exp_golomb(&mut r)? as usize;
                if x + run > width {
                    return Err(format!(
                        "corrupt run length {run} at ({x},{y}) exceeds row width {width}"
                    ));
                }
                for i in 0..run {
                    img.set(x + i, y, a as u8);
                }
                x += run;
                if x >= width {
                    continue;
                }
            }
            let (a, b, c) = neighbours(&img, x, y);
            let pred = med_predict(a, b, c).clamp(0, 255);
            let ctx_idx = context_of(a, b, c);
            let k = ctxs[ctx_idx].k();
            let mut q = 0u32;
            loop {
                match r.read_bits(1) {
                    None => return Err("truncated stream".into()),
                    Some(0) => break,
                    Some(_) => {
                        q += 1;
                        if q > ESCAPE_Q {
                            return Err("corrupt unary prefix".into());
                        }
                    }
                }
            }
            let m = if q < ESCAPE_Q {
                (q << k)
                    | r.read_bits(k)
                        .ok_or_else(|| String::from("truncated remainder"))?
            } else {
                r.read_bits(9)
                    .ok_or_else(|| String::from("truncated escape"))?
            };
            let e = unfold(m);
            img.set(x, y, (pred + e).clamp(0, 255) as u8);
            ctxs[ctx_idx].update(m);
            x += 1;
        }
    }
    Ok(img)
}

/// Compressed size in bits (without materializing the stream twice).
pub fn locoi_compressed_bits(img: &ImageU8) -> u64 {
    locoi_encode(img).len() as u64 * 8
}

#[cfg(test)]
mod tests {
    use super::*;

    fn natural(w: usize, h: usize) -> ImageU8 {
        ImageU8::from_fn(w, h, |x, y| {
            let s = 120.0 + 70.0 * ((x as f64) * 0.05).sin() + 40.0 * ((y as f64) * 0.07).cos();
            s.clamp(0.0, 255.0) as u8
        })
    }

    fn textured(w: usize, h: usize) -> ImageU8 {
        let base = natural(w, h);
        ImageU8::from_fn(w, h, |x, y| {
            base.get(x, y).saturating_add(((x * 7 + y * 13) % 5) as u8)
        })
    }

    #[test]
    fn roundtrip_is_lossless() {
        let img = textured(64, 48);
        let bytes = locoi_encode(&img);
        assert_eq!(locoi_decode(&bytes, 64, 48), img);
    }

    #[test]
    fn roundtrip_is_lossless_on_noise() {
        let mut state = 99u32;
        let img = ImageU8::from_fn(48, 32, |_, _| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            (state >> 24) as u8
        });
        let bytes = locoi_encode(&img);
        assert_eq!(locoi_decode(&bytes, 48, 32), img);
    }

    #[test]
    fn roundtrip_extreme_images() {
        for img in [
            ImageU8::filled(32, 32, 0),
            ImageU8::filled(32, 32, 255),
            ImageU8::from_fn(32, 32, |x, y| if (x + y) % 2 == 0 { 0 } else { 255 }),
        ] {
            let bytes = locoi_encode(&img);
            assert_eq!(locoi_decode(&bytes, 32, 32), img);
        }
    }

    #[test]
    fn compresses_natural_content_well() {
        let img = natural(128, 128);
        let bpp = locoi_compressed_bits(&img) as f64 / (128.0 * 128.0);
        assert!(bpp < 2.8, "LOCO-I on smooth content: {bpp:.2}");
        let img = textured(128, 128);
        let bpp = locoi_compressed_bits(&img) as f64 / (128.0 * 128.0);
        assert!(bpp < 4.5, "LOCO-I on textured content: {bpp:.2}");
    }

    #[test]
    fn flat_image_compresses_extremely() {
        let img = ImageU8::filled(128, 128, 77);
        let bpp = locoi_compressed_bits(&img) as f64 / (128.0 * 128.0);
        // Row-oriented run mode costs one run code per row (~15 bits).
        assert!(bpp < 0.15, "flat image should be near-free: {bpp:.4} bpp");
    }

    #[test]
    fn noise_does_not_compress() {
        let mut state = 3u32;
        let img = ImageU8::from_fn(64, 64, |_, _| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            (state >> 24) as u8
        });
        let bpp = locoi_compressed_bits(&img) as f64 / (64.0 * 64.0);
        assert!(bpp > 7.5, "noise must stay near 8+ bpp: {bpp:.2}");
    }

    #[test]
    fn med_predictor_cases() {
        // c above both -> min(a, b): falling edge.
        assert_eq!(med_predict(10, 20, 30), 10);
        // c below both -> max(a, b): rising edge.
        assert_eq!(med_predict(10, 20, 5), 20);
        // otherwise planar: a + b - c.
        assert_eq!(med_predict(10, 20, 15), 15);
    }

    #[test]
    fn fold_unfold_roundtrip() {
        for e in -255..=255 {
            assert_eq!(unfold(fold(e)), e);
        }
        // Folded values are dense and start at zero.
        assert_eq!(fold(0), 0);
        assert_eq!(fold(-1), 1);
        assert_eq!(fold(1), 2);
    }
}

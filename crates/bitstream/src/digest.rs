//! Stream digests for conformance vectors.
//!
//! Golden-vector conformance (the `sw-conformance` crate) pins every
//! datapath output — reconstructed images, packed streams, statistics —
//! to a 64-bit digest checked into the repository. The hash lives here,
//! in the bit-level crate, because the packed stream is the canonical
//! byte surface being fingerprinted; everything else digests through the
//! same primitive so one implementation defines "equal".
//!
//! [`Fnv64`] is FNV-1a (64-bit): trivially portable, dependency-free,
//! byte-order independent, and stable across platforms — exactly the
//! properties a checked-in golden file needs. It is *not* cryptographic;
//! conformance digests guard against drift, not adversaries.

/// Incremental FNV-1a 64-bit hasher.
///
/// ```
/// use sw_bitstream::digest::Fnv64;
/// let mut h = Fnv64::new();
/// h.write(b"abc");
/// let one_shot = sw_bitstream::digest::fnv1a64(b"abc");
/// assert_eq!(h.finish(), one_shot);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64 {
    state: u64,
}

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Absorb raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorb a `u64` as eight little-endian bytes (fixed width, so
    /// adjacent fields cannot alias into the same byte stream).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The digest of everything written so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot FNV-1a 64 digest of a byte slice.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// Sebastiano Vigna's splitmix64 scrambler — the deterministic stream
/// generator behind the conformance fuzzer's case mutation (and the same
/// mix the memory unit uses to fingerprint stored words).
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
        // splitmix64 reference output for seed 0.
        assert_eq!(splitmix64(0), 0xe220_a839_7b1d_cdaf);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let mut h = Fnv64::new();
        h.write(b"hello ");
        h.write(b"world");
        assert_eq!(h.finish(), fnv1a64(b"hello world"));
    }

    #[test]
    fn u64_fields_do_not_alias() {
        // (1, 256) and (256, 1) must hash differently: fixed-width field
        // encoding prevents boundary aliasing.
        let mut a = Fnv64::new();
        a.write_u64(1);
        a.write_u64(256);
        let mut b = Fnv64::new();
        b.write_u64(256);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }
}

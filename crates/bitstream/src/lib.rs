//! Bit-level compression units of the modified sliding window architecture.
//!
//! This crate models Sections IV-B/IV-C and V-B/V-C of the paper:
//!
//! * [`nbits`] — the "find minimum number of bits" logic (paper Figure 7),
//!   both as plain arithmetic and as a faithful gate-level model of the
//!   sign-XOR / OR-reduce / priority-encode circuit.
//! * [`writer`] — general LSB-first [`writer::BitWriter`] / [`writer::BitReader`]
//!   used as the software-reference serialization.
//! * [`packer`] — the Bit Packing unit register model (paper Figure 6:
//!   `CBits`, `Yout_Current`, `Yout_Reg`, the threshold comparator and the
//!   write-enable logic).
//! * [`unpacker`] — the Bit Unpacking unit register model (paper Figures 8–9:
//!   `CBits`, the 16-bit `Yout_rem` remainder register, sign extension).
//! * [`bitmap`] — the per-coefficient significance bitmap.
//! * [`mod@column`] — the column codec tying it all together: encode one sub-band
//!   column into `(NBits, BitMap, packed payload)` and decode it back. This
//!   is the unit of work the architecture performs every clock cycle.
//! * [`telemetry`] — per-codec observability: packed byte/bit counters, the
//!   NBits width distribution and bitmap density, feeding `sw-telemetry`.
//! * [`locoi`] — a LOCO-I / JPEG-LS-style lossless predictive coder
//!   (paper ref \[8]), the comparison baseline the paper rejects on
//!   hardware grounds; it lives here so `sw-core`'s pluggable line-codec
//!   layer can wrap it without a dependency cycle through `sw-related`.
//!
//! # Bit order
//!
//! All packing is **LSB-first**: the least-significant bit of the first
//! coefficient lands in bit 0 of the first byte. The hardware models and the
//! software-reference [`writer`] agree on this convention, and the test suite
//! cross-checks them bit for bit.
//!
//! # Significance rule
//!
//! A coefficient is *significant* iff it is non-zero **and** its magnitude is
//! at least the threshold `T`. This merges the paper's two statements ("the
//! bits of the non-zero coefficients, only, are packed" and "if the absolute
//! value of the coefficient is less than the threshold it is replaced with
//! zero"): with `T = 0` (lossless) exact zeros still pack zero payload bits,
//! which is what the paper's Figure 2 BitMap example shows.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitmap;
pub mod column;
pub mod digest;
pub mod hot_path;
pub mod locoi;
pub mod nbits;
pub mod packer;
pub mod telemetry;
pub mod unpacker;
pub mod writer;

pub use bitmap::Bitmap;
pub use column::{
    column_cost, column_cost_of, decode_column, decode_column_checked, decode_column_checked_into,
    decode_column_checked_into_of, decode_column_sliced_into, decode_column_sliced_into_of,
    encode_column, encode_column_into, encode_column_into_of, encode_column_of,
    encode_column_sliced_into, encode_column_sliced_into_of, ColumnCost, EncodedColumn,
};
pub use digest::{fnv1a64, Fnv64};
pub use hot_path::HotPath;
pub use locoi::{locoi_compressed_bits, locoi_decode, locoi_encode, locoi_try_decode};
pub use nbits::{
    min_bits, min_bits_column, min_bits_column_of, min_bits_of, min_bits_significant_of,
    min_bits_significant_sliced, min_bits_significant_sliced_of, NBitsCircuit,
};
pub use packer::{pack_columns, pack_columns_sliced, BitPackingUnit};
pub use telemetry::CodecTelemetry;
pub use unpacker::BitUnpackingUnit;
pub use writer::{sign_extend_of, BitReader, BitWriter};

/// Coefficient type shared with `sw-wavelet`.
pub type Coeff = sw_wavelet::Coeff;

/// Width-generic coefficient word, re-exported from `sw-wavelet`.
///
/// Every codec entry point in this crate has an `*_of` twin generic over
/// `S: Sample`; the fixed-width functions are their `S = `[`Coeff`]
/// specializations, kept as the stable i16 API.
pub use sw_wavelet::Sample;

/// Width of the NBits management field in bits (paper Section IV-C: "4 bits").
///
/// The field stores `nbits − 1`, so 4 bits cover widths 1..=16 — enough for
/// the 10-bit worst case of exact Haar coefficients (see `DESIGN.md`). This
/// is the [`Coeff`] instance of [`Sample::NBITS_FIELD_BITS`]; the wide i32
/// datapath carries 5-bit fields instead.
pub const NBITS_FIELD_BITS: u32 = 4;
const _: () = assert!(NBITS_FIELD_BITS == <Coeff as Sample>::NBITS_FIELD_BITS);

/// Returns true when a coefficient survives thresholding and is packed.
///
/// See the crate-level "Significance rule".
#[inline]
pub fn is_significant(c: Coeff, threshold: Coeff) -> bool {
    is_significant_of(c, threshold)
}

/// Width-generic twin of [`is_significant`].
///
/// Uses [`Sample::abs_val`], which keeps the native overflow semantics at
/// `S::MIN` so the two forms cannot disagree on any input.
#[inline]
pub fn is_significant_of<S: Sample>(c: S, threshold: S) -> bool {
    c != S::ZERO && c.abs_val() >= threshold
}

/// Apply the threshold: insignificant coefficients become zero.
#[inline]
pub fn apply_threshold(c: Coeff, threshold: Coeff) -> Coeff {
    apply_threshold_of(c, threshold)
}

/// Width-generic twin of [`apply_threshold`].
#[inline]
pub fn apply_threshold_of<S: Sample>(c: S, threshold: S) -> S {
    if is_significant_of(c, threshold) {
        c
    } else {
        S::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn significance_merges_zero_and_threshold_rules() {
        // Lossless: zeros are insignificant, everything else significant.
        assert!(!is_significant(0, 0));
        assert!(is_significant(1, 0));
        assert!(is_significant(-1, 0));
        // Lossy T=4: |c| < 4 dropped.
        assert!(!is_significant(3, 4));
        assert!(!is_significant(-3, 4));
        assert!(is_significant(4, 4));
        assert!(is_significant(-4, 4));
    }

    #[test]
    fn apply_threshold_zeroes_insignificant() {
        assert_eq!(apply_threshold(3, 4), 0);
        assert_eq!(apply_threshold(-5, 4), -5);
        assert_eq!(apply_threshold(0, 0), 0);
    }
}

//! Runtime selection between the scalar reference datapath and the u64
//! bit-sliced fast path.
//!
//! The paper's Fig 6/8 register model packs coefficients into fixed-width
//! lanes so the hardware datapath operates on whole words, not samples.
//! The software reproduction mirrors that split: every hot loop (Haar /
//! LeGall lifting, the NBits width scan, BitMap/payload pack/unpack) has
//! two implementations — the original scalar one, kept forever as the
//! differential oracle, and a u64 bit-sliced one that processes four
//! 16-bit coefficient lanes per word. [`HotPath`] selects between them at
//! runtime so every test can run both side by side; the two must be
//! **bit-identical** (the `hot_path_equivalence` suites and the
//! `HotPathEquivalence` conformance oracle enforce this).

/// Which implementation of the hot loops a datapath runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum HotPath {
    /// The original per-sample implementation — the differential oracle.
    Scalar,
    /// u64 bit-sliced lifting/scan/packing (four 16-bit lanes per word).
    #[default]
    Sliced,
}

impl HotPath {
    /// Both paths, scalar first (the reference comes first in diffs).
    pub const ALL: [HotPath; 2] = [HotPath::Scalar, HotPath::Sliced];

    /// Environment variable consulted by [`HotPath::from_env`].
    pub const ENV: &'static str = "SWC_HOT_PATH";

    /// Stable lower-case name (CLI flag values, coverage keys, case ids).
    pub fn name(self) -> &'static str {
        match self {
            HotPath::Scalar => "scalar",
            HotPath::Sliced => "sliced",
        }
    }

    /// Parse a [`HotPath::name`] value.
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|p| p.name() == s)
    }

    /// The process-wide default: `SWC_HOT_PATH` if set (and valid), else
    /// [`HotPath::Sliced`].
    ///
    /// # Panics
    ///
    /// Panics on an unrecognised `SWC_HOT_PATH` value — a silently ignored
    /// typo would run the wrong datapath through an entire CI job.
    pub fn from_env() -> Self {
        match std::env::var(Self::ENV) {
            Ok(v) => Self::parse(&v).unwrap_or_else(|| {
                panic!("{}: unknown hot path '{v}' (scalar, sliced)", Self::ENV)
            }),
            Err(_) => HotPath::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_parse_round_trip() {
        for hp in HotPath::ALL {
            assert_eq!(HotPath::parse(hp.name()), Some(hp));
        }
        assert_eq!(HotPath::parse("simd"), None);
        assert_eq!(HotPath::default(), HotPath::Sliced);
    }
}

//! Per-coefficient significance bitmap (the paper's "BitMap").
//!
//! One bit per coefficient distinguishes zero/insignificant (0) from packed
//! (1) coefficients. For a window of height `N` over an image of width `W`
//! the architecture stores `(W − N) × N` BitMap bits (paper Section IV-C).

/// A compact bit vector with the small API the codec needs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// Empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bitmap with `len` bits, all clear.
    pub fn zeros(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append one bit.
    pub fn push(&mut self, bit: bool) {
        let (w, b) = (self.len / 64, self.len % 64);
        if w == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[w] |= 1 << b;
        }
        self.len += 1;
    }

    /// Read bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bitmap index out of range");
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Set bit `i` to `bit`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn set(&mut self, i: usize, bit: bool) {
        assert!(i < self.len, "bitmap index out of range");
        let mask = 1u64 << (i % 64);
        if bit {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Reset to zero bits, keeping the allocated word capacity so a scratch
    /// bitmap can be refilled without reallocating.
    pub fn clear(&mut self) {
        self.words.clear();
        self.len = 0;
    }

    /// Number of set bits (significant coefficients).
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The backing words, LSB-first within each word (bit `i` lives at
    /// `words()[i / 64]` bit `i % 64`). Bits at or beyond [`len`](Self::len)
    /// are zero. This is the bit-sliced decode path's bulk view.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Iterate bits in order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Build from an iterator of bools.
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let mut bm = Self::new();
        for b in bits {
            bm.push(b);
        }
        bm
    }

    /// Render as a binary string, index 0 first (e.g. `1111` / `0011`,
    /// matching the paper's Figure 2 examples).
    pub fn to_bit_string(&self) -> String {
        self.iter().map(|b| if b { '1' } else { '0' }).collect()
    }
}

impl FromIterator<bool> for Bitmap {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        Self::from_bits(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_roundtrip_across_word_boundary() {
        let pattern: Vec<bool> = (0..130).map(|i| i % 3 == 0).collect();
        let bm = Bitmap::from_bits(pattern.iter().copied());
        assert_eq!(bm.len(), 130);
        for (i, &b) in pattern.iter().enumerate() {
            assert_eq!(bm.get(i), b, "bit {i}");
        }
        assert_eq!(bm.count_ones(), pattern.iter().filter(|&&b| b).count());
    }

    #[test]
    fn set_overwrites() {
        let mut bm = Bitmap::zeros(70);
        bm.set(69, true);
        assert!(bm.get(69));
        bm.set(69, false);
        assert!(!bm.get(69));
        assert_eq!(bm.count_ones(), 0);
    }

    #[test]
    fn paper_figure2_bitmap_strings() {
        // "BitMap of the first column is 1111 ... the last column is 0011
        //  because the first two coefficients are zeros."
        let all = Bitmap::from_bits([true, true, true, true]);
        assert_eq!(all.to_bit_string(), "1111");
        let tail = Bitmap::from_bits([false, false, true, true]);
        assert_eq!(tail.to_bit_string(), "0011");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        Bitmap::zeros(4).get(4);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut bm = Bitmap::from_bits((0..200).map(|i| i % 2 == 0));
        let cap = bm.words.capacity();
        bm.clear();
        assert!(bm.is_empty());
        assert_eq!(bm.words.capacity(), cap);
        bm.push(true);
        assert_eq!(bm.to_bit_string(), "1");
    }

    #[test]
    fn iterator_collects() {
        let bm: Bitmap = [true, false, true].into_iter().collect();
        let back: Vec<bool> = bm.iter().collect();
        assert_eq!(back, vec![true, false, true]);
    }
}

//! Property tests for the bit-level codec: the software reference
//! (BitWriter/BitReader), the column codec, and the hardware register models
//! (BitPackingUnit/BitUnpackingUnit) must all agree, for any input and any
//! threshold.

use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::VecDeque;
use sw_bitstream::nbits::{min_bits, min_bits_significant, NBitsCircuit};
use sw_bitstream::{
    apply_threshold, column_cost, decode_column, encode_column, is_significant, BitPackingUnit,
    BitReader, BitUnpackingUnit, BitWriter, Coeff,
};

fn coeff_strategy() -> impl Strategy<Value = Coeff> {
    // The full range a 2-D Haar of u8 pixels can produce, plus margin.
    -512i16..=512
}

proptest! {
    #[test]
    fn min_bits_is_tight(v in coeff_strategy()) {
        let b = min_bits(v);
        // v fits in b bits...
        let lo = -(1i32 << (b - 1));
        let hi = (1i32 << (b - 1)) - 1;
        prop_assert!((lo..=hi).contains(&(v as i32)));
        // ...and not in b-1 bits (unless b == 1).
        if b > 1 {
            let lo = -(1i32 << (b - 2));
            let hi = (1i32 << (b - 2)) - 1;
            prop_assert!(!(lo..=hi).contains(&(v as i32)));
        }
    }

    #[test]
    fn circuit_equals_arithmetic(col in vec(-512i16..=512, 1..64)) {
        let circuit = NBitsCircuit::new(11);
        let expect = col.iter().map(|&v| min_bits(v)).max().unwrap();
        prop_assert_eq!(circuit.evaluate(&col), expect);
    }

    #[test]
    fn bitwriter_bitreader_roundtrip(fields in vec((any::<u32>(), 1u32..=32), 0..64)) {
        let mut w = BitWriter::new();
        for &(v, n) in &fields {
            w.write_bits(v, n);
        }
        let total: u64 = fields.iter().map(|&(_, n)| n as u64).sum();
        prop_assert_eq!(w.bit_len(), total);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &fields {
            let mask = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
            prop_assert_eq!(r.read_bits(n), Some(v & mask));
        }
    }

    #[test]
    fn column_roundtrip_is_thresholding(
        col in vec(coeff_strategy(), 0..128),
        t in 0i16..64,
    ) {
        let enc = encode_column(&col, t);
        let decoded = decode_column(&enc);
        let expect: Vec<Coeff> = col.iter().map(|&c| apply_threshold(c, t)).collect();
        prop_assert_eq!(decoded, expect);
    }

    #[test]
    fn lossless_column_roundtrip_is_exact(col in vec(coeff_strategy(), 1..128)) {
        let enc = encode_column(&col, 0);
        prop_assert_eq!(decode_column(&enc), col);
    }

    #[test]
    fn cost_function_equals_real_encoding(
        col in vec(coeff_strategy(), 0..128),
        t in 0i16..64,
    ) {
        let cost = column_cost(&col, t);
        let enc = encode_column(&col, t);
        prop_assert_eq!(cost.total_bits(), enc.total_bits());
        prop_assert_eq!(cost.payload_bits, enc.payload_bits);
        prop_assert_eq!(cost.significant, enc.bitmap.count_ones());
    }

    #[test]
    fn hardware_models_agree_with_reference(
        cols in vec(vec(coeff_strategy(), 1..32), 1..16),
        t in 0i16..16,
    ) {
        // Pack with the hardware packer.
        let mut packer = BitPackingUnit::new(t);
        let mut fifo: VecDeque<u8> = VecDeque::new();
        let mut meta = Vec::new();
        for col in &cols {
            let nbits = min_bits_significant(col, t);
            let mut bits = Vec::new();
            for &c in col {
                let out = packer.clock(c, nbits);
                bits.push(out.bitmap_bit);
                fifo.extend(out.words);
            }
            meta.push((nbits, bits));
        }
        if let Some(w) = packer.flush() {
            fifo.push_back(w);
        }

        // The byte stream must equal the BitWriter reference.
        let mut reference = BitWriter::new();
        for col in &cols {
            let nbits = min_bits_significant(col, t);
            for &c in col {
                if is_significant(c, t) {
                    reference.write_signed(c, nbits);
                }
            }
        }
        let ref_bytes = reference.into_bytes();
        let hw_bytes: Vec<u8> = fifo.iter().copied().collect();
        prop_assert_eq!(&hw_bytes, &ref_bytes);

        // And the hardware unpacker must reconstruct the thresholded input.
        let mut unpacker = BitUnpackingUnit::new();
        for (col, (nbits, bits)) in cols.iter().zip(&meta) {
            for (&c, &b) in col.iter().zip(bits) {
                let got = loop {
                    match unpacker.clock(b, *nbits) {
                        Some(v) => break v,
                        None => unpacker.feed_word(fifo.pop_front().unwrap()),
                    }
                };
                prop_assert_eq!(got, apply_threshold(c, t));
            }
        }
    }
}

//! Property: the telemetry counters reported by the packer path agree
//! exactly with the analyzer's independently computed packed sizes.
//!
//! `column_cost` is the allocation-free cost model the sweeps and planners
//! trust; `encode_column` + `CodecTelemetry` is the instrumented data path.
//! If they ever disagree, either the analyzer or the telemetry is lying
//! about memory usage — the central quantity of the paper.

use proptest::prelude::*;
use sw_bitstream::{column_cost, encode_column, CodecTelemetry};
use sw_telemetry::TelemetryHandle;

proptest! {
    /// Per-column: every telemetry series matches the cost model.
    #[test]
    fn telemetry_matches_cost_model_per_column(
        coeffs in proptest::collection::vec(-1024i32..=1024, 0..48),
        threshold in 0i32..=32,
    ) {
        let coeffs: Vec<i16> = coeffs.iter().map(|&c| c as i16).collect();
        let cost = column_cost(&coeffs, threshold as i16);
        let enc = encode_column(&coeffs, threshold as i16);

        let t = TelemetryHandle::new();
        let tele = CodecTelemetry::attach(&t, "p");
        tele.record_encoded(&enc);
        let r = t.report();

        prop_assert_eq!(r.counters["p.packer.payload_bits"], cost.payload_bits);
        prop_assert_eq!(
            r.counters["p.packer.payload_bytes"],
            cost.payload_bits.div_ceil(8)
        );
        prop_assert_eq!(
            r.counters["p.packer.mgmt_bits"],
            cost.bitmap_bits + cost.nbits_bits
        );
        prop_assert_eq!(r.counters["p.packer.significant"], cost.significant as u64);
        prop_assert_eq!(r.counters["p.packer.coefficients"], coeffs.len() as u64);
        // The width histogram's max is the NBits the analyzer predicts
        // (columns with no significant coefficients report width 1 both ways).
        prop_assert_eq!(r.histograms["p.packer.nbits"].max, cost.nbits as u64);
    }

    /// Accumulated over a whole stream of columns, the byte counter equals
    /// the sum of per-column byte-padded sizes from the cost model.
    #[test]
    fn telemetry_accumulates_like_the_analyzer(
        columns in proptest::collection::vec(
            proptest::collection::vec(-512i32..=512, 1..24),
            1..16,
        ),
        threshold in 0i32..=16,
    ) {
        let t = TelemetryHandle::new();
        let tele = CodecTelemetry::attach(&t, "s");
        let mut expect_payload_bits = 0u64;
        let mut expect_payload_bytes = 0u64;
        let mut expect_mgmt_bits = 0u64;
        for col in &columns {
            let coeffs: Vec<i16> = col.iter().map(|&c| c as i16).collect();
            let cost = column_cost(&coeffs, threshold as i16);
            expect_payload_bits += cost.payload_bits;
            expect_payload_bytes += cost.payload_bits.div_ceil(8);
            expect_mgmt_bits += cost.bitmap_bits + cost.nbits_bits;
            tele.record_encoded(&encode_column(&coeffs, threshold as i16));
        }
        let r = t.report();
        prop_assert_eq!(r.counters["s.packer.columns"], columns.len() as u64);
        prop_assert_eq!(r.counters["s.packer.payload_bits"], expect_payload_bits);
        prop_assert_eq!(r.counters["s.packer.payload_bytes"], expect_payload_bytes);
        prop_assert_eq!(r.counters["s.packer.mgmt_bits"], expect_mgmt_bits);
    }
}

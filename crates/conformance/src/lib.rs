//! Conformance harness for the modified sliding-window architectures.
//!
//! Three pillars, one correctness story (`swc conform --all`):
//!
//! 1. **Golden-vector corpus** ([`corpus`]) — deterministic seeded images
//!    run through every `(kernel × codec × threshold × overflow-policy)`
//!    cell, with output digests, [`sw_core::arch::FrameStats`], packed
//!    stream length and BRAM plan checked into `vectors/*.json` and
//!    regenerated via `--bless`.
//! 2. **Differential oracle engine** ([`oracle`]) — pairs of datapaths
//!    that must agree (traditional vs compressed, functional vs RTL,
//!    sequential vs sharded) plus analytic invariants (lossy MSE bound,
//!    stats consistency), each returning a structured [`Verdict`] that
//!    names the first divergent pixel, row or field.
//! 3. **Coverage-guided fuzzing** ([`fuzz`]) — mutates dimensions,
//!    content, thresholds, budgets, fault seeds, the hot-path axis and
//!    the workload axis, tracks exercised
//!    `(codec × policy × shape-class × hot-path × workload)` cells, and
//!    shrinks failures into minimal reproducers under
//!    `vectors/regressions/`.
//!
//! The wide integral engine is a first-class workload: its golden cells
//! live in `vectors/integral.json`, fuzz cases with
//! `workload = "integral"` are judged by the integral battery
//! (hot-path/jobs invariance plus the reference-integral-image digest),
//! and the corpus run covers every image × segment × hot-path cell.
//!
//! The oracle battery additionally pins the SIMD hot path: every case is
//! judged under both [`sw_bitstream::HotPath`] implementations, and the
//! `HotPathEquivalence` oracle demands bit-identical outputs and stats
//! between them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod case;
pub mod corpus;
pub mod fuzz;
pub mod oracle;

pub use case::{CaseSpec, ContentClass, KernelKind, ShapeClass};
pub use corpus::{
    default_vectors_dir, golden_integral_digests, golden_window_digests, CheckReport, GoldenDigest,
};
pub use fuzz::{replay_regressions, run_fuzz, Coverage, FuzzReport};
pub use oracle::{all_oracles, run_oracles, CaseContext, Divergence, Outcome, Verdict};

use std::path::Path;

/// Summary of a full conformance run (`swc conform --all`).
#[derive(Debug)]
pub struct RunSummary {
    /// Golden cells compared against the checked-in corpus.
    pub corpus_cells: usize,
    /// Golden-vector mismatches (digest drift, schema drift, missing files).
    pub corpus_mismatches: Vec<String>,
    /// Oracle verdicts that failed across the corpus case grid.
    pub oracle_failures: Vec<String>,
    /// Oracle verdicts issued in total (pass + skip + fail).
    pub oracle_verdicts: usize,
    /// Regression reproducers that failed on replay.
    pub regression_failures: Vec<String>,
    /// `(codec × policy × shape × hot-path × workload)` coverage over the
    /// corpus grid.
    pub coverage: Coverage,
}

impl RunSummary {
    /// True when every pillar is clean.
    pub fn is_clean(&self) -> bool {
        self.corpus_mismatches.is_empty()
            && self.oracle_failures.is_empty()
            && self.regression_failures.is_empty()
    }

    /// Human-readable multi-line report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "corpus: {} golden cells, {} mismatches\n",
            self.corpus_cells,
            self.corpus_mismatches.len()
        ));
        for m in &self.corpus_mismatches {
            out.push_str(&format!("  MISMATCH {m}\n"));
        }
        out.push_str(&format!(
            "oracles: {} verdicts, {} failures\n",
            self.oracle_verdicts,
            self.oracle_failures.len()
        ));
        for f in &self.oracle_failures {
            out.push_str(&format!("  {f}\n"));
        }
        out.push_str(&format!(
            "regressions: {} replay failures\n",
            self.regression_failures.len()
        ));
        for f in &self.regression_failures {
            out.push_str(&format!("  {f}\n"));
        }
        out.push_str(&self.coverage.summary());
        out.push('\n');
        out.push_str(if self.is_clean() {
            "conformance: CLEAN\n"
        } else {
            "conformance: FAILED\n"
        });
        out
    }
}

/// Run the full conformance battery against the corpus in `vectors_dir`.
///
/// Checks golden vectors, runs every oracle over every corpus case, and
/// replays shrunk fuzz reproducers from `vectors_dir/regressions`.
///
/// # Errors
///
/// Filesystem errors reading the vector or regression directories.
pub fn run_all(vectors_dir: &Path) -> std::io::Result<RunSummary> {
    let report = corpus::check(vectors_dir)?;
    let mut oracle_failures = Vec::new();
    let mut oracle_verdicts = 0usize;
    let mut coverage = Coverage::default();
    for base in corpus::corpus_specs() {
        // Judge every corpus case under both hot paths in one process:
        // the scalar run is the oracle the sliced datapath must match.
        for hot_path in sw_bitstream::HotPath::ALL {
            let mut spec = base;
            spec.hot_path = hot_path;
            coverage.record(&spec);
            let ctx = CaseContext::new(spec);
            for v in run_oracles(&ctx) {
                oracle_verdicts += 1;
                if v.is_fail() {
                    oracle_failures.push(v.to_string());
                }
            }
        }
    }
    // The integral workload rides the same run: every corpus image at
    // every pinned segment length, judged by the integral battery under
    // both hot paths (its golden cells were already checked above).
    for img in &corpus::IMAGES {
        for segment in corpus::INTEGRAL_SEGMENTS {
            for hot_path in sw_bitstream::HotPath::ALL {
                let spec = corpus::integral_spec(img, segment, hot_path);
                coverage.record(&spec);
                let ctx = CaseContext::new(spec);
                for v in run_oracles(&ctx) {
                    oracle_verdicts += 1;
                    if v.is_fail() {
                        oracle_failures.push(v.to_string());
                    }
                }
            }
        }
    }
    let regression_failures = replay_regressions(&vectors_dir.join("regressions"))?;
    Ok(RunSummary {
        corpus_cells: report.cells,
        corpus_mismatches: report.mismatches,
        oracle_failures,
        oracle_verdicts,
        regression_failures,
        coverage,
    })
}

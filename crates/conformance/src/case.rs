//! Case specification: the single, serializable description of one
//! conformance run.
//!
//! A [`CaseSpec`] names everything a run depends on — geometry, content
//! class, kernel, codec, threshold, overflow policy, budget fraction and
//! fault seed — so the corpus generator, the oracle engine, and the fuzz
//! shrinker all speak the same vocabulary, and a failing case can be
//! written to `vectors/regressions/` and replayed verbatim.

use sw_bitstream::digest::splitmix64;
use sw_bitstream::HotPath;
use sw_core::analysis::measure_frame;
use sw_core::codec::LineCodecKind;
use sw_core::config::ArchConfig;
use sw_core::error::SwError;
use sw_core::integral::Workload;
use sw_core::kernels::{BoxFilter, Tap, WindowKernel};
use sw_core::memory_unit::{MemoryUnitConfig, OverflowPolicy};
use sw_core::planner::{plan, MgmtAccounting};
use sw_image::ImageU8;
use sw_telemetry::json::Json;

/// Deterministic image content classes the corpus and fuzzer draw from.
///
/// Each class stresses a different part of the datapath: gradients are
/// maximally compressible, checkerboards and noise are incompressible,
/// impulses starve the word-granular FIFOs (the packer-bypass path), and
/// the all-0/all-255 edges pin the coefficient range extremes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContentClass {
    /// Horizontal ramp 0→255.
    GradientH,
    /// Vertical ramp 0→255.
    GradientV,
    /// 4×4-tile black/white checkerboard.
    Checkerboard,
    /// splitmix64 per-pixel noise (seeded).
    Noise,
    /// Mostly black with sparse bright impulses (seeded).
    Impulses,
    /// All zeros.
    Black,
    /// All 255.
    White,
    /// Per-row saturating prefix sums of small seeded increments: the u8
    /// shadow of the integral engine's monotone line content, stressing
    /// the width scan with values that only ever grow along a row.
    MonotoneRamp,
}

impl ContentClass {
    /// Every content class, in corpus order.
    pub const ALL: [ContentClass; 8] = [
        ContentClass::GradientH,
        ContentClass::GradientV,
        ContentClass::Checkerboard,
        ContentClass::Noise,
        ContentClass::Impulses,
        ContentClass::Black,
        ContentClass::White,
        ContentClass::MonotoneRamp,
    ];

    /// Stable lower-case name (used in vector files and case ids).
    pub fn name(self) -> &'static str {
        match self {
            ContentClass::GradientH => "gradient-h",
            ContentClass::GradientV => "gradient-v",
            ContentClass::Checkerboard => "checkerboard",
            ContentClass::Noise => "noise",
            ContentClass::Impulses => "impulses",
            ContentClass::Black => "black",
            ContentClass::White => "white",
            ContentClass::MonotoneRamp => "monotone-ramp",
        }
    }

    /// Parse a [`ContentClass::name`] value.
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|c| c.name() == s)
    }

    /// Render the class at `w × h`. `seed` feeds the noise and impulse
    /// generators and is ignored by the deterministic patterns.
    pub fn render(self, w: usize, h: usize, seed: u64) -> ImageU8 {
        match self {
            ContentClass::GradientH => {
                ImageU8::from_fn(w, h, |x, _| (x * 255 / (w - 1).max(1)) as u8)
            }
            ContentClass::GradientV => {
                ImageU8::from_fn(w, h, |_, y| (y * 255 / (h - 1).max(1)) as u8)
            }
            ContentClass::Checkerboard => {
                ImageU8::from_fn(w, h, |x, y| if (x / 4 + y / 4) % 2 == 0 { 0 } else { 255 })
            }
            ContentClass::Noise => {
                ImageU8::from_fn(w, h, |x, y| splitmix64(seed ^ ((y * w + x) as u64)) as u8)
            }
            ContentClass::Impulses => ImageU8::from_fn(w, h, |x, y| {
                let r = splitmix64(seed ^ ((y * w + x) as u64).wrapping_mul(0x9e37));
                if r.is_multiple_of(89) {
                    128 | (r >> 32) as u8
                } else {
                    0
                }
            }),
            ContentClass::Black => ImageU8::filled(w, h, 0),
            ContentClass::White => ImageU8::filled(w, h, 255),
            ContentClass::MonotoneRamp => ImageU8::from_fn(w, h, |x, y| {
                let mut acc = 0u32;
                for i in 0..=x {
                    let inc = splitmix64(seed ^ ((y as u64) << 32) ^ i as u64) % 4;
                    acc += inc as u32;
                }
                acc.min(255) as u8
            }),
        }
    }
}

/// Sliding-window kernel under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// `N × N` box mean — exercises the whole window.
    Box,
    /// Top-left tap — passes the buffered pixel through, so the output
    /// directly exposes the reconstruction datapath.
    Tap,
}

impl KernelKind {
    /// Both kernels, in corpus order.
    pub const ALL: [KernelKind; 2] = [KernelKind::Box, KernelKind::Tap];

    /// Stable lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Box => "box",
            KernelKind::Tap => "tap",
        }
    }

    /// Parse a [`KernelKind::name`] value.
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.name() == s)
    }

    /// Build the kernel for an `N`-row window.
    pub fn build(self, window: usize) -> Box<dyn WindowKernel> {
        match self {
            KernelKind::Box => Box::new(BoxFilter::new(window)),
            KernelKind::Tap => Box::new(Tap::top_left(window)),
        }
    }
}

/// Geometry coverage label relative to the window size `N`.
///
/// A label, not a validity verdict: whether a narrow frame is actually
/// rejected depends on the codec's group width, which the oracles check
/// against [`ArchConfig::builder`] directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ShapeClass {
    /// `W < N + 4` — below some codecs' minimum width.
    Narrow,
    /// `H < N` — shorter than the window.
    Short,
    /// Odd width (exercises the even-crop path).
    OddWidth,
    /// Width or height not a multiple of `N`.
    Ragged,
    /// Both dimensions multiples of `N`.
    Aligned,
}

impl ShapeClass {
    /// Every shape class, for coverage totals.
    pub const ALL: [ShapeClass; 5] = [
        ShapeClass::Narrow,
        ShapeClass::Short,
        ShapeClass::OddWidth,
        ShapeClass::Ragged,
        ShapeClass::Aligned,
    ];

    /// Stable lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            ShapeClass::Narrow => "narrow",
            ShapeClass::Short => "short",
            ShapeClass::OddWidth => "odd-width",
            ShapeClass::Ragged => "ragged",
            ShapeClass::Aligned => "aligned",
        }
    }

    /// Classify `w × h` against window `n` (first matching label wins).
    pub fn of(window: usize, w: usize, h: usize) -> Self {
        if w < window + 4 {
            ShapeClass::Narrow
        } else if h < window {
            ShapeClass::Short
        } else if w % 2 == 1 {
            ShapeClass::OddWidth
        } else if !w.is_multiple_of(window) || !h.is_multiple_of(window) {
            ShapeClass::Ragged
        } else {
            ShapeClass::Aligned
        }
    }
}

/// One conformance case: everything a run depends on, serializable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaseSpec {
    /// Window size `N`.
    pub window: usize,
    /// Image width `W`.
    pub width: usize,
    /// Image height `H`.
    pub height: usize,
    /// Content class rendered at `W × H`.
    pub content: ContentClass,
    /// Seed for the content generators.
    pub content_seed: u64,
    /// Kernel under test.
    pub kernel: KernelKind,
    /// Line codec under test.
    pub codec: LineCodecKind,
    /// Threshold `T` (0 = lossless).
    pub threshold: i16,
    /// Overflow policy; `None` runs without a memory unit (unbounded).
    pub policy: Option<OverflowPolicy>,
    /// Memory-unit budget as a percentage of the lossless-probe plan's
    /// provisioning (only meaningful when `policy` is set).
    pub budget_pct: u32,
    /// Fault-injection seed; `None` runs fault-free.
    pub fault_seed: Option<u64>,
    /// Which hot-path implementation the codecs run ([`HotPath::Sliced`]
    /// is the production default; [`HotPath::Scalar`] is the oracle).
    pub hot_path: HotPath,
    /// Which workload the case drives: the sliding-window datapath (the
    /// default, judged by the full oracle battery) or the wide integral
    /// engine (judged by the integral battery, with [`CaseSpec::window`]
    /// reinterpreted as the packing segment length).
    pub workload: Workload,
}

impl CaseSpec {
    /// The policy axis as a stable name (`"none"` without a memory unit).
    pub fn policy_name(&self) -> &'static str {
        self.policy.map_or("none", OverflowPolicy::name)
    }

    /// Full case id, unique across the corpus and fuzz streams.
    pub fn id(&self) -> String {
        let fault = match self.fault_seed {
            Some(s) => format!("-f{s}"),
            None => String::new(),
        };
        // Only the non-default path tags the id, so every pre-existing
        // vector and reproducer id stays stable.
        let hp = match self.hot_path {
            HotPath::Sliced => String::new(),
            HotPath::Scalar => format!("-hp{}", self.hot_path.name()),
        };
        // Same convention as the hot-path tag: only the non-default
        // workload marks the id, so pre-existing ids never change.
        let wl = match self.workload {
            Workload::Window => String::new(),
            Workload::Integral => format!("-wl{}", self.workload.name()),
        };
        format!(
            "{}x{}-{}-s{}-n{}-{}-{}-t{}-{}-b{}{fault}{hp}{wl}",
            self.width,
            self.height,
            self.content.name(),
            self.content_seed,
            self.window,
            self.kernel.name(),
            self.codec.name(),
            self.threshold,
            self.policy_name(),
            self.budget_pct,
        )
    }

    /// The `(kernel × codec × threshold × policy)` cell key used inside
    /// one golden vector file (the image axis is the file itself).
    pub fn cell_key(&self) -> String {
        format!(
            "{}/{}/t{}/{}/b{}",
            self.kernel.name(),
            self.codec.name(),
            self.threshold,
            self.policy_name(),
            self.budget_pct
        )
    }

    /// Shape-coverage label of this case's geometry.
    pub fn shape(&self) -> ShapeClass {
        ShapeClass::of(self.window, self.width, self.height)
    }

    /// Render the case's input image.
    pub fn render(&self) -> ImageU8 {
        self.content
            .render(self.width, self.height, self.content_seed)
    }

    /// Validated architecture configuration for this case.
    ///
    /// # Errors
    ///
    /// [`SwError::Config`] whenever the geometry/threshold combination is
    /// invalid for the chosen codec — exactly the rejection the
    /// `ConfigRejection` oracle asserts on degenerate shapes.
    pub fn config(&self) -> Result<ArchConfig, SwError> {
        ArchConfig::builder(self.window, self.width)
            .threshold(self.threshold)
            .codec(self.codec)
            .hot_path(self.hot_path)
            .build()
    }

    /// Effectively lossless: `T = 0`, or a codec that ignores `T`.
    pub fn is_effectively_lossless(&self) -> bool {
        self.threshold == 0 || !self.codec.is_lossy_capable()
    }

    /// The memory unit this case runs with: the lossless probe's BRAM
    /// plan provisioned at [`CaseSpec::budget_pct`] percent, or `None`
    /// without a policy.
    ///
    /// # Errors
    ///
    /// Propagates the probe's [`SwError`] (an invalid geometry fails here
    /// exactly as the real run would).
    pub fn memory_unit(&self) -> Result<Option<MemoryUnitConfig>, SwError> {
        let Some(policy) = self.policy else {
            return Ok(None);
        };
        let probe_cfg = ArchConfig::builder(self.window, self.width)
            .codec(self.codec)
            .build()?;
        let stats = measure_frame(&self.render(), &probe_cfg)?;
        let bram_plan = plan(
            self.window,
            self.width,
            stats.peak_payload_occupancy.max(1),
            MgmtAccounting::Structured,
        );
        let base = MemoryUnitConfig::from_plan(&bram_plan, policy);
        let scaled = (base.capacity_bits * u64::from(self.budget_pct) / 100).max(1);
        Ok(Some(MemoryUnitConfig {
            capacity_bits: scaled,
            ..base
        }))
    }

    /// Serialize to the reproducer JSON object (see `vectors/regressions/`).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push('{');
        s.push_str(&format!("\"window\": {}, ", self.window));
        s.push_str(&format!("\"width\": {}, ", self.width));
        s.push_str(&format!("\"height\": {}, ", self.height));
        s.push_str(&format!("\"content\": \"{}\", ", self.content.name()));
        s.push_str(&format!("\"content_seed\": {}, ", self.content_seed));
        s.push_str(&format!("\"kernel\": \"{}\", ", self.kernel.name()));
        s.push_str(&format!("\"codec\": \"{}\", ", self.codec.name()));
        s.push_str(&format!("\"threshold\": {}, ", self.threshold));
        s.push_str(&format!("\"policy\": \"{}\", ", self.policy_name()));
        s.push_str(&format!("\"budget_pct\": {}, ", self.budget_pct));
        match self.fault_seed {
            Some(f) => s.push_str(&format!("\"fault_seed\": {f}, ")),
            None => s.push_str("\"fault_seed\": null, "),
        }
        s.push_str(&format!("\"hot_path\": \"{}\", ", self.hot_path.name()));
        s.push_str(&format!("\"workload\": \"{}\"", self.workload.name()));
        s.push('}');
        s
    }

    /// Deserialize from a reproducer JSON object.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first missing or malformed
    /// field.
    pub fn from_json(j: &Json) -> Result<CaseSpec, String> {
        let obj = j.as_obj().ok_or("case spec must be a JSON object")?;
        let num = |key: &str| -> Result<u64, String> {
            obj.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing or non-integer field `{key}`"))
        };
        let txt = |key: &str| -> Result<&str, String> {
            match obj.get(key) {
                Some(Json::Str(s)) => Ok(s.as_str()),
                _ => Err(format!("missing or non-string field `{key}`")),
            }
        };
        let content_name = txt("content")?;
        let kernel_name = txt("kernel")?;
        let codec_name = txt("codec")?;
        let policy_name = txt("policy")?;
        Ok(CaseSpec {
            window: num("window")? as usize,
            width: num("width")? as usize,
            height: num("height")? as usize,
            content: ContentClass::parse(content_name)
                .ok_or_else(|| format!("unknown content class `{content_name}`"))?,
            content_seed: num("content_seed")?,
            kernel: KernelKind::parse(kernel_name)
                .ok_or_else(|| format!("unknown kernel `{kernel_name}`"))?,
            codec: LineCodecKind::parse(codec_name)
                .ok_or_else(|| format!("unknown codec `{codec_name}`"))?,
            threshold: i16::try_from(num("threshold")?)
                .map_err(|_| "threshold out of range".to_string())?,
            policy: match policy_name {
                "none" => None,
                other => Some(
                    OverflowPolicy::parse(other)
                        .ok_or_else(|| format!("unknown policy `{other}`"))?,
                ),
            },
            budget_pct: num("budget_pct")? as u32,
            fault_seed: match obj.get("fault_seed") {
                Some(Json::Null) | None => None,
                Some(v) => Some(v.as_u64().ok_or("non-integer `fault_seed`")?),
            },
            // Reproducers written before the hot-path axis existed replay
            // on the production (sliced) path.
            hot_path: match obj.get("hot_path") {
                Some(Json::Str(s)) => {
                    HotPath::parse(s).ok_or_else(|| format!("unknown hot path `{s}`"))?
                }
                Some(_) => return Err("non-string `hot_path`".into()),
                None => HotPath::Sliced,
            },
            // Reproducers written before the workload axis existed are all
            // sliding-window cases.
            workload: match obj.get("workload") {
                Some(Json::Str(s)) => {
                    Workload::parse(s).ok_or_else(|| format!("unknown workload `{s}`"))?
                }
                Some(_) => return Err("non-string `workload`".into()),
                None => Workload::Window,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_telemetry::json::parse;

    fn sample() -> CaseSpec {
        CaseSpec {
            window: 8,
            width: 40,
            height: 24,
            content: ContentClass::Noise,
            content_seed: 7,
            kernel: KernelKind::Tap,
            codec: LineCodecKind::Haar,
            threshold: 4,
            policy: Some(OverflowPolicy::Stall),
            budget_pct: 50,
            fault_seed: Some(3),
            hot_path: HotPath::Sliced,
            workload: Workload::Window,
        }
    }

    #[test]
    fn spec_json_round_trips() {
        let spec = sample();
        let parsed = CaseSpec::from_json(&parse(&spec.to_json()).unwrap()).unwrap();
        assert_eq!(parsed, spec);
        let mut no_fault = spec;
        no_fault.fault_seed = None;
        no_fault.policy = None;
        let parsed = CaseSpec::from_json(&parse(&no_fault.to_json()).unwrap()).unwrap();
        assert_eq!(parsed, no_fault);
        let mut scalar = spec;
        scalar.hot_path = HotPath::Scalar;
        let parsed = CaseSpec::from_json(&parse(&scalar.to_json()).unwrap()).unwrap();
        assert_eq!(parsed, scalar);
        let mut integral = spec;
        integral.workload = Workload::Integral;
        let parsed = CaseSpec::from_json(&parse(&integral.to_json()).unwrap()).unwrap();
        assert_eq!(parsed, integral);
    }

    #[test]
    fn workload_axis_defaults_and_tags_consistently() {
        // Pre-workload reproducers (no `workload` key) replay as
        // sliding-window cases, and window ids carry no workload tag.
        let legacy = sample().to_json().replace(", \"workload\": \"window\"", "");
        assert!(!legacy.contains("workload"));
        let parsed = CaseSpec::from_json(&parse(&legacy).unwrap()).unwrap();
        assert_eq!(parsed.workload, Workload::Window);
        let spec = sample();
        assert!(!spec.id().contains("-wl"));
        let mut integral = spec;
        integral.workload = Workload::Integral;
        assert!(integral.id().ends_with("-wlintegral"));
    }

    #[test]
    fn hot_path_axis_defaults_and_tags_consistently() {
        // Pre-hot-path reproducers (no `hot_path` key) replay sliced.
        let legacy = sample().to_json().replace(", \"hot_path\": \"sliced\"", "");
        assert!(!legacy.contains("hot_path"));
        let parsed = CaseSpec::from_json(&parse(&legacy).unwrap()).unwrap();
        assert_eq!(parsed.hot_path, HotPath::Sliced);
        // Sliced ids are unchanged from the pre-hot-path era; scalar ids
        // carry the suffix so the two runs never collide.
        let spec = sample();
        assert!(!spec.id().contains("-hp"));
        let mut scalar = spec;
        scalar.hot_path = HotPath::Scalar;
        assert!(scalar.id().ends_with("-hpscalar"));
    }

    #[test]
    fn shape_classes_cover_the_corpus_geometries() {
        assert_eq!(ShapeClass::of(8, 6, 16), ShapeClass::Narrow);
        assert_eq!(ShapeClass::of(8, 48, 6), ShapeClass::Short);
        assert_eq!(ShapeClass::of(8, 33, 21), ShapeClass::OddWidth);
        assert_eq!(ShapeClass::of(8, 44, 24), ShapeClass::Ragged);
        assert_eq!(ShapeClass::of(8, 48, 32), ShapeClass::Aligned);
    }

    #[test]
    fn content_renders_are_deterministic() {
        for c in ContentClass::ALL {
            let a = c.render(24, 16, 5);
            let b = c.render(24, 16, 5);
            assert_eq!(a.pixels(), b.pixels(), "{}", c.name());
        }
        let a = ContentClass::Noise.render(24, 16, 1);
        let b = ContentClass::Noise.render(24, 16, 2);
        assert_ne!(a.pixels(), b.pixels(), "noise must depend on the seed");
    }

    #[test]
    fn memory_unit_scales_with_budget() {
        let mut spec = sample();
        spec.fault_seed = None;
        spec.budget_pct = 100;
        let full = spec.memory_unit().unwrap().unwrap();
        spec.budget_pct = 50;
        let half = spec.memory_unit().unwrap().unwrap();
        assert!(half.capacity_bits < full.capacity_bits);
        spec.policy = None;
        assert!(spec.memory_unit().unwrap().is_none());
    }
}

//! Differential oracle engine.
//!
//! Each [`Oracle`] checks one architectural equivalence the paper (or the
//! repo's own contracts) promises, and returns a structured [`Verdict`]
//! that names the *first divergent pixel, row, or field* — the report a
//! human needs to localize a datapath bug, not just a boolean.
//!
//! The engine runs every oracle under `catch_unwind`, so a panicking
//! datapath surfaces as a failing verdict instead of killing the
//! harness — the fuzz driver depends on this to keep shrinking.

use crate::case::{CaseSpec, ContentClass, KernelKind};
use std::panic::{catch_unwind, AssertUnwindSafe};
use sw_bitstream::{Fnv64, HotPath, Sample};
use sw_core::arch::{build_arch, FrameOutput};
use sw_core::codec::LineCodecKind;
use sw_core::config::ArchConfig;
use sw_core::error::SwError;
use sw_core::faults::FaultInjector;
use sw_core::integral::{analyze_integral, IntegralConfig, IntegralReport, WideCoeff, Workload};
use sw_core::kernels::Tap;
use sw_core::memory_unit::{MemoryUnitConfig, OverflowPolicy};
use sw_core::rtl::RtlCompressedSlidingWindow;
use sw_core::shard::ShardedFrameRunner;
use sw_fpga::fifo::FifoError;
use sw_image::{reference_integral_image, ImageU8};
use sw_pool::ThreadPool;

/// Where two runs first disagreed.
#[derive(Debug, Clone, PartialEq)]
pub enum Divergence {
    /// First divergent pixel, in raster order.
    Pixel {
        /// Column of the first divergent pixel.
        x: usize,
        /// Row of the first divergent pixel.
        y: usize,
        /// Value the checked path produced.
        got: u8,
        /// Value the reference path produced.
        want: u8,
    },
    /// First divergent statistics field.
    Field {
        /// Field name (see `FrameStats::fields`).
        name: String,
        /// Value the checked path produced.
        got: u64,
        /// Value the reference path produced.
        want: u64,
    },
    /// A structural mismatch (one path errored, shapes differ, …).
    Error(String),
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Divergence::Pixel { x, y, got, want } => {
                write!(
                    f,
                    "first divergent pixel ({x}, {y}): got {got}, want {want}"
                )
            }
            Divergence::Field { name, got, want } => {
                write!(f, "field `{name}`: got {got}, want {want}")
            }
            Divergence::Error(msg) => f.write_str(msg),
        }
    }
}

/// Outcome of one oracle on one case.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// The equivalence held.
    Pass,
    /// The oracle does not apply to this case (reason included).
    Skip(String),
    /// The equivalence broke; the divergence names where.
    Fail(Divergence),
}

/// One oracle's structured result on one case.
#[derive(Debug, Clone)]
pub struct Verdict {
    /// The oracle that produced this verdict.
    pub oracle: &'static str,
    /// The case it judged ([`CaseSpec::id`]).
    pub case_id: String,
    /// What it found.
    pub outcome: Outcome,
}

impl Verdict {
    /// True when the outcome is a failure.
    pub fn is_fail(&self) -> bool {
        matches!(self.outcome, Outcome::Fail(_))
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.outcome {
            Outcome::Pass => write!(f, "PASS {} [{}]", self.oracle, self.case_id),
            Outcome::Skip(why) => write!(f, "skip {} [{}]: {why}", self.oracle, self.case_id),
            Outcome::Fail(d) => write!(f, "FAIL {} [{}]: {d}", self.oracle, self.case_id),
        }
    }
}

/// A case plus its rendered input, shared across the oracle battery.
pub struct CaseContext {
    /// The case under judgment.
    pub spec: CaseSpec,
    /// The rendered input frame.
    pub image: ImageU8,
}

impl CaseContext {
    /// Render `spec`'s input once for all oracles.
    pub fn new(spec: CaseSpec) -> Self {
        let image = spec.render();
        Self { spec, image }
    }

    /// Run the functional architecture for `cfg` over this case's image.
    fn run(
        &self,
        cfg: &ArchConfig,
        mu: Option<MemoryUnitConfig>,
        fault_seed: Option<u64>,
        kernel: KernelKind,
    ) -> Result<FrameOutput, SwError> {
        let mut arch = build_arch(cfg)?;
        arch.set_memory_unit(mu);
        if let Some(seed) = fault_seed {
            arch.set_fault_injector(Some(FaultInjector::seeded(seed)));
        }
        arch.process_frame(&self.image, kernel.build(cfg.window).as_ref())
    }
}

/// One architectural equivalence check.
pub trait Oracle {
    /// Stable oracle name (appears in verdicts and reproducer files).
    fn name(&self) -> &'static str;
    /// Judge one case.
    fn check(&self, ctx: &CaseContext) -> Outcome;
}

/// First raster-order pixel where two images disagree.
fn first_divergent_pixel(got: &ImageU8, want: &ImageU8) -> Option<Divergence> {
    if got.width() != want.width() || got.height() != want.height() {
        return Some(Divergence::Error(format!(
            "output shapes differ: got {}x{}, want {}x{}",
            got.width(),
            got.height(),
            want.width(),
            want.height()
        )));
    }
    for y in 0..got.height() {
        for x in 0..got.width() {
            let (g, w) = (got.get(x, y), want.get(x, y));
            if g != w {
                return Some(Divergence::Pixel {
                    x,
                    y,
                    got: g,
                    want: w,
                });
            }
        }
    }
    None
}

/// Compare two run results: images pixel-for-pixel, errors string-for-string.
fn compare_runs(got: Result<FrameOutput, SwError>, want: Result<FrameOutput, SwError>) -> Outcome {
    match (got, want) {
        (Ok(a), Ok(b)) => match first_divergent_pixel(&a.image, &b.image) {
            Some(d) => Outcome::Fail(d),
            None => Outcome::Pass,
        },
        (Err(a), Err(b)) => {
            if a.to_string() == b.to_string() {
                Outcome::Pass
            } else {
                Outcome::Fail(Divergence::Error(format!(
                    "both paths errored, differently: `{a}` vs `{b}`"
                )))
            }
        }
        (Ok(_), Err(e)) => Outcome::Fail(Divergence::Error(format!(
            "checked path succeeded but reference errored: {e}"
        ))),
        (Err(e), Ok(_)) => Outcome::Fail(Divergence::Error(format!(
            "checked path errored but reference succeeded: {e}"
        ))),
    }
}

/// Gate shared by most oracles: a valid config, or the reason to skip.
macro_rules! gate_config {
    ($ctx:expr) => {
        match $ctx.spec.config() {
            Ok(cfg) => cfg,
            Err(SwError::Config(msg)) => return Outcome::Skip(format!("config rejected: {msg}")),
            Err(e) => {
                return Outcome::Fail(Divergence::Error(format!(
                    "config rejection was not typed Config: {e}"
                )))
            }
        }
    };
}

/// Invalid geometries must be rejected with a *typed* `SwError::Config` —
/// never a panic, never a wrong-variant error. The complement of the
/// differential oracles: it is the only one that passes on degenerate
/// shapes.
pub struct ConfigRejection;

impl Oracle for ConfigRejection {
    fn name(&self) -> &'static str {
        "ConfigRejection"
    }

    fn check(&self, ctx: &CaseContext) -> Outcome {
        match ctx.spec.config() {
            Err(SwError::Config(_)) => Outcome::Pass,
            Err(e) => Outcome::Fail(Divergence::Error(format!(
                "invalid config rejected with the wrong error variant: {e}"
            ))),
            Ok(cfg) => {
                if ctx.image.height() >= cfg.window {
                    return Outcome::Skip("valid geometry".into());
                }
                // Config is fine but the frame is shorter than the window:
                // the run itself must surface the typed rejection.
                match ctx.run(&cfg, None, None, ctx.spec.kernel) {
                    Err(SwError::Config(_)) => Outcome::Pass,
                    Err(e) => Outcome::Fail(Divergence::Error(format!(
                        "short frame rejected with the wrong error variant: {e}"
                    ))),
                    Ok(_) => Outcome::Fail(Divergence::Error(
                        "short frame was accepted instead of rejected".into(),
                    )),
                }
            }
        }
    }
}

/// Paper Section IV: in lossless mode the compressed architecture is
/// bit-identical to the traditional (raw-buffer) architecture.
pub struct TraditionalVsCompressed;

impl Oracle for TraditionalVsCompressed {
    fn name(&self) -> &'static str {
        "TraditionalVsCompressed"
    }

    fn check(&self, ctx: &CaseContext) -> Outcome {
        if ctx.spec.fault_seed.is_some() {
            return Outcome::Skip("fault injection active".into());
        }
        if ctx.spec.codec == LineCodecKind::Raw {
            return Outcome::Skip("raw codec is the baseline itself".into());
        }
        if !ctx.spec.is_effectively_lossless() {
            return Outcome::Skip("lossy configuration".into());
        }
        let cfg = gate_config!(ctx);
        let raw_cfg = match ArchConfig::builder(cfg.window, cfg.width)
            .codec(LineCodecKind::Raw)
            .build()
        {
            Ok(c) => c,
            Err(e) => return Outcome::Skip(format!("raw baseline unavailable: {e}")),
        };
        let got = ctx.run(&cfg, None, None, ctx.spec.kernel);
        let want = ctx.run(&raw_cfg, None, None, ctx.spec.kernel);
        compare_runs(got, want)
    }
}

/// The RTL-faithful model is bit-identical to the functional model —
/// lossless *and* lossy — wherever an RTL path exists.
pub struct FunctionalVsRtl;

impl Oracle for FunctionalVsRtl {
    fn name(&self) -> &'static str {
        "FunctionalVsRtl"
    }

    fn check(&self, ctx: &CaseContext) -> Outcome {
        if ctx.spec.fault_seed.is_some() {
            return Outcome::Skip("fault injection active (no RTL hooks)".into());
        }
        if !ctx.spec.codec.has_rtl_model() {
            return Outcome::Skip(format!("no RTL model for `{}`", ctx.spec.codec.name()));
        }
        let cfg = gate_config!(ctx);
        if ctx.image.height() < cfg.window {
            return Outcome::Skip("frame shorter than the window".into());
        }
        let kernel = ctx.spec.kernel.build(cfg.window);
        let mut rtl = RtlCompressedSlidingWindow::new(cfg);
        let a = rtl.process_frame(&ctx.image, kernel.as_ref());
        let b = match ctx.run(&cfg, None, None, ctx.spec.kernel) {
            Ok(out) => out,
            Err(e) => {
                return Outcome::Fail(Divergence::Error(format!(
                    "functional model errored where RTL ran: {e}"
                )))
            }
        };
        if let Some(d) = first_divergent_pixel(&a.image, &b.image) {
            return Outcome::Fail(d);
        }
        if a.stats.cycles != b.stats.cycles {
            return Outcome::Fail(Divergence::Field {
                name: "cycles".into(),
                got: a.stats.cycles,
                want: b.stats.cycles,
            });
        }
        Outcome::Pass
    }
}

/// The sharded runner is jobs-invariant for every codec and policy, and
/// matches the sequential architecture exactly when lossless.
pub struct SequentialVsSharded;

/// Strip count the oracle shards at (fixed so verdicts are reproducible).
const ORACLE_STRIPS: usize = 4;

impl SequentialVsSharded {
    fn sharded(
        &self,
        ctx: &CaseContext,
        cfg: &ArchConfig,
        mu: Option<MemoryUnitConfig>,
        jobs: usize,
    ) -> Result<sw_core::shard::ShardedOutput, SwError> {
        let mut runner = ShardedFrameRunner::new(*cfg).with_strips(ORACLE_STRIPS);
        if let Some(mu) = mu {
            runner = runner.with_memory_unit(mu);
        }
        if let Some(seed) = ctx.spec.fault_seed {
            runner = runner.with_fault_injector(FaultInjector::seeded(seed));
        }
        let kernel = ctx.spec.kernel.build(cfg.window);
        let pool = ThreadPool::new(jobs);
        runner.run(&ctx.image, kernel.as_ref(), &pool)
    }
}

impl Oracle for SequentialVsSharded {
    fn name(&self) -> &'static str {
        "SequentialVsSharded"
    }

    fn check(&self, ctx: &CaseContext) -> Outcome {
        let cfg = gate_config!(ctx);
        let mu = match ctx.spec.memory_unit() {
            Ok(mu) => mu,
            Err(e) => return Outcome::Skip(format!("memory-unit probe failed: {e}")),
        };
        let one = self.sharded(ctx, &cfg, mu, 1);
        let many = self.sharded(ctx, &cfg, mu, 3);
        let (one, many) = match (one, many) {
            (Ok(a), Ok(b)) => (a, b),
            (Err(a), Err(b)) => {
                return if a.to_string() == b.to_string() {
                    Outcome::Pass
                } else {
                    Outcome::Fail(Divergence::Error(format!(
                        "jobs=1 and jobs=3 errored differently: `{a}` vs `{b}`"
                    )))
                }
            }
            (Ok(_), Err(e)) => {
                return Outcome::Fail(Divergence::Error(format!(
                    "jobs=1 succeeded but jobs=3 errored: {e}"
                )))
            }
            (Err(e), Ok(_)) => {
                return Outcome::Fail(Divergence::Error(format!(
                    "jobs=3 succeeded but jobs=1 errored: {e}"
                )))
            }
        };
        if let Some(d) = first_divergent_pixel(&many.image, &one.image) {
            return Outcome::Fail(d);
        }
        for (name, got, want) in [
            ("cycles", many.cycles, one.cycles),
            ("stall_cycles", many.stall_cycles, one.stall_cycles),
            ("t_escalations", many.t_escalations, one.t_escalations),
            (
                "overflow_events",
                many.overflow_events as u64,
                one.overflow_events as u64,
            ),
            (
                "peak_payload_occupancy",
                many.peak_payload_occupancy,
                one.peak_payload_occupancy,
            ),
        ] {
            if got != want {
                return Outcome::Fail(Divergence::Field {
                    name: name.into(),
                    got,
                    want,
                });
            }
        }
        // Lossless, unbounded, fault-free: sharding must also match the
        // sequential architecture bit for bit (the lossy sharded result is
        // a *different* deterministic approximation, covered above).
        if ctx.spec.is_effectively_lossless() && mu.is_none() && ctx.spec.fault_seed.is_none() {
            match ctx.run(&cfg, None, None, ctx.spec.kernel) {
                Ok(seq) => {
                    if let Some(d) = first_divergent_pixel(&one.image, &seq.image) {
                        return Outcome::Fail(d);
                    }
                }
                Err(e) => {
                    return Outcome::Fail(Divergence::Error(format!(
                        "sequential run errored where sharded succeeded: {e}"
                    )))
                }
            }
        }
        Outcome::Pass
    }
}

/// Per-trip reconstruction error bound for one threshold step.
///
/// A coefficient with `|c| < T` is zeroed, so one compression trip can
/// move a reconstructed pixel by at most `k·(T−1) + 2` grey levels, where
/// `k` captures how many thresholded coefficients feed one pixel in the
/// codec's inverse transform (Haar: 3, LeGall 5/3: 4, two-level Haar: 8,
/// validated against the corpus). `T ≤ 1` only drops exact zeros and is
/// lossless.
fn per_trip_bound(codec: LineCodecKind, t: i16) -> u64 {
    if t <= 1 || !codec.is_lossy_capable() {
        return 0;
    }
    let k: u64 = match codec {
        LineCodecKind::Haar => 3,
        LineCodecKind::Legall => 4,
        LineCodecKind::Haar2 => 8,
        LineCodecKind::Raw | LineCodecKind::Locoi => 0,
    };
    k * (t as u64 - 1) + 2
}

/// Lossy reconstruction error is bounded by the analytic threshold bound:
/// every buffered pixel takes at most `N − 1` compression trips, each
/// moving it at most `per_trip_bound` grey levels. Lossless cases tighten
/// the bound to zero — an exact round-trip oracle.
pub struct LossyMseBound;

impl Oracle for LossyMseBound {
    fn name(&self) -> &'static str {
        "LossyMseBound"
    }

    fn check(&self, ctx: &CaseContext) -> Outcome {
        if ctx.spec.fault_seed.is_some() {
            return Outcome::Skip("fault injection active".into());
        }
        let cfg = gate_config!(ctx);
        if ctx.image.height() < cfg.window {
            return Outcome::Skip("frame shorter than the window".into());
        }
        let mu = match ctx.spec.memory_unit() {
            Ok(mu) => mu,
            Err(e) => return Outcome::Skip(format!("memory-unit probe failed: {e}")),
        };
        // The top-left tap passes the buffered pixel straight through, so
        // the output *is* the reconstruction — compare against the input.
        let mut arch = match build_arch(&cfg) {
            Ok(a) => a,
            Err(e) => return Outcome::Fail(Divergence::Error(format!("build failed: {e}"))),
        };
        arch.set_memory_unit(mu);
        let out = match arch.process_frame(&ctx.image, &Tap::top_left(cfg.window)) {
            Ok(out) => out,
            Err(SwError::Fifo(FifoError::Overflow { .. }))
                if ctx.spec.policy == Some(OverflowPolicy::Fail) =>
            {
                return Outcome::Skip("budget exhausted under the fail policy".into());
            }
            Err(e) => return Outcome::Fail(Divergence::Error(format!("frame run errored: {e}"))),
        };
        // Under DegradeLossy the threshold may have escalated up to the
        // memory unit's ceiling; bound from the worst threshold reached.
        let t_eff = match (ctx.spec.policy, mu) {
            (Some(OverflowPolicy::DegradeLossy), Some(m)) if ctx.spec.codec.is_lossy_capable() => {
                ctx.spec.threshold.max(m.max_threshold)
            }
            _ => ctx.spec.threshold,
        };
        let bound = per_trip_bound(ctx.spec.codec, t_eff) * (cfg.window as u64 - 1);
        let bound = bound.min(255) as u8;
        let want = ctx.image.crop(0, 0, out.image.width(), out.image.height());
        let mut sq_err = 0u64;
        for y in 0..out.image.height() {
            for x in 0..out.image.width() {
                let (g, w) = (out.image.get(x, y), want.get(x, y));
                let err = g.abs_diff(w);
                sq_err += u64::from(err) * u64::from(err);
                if err > bound {
                    return Outcome::Fail(Divergence::Pixel {
                        x,
                        y,
                        got: g,
                        want: w,
                    });
                }
            }
        }
        let n = (out.image.width() * out.image.height()).max(1) as u64;
        let mse = sq_err as f64 / n as f64;
        let mse_bound = f64::from(bound) * f64::from(bound);
        if mse > mse_bound {
            return Outcome::Fail(Divergence::Error(format!(
                "MSE {mse:.2} exceeds the analytic bound {mse_bound:.2} for T = {t_eff}"
            )));
        }
        Outcome::Pass
    }
}

/// `FrameStats` is internally consistent and reconciles exactly with the
/// overflow policy and budget: packed ≤ raw for lossless haar on smooth
/// content, stall/degrade/overflow counters mutually exclusive per policy,
/// stall cycles word-granular against the peak deficit.
pub struct StatsConsistency;

impl Oracle for StatsConsistency {
    fn name(&self) -> &'static str {
        "StatsConsistency"
    }

    #[allow(clippy::too_many_lines)]
    fn check(&self, ctx: &CaseContext) -> Outcome {
        if ctx.spec.fault_seed.is_some() {
            return Outcome::Skip("fault injection active".into());
        }
        let cfg = gate_config!(ctx);
        let mu = match ctx.spec.memory_unit() {
            Ok(mu) => mu,
            Err(e) => return Outcome::Skip(format!("memory-unit probe failed: {e}")),
        };
        let s = match ctx.run(&cfg, mu, None, ctx.spec.kernel) {
            Ok(out) => out.stats,
            Err(SwError::Config(msg)) => return Outcome::Skip(format!("rejected: {msg}")),
            Err(SwError::Fifo(FifoError::Overflow { .. }))
                if ctx.spec.policy == Some(OverflowPolicy::Fail) =>
            {
                // The fail policy aborting on a tight budget *is* the
                // documented contract; there are no stats to reconcile.
                return Outcome::Pass;
            }
            Err(e) => return Outcome::Fail(Divergence::Error(format!("frame run errored: {e}"))),
        };
        let field = |name: &str, got: u64, want: u64| -> Option<Outcome> {
            (got != want).then(|| {
                Outcome::Fail(Divergence::Field {
                    name: name.into(),
                    got,
                    want,
                })
            })
        };
        let checks = [
            field(
                "cycles",
                s.cycles,
                (ctx.image.width() * ctx.image.height()) as u64,
            ),
            field(
                "payload_bits_total",
                s.payload_bits_total,
                s.per_band_bits_total.iter().sum(),
            ),
            field(
                "peak_total_occupancy",
                s.peak_total_occupancy,
                s.peak_payload_occupancy + s.management_bits,
            ),
            field(
                "management_bits",
                s.management_bits,
                ctx.spec.codec.management_bits(&cfg),
            ),
            field(
                "raw_buffer_bits",
                s.raw_buffer_bits,
                ctx.spec.codec.raw_span_bits(&cfg),
            ),
        ];
        if let Some(fail) = checks.into_iter().flatten().next() {
            return fail;
        }
        if s.peak_payload_occupancy > s.payload_bits_total {
            return Outcome::Fail(Divergence::Field {
                name: "peak_payload_occupancy".into(),
                got: s.peak_payload_occupancy,
                want: s.payload_bits_total,
            });
        }
        // Policy reconciliation: each policy owns exactly one counter.
        match (ctx.spec.policy, mu) {
            (None, _) | (_, None) => {
                if s.stall_cycles != 0 || s.t_escalations != 0 || s.overflow_events != 0 {
                    return Outcome::Fail(Divergence::Error(format!(
                        "no memory unit, yet stall={} escalations={} overflows={}",
                        s.stall_cycles, s.t_escalations, s.overflow_events
                    )));
                }
            }
            (Some(OverflowPolicy::Fail), Some(_)) => {
                // A completed frame under `Fail` by definition never hit a
                // deficit.
                if s.stall_cycles != 0 || s.t_escalations != 0 || s.overflow_events != 0 {
                    return Outcome::Fail(Divergence::Error(format!(
                        "completed fail-policy frame recorded stall={} escalations={} overflows={}",
                        s.stall_cycles, s.t_escalations, s.overflow_events
                    )));
                }
            }
            (Some(OverflowPolicy::Stall), Some(m)) => {
                if s.t_escalations != 0 || s.overflow_events != 0 {
                    return Outcome::Fail(Divergence::Error(format!(
                        "stall policy recorded escalations={} overflows={}",
                        s.t_escalations, s.overflow_events
                    )));
                }
                let over_budget = s.peak_payload_occupancy > m.capacity_bits;
                if over_budget != (s.stall_cycles > 0) {
                    return Outcome::Fail(Divergence::Error(format!(
                        "stall accounting contradicts the budget: peak {} vs capacity {} with {} stall cycles",
                        s.peak_payload_occupancy, m.capacity_bits, s.stall_cycles
                    )));
                }
                if over_budget {
                    let floor = (s.peak_payload_occupancy - m.capacity_bits).div_ceil(36);
                    if s.stall_cycles < floor {
                        return Outcome::Fail(Divergence::Field {
                            name: "stall_cycles".into(),
                            got: s.stall_cycles,
                            want: floor,
                        });
                    }
                }
            }
            (Some(OverflowPolicy::DegradeLossy), Some(m)) => {
                if s.stall_cycles != 0 {
                    return Outcome::Fail(Divergence::Error(format!(
                        "degrade policy recorded {} stall cycles",
                        s.stall_cycles
                    )));
                }
                if !ctx.spec.codec.is_lossy_capable() && s.t_escalations != 0 {
                    return Outcome::Fail(Divergence::Error(format!(
                        "`{}` cannot degrade, yet recorded {} escalations",
                        ctx.spec.codec.name(),
                        s.t_escalations
                    )));
                }
                if ctx.spec.codec.is_lossy_capable()
                    && s.overflow_events == 0
                    && s.peak_payload_occupancy > m.capacity_bits
                {
                    return Outcome::Fail(Divergence::Error(format!(
                        "degrade reported no residual overflow, yet peak {} exceeds capacity {}",
                        s.peak_payload_occupancy, m.capacity_bits
                    )));
                }
            }
        }
        // The paper's headline: the lossless haar span never outgrows the
        // raw span on compressible content — but only in the amortized
        // regime. Fuzzed geometry showed the claim genuinely fails for
        // tiny windows (steep per-pixel gradients blow up the detail
        // coefficients below W=32 at N=4) and for odd widths (the
        // unpaired trailing column rides uncompressed), so the assertion
        // is gated to even widths ≥ 16 with window ≥ 8, where a probe
        // over every content × geometry the fuzzer can reach holds
        // uniformly. (Noise and checkerboards are genuinely
        // incompressible — the claim does not cover them either.)
        let compressible = matches!(
            ctx.spec.content,
            ContentClass::GradientH
                | ContentClass::GradientV
                | ContentClass::Black
                | ContentClass::White
        );
        let amortized =
            ctx.spec.window >= 8 && ctx.spec.width >= 16 && ctx.spec.width.is_multiple_of(2);
        if ctx.spec.codec == LineCodecKind::Haar
            && ctx.spec.threshold == 0
            && s.t_escalations == 0
            && compressible
            && amortized
            && s.peak_total_occupancy > s.raw_buffer_bits
        {
            return Outcome::Fail(Divergence::Field {
                name: "peak_total_occupancy".into(),
                got: s.peak_total_occupancy,
                want: s.raw_buffer_bits,
            });
        }
        Outcome::Pass
    }
}

/// The sliced (SWAR) hot path is bit-identical to the permanent scalar
/// oracle path: same output pixels, same `FrameStats` down to the packed
/// bit counts, same typed error — for every codec, threshold, policy,
/// budget and fault seed. This is the conformance-level lockdown of the
/// `hot_path_equivalence` differential battery.
pub struct HotPathEquivalence;

impl Oracle for HotPathEquivalence {
    fn name(&self) -> &'static str {
        "HotPathEquivalence"
    }

    fn check(&self, ctx: &CaseContext) -> Outcome {
        let mut spec = ctx.spec;
        spec.hot_path = HotPath::Sliced;
        let sliced_cfg = spec.config();
        spec.hot_path = HotPath::Scalar;
        let scalar_cfg = spec.config();
        let (sliced_cfg, scalar_cfg) = match (sliced_cfg, scalar_cfg) {
            (Ok(a), Ok(b)) => (a, b),
            (Err(SwError::Config(msg)), Err(SwError::Config(_))) => {
                return Outcome::Skip(format!("config rejected: {msg}"))
            }
            (a, b) => {
                let show = |r: Result<ArchConfig, SwError>| match r {
                    Ok(_) => "accepted".to_string(),
                    Err(e) => format!("rejected: {e}"),
                };
                return Outcome::Fail(Divergence::Error(format!(
                    "hot paths disagreed at config time: sliced {} vs scalar {}",
                    show(a),
                    show(b)
                )));
            }
        };
        let mu = match ctx.spec.memory_unit() {
            Ok(mu) => mu,
            Err(e) => return Outcome::Skip(format!("memory-unit probe failed: {e}")),
        };
        let got = ctx.run(&sliced_cfg, mu, ctx.spec.fault_seed, ctx.spec.kernel);
        let want = ctx.run(&scalar_cfg, mu, ctx.spec.fault_seed, ctx.spec.kernel);
        if let (Ok(a), Ok(b)) = (&got, &want) {
            for ((name, g), (_, w)) in a.stats.fields().into_iter().zip(b.stats.fields()) {
                if g != w {
                    return Outcome::Fail(Divergence::Field {
                        name: name.into(),
                        got: g,
                        want: w,
                    });
                }
            }
        }
        compare_runs(got, want)
    }
}

/// Fault injection must surface as `Ok` or a typed `SwError` — never a
/// panic. The only oracle that runs on fault-seeded cases.
pub struct FaultRobustness;

impl Oracle for FaultRobustness {
    fn name(&self) -> &'static str {
        "FaultRobustness"
    }

    fn check(&self, ctx: &CaseContext) -> Outcome {
        let Some(seed) = ctx.spec.fault_seed else {
            return Outcome::Skip("no fault seed".into());
        };
        let cfg = gate_config!(ctx);
        let mu = match ctx.spec.memory_unit() {
            Ok(mu) => mu,
            Err(e) => return Outcome::Skip(format!("memory-unit probe failed: {e}")),
        };
        match ctx.run(&cfg, mu, Some(seed), ctx.spec.kernel) {
            Ok(_) | Err(_) => Outcome::Pass,
        }
    }
}

/// The integral engine's field-by-field report comparison, naming the
/// first divergent field.
fn compare_integral_reports(got: &IntegralReport, want: &IntegralReport) -> Outcome {
    let fields = [
        ("width", got.width as u64, want.width as u64),
        ("height", got.height as u64, want.height as u64),
        ("segment", got.segment as u64, want.segment as u64),
        (
            "payload_bits_total",
            got.payload_bits_total,
            want.payload_bits_total,
        ),
        (
            "management_bits_per_line",
            got.management_bits_per_line,
            want.management_bits_per_line,
        ),
        ("peak_line_bits", got.peak_line_bits, want.peak_line_bits),
        ("raw_line_bits", got.raw_line_bits, want.raw_line_bits),
        ("digest", got.digest, want.digest),
    ];
    for (name, g, w) in fields {
        if g != w {
            return Outcome::Fail(Divergence::Field {
                name: name.into(),
                got: g,
                want: w,
            });
        }
    }
    Outcome::Pass
}

/// The wide engine is hot-path- and jobs-invariant: the scalar engine on
/// one thread and the sliced engine on three must produce bit-identical
/// reports (digest included) — the 32-bit mirror of `HotPathEquivalence`.
pub struct IntegralEquivalence;

impl Oracle for IntegralEquivalence {
    fn name(&self) -> &'static str {
        "IntegralEquivalence"
    }

    fn check(&self, ctx: &CaseContext) -> Outcome {
        let mk = |hot_path| IntegralConfig {
            segment: ctx.spec.window,
            hot_path,
        };
        let scalar = analyze_integral(&ctx.image, &mk(HotPath::Scalar), &ThreadPool::new(1));
        let sliced = analyze_integral(&ctx.image, &mk(HotPath::Sliced), &ThreadPool::new(3));
        match (scalar, sliced) {
            (Ok(want), Ok(got)) => compare_integral_reports(&got, &want),
            (Err(a), Err(b)) => {
                if a.to_string() == b.to_string() {
                    Outcome::Pass
                } else {
                    Outcome::Fail(Divergence::Error(format!(
                        "hot paths errored differently: `{a}` vs `{b}`"
                    )))
                }
            }
            (Ok(_), Err(e)) => Outcome::Fail(Divergence::Error(format!(
                "sliced engine errored where scalar ran: {e}"
            ))),
            (Err(e), Ok(_)) => Outcome::Fail(Divergence::Error(format!(
                "scalar engine errored where sliced ran: {e}"
            ))),
        }
    }
}

/// The engine's reconstruction digest equals the fingerprint of the
/// directly computed integral image (i64 math, no codec in the loop) —
/// the packed line buffer may not perturb a single summed-area word.
pub struct IntegralDigest;

impl Oracle for IntegralDigest {
    fn name(&self) -> &'static str {
        "IntegralDigest"
    }

    fn check(&self, ctx: &CaseContext) -> Outcome {
        let cfg = IntegralConfig {
            segment: ctx.spec.window,
            hot_path: ctx.spec.hot_path,
        };
        let report = match analyze_integral(&ctx.image, &cfg, &ThreadPool::new(2)) {
            Ok(r) => r,
            Err(SwError::Config(msg)) => return Outcome::Skip(format!("rejected: {msg}")),
            Err(e) => return Outcome::Fail(Divergence::Error(format!("engine errored: {e}"))),
        };
        let reference = reference_integral_image(&ctx.image);
        let mut h = Fnv64::new();
        h.write_u64(ctx.image.width() as u64);
        h.write_u64(ctx.image.height() as u64);
        for &v in &reference {
            // The engine folds with wrapping adds, so the truncating cast
            // (two's-complement wrap) is exactly its arithmetic.
            h.write_u64((v as WideCoeff).to_raw());
        }
        let want = h.finish();
        if report.digest != want {
            return Outcome::Fail(Divergence::Field {
                name: "digest".into(),
                got: report.digest,
                want,
            });
        }
        let raw = ctx.image.width() as u64 * u64::from(WideCoeff::BITS);
        if report.raw_line_bits != raw {
            return Outcome::Fail(Divergence::Field {
                name: "raw_line_bits".into(),
                got: report.raw_line_bits,
                want: raw,
            });
        }
        Outcome::Pass
    }
}

/// The full oracle battery, in reporting order.
pub fn all_oracles() -> Vec<Box<dyn Oracle>> {
    vec![
        Box::new(ConfigRejection),
        Box::new(TraditionalVsCompressed),
        Box::new(FunctionalVsRtl),
        Box::new(SequentialVsSharded),
        Box::new(LossyMseBound),
        Box::new(StatsConsistency),
        Box::new(HotPathEquivalence),
        Box::new(FaultRobustness),
    ]
}

/// The integral-workload battery: the window oracles have no meaning for
/// the wide engine, so integral cases are judged by their own pair.
pub fn integral_oracles() -> Vec<Box<dyn Oracle>> {
    vec![Box::new(IntegralEquivalence), Box::new(IntegralDigest)]
}

/// Run every oracle on one case, converting a panicking datapath into a
/// failing verdict (the harness and fuzzer must keep going).
pub fn run_oracles(ctx: &CaseContext) -> Vec<Verdict> {
    let battery = match ctx.spec.workload {
        Workload::Window => all_oracles(),
        Workload::Integral => integral_oracles(),
    };
    battery
        .into_iter()
        .map(|oracle| {
            let outcome =
                catch_unwind(AssertUnwindSafe(|| oracle.check(ctx))).unwrap_or_else(|payload| {
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".into());
                    Outcome::Fail(Divergence::Error(format!("datapath panicked: {msg}")))
                });
            Verdict {
                oracle: oracle.name(),
                case_id: ctx.spec.id(),
                outcome,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::{ContentClass, KernelKind};

    fn spec() -> CaseSpec {
        CaseSpec {
            window: 8,
            width: 24,
            height: 16,
            content: ContentClass::GradientH,
            content_seed: 0,
            kernel: KernelKind::Tap,
            codec: LineCodecKind::Haar,
            threshold: 0,
            policy: None,
            budget_pct: 100,
            fault_seed: None,
            hot_path: HotPath::Sliced,
            workload: Workload::Window,
        }
    }

    #[test]
    fn integral_case_passes_its_battery() {
        let mut s = spec();
        s.workload = Workload::Integral;
        s.content = ContentClass::MonotoneRamp;
        s.content_seed = 21;
        let ctx = CaseContext::new(s);
        let verdicts = run_oracles(&ctx);
        assert_eq!(verdicts.len(), integral_oracles().len());
        for v in verdicts {
            assert!(!v.is_fail(), "{v}");
            assert!(matches!(v.outcome, Outcome::Pass), "{v}");
        }
    }

    #[test]
    fn lossless_case_passes_every_applicable_oracle() {
        let ctx = CaseContext::new(spec());
        for v in run_oracles(&ctx) {
            assert!(!v.is_fail(), "{v}");
        }
    }

    #[test]
    fn degenerate_case_is_rejected_not_diverged() {
        let mut s = spec();
        s.width = 6; // narrower than the window
        let ctx = CaseContext::new(s);
        let verdicts = run_oracles(&ctx);
        let config = verdicts.iter().find(|v| v.oracle == "ConfigRejection");
        assert!(matches!(config.unwrap().outcome, Outcome::Pass));
        for v in &verdicts {
            assert!(!v.is_fail(), "{v}");
        }
    }

    #[test]
    fn lossy_case_respects_the_analytic_bound() {
        let mut s = spec();
        s.content = ContentClass::Noise;
        s.content_seed = 9;
        s.threshold = 4;
        let ctx = CaseContext::new(s);
        for v in run_oracles(&ctx) {
            assert!(!v.is_fail(), "{v}");
        }
    }
}

//! Coverage-guided fuzz driver.
//!
//! Mutates image dimensions, content class, threshold, budget fraction,
//! fault-injection seeds and the workload axis from a splitmix64 stream;
//! runs the matching oracle battery on every generated case; tracks which
//! `(codec × policy × shape-class × hot-path × workload)` coverage cells
//! have been exercised; and shrinks any failing case to a minimal
//! reproducer written to `vectors/regressions/` for permanent replay.

use crate::case::{CaseSpec, ContentClass, KernelKind, ShapeClass};
use crate::oracle::{run_oracles, CaseContext, Verdict};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use sw_bitstream::digest::{fnv1a64, splitmix64};
use sw_bitstream::HotPath;
use sw_core::codec::LineCodecKind;
use sw_core::integral::Workload;
use sw_core::memory_unit::OverflowPolicy;
use sw_telemetry::json::parse;

/// Deterministic splitmix64 stream.
pub struct Rng {
    state: u64,
}

impl Rng {
    /// A stream seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        splitmix64(self.state)
    }

    /// Uniform draw in `0..n` (`n ≥ 1`).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

/// Coverage over the `(codec × policy × shape-class × hot-path ×
/// workload)` grid.
#[derive(Debug, Default)]
pub struct Coverage {
    #[allow(clippy::type_complexity)]
    cells: BTreeSet<(
        &'static str,
        &'static str,
        &'static str,
        &'static str,
        &'static str,
    )>,
}

impl Coverage {
    /// Record one case's coverage cell.
    pub fn record(&mut self, spec: &CaseSpec) {
        self.cells.insert((
            spec.codec.name(),
            spec.policy_name(),
            spec.shape().name(),
            spec.hot_path.name(),
            spec.workload.name(),
        ));
    }

    /// Cells exercised so far.
    pub fn exercised(&self) -> usize {
        self.cells.len()
    }

    /// Total cells in the grid:
    /// codecs × (policies + none) × shapes × hot paths × workloads.
    pub fn total() -> usize {
        LineCodecKind::ALL.len()
            * (OverflowPolicy::ALL.len() + 1)
            * ShapeClass::ALL.len()
            * HotPath::ALL.len()
            * Workload::ALL.len()
    }

    /// `exercised/total` summary line.
    pub fn summary(&self) -> String {
        format!(
            "coverage: {}/{} (codec x policy x shape x hot-path x workload) cells exercised",
            self.exercised(),
            Self::total()
        )
    }
}

/// One confirmed fuzz failure.
#[derive(Debug)]
pub struct FuzzFailure {
    /// Id of the case as originally generated.
    pub case_id: String,
    /// Id of the shrunk minimal reproducer.
    pub minimal_id: String,
    /// The first failing verdict on the minimal case.
    pub verdict: String,
    /// Reproducer file, if writing it succeeded.
    pub reproducer: Option<PathBuf>,
}

/// Result of one fuzz campaign.
#[derive(Debug)]
pub struct FuzzReport {
    /// Cases generated and judged.
    pub cases: usize,
    /// Confirmed failures, already shrunk.
    pub failures: Vec<FuzzFailure>,
    /// Coverage accumulated over the campaign.
    pub coverage: Coverage,
}

/// Draw one mutated case from the stream.
pub fn random_spec(rng: &mut Rng) -> CaseSpec {
    let window = if rng.below(2) == 0 { 4 } else { 8 };
    // Widths from `window − 4` upward hit narrow-invalid, odd, ragged and
    // aligned geometries with useful frequency; heights from 1 upward hit
    // short frames.
    let width = (window as u64 - 4 + rng.below(48)).max(1) as usize;
    let height = (1 + rng.below(40)) as usize;
    let content = ContentClass::ALL[rng.below(ContentClass::ALL.len() as u64) as usize];
    let kernel = KernelKind::ALL[rng.below(2) as usize];
    let codec = LineCodecKind::ALL[rng.below(LineCodecKind::ALL.len() as u64) as usize];
    let threshold = rng.below(9) as i16;
    let policy = match rng.below(4) {
        0 => None,
        1 => Some(OverflowPolicy::Fail),
        2 => Some(OverflowPolicy::Stall),
        _ => Some(OverflowPolicy::DegradeLossy),
    };
    let budget_pct = [25u32, 50, 100][rng.below(3) as usize];
    let fault_seed = (rng.below(4) == 0).then(|| rng.below(1 << 20));
    let hot_path = HotPath::ALL[rng.below(HotPath::ALL.len() as u64) as usize];
    // One case in four drives the wide integral engine instead of the
    // window datapath (its vestigial axes are drawn anyway so the stream
    // stays aligned and the spec stays serializable).
    let workload = if rng.below(4) == 0 {
        Workload::Integral
    } else {
        Workload::Window
    };
    CaseSpec {
        window,
        width,
        height,
        content,
        content_seed: rng.below(1 << 20),
        kernel,
        codec,
        threshold,
        policy,
        budget_pct,
        fault_seed,
        hot_path,
        workload,
    }
}

/// True when any oracle fails on `spec`.
fn fails(spec: &CaseSpec) -> bool {
    run_oracles(&CaseContext::new(*spec))
        .iter()
        .any(Verdict::is_fail)
}

/// Greedy shrink: try simpler variants (smaller dims, flat content, lower
/// threshold, fewer knobs) and keep any that still fails, until a fixpoint
/// or the evaluation budget runs out.
pub fn shrink(spec: CaseSpec) -> CaseSpec {
    let mut best = spec;
    let mut evals = 0usize;
    loop {
        let mut candidates: Vec<CaseSpec> = Vec::new();
        if best.height > 1 {
            let mut c = best;
            c.height = (best.height / 2).max(1);
            candidates.push(c);
            let mut c = best;
            c.height = best.height - 1;
            candidates.push(c);
        }
        if best.width > 1 {
            let mut c = best;
            c.width = (best.width / 2).max(1);
            candidates.push(c);
            let mut c = best;
            c.width = best.width - 1;
            candidates.push(c);
        }
        if best.fault_seed.is_some() {
            let mut c = best;
            c.fault_seed = None;
            candidates.push(c);
        }
        if best.policy.is_some() {
            let mut c = best;
            c.policy = None;
            candidates.push(c);
        }
        if best.threshold > 0 {
            let mut c = best;
            c.threshold = best.threshold / 2;
            candidates.push(c);
        }
        if best.content != ContentClass::Black {
            let mut c = best;
            c.content = ContentClass::Black;
            candidates.push(c);
        }
        if best.budget_pct < 100 {
            let mut c = best;
            c.budget_pct = 100;
            candidates.push(c);
        }
        if best.hot_path != HotPath::Sliced {
            let mut c = best;
            c.hot_path = HotPath::Sliced;
            candidates.push(c);
        }
        let mut improved = false;
        for c in candidates {
            evals += 1;
            if evals > 200 {
                return best;
            }
            if fails(&c) {
                best = c;
                improved = true;
                break;
            }
        }
        if !improved {
            return best;
        }
    }
}

/// Write a reproducer file for a shrunk failure; returns its path.
fn write_reproducer(dir: &Path, minimal: &CaseSpec, verdict: &Verdict) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!(
        "fuzz-{:016x}.json",
        fnv1a64(minimal.id().as_bytes())
    ));
    let mut body = String::new();
    body.push_str("{\n  \"spec\": ");
    body.push_str(&minimal.to_json());
    body.push_str(",\n  \"oracle\": ");
    sw_telemetry::json::write_escaped(&mut body, verdict.oracle);
    body.push_str(",\n  \"divergence\": ");
    sw_telemetry::json::write_escaped(&mut body, &verdict.to_string());
    body.push_str("\n}\n");
    std::fs::write(&path, body)?;
    Ok(path)
}

/// Run an `n`-case campaign from `seed`, shrinking failures into
/// `regressions_dir`.
pub fn run_fuzz(n: usize, seed: u64, regressions_dir: &Path) -> FuzzReport {
    let mut rng = Rng::new(seed);
    let mut coverage = Coverage::default();
    let mut failures = Vec::new();
    for _ in 0..n {
        let spec = random_spec(&mut rng);
        coverage.record(&spec);
        let verdicts = run_oracles(&CaseContext::new(spec));
        if verdicts.iter().any(Verdict::is_fail) {
            let minimal = shrink(spec);
            // Re-judge the minimal case to attach its failing verdict.
            let final_verdicts = run_oracles(&CaseContext::new(minimal));
            let failing = final_verdicts
                .iter()
                .find(|v| v.is_fail())
                .or_else(|| verdicts.iter().find(|v| v.is_fail()));
            if let Some(v) = failing {
                let reproducer = write_reproducer(regressions_dir, &minimal, v).ok();
                failures.push(FuzzFailure {
                    case_id: spec.id(),
                    minimal_id: minimal.id(),
                    verdict: v.to_string(),
                    reproducer,
                });
            }
        }
    }
    FuzzReport {
        cases: n,
        failures,
        coverage,
    }
}

/// Replay every reproducer in `dir`; returns the failing verdict lines.
///
/// # Errors
///
/// Any filesystem error listing or reading the directory (a missing
/// directory replays cleanly — there are no regressions yet).
pub fn replay_regressions(dir: &Path) -> std::io::Result<Vec<String>> {
    let mut failures = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(failures),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let path = entry?.path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let text = std::fs::read_to_string(&path)?;
        let spec = parse(&text)
            .ok()
            .and_then(|j| j.as_obj().and_then(|o| o.get("spec").cloned()))
            .and_then(|s| CaseSpec::from_json(&s).ok());
        let Some(spec) = spec else {
            failures.push(format!("{}: unparsable reproducer", path.display()));
            continue;
        };
        for v in run_oracles(&CaseContext::new(spec)) {
            if v.is_fail() {
                failures.push(format!("{}: {v}", path.display()));
            }
        }
    }
    Ok(failures)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn random_specs_cover_multiple_shapes_quickly() {
        let mut rng = Rng::new(1);
        let mut cov = Coverage::default();
        for _ in 0..64 {
            cov.record(&random_spec(&mut rng));
        }
        assert!(
            cov.exercised() >= 10,
            "64 draws exercised only {} cells",
            cov.exercised()
        );
        assert_eq!(Coverage::total(), 400);
    }

    #[test]
    fn shrink_reaches_a_fixpoint_on_a_passing_case() {
        // A passing case shrinks to itself: no candidate fails either.
        let mut rng = Rng::new(3);
        let mut spec = random_spec(&mut rng);
        spec.fault_seed = None;
        if !fails(&spec) {
            assert_eq!(shrink(spec), spec);
        }
    }

    #[test]
    fn small_fuzz_smoke_is_clean() {
        let dir = std::env::temp_dir().join(format!("sw-fuzz-smoke-{}", std::process::id()));
        let report = run_fuzz(12, 99, &dir);
        assert_eq!(report.cases, 12);
        assert!(
            report.failures.is_empty(),
            "fuzz found real failures: {:#?}",
            report.failures
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

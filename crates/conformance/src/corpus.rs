//! Golden-vector corpus: deterministic seeded images crossed with every
//! `(kernel × codec × threshold × overflow-policy)` cell, recorded into
//! checked-in `vectors/*.json` files.
//!
//! Each corpus image gets one vector file holding, per cell, the
//! output-image digest, the full `FrameStats`, the packed-stream byte
//! length, and the BRAM plan — or, for cells whose configuration is
//! invalid for that geometry, the exact typed-error message. `--bless`
//! regenerates the files after an intentional format change; `check`
//! recomputes everything and names the first divergent field.

use crate::case::{CaseSpec, ContentClass, KernelKind};
use crate::oracle::CaseContext;
use std::collections::BTreeMap;
use std::path::Path;
use sw_bitstream::HotPath;
use sw_core::codec::LineCodecKind;
use sw_core::digest::image_digest;
use sw_core::integral::{analyze_integral, IntegralConfig, Workload};
use sw_core::memory_unit::OverflowPolicy;
use sw_core::planner::{plan, MgmtAccounting};
use sw_pool::ThreadPool;
use sw_telemetry::json::{parse, write_escaped, Json};

/// Corpus schema version, bumped on any format change (then `--bless`).
pub const SCHEMA: u64 = 1;

/// Every case in the corpus grid, across all images.
pub fn corpus_specs() -> Vec<CaseSpec> {
    IMAGES.iter().flat_map(|img| img.cells()).collect()
}

/// Window size `N` every corpus image is judged against.
pub const CORPUS_WINDOW: usize = 8;

/// One deterministic corpus image.
#[derive(Debug, Clone, Copy)]
pub struct CorpusImage {
    /// File stem of the vector file (`vectors/<name>.json`).
    pub name: &'static str,
    /// Image width.
    pub width: usize,
    /// Image height.
    pub height: usize,
    /// Content class.
    pub content: ContentClass,
    /// Content seed.
    pub seed: u64,
}

/// The corpus: every content class plus the ragged geometries the ISSUE
/// names (`W < N`, `H < N`, odd `W`), all deterministic.
pub const IMAGES: [CorpusImage; 10] = [
    CorpusImage {
        name: "gradient-h",
        width: 48,
        height: 32,
        content: ContentClass::GradientH,
        seed: 0,
    },
    CorpusImage {
        name: "gradient-v-odd",
        width: 33,
        height: 21,
        content: ContentClass::GradientV,
        seed: 0,
    },
    CorpusImage {
        name: "checkerboard",
        width: 48,
        height: 32,
        content: ContentClass::Checkerboard,
        seed: 0,
    },
    CorpusImage {
        name: "noise",
        width: 40,
        height: 24,
        content: ContentClass::Noise,
        seed: 7,
    },
    CorpusImage {
        name: "impulses",
        width: 48,
        height: 32,
        content: ContentClass::Impulses,
        seed: 11,
    },
    CorpusImage {
        name: "black",
        width: 24,
        height: 16,
        content: ContentClass::Black,
        seed: 0,
    },
    CorpusImage {
        name: "white",
        width: 24,
        height: 16,
        content: ContentClass::White,
        seed: 0,
    },
    CorpusImage {
        name: "narrow",
        width: 6,
        height: 16,
        content: ContentClass::GradientH,
        seed: 0,
    },
    CorpusImage {
        name: "short",
        width: 48,
        height: 6,
        content: ContentClass::Noise,
        seed: 13,
    },
    CorpusImage {
        name: "ragged",
        width: 27,
        height: 19,
        content: ContentClass::Noise,
        seed: 17,
    },
];

impl CorpusImage {
    /// Every `(kernel × codec × threshold × policy)` cell for this image.
    ///
    /// Thresholds: `{0, 4}` for lossy-capable codecs, `{0}` otherwise
    /// (non-zero `T` is rejected at config time for raw/locoi). Budgets:
    /// 100 % of the lossless plan under `Fail` (must fit), 50 % under
    /// `Stall`/`DegradeLossy` (must bind).
    pub fn cells(&self) -> Vec<CaseSpec> {
        let mut specs = Vec::new();
        for kernel in KernelKind::ALL {
            for codec in LineCodecKind::ALL {
                let thresholds: &[i16] = if codec.is_lossy_capable() {
                    &[0, 4]
                } else {
                    &[0]
                };
                for &threshold in thresholds {
                    for policy in [
                        None,
                        Some(OverflowPolicy::Fail),
                        Some(OverflowPolicy::Stall),
                        Some(OverflowPolicy::DegradeLossy),
                    ] {
                        let budget_pct = match policy {
                            Some(OverflowPolicy::Stall) | Some(OverflowPolicy::DegradeLossy) => 50,
                            _ => 100,
                        };
                        specs.push(CaseSpec {
                            window: CORPUS_WINDOW,
                            width: self.width,
                            height: self.height,
                            content: self.content,
                            content_seed: self.seed,
                            kernel,
                            codec,
                            threshold,
                            policy,
                            budget_pct,
                            fault_seed: None,
                            // The golden digests are hot-path invariant,
                            // so `SWC_HOT_PATH=scalar swc conform` checks
                            // the oracle path against the same vectors.
                            hot_path: HotPath::from_env(),
                            workload: Workload::Window,
                        });
                    }
                }
            }
        }
        specs
    }
}

/// Segment lengths the integral golden vectors pin (the engine's packing
/// granularity — the wide analogue of the NBits column granularity).
pub const INTEGRAL_SEGMENTS: [usize; 2] = [4, 8];

/// The integral-workload case for one corpus image at one segment length.
///
/// The kernel/codec/threshold/policy axes do not exist for this workload;
/// they are pinned to their defaults so the spec stays serializable and
/// the coverage grid stays rectangular.
pub fn integral_spec(img: &CorpusImage, segment: usize, hot_path: HotPath) -> CaseSpec {
    CaseSpec {
        window: segment,
        width: img.width,
        height: img.height,
        content: img.content,
        content_seed: img.seed,
        kernel: KernelKind::Tap,
        codec: LineCodecKind::Raw,
        threshold: 0,
        policy: None,
        budget_pct: 100,
        fault_seed: None,
        hot_path,
        workload: Workload::Integral,
    }
}

/// One integral cell's golden record: the engine's full accounting plus
/// the reconstruction digest.
fn integral_cell_record(img: &CorpusImage, segment: usize) -> Json {
    let mut obj = BTreeMap::new();
    let image = img.content.render(img.width, img.height, img.seed);
    let cfg = IntegralConfig {
        segment,
        // Same convention as the window cells: the digests are hot-path
        // invariant, so `SWC_HOT_PATH=scalar` checks the oracle path
        // against the same vectors.
        hot_path: HotPath::from_env(),
    };
    match analyze_integral(&image, &cfg, &ThreadPool::new(1)) {
        Ok(r) => {
            obj.insert("status".into(), Json::Str("ok".into()));
            obj.insert("digest".into(), Json::Int(i128::from(r.digest)));
            obj.insert(
                "payload_bits_total".into(),
                Json::Int(i128::from(r.payload_bits_total)),
            );
            obj.insert(
                "management_bits_per_line".into(),
                Json::Int(i128::from(r.management_bits_per_line)),
            );
            obj.insert(
                "peak_line_bits".into(),
                Json::Int(i128::from(r.peak_line_bits)),
            );
            obj.insert(
                "raw_line_bits".into(),
                Json::Int(i128::from(r.raw_line_bits)),
            );
        }
        Err(e) => {
            obj.insert("status".into(), Json::Str("error".into()));
            obj.insert("error".into(), Json::Str(e.to_string()));
        }
    }
    Json::Obj(obj)
}

/// The golden document for the integral workload: every corpus image at
/// every pinned segment length, in one `vectors/integral.json` file.
fn integral_document() -> Json {
    let mut cells = BTreeMap::new();
    for img in &IMAGES {
        for segment in INTEGRAL_SEGMENTS {
            cells.insert(
                format!("{}/s{segment}", img.name),
                integral_cell_record(img, segment),
            );
        }
    }
    let mut doc = BTreeMap::new();
    doc.insert("schema".into(), Json::Int(i128::from(SCHEMA)));
    doc.insert(
        "workload".into(),
        Json::Str(Workload::Integral.name().into()),
    );
    doc.insert("cells".into(), Json::Obj(cells));
    Json::Obj(doc)
}

/// Compute one cell's golden record as a JSON object.
fn cell_record(ctx: &CaseContext) -> Json {
    let mut obj = BTreeMap::new();
    let run = ctx
        .spec
        .config()
        .and_then(|cfg| ctx.spec.memory_unit().map(|mu| (cfg, mu)))
        .and_then(|(cfg, mu)| {
            let mut arch = sw_core::arch::build_arch(&cfg)?;
            arch.set_memory_unit(mu);
            arch.process_frame(&ctx.image, ctx.spec.kernel.build(cfg.window).as_ref())
        });
    match run {
        Ok(out) => {
            obj.insert("status".into(), Json::Str("ok".into()));
            obj.insert(
                "digest".into(),
                Json::Int(i128::from(image_digest(&out.image))),
            );
            obj.insert(
                "packed_bytes".into(),
                Json::Int(i128::from(out.stats.payload_bits_total.div_ceil(8))),
            );
            for (name, value) in out.stats.fields() {
                obj.insert(name.into(), Json::Int(i128::from(value)));
            }
            let p = plan(
                ctx.spec.window,
                ctx.spec.width,
                out.stats.peak_payload_occupancy.max(1),
                MgmtAccounting::Structured,
            );
            obj.insert(
                "bram_rows_per_bram".into(),
                Json::Int(i128::from(p.rows_per_bram)),
            );
            obj.insert("bram_packed".into(), Json::Int(i128::from(p.packed_brams)));
            obj.insert("bram_nbits".into(), Json::Int(i128::from(p.nbits_brams)));
            obj.insert("bram_bitmap".into(), Json::Int(i128::from(p.bitmap_brams)));
            obj.insert("bram_fits".into(), Json::Bool(p.fits));
        }
        Err(e) => {
            obj.insert("status".into(), Json::Str("error".into()));
            obj.insert("error".into(), Json::Str(e.to_string()));
        }
    }
    Json::Obj(obj)
}

/// The full golden document for one corpus image.
fn image_document(img: &CorpusImage) -> Json {
    let mut cells = BTreeMap::new();
    for spec in img.cells() {
        let ctx = CaseContext::new(spec);
        cells.insert(spec.cell_key(), cell_record(&ctx));
    }
    let rendered = img.content.render(img.width, img.height, img.seed);
    let mut doc = BTreeMap::new();
    doc.insert("schema".into(), Json::Int(i128::from(SCHEMA)));
    doc.insert("image".into(), Json::Str(img.name.into()));
    doc.insert("content".into(), Json::Str(img.content.name().into()));
    doc.insert("seed".into(), Json::Int(i128::from(img.seed)));
    doc.insert("width".into(), Json::Int(img.width as i128));
    doc.insert("height".into(), Json::Int(img.height as i128));
    doc.insert("window".into(), Json::Int(CORPUS_WINDOW as i128));
    doc.insert(
        "image_digest".into(),
        Json::Int(i128::from(image_digest(&rendered))),
    );
    doc.insert("cells".into(), Json::Obj(cells));
    Json::Obj(doc)
}

/// Render a [`Json`] tree as pretty-printed JSON (stable key order — the
/// object map is a `BTreeMap` — so blessed files diff cleanly).
fn render(j: &Json, out: &mut String, indent: usize) {
    let pad = "  ".repeat(indent);
    match j {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Int(i) => out.push_str(&i.to_string()),
        Json::Float(f) => out.push_str(&format!("{f}")),
        Json::Str(s) => write_escaped(out, s),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                render(item, out, indent);
            }
            out.push(']');
        }
        Json::Obj(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, v)) in map.iter().enumerate() {
                out.push_str(&pad);
                out.push_str("  ");
                write_escaped(out, k);
                out.push_str(": ");
                render(v, out, indent + 1);
                if i + 1 < map.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Serialize a golden document to its on-disk form.
pub fn render_document(j: &Json) -> String {
    let mut out = String::new();
    render(j, &mut out, 0);
    out.push('\n');
    out
}

/// Regenerate every golden vector file under `dir`. Returns the total
/// cell count written.
///
/// # Errors
///
/// Any filesystem error creating or writing the vector files.
pub fn bless(dir: &Path) -> std::io::Result<usize> {
    let mut cells = bless_images(dir, &IMAGES)?;
    cells += bless_integral(dir)?;
    Ok(cells)
}

/// Regenerate the integral-workload golden vectors (`integral.json`).
/// Returns the cell count written. The window-workload files are
/// untouched — the two workloads bless independently.
fn bless_integral(dir: &Path) -> std::io::Result<usize> {
    std::fs::create_dir_all(dir)?;
    let doc = integral_document();
    let cells = doc
        .as_obj()
        .and_then(|o| o.get("cells"))
        .and_then(Json::as_obj)
        .map_or(0, BTreeMap::len);
    std::fs::write(dir.join("integral.json"), render_document(&doc))?;
    Ok(cells)
}

/// [`bless`] over an explicit image subset (the unit tests use a single
/// cheap image; the CLI always blesses the full corpus).
fn bless_images(dir: &Path, images: &[CorpusImage]) -> std::io::Result<usize> {
    std::fs::create_dir_all(dir)?;
    let mut cells = 0;
    for img in images {
        let doc = image_document(img);
        if let Some(obj) = doc.as_obj() {
            if let Some(c) = obj.get("cells").and_then(Json::as_obj) {
                cells += c.len();
            }
        }
        std::fs::write(
            dir.join(format!("{}.json", img.name)),
            render_document(&doc),
        )?;
    }
    Ok(cells)
}

/// Result of checking the corpus against the blessed vectors.
#[derive(Debug, Default)]
pub struct CheckReport {
    /// Cells recomputed and compared.
    pub cells: usize,
    /// Human-readable mismatch descriptions, one per divergence, each
    /// naming the image, cell, and first divergent field.
    pub mismatches: Vec<String>,
}

impl CheckReport {
    /// True when every cell matched its golden record.
    pub fn is_clean(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Structural JSON comparison naming the first divergent path.
fn diff_json(path: &str, golden: &Json, current: &Json, out: &mut Vec<String>) {
    match (golden, current) {
        (Json::Obj(g), Json::Obj(c)) => {
            for (k, gv) in g {
                match c.get(k) {
                    Some(cv) => diff_json(&format!("{path}/{k}"), gv, cv, out),
                    None => out.push(format!(
                        "{path}/{k}: in golden vector but no longer produced"
                    )),
                }
            }
            for k in c.keys() {
                if !g.contains_key(k) {
                    out.push(format!(
                        "{path}/{k}: produced but missing from golden vector"
                    ));
                }
            }
        }
        _ if golden == current => {}
        _ => out.push(format!(
            "{path}: golden {}, got {}",
            render_document(golden).trim(),
            render_document(current).trim()
        )),
    }
}

/// Recompute every corpus cell and compare against the blessed vectors in
/// `dir`.
///
/// # Errors
///
/// Any filesystem error reading the vector files (a *missing* file is a
/// mismatch, not an error).
pub fn check(dir: &Path) -> std::io::Result<CheckReport> {
    let mut report = check_images(dir, &IMAGES)?;
    check_integral(dir, &mut report)?;
    Ok(report)
}

/// Recompute the integral golden cells and compare against
/// `integral.json`, appending any divergence to `report`.
fn check_integral(dir: &Path, report: &mut CheckReport) -> std::io::Result<()> {
    let current = integral_document();
    if let Some(c) = current
        .as_obj()
        .and_then(|o| o.get("cells"))
        .and_then(Json::as_obj)
    {
        report.cells += c.len();
    }
    let file = dir.join("integral.json");
    let text = match std::fs::read_to_string(&file) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            report
                .mismatches
                .push("integral: golden vector file missing (run --bless)".into());
            return Ok(());
        }
        Err(e) => return Err(e),
    };
    match parse(&text) {
        Ok(golden) => diff_json("integral", &golden, &current, &mut report.mismatches),
        Err(e) => report
            .mismatches
            .push(format!("integral: golden vector unparsable: {e:?}")),
    }
    Ok(())
}

/// [`check`] over an explicit image subset.
fn check_images(dir: &Path, images: &[CorpusImage]) -> std::io::Result<CheckReport> {
    let mut report = CheckReport::default();
    for img in images {
        let current = image_document(img);
        if let Some(c) = current
            .as_obj()
            .and_then(|o| o.get("cells"))
            .and_then(Json::as_obj)
        {
            report.cells += c.len();
        }
        let file = dir.join(format!("{}.json", img.name));
        let text = match std::fs::read_to_string(&file) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                report.mismatches.push(format!(
                    "{}: golden vector file missing (run --bless)",
                    img.name
                ));
                continue;
            }
            Err(e) => return Err(e),
        };
        let golden = match parse(&text) {
            Ok(j) => j,
            Err(e) => {
                report
                    .mismatches
                    .push(format!("{}: golden vector unparsable: {e:?}", img.name));
                continue;
            }
        };
        diff_json(img.name, &golden, &current, &mut report.mismatches);
    }
    Ok(report)
}

/// One golden digest loaded back from the blessed vectors: the case that
/// produced it and the recorded output digest.
///
/// This is the read-side of the corpus that external harnesses (the
/// served-vs-local conformance tests, the `swc load --verify` pass)
/// consume: they re-run the case through another execution path and
/// assert the digest is reproduced bit-for-bit.
#[derive(Debug, Clone)]
pub struct GoldenDigest {
    /// The corpus case that produced the record.
    pub spec: CaseSpec,
    /// The blessed output digest (output-image digest for window cases,
    /// reconstruction digest for integral cases).
    pub digest: u64,
}

/// Extract `cells[key].digest` when the blessed record ran clean.
fn cell_digest(cells: &BTreeMap<String, Json>, key: &str) -> Option<u64> {
    let cell = cells.get(key)?.as_obj()?;
    if cell.get("status")?.as_str()? != "ok" {
        return None;
    }
    cell.get("digest")?.as_u64()
}

/// Parse one vector file into its `cells` map, or `None` when the file
/// is missing or unreadable as JSON (the caller decides whether that is
/// fatal; [`check`] already reports it as a mismatch).
fn load_cells(dir: &Path, file: &str) -> std::io::Result<Option<BTreeMap<String, Json>>> {
    let text = match std::fs::read_to_string(dir.join(file)) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    Ok(parse(&text)
        .ok()
        .as_ref()
        .and_then(Json::as_obj)
        .and_then(|o| o.get("cells"))
        .and_then(Json::as_obj)
        .cloned())
}

/// Load every successfully-blessed window-workload digest from `dir`.
///
/// Cells blessed as typed errors (degenerate geometries) are skipped —
/// they have no digest to reproduce.
///
/// # Errors
///
/// Any filesystem error other than a missing vector file.
pub fn golden_window_digests(dir: &Path) -> std::io::Result<Vec<GoldenDigest>> {
    let mut out = Vec::new();
    for img in &IMAGES {
        let Some(cells) = load_cells(dir, &format!("{}.json", img.name))? else {
            continue;
        };
        for spec in img.cells() {
            if let Some(digest) = cell_digest(&cells, &spec.cell_key()) {
                out.push(GoldenDigest { spec, digest });
            }
        }
    }
    Ok(out)
}

/// Load every blessed integral-workload digest from `dir`.
///
/// # Errors
///
/// Any filesystem error other than a missing vector file.
pub fn golden_integral_digests(dir: &Path) -> std::io::Result<Vec<GoldenDigest>> {
    let mut out = Vec::new();
    let Some(cells) = load_cells(dir, "integral.json")? else {
        return Ok(out);
    };
    for img in &IMAGES {
        for segment in INTEGRAL_SEGMENTS {
            let spec = integral_spec(img, segment, HotPath::Sliced);
            if let Some(digest) = cell_digest(&cells, &format!("{}/s{segment}", img.name)) {
                out.push(GoldenDigest { spec, digest });
            }
        }
    }
    Ok(out)
}

/// The default checked-in vectors directory (`crates/conformance/vectors`).
pub fn default_vectors_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("vectors")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_the_expected_cell_matrix() {
        // 2 kernels × (3 lossy codecs × 2 thresholds + 2 lossless codecs)
        // × 4 policies = 64 cells per image.
        for img in &IMAGES {
            assert_eq!(img.cells().len(), 64, "{}", img.name);
        }
        let names: std::collections::BTreeSet<_> = IMAGES.iter().map(|i| i.name).collect();
        assert_eq!(names.len(), IMAGES.len(), "duplicate corpus image name");
    }

    #[test]
    fn documents_render_and_parse_round_trip() {
        // One small image end to end: serialize, reparse, structural equality.
        let img = &IMAGES[5]; // black 24×16 — cheapest cells
        let doc = image_document(img);
        let parsed = parse(&render_document(&doc)).unwrap();
        let mut diffs = Vec::new();
        diff_json(img.name, &parsed, &doc, &mut diffs);
        assert!(diffs.is_empty(), "{diffs:?}");
    }

    #[test]
    fn check_names_the_divergent_field() {
        let dir = std::env::temp_dir().join(format!("sw-conformance-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // A single cheap image keeps this a unit test; the CLI covers the
        // full corpus in release mode.
        let subset = [IMAGES[5]]; // black 24×16
        bless_images(&dir, &subset).unwrap();
        let clean = check_images(&dir, &subset).unwrap();
        assert!(clean.is_clean(), "{:?}", clean.mismatches);
        // Corrupt one field of the blessed file and expect the check to
        // name image, cell and field.
        let file = dir.join("black.json");
        let text = std::fs::read_to_string(&file).unwrap();
        let corrupted = text.replacen("\"cycles\": ", "\"cycles\": 9", 1);
        assert_ne!(corrupted, text, "fixture must actually corrupt a field");
        std::fs::write(&file, corrupted).unwrap();
        let dirty = check_images(&dir, &subset).unwrap();
        assert!(!dirty.is_clean());
        assert!(
            dirty
                .mismatches
                .iter()
                .any(|m| m.contains("black") && m.contains("cycles")),
            "{:?}",
            dirty.mismatches
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn integral_vectors_round_trip_and_catch_drift() {
        let dir = std::env::temp_dir().join(format!("sw-integral-vec-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let written = bless_integral(&dir).unwrap();
        assert_eq!(written, IMAGES.len() * INTEGRAL_SEGMENTS.len());
        let mut clean = CheckReport::default();
        check_integral(&dir, &mut clean).unwrap();
        assert!(clean.is_clean(), "{:?}", clean.mismatches);
        assert_eq!(clean.cells, written);
        // Corrupt one digest and expect the check to name cell and field.
        let file = dir.join("integral.json");
        let text = std::fs::read_to_string(&file).unwrap();
        let corrupted = text.replacen("\"digest\": ", "\"digest\": 9", 1);
        assert_ne!(corrupted, text, "fixture must actually corrupt a field");
        std::fs::write(&file, corrupted).unwrap();
        let mut dirty = CheckReport::default();
        check_integral(&dir, &mut dirty).unwrap();
        assert!(
            dirty.mismatches.iter().any(|m| m.contains("digest")),
            "{:?}",
            dirty.mismatches
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

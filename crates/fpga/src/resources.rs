//! LUT / register / Fmax resource estimator, calibrated to the paper's
//! post-synthesis results (Tables VI–X, Vivado 2015.3, XC7Z020).
//!
//! We cannot synthesize RTL in this reproduction, so the estimator is a
//! **calibrated model** (see `DESIGN.md` §4):
//!
//! * at the paper's window sizes (8, 16, 32, 64, 128) it returns the paper's
//!   published numbers exactly (they are the anchors);
//! * between anchors it interpolates geometrically (both LUT counts and
//!   window sizes grow multiplicatively);
//! * outside the anchor range it extrapolates with the nearest segment's
//!   log-log slope;
//! * the overall-architecture numbers for window 128 — which the paper
//!   leaves blank because the design no longer fits the XC7Z020 — are
//!   reconstructed from the component sum times the glue-logic overhead
//!   calibrated at window 64.
//!
//! A *structural* cross-check is also provided: the forward IWT instantiates
//! `N/2` 2-D transform blocks of four 1-D lifting blocks each (8 adders per
//! 2-D block, paper Figure 5); at ~12 LUTs per 10-bit adder that predicts
//! `48·N` LUTs — and the paper's Table VI is `48·N + 2` at every window size,
//! which is strong evidence the anchor model extrapolates sensibly.

use crate::device::Device;

/// Architecture modules with published synthesis results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModuleKind {
    /// 2-D forward integer wavelet transform (Table VI).
    ForwardIwt,
    /// Bit Packing unit array (Table VII).
    BitPacking,
    /// Bit Unpacking unit array (Table VIII).
    BitUnpacking,
    /// 2-D inverse integer wavelet transform (Table IX).
    InverseIwt,
    /// The full modified sliding window architecture (Table X).
    Overall,
}

impl ModuleKind {
    /// All modules, in the paper's table order.
    pub const ALL: [ModuleKind; 5] = [
        ModuleKind::ForwardIwt,
        ModuleKind::BitPacking,
        ModuleKind::BitUnpacking,
        ModuleKind::InverseIwt,
        ModuleKind::Overall,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ModuleKind::ForwardIwt => "IWT",
            ModuleKind::BitPacking => "Bit Packing",
            ModuleKind::BitUnpacking => "Bit Unpacking",
            ModuleKind::InverseIwt => "Inverse IWT",
            ModuleKind::Overall => "Overall",
        }
    }
}

/// Post-synthesis resource estimate for one module at one window size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceEstimate {
    /// Look-up tables.
    pub luts: u32,
    /// Flip-flop registers.
    pub registers: u32,
    /// Maximum operating frequency in MHz.
    pub fmax_mhz: f64,
}

impl ResourceEstimate {
    /// Percentage utilization of `device` (LUTs, registers).
    pub fn utilization(&self, device: &Device) -> (f64, f64) {
        (
            100.0 * self.luts as f64 / device.luts as f64,
            100.0 * self.registers as f64 / device.registers as f64,
        )
    }

    /// Whether the module fits in `device`.
    pub fn fits(&self, device: &Device) -> bool {
        self.luts <= device.luts && self.registers <= device.registers
    }
}

/// The paper's anchor window sizes.
pub const ANCHOR_WINDOWS: [usize; 5] = [8, 16, 32, 64, 128];

struct Anchors {
    luts: [f64; 5],
    regs: [f64; 5],
    fmax: f64,
}

// Tables VI–IX verbatim.
const IWT: Anchors = Anchors {
    luts: [386.0, 770.0, 1538.0, 3074.0, 6146.0],
    regs: [166.0, 326.0, 646.0, 1276.0, 2566.0],
    fmax: 592.1,
};
const PACK: Anchors = Anchors {
    luts: [1061.0, 2083.0, 4047.0, 8598.0, 17179.0],
    regs: [200.0, 400.0, 801.0, 1856.0, 3712.0],
    fmax: 538.6,
};
const UNPACK: Anchors = Anchors {
    luts: [2130.0, 4246.0, 8039.0, 15660.0, 31660.0],
    regs: [203.0, 387.0, 817.0, 1637.0, 3237.0],
    fmax: 343.1,
};
const IIWT: Anchors = Anchors {
    luts: [386.0, 770.0, 1538.0, 3074.0, 6146.0],
    regs: [130.0, 258.0, 529.0, 1055.0, 2108.0],
    fmax: 592.1,
};
// Table X (window 128 left blank by the paper — reconstructed, see below).
const OVERALL_LUTS: [f64; 4] = [4994.0, 9432.0, 17773.0, 35751.0];
const OVERALL_REGS: [f64; 4] = [1643.0, 2792.0, 5091.0, 9680.0];
const OVERALL_FMAX: f64 = 230.3;

/// Geometric interpolation of anchored data over the window-size axis.
fn interp_anchors(values: &[f64], n: usize) -> f64 {
    let xs: Vec<f64> = ANCHOR_WINDOWS[..values.len()]
        .iter()
        .map(|&w| (w as f64).ln())
        .collect();
    let ys: Vec<f64> = values.iter().map(|&v| v.ln()).collect();
    let x = (n as f64).ln();
    // Clamp-slope extrapolation outside the anchor range.
    let seg = if x <= xs[0] {
        0
    } else if x >= xs[xs.len() - 1] {
        xs.len() - 2
    } else {
        // x > xs[0] here, so a position always exists.
        xs.iter()
            .rposition(|&xi| xi <= x)
            .unwrap_or(0)
            .min(xs.len() - 2)
    };
    let t = (x - xs[seg]) / (xs[seg + 1] - xs[seg]);
    (ys[seg] + t * (ys[seg + 1] - ys[seg])).exp()
}

fn module_anchors(kind: ModuleKind) -> Option<&'static Anchors> {
    match kind {
        ModuleKind::ForwardIwt => Some(&IWT),
        ModuleKind::BitPacking => Some(&PACK),
        ModuleKind::BitUnpacking => Some(&UNPACK),
        ModuleKind::InverseIwt => Some(&IIWT),
        ModuleKind::Overall => None,
    }
}

/// Estimate the resources of `kind` at window size `window`.
///
/// # Panics
///
/// Panics if `window < 2`.
pub fn estimate(kind: ModuleKind, window: usize) -> ResourceEstimate {
    assert!(window >= 2, "window size too small");
    if let Some(a) = module_anchors(kind) {
        return ResourceEstimate {
            luts: interp_anchors(&a.luts, window).round() as u32,
            registers: interp_anchors(&a.regs, window).round() as u32,
            fmax_mhz: a.fmax,
        };
    }
    // Overall: anchored for 8..=64; beyond, component sum × glue overhead
    // calibrated at window 64.
    if window <= 64 {
        return ResourceEstimate {
            luts: interp_anchors(&OVERALL_LUTS, window).round() as u32,
            registers: interp_anchors(&OVERALL_REGS, window).round() as u32,
            fmax_mhz: OVERALL_FMAX,
        };
    }
    let components = [
        ModuleKind::ForwardIwt,
        ModuleKind::BitPacking,
        ModuleKind::BitUnpacking,
        ModuleKind::InverseIwt,
    ];
    let sum = |f: &dyn Fn(ResourceEstimate) -> u32, w: usize| -> f64 {
        components.iter().map(|&k| f(estimate(k, w)) as f64).sum()
    };
    let lut_overhead = OVERALL_LUTS[3] / sum(&|e| e.luts, 64);
    let reg_overhead = OVERALL_REGS[3] / sum(&|e| e.registers, 64);
    ResourceEstimate {
        luts: (sum(&|e| e.luts, window) * lut_overhead).round() as u32,
        registers: (sum(&|e| e.registers, window) * reg_overhead).round() as u32,
        fmax_mhz: OVERALL_FMAX,
    }
}

/// Structural LUT prediction for the forward/inverse IWT: `N/2` 2-D blocks ×
/// 8 adders × ~12 LUTs per 10-bit adder (paper Figure 5 / Figure 10).
///
/// Matches Table VI within 2 LUTs at every anchor — used as a sanity check
/// on the calibrated model.
pub fn structural_iwt_luts(window: usize) -> u32 {
    const ADDERS_PER_2D_BLOCK: usize = 8;
    const LUTS_PER_ADDER: usize = 12;
    ((window / 2) * ADDERS_PER_2D_BLOCK * LUTS_PER_ADDER) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;

    #[test]
    fn anchors_reproduce_paper_tables_exactly() {
        // Table VI.
        for (i, &w) in ANCHOR_WINDOWS.iter().enumerate() {
            let e = estimate(ModuleKind::ForwardIwt, w);
            assert_eq!(e.luts as f64, IWT.luts[i], "IWT LUTs window {w}");
            assert_eq!(e.registers as f64, IWT.regs[i]);
            assert_eq!(e.fmax_mhz, 592.1);
        }
        // Table VIII spot checks.
        assert_eq!(estimate(ModuleKind::BitUnpacking, 64).luts, 15660);
        assert_eq!(estimate(ModuleKind::BitUnpacking, 128).registers, 3237);
        // Table X.
        assert_eq!(estimate(ModuleKind::Overall, 32).luts, 17773);
        assert_eq!(estimate(ModuleKind::Overall, 64).registers, 9680);
    }

    #[test]
    fn interpolation_is_monotone_between_anchors() {
        for kind in ModuleKind::ALL {
            let mut prev = 0;
            for w in (8..=128).step_by(4) {
                let e = estimate(kind, w);
                assert!(
                    e.luts >= prev,
                    "{} LUTs must grow with window ({w})",
                    kind.name()
                );
                prev = e.luts;
            }
        }
    }

    #[test]
    fn overall_128_exceeds_xc7z020() {
        // The paper leaves Table X's window-128 row blank: "For a window size
        // of 128 the LUTs exceed this device resources."
        let device = Device::XC7Z020;
        let e = estimate(ModuleKind::Overall, 128);
        assert!(!e.fits(&device), "overall @128 must not fit: {e:?}");
        assert!(estimate(ModuleKind::Overall, 64).fits(&device));
    }

    #[test]
    fn paper_utilization_percentages_match() {
        // Table X quotes 33% and 67% LUTs for windows 32 and 64.
        let device = Device::XC7Z020;
        let (l32, _) = estimate(ModuleKind::Overall, 32).utilization(&device);
        let (l64, _) = estimate(ModuleKind::Overall, 64).utilization(&device);
        assert_eq!(l32.round() as u32, 33);
        assert_eq!(l64.round() as u32, 67);
    }

    #[test]
    fn structural_model_matches_calibrated_iwt() {
        for &w in &ANCHOR_WINDOWS {
            let structural = structural_iwt_luts(w);
            let calibrated = estimate(ModuleKind::ForwardIwt, w).luts;
            let diff = structural.abs_diff(calibrated);
            assert!(
                diff <= 2,
                "window {w}: structural {structural} vs {calibrated}"
            );
        }
    }

    #[test]
    fn extrapolation_beyond_128_keeps_growing() {
        let e128 = estimate(ModuleKind::BitPacking, 128);
        let e256 = estimate(ModuleKind::BitPacking, 256);
        assert!(e256.luts > e128.luts * 3 / 2);
    }

    #[test]
    fn small_windows_interpolate_below_first_anchor() {
        let e4 = estimate(ModuleKind::ForwardIwt, 4);
        assert!(e4.luts < estimate(ModuleKind::ForwardIwt, 8).luts);
        assert!(e4.luts > 0);
    }
}

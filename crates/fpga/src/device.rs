//! Small FPGA device catalog for utilization reporting.
//!
//! The paper uses the Xilinx Zynq XC7Z020 ("It has a total of 53,200 LUTs and
//! 106,400 registers" and "a total on-chip memory of 5,018Kb"). Two
//! neighbouring Zynq parts are included so the examples can ask "which device
//! does this configuration need?".

/// Resource capacity of one FPGA device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Device {
    /// Part name.
    pub name: &'static str,
    /// Total 6-input LUTs.
    pub luts: u32,
    /// Total flip-flop registers.
    pub registers: u32,
    /// Total Block RAM as 18 Kb units.
    pub bram18: u32,
}

impl Device {
    /// Zynq-7010.
    pub const XC7Z010: Device = Device {
        name: "XC7Z010",
        luts: 17_600,
        registers: 35_200,
        bram18: 120,
    };

    /// Zynq-7020 — the paper's evaluation device.
    pub const XC7Z020: Device = Device {
        name: "XC7Z020",
        luts: 53_200,
        registers: 106_400,
        bram18: 280,
    };

    /// Zynq-7045.
    pub const XC7Z045: Device = Device {
        name: "XC7Z045",
        luts: 218_600,
        registers: 437_200,
        bram18: 1_090,
    };

    /// Catalog in ascending capacity order.
    pub const CATALOG: [Device; 3] = [Device::XC7Z010, Device::XC7Z020, Device::XC7Z045];

    /// Total on-chip BRAM capacity in Kbits.
    pub fn bram_kbits(&self) -> u32 {
        self.bram18 * 18
    }

    /// The smallest catalog device providing at least the given resources,
    /// if any.
    pub fn smallest_fitting(luts: u32, registers: u32, bram18: u32) -> Option<Device> {
        Device::CATALOG
            .into_iter()
            .find(|d| d.luts >= luts && d.registers >= registers && d.bram18 >= bram18)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_device_numbers() {
        let d = Device::XC7Z020;
        assert_eq!(d.luts, 53_200);
        assert_eq!(d.registers, 106_400);
        // Paper: "total on-chip memory of 5,018Kb" — the 280×18 Kb model is
        // the datasheet's 4.9 Mb rounded the same way (within 1%).
        let kb = d.bram_kbits() as f64;
        assert!((kb - 5018.0).abs() / 5018.0 < 0.011, "got {kb}");
    }

    #[test]
    fn smallest_fitting_walks_catalog() {
        assert_eq!(
            Device::smallest_fitting(10_000, 10_000, 64),
            Some(Device::XC7Z010)
        );
        assert_eq!(
            Device::smallest_fitting(53_000, 10_000, 64),
            Some(Device::XC7Z020)
        );
        assert_eq!(
            Device::smallest_fitting(60_000, 10_000, 64),
            Some(Device::XC7Z045)
        );
        assert_eq!(Device::smallest_fitting(1_000_000, 0, 0), None);
    }
}

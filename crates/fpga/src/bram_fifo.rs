//! A FIFO realized on actual [`Bram18`] storage — the hardware form of the
//! paper's line buffers ("each FIFO line is realized in hardware by one
//! 18Kb BRAM", Section VI-A).
//!
//! Unlike [`crate::fifo::WordFifo`] (a behavioural deque), this FIFO owns
//! cascaded [`Bram18`] instances and moves data through real addressed
//! writes and reads, so the BRAM-count arithmetic used by the planner is
//! backed by a storage model that actually holds the bits. The differential
//! tests prove it behaves identically to the behavioural FIFO.

use crate::bram::{Bram18, Bram18Config};
use crate::fifo::FifoError;
use crate::sim::Watermark;
use sw_telemetry::{Counter, Gauge, Histogram, TelemetryHandle};

/// A word FIFO stored in cascaded 18 Kb BRAMs.
#[derive(Debug, Clone)]
pub struct BramFifo {
    brams: Vec<Bram18>,
    config: Bram18Config,
    /// Total addressable entries across the cascade.
    depth: u32,
    /// Usable capacity (`depth` entries; one-slot-free disambiguation is
    /// handled by an explicit length counter, as real FIFO wrappers do).
    head: u32,
    tail: u32,
    len: u32,
    watermark: Watermark,
    // Telemetry instruments — no-ops unless `attach_telemetry` was called.
    occupancy_hist: Histogram,
    high_water_gauge: Gauge,
    pushes: Counter,
    pops: Counter,
}

impl BramFifo {
    /// FIFO of at least `min_depth` entries of `config.width` bits,
    /// cascading as many BRAM18s as needed.
    ///
    /// # Panics
    ///
    /// Panics if `min_depth == 0`.
    pub fn new(config: Bram18Config, min_depth: u32) -> Self {
        assert!(min_depth > 0, "FIFO needs at least one entry");
        let cascade = min_depth.div_ceil(config.depth);
        Self {
            brams: (0..cascade).map(|_| Bram18::new(config)).collect(),
            config,
            depth: cascade * config.depth,
            head: 0,
            tail: 0,
            len: 0,
            watermark: Watermark::new(),
            occupancy_hist: Histogram::noop(),
            high_water_gauge: Gauge::noop(),
            pushes: Counter::noop(),
            pops: Counter::noop(),
        }
    }

    /// Bind this FIFO's instruments to `telemetry` under
    /// `fifo.<name>.{occupancy,high_water,pushes,pops}`. The occupancy
    /// histogram buckets occupancy into eighths of the FIFO's capacity.
    pub fn attach_telemetry(&mut self, telemetry: &TelemetryHandle, name: &str) {
        self.occupancy_hist = telemetry.histogram(
            &format!("fifo.{name}.occupancy"),
            &occupancy_bounds(self.depth),
        );
        self.high_water_gauge = telemetry.gauge(&format!("fifo.{name}.high_water"));
        self.pushes = telemetry.counter(&format!("fifo.{name}.pushes"));
        self.pops = telemetry.counter(&format!("fifo.{name}.pops"));
    }

    /// Number of BRAM18s the cascade uses.
    pub fn brams_used(&self) -> u32 {
        self.brams.len() as u32
    }

    /// Total entry capacity.
    #[inline]
    pub fn capacity(&self) -> u32 {
        self.depth
    }

    /// Current occupancy.
    #[inline]
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Whether the FIFO is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Highest occupancy observed.
    pub fn high_watermark(&self) -> u64 {
        self.watermark.max()
    }

    /// Write one entry.
    pub fn push(&mut self, word: u64) -> Result<(), FifoError> {
        if self.len == self.depth {
            return Err(FifoError::Overflow {
                needed: self.len as u64 + 1,
                capacity: self.depth as u64,
            });
        }
        let bram = (self.head / self.config.depth) as usize;
        let addr = self.head % self.config.depth;
        self.brams[bram].write(addr, word);
        self.head = (self.head + 1) % self.depth;
        self.len += 1;
        self.watermark.observe(self.len as u64);
        self.pushes.inc();
        self.occupancy_hist.observe(self.len as u64);
        self.high_water_gauge.observe_max(self.len as u64);
        Ok(())
    }

    /// Read the oldest entry.
    pub fn pop(&mut self) -> Result<u64, FifoError> {
        if self.len == 0 {
            return Err(FifoError::Underrun);
        }
        let bram = (self.tail / self.config.depth) as usize;
        let addr = self.tail % self.config.depth;
        let word = self.brams[bram].read(addr);
        self.tail = (self.tail + 1) % self.depth;
        self.len -= 1;
        self.pops.inc();
        Ok(word)
    }

    /// Empty the FIFO (pointers reset; stored bits remain in the BRAMs, as
    /// in hardware).
    pub fn clear(&mut self) {
        self.head = 0;
        self.tail = 0;
        self.len = 0;
    }
}

/// Inclusive histogram bounds splitting `[1, depth]` into eighths of the
/// FIFO's capacity (deduplicated for tiny FIFOs).
fn occupancy_bounds(depth: u32) -> Vec<u64> {
    let depth = depth as u64;
    let mut bounds: Vec<u64> = (1..=8).map(|i| (depth * i / 8).max(1)).collect();
    bounds.dedup();
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fifo::WordFifo;

    #[test]
    fn paper_line_buffer_geometry() {
        // One image row of 512 8-bit pixels in 2k×9 mode: exactly one BRAM.
        let fifo = BramFifo::new(Bram18Config::X9, 512);
        assert_eq!(fifo.brams_used(), 1);
        assert_eq!(fifo.capacity(), 2048);
        // A 3840-pixel row needs a cascade of two (paper Table I).
        let fifo = BramFifo::new(Bram18Config::X9, 3840);
        assert_eq!(fifo.brams_used(), 2);
    }

    #[test]
    fn fifo_order_and_wraparound() {
        let mut fifo = BramFifo::new(Bram18Config::X9, 100);
        // Push/pop more entries than the capacity to force wraparound.
        for round in 0..3u64 {
            for i in 0..1500u64 {
                fifo.push((round * 1500 + i) % 512).unwrap();
                let got = fifo.pop().unwrap();
                assert_eq!(got, (round * 1500 + i) % 512);
            }
        }
        assert!(fifo.is_empty());
    }

    #[test]
    fn overflow_and_underrun_are_reported() {
        let mut fifo = BramFifo::new(Bram18Config::X36, 4);
        assert_eq!(fifo.capacity(), 512);
        for i in 0..512 {
            fifo.push(i).unwrap();
        }
        assert!(matches!(fifo.push(0), Err(FifoError::Overflow { .. })));
        for _ in 0..512 {
            fifo.pop().unwrap();
        }
        assert_eq!(fifo.pop(), Err(FifoError::Underrun));
    }

    #[test]
    fn differential_against_behavioural_fifo() {
        let mut hw = BramFifo::new(Bram18Config::X9, 64);
        let mut sw = WordFifo::new(hw.capacity() as usize);
        let mut state = 11u32;
        for step in 0..5000 {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            if !state.is_multiple_of(3) {
                let v = (state >> 16 & 0x1ff) as u64;
                assert_eq!(hw.push(v).is_ok(), sw.push(v).is_ok(), "step {step}");
            } else {
                match (hw.pop(), sw.pop()) {
                    (Ok(a), Ok(b)) => assert_eq!(a, b, "step {step}"),
                    (Err(_), Err(_)) => {}
                    (a, b) => panic!("divergence at {step}: {a:?} vs {b:?}"),
                }
            }
            assert_eq!(hw.len() as usize, sw.len());
        }
        assert_eq!(hw.high_watermark(), sw.high_watermark());
    }

    #[test]
    fn attached_telemetry_tracks_traffic_and_occupancy() {
        let t = sw_telemetry::TelemetryHandle::new();
        let mut fifo = BramFifo::new(Bram18Config::X9, 8);
        fifo.attach_telemetry(&t, "lh");
        for i in 0..100u64 {
            fifo.push(i % 512).unwrap();
            if i % 2 == 1 {
                fifo.pop().unwrap();
            }
        }
        let r = t.report();
        assert_eq!(r.counters["fifo.lh.pushes"], 100);
        assert_eq!(r.counters["fifo.lh.pops"], 50);
        assert_eq!(r.gauges["fifo.lh.high_water"], fifo.high_watermark());
        assert_eq!(r.histograms["fifo.lh.occupancy"].count, 100);
        assert_eq!(r.histograms["fifo.lh.occupancy"].max, fifo.high_watermark());
    }

    #[test]
    fn occupancy_bounds_are_strictly_increasing() {
        for depth in [1u32, 2, 7, 8, 2048, 4096] {
            let b = occupancy_bounds(depth);
            assert!(!b.is_empty());
            assert!(b.windows(2).all(|w| w[0] < w[1]), "depth {depth}: {b:?}");
            assert_eq!(*b.last().unwrap(), u64::from(depth).max(1));
        }
    }

    #[test]
    fn clear_resets_pointers() {
        let mut fifo = BramFifo::new(Bram18Config::X9, 8);
        fifo.push(1).unwrap();
        fifo.push(2).unwrap();
        fifo.clear();
        assert!(fifo.is_empty());
        fifo.push(9).unwrap();
        assert_eq!(fifo.pop(), Ok(9));
    }
}

//! 18 Kb Block RAM model (Xilinx 7-series `RAMB18`).
//!
//! A 7-series 18 Kb BRAM holds 16 Kb of data plus 2 Kb of parity. The parity
//! bits are only addressable in the ×9 / ×18 / ×36 aspect ratios, so the
//! usable capacity depends on the configuration — exactly why the paper
//! stores 8-bit pixels in `2k × 9` mode ("an 18Kb BRAM configured as 2k×9
//! can fit up to 2048 pixels", Section VI-A).
//!
//! [`Bram18Config`] enumerates the aspect ratios, and the planning helpers
//! compute how many BRAMs a buffer of a given geometry needs — the
//! arithmetic behind the paper's Tables I–V.

/// Usable bits of an 18 Kb BRAM in a parity-carrying aspect (×9/×18/×36).
pub const BRAM18_BITS: u64 = 18 * 1024;

/// Usable bits of an 18 Kb BRAM in a non-parity aspect (×1/×2/×4).
pub const BRAM18_DATA_BITS: u64 = 16 * 1024;

/// One aspect-ratio configuration of an 18 Kb BRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Bram18Config {
    /// Addressable entries.
    pub depth: u32,
    /// Bits per entry.
    pub width: u32,
}

impl Bram18Config {
    /// `16k × 1` (no parity).
    pub const X1: Self = Self {
        depth: 16384,
        width: 1,
    };
    /// `8k × 2` (no parity).
    pub const X2: Self = Self {
        depth: 8192,
        width: 2,
    };
    /// `4k × 4` (no parity).
    pub const X4: Self = Self {
        depth: 4096,
        width: 4,
    };
    /// `2k × 9` — the paper's pixel and NBits configuration.
    pub const X9: Self = Self {
        depth: 2048,
        width: 9,
    };
    /// `1k × 18`.
    pub const X18: Self = Self {
        depth: 1024,
        width: 18,
    };
    /// `512 × 36`.
    pub const X36: Self = Self {
        depth: 512,
        width: 36,
    };

    /// All aspect ratios, narrowest first.
    pub const ALL: [Self; 6] = [Self::X1, Self::X2, Self::X4, Self::X9, Self::X18, Self::X36];

    /// Usable capacity of this configuration in bits.
    #[inline]
    pub fn capacity_bits(&self) -> u64 {
        self.depth as u64 * self.width as u64
    }

    /// Number of BRAM18s needed to present a `width_bits`-wide,
    /// `depth_entries`-deep memory in this aspect:
    /// `ceil(width / cfg.width) × ceil(depth / cfg.depth)`.
    pub fn brams_for(&self, width_bits: u32, depth_entries: u32) -> u32 {
        if width_bits == 0 || depth_entries == 0 {
            return 0;
        }
        width_bits.div_ceil(self.width) * depth_entries.div_ceil(self.depth)
    }

    /// Human-readable name, e.g. `2k x 9`.
    pub fn name(&self) -> String {
        let depth = if self.depth.is_multiple_of(1024) {
            format!("{}k", self.depth / 1024)
        } else {
            self.depth.to_string()
        };
        format!("{depth} x {}", self.width)
    }
}

/// The best (fewest-BRAM) configuration for a `width_bits` × `depth_entries`
/// memory, together with the BRAM count.
///
/// This is the "structured" accounting used by the paper's management-bit
/// sizing in Tables II–IV (e.g. a 64-bit-wide BitMap buffer maps to
/// `2 × (512 × 36)`). Ties prefer an aspect wide enough to avoid splitting
/// the word across BRAMs, then the narrowest such aspect — matching the
/// paper's picks (window 8 → `2k×9`, 16 → `1k×18`, 32 → `512×36`).
pub fn best_config(width_bits: u32, depth_entries: u32) -> (Bram18Config, u32) {
    let best = Bram18Config::ALL
        .iter()
        .map(|cfg| (*cfg, cfg.brams_for(width_bits, depth_entries)))
        .min_by_key(|&(cfg, count)| (count, cfg.width < width_bits, cfg.width));
    let Some(best) = best else {
        unreachable!("config list is non-empty")
    };
    best
}

/// BRAM18 count by raw bit capacity only (`ceil(bits / 18 Kb)`).
///
/// The paper's Table V management column uses this looser accounting; see
/// `EXPERIMENTS.md` for the discrepancy discussion.
pub fn brams_for_bits(bits: u64) -> u32 {
    bits.div_ceil(BRAM18_BITS) as u32
}

/// A behavioural BRAM18 in simple-dual-port mode: one write port, one read
/// port, synchronous read (1-cycle latency is handled by the caller).
///
/// Stores `depth × width` bits; reads/writes move whole entries.
#[derive(Debug, Clone)]
pub struct Bram18 {
    config: Bram18Config,
    data: Vec<u64>,
}

impl Bram18 {
    /// Zero-initialized BRAM in the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the width exceeds 64 (not a valid BRAM18 aspect anyway).
    pub fn new(config: Bram18Config) -> Self {
        assert!(config.width <= 64, "entry width exceeds model limit");
        Self {
            config,
            data: vec![0; config.depth as usize],
        }
    }

    /// The configured aspect.
    #[inline]
    pub fn config(&self) -> Bram18Config {
        self.config
    }

    /// Write `value` (low `width` bits) to `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range or `value` has bits above `width`.
    pub fn write(&mut self, addr: u32, value: u64) {
        assert!(addr < self.config.depth, "write address out of range");
        assert!(
            self.config.width == 64 || value < (1u64 << self.config.width),
            "value wider than the configured port"
        );
        self.data[addr as usize] = value;
    }

    /// Read the entry at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn read(&self, addr: u32) -> u64 {
        assert!(addr < self.config.depth, "read address out of range");
        self.data[addr as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacities_match_datasheet() {
        assert_eq!(Bram18Config::X9.capacity_bits(), 18432);
        assert_eq!(Bram18Config::X18.capacity_bits(), 18432);
        assert_eq!(Bram18Config::X36.capacity_bits(), 18432);
        assert_eq!(Bram18Config::X1.capacity_bits(), 16384);
        assert_eq!(Bram18Config::X4.capacity_bits(), 16384);
    }

    #[test]
    fn paper_pixel_row_sizing() {
        // "image rows of width 512, 1024 and 2048 can fit in one BRAM, while
        //  image widths greater than 2048 require cascading" — 8-bit pixels
        //  in 2k×9 mode.
        for w in [512, 1024, 2048] {
            assert_eq!(Bram18Config::X9.brams_for(8, w), 1, "width {w}");
        }
        assert_eq!(Bram18Config::X9.brams_for(8, 3840), 2);
    }

    #[test]
    fn paper_bitmap_configurations() {
        // Section V-E: window sizes 8,16,32,64,128 at image width 512 map
        // BitMap to 2k×9, 1k×18, 512×36, 2×(512×36), 4×(512×36).
        let depth = 512 - 8;
        assert_eq!(best_config(8, depth), (Bram18Config::X9, 1));
        let depth = 512 - 16;
        assert_eq!(best_config(16, depth), (Bram18Config::X18, 1));
        let depth = 512 - 32;
        assert_eq!(best_config(32, depth), (Bram18Config::X36, 1));
        let depth = 512 - 64;
        assert_eq!(best_config(64, depth), (Bram18Config::X36, 2));
        let depth = 512 - 128;
        assert_eq!(best_config(128, depth), (Bram18Config::X36, 4));
    }

    #[test]
    fn best_config_handles_deep_narrow_buffers() {
        // NBits buffer for W=3840: 8 bits wide, 3832 deep -> two 2k×9.
        let (cfg, count) = best_config(8, 3832);
        assert_eq!(cfg, Bram18Config::X9);
        assert_eq!(count, 2);
    }

    #[test]
    fn brams_for_bits_is_ceiling() {
        assert_eq!(brams_for_bits(0), 0);
        assert_eq!(brams_for_bits(1), 1);
        assert_eq!(brams_for_bits(BRAM18_BITS), 1);
        assert_eq!(brams_for_bits(BRAM18_BITS + 1), 2);
    }

    #[test]
    fn zero_sized_requests_cost_nothing() {
        assert_eq!(Bram18Config::X9.brams_for(0, 100), 0);
        assert_eq!(Bram18Config::X9.brams_for(8, 0), 0);
    }

    #[test]
    fn behavioural_bram_stores_entries() {
        let mut b = Bram18::new(Bram18Config::X9);
        b.write(0, 0x1ff);
        b.write(2047, 0x0aa);
        assert_eq!(b.read(0), 0x1ff);
        assert_eq!(b.read(2047), 0x0aa);
        assert_eq!(b.read(5), 0);
    }

    #[test]
    #[should_panic(expected = "wider than")]
    fn behavioural_bram_rejects_wide_values() {
        Bram18::new(Bram18Config::X9).write(0, 0x200);
    }

    #[test]
    fn config_names_render() {
        assert_eq!(Bram18Config::X9.name(), "2k x 9");
        assert_eq!(Bram18Config::X36.name(), "512 x 36");
    }
}

//! Minimal clocked-simulation bookkeeping.
//!
//! The architecture models in `sw-core` are streaming (one input pixel per
//! logical clock). This module provides the shared instruments: cycle
//! counters, maximum-value watermarks, and bounded traces for debugging and
//! for regenerating the paper's Figure 3 occupancy curve.

use sw_telemetry::{Gauge, Histogram};

/// A monotonically increasing cycle counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleCounter {
    cycle: u64,
}

impl CycleCounter {
    /// Counter at cycle zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advance one clock.
    #[inline]
    pub fn tick(&mut self) {
        self.cycle += 1;
    }

    /// Advance `n` clocks.
    #[inline]
    pub fn advance(&mut self, n: u64) {
        self.cycle += n;
    }

    /// Current cycle number.
    #[inline]
    pub fn now(&self) -> u64 {
        self.cycle
    }

    /// Mirror the current cycle into a telemetry gauge.
    pub fn export_to(&self, gauge: &Gauge) {
        gauge.set(self.cycle);
    }
}

/// Tracks the maximum of an observed quantity (FIFO occupancy, staged bits…).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Watermark {
    max: u64,
}

impl Watermark {
    /// Fresh watermark at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observe a new sample.
    #[inline]
    pub fn observe(&mut self, v: u64) {
        if v > self.max {
            self.max = v;
        }
    }

    /// The maximum observed so far.
    #[inline]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Reset to zero.
    pub fn reset(&mut self) {
        self.max = 0;
    }

    /// Raise a telemetry gauge to this watermark's maximum (high-water-mark
    /// semantics: the gauge only ever grows).
    pub fn export_to(&self, gauge: &Gauge) {
        gauge.observe_max(self.max);
    }
}

/// A bounded trace: keeps every `stride`-th sample up to a maximum count,
/// recording `(cycle, value)` pairs. Used to export occupancy curves
/// (paper Figure 3) without unbounded memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    samples: Vec<(u64, u64)>,
    stride: u64,
    counter: u64,
    max_samples: usize,
    dropped: u64,
}

impl Default for Trace {
    /// Every observation, up to 4096 samples — enough resolution for a
    /// per-row occupancy curve at the paper's widest image.
    fn default() -> Self {
        Self::new(1, 4096)
    }
}

impl Trace {
    /// Record every `stride`-th observation, keeping at most `max_samples`.
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0` or `max_samples == 0`.
    pub fn new(stride: u64, max_samples: usize) -> Self {
        assert!(stride > 0, "stride must be positive");
        assert!(max_samples > 0, "must keep at least one sample");
        Self {
            samples: Vec::new(),
            stride,
            counter: 0,
            max_samples,
            dropped: 0,
        }
    }

    /// Observe `value` at `cycle`.
    pub fn observe(&mut self, cycle: u64, value: u64) {
        if self.counter.is_multiple_of(self.stride) {
            if self.samples.len() < self.max_samples {
                self.samples.push((cycle, value));
            } else {
                self.dropped += 1;
            }
        }
        self.counter += 1;
    }

    /// The recorded `(cycle, value)` samples.
    pub fn samples(&self) -> &[(u64, u64)] {
        &self.samples
    }

    /// How many would-be samples were dropped after `max_samples` filled up.
    ///
    /// Non-zero means the trace window was too small for the run — callers
    /// should surface this rather than silently presenting a truncated curve.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Replay the recorded sample values into a telemetry histogram.
    pub fn export_to(&self, histogram: &Histogram) {
        for &(_, v) in &self.samples {
            histogram.observe(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_counter_advances() {
        let mut c = CycleCounter::new();
        c.tick();
        c.advance(9);
        assert_eq!(c.now(), 10);
    }

    #[test]
    fn watermark_keeps_max() {
        let mut w = Watermark::new();
        for v in [3, 9, 1, 9, 4] {
            w.observe(v);
        }
        assert_eq!(w.max(), 9);
        w.reset();
        assert_eq!(w.max(), 0);
    }

    #[test]
    fn trace_strides_and_bounds() {
        let mut t = Trace::new(2, 3);
        for i in 0..10u64 {
            t.observe(i, i * 100);
        }
        // Samples at counter 0, 2, 4 (then full) -> 3 samples, 2 dropped
        // (counters 6 and 8).
        assert_eq!(t.samples(), &[(0, 0), (2, 200), (4, 400)]);
        assert_eq!(t.dropped(), 2);
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn zero_stride_rejected() {
        Trace::new(0, 1);
    }

    #[test]
    fn default_constructions_match_new() {
        assert_eq!(CycleCounter::default(), CycleCounter::new());
        assert_eq!(Watermark::default(), Watermark::new());
        let mut tr = Trace::default();
        tr.observe(0, 5);
        assert_eq!(tr.samples(), &[(0, 5)]);
    }

    #[test]
    fn primitives_export_to_telemetry() {
        let t = sw_telemetry::TelemetryHandle::new();

        let mut c = CycleCounter::new();
        c.advance(42);
        c.export_to(&t.gauge("sim.cycles"));

        let mut w = Watermark::new();
        w.observe(7);
        w.observe(3);
        w.export_to(&t.gauge("sim.high_water"));
        // A later, lower watermark must not shrink the gauge.
        Watermark::new().export_to(&t.gauge("sim.high_water"));

        let mut tr = Trace::new(1, 16);
        for v in [10u64, 20, 300] {
            tr.observe(0, v);
        }
        tr.export_to(&t.histogram("sim.occupancy", &[64, 256]));

        let r = t.report();
        assert_eq!(r.gauges["sim.cycles"], 42);
        assert_eq!(r.gauges["sim.high_water"], 7);
        assert_eq!(r.histograms["sim.occupancy"].count, 3);
        assert_eq!(r.histograms["sim.occupancy"].counts, vec![2, 0, 1]);
    }
}

//! FIFO models with occupancy tracking.
//!
//! [`WordFifo`] models the traditional architecture's pixel line buffers;
//! [`BitFifo`] models the compressed architecture's packed-bit memory unit,
//! whose occupancy is variable — the whole point of the paper. Both track a
//! high-watermark so the planner can size BRAMs from worst-case occupancy,
//! and both report overflow as a structured error instead of silently
//! corrupting (the paper's "bad frames" limitation, Section V-E).

use crate::sim::Watermark;
use std::collections::VecDeque;

/// Structured FIFO failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FifoError {
    /// A push would exceed the provisioned capacity.
    ///
    /// Carries the occupancy the FIFO *would* have needed.
    Overflow {
        /// Bits (or words) that would have been stored.
        needed: u64,
        /// The provisioned capacity.
        capacity: u64,
    },
    /// A pop found insufficient contents.
    Underrun,
}

impl std::fmt::Display for FifoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FifoError::Overflow { needed, capacity } => {
                write!(f, "FIFO overflow: needed {needed}, capacity {capacity}")
            }
            FifoError::Underrun => write!(f, "FIFO underrun"),
        }
    }
}

impl std::error::Error for FifoError {}

/// A fixed-capacity FIFO of whole words (pixels, columns, …).
#[derive(Debug, Clone)]
pub struct WordFifo<T> {
    buf: VecDeque<T>,
    capacity: usize,
    watermark: Watermark,
}

impl<T> WordFifo<T> {
    /// FIFO holding at most `capacity` words.
    pub fn new(capacity: usize) -> Self {
        Self {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            watermark: Watermark::new(),
        }
    }

    /// Current occupancy in words.
    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the FIFO is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Whether the FIFO is at capacity.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.buf.len() == self.capacity
    }

    /// Provisioned capacity in words.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Highest occupancy ever observed.
    #[inline]
    pub fn high_watermark(&self) -> u64 {
        self.watermark.max()
    }

    /// Push one word.
    pub fn push(&mut self, v: T) -> Result<(), FifoError> {
        if self.buf.len() >= self.capacity {
            return Err(FifoError::Overflow {
                needed: self.buf.len() as u64 + 1,
                capacity: self.capacity as u64,
            });
        }
        self.buf.push_back(v);
        self.watermark.observe(self.buf.len() as u64);
        Ok(())
    }

    /// Pop the oldest word.
    pub fn pop(&mut self) -> Result<T, FifoError> {
        self.buf.pop_front().ok_or(FifoError::Underrun)
    }

    /// Peek at the oldest word.
    pub fn front(&self) -> Option<&T> {
        self.buf.front()
    }

    /// Remove all contents, keeping the watermark history.
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

/// A bit-granular FIFO: pushes and pops move arbitrary bit counts.
///
/// Backed by a byte deque plus partial-bit staging at both ends; capacity and
/// occupancy are measured in bits. This models the compressed architecture's
/// Pixel FIFO, where each entry is a packed byte but logical contents are
/// variable-width coefficients.
#[derive(Debug, Clone)]
pub struct BitFifo {
    bytes: VecDeque<u8>,
    /// Staged bits not yet forming a whole byte at the push side.
    head_acc: u32,
    head_bits: u32,
    /// Bits already consumed from the front byte at the pop side.
    tail_consumed: u32,
    capacity_bits: u64,
    watermark: Watermark,
}

impl BitFifo {
    /// FIFO holding at most `capacity_bits` bits.
    pub fn new(capacity_bits: u64) -> Self {
        Self {
            bytes: VecDeque::new(),
            head_acc: 0,
            head_bits: 0,
            tail_consumed: 0,
            capacity_bits,
            watermark: Watermark::new(),
        }
    }

    /// An effectively unbounded FIFO (for measurement-only runs).
    pub fn unbounded() -> Self {
        Self::new(u64::MAX)
    }

    /// Current occupancy in bits.
    #[inline]
    pub fn len_bits(&self) -> u64 {
        self.bytes.len() as u64 * 8 + self.head_bits as u64 - self.tail_consumed as u64
    }

    /// Whether no bits are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len_bits() == 0
    }

    /// Provisioned capacity in bits.
    #[inline]
    pub fn capacity_bits(&self) -> u64 {
        self.capacity_bits
    }

    /// Highest bit occupancy ever observed.
    #[inline]
    pub fn high_watermark(&self) -> u64 {
        self.watermark.max()
    }

    /// Push the low `nbits` of `value` (LSB first).
    ///
    /// # Panics
    ///
    /// Panics if `nbits > 32`.
    pub fn push_bits(&mut self, value: u32, nbits: u32) -> Result<(), FifoError> {
        assert!(nbits <= 32, "at most 32 bits per push");
        let new_len = self.len_bits() + nbits as u64;
        if new_len > self.capacity_bits {
            return Err(FifoError::Overflow {
                needed: new_len,
                capacity: self.capacity_bits,
            });
        }
        let masked = if nbits == 32 {
            value as u64
        } else {
            (value & ((1u32 << nbits) - 1)) as u64
        };
        let mut v = masked;
        let mut remaining = nbits;
        while remaining > 0 {
            let take = (8 - self.head_bits).min(remaining);
            self.head_acc |= ((v & ((1 << take) - 1)) as u32) << self.head_bits;
            self.head_bits += take;
            v >>= take;
            remaining -= take;
            if self.head_bits == 8 {
                self.bytes.push_back(self.head_acc as u8);
                self.head_acc = 0;
                self.head_bits = 0;
            }
        }
        self.watermark.observe(self.len_bits());
        Ok(())
    }

    /// Pop `nbits` bits (LSB first).
    pub fn pop_bits(&mut self, nbits: u32) -> Result<u32, FifoError> {
        assert!(nbits <= 32, "at most 32 bits per pop");
        if self.len_bits() < nbits as u64 {
            return Err(FifoError::Underrun);
        }
        let mut out: u64 = 0;
        let mut got = 0u32;
        while got < nbits {
            if let Some(&front) = self.bytes.front() {
                let avail = 8 - self.tail_consumed;
                let take = avail.min(nbits - got);
                let chunk = ((front as u64) >> self.tail_consumed) & ((1 << take) - 1);
                out |= chunk << got;
                got += take;
                self.tail_consumed += take;
                if self.tail_consumed == 8 {
                    self.bytes.pop_front();
                    self.tail_consumed = 0;
                }
            } else {
                // Only the head staging register remains.
                let take = nbits - got;
                debug_assert!(take <= self.head_bits);
                let chunk = (self.head_acc as u64) & ((1 << take) - 1);
                out |= chunk << got;
                self.head_acc >>= take;
                self.head_bits -= take;
                got = nbits;
            }
        }
        Ok(out as u32)
    }

    /// Remove all contents, keeping the watermark history.
    pub fn clear(&mut self) {
        self.bytes.clear();
        self.head_acc = 0;
        self.head_bits = 0;
        self.tail_consumed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_fifo_order_and_capacity() {
        let mut f = WordFifo::new(2);
        f.push(1).unwrap();
        f.push(2).unwrap();
        assert!(f.is_full());
        assert_eq!(
            f.push(3),
            Err(FifoError::Overflow {
                needed: 3,
                capacity: 2
            })
        );
        assert_eq!(f.pop(), Ok(1));
        assert_eq!(f.front(), Some(&2));
        assert_eq!(f.pop(), Ok(2));
        assert_eq!(f.pop(), Err(FifoError::Underrun));
        assert_eq!(f.high_watermark(), 2);
    }

    #[test]
    fn bit_fifo_roundtrip_mixed_widths() {
        let mut f = BitFifo::new(1024);
        let fields: &[(u32, u32)] = &[(0b101, 3), (0xdead, 16), (0, 1), (0x7fffffff, 31)];
        for &(v, n) in fields {
            f.push_bits(v, n).unwrap();
        }
        assert_eq!(f.len_bits(), 51);
        for &(v, n) in fields {
            let mask = if n == 32 { u32::MAX } else { (1 << n) - 1 };
            assert_eq!(f.pop_bits(n), Ok(v & mask), "field ({v},{n})");
        }
        assert!(f.is_empty());
        assert_eq!(f.high_watermark(), 51);
    }

    #[test]
    fn bit_fifo_pop_can_straddle_partial_head() {
        let mut f = BitFifo::new(64);
        f.push_bits(0b11, 2).unwrap();
        // Pop 1 bit while the other still sits in the head register.
        assert_eq!(f.pop_bits(1), Ok(1));
        assert_eq!(f.pop_bits(1), Ok(1));
        assert!(f.is_empty());
    }

    #[test]
    fn bit_fifo_overflow_reports_needed_bits() {
        let mut f = BitFifo::new(10);
        f.push_bits(0x3ff, 10).unwrap();
        assert_eq!(
            f.push_bits(1, 1),
            Err(FifoError::Overflow {
                needed: 11,
                capacity: 10
            })
        );
        // Contents intact after the failed push.
        assert_eq!(f.pop_bits(10), Ok(0x3ff));
    }

    #[test]
    fn bit_fifo_underrun() {
        let mut f = BitFifo::new(64);
        f.push_bits(0xf, 4).unwrap();
        assert_eq!(f.pop_bits(5), Err(FifoError::Underrun));
        assert_eq!(f.pop_bits(4), Ok(0xf));
    }

    #[test]
    fn bit_fifo_interleaved_push_pop_keeps_order() {
        let mut f = BitFifo::new(4096);
        let mut expected = VecDeque::new();
        let mut state = 0x12345678u32;
        for step in 0..500 {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            let n = (state >> 27) % 17 + 1; // 1..=17 bits
            let v = state & ((1 << n) - 1);
            f.push_bits(v, n).unwrap();
            expected.push_back((v, n));
            if step % 3 == 0 {
                let (ev, en) = expected.pop_front().unwrap();
                assert_eq!(f.pop_bits(en), Ok(ev), "step {step}");
            }
        }
        while let Some((ev, en)) = expected.pop_front() {
            assert_eq!(f.pop_bits(en), Ok(ev));
        }
        assert!(f.is_empty());
    }

    #[test]
    fn clear_resets_contents_not_watermark() {
        let mut f = BitFifo::new(64);
        f.push_bits(0xff, 8).unwrap();
        f.clear();
        assert!(f.is_empty());
        assert_eq!(f.high_watermark(), 8);
    }
}

//! FPGA substrate models for the modified sliding window architecture.
//!
//! The paper evaluates its architecture on a Xilinx Zynq XC7Z020 using 18 Kb
//! Block RAMs (Section V-E, Tables I–X). This crate provides the software
//! stand-ins for that hardware ecosystem (see `DESIGN.md` §4 for the
//! substitution rationale):
//!
//! * [`bram`] — the 18 Kb BRAM capacity/aspect-ratio model (2k×9, 1k×18,
//!   512×36, …), cascading, and the "how many BRAMs does this stream need"
//!   arithmetic that underlies Tables I–V.
//! * [`fifo`] — bit-granular and word-granular FIFOs with occupancy
//!   watermarks and structured overflow reporting (the paper's "bad frame"
//!   limitation is observable instead of being undefined behaviour).
//! * [`sim`] — minimal clocked-simulation bookkeeping: cycle counters,
//!   watermark trackers and bounded traces used by the architecture models.
//! * [`resources`] — the LUT / register / Fmax estimator calibrated against
//!   the paper's post-synthesis Tables VI–X.
//! * [`device`] — a small device catalog (XC7Z020 and friends) for
//!   utilization reporting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod bram;
pub mod bram_fifo;
pub mod device;
pub mod fifo;
pub mod resources;
pub mod sim;

pub use bram::{Bram18Config, BRAM18_BITS};
pub use bram_fifo::BramFifo;
pub use device::Device;
pub use fifo::{BitFifo, FifoError, WordFifo};
pub use resources::{ModuleKind, ResourceEstimate};
pub use sim::{CycleCounter, Watermark};

//! 2-D single-level integer Haar transform: quad (2×2 block) form, the
//! streaming column-pair form used by the sliding-window hardware, and a
//! whole-image form used by the offline analyzer.
//!
//! The hardware (paper Figure 5) wires four 1-D blocks: two "vertical" blocks
//! transform a 2-pixel-tall pair inside each column, then two "horizontal"
//! blocks combine the results across a pair of adjacent columns, producing
//! the four sub-band coefficients LL, LH, HL, HH of each 2×2 pixel block.
//!
//! Sub-band letters: first letter = vertical filter, second = horizontal
//! filter (so LH = vertically smooth, horizontal detail). The paper's prose
//! and Figure 5 caption disagree on which of LH/HL is "horizontal details";
//! the math below is self-consistent and round-trip exact, which is what the
//! architecture requires.

use crate::haar::{haar_fwd_pair, haar_inv_pair};
use crate::subband::{SubBand, SubbandPlanes};
use crate::swar;
use crate::Coeff;

/// The four coefficients of one transformed 2×2 pixel block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Quad {
    /// Approximation coefficient.
    pub ll: Coeff,
    /// Horizontal-detail coefficient (vertically low-passed).
    pub lh: Coeff,
    /// Vertical-detail coefficient (horizontally low-passed).
    pub hl: Coeff,
    /// Diagonal-detail coefficient.
    pub hh: Coeff,
}

impl Quad {
    /// Coefficient for a given sub-band.
    #[inline]
    pub fn get(&self, band: SubBand) -> Coeff {
        match band {
            SubBand::LL => self.ll,
            SubBand::LH => self.lh,
            SubBand::HL => self.hl,
            SubBand::HH => self.hh,
        }
    }
}

/// Forward 2-D Haar transform of one 2×2 block.
///
/// Block layout: `x00 x01` is the top row (`x01` to the right of `x00`),
/// `x10 x11` the bottom row.
///
/// ```
/// use sw_wavelet::haar2d_fwd_quad;
/// // A flat block has zero details and LL equal to the common value.
/// let q = haar2d_fwd_quad(9, 9, 9, 9);
/// assert_eq!((q.ll, q.lh, q.hl, q.hh), (9, 0, 0, 0));
/// ```
#[inline]
pub fn haar2d_fwd_quad(x00: Coeff, x01: Coeff, x10: Coeff, x11: Coeff) -> Quad {
    // Stage 1: vertical transform inside each column.
    let (l0, h0) = haar_fwd_pair(x00, x10);
    let (l1, h1) = haar_fwd_pair(x01, x11);
    // Stage 2: horizontal transform across the column pair.
    let (ll, lh) = haar_fwd_pair(l0, l1);
    let (hl, hh) = haar_fwd_pair(h0, h1);
    Quad { ll, lh, hl, hh }
}

/// Exact inverse of [`haar2d_fwd_quad`].
///
/// Returns `(x00, x01, x10, x11)`.
#[inline]
pub fn haar2d_inv_quad(q: Quad) -> (Coeff, Coeff, Coeff, Coeff) {
    let (l0, l1) = haar_inv_pair(q.ll, q.lh);
    let (h0, h1) = haar_inv_pair(q.hl, q.hh);
    let (x00, x10) = haar_inv_pair(l0, h0);
    let (x01, x11) = haar_inv_pair(l1, h1);
    (x00, x01, x10, x11)
}

/// One transformed column of the decomposed image.
///
/// In the streaming architecture every *decomposed* image column carries two
/// sub-bands of `n/2` coefficients each (paper Section V-E): even columns
/// carry `(LL, LH)`, odd columns `(HL, HH)`. The first `n/2` entries of
/// [`SubbandColumn::coeffs`] belong to `bands.0`, the rest to `bands.1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubbandColumn {
    /// The two sub-bands present in this column, in storage order.
    pub bands: (SubBand, SubBand),
    /// `n` coefficients: `n/2` for `bands.0` followed by `n/2` for `bands.1`.
    pub coeffs: Vec<Coeff>,
}

impl SubbandColumn {
    /// Coefficients of the first sub-band (`bands.0`).
    #[inline]
    pub fn first_half(&self) -> &[Coeff] {
        &self.coeffs[..self.coeffs.len() / 2]
    }

    /// Coefficients of the second sub-band (`bands.1`).
    #[inline]
    pub fn second_half(&self) -> &[Coeff] {
        &self.coeffs[self.coeffs.len() / 2..]
    }
}

/// The two decomposed columns produced from a raw column pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransformedColumnPair {
    /// Even decomposed column: `(LL, LH)`.
    pub even: SubbandColumn,
    /// Odd decomposed column: `(HL, HH)`.
    pub odd: SubbandColumn,
}

/// Streaming model of the paper's IWT hardware block (Section V-A).
///
/// Every clock cycle the hardware reads the `n` pixels of the active window's
/// rightmost column. Internally it buffers the vertical-stage result of one
/// column; when the second column of a pair arrives it completes the 2-D
/// transform and emits the two decomposed columns.
///
/// `n` must be even (the paper's window sizes are powers of two ≥ 8).
#[derive(Debug, Clone)]
pub struct ColumnPairTransformer {
    n: usize,
    /// Vertical-stage `(l, h)` halves of the pending (even) column.
    pending: Option<(Vec<Coeff>, Vec<Coeff>)>,
    /// Retired `(l, h)` buffer pairs recycled by the sliced hot path.
    spare: Vec<(Vec<Coeff>, Vec<Coeff>)>,
    /// Reusable output storage for [`Self::push_column_sliced`].
    out: Option<TransformedColumnPair>,
}

impl ColumnPairTransformer {
    /// Create a transformer for window height `n` (even, ≥ 2).
    pub fn new(n: usize) -> Self {
        assert!(
            n >= 2 && n.is_multiple_of(2),
            "window height must be even and >= 2"
        );
        Self {
            n,
            pending: None,
            spare: Vec::new(),
            out: None,
        }
    }

    /// Window height this transformer was built for.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Whether a column is currently buffered (i.e. the next push completes a
    /// pair).
    #[inline]
    pub fn has_pending(&self) -> bool {
        self.pending.is_some()
    }

    /// Feed one raw column (length `n`, top to bottom).
    ///
    /// Returns the decomposed column pair after every second push.
    ///
    /// # Panics
    ///
    /// Panics if `column.len() != n`.
    pub fn push_column(&mut self, column: &[Coeff]) -> Option<TransformedColumnPair> {
        assert_eq!(column.len(), self.n, "column height mismatch");
        let half = self.n / 2;
        let mut l = Vec::with_capacity(half);
        let mut h = Vec::with_capacity(half);
        for rows in column.chunks_exact(2) {
            let (lo, hi) = haar_fwd_pair(rows[0], rows[1]);
            l.push(lo);
            h.push(hi);
        }
        match self.pending.take() {
            None => {
                self.pending = Some((l, h));
                None
            }
            Some((l0, h0)) => {
                let mut even = Vec::with_capacity(self.n);
                let mut odd = Vec::with_capacity(self.n);
                let mut even_hi = Vec::with_capacity(half);
                let mut odd_hi = Vec::with_capacity(half);
                for k in 0..half {
                    let (ll, lh) = haar_fwd_pair(l0[k], l[k]);
                    let (hl, hh) = haar_fwd_pair(h0[k], h[k]);
                    even.push(ll);
                    even_hi.push(lh);
                    odd.push(hl);
                    odd_hi.push(hh);
                }
                even.extend_from_slice(&even_hi);
                odd.extend_from_slice(&odd_hi);
                Some(TransformedColumnPair {
                    even: SubbandColumn {
                        bands: (SubBand::LL, SubBand::LH),
                        coeffs: even,
                    },
                    odd: SubbandColumn {
                        bands: (SubBand::HL, SubBand::HH),
                        coeffs: odd,
                    },
                })
            }
        }
    }

    /// Zero-allocation twin of [`Self::push_column`] for the sliced hot path.
    ///
    /// Bit-identical to `push_column` on the codec's coefficient domain (and
    /// on all inputs in release builds), but the vertical stage runs through
    /// the u64 SWAR kernels of [`crate::swar`] and every buffer — the
    /// vertical-stage halves and the emitted pair — is recycled across calls,
    /// so a warmed-up transformer performs no heap allocation per column.
    ///
    /// The returned reference stays valid until the next call on `self`.
    ///
    /// # Panics
    ///
    /// Panics if `column.len() != n`.
    pub fn push_column_sliced(&mut self, column: &[Coeff]) -> Option<&TransformedColumnPair> {
        assert_eq!(column.len(), self.n, "column height mismatch");
        let half = self.n / 2;
        let (mut l, mut h) = self.spare.pop().unwrap_or_default();
        l.clear();
        l.resize(half, 0);
        h.clear();
        h.resize(half, 0);
        swar::haar_fwd_interleaved(column, &mut l, &mut h);
        match self.pending.take() {
            None => {
                self.pending = Some((l, h));
                None
            }
            Some((l0, h0)) => {
                let n = self.n;
                let out = self.out.get_or_insert_with(|| TransformedColumnPair {
                    even: SubbandColumn {
                        bands: (SubBand::LL, SubBand::LH),
                        coeffs: Vec::new(),
                    },
                    odd: SubbandColumn {
                        bands: (SubBand::HL, SubBand::HH),
                        coeffs: Vec::new(),
                    },
                });
                out.even.coeffs.clear();
                out.even.coeffs.resize(n, 0);
                out.odd.coeffs.clear();
                out.odd.coeffs.resize(n, 0);
                {
                    let (ll, lh) = out.even.coeffs.split_at_mut(half);
                    swar::haar_fwd_slices(&l0, &l, ll, lh);
                }
                {
                    let (hl, hh) = out.odd.coeffs.split_at_mut(half);
                    swar::haar_fwd_slices(&h0, &h, hl, hh);
                }
                self.spare.push((l0, h0));
                self.spare.push((l, h));
                self.out.as_ref()
            }
        }
    }

    /// Drop any buffered half-pair (used at row boundaries / frame resets).
    ///
    /// Recycled scratch buffers are kept — reset clears *state*, not
    /// capacity, so a reused transformer stays allocation-free.
    pub fn reset(&mut self) {
        if let Some(pair) = self.pending.take() {
            self.spare.push(pair);
        }
    }
}

/// Streaming model of the paper's inverse IWT block (Section V-D).
///
/// Accepts decomposed columns in the order the forward side emitted them
/// (even `(LL, LH)` column, then odd `(HL, HH)` column) and reconstructs the
/// raw column pair once both halves are available.
#[derive(Debug, Clone)]
pub struct ColumnPairInverse {
    n: usize,
    pending: Option<SubbandColumn>,
    /// Sliced-path scratch: horizontal-stage row planes (`l0, l1, h0, h1`).
    rows: [Vec<Coeff>; 4],
    /// Sliced-path reusable output columns.
    cols: (Vec<Coeff>, Vec<Coeff>),
}

impl ColumnPairInverse {
    /// Create an inverse transformer for window height `n` (even, ≥ 2).
    pub fn new(n: usize) -> Self {
        assert!(
            n >= 2 && n.is_multiple_of(2),
            "window height must be even and >= 2"
        );
        Self {
            n,
            pending: None,
            rows: Default::default(),
            cols: Default::default(),
        }
    }

    /// Whether an even column is buffered awaiting its odd partner.
    #[inline]
    pub fn has_pending(&self) -> bool {
        self.pending.is_some()
    }

    /// Feed one decomposed column; after each complete pair, returns the two
    /// reconstructed raw columns `(first, second)` in image order.
    ///
    /// # Panics
    ///
    /// Panics if the column height mismatches, or if sub-band tags arrive out
    /// of order (an even column when an even column is already pending, etc.).
    pub fn push_column(&mut self, col: SubbandColumn) -> Option<(Vec<Coeff>, Vec<Coeff>)> {
        assert_eq!(col.coeffs.len(), self.n, "column height mismatch");
        match self.pending.take() {
            None => {
                assert_eq!(
                    col.bands,
                    (SubBand::LL, SubBand::LH),
                    "expected an even (LL,LH) column"
                );
                self.pending = Some(col);
                None
            }
            Some(even) => {
                assert_eq!(
                    col.bands,
                    (SubBand::HL, SubBand::HH),
                    "expected an odd (HL,HH) column"
                );
                let half = self.n / 2;
                let mut c0 = Vec::with_capacity(self.n);
                let mut c1 = Vec::with_capacity(self.n);
                for k in 0..half {
                    let ll = even.coeffs[k];
                    let lh = even.coeffs[half + k];
                    let hl = col.coeffs[k];
                    let hh = col.coeffs[half + k];
                    let (x00, x01, x10, x11) = haar2d_inv_quad(Quad { ll, lh, hl, hh });
                    c0.push(x00);
                    c0.push(x10);
                    c1.push(x01);
                    c1.push(x11);
                }
                Some((c0, c1))
            }
        }
    }

    /// Zero-allocation inverse for the sliced hot path: reconstruct one raw
    /// column pair straight from the four sub-band slices of a decomposed
    /// column pair (even column = `ll ++ lh`, odd column = `hl ++ hh`).
    ///
    /// Bit-identical to feeding the equivalent [`SubbandColumn`]s through
    /// [`Self::push_column`] on the codec domain (and on all inputs in
    /// release builds). The returned `(first, second)` column slices borrow
    /// internal scratch and stay valid until the next call on `self`.
    ///
    /// # Panics
    ///
    /// Panics if any sub-band slice is not `n / 2` long.
    pub fn push_quad_sliced(
        &mut self,
        ll: &[Coeff],
        lh: &[Coeff],
        hl: &[Coeff],
        hh: &[Coeff],
    ) -> (&[Coeff], &[Coeff]) {
        let half = self.n / 2;
        assert!(
            ll.len() == half && lh.len() == half && hl.len() == half && hh.len() == half,
            "sub-band height mismatch"
        );
        for r in &mut self.rows {
            r.clear();
            r.resize(half, 0);
        }
        let [l0, l1, h0, h1] = &mut self.rows;
        // Undo the horizontal stage across the column pair.
        swar::haar_inv_slices(ll, lh, l0, l1);
        swar::haar_inv_slices(hl, hh, h0, h1);
        // Undo the vertical stage, re-interleaving each column's row pairs.
        self.cols.0.clear();
        self.cols.0.resize(self.n, 0);
        self.cols.1.clear();
        self.cols.1.resize(self.n, 0);
        swar::haar_inv_interleaved(l0, h0, &mut self.cols.0);
        swar::haar_inv_interleaved(l1, h1, &mut self.cols.1);
        (&self.cols.0, &self.cols.1)
    }

    /// Drop any buffered half-pair.
    pub fn reset(&mut self) {
        self.pending = None;
    }
}

/// Whole-image single-level 2-D Haar transform (offline analyzer form).
///
/// `pixels` is row-major `w × h`; both dimensions must be even. Returns the
/// four quadrant planes of size `w/2 × h/2`.
pub fn forward_image(pixels: &[Coeff], w: usize, h: usize) -> SubbandPlanes {
    assert_eq!(pixels.len(), w * h, "pixel buffer size mismatch");
    assert!(
        w.is_multiple_of(2) && h.is_multiple_of(2),
        "image dimensions must be even"
    );
    let (pw, ph) = (w / 2, h / 2);
    let mut planes = SubbandPlanes::new(pw, ph);
    for by in 0..ph {
        for bx in 0..pw {
            let (x, y) = (bx * 2, by * 2);
            let q = haar2d_fwd_quad(
                pixels[y * w + x],
                pixels[y * w + x + 1],
                pixels[(y + 1) * w + x],
                pixels[(y + 1) * w + x + 1],
            );
            planes.set(SubBand::LL, bx, by, q.ll);
            planes.set(SubBand::LH, bx, by, q.lh);
            planes.set(SubBand::HL, bx, by, q.hl);
            planes.set(SubBand::HH, bx, by, q.hh);
        }
    }
    planes
}

/// Exact inverse of [`forward_image`].
pub fn inverse_image(planes: &SubbandPlanes) -> Vec<Coeff> {
    let (pw, ph) = (planes.w, planes.h);
    let (w, h) = (pw * 2, ph * 2);
    let mut pixels = vec![0; w * h];
    for by in 0..ph {
        for bx in 0..pw {
            let q = Quad {
                ll: planes.get(SubBand::LL, bx, by),
                lh: planes.get(SubBand::LH, bx, by),
                hl: planes.get(SubBand::HL, bx, by),
                hh: planes.get(SubBand::HH, bx, by),
            };
            let (x00, x01, x10, x11) = haar2d_inv_quad(q);
            let (x, y) = (bx * 2, by * 2);
            pixels[y * w + x] = x00;
            pixels[y * w + x + 1] = x01;
            pixels[(y + 1) * w + x] = x10;
            pixels[(y + 1) * w + x + 1] = x11;
        }
    }
    pixels
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quad_roundtrip_exhaustive_corners() {
        for &vals in &[
            (0, 0, 0, 0),
            (255, 255, 255, 255),
            (255, 0, 0, 255),
            (0, 255, 255, 0),
            (1, 2, 3, 4),
            (200, 10, 30, 190),
        ] {
            let (a, b, c, d) = vals;
            let q = haar2d_fwd_quad(a, b, c, d);
            assert_eq!(haar2d_inv_quad(q), vals);
        }
    }

    #[test]
    fn quad_coefficient_ranges_for_u8_input() {
        // Sampled sweep over the u8 block space to confirm coefficient bounds.
        let mut max_abs = Quad::default();
        for a in (0..=255).step_by(17) {
            for b in (0..=255).step_by(17) {
                for c in (0..=255).step_by(17) {
                    for d in (0..=255).step_by(17) {
                        let q = haar2d_fwd_quad(a, b, c, d);
                        max_abs.ll = max_abs.ll.max(q.ll.abs());
                        max_abs.lh = max_abs.lh.max(q.lh.abs());
                        max_abs.hl = max_abs.hl.max(q.hl.abs());
                        max_abs.hh = max_abs.hh.max(q.hh.abs());
                    }
                }
            }
        }
        assert!(max_abs.ll <= 255, "LL stays in pixel range");
        assert!(max_abs.lh <= 255);
        assert!(max_abs.hl <= 255, "HL is an average of two details");
        assert!(max_abs.hh <= 510, "HH is the only 10-bit band");
        // The extremes are actually reached:
        assert_eq!(haar2d_fwd_quad(255, 0, 0, 255).hh, 510);
    }

    #[test]
    fn column_pair_transformer_matches_quad_form() {
        let n = 8;
        let mut fwd = ColumnPairTransformer::new(n);
        let col0: Vec<Coeff> = (0..n as Coeff).map(|i| i * 13 % 256).collect();
        let col1: Vec<Coeff> = (0..n as Coeff).map(|i| (i * 29 + 7) % 256).collect();
        assert!(fwd.push_column(&col0).is_none());
        assert!(fwd.has_pending());
        let pair = fwd.push_column(&col1).expect("pair completes");
        assert!(!fwd.has_pending());

        for k in 0..n / 2 {
            let q = haar2d_fwd_quad(col0[2 * k], col1[2 * k], col0[2 * k + 1], col1[2 * k + 1]);
            assert_eq!(pair.even.first_half()[k], q.ll);
            assert_eq!(pair.even.second_half()[k], q.lh);
            assert_eq!(pair.odd.first_half()[k], q.hl);
            assert_eq!(pair.odd.second_half()[k], q.hh);
        }
    }

    #[test]
    fn streaming_roundtrip_many_columns() {
        let n = 16;
        let mut fwd = ColumnPairTransformer::new(n);
        let mut inv = ColumnPairInverse::new(n);
        let mut reconstructed: Vec<Vec<Coeff>> = Vec::new();
        let columns: Vec<Vec<Coeff>> = (0..24)
            .map(|c| (0..n).map(|r| ((r * 31 + c * 97) % 256) as Coeff).collect())
            .collect();
        for col in &columns {
            if let Some(pair) = fwd.push_column(col) {
                assert!(inv.push_column(pair.even).is_none());
                let (c0, c1) = inv.push_column(pair.odd).expect("pair reconstructs");
                reconstructed.push(c0);
                reconstructed.push(c1);
            }
        }
        assert_eq!(reconstructed, columns);
    }

    #[test]
    fn image_roundtrip() {
        let (w, h) = (32, 20);
        let pixels: Vec<Coeff> = (0..w * h)
            .map(|i| ((i * 131 + 17) % 256) as Coeff)
            .collect();
        let planes = forward_image(&pixels, w, h);
        assert_eq!(inverse_image(&planes), pixels);
    }

    #[test]
    fn flat_image_has_zero_details() {
        let (w, h) = (16, 16);
        let pixels = vec![77; w * h];
        let planes = forward_image(&pixels, w, h);
        assert!(planes.plane(SubBand::LL).iter().all(|&c| c == 77));
        for band in [SubBand::LH, SubBand::HL, SubBand::HH] {
            assert_eq!(planes.max_abs(band), 0, "{band} must vanish");
        }
    }

    #[test]
    fn reset_discards_pending_halves() {
        let mut fwd = ColumnPairTransformer::new(4);
        fwd.push_column(&[1, 2, 3, 4]);
        fwd.reset();
        assert!(!fwd.has_pending());
        assert!(fwd.push_column(&[5, 6, 7, 8]).is_none());
    }

    #[test]
    fn sliced_push_matches_scalar_across_reused_frames() {
        let n = 16;
        // One sliced transformer reused across frames of different content
        // must match a fresh scalar transformer per frame: no stale-state
        // bleed through the recycled scratch buffers.
        let mut sliced = ColumnPairTransformer::new(n);
        for frame in 0u32..3 {
            let mut scalar = ColumnPairTransformer::new(n);
            let columns: Vec<Vec<Coeff>> = (0..10)
                .map(|c| {
                    (0..n)
                        .map(|r| ((r as u32 * 31 + c * 97 + frame * 55) % 256) as Coeff)
                        .collect()
                })
                .collect();
            for col in &columns {
                let want = scalar.push_column(col);
                let got = sliced.push_column_sliced(col);
                assert_eq!(got, want.as_ref(), "frame {frame}");
            }
            sliced.reset();
        }
    }

    #[test]
    fn sliced_quad_inverse_matches_scalar_inverse() {
        let n = 12;
        let mut fwd = ColumnPairTransformer::new(n);
        let mut inv_scalar = ColumnPairInverse::new(n);
        let mut inv_sliced = ColumnPairInverse::new(n);
        let columns: Vec<Vec<Coeff>> = (0..8)
            .map(|c| (0..n).map(|r| ((r * 67 + c * 13) % 256) as Coeff).collect())
            .collect();
        for pair in columns.chunks_exact(2) {
            let tp = fwd
                .push_column(&pair[0])
                .or_else(|| fwd.push_column(&pair[1]))
                .expect("pair completes");
            let (s0, s1) = {
                let half = n / 2;
                inv_sliced.push_quad_sliced(
                    &tp.even.coeffs[..half],
                    &tp.even.coeffs[half..],
                    &tp.odd.coeffs[..half],
                    &tp.odd.coeffs[half..],
                )
            };
            let (s0, s1) = (s0.to_vec(), s1.to_vec());
            assert!(inv_scalar.push_column(tp.even).is_none());
            let (c0, c1) = inv_scalar.push_column(tp.odd).expect("reconstructs");
            assert_eq!((s0, s1), (c0, c1));
        }
    }

    #[test]
    fn sliced_push_allocates_nothing_once_warm() {
        let n = 8;
        let mut t = ColumnPairTransformer::new(n);
        let col: Vec<Coeff> = (0..n as Coeff).collect();
        // Warm up one full pair, then confirm the recycled buffers are the
        // same allocations on the next pair (pointer-stable scratch).
        t.push_column_sliced(&col);
        let first = t.push_column_sliced(&col).expect("pair");
        let even_ptr = first.even.coeffs.as_ptr();
        t.push_column_sliced(&col);
        let second = t.push_column_sliced(&col).expect("pair");
        assert_eq!(second.even.coeffs.as_ptr(), even_ptr, "output recycled");
    }

    #[test]
    #[should_panic(expected = "expected an even")]
    fn inverse_rejects_out_of_order_columns() {
        let mut inv = ColumnPairInverse::new(4);
        inv.push_column(SubbandColumn {
            bands: (SubBand::HL, SubBand::HH),
            coeffs: vec![0; 4],
        });
    }
}

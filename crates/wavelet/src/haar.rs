//! 1-D integer Haar (S-transform) lifting steps.
//!
//! The paper's forward equations (Section V-A):
//!
//! ```text
//! H(i,j) = X(i,j) − X(i,j+1)          (high-pass / detail)
//! L(i,j) = X(i,j+1) + H(i,j)/2        (low-pass / approximation)
//! ```
//!
//! where `/2` is an arithmetic shift right by one. Each hardware "1D block"
//! (Figure 5) is one adder, one subtractor and one shifter; this module is the
//! cycle-free functional model of that block.

use crate::{Coeff, Pixel, Sample};

/// Forward 1-D integer Haar transform of one sample pair.
///
/// Returns `(l, h)` where `h = x0 − x1` and `l = x1 + (h >> 1)`.
///
/// `l` equals `floor((x0 + x1) / 2)` — the integer average — and `h` the
/// difference, which is the classic S-transform. The pair `(l, h)` determines
/// `(x0, x1)` exactly; see [`haar_inv_pair`].
///
/// # Examples
///
/// ```
/// use sw_wavelet::{haar_fwd_pair, haar_inv_pair};
/// let (l, h) = haar_fwd_pair(13, 6);
/// assert_eq!((l, h), (9, 7));
/// assert_eq!(haar_inv_pair(l, h), (13, 6));
/// ```
#[inline]
pub fn haar_fwd_pair(x0: Coeff, x1: Coeff) -> (Coeff, Coeff) {
    let h = x0 - x1;
    let l = x1 + (h >> 1);
    (l, h)
}

/// Inverse 1-D integer Haar transform of one `(l, h)` coefficient pair.
///
/// Implements the algebraically correct inverse of [`haar_fwd_pair`]:
/// `x1 = l − (h >> 1)`, `x0 = x1 + h`.
///
/// Note: the paper's printed equations (3)–(4) have a sign error (they negate
/// the output); this is the corrected S-transform inverse. The hardware cost
/// is identical (one adder, one subtractor, one shifter — Figure 10).
#[inline]
pub fn haar_inv_pair(l: Coeff, h: Coeff) -> (Coeff, Coeff) {
    let x1 = l - (h >> 1);
    let x0 = x1 + h;
    (x0, x1)
}

/// Stateless helper for transforming whole slices with the 1-D Haar lifting.
///
/// Useful for the multi-level ablation and for building the separable 2-D
/// transform on full images. The sliding-window hardware itself uses the
/// column-pair formulation in [`crate::haar2d`].
#[derive(Debug, Clone, Copy, Default)]
pub struct HaarLifter;

impl HaarLifter {
    /// Forward transform of `input` (even length) into `low`/`high` halves.
    ///
    /// `input[2k], input[2k+1]` become `low[k]`, `high[k]`.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` is odd or the output slices are shorter than
    /// `input.len() / 2`.
    pub fn forward(&self, input: &[Coeff], low: &mut [Coeff], high: &mut [Coeff]) {
        assert!(
            input.len().is_multiple_of(2),
            "Haar forward needs an even length"
        );
        let n = input.len() / 2;
        assert!(low.len() >= n && high.len() >= n, "output slices too short");
        for (k, pair) in input.chunks_exact(2).enumerate() {
            let (l, h) = haar_fwd_pair(pair[0], pair[1]);
            low[k] = l;
            high[k] = h;
        }
    }

    /// Inverse of [`HaarLifter::forward`].
    ///
    /// # Panics
    ///
    /// Panics if `output.len() != 2 * low.len()` or `low.len() != high.len()`.
    pub fn inverse(&self, low: &[Coeff], high: &[Coeff], output: &mut [Coeff]) {
        assert_eq!(low.len(), high.len(), "sub-band length mismatch");
        assert_eq!(output.len(), 2 * low.len(), "output length mismatch");
        for (k, (&l, &h)) in low.iter().zip(high.iter()).enumerate() {
            let (x0, x1) = haar_inv_pair(l, h);
            output[2 * k] = x0;
            output[2 * k + 1] = x1;
        }
    }

    /// In-place forward transform: `data` is replaced by
    /// `[low half | high half]`.
    pub fn forward_in_place(&self, data: &mut [Coeff], scratch: &mut Vec<Coeff>) {
        assert!(
            data.len().is_multiple_of(2),
            "Haar forward needs an even length"
        );
        let n = data.len() / 2;
        scratch.clear();
        scratch.resize(data.len(), 0);
        let (low, high) = scratch.split_at_mut(n);
        self.forward(data, low, high);
        data.copy_from_slice(scratch);
    }

    /// In-place inverse transform: `data` holds `[low half | high half]` and
    /// is replaced by the reconstructed samples.
    pub fn inverse_in_place(&self, data: &mut [Coeff], scratch: &mut Vec<Coeff>) {
        assert!(
            data.len().is_multiple_of(2),
            "Haar inverse needs an even length"
        );
        let n = data.len() / 2;
        scratch.clear();
        scratch.resize(data.len(), 0);
        {
            let (low, high) = data.split_at(n);
            self.inverse(low, high, scratch);
        }
        data.copy_from_slice(scratch);
    }
}

/// Largest magnitude a stage-`stage` Haar coefficient can take for unsigned
/// `pixel_bits`-bit input: `(2^pixel_bits − 1) · 2^(stage−1)`.
///
/// Stage 1 is the difference of two pixels (`H ∈ ±(2^p − 1)`); each further
/// cascaded stage differences two previous-stage coefficients and at most
/// doubles the span. The low-pass output is the floor average and never
/// leaves the input range.
pub const fn stage_max_abs(pixel_bits: u32, stage: u32) -> i64 {
    (((1u64 << pixel_bits) - 1) << (stage - 1)) as i64
}

/// Widest unsigned pixel a coefficient word of `S::BITS` bits can carry
/// through two cascaded lifting stages without overflow.
///
/// Requires `stage_max_abs(p, 2) = 2·(2^p − 1) ≤ 2^(BITS−1) − 1`, i.e.
/// `p ≤ BITS − 2`: 14-bit pixels for `i16`, 30-bit for `i32`.
pub const fn max_pixel_bits<S: Sample>() -> u32 {
    S::BITS - 2
}

/// Largest magnitude a first-stage Haar coefficient can take for `u8` input.
///
/// `H = x0 − x1 ∈ [−255, 255]`, `L ∈ [0, 255]`.
pub const STAGE1_MAX_ABS: Coeff = stage_max_abs(Pixel::BITS, 1) as Coeff;

/// Largest magnitude a second-stage (2-D) Haar coefficient can take for `u8`
/// input: `HH = H0 − H1 ∈ [−510, 510]`.
pub const STAGE2_MAX_ABS: Coeff = stage_max_abs(Pixel::BITS, 2) as Coeff;

// Compile-time headroom proof: two cascaded stages on full-range pixels stay
// strictly inside the narrow coefficient word, as `max_pixel_bits` promises.
const _: () = assert!(Pixel::BITS <= max_pixel_bits::<Coeff>());
const _: () = assert!(STAGE2_MAX_ABS as i64 <= Coeff::MAX as i64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure2_values_roundtrip() {
        // Coefficients quoted in the paper's Figure 2 walk-through:
        // HL column (13, 12, -9, 7) must survive a round trip.
        for &(a, b) in &[(13, 12), (-9, 7), (0, 0), (255, 0), (0, 255), (255, 255)] {
            let (l, h) = haar_fwd_pair(a, b);
            assert_eq!(haar_inv_pair(l, h), (a, b), "pair ({a},{b})");
        }
    }

    #[test]
    fn low_is_floor_average() {
        for a in -64..64 {
            for b in -64..64 {
                let (l, _) = haar_fwd_pair(a, b);
                // floor((a+b)/2) with arithmetic-shift semantics
                let expect = (a as i32 + b as i32).div_euclid(2) as Coeff;
                assert_eq!(l, expect, "avg of ({a},{b})");
            }
        }
    }

    #[test]
    fn high_is_difference() {
        assert_eq!(haar_fwd_pair(200, 55).1, 145);
        assert_eq!(haar_fwd_pair(55, 200).1, -145);
    }

    #[test]
    fn u8_range_bounds_hold() {
        let mut max_l: Coeff = Coeff::MIN;
        let mut min_l: Coeff = Coeff::MAX;
        let mut max_abs_h: Coeff = 0;
        for a in 0..=255 {
            for b in 0..=255 {
                let (l, h) = haar_fwd_pair(a, b);
                max_l = max_l.max(l);
                min_l = min_l.min(l);
                max_abs_h = max_abs_h.max(h.abs());
            }
        }
        assert_eq!((min_l, max_l), (0, 255));
        assert_eq!(max_abs_h, STAGE1_MAX_ABS);
    }

    #[test]
    fn slice_roundtrip() {
        let lifter = HaarLifter;
        let input: Vec<Coeff> = (0..64).map(|i| (i * 37 % 256) - 128).collect();
        let mut low = vec![0; 32];
        let mut high = vec![0; 32];
        lifter.forward(&input, &mut low, &mut high);
        let mut out = vec![0; 64];
        lifter.inverse(&low, &high, &mut out);
        assert_eq!(out, input);
    }

    #[test]
    fn in_place_matches_out_of_place() {
        let lifter = HaarLifter;
        let input: Vec<Coeff> = (0..32).map(|i| (i * i) as Coeff % 251 - 125).collect();
        let mut data = input.clone();
        let mut scratch = Vec::new();
        lifter.forward_in_place(&mut data, &mut scratch);

        let mut low = vec![0; 16];
        let mut high = vec![0; 16];
        lifter.forward(&input, &mut low, &mut high);
        assert_eq!(&data[..16], &low[..]);
        assert_eq!(&data[16..], &high[..]);

        lifter.inverse_in_place(&mut data, &mut scratch);
        assert_eq!(data, input);
    }

    #[test]
    #[should_panic(expected = "even length")]
    fn odd_length_panics() {
        HaarLifter.forward(&[1, 2, 3], &mut [0; 2], &mut [0; 2]);
    }

    #[test]
    fn derived_bounds_match_historical_literals() {
        assert_eq!(STAGE1_MAX_ABS, 255);
        assert_eq!(STAGE2_MAX_ABS, 510);
        assert_eq!(max_pixel_bits::<i16>(), 14);
        assert_eq!(max_pixel_bits::<i32>(), 30);
    }

    /// Property test: at the widest pixel each instance admits
    /// ([`max_pixel_bits`]), two cascaded lifting stages never overflow the
    /// coefficient word — every add/sub is checked, and the outputs stay
    /// inside the [`stage_max_abs`] envelopes the constants are derived from.
    #[test]
    fn lifting_never_overflows_at_either_width_extremes() {
        fn check<S: Sample>() {
            let p = max_pixel_bits::<S>();
            let pix_max = stage_max_abs(p, 1);
            // Exact corners plus a deterministic xorshift sample of the
            // pixel range.
            let mut inputs = vec![0, 1, pix_max / 2, pix_max - 1, pix_max];
            let mut s = 0x5eed_0000_0000_0001u64 ^ u64::from(S::BITS);
            for _ in 0..11 {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                inputs.push((s % (pix_max as u64 + 1)) as i64);
            }
            let mut highs = Vec::new();
            for &a in &inputs {
                for &b in &inputs {
                    let (x0, x1) = (S::from_i64(a), S::from_i64(b));
                    let h = x0.checked_sub(x1).expect("stage-1 difference overflowed");
                    let l = x1
                        .checked_add(h.asr1())
                        .expect("stage-1 average overflowed");
                    assert!(h.to_i64().abs() <= stage_max_abs(p, 1), "H({a},{b})");
                    assert!((0..=pix_max).contains(&l.to_i64()), "L({a},{b})");
                    highs.push(h);
                }
            }
            // The second (2-D) stage differences two first-stage coefficients.
            for &h0 in &highs {
                for &h1 in &highs {
                    let hh = h0.checked_sub(h1).expect("stage-2 difference overflowed");
                    let lh = h1
                        .checked_add(hh.asr1())
                        .expect("stage-2 average overflowed");
                    assert!(hh.to_i64().abs() <= stage_max_abs(p, 2));
                    assert!(lh.to_i64().abs() <= stage_max_abs(p, 1));
                }
            }
        }
        check::<i16>();
        check::<i32>();
    }
}

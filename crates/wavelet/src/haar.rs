//! 1-D integer Haar (S-transform) lifting steps.
//!
//! The paper's forward equations (Section V-A):
//!
//! ```text
//! H(i,j) = X(i,j) − X(i,j+1)          (high-pass / detail)
//! L(i,j) = X(i,j+1) + H(i,j)/2        (low-pass / approximation)
//! ```
//!
//! where `/2` is an arithmetic shift right by one. Each hardware "1D block"
//! (Figure 5) is one adder, one subtractor and one shifter; this module is the
//! cycle-free functional model of that block.

use crate::Coeff;

/// Forward 1-D integer Haar transform of one sample pair.
///
/// Returns `(l, h)` where `h = x0 − x1` and `l = x1 + (h >> 1)`.
///
/// `l` equals `floor((x0 + x1) / 2)` — the integer average — and `h` the
/// difference, which is the classic S-transform. The pair `(l, h)` determines
/// `(x0, x1)` exactly; see [`haar_inv_pair`].
///
/// # Examples
///
/// ```
/// use sw_wavelet::{haar_fwd_pair, haar_inv_pair};
/// let (l, h) = haar_fwd_pair(13, 6);
/// assert_eq!((l, h), (9, 7));
/// assert_eq!(haar_inv_pair(l, h), (13, 6));
/// ```
#[inline]
pub fn haar_fwd_pair(x0: Coeff, x1: Coeff) -> (Coeff, Coeff) {
    let h = x0 - x1;
    let l = x1 + (h >> 1);
    (l, h)
}

/// Inverse 1-D integer Haar transform of one `(l, h)` coefficient pair.
///
/// Implements the algebraically correct inverse of [`haar_fwd_pair`]:
/// `x1 = l − (h >> 1)`, `x0 = x1 + h`.
///
/// Note: the paper's printed equations (3)–(4) have a sign error (they negate
/// the output); this is the corrected S-transform inverse. The hardware cost
/// is identical (one adder, one subtractor, one shifter — Figure 10).
#[inline]
pub fn haar_inv_pair(l: Coeff, h: Coeff) -> (Coeff, Coeff) {
    let x1 = l - (h >> 1);
    let x0 = x1 + h;
    (x0, x1)
}

/// Stateless helper for transforming whole slices with the 1-D Haar lifting.
///
/// Useful for the multi-level ablation and for building the separable 2-D
/// transform on full images. The sliding-window hardware itself uses the
/// column-pair formulation in [`crate::haar2d`].
#[derive(Debug, Clone, Copy, Default)]
pub struct HaarLifter;

impl HaarLifter {
    /// Forward transform of `input` (even length) into `low`/`high` halves.
    ///
    /// `input[2k], input[2k+1]` become `low[k]`, `high[k]`.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` is odd or the output slices are shorter than
    /// `input.len() / 2`.
    pub fn forward(&self, input: &[Coeff], low: &mut [Coeff], high: &mut [Coeff]) {
        assert!(
            input.len().is_multiple_of(2),
            "Haar forward needs an even length"
        );
        let n = input.len() / 2;
        assert!(low.len() >= n && high.len() >= n, "output slices too short");
        for (k, pair) in input.chunks_exact(2).enumerate() {
            let (l, h) = haar_fwd_pair(pair[0], pair[1]);
            low[k] = l;
            high[k] = h;
        }
    }

    /// Inverse of [`HaarLifter::forward`].
    ///
    /// # Panics
    ///
    /// Panics if `output.len() != 2 * low.len()` or `low.len() != high.len()`.
    pub fn inverse(&self, low: &[Coeff], high: &[Coeff], output: &mut [Coeff]) {
        assert_eq!(low.len(), high.len(), "sub-band length mismatch");
        assert_eq!(output.len(), 2 * low.len(), "output length mismatch");
        for (k, (&l, &h)) in low.iter().zip(high.iter()).enumerate() {
            let (x0, x1) = haar_inv_pair(l, h);
            output[2 * k] = x0;
            output[2 * k + 1] = x1;
        }
    }

    /// In-place forward transform: `data` is replaced by
    /// `[low half | high half]`.
    pub fn forward_in_place(&self, data: &mut [Coeff], scratch: &mut Vec<Coeff>) {
        assert!(
            data.len().is_multiple_of(2),
            "Haar forward needs an even length"
        );
        let n = data.len() / 2;
        scratch.clear();
        scratch.resize(data.len(), 0);
        let (low, high) = scratch.split_at_mut(n);
        self.forward(data, low, high);
        data.copy_from_slice(scratch);
    }

    /// In-place inverse transform: `data` holds `[low half | high half]` and
    /// is replaced by the reconstructed samples.
    pub fn inverse_in_place(&self, data: &mut [Coeff], scratch: &mut Vec<Coeff>) {
        assert!(
            data.len().is_multiple_of(2),
            "Haar inverse needs an even length"
        );
        let n = data.len() / 2;
        scratch.clear();
        scratch.resize(data.len(), 0);
        {
            let (low, high) = data.split_at(n);
            self.inverse(low, high, scratch);
        }
        data.copy_from_slice(scratch);
    }
}

/// Largest magnitude a first-stage Haar coefficient can take for `u8` input.
///
/// `H = x0 − x1 ∈ [−255, 255]`, `L ∈ [0, 255]`.
pub const STAGE1_MAX_ABS: Coeff = 255;

/// Largest magnitude a second-stage (2-D) Haar coefficient can take for `u8`
/// input: `HH = H0 − H1 ∈ [−510, 510]`.
pub const STAGE2_MAX_ABS: Coeff = 510;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure2_values_roundtrip() {
        // Coefficients quoted in the paper's Figure 2 walk-through:
        // HL column (13, 12, -9, 7) must survive a round trip.
        for &(a, b) in &[(13, 12), (-9, 7), (0, 0), (255, 0), (0, 255), (255, 255)] {
            let (l, h) = haar_fwd_pair(a, b);
            assert_eq!(haar_inv_pair(l, h), (a, b), "pair ({a},{b})");
        }
    }

    #[test]
    fn low_is_floor_average() {
        for a in -64..64 {
            for b in -64..64 {
                let (l, _) = haar_fwd_pair(a, b);
                // floor((a+b)/2) with arithmetic-shift semantics
                let expect = (a as i32 + b as i32).div_euclid(2) as Coeff;
                assert_eq!(l, expect, "avg of ({a},{b})");
            }
        }
    }

    #[test]
    fn high_is_difference() {
        assert_eq!(haar_fwd_pair(200, 55).1, 145);
        assert_eq!(haar_fwd_pair(55, 200).1, -145);
    }

    #[test]
    fn u8_range_bounds_hold() {
        let mut max_l: Coeff = Coeff::MIN;
        let mut min_l: Coeff = Coeff::MAX;
        let mut max_abs_h: Coeff = 0;
        for a in 0..=255 {
            for b in 0..=255 {
                let (l, h) = haar_fwd_pair(a, b);
                max_l = max_l.max(l);
                min_l = min_l.min(l);
                max_abs_h = max_abs_h.max(h.abs());
            }
        }
        assert_eq!((min_l, max_l), (0, 255));
        assert_eq!(max_abs_h, STAGE1_MAX_ABS);
    }

    #[test]
    fn slice_roundtrip() {
        let lifter = HaarLifter;
        let input: Vec<Coeff> = (0..64).map(|i| (i * 37 % 256) - 128).collect();
        let mut low = vec![0; 32];
        let mut high = vec![0; 32];
        lifter.forward(&input, &mut low, &mut high);
        let mut out = vec![0; 64];
        lifter.inverse(&low, &high, &mut out);
        assert_eq!(out, input);
    }

    #[test]
    fn in_place_matches_out_of_place() {
        let lifter = HaarLifter;
        let input: Vec<Coeff> = (0..32).map(|i| (i * i) as Coeff % 251 - 125).collect();
        let mut data = input.clone();
        let mut scratch = Vec::new();
        lifter.forward_in_place(&mut data, &mut scratch);

        let mut low = vec![0; 16];
        let mut high = vec![0; 16];
        lifter.forward(&input, &mut low, &mut high);
        assert_eq!(&data[..16], &low[..]);
        assert_eq!(&data[16..], &high[..]);

        lifter.inverse_in_place(&mut data, &mut scratch);
        assert_eq!(data, input);
    }

    #[test]
    #[should_panic(expected = "even length")]
    fn odd_length_panics() {
        HaarLifter.forward(&[1, 2, 3], &mut [0; 2], &mut [0; 2]);
    }
}

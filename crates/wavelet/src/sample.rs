//! Width-generic coefficient samples.
//!
//! The paper fixes its datapath at 8-bit pixels whose exact Haar
//! coefficients need 16 bits ([`crate::Coeff`]). Related workloads need a
//! wider word: the integral-image engine of Ehsan et al. buffers row
//! prefix sums that grow to `255 × W` (21 bits at `W = 2048`), and the
//! bilateral-grid accumulators widen similarly (see `PAPERS.md`). The
//! [`Sample`] trait abstracts the coefficient width so the lifting
//! kernels, the NBits/BitMap column codec and the SWAR hot paths are
//! written once and instantiated at both widths.
//!
//! The trait is **sealed**: exactly two instances exist, `i16` (the
//! paper's datapath, 4 lanes per `u64`) and `i32` (the wide datapath,
//! 2 lanes per `u64`). Every lane constant is chosen so the generic SWAR
//! formulas in [`crate::swar`] specialize, at `S = i16`, to bit-identical
//! twins of the original fixed-width kernels — the conformance corpus
//! pins that the i16 path did not move.

mod sealed {
    /// Seals [`super::Sample`]: the codec layers are validated for exactly
    /// these widths, and the SWAR lane algebra assumes `64 % BITS == 0`.
    pub trait Sealed {}
    impl Sealed for i16 {}
    impl Sealed for i32 {}
}

/// A two's-complement coefficient word the datapath can carry.
///
/// Exposes the width (`BITS`), widening conversions, wrapping/saturating
/// lifting arithmetic, the sign-XOR magnitude the NBits scan is built on,
/// and the SWAR lane metadata (`LANES` lanes of `LANE_BITS` bits per
/// `u64`, with per-lane sign/low/one masks).
pub trait Sample:
    sealed::Sealed
    + Copy
    + Ord
    + Eq
    + Default
    + core::fmt::Debug
    + core::fmt::Display
    + Send
    + Sync
    + 'static
{
    /// Two's-complement width of the sample (16 or 32).
    const BITS: u32;
    /// SWAR lanes per `u64` word (`64 / BITS`).
    const LANES: usize;
    /// Bits per SWAR lane (equal to [`Sample::BITS`]).
    const LANE_BITS: u32;
    /// Per-lane sign-bit mask (bit `BITS − 1` of every lane).
    const SIGN_MASK: u64;
    /// Per-lane mask of every bit below the sign bit.
    const LOW_MASK: u64;
    /// The value 1 in every lane.
    const LANE_ONE: u64;
    /// All ones in lane 0, zero elsewhere (the lane-fold mask).
    const LANE0_MASK: u64;
    /// Width of the NBits management field for this sample width. The
    /// field stores `nbits − 1`, so 4 bits cover widths 1..=16 and the
    /// wide instance needs 5 bits for widths 1..=32.
    const NBITS_FIELD_BITS: u32;
    /// Additive identity.
    const ZERO: Self;
    /// Most negative representable sample.
    const MIN: Self;
    /// Most positive representable sample.
    const MAX: Self;

    /// Widen an input pixel into a sample (always exact: pixels are u8).
    fn from_pixel(p: u8) -> Self;
    /// Widen to `i64` (always exact).
    fn to_i64(self) -> i64;
    /// Narrow from `i64`.
    ///
    /// # Panics
    ///
    /// Panics (debug) when `v` does not fit the sample width.
    fn from_i64(v: i64) -> Self;
    /// Wrapping addition (the SWAR lane semantics).
    fn wrapping_add(self, rhs: Self) -> Self;
    /// Wrapping subtraction (the SWAR lane semantics).
    fn wrapping_sub(self, rhs: Self) -> Self;
    /// Saturating addition (the clamping datapath modes).
    fn saturating_add(self, rhs: Self) -> Self;
    /// Saturating subtraction (the clamping datapath modes).
    fn saturating_sub(self, rhs: Self) -> Self;
    /// Checked addition, `None` on overflow (the headroom proofs).
    fn checked_add(self, rhs: Self) -> Option<Self>;
    /// Checked subtraction, `None` on overflow (the headroom proofs).
    fn checked_sub(self, rhs: Self) -> Option<Self>;
    /// Arithmetic shift right by one — the paper's divide-by-two.
    fn asr1(self) -> Self;
    /// Absolute value, with the native overflow semantics at `MIN`
    /// (mirrors the scalar significance filter exactly).
    fn abs_val(self) -> Self;
    /// Sign-XOR magnitude, zero-extended: `v` for `v ≥ 0`, `!v` for
    /// `v < 0` — the XOR stage of the paper's Figure 7 NBits circuit.
    fn magnitude(self) -> u64;
    /// The sample's two's-complement bits, zero-extended to `u64`.
    fn to_raw(self) -> u64;
    /// Reinterpret the low `BITS` bits of `raw` as a sample.
    fn from_raw(raw: u64) -> Self;

    /// Minimum two's-complement width representing the sample
    /// (the width-generic twin of [`crate::Coeff`]'s `min_bits`).
    #[inline]
    fn min_bits(self) -> u32 {
        65 - self.magnitude().leading_zeros().min(64)
    }
}

impl Sample for i16 {
    const BITS: u32 = 16;
    const LANES: usize = 4;
    const LANE_BITS: u32 = 16;
    const SIGN_MASK: u64 = 0x8000_8000_8000_8000;
    const LOW_MASK: u64 = 0x7fff_7fff_7fff_7fff;
    const LANE_ONE: u64 = 0x0001_0001_0001_0001;
    const LANE0_MASK: u64 = 0xffff;
    const NBITS_FIELD_BITS: u32 = 4;
    const ZERO: Self = 0;
    const MIN: Self = i16::MIN;
    const MAX: Self = i16::MAX;

    #[inline]
    fn from_pixel(p: u8) -> Self {
        p as i16
    }
    #[inline]
    fn to_i64(self) -> i64 {
        self as i64
    }
    #[inline]
    fn from_i64(v: i64) -> Self {
        debug_assert!(
            (i16::MIN as i64..=i16::MAX as i64).contains(&v),
            "{v} does not fit in i16"
        );
        v as i16
    }
    #[inline]
    fn wrapping_add(self, rhs: Self) -> Self {
        i16::wrapping_add(self, rhs)
    }
    #[inline]
    fn wrapping_sub(self, rhs: Self) -> Self {
        i16::wrapping_sub(self, rhs)
    }
    #[inline]
    fn saturating_add(self, rhs: Self) -> Self {
        i16::saturating_add(self, rhs)
    }
    #[inline]
    fn saturating_sub(self, rhs: Self) -> Self {
        i16::saturating_sub(self, rhs)
    }
    #[inline]
    fn checked_add(self, rhs: Self) -> Option<Self> {
        i16::checked_add(self, rhs)
    }
    #[inline]
    fn checked_sub(self, rhs: Self) -> Option<Self> {
        i16::checked_sub(self, rhs)
    }
    #[inline]
    fn asr1(self) -> Self {
        self >> 1
    }
    #[inline]
    fn abs_val(self) -> Self {
        self.abs()
    }
    #[inline]
    fn magnitude(self) -> u64 {
        (if self < 0 { !self } else { self }) as u16 as u64
    }
    #[inline]
    fn to_raw(self) -> u64 {
        self as u16 as u64
    }
    #[inline]
    fn from_raw(raw: u64) -> Self {
        raw as u16 as i16
    }
}

impl Sample for i32 {
    const BITS: u32 = 32;
    const LANES: usize = 2;
    const LANE_BITS: u32 = 32;
    const SIGN_MASK: u64 = 0x8000_0000_8000_0000;
    const LOW_MASK: u64 = 0x7fff_ffff_7fff_ffff;
    const LANE_ONE: u64 = 0x0000_0001_0000_0001;
    const LANE0_MASK: u64 = 0xffff_ffff;
    const NBITS_FIELD_BITS: u32 = 5;
    const ZERO: Self = 0;
    const MIN: Self = i32::MIN;
    const MAX: Self = i32::MAX;

    #[inline]
    fn from_pixel(p: u8) -> Self {
        p as i32
    }
    #[inline]
    fn to_i64(self) -> i64 {
        self as i64
    }
    #[inline]
    fn from_i64(v: i64) -> Self {
        debug_assert!(
            (i32::MIN as i64..=i32::MAX as i64).contains(&v),
            "{v} does not fit in i32"
        );
        v as i32
    }
    #[inline]
    fn wrapping_add(self, rhs: Self) -> Self {
        i32::wrapping_add(self, rhs)
    }
    #[inline]
    fn wrapping_sub(self, rhs: Self) -> Self {
        i32::wrapping_sub(self, rhs)
    }
    #[inline]
    fn saturating_add(self, rhs: Self) -> Self {
        i32::saturating_add(self, rhs)
    }
    #[inline]
    fn saturating_sub(self, rhs: Self) -> Self {
        i32::saturating_sub(self, rhs)
    }
    #[inline]
    fn checked_add(self, rhs: Self) -> Option<Self> {
        i32::checked_add(self, rhs)
    }
    #[inline]
    fn checked_sub(self, rhs: Self) -> Option<Self> {
        i32::checked_sub(self, rhs)
    }
    #[inline]
    fn asr1(self) -> Self {
        self >> 1
    }
    #[inline]
    fn abs_val(self) -> Self {
        self.abs()
    }
    #[inline]
    fn magnitude(self) -> u64 {
        (if self < 0 { !self } else { self }) as u32 as u64
    }
    #[inline]
    fn to_raw(self) -> u64 {
        self as u32 as u64
    }
    #[inline]
    fn from_raw(raw: u64) -> Self {
        raw as u32 as i32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_constants_tile_the_word() {
        fn check<S: Sample>() {
            assert_eq!(S::LANES as u32 * S::LANE_BITS, 64);
            assert_eq!(S::LANE_BITS, S::BITS);
            // Sign + low masks partition every lane.
            assert_eq!(S::SIGN_MASK & S::LOW_MASK, 0);
            assert_eq!(S::SIGN_MASK | S::LOW_MASK, u64::MAX);
            // The lane-one and lane-0 masks agree with the lane geometry.
            let mut one = 0u64;
            for lane in 0..S::LANES {
                one |= 1u64 << (lane as u32 * S::LANE_BITS);
            }
            assert_eq!(S::LANE_ONE, one);
            assert_eq!(S::LANE0_MASK, u64::MAX >> (64 - S::LANE_BITS));
            // The NBits field must index every width 1..=BITS as nbits−1.
            assert!(S::BITS <= 1 << S::NBITS_FIELD_BITS);
            assert!(S::BITS > 1 << (S::NBITS_FIELD_BITS - 1));
        }
        check::<i16>();
        check::<i32>();
    }

    #[test]
    fn raw_roundtrip_and_magnitude_agree_across_widths() {
        fn check<S: Sample>(values: &[i64]) {
            for &v in values {
                let s = S::from_i64(v);
                assert_eq!(S::from_raw(s.to_raw()), s, "raw roundtrip {v}");
                assert_eq!(s.to_i64(), v, "widen {v}");
                let mag = if v < 0 { !v as u64 } else { v as u64 };
                assert_eq!(s.magnitude(), mag & (u64::MAX >> (64 - S::BITS)));
            }
        }
        check::<i16>(&[0, 1, -1, 255, -256, 32767, -32768]);
        check::<i32>(&[0, 1, -1, 65535, -65536, i32::MAX as i64, i32::MIN as i64]);
    }

    #[test]
    fn min_bits_matches_width_boundaries_for_both_instances() {
        // 2^(b−1) − 1 and −2^(b−1) are the extreme b-bit values.
        for b in 2..=16u32 {
            let hi = (1i64 << (b - 1)) - 1;
            let lo = -(1i64 << (b - 1));
            assert_eq!(<i16 as Sample>::from_i64(hi).min_bits(), b);
            assert_eq!(<i16 as Sample>::from_i64(lo).min_bits(), b);
        }
        for b in 2..=32u32 {
            let hi = (1i64 << (b - 1)) - 1;
            let lo = -(1i64 << (b - 1));
            assert_eq!(<i32 as Sample>::from_i64(hi).min_bits(), b);
            assert_eq!(<i32 as Sample>::from_i64(lo).min_bits(), b);
        }
        assert_eq!(<i16 as Sample>::ZERO.min_bits(), 1);
        assert_eq!(<i32 as Sample>::from_i64(-1).min_bits(), 1);
    }
}

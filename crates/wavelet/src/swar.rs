//! u64 bit-sliced (SWAR) lifting kernels — the wide-word twin of the scalar
//! 1-D blocks in [`crate::haar`] and [`crate::legall`].
//!
//! The paper's register model (Figures 5–6) packs coefficients into
//! fixed-width lanes so one hardware word carries several samples. These
//! kernels do the same in software, generically over the [`Sample`]
//! width: four 16-bit lanes per `u64` for the paper's datapath, two
//! 32-bit lanes for the wide (integral-image) instance, with carry
//! propagation masked at lane boundaries so a single integer add/subtract
//! performs [`Sample::LANES`] independent operations.
//!
//! Every kernel is **bit-identical** to its scalar twin under wrapping
//! semantics (and therefore to release-mode scalar code on all inputs, and
//! to debug-mode scalar code on the codec's bounded coefficient domain).
//! The `hot_path_equivalence` test battery and the conformance corpus pin
//! this equivalence; the i16 entry points below are the width-specialized
//! faces of the generic kernels and did not change behaviour.

use crate::sample::Sample;
use crate::Coeff;

/// Load [`Sample::LANES`] consecutive samples into one word, lane 0 in
/// the low bits.
#[inline]
pub fn load_lanes<S: Sample>(s: &[S]) -> u64 {
    let mut w = 0u64;
    for (lane, &v) in s[..S::LANES].iter().enumerate() {
        w |= v.to_raw() << (lane as u32 * S::LANE_BITS);
    }
    w
}

/// Store [`Sample::LANES`] lanes to consecutive samples.
#[inline]
pub fn store_lanes<S: Sample>(w: u64, d: &mut [S]) {
    for (lane, v) in d[..S::LANES].iter_mut().enumerate() {
        *v = S::from_raw(w >> (lane as u32 * S::LANE_BITS));
    }
}

/// [`Sample::LANES`] independent wrapping lane additions in one word.
///
/// Carries are confined to their lane: the low bits add with the sign
/// bits masked off, then the sign bits are recombined by XOR (a
/// half-adder at the lane's top bit, which is exactly wrapping
/// addition's top bit).
#[inline]
pub fn lanes_add<S: Sample>(x: u64, y: u64) -> u64 {
    ((x & S::LOW_MASK) + (y & S::LOW_MASK)) ^ ((x ^ y) & S::SIGN_MASK)
}

/// [`Sample::LANES`] independent wrapping lane subtractions (`x − y`).
#[inline]
pub fn lanes_sub<S: Sample>(x: u64, y: u64) -> u64 {
    ((x | S::SIGN_MASK) - (y & S::LOW_MASK)) ^ ((x ^ !y) & S::SIGN_MASK)
}

/// Per-lane arithmetic shift right by one (the paper's divide-by-two).
#[inline]
pub fn lanes_asr1<S: Sample>(x: u64) -> u64 {
    ((x >> 1) & S::LOW_MASK) | (x & S::SIGN_MASK)
}

/// Per-lane `floor((a + b) / 2)`, overflow-free: the exact average always
/// fits the lane even when `a + b` would not.
#[inline]
pub fn lanes_avg_floor<S: Sample>(a: u64, b: u64) -> u64 {
    lanes_add::<S>(a & b, lanes_asr1::<S>(a ^ b))
}

/// Element-wise forward Haar lifting over sample slices of any width:
/// for every `k`, `low[k] = x1[k] + ((x0[k] − x1[k]) >> 1)` and
/// `high[k] = x0[k] − x1[k]` under wrapping semantics.
/// [`Sample::LANES`] lanes per step, scalar wrapping tail.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn haar_fwd_slices_of<S: Sample>(x0: &[S], x1: &[S], low: &mut [S], high: &mut [S]) {
    let n = x0.len();
    assert!(
        x1.len() == n && low.len() == n && high.len() == n,
        "slice length mismatch"
    );
    let mut k = 0;
    while k + S::LANES <= n {
        let a = load_lanes(&x0[k..]);
        let b = load_lanes(&x1[k..]);
        let h = lanes_sub::<S>(a, b);
        let l = lanes_add::<S>(b, lanes_asr1::<S>(h));
        store_lanes(l, &mut low[k..]);
        store_lanes(h, &mut high[k..]);
        k += S::LANES;
    }
    while k < n {
        let h = x0[k].wrapping_sub(x1[k]);
        low[k] = x1[k].wrapping_add(h.asr1());
        high[k] = h;
        k += 1;
    }
}

/// Element-wise inverse Haar lifting over sample slices of any width:
/// the exact inverse of [`haar_fwd_slices_of`] under wrapping semantics.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn haar_inv_slices_of<S: Sample>(low: &[S], high: &[S], x0: &mut [S], x1: &mut [S]) {
    let n = low.len();
    assert!(
        high.len() == n && x0.len() == n && x1.len() == n,
        "slice length mismatch"
    );
    let mut k = 0;
    while k + S::LANES <= n {
        let l = load_lanes(&low[k..]);
        let h = load_lanes(&high[k..]);
        let b = lanes_sub::<S>(l, lanes_asr1::<S>(h));
        let a = lanes_add::<S>(b, h);
        store_lanes(a, &mut x0[k..]);
        store_lanes(b, &mut x1[k..]);
        k += S::LANES;
    }
    while k < n {
        let b = low[k].wrapping_sub(high[k].asr1());
        x0[k] = b.wrapping_add(high[k]);
        x1[k] = b;
        k += 1;
    }
}

/// Element-wise wrapping lane addition over whole slices
/// (`out[k] = a[k] + b[k]`), [`Sample::LANES`] lanes per step — the
/// SWAR form of the integral engine's line reconstruction
/// `II(y) = II(y−1) + rs(y)`.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn add_slices_of<S: Sample>(a: &[S], b: &[S], out: &mut [S]) {
    let n = a.len();
    assert!(b.len() == n && out.len() == n, "slice length mismatch");
    let mut k = 0;
    while k + S::LANES <= n {
        let w = lanes_add::<S>(load_lanes(&a[k..]), load_lanes(&b[k..]));
        store_lanes(w, &mut out[k..]);
        k += S::LANES;
    }
    while k < n {
        out[k] = a[k].wrapping_add(b[k]);
        k += 1;
    }
}

/// Element-wise wrapping lane subtraction over whole slices
/// (`out[k] = a[k] − b[k]`) — the SWAR form of the integral engine's
/// delta-from-previous-line prediction `rs(y) = II(y) − II(y−1)`.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn sub_slices_of<S: Sample>(a: &[S], b: &[S], out: &mut [S]) {
    let n = a.len();
    assert!(b.len() == n && out.len() == n, "slice length mismatch");
    let mut k = 0;
    while k + S::LANES <= n {
        let w = lanes_sub::<S>(load_lanes(&a[k..]), load_lanes(&b[k..]));
        store_lanes(w, &mut out[k..]);
        k += S::LANES;
    }
    while k < n {
        out[k] = a[k].wrapping_sub(b[k]);
        k += 1;
    }
}

/// Load four consecutive coefficients into one word, lane 0 in bits 0..16.
#[inline]
fn load4(s: &[Coeff]) -> u64 {
    (s[0] as u16 as u64)
        | (s[1] as u16 as u64) << 16
        | (s[2] as u16 as u64) << 32
        | (s[3] as u16 as u64) << 48
}

/// Load four even-index coefficients `s[0], s[2], s[4], s[6]`.
#[inline]
fn load4_even(s: &[Coeff]) -> u64 {
    (s[0] as u16 as u64)
        | (s[2] as u16 as u64) << 16
        | (s[4] as u16 as u64) << 32
        | (s[6] as u16 as u64) << 48
}

/// Load four odd-index coefficients `s[1], s[3], s[5], s[7]`.
#[inline]
fn load4_odd(s: &[Coeff]) -> u64 {
    (s[1] as u16 as u64)
        | (s[3] as u16 as u64) << 16
        | (s[5] as u16 as u64) << 32
        | (s[7] as u16 as u64) << 48
}

/// Store four lanes to consecutive coefficients.
#[inline]
fn store4(w: u64, d: &mut [Coeff]) {
    d[0] = w as u16 as Coeff;
    d[1] = (w >> 16) as u16 as Coeff;
    d[2] = (w >> 32) as u16 as Coeff;
    d[3] = (w >> 48) as u16 as Coeff;
}

/// Store four lanes to even-index slots `d[0], d[2], d[4], d[6]`.
#[inline]
fn store4_even(w: u64, d: &mut [Coeff]) {
    d[0] = w as u16 as Coeff;
    d[2] = (w >> 16) as u16 as Coeff;
    d[4] = (w >> 32) as u16 as Coeff;
    d[6] = (w >> 48) as u16 as Coeff;
}

/// Store four lanes to odd-index slots `d[1], d[3], d[5], d[7]`.
#[inline]
fn store4_odd(w: u64, d: &mut [Coeff]) {
    d[1] = w as u16 as Coeff;
    d[3] = (w >> 16) as u16 as Coeff;
    d[5] = (w >> 32) as u16 as Coeff;
    d[7] = (w >> 48) as u16 as Coeff;
}

/// Four independent wrapping 16-bit additions in one word — the i16
/// specialization of [`lanes_add`].
#[inline]
pub fn add16(x: u64, y: u64) -> u64 {
    lanes_add::<Coeff>(x, y)
}

/// Four independent wrapping 16-bit subtractions (`x − y`) in one word —
/// the i16 specialization of [`lanes_sub`].
#[inline]
pub fn sub16(x: u64, y: u64) -> u64 {
    lanes_sub::<Coeff>(x, y)
}

/// Four independent per-lane arithmetic shifts right by one (`>> 1` on i16,
/// the paper's divide-by-two) — the i16 specialization of [`lanes_asr1`].
#[inline]
pub fn asr1(x: u64) -> u64 {
    lanes_asr1::<Coeff>(x)
}

/// Four independent `floor((a + b) / 2)` on i16 lanes, overflow-free: the
/// exact average always fits in i16 even when `a + b` would not.
#[inline]
pub fn avg_floor16(a: u64, b: u64) -> u64 {
    lanes_avg_floor::<Coeff>(a, b)
}

/// Element-wise forward Haar lifting over slices: for every `k`,
/// `(low[k], high[k]) = haar_fwd_pair(x0[k], x1[k])` under wrapping
/// semantics — the i16 specialization of [`haar_fwd_slices_of`].
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn haar_fwd_slices(x0: &[Coeff], x1: &[Coeff], low: &mut [Coeff], high: &mut [Coeff]) {
    haar_fwd_slices_of::<Coeff>(x0, x1, low, high);
}

/// Element-wise inverse Haar lifting: for every `k`,
/// `(x0[k], x1[k]) = haar_inv_pair(low[k], high[k])` under wrapping
/// semantics — the i16 specialization of [`haar_inv_slices_of`].
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn haar_inv_slices(low: &[Coeff], high: &[Coeff], x0: &mut [Coeff], x1: &mut [Coeff]) {
    haar_inv_slices_of::<Coeff>(low, high, x0, x1);
}

/// Forward Haar over an interleaved column: pairs `(column[2k],
/// column[2k+1])` become `(low[k], high[k])`. This is the vertical stage of
/// the 2-D transform, with the deinterleave folded into strided lane loads.
///
/// # Panics
///
/// Panics if `column.len()` is odd or the outputs are shorter than
/// `column.len() / 2`.
pub fn haar_fwd_interleaved(column: &[Coeff], low: &mut [Coeff], high: &mut [Coeff]) {
    assert!(
        column.len().is_multiple_of(2),
        "Haar forward needs an even length"
    );
    let n = column.len() / 2;
    assert!(low.len() >= n && high.len() >= n, "output slices too short");
    let mut k = 0;
    while k + 4 <= n {
        let a = load4_even(&column[2 * k..]);
        let b = load4_odd(&column[2 * k..]);
        let h = sub16(a, b);
        let l = add16(b, asr1(h));
        store4(l, &mut low[k..]);
        store4(h, &mut high[k..]);
        k += 4;
    }
    while k < n {
        let h = column[2 * k].wrapping_sub(column[2 * k + 1]);
        low[k] = column[2 * k + 1].wrapping_add(h >> 1);
        high[k] = h;
        k += 1;
    }
}

/// Inverse of [`haar_fwd_interleaved`]: `(low[k], high[k])` reconstruct
/// `(column[2k], column[2k+1])`.
///
/// # Panics
///
/// Panics on length mismatches.
pub fn haar_inv_interleaved(low: &[Coeff], high: &[Coeff], column: &mut [Coeff]) {
    let n = low.len();
    assert_eq!(high.len(), n, "sub-band length mismatch");
    assert_eq!(column.len(), 2 * n, "output length mismatch");
    let mut k = 0;
    while k + 4 <= n {
        let l = load4(&low[k..]);
        let h = load4(&high[k..]);
        let b = sub16(l, asr1(h));
        let a = add16(b, h);
        store4_even(a, &mut column[2 * k..]);
        store4_odd(b, &mut column[2 * k..]);
        k += 4;
    }
    while k < n {
        let b = low[k].wrapping_sub(high[k] >> 1);
        column[2 * k] = b.wrapping_add(high[k]);
        column[2 * k + 1] = b;
        k += 1;
    }
}

/// Per-lane all-ones constant used by the 5/3 update step.
const ONE: u64 = 0x0001_0001_0001_0001;

/// Bit-sliced forward LeGall 5/3 of an **even-length** signal. Odd lengths
/// delegate to the scalar [`crate::legall::legall53_forward`] (the streaming
/// architecture only ever transforms even window heights).
///
/// The update term `floor((d[k−1] + d[k] + 2) / 4)` decomposes into two
/// overflow-free lane averages: `avg(avg(d[k−1], d[k]), 1)`.
///
/// # Panics
///
/// Panics if `x.len() < 2` or the outputs are too short.
pub fn legall53_fwd_sliced(x: &[Coeff], low: &mut [Coeff], high: &mut [Coeff]) {
    if !x.len().is_multiple_of(2) {
        crate::legall::legall53_forward(x, low, high);
        return;
    }
    assert!(x.len() >= 2, "need length >= 2");
    let hi_n = x.len() / 2;
    assert!(low.len() >= hi_n && high.len() >= hi_n, "outputs too short");
    // Predict step: high[k] = x[2k+1] − floor((x[2k] + x[2k+2]) / 2), the
    // last detail mirroring x[2k+2] → x[2k].
    let mut k = 0;
    // The widest right-neighbour load reads x[2k+8]; valid while k+5 <= hi_n.
    while k + 5 <= hi_n {
        let even = load4_even(&x[2 * k..]);
        let odd = load4_odd(&x[2 * k..]);
        let right = load4_even(&x[2 * k + 2..]);
        store4(sub16(odd, avg_floor16(even, right)), &mut high[k..]);
        k += 4;
    }
    while k < hi_n {
        let left = x[2 * k] as i32;
        let right = if 2 * k + 2 < x.len() {
            x[2 * k + 2] as i32
        } else {
            x[2 * k] as i32
        };
        high[k] = (x[2 * k + 1] as i32).wrapping_sub((left + right) >> 1) as Coeff;
        k += 1;
    }
    // Update step: low[k] = x[2k] + floor((d[k−1] + d[k] + 2) / 4).
    // k = 0 mirrors d[−1] → d[0]; handled scalar so the lane loop can load
    // d[k−1] and d[k] as two contiguous four-lane reads.
    {
        let d0 = high[0] as i32;
        low[0] = (x[0] as i32).wrapping_add((d0 + d0 + 2) >> 2) as Coeff;
    }
    let mut k = 1;
    while k + 4 <= hi_n {
        let even = load4_even(&x[2 * k..]);
        let dm1 = load4(&high[k - 1..]);
        let d = load4(&high[k..]);
        let q = avg_floor16(avg_floor16(dm1, d), ONE);
        store4(add16(even, q), &mut low[k..]);
        k += 4;
    }
    while k < hi_n {
        let dm1 = high[k - 1] as i32;
        let d = high[k] as i32;
        low[k] = (x[2 * k] as i32).wrapping_add((dm1 + d + 2) >> 2) as Coeff;
        k += 1;
    }
}

/// Bit-sliced inverse LeGall 5/3 for the even-length split
/// (`low.len() == high.len()`); the odd split delegates to the scalar
/// [`crate::legall::legall53_inverse`].
///
/// # Panics
///
/// Panics on length mismatches.
pub fn legall53_inv_sliced(low: &[Coeff], high: &[Coeff], x: &mut [Coeff]) {
    if low.len() != high.len() {
        crate::legall::legall53_inverse(low, high, x);
        return;
    }
    let hi_n = high.len();
    assert!(hi_n >= 1, "need length >= 2");
    assert_eq!(x.len(), 2 * hi_n, "output length mismatch");
    // Undo update: x[2k] = low[k] − floor((d[k−1] + d[k] + 2) / 4).
    {
        let d0 = high[0] as i32;
        x[0] = (low[0] as i32).wrapping_sub((d0 + d0 + 2) >> 2) as Coeff;
    }
    let mut k = 1;
    while k + 4 <= hi_n {
        let lo = load4(&low[k..]);
        let dm1 = load4(&high[k - 1..]);
        let d = load4(&high[k..]);
        let q = avg_floor16(avg_floor16(dm1, d), ONE);
        store4_even(sub16(lo, q), &mut x[2 * k..]);
        k += 4;
    }
    while k < hi_n {
        let dm1 = high[k - 1] as i32;
        let d = high[k] as i32;
        x[2 * k] = (low[k] as i32).wrapping_sub((dm1 + d + 2) >> 2) as Coeff;
        k += 1;
    }
    // Undo predict: x[2k+1] = high[k] + floor((x[2k] + x[2k+2]) / 2), the
    // last odd sample mirroring x[2k+2] → x[2k].
    let mut k = 0;
    while k + 5 <= hi_n {
        let left = load4_even(&x[2 * k..]);
        let right = load4_even(&x[2 * k + 2..]);
        let h = load4(&high[k..]);
        store4_odd(add16(h, avg_floor16(left, right)), &mut x[2 * k..]);
        k += 4;
    }
    while k < hi_n {
        let left = x[2 * k] as i32;
        let right = if 2 * k + 2 < x.len() {
            x[2 * k + 2] as i32
        } else {
            x[2 * k] as i32
        };
        x[2 * k + 1] = (high[k] as i32).wrapping_add((left + right) >> 1) as Coeff;
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::haar::haar_fwd_pair;
    use crate::legall::{legall53_forward, legall53_inverse};

    fn xorshift(state: &mut u32) -> u32 {
        *state ^= *state << 13;
        *state ^= *state >> 17;
        *state ^= *state << 5;
        *state
    }

    #[test]
    fn lane_primitives_match_scalar_wrapping_ops() {
        let mut s = 0x1234_5678_u32;
        for _ in 0..2000 {
            let a: [Coeff; 4] = core::array::from_fn(|_| xorshift(&mut s) as u16 as Coeff);
            let b: [Coeff; 4] = core::array::from_fn(|_| xorshift(&mut s) as u16 as Coeff);
            let wa = load4(&a);
            let wb = load4(&b);
            let mut add = [0 as Coeff; 4];
            let mut sub = [0 as Coeff; 4];
            let mut shr = [0 as Coeff; 4];
            let mut avg = [0 as Coeff; 4];
            store4(add16(wa, wb), &mut add);
            store4(sub16(wa, wb), &mut sub);
            store4(asr1(wa), &mut shr);
            store4(avg_floor16(wa, wb), &mut avg);
            for i in 0..4 {
                assert_eq!(add[i], a[i].wrapping_add(b[i]), "add lane {i}");
                assert_eq!(sub[i], a[i].wrapping_sub(b[i]), "sub lane {i}");
                assert_eq!(shr[i], a[i] >> 1, "asr lane {i}");
                let exact = ((a[i] as i32 + b[i] as i32) >> 1) as Coeff;
                assert_eq!(avg[i], exact, "avg lane {i}: {} {}", a[i], b[i]);
            }
        }
    }

    #[test]
    fn wide_lane_primitives_match_scalar_wrapping_ops() {
        // The 2×32-bit instance of the same lane algebra, across the full
        // i32 range including both extremes in both lane positions.
        let mut s = 0x8f3a_11bb_u32;
        let mut rnd = move || xorshift(&mut s) as i32;
        let mut cases: Vec<[i32; 2]> = (0..2000).map(|_| [rnd(), rnd()]).collect();
        cases.push([i32::MIN, i32::MAX]);
        cases.push([i32::MAX, i32::MIN]);
        cases.push([-1, 0]);
        for pair in cases.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            let wa = load_lanes::<i32>(&a);
            let wb = load_lanes::<i32>(&b);
            let mut add = [0i32; 2];
            let mut sub = [0i32; 2];
            let mut shr = [0i32; 2];
            let mut avg = [0i32; 2];
            store_lanes(lanes_add::<i32>(wa, wb), &mut add);
            store_lanes(lanes_sub::<i32>(wa, wb), &mut sub);
            store_lanes(lanes_asr1::<i32>(wa), &mut shr);
            store_lanes(lanes_avg_floor::<i32>(wa, wb), &mut avg);
            for i in 0..2 {
                assert_eq!(add[i], a[i].wrapping_add(b[i]), "add lane {i}");
                assert_eq!(sub[i], a[i].wrapping_sub(b[i]), "sub lane {i}");
                assert_eq!(shr[i], a[i] >> 1, "asr lane {i}");
                let exact = ((a[i] as i64 + b[i] as i64) >> 1) as i32;
                assert_eq!(avg[i], exact, "avg lane {i}: {} {}", a[i], b[i]);
            }
        }
    }

    #[test]
    fn wide_haar_slices_roundtrip_at_prefix_sum_magnitudes() {
        // The wide instance carries integral-image prefix sums (≤ 255·W,
        // 21 bits at W = 2048); the generic lifting must round-trip there
        // and at the i32 extremes under wrapping semantics.
        let mut s = 0x77aa_00ff_u32;
        for len in [0usize, 1, 2, 3, 5, 8, 17, 64] {
            let mut x0: Vec<i32> = (0..len)
                .map(|_| {
                    s ^= s << 13;
                    s ^= s >> 17;
                    s ^= s << 5;
                    (s % 522_240) as i32
                })
                .collect();
            let x1: Vec<i32> = (0..len)
                .map(|_| {
                    s ^= s << 13;
                    s ^= s >> 17;
                    s ^= s << 5;
                    (s % 522_240) as i32
                })
                .collect();
            if len > 2 {
                x0[0] = i32::MIN;
                x0[1] = i32::MAX;
            }
            let mut low = vec![0i32; len];
            let mut high = vec![0i32; len];
            haar_fwd_slices_of::<i32>(&x0, &x1, &mut low, &mut high);
            for k in 0..len {
                let h = x0[k].wrapping_sub(x1[k]);
                let l = x1[k].wrapping_add(h >> 1);
                assert_eq!((low[k], high[k]), (l, h), "fwd k={k}");
            }
            let mut r0 = vec![0i32; len];
            let mut r1 = vec![0i32; len];
            haar_inv_slices_of::<i32>(&low, &high, &mut r0, &mut r1);
            assert_eq!(r0, x0, "inverse x0");
            assert_eq!(r1, x1, "inverse x1");
        }
    }

    #[test]
    fn slice_add_sub_match_scalar_for_both_widths() {
        fn check<S: crate::sample::Sample>(vals: &[i64]) {
            let a: Vec<S> = vals.iter().map(|&v| S::from_raw(v as u64)).collect();
            let b: Vec<S> = vals.iter().rev().map(|&v| S::from_raw(v as u64)).collect();
            let mut sum = vec![S::ZERO; a.len()];
            let mut diff = vec![S::ZERO; a.len()];
            add_slices_of::<S>(&a, &b, &mut sum);
            sub_slices_of::<S>(&a, &b, &mut diff);
            for k in 0..a.len() {
                assert_eq!(sum[k], a[k].wrapping_add(b[k]), "add k={k}");
                assert_eq!(diff[k], a[k].wrapping_sub(b[k]), "sub k={k}");
            }
        }
        let vals: Vec<i64> = (0..23)
            .map(|i| (i * 0x9e37_79b9_7f4a) ^ (i << 40))
            .collect();
        check::<i16>(&vals);
        check::<i32>(&vals);
    }

    #[test]
    fn haar_slices_match_scalar_pairs_including_extremes() {
        let mut s = 0xabcd_ef01_u32;
        for len in [0usize, 1, 3, 4, 5, 8, 13, 32] {
            let mut x0: Vec<Coeff> = (0..len).map(|_| xorshift(&mut s) as u16 as Coeff).collect();
            let x1: Vec<Coeff> = (0..len).map(|_| xorshift(&mut s) as u16 as Coeff).collect();
            if len > 2 {
                x0[0] = Coeff::MIN;
                x0[1] = Coeff::MAX;
            }
            let mut low = vec![0; len];
            let mut high = vec![0; len];
            haar_fwd_slices(&x0, &x1, &mut low, &mut high);
            for k in 0..len {
                let h = x0[k].wrapping_sub(x1[k]);
                let l = x1[k].wrapping_add(h >> 1);
                assert_eq!((low[k], high[k]), (l, h), "fwd k={k}");
            }
            let mut r0 = vec![0; len];
            let mut r1 = vec![0; len];
            haar_inv_slices(&low, &high, &mut r0, &mut r1);
            assert_eq!(r0, x0, "inverse x0");
            assert_eq!(r1, x1, "inverse x1");
        }
    }

    #[test]
    fn interleaved_forms_match_pair_walk() {
        let mut s = 0x0bad_cafe_u32;
        for n in [2usize, 4, 6, 8, 10, 16, 64] {
            let col: Vec<Coeff> = (0..n).map(|_| (xorshift(&mut s) % 256) as Coeff).collect();
            let half = n / 2;
            let mut low = vec![0; half];
            let mut high = vec![0; half];
            haar_fwd_interleaved(&col, &mut low, &mut high);
            for k in 0..half {
                assert_eq!(
                    (low[k], high[k]),
                    haar_fwd_pair(col[2 * k], col[2 * k + 1]),
                    "k={k}"
                );
            }
            let mut back = vec![0; n];
            haar_inv_interleaved(&low, &high, &mut back);
            assert_eq!(back, col);
        }
    }

    #[test]
    fn legall_sliced_matches_scalar_on_all_lengths() {
        let mut s = 0x5eed_1337_u32;
        for len in [2usize, 3, 4, 5, 7, 8, 9, 10, 16, 33, 64, 127, 128] {
            let x: Vec<Coeff> = (0..len).map(|_| xorshift(&mut s) as u16 as Coeff).collect();
            let lo_n = len.div_ceil(2);
            let hi_n = len / 2;
            let mut low_s = vec![0; lo_n];
            let mut high_s = vec![0; hi_n];
            legall53_forward(&x, &mut low_s, &mut high_s);
            let mut low_v = vec![0; lo_n];
            let mut high_v = vec![0; hi_n];
            legall53_fwd_sliced(&x, &mut low_v, &mut high_v);
            assert_eq!(low_v, low_s, "low len={len}");
            assert_eq!(high_v, high_s, "high len={len}");

            let mut out_s = vec![0; len];
            legall53_inverse(&low_s, &high_s, &mut out_s);
            let mut out_v = vec![0; len];
            legall53_inv_sliced(&low_v, &high_v, &mut out_v);
            assert_eq!(out_v, out_s, "inverse len={len}");
            assert_eq!(out_v, x, "roundtrip len={len}");
        }
    }

    #[test]
    fn legall_sliced_handles_i16_extremes() {
        for len in [2usize, 8, 16, 18] {
            for pattern in [
                vec![Coeff::MAX; len],
                vec![Coeff::MIN; len],
                (0..len)
                    .map(|i| if i % 2 == 0 { Coeff::MAX } else { Coeff::MIN })
                    .collect::<Vec<_>>(),
            ] {
                let half = len / 2;
                let mut low_s = vec![0; half];
                let mut high_s = vec![0; half];
                legall53_forward(&pattern, &mut low_s, &mut high_s);
                let mut low_v = vec![0; half];
                let mut high_v = vec![0; half];
                legall53_fwd_sliced(&pattern, &mut low_v, &mut high_v);
                assert_eq!((low_v, high_v), (low_s, high_s), "len={len}");
            }
        }
    }
}

//! Multi-level 2-D Haar decomposition.
//!
//! The paper settled on a **single** decomposition level: "adding more levels
//! complicates the architecture ... using 2 or 3 levels of decomposition did
//! not increase the compression ratio significantly" (Section IV-C). This
//! module implements the 1-, 2- and 3-level decompositions so the ablation
//! benchmark (experiment E15) can reproduce that design-space measurement.

use crate::haar2d::{forward_image, inverse_image};
use crate::subband::{SubBand, SubbandPlanes};
use crate::Coeff;

/// One level of detail planes (the LL plane recurses into the next level).
#[derive(Debug, Clone)]
pub struct DetailLevel {
    /// Plane width in coefficients at this level.
    pub w: usize,
    /// Plane height in coefficients at this level.
    pub h: usize,
    /// Horizontal detail (LH) plane, row-major `w × h`.
    pub lh: Vec<Coeff>,
    /// Vertical detail (HL) plane.
    pub hl: Vec<Coeff>,
    /// Diagonal detail (HH) plane.
    pub hh: Vec<Coeff>,
}

/// A complete `levels`-deep Haar pyramid of an image.
#[derive(Debug, Clone)]
pub struct HaarPyramid {
    /// Original image width.
    pub width: usize,
    /// Original image height.
    pub height: usize,
    /// Detail planes, finest (level 1) first.
    pub details: Vec<DetailLevel>,
    /// Final approximation plane (`width >> levels` × `height >> levels`).
    pub top_ll: Vec<Coeff>,
}

impl HaarPyramid {
    /// Number of decomposition levels.
    pub fn levels(&self) -> usize {
        self.details.len()
    }

    /// Total number of coefficients (equals `width * height`).
    pub fn coeff_count(&self) -> usize {
        self.top_ll.len() + self.details.iter().map(|d| 3 * d.w * d.h).sum::<usize>()
    }
}

/// Decompose `pixels` (`w × h`, row-major) into a `levels`-deep Haar pyramid.
///
/// ```
/// use sw_wavelet::multilevel::{decompose, reconstruct};
/// let img: Vec<i16> = (0..64 * 64).map(|i| (i % 251) as i16).collect();
/// let pyramid = decompose(&img, 64, 64, 3);
/// assert_eq!(pyramid.coeff_count(), 64 * 64); // critically sampled
/// assert_eq!(reconstruct(&pyramid), img);     // exactly reversible
/// ```
///
/// # Panics
///
/// Panics if `levels == 0` or either dimension is not divisible by
/// `2^levels`.
pub fn decompose(pixels: &[Coeff], w: usize, h: usize, levels: usize) -> HaarPyramid {
    assert!(levels >= 1, "need at least one level");
    assert!(
        w.is_multiple_of(1 << levels) && h.is_multiple_of(1 << levels),
        "dimensions must be divisible by 2^levels"
    );
    let mut details = Vec::with_capacity(levels);
    let mut current = pixels.to_vec();
    let (mut cw, mut ch) = (w, h);
    for _ in 0..levels {
        let planes = forward_image(&current, cw, ch);
        details.push(DetailLevel {
            w: planes.w,
            h: planes.h,
            lh: planes.plane(SubBand::LH).to_vec(),
            hl: planes.plane(SubBand::HL).to_vec(),
            hh: planes.plane(SubBand::HH).to_vec(),
        });
        current = planes.plane(SubBand::LL).to_vec();
        cw /= 2;
        ch /= 2;
    }
    HaarPyramid {
        width: w,
        height: h,
        details,
        top_ll: current,
    }
}

/// Exact inverse of [`decompose`].
pub fn reconstruct(pyr: &HaarPyramid) -> Vec<Coeff> {
    let mut current = pyr.top_ll.clone();
    for level in pyr.details.iter().rev() {
        let mut planes = SubbandPlanes::new(level.w, level.h);
        planes.plane_mut(SubBand::LL).copy_from_slice(&current);
        planes.plane_mut(SubBand::LH).copy_from_slice(&level.lh);
        planes.plane_mut(SubBand::HL).copy_from_slice(&level.hl);
        planes.plane_mut(SubBand::HH).copy_from_slice(&level.hh);
        current = inverse_image(&planes);
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_image(w: usize, h: usize) -> Vec<Coeff> {
        (0..w * h)
            .map(|i| {
                let (x, y) = (i % w, i / w);
                ((x * 3 + y * 7) % 256) as Coeff
            })
            .collect()
    }

    #[test]
    fn one_level_matches_single_forward() {
        let (w, h) = (16, 16);
        let img = test_image(w, h);
        let pyr = decompose(&img, w, h, 1);
        let planes = forward_image(&img, w, h);
        assert_eq!(pyr.top_ll, planes.plane(SubBand::LL));
        assert_eq!(pyr.details[0].hh, planes.plane(SubBand::HH));
    }

    #[test]
    fn roundtrip_levels_1_2_3() {
        let (w, h) = (64, 32);
        let img = test_image(w, h);
        for levels in 1..=3 {
            let pyr = decompose(&img, w, h, levels);
            assert_eq!(pyr.levels(), levels);
            assert_eq!(pyr.coeff_count(), w * h, "pyramid is critically sampled");
            assert_eq!(reconstruct(&pyr), img, "levels={levels}");
        }
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn rejects_indivisible_dimensions() {
        decompose(&test_image(12, 12), 12, 12, 3);
    }
}

//! LeGall 5/3 reversible integer wavelet (the JPEG 2000 lossless filter).
//!
//! The paper rejects 5/3 (and 9/7) in favour of Haar because the longer
//! filters complicate the column-streaming hardware without improving the
//! compression ratio enough (Section IV-C). This module exists so the
//! ablation benchmark (`sw-bench --bin ablations`, experiment E16) can put a
//! number on that claim: it computes the same sub-band statistics with 5/3
//! so the two transforms' packed-bit totals can be compared on the same
//! images.
//!
//! Lifting form (symmetric half-sample extension at the borders):
//!
//! ```text
//! d[k] = x[2k+1] − floor((x[2k] + x[2k+2]) / 2)
//! s[k] = x[2k]   + floor((d[k−1] + d[k] + 2) / 4)
//! ```

use crate::subband::{SubBand, SubbandPlanes};
use crate::Coeff;

#[inline]
fn ext(x: &[Coeff], i: isize) -> Coeff {
    // Symmetric (mirror, non-repeating edge) extension: ... x2 x1 | x0 x1 x2 ...
    let n = x.len() as isize;
    let j = if i < 0 {
        -i
    } else if i >= n {
        2 * n - 2 - i
    } else {
        i
    };
    x[j as usize]
}

/// Forward 1-D 5/3 transform of a signal of any length ≥ 2.
///
/// Writes `ceil(len/2)` approximation coefficients into `low` and
/// `floor(len/2)` detail coefficients into `high` (the JPEG 2000 odd-length
/// split: the extra sample lands in the approximation band). Detail indices
/// past the end of the shorter detail array mirror symmetrically, matching
/// the whole-sample extension `ext` applies to the signal itself.
///
/// # Panics
///
/// Panics if `x.len() < 2` or the outputs are too short.
pub fn legall53_forward(x: &[Coeff], low: &mut [Coeff], high: &mut [Coeff]) {
    assert!(x.len() >= 2, "need length >= 2");
    let lo_n = x.len().div_ceil(2);
    let hi_n = x.len() / 2;
    assert!(low.len() >= lo_n && high.len() >= hi_n, "outputs too short");
    // Predict step (details).
    for k in 0..hi_n {
        let left = x[2 * k] as i32;
        let right = ext(x, 2 * k as isize + 2) as i32;
        high[k] = (x[2 * k + 1] as i32 - ((left + right) >> 1)) as Coeff;
    }
    // Update step (approximations). For odd lengths the last even sample
    // has no d[k]; it mirrors d[k−1], consistent with the predict-step
    // extension.
    for k in 0..lo_n {
        let dm1 = if k == 0 {
            high[0]
        } else {
            high[(k - 1).min(hi_n - 1)]
        } as i32;
        let d = high[k.min(hi_n - 1)] as i32;
        low[k] = (x[2 * k] as i32 + ((dm1 + d + 2) >> 2)) as Coeff;
    }
}

/// Exact inverse of [`legall53_forward`].
///
/// Accepts the even-length split (`low.len() == high.len()`) and the
/// odd-length split (`low.len() == high.len() + 1`).
///
/// # Panics
///
/// Panics on length mismatches.
pub fn legall53_inverse(low: &[Coeff], high: &[Coeff], x: &mut [Coeff]) {
    let lo_n = low.len();
    let hi_n = high.len();
    assert!(lo_n == hi_n || lo_n == hi_n + 1, "sub-band length mismatch");
    assert!(hi_n >= 1, "need length >= 2");
    assert_eq!(x.len(), lo_n + hi_n, "output length mismatch");
    // Undo update step.
    for k in 0..lo_n {
        let dm1 = if k == 0 {
            high[0]
        } else {
            high[(k - 1).min(hi_n - 1)]
        } as i32;
        let d = high[k.min(hi_n - 1)] as i32;
        x[2 * k] = (low[k] as i32 - ((dm1 + d + 2) >> 2)) as Coeff;
    }
    // Undo predict step (even samples are now final).
    for k in 0..hi_n {
        let left = x[2 * k] as i32;
        let right = if 2 * k + 2 < x.len() {
            x[2 * k + 2]
        } else {
            // mirror extension refers to x[2n-2-i] = x[len-2] = x[2k]
            x[2 * k]
        } as i32;
        x[2 * k + 1] = (high[k] as i32 + ((left + right) >> 1)) as Coeff;
    }
}

/// Whole-image single-level separable 5/3 transform.
///
/// Rows first, then columns; both dimensions must be even. Output planes are
/// quadrants of size `w/2 × h/2`, same layout as
/// [`crate::haar2d::forward_image`].
pub fn legall53_forward_image(pixels: &[Coeff], w: usize, h: usize) -> SubbandPlanes {
    assert_eq!(pixels.len(), w * h, "pixel buffer size mismatch");
    assert!(
        w.is_multiple_of(2) && h.is_multiple_of(2),
        "image dimensions must be even"
    );
    let (pw, ph) = (w / 2, h / 2);

    // Horizontal pass: each row -> [low | high].
    let mut inter = vec![0 as Coeff; w * h];
    let mut low = vec![0 as Coeff; pw.max(ph)];
    let mut high = vec![0 as Coeff; pw.max(ph)];
    for y in 0..h {
        let row = &pixels[y * w..(y + 1) * w];
        legall53_forward(row, &mut low, &mut high);
        inter[y * w..y * w + pw].copy_from_slice(&low[..pw]);
        inter[y * w + pw..(y + 1) * w].copy_from_slice(&high[..pw]);
    }

    // Vertical pass: each column -> planes.
    let mut planes = SubbandPlanes::new(pw, ph);
    let mut col = vec![0 as Coeff; h];
    for x in 0..w {
        for (y, c) in col.iter_mut().enumerate() {
            *c = inter[y * w + x];
        }
        legall53_forward(&col, &mut low, &mut high);
        let (horiz_band_lo, horiz_band_hi, px) = if x < pw {
            (SubBand::LL, SubBand::HL, x)
        } else {
            (SubBand::LH, SubBand::HH, x - pw)
        };
        for y in 0..ph {
            planes.set(horiz_band_lo, px, y, low[y]);
            planes.set(horiz_band_hi, px, y, high[y]);
        }
    }
    planes
}

/// Exact inverse of [`legall53_forward_image`].
pub fn legall53_inverse_image(planes: &SubbandPlanes) -> Vec<Coeff> {
    let (pw, ph) = (planes.w, planes.h);
    let (w, h) = (pw * 2, ph * 2);

    // Undo vertical pass.
    let mut inter = vec![0 as Coeff; w * h];
    let mut low = vec![0 as Coeff; ph];
    let mut high = vec![0 as Coeff; ph];
    let mut col = vec![0 as Coeff; h];
    for x in 0..w {
        let (band_lo, band_hi, px) = if x < pw {
            (SubBand::LL, SubBand::HL, x)
        } else {
            (SubBand::LH, SubBand::HH, x - pw)
        };
        for y in 0..ph {
            low[y] = planes.get(band_lo, px, y);
            high[y] = planes.get(band_hi, px, y);
        }
        legall53_inverse(&low, &high, &mut col);
        for (y, &c) in col.iter().enumerate() {
            inter[y * w + x] = c;
        }
    }

    // Undo horizontal pass.
    let mut pixels = vec![0 as Coeff; w * h];
    let mut lo = vec![0 as Coeff; pw];
    let mut hi = vec![0 as Coeff; pw];
    for y in 0..h {
        lo.copy_from_slice(&inter[y * w..y * w + pw]);
        hi.copy_from_slice(&inter[y * w + pw..(y + 1) * w]);
        legall53_inverse(&lo, &hi, &mut pixels[y * w..(y + 1) * w]);
    }
    pixels
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_dim_roundtrip() {
        let x: Vec<Coeff> = (0..64).map(|i| ((i * 97 + 13) % 256) as Coeff).collect();
        let mut low = vec![0; 32];
        let mut high = vec![0; 32];
        legall53_forward(&x, &mut low, &mut high);
        let mut out = vec![0; 64];
        legall53_inverse(&low, &high, &mut out);
        assert_eq!(out, x);
    }

    #[test]
    fn one_dim_roundtrip_short_signals() {
        for len in [2usize, 4, 6, 8] {
            let x: Vec<Coeff> = (0..len).map(|i| (i as Coeff * 51) % 200 - 100).collect();
            let mut low = vec![0; len / 2];
            let mut high = vec![0; len / 2];
            legall53_forward(&x, &mut low, &mut high);
            let mut out = vec![0; len];
            legall53_inverse(&low, &high, &mut out);
            assert_eq!(out, x, "len {len}");
        }
    }

    #[test]
    fn one_dim_roundtrip_odd_lengths() {
        for len in [3usize, 5, 7, 9, 33, 127] {
            let x: Vec<Coeff> = (0..len).map(|i| (i as Coeff * 73) % 256 - 128).collect();
            let mut low = vec![0; len.div_ceil(2)];
            let mut high = vec![0; len / 2];
            legall53_forward(&x, &mut low, &mut high);
            let mut out = vec![0; len];
            legall53_inverse(&low, &high, &mut out);
            assert_eq!(out, x, "len {len}");
        }
    }

    #[test]
    fn one_dim_roundtrip_i16_extremes() {
        // Intermediate arithmetic runs in i32 and wraps consistently on the
        // cast back to i16, so reconstruction stays exact even at the type
        // extremes — including odd lengths.
        for len in [2usize, 3, 8, 9] {
            for pattern in [
                vec![i16::MAX; len],
                vec![i16::MIN; len],
                (0..len)
                    .map(|i| if i % 2 == 0 { i16::MAX } else { i16::MIN })
                    .collect::<Vec<_>>(),
            ] {
                let mut low = vec![0; len.div_ceil(2)];
                let mut high = vec![0; len / 2];
                legall53_forward(&pattern, &mut low, &mut high);
                let mut out = vec![0; len];
                legall53_inverse(&low, &high, &mut out);
                assert_eq!(out, pattern, "len {len}");
            }
        }
    }

    #[test]
    fn smooth_ramp_has_tiny_details() {
        // A linear ramp is perfectly predicted by the 5/3 filter: details
        // should be 0 or ±1 (edge effects only).
        let x: Vec<Coeff> = (0..128).map(|i| i as Coeff).collect();
        let mut low = vec![0; 64];
        let mut high = vec![0; 64];
        legall53_forward(&x, &mut low, &mut high);
        assert!(high.iter().all(|d| d.abs() <= 1), "details {high:?}");
    }

    #[test]
    fn image_roundtrip() {
        let (w, h) = (24, 16);
        let pixels: Vec<Coeff> = (0..w * h).map(|i| ((i * 53 + 11) % 256) as Coeff).collect();
        let planes = legall53_forward_image(&pixels, w, h);
        assert_eq!(legall53_inverse_image(&planes), pixels);
    }

    #[test]
    fn flat_image_has_zero_details() {
        let planes = legall53_forward_image(&vec![100; 16 * 16], 16, 16);
        for band in [SubBand::LH, SubBand::HL, SubBand::HH] {
            assert_eq!(planes.max_abs(band), 0);
        }
        assert!(planes.plane(SubBand::LL).iter().all(|&c| c == 100));
    }
}

//! Sub-band naming and plane bookkeeping for 2-D decompositions.

use crate::Coeff;

/// The four sub-bands of a single-level 2-D wavelet decomposition.
///
/// Naming follows the paper (Section IV-A): the first letter is the vertical
/// filter, the second the horizontal filter applied to a 2×2 pixel block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SubBand {
    /// Approximation (low/low) — carries most of the image energy.
    LL,
    /// Horizontal details (low vertical, high horizontal).
    LH,
    /// Vertical details (high vertical, low horizontal).
    HL,
    /// Diagonal details (high/high).
    HH,
}

impl SubBand {
    /// All four sub-bands in canonical order `[LL, LH, HL, HH]`.
    pub const ALL: [SubBand; 4] = [SubBand::LL, SubBand::LH, SubBand::HL, SubBand::HH];

    /// Whether this is a detail (high-frequency) sub-band.
    ///
    /// The default threshold policy of the compression algorithm only zeroes
    /// coefficients in detail sub-bands (see `sw-core`).
    #[inline]
    pub fn is_detail(self) -> bool {
        !matches!(self, SubBand::LL)
    }

    /// Stable index 0..4 for array-indexed per-sub-band accounting.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            SubBand::LL => 0,
            SubBand::LH => 1,
            SubBand::HL => 2,
            SubBand::HH => 3,
        }
    }

    /// Short display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            SubBand::LL => "LL",
            SubBand::LH => "LH",
            SubBand::HL => "HL",
            SubBand::HH => "HH",
        }
    }
}

impl std::fmt::Display for SubBand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Dense storage for the four sub-band planes of one decomposition level.
///
/// Each plane is `w × h` coefficients stored row-major. For a single-level
/// decomposition of a `2w × 2h` image, each plane is a quadrant of the
/// classic wavelet layout (paper Figure 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubbandPlanes {
    /// Plane width in coefficients.
    pub w: usize,
    /// Plane height in coefficients.
    pub h: usize,
    planes: [Vec<Coeff>; 4],
}

impl SubbandPlanes {
    /// Allocate zeroed planes of `w × h` coefficients each.
    pub fn new(w: usize, h: usize) -> Self {
        Self {
            w,
            h,
            planes: std::array::from_fn(|_| vec![0; w * h]),
        }
    }

    /// Immutable view of one sub-band plane (row-major, `w × h`).
    #[inline]
    pub fn plane(&self, band: SubBand) -> &[Coeff] {
        &self.planes[band.index()]
    }

    /// Mutable view of one sub-band plane.
    #[inline]
    pub fn plane_mut(&mut self, band: SubBand) -> &mut [Coeff] {
        &mut self.planes[band.index()]
    }

    /// Coefficient accessor.
    #[inline]
    pub fn get(&self, band: SubBand, x: usize, y: usize) -> Coeff {
        debug_assert!(x < self.w && y < self.h);
        self.planes[band.index()][y * self.w + x]
    }

    /// Coefficient setter.
    #[inline]
    pub fn set(&mut self, band: SubBand, x: usize, y: usize, v: Coeff) {
        debug_assert!(x < self.w && y < self.h);
        self.planes[band.index()][y * self.w + x] = v;
    }

    /// Maximum absolute coefficient value in one sub-band (0 for empty).
    pub fn max_abs(&self, band: SubBand) -> Coeff {
        self.plane(band)
            .iter()
            .map(|c| c.unsigned_abs() as Coeff)
            .max()
            .unwrap_or(0)
    }

    /// Count of coefficients in `band` with magnitude below `threshold`.
    pub fn count_below(&self, band: SubBand, threshold: Coeff) -> usize {
        self.plane(band)
            .iter()
            .filter(|c| c.abs() < threshold)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_indices_are_distinct_and_ordered() {
        let idx: Vec<usize> = SubBand::ALL.iter().map(|b| b.index()).collect();
        assert_eq!(idx, vec![0, 1, 2, 3]);
    }

    #[test]
    fn only_ll_is_not_detail() {
        assert!(!SubBand::LL.is_detail());
        assert!(SubBand::LH.is_detail());
        assert!(SubBand::HL.is_detail());
        assert!(SubBand::HH.is_detail());
    }

    #[test]
    fn planes_store_and_report_stats() {
        let mut p = SubbandPlanes::new(4, 2);
        p.set(SubBand::HH, 3, 1, -9);
        p.set(SubBand::HH, 0, 0, 4);
        assert_eq!(p.get(SubBand::HH, 3, 1), -9);
        assert_eq!(p.max_abs(SubBand::HH), 9);
        assert_eq!(p.max_abs(SubBand::LL), 0);
        // 7 coefficients are 0 or 4 < 5... |4| < 5 and six zeros: 7 below.
        assert_eq!(p.count_below(SubBand::HH, 5), 7);
    }

    #[test]
    fn display_names() {
        assert_eq!(SubBand::LL.to_string(), "LL");
        assert_eq!(SubBand::HH.to_string(), "HH");
    }
}

//! Integer wavelet transforms for the modified sliding window architecture.
//!
//! This crate implements the transform substrate of
//! *"A Modified Sliding Window Architecture for Efficient BRAM Resource
//! Utilization"* (Qasaimeh, Zambreno, Jones — IPDPS RAW 2017):
//!
//! * the **integer Haar wavelet transform** (also known as the S-transform),
//!   which the paper's IWT / IIWT hardware blocks compute (Section V-A / V-D,
//!   Figures 5 and 10). The transform is exactly reversible over the integers,
//!   which is what makes the paper's *lossless* compression mode possible.
//! * the **LeGall 5/3 integer wavelet**, which the paper mentions as a rejected
//!   design alternative ("We also chose the Haar wavelet transform instead of
//!   other transformations like 5/3 and 7/9 for the same reasons"). It is
//!   implemented here so the ablation benchmark can quantify that choice.
//! * **multi-level** 2-D decompositions, which the paper evaluated and
//!   rejected ("using 2 or 3 levels of decomposition did not increase the
//!   compression ratio significantly") — again reproduced as an ablation.
//!
//! # Conventions
//!
//! Coefficients are carried as [`Coeff`] (`i16`). The paper treats
//! coefficients as 8-bit values, but for 8-bit input pixels the Haar high-pass
//! output spans ±255 (9 bits) and a second horizontal stage applied to
//! high-pass values spans ±510 (10 bits); `i16` is the smallest integer type
//! that makes the lossless path *actually* lossless for arbitrary inputs.
//! See `DESIGN.md` ("Coefficient width") for the full discussion.
//!
//! All division by two inside the lifting steps is the **arithmetic shift
//! right** (`>> 1`, i.e. floor division), exactly matching the paper's
//! hardware which implements `/2` "as a shift right by 1".
//!
//! # Paper erratum
//!
//! The paper's inverse equations (3)–(4) read
//! `X(i,j+1) = H(i,j)/2 − L(i,j)`, which negates the reconstruction and does
//! not invert equations (1)–(2). This crate implements the algebraically
//! correct S-transform inverse (`X2 = L − (H >> 1)`, `X1 = X2 + H`); the
//! property tests in this crate prove exact round-trips over the full input
//! range.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod haar;
pub mod haar2d;
pub mod legall;
pub mod multilevel;
pub mod sample;
pub mod subband;
pub mod swar;

pub use haar::{haar_fwd_pair, haar_inv_pair, HaarLifter};
pub use haar2d::{
    haar2d_fwd_quad, haar2d_inv_quad, ColumnPairInverse, ColumnPairTransformer, Quad,
};
pub use sample::Sample;
pub use subband::{SubBand, SubbandPlanes};

/// Integer type carrying wavelet coefficients.
///
/// Wide enough for two cascaded Haar lifting stages applied to `u8` pixels
/// (worst case ±510, 10 bits two's complement) with ample headroom for the
/// multi-level ablations.
pub type Coeff = i16;

/// Integer type carrying input pixels (the paper uses 8-bit gray pixels).
pub type Pixel = u8;

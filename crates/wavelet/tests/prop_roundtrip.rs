//! Property tests: every transform in the crate is exactly reversible over
//! its full supported input range — the precondition for the paper's
//! "lossless" compression mode to be genuinely lossless.

use proptest::collection::vec;
use proptest::prelude::*;
use sw_wavelet::haar::HaarLifter;
use sw_wavelet::haar2d::{
    forward_image, haar2d_fwd_quad, haar2d_inv_quad, inverse_image, ColumnPairInverse,
    ColumnPairTransformer,
};
use sw_wavelet::legall::{legall53_forward, legall53_inverse};
use sw_wavelet::multilevel::{decompose, reconstruct};
use sw_wavelet::{haar_fwd_pair, haar_inv_pair, Coeff};

proptest! {
    #[test]
    fn haar_pair_roundtrip_full_i16_safe_range(a in -8192i16..8192, b in -8192i16..8192) {
        let (l, h) = haar_fwd_pair(a, b);
        prop_assert_eq!(haar_inv_pair(l, h), (a, b));
    }

    #[test]
    fn haar_pair_low_is_floor_mean(a in -8192i16..8192, b in -8192i16..8192) {
        let (l, _) = haar_fwd_pair(a, b);
        prop_assert_eq!(l as i32, (a as i32 + b as i32).div_euclid(2));
    }

    #[test]
    fn haar_slice_roundtrip(data in vec(-4096i16..4096, 2..256).prop_map(|mut v| {
        if v.len() % 2 == 1 { v.pop(); }
        v
    })) {
        prop_assume!(!data.is_empty());
        let lifter = HaarLifter;
        let half = data.len() / 2;
        let mut low = vec![0 as Coeff; half];
        let mut high = vec![0 as Coeff; half];
        lifter.forward(&data, &mut low, &mut high);
        let mut out = vec![0 as Coeff; data.len()];
        lifter.inverse(&low, &high, &mut out);
        prop_assert_eq!(out, data);
    }

    #[test]
    fn quad_roundtrip_u8_range(a in 0i16..256, b in 0i16..256, c in 0i16..256, d in 0i16..256) {
        let q = haar2d_fwd_quad(a, b, c, d);
        prop_assert_eq!(haar2d_inv_quad(q), (a, b, c, d));
        // LL stays inside the pixel range for u8 inputs.
        prop_assert!((0..256).contains(&q.ll));
        prop_assert!(q.hh.abs() <= 510);
    }

    #[test]
    fn streaming_column_pairs_roundtrip(
        n in (1usize..9).prop_map(|k| k * 2),
        ncols in (1usize..13).prop_map(|k| k * 2),
        seed in any::<u32>(),
    ) {
        let columns: Vec<Vec<Coeff>> = (0..ncols)
            .map(|c| (0..n).map(|r| {
                // Cheap deterministic pseudo-pixels from the seed.
                let v = seed
                    .wrapping_mul(2654435761)
                    .wrapping_add((c * 131 + r * 31) as u32);
                (v >> 8 & 0xff) as Coeff
            }).collect())
            .collect();
        let mut fwd = ColumnPairTransformer::new(n);
        let mut inv = ColumnPairInverse::new(n);
        let mut out = Vec::new();
        for col in &columns {
            if let Some(pair) = fwd.push_column(col) {
                prop_assert!(inv.push_column(pair.even).is_none());
                let (c0, c1) = inv.push_column(pair.odd).unwrap();
                out.push(c0);
                out.push(c1);
            }
        }
        prop_assert_eq!(out, columns);
    }

    #[test]
    fn image_roundtrip(
        w in (2usize..17).prop_map(|k| k * 2),
        h in (2usize..17).prop_map(|k| k * 2),
        seed in any::<u32>(),
    ) {
        let pixels: Vec<Coeff> = (0..w * h)
            .map(|i| ((seed as usize).wrapping_mul(97).wrapping_add(i * 41) % 256) as Coeff)
            .collect();
        let planes = forward_image(&pixels, w, h);
        prop_assert_eq!(inverse_image(&planes), pixels);
    }

    #[test]
    fn legall53_roundtrip(data in vec(0i16..256, 1..128).prop_map(|mut v| {
        if v.len() % 2 == 1 { v.push(0); }
        v
    })) {
        let half = data.len() / 2;
        let mut low = vec![0 as Coeff; half];
        let mut high = vec![0 as Coeff; half];
        legall53_forward(&data, &mut low, &mut high);
        let mut out = vec![0 as Coeff; data.len()];
        legall53_inverse(&low, &high, &mut out);
        prop_assert_eq!(out, data);
    }

    #[test]
    fn legall53_roundtrip_odd_lengths(data in vec(0i16..256, 3..129).prop_map(|mut v| {
        if v.len() % 2 == 0 { v.pop(); }
        v
    })) {
        // Odd lengths take the JPEG 2000 split: the extra sample lands in
        // the approximation band and the last detail index mirrors.
        let (lo_n, hi_n) = (data.len().div_ceil(2), data.len() / 2);
        let mut low = vec![0 as Coeff; lo_n];
        let mut high = vec![0 as Coeff; hi_n];
        legall53_forward(&data, &mut low, &mut high);
        let mut out = vec![0 as Coeff; data.len()];
        legall53_inverse(&low, &high, &mut out);
        prop_assert_eq!(out, data);
    }

    #[test]
    fn legall53_roundtrip_full_i16_range_any_length(
        data in vec(any::<i16>(), 2..129),
    ) {
        // Perfect reconstruction must hold over the whole coefficient type,
        // not just pixel values: lifting runs in i32 and wraps consistently
        // on the cast back, so even i16::MIN/MAX alternations roundtrip.
        let (lo_n, hi_n) = (data.len().div_ceil(2), data.len() / 2);
        let mut low = vec![0 as Coeff; lo_n];
        let mut high = vec![0 as Coeff; hi_n];
        legall53_forward(&data, &mut low, &mut high);
        let mut out = vec![0 as Coeff; data.len()];
        legall53_inverse(&low, &high, &mut out);
        prop_assert_eq!(out, data);
    }

    #[test]
    fn multilevel_roundtrip(
        seed in any::<u32>(),
        levels in 1usize..4,
    ) {
        let (w, h) = (32usize, 32usize);
        let pixels: Vec<Coeff> = (0..w * h)
            .map(|i| ((seed as usize).wrapping_add(i * 73) % 256) as Coeff)
            .collect();
        let pyr = decompose(&pixels, w, h, levels);
        prop_assert_eq!(reconstruct(&pyr), pixels);
    }
}

//! CLI argument-error handling of the bench binaries: malformed
//! `--telemetry-out` / `--jobs` must produce a friendly diagnostic and a
//! non-zero exit, never a panic. These paths run before any dataset work,
//! so each invocation returns instantly.

use std::process::{Command, Output};

fn run_fig13(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_fig13"))
        .args(args)
        .output()
        .expect("launch fig13")
}

fn assert_friendly_failure(out: &Output, expect: &str) {
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "expected failure, got {out:?}");
    assert!(
        stderr.contains(expect),
        "stderr should mention {expect:?}: {stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "must be a friendly error, not a panic: {stderr}"
    );
}

#[test]
fn telemetry_out_without_a_value_is_a_friendly_error() {
    let out = run_fig13(&["--quick", "--telemetry-out"]);
    assert_friendly_failure(&out, "--telemetry-out needs a file path");
}

#[test]
fn telemetry_out_swallowing_the_next_flag_is_rejected() {
    let out = run_fig13(&["--telemetry-out", "--quick"]);
    assert_friendly_failure(&out, "--telemetry-out needs a file path");
}

#[test]
fn jobs_zero_is_a_friendly_error() {
    let out = run_fig13(&["--quick", "--jobs", "0"]);
    assert_friendly_failure(&out, "at least 1");
}

#[test]
fn jobs_non_numeric_is_a_friendly_error() {
    let out = run_fig13(&["--quick", "--jobs", "fast"]);
    assert_friendly_failure(&out, "positive integer");
}

#[test]
fn jobs_without_a_value_is_a_friendly_error() {
    let out = run_fig13(&["--quick", "--jobs"]);
    assert_friendly_failure(&out, "--jobs needs a value");
}

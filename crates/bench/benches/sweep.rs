//! Criterion: the end-to-end evaluation sweep cost — scene rendering and a
//! full Figure 13 row (all thresholds at one window size) at a reduced
//! resolution, so harness regressions are caught by `cargo bench`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sw_bench::{analyze_dataset, savings_summary, scene_images};
use sw_core::config::ThresholdPolicy;
use sw_image::ScenePreset;

fn bench_scene_render(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataset");
    group.sample_size(10);
    group.throughput(Throughput::Elements((256 * 256) as u64));
    group.bench_function("render_one_scene_256", |b| {
        b.iter(|| ScenePreset::ALL[0].render(256, 256))
    });
    group.finish();
}

fn bench_fig13_row(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13_row");
    group.sample_size(10);
    let images = scene_images(256, 256, 10);
    group.bench_function("window16_all_thresholds_10scenes_256", |b| {
        b.iter(|| {
            [0i16, 2, 4, 6]
                .iter()
                .map(|&t| {
                    let analyses = analyze_dataset(&images, 16, t, ThresholdPolicy::DetailsOnly);
                    savings_summary(&analyses).expect("non-empty dataset").mean
                })
                .sum::<f64>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_scene_render, bench_fig13_row);
criterion_main!(benches);

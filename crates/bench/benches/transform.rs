//! Criterion: integer wavelet transform throughput (the IWT/IIWT blocks'
//! software cost; the hardware runs one column per clock at 592 MHz).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sw_wavelet::haar2d::{forward_image, inverse_image, ColumnPairInverse, ColumnPairTransformer};
use sw_wavelet::Coeff;

fn column_data(n: usize, cols: usize) -> Vec<Vec<Coeff>> {
    (0..cols)
        .map(|c| (0..n).map(|r| ((r * 31 + c * 97) % 256) as Coeff).collect())
        .collect()
}

fn bench_column_stream(c: &mut Criterion) {
    let mut group = c.benchmark_group("haar_column_stream");
    for n in [8usize, 32, 128] {
        let cols = column_data(n, 512);
        group.throughput(Throughput::Elements((512 * n) as u64));
        group.bench_with_input(BenchmarkId::new("forward", n), &cols, |b, cols| {
            b.iter(|| {
                let mut fwd = ColumnPairTransformer::new(n);
                let mut acc = 0i64;
                for col in cols {
                    if let Some(pair) = fwd.push_column(col) {
                        acc += pair.even.coeffs[0] as i64;
                    }
                }
                acc
            })
        });
        group.bench_with_input(BenchmarkId::new("roundtrip", n), &cols, |b, cols| {
            b.iter(|| {
                let mut fwd = ColumnPairTransformer::new(n);
                let mut inv = ColumnPairInverse::new(n);
                let mut acc = 0i64;
                for col in cols {
                    if let Some(pair) = fwd.push_column(col) {
                        inv.push_column(pair.even);
                        let (c0, c1) = inv.push_column(pair.odd).unwrap();
                        acc += c0[0] as i64 + c1[0] as i64;
                    }
                }
                acc
            })
        });
    }
    group.finish();
}

fn bench_image_transform(c: &mut Criterion) {
    let mut group = c.benchmark_group("haar_image");
    let (w, h) = (512usize, 512usize);
    let pixels: Vec<Coeff> = (0..w * h).map(|i| ((i * 131) % 256) as Coeff).collect();
    group.throughput(Throughput::Elements((w * h) as u64));
    group.bench_function("forward_512", |b| b.iter(|| forward_image(&pixels, w, h)));
    let planes = forward_image(&pixels, w, h);
    group.bench_function("inverse_512", |b| b.iter(|| inverse_image(&planes)));
    group.finish();
}

criterion_group!(benches, bench_column_stream, bench_image_transform);
criterion_main!(benches);

//! Criterion: full-architecture throughput (experiment E14).
//!
//! The paper's claim is *hardware* throughput parity — both architectures
//! consume one pixel per clock (verified by cycle counts in the test
//! suite). This bench reports the *simulation* cost side by side: the
//! compressed model does the real compression work per pixel, so its
//! software slowdown factor is also a proxy for the paper's LUT overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sw_core::compressed::CompressedSlidingWindow;
use sw_core::config::ArchConfig;
use sw_core::kernels::{BoxFilter, Tap};
use sw_core::traditional::TraditionalSlidingWindow;
use sw_image::ScenePreset;

fn bench_architectures(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame_throughput");
    group.sample_size(20);
    let img = ScenePreset::ALL[0].render(256, 256);
    for n in [8usize, 32] {
        let cfg = ArchConfig::new(n, img.width());
        group.throughput(Throughput::Elements((img.width() * img.height()) as u64));
        group.bench_with_input(BenchmarkId::new("traditional", n), &img, |b, img| {
            let kernel = Tap::top_left(n);
            let mut arch = TraditionalSlidingWindow::new(cfg);
            b.iter(|| arch.process_frame(img, &kernel).stats.cycles)
        });
        group.bench_with_input(BenchmarkId::new("compressed_lossless", n), &img, |b, img| {
            let kernel = Tap::top_left(n);
            let mut arch = CompressedSlidingWindow::new(cfg);
            b.iter(|| arch.process_frame(img, &kernel).stats.cycles)
        });
        group.bench_with_input(BenchmarkId::new("compressed_t4", n), &img, |b, img| {
            let kernel = Tap::top_left(n);
            let mut arch = CompressedSlidingWindow::new(cfg.with_threshold(4));
            b.iter(|| arch.process_frame(img, &kernel).stats.cycles)
        });
    }
    group.finish();
}

fn bench_kernel_cost(c: &mut Criterion) {
    // Kernel cost is identical across architectures; measure it separately
    // so the architecture numbers above can be read as pure buffering cost.
    let mut group = c.benchmark_group("kernel_cost");
    group.sample_size(20);
    let img = ScenePreset::ALL[0].render(256, 256);
    let cfg = ArchConfig::new(8, img.width());
    group.throughput(Throughput::Elements((img.width() * img.height()) as u64));
    group.bench_function("box_8_traditional", |b| {
        let kernel = BoxFilter::new(8);
        let mut arch = TraditionalSlidingWindow::new(cfg);
        b.iter(|| arch.process_frame(&img, &kernel).stats.cycles)
    });
    group.finish();
}

criterion_group!(benches, bench_architectures, bench_kernel_cost);
criterion_main!(benches);

//! Criterion: full-architecture throughput (experiment E14).
//!
//! The paper's claim is *hardware* throughput parity — both architectures
//! consume one pixel per clock (verified by cycle counts in the test
//! suite). This bench reports the *simulation* cost side by side: the
//! compressed model does the real compression work per pixel, so its
//! software slowdown factor is also a proxy for the paper's LUT overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sw_core::compressed::CompressedSlidingWindow;
use sw_core::config::ArchConfig;
use sw_core::kernels::{BoxFilter, Tap};
use sw_core::shard::ShardedFrameRunner;
use sw_core::traditional::TraditionalSlidingWindow;
use sw_image::ScenePreset;
use sw_pool::ThreadPool;
use sw_telemetry::TelemetryHandle;

fn bench_architectures(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame_throughput");
    group.sample_size(20);
    let img = ScenePreset::ALL[0].render(256, 256);
    for n in [8usize, 32] {
        let cfg = ArchConfig::builder(n, img.width()).build().unwrap();
        group.throughput(Throughput::Elements((img.width() * img.height()) as u64));
        group.bench_with_input(BenchmarkId::new("traditional", n), &img, |b, img| {
            let kernel = Tap::top_left(n);
            let mut arch = TraditionalSlidingWindow::new(cfg);
            b.iter(|| arch.process_frame(img, &kernel).unwrap().stats.cycles)
        });
        group.bench_with_input(
            BenchmarkId::new("compressed_lossless", n),
            &img,
            |b, img| {
                let kernel = Tap::top_left(n);
                let mut arch = CompressedSlidingWindow::new(cfg);
                b.iter(|| arch.process_frame(img, &kernel).unwrap().stats.cycles)
            },
        );
        group.bench_with_input(BenchmarkId::new("compressed_t4", n), &img, |b, img| {
            let kernel = Tap::top_left(n);
            let mut arch = CompressedSlidingWindow::new(cfg.with_threshold(4));
            b.iter(|| arch.process_frame(img, &kernel).unwrap().stats.cycles)
        });
    }
    group.finish();
}

fn bench_kernel_cost(c: &mut Criterion) {
    // Kernel cost is identical across architectures; measure it separately
    // so the architecture numbers above can be read as pure buffering cost.
    let mut group = c.benchmark_group("kernel_cost");
    group.sample_size(20);
    let img = ScenePreset::ALL[0].render(256, 256);
    let cfg = ArchConfig::builder(8, img.width()).build().unwrap();
    group.throughput(Throughput::Elements((img.width() * img.height()) as u64));
    group.bench_function("box_8_traditional", |b| {
        let kernel = BoxFilter::new(8);
        let mut arch = TraditionalSlidingWindow::new(cfg);
        b.iter(|| arch.process_frame(&img, &kernel).unwrap().stats.cycles)
    });
    group.finish();
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    // Acceptance check for the observability layer: with telemetry disabled
    // (the default — every instrument is a no-op) the datapath must run
    // within ~2 % of a build that never heard of telemetry; the three cases
    // below make the cost visible. "unbound" is the plain constructor,
    // "disabled" binds instruments from a disabled handle, "enabled" pays
    // the full atomic-counter + histogram + trace-ring price.
    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(20);
    let img = ScenePreset::ALL[0].render(256, 256);
    let cfg = ArchConfig::builder(8, img.width())
        .threshold(4)
        .build()
        .unwrap();
    group.throughput(Throughput::Elements((img.width() * img.height()) as u64));
    group.bench_function("unbound", |b| {
        let kernel = Tap::top_left(8);
        let mut arch = CompressedSlidingWindow::new(cfg);
        b.iter(|| arch.process_frame(&img, &kernel).unwrap().stats.cycles)
    });
    group.bench_function("disabled_handle", |b| {
        let kernel = Tap::top_left(8);
        let mut arch =
            CompressedSlidingWindow::new(cfg).with_telemetry(&TelemetryHandle::disabled());
        b.iter(|| arch.process_frame(&img, &kernel).unwrap().stats.cycles)
    });
    group.bench_function("enabled_handle", |b| {
        let kernel = Tap::top_left(8);
        let tele = TelemetryHandle::new();
        let mut arch = CompressedSlidingWindow::new(cfg).with_telemetry(&tele);
        b.iter(|| arch.process_frame(&img, &kernel).unwrap().stats.cycles)
    });
    group.finish();
}

fn bench_sharded_vs_sequential(c: &mut Criterion) {
    // Scaling of the halo-sharded frame runner vs the plain sequential
    // architecture. The strip count is fixed (so output is identical in
    // every row of this table); only the pool size varies. jobs=1 exposes
    // the pure sharding overhead (halo rows are recomputed per strip),
    // jobs>1 the parallel speedup available on multi-core hosts.
    let mut group = c.benchmark_group("sharded_vs_sequential");
    group.sample_size(10);
    for size in [512usize, 2048] {
        let img = ScenePreset::ALL[0].render(size, size);
        let cfg = ArchConfig::builder(8, img.width())
            .threshold(4)
            .build()
            .unwrap();
        let kernel = Tap::top_left(8);
        group.throughput(Throughput::Elements((size * size) as u64));
        group.bench_with_input(BenchmarkId::new("sequential", size), &img, |b, img| {
            let mut arch = CompressedSlidingWindow::new(cfg);
            b.iter(|| arch.process_frame(img, &kernel).unwrap().stats.cycles)
        });
        for jobs in [1usize, 2, 4] {
            let pool = ThreadPool::new(jobs);
            let runner = ShardedFrameRunner::new(cfg);
            group.bench_with_input(
                BenchmarkId::new(format!("sharded_jobs{jobs}"), size),
                &img,
                |b, img| b.iter(|| runner.run(img, &kernel, &pool).unwrap().cycles),
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_architectures,
    bench_kernel_cost,
    bench_telemetry_overhead,
    bench_sharded_vs_sequential
);
criterion_main!(benches);

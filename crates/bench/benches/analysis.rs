//! Criterion: frame analyzer cost — what one cell of the Figure 13 /
//! Tables II–V sweep costs, and how it scales with window size (it
//! shouldn't: the analyzer is O(W·H) by design).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sw_core::analysis::{analyze_frame, occupancy_trace};
use sw_core::config::ArchConfig;
use sw_image::ScenePreset;

fn bench_analyzer(c: &mut Criterion) {
    let mut group = c.benchmark_group("analyze_frame");
    group.sample_size(20);
    let img = ScenePreset::ALL[0].render(512, 512);
    group.throughput(Throughput::Elements((512 * 512) as u64));
    for n in [8usize, 64, 128] {
        let cfg = ArchConfig::builder(n, 512).build().unwrap();
        group.bench_with_input(BenchmarkId::new("lossless", n), &img, |b, img| {
            b.iter(|| analyze_frame(img, &cfg).payload_bits())
        });
    }
    let cfg = ArchConfig::builder(64, 512).threshold(6).build().unwrap();
    group.bench_function("lossy_t6_n64", |b| {
        b.iter(|| analyze_frame(&img, &cfg).payload_bits())
    });
    group.finish();
}

fn bench_trace(c: &mut Criterion) {
    let mut group = c.benchmark_group("occupancy_trace");
    group.sample_size(20);
    let img = ScenePreset::ALL[0].render(512, 512);
    let cfg = ArchConfig::builder(64, 512).build().unwrap();
    group.bench_function("fig3_trace", |b| {
        b.iter(|| occupancy_trace(&img, &cfg, 2).len())
    });
    group.finish();
}

criterion_group!(benches, bench_analyzer, bench_trace);
criterion_main!(benches);

//! Criterion: related-work baseline costs — LOCO-I coding throughput (the
//! "state of the art" comparator) and the block-buffering functional model.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sw_core::kernels::BoxFilter;
use sw_image::ScenePreset;
use sw_related::{locoi_decode, locoi_encode, BlockBufferPlan};

fn bench_locoi(c: &mut Criterion) {
    let mut group = c.benchmark_group("locoi");
    group.sample_size(20);
    let img = ScenePreset::ALL[0].render(256, 256);
    group.throughput(Throughput::Elements((256 * 256) as u64));
    group.bench_function("encode_256", |b| b.iter(|| locoi_encode(&img).len()));
    let bytes = locoi_encode(&img);
    group.bench_function("decode_256", |b| {
        b.iter(|| locoi_decode(&bytes, 256, 256).pixels()[0])
    });
    group.finish();
}

fn bench_block_buffer(c: &mut Criterion) {
    let mut group = c.benchmark_group("block_buffer");
    group.sample_size(10);
    let img = ScenePreset::ALL[1].render(256, 128);
    group.throughput(Throughput::Elements((256 * 128) as u64));
    let plan = BlockBufferPlan::new(8, 32, 256, 128);
    let kernel = BoxFilter::new(8);
    group.bench_function("process_frame_b32", |b| {
        b.iter(|| plan.process_frame(&img, &kernel).pixels()[0])
    });
    group.finish();
}

criterion_group!(benches, bench_locoi, bench_block_buffer);
criterion_main!(benches);

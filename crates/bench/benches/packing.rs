//! Criterion: bit packing / unpacking throughput — the column codec (the
//! architecture's per-cycle work) and the register-level hardware models.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sw_bitstream::nbits::min_bits_significant;
use sw_bitstream::{column_cost, decode_column, encode_column, BitPackingUnit, Coeff};

fn columns(n: usize, count: usize) -> Vec<Vec<Coeff>> {
    (0..count)
        .map(|c| {
            (0..n)
                .map(|r| {
                    let v = (r * 37 + c * 11) % 41;
                    (v as i16 - 20) / if r % 3 == 0 { 1 } else { 7 }
                })
                .collect()
        })
        .collect()
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("column_codec");
    for n in [4usize, 16, 64] {
        let cols = columns(n, 256);
        group.throughput(Throughput::Elements((256 * n) as u64));
        group.bench_with_input(BenchmarkId::new("cost_only", n), &cols, |b, cols| {
            b.iter(|| {
                cols.iter()
                    .map(|col| column_cost(col, 0).total_bits())
                    .sum::<u64>()
            })
        });
        group.bench_with_input(BenchmarkId::new("encode", n), &cols, |b, cols| {
            b.iter(|| {
                cols.iter()
                    .map(|col| encode_column(col, 0).payload_bits)
                    .sum::<u64>()
            })
        });
        let encoded: Vec<_> = cols.iter().map(|col| encode_column(col, 0)).collect();
        group.bench_with_input(BenchmarkId::new("decode", n), &encoded, |b, encoded| {
            b.iter(|| {
                encoded
                    .iter()
                    .map(|e| decode_column(e).len())
                    .sum::<usize>()
            })
        });
    }
    group.finish();
}

fn bench_hardware_packer(c: &mut Criterion) {
    let mut group = c.benchmark_group("hw_packer");
    let cols = columns(16, 512);
    group.throughput(Throughput::Elements((512 * 16) as u64));
    group.bench_function("register_model", |b| {
        b.iter(|| {
            let mut packer = BitPackingUnit::new(0);
            let mut bytes = 0usize;
            for col in &cols {
                let nbits = min_bits_significant(col, 0);
                for &x in col {
                    bytes += packer.clock(x, nbits).words.len();
                }
            }
            bytes + packer.flush().map_or(0, |_| 1)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_codec, bench_hardware_packer);
criterion_main!(benches);

//! Plain-text table rendering for the binaries.

/// Render a table with a header row; columns are padded to the widest cell.
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:>w$}", w = w));
        }
        line.push('\n');
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let s = render(
            &["window", "BRAMs"],
            &[
                vec!["8".into(), "2".into()],
                vec!["128".into(), "32".into()],
            ],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "window  BRAMs");
        assert_eq!(lines[2], "     8      2");
        assert_eq!(lines[3], "   128     32");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        render(&["a", "b"], &[vec!["1".into()]]);
    }
}

//! The paper's published numbers, kept verbatim so every binary can print
//! measured-vs-paper side by side (and EXPERIMENTS.md can cite one source
//! of truth).

/// Table I — traditional BRAMs: `[window][width ∈ {512,1024,2048,3840}]`.
pub const TABLE1: [(usize, [u32; 4]); 5] = [
    (8, [8, 8, 8, 16]),
    (16, [16, 16, 16, 32]),
    (32, [32, 32, 32, 64]),
    (64, [64, 64, 64, 128]),
    (128, [128, 128, 128, 256]),
];

/// One row of the paper's Tables II–V: packed-bit BRAMs at T = 0/2/4/6
/// plus management BRAMs.
#[derive(Debug, Clone, Copy)]
pub struct PackedRow {
    /// Window size.
    pub window: usize,
    /// Packed-bit BRAM counts for thresholds 0, 2, 4, 6.
    pub packed: [u32; 4],
    /// Management BRAMs.
    pub mgmt: u32,
}

/// Table II — resolution 512×512.
pub const TABLE2: [PackedRow; 5] = [
    PackedRow {
        window: 8,
        packed: [2, 2, 2, 1],
        mgmt: 2,
    },
    PackedRow {
        window: 16,
        packed: [4, 4, 2, 2],
        mgmt: 2,
    },
    PackedRow {
        window: 32,
        packed: [8, 8, 4, 4],
        mgmt: 2,
    },
    PackedRow {
        window: 64,
        packed: [16, 16, 16, 8],
        mgmt: 3,
    },
    PackedRow {
        window: 128,
        packed: [32, 32, 32, 16],
        mgmt: 5,
    },
];

/// Table III — resolution 1024×1024.
pub const TABLE3: [PackedRow; 5] = [
    PackedRow {
        window: 8,
        packed: [4, 4, 2, 2],
        mgmt: 2,
    },
    PackedRow {
        window: 16,
        packed: [8, 8, 4, 4],
        mgmt: 2,
    },
    PackedRow {
        window: 32,
        packed: [16, 16, 8, 8],
        mgmt: 3,
    },
    PackedRow {
        window: 64,
        packed: [32, 32, 16, 16],
        mgmt: 5,
    },
    PackedRow {
        window: 128,
        packed: [64, 64, 32, 32],
        mgmt: 9,
    },
];

/// Table IV — resolution 2048×2048.
pub const TABLE4: [PackedRow; 5] = [
    PackedRow {
        window: 8,
        packed: [4, 4, 4, 4],
        mgmt: 2,
    },
    PackedRow {
        window: 16,
        packed: [8, 8, 8, 8],
        mgmt: 3,
    },
    PackedRow {
        window: 32,
        packed: [16, 16, 16, 16],
        mgmt: 5,
    },
    PackedRow {
        window: 64,
        packed: [32, 32, 32, 32],
        mgmt: 9,
    },
    PackedRow {
        window: 128,
        packed: [64, 64, 64, 64],
        mgmt: 16,
    },
];

/// Table V — resolution 3840×3840.
pub const TABLE5: [PackedRow; 5] = [
    PackedRow {
        window: 8,
        packed: [8, 8, 8, 8],
        mgmt: 4,
    },
    PackedRow {
        window: 16,
        packed: [16, 16, 16, 16],
        mgmt: 6,
    },
    PackedRow {
        window: 32,
        packed: [32, 32, 32, 32],
        mgmt: 9,
    },
    PackedRow {
        window: 64,
        packed: [64, 64, 64, 64],
        mgmt: 16,
    },
    PackedRow {
        window: 128,
        packed: [128, 128, 128, 128],
        mgmt: 28,
    },
];

/// The paper table for a given width, if published.
pub fn packed_table(width: usize) -> Option<&'static [PackedRow; 5]> {
    match width {
        512 => Some(&TABLE2),
        1024 => Some(&TABLE3),
        2048 => Some(&TABLE4),
        3840 => Some(&TABLE5),
        _ => None,
    }
}

/// MSEs the paper reports for thresholds 2, 4, 6 (Section VI-A).
pub const PAPER_MSE: [(i16, f64); 3] = [(2, 0.59), (4, 3.2), (6, 4.8)];

/// Figure 13 headline bands (Section VI-A prose): lossless saving 26–34 %,
/// T = 6 saving 41–54 % at 2048×2048.
pub const FIG13_LOSSLESS_BAND: (f64, f64) = (26.0, 34.0);
/// See [`FIG13_LOSSLESS_BAND`].
pub const FIG13_T6_BAND: (f64, f64) = (41.0, 54.0);

/// Figure 3 reference points (Section IV-B prose, window 64 @ 512×512):
/// detail sub-bands ≈ 40 Kbit each, LL ≈ 65 Kbit, total ≈ 217 Kbit vs
/// 230 Kbit traditional.
pub const FIG3_DETAIL_KBITS: f64 = 40.0;
/// See [`FIG3_DETAIL_KBITS`].
pub const FIG3_LL_KBITS: f64 = 65.0;
/// See [`FIG3_DETAIL_KBITS`].
pub const FIG3_TOTAL_KBITS: f64 = 217.0;
/// See [`FIG3_DETAIL_KBITS`].
pub const FIG3_TRADITIONAL_KBITS: f64 = 230.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_have_five_rows_each_and_match_table1_windows() {
        for (i, row) in TABLE2.iter().enumerate() {
            assert_eq!(row.window, TABLE1[i].0);
        }
        assert!(packed_table(512).is_some());
        assert!(packed_table(999).is_none());
    }

    #[test]
    fn paper_t0_packed_counts_never_exceed_traditional() {
        // Internal consistency of the transcription: compressed ≤ traditional.
        for (table, width_idx) in [(&TABLE2, 0), (&TABLE3, 1), (&TABLE4, 2), (&TABLE5, 3)] {
            for (row, &(n, trad)) in table.iter().zip(TABLE1.iter()) {
                assert_eq!(row.window, n);
                assert!(row.packed[0] <= trad[width_idx], "N={n}");
            }
        }
    }
}

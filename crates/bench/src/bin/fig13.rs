//! Figure 13 — percentage of memory savings with 90 % confidence
//! intervals, versus window size and threshold, at 2048×2048.
//!
//! ```text
//! cargo run --release -p sw-bench --bin fig13 [--quick] [--telemetry-out <path>]
//! ```

use sw_bench::export::{out_dir_from_args, write_csv, write_svg, ChartMeta, Series};
use sw_bench::table::render;
use sw_bench::{
    analyze_dataset, cli_setup, paper, savings_summary, scene_images, write_telemetry_report,
    Sweep, THRESHOLDS, WINDOWS,
};
use sw_core::config::ThresholdPolicy;

fn main() {
    let (tele, tele_path) = cli_setup();
    let sweep = Sweep::from_args();
    let res = sweep.fig13_resolution;
    eprintln!("rendering {} scenes at {res}x{res}...", sweep.scenes);
    let images = scene_images(res, res, sweep.scenes);

    println!(
        "Figure 13 — memory saving % (mean ± 90% CI over {} scenes) @ {res}x{res}\n",
        sweep.scenes
    );
    let mut rows = Vec::new();
    let mut series: Vec<Series> = THRESHOLDS
        .iter()
        .map(|t| Series {
            name: format!("T={t}"),
            points: Vec::new(),
        })
        .collect();
    let mut lossless_range = (f64::INFINITY, f64::NEG_INFINITY);
    let mut t6_range = (f64::INFINITY, f64::NEG_INFINITY);
    for &n in &WINDOWS {
        if n >= res {
            continue;
        }
        let mut row = vec![n.to_string()];
        for &t in &THRESHOLDS {
            let _span = tele.span(&format!("fig13.n{n}.t{t}"));
            let analyses = analyze_dataset(&images, n, t, ThresholdPolicy::DetailsOnly);
            let s = savings_summary(&analyses).expect("non-empty dataset");
            tele.counter("fig13.frames_analyzed")
                .add(analyses.len() as u64);
            row.push(format!("{:.1} ± {:.1}", s.mean, s.ci90_half_width));
            series[THRESHOLDS.iter().position(|&x| x == t).unwrap()]
                .points
                .push((n as f64, s.mean));
            if t == 0 {
                lossless_range = (lossless_range.0.min(s.mean), lossless_range.1.max(s.mean));
            }
            if t == 6 {
                t6_range = (t6_range.0.min(s.mean), t6_range.1.max(s.mean));
            }
        }
        rows.push(row);
    }
    println!("{}", render(&["window", "T=0", "T=2", "T=4", "T=6"], &rows));

    println!(
        "measured lossless saving range: {:.0}–{:.0}%   (paper: {:.0}–{:.0}%)",
        lossless_range.0,
        lossless_range.1,
        paper::FIG13_LOSSLESS_BAND.0,
        paper::FIG13_LOSSLESS_BAND.1
    );
    println!(
        "measured T=6 saving range:      {:.0}–{:.0}%   (paper: {:.0}–{:.0}%)",
        t6_range.0,
        t6_range.1,
        paper::FIG13_T6_BAND.0,
        paper::FIG13_T6_BAND.1
    );

    if let Some(dir) = out_dir_from_args() {
        let csv = dir.join("fig13.csv");
        let svg = dir.join("fig13.svg");
        write_csv(&csv, &series).expect("write fig13.csv");
        write_svg(
            &svg,
            &ChartMeta {
                title: format!("Figure 13 - memory saving % @ {res}x{res}"),
                x_label: "window size".into(),
                y_label: "saving %".into(),
            },
            &series,
        )
        .expect("write fig13.svg");
        println!("wrote {} and {}", csv.display(), svg.display());
    }
    if let Some(path) = tele_path {
        write_telemetry_report(&tele, &path).expect("write telemetry report");
    }
}

//! Tables I–X regeneration.
//!
//! * Table I — traditional BRAM counts (pure arithmetic).
//! * Tables II–V — compressed BRAM counts at T ∈ {0,2,4,6} plus management
//!   BRAMs, sized from the synthetic dataset's worst-case occupancy.
//! * Tables VI–X — LUT/register/Fmax estimates (calibrated model).
//!
//! ```text
//! cargo run --release -p sw-bench --bin tables [--quick] [--telemetry-out <path>] [table1|table2|...|table10|resources|all]
//! ```

use sw_bench::table::render;
use sw_bench::{
    analyze_dataset, cli_setup, paper, scene_images, worst_occupancy, write_telemetry_report,
    Sweep, THRESHOLDS, WINDOWS,
};
use sw_core::config::ThresholdPolicy;
use sw_core::planner::{plan, traditional_brams, MgmtAccounting};
use sw_fpga::device::Device;
use sw_fpga::resources::{estimate, ModuleKind};

fn main() {
    let (tele, tele_path) = cli_setup();
    let sweep = Sweep::from_args();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which = Vec::new();
    let mut skip_next = false;
    for a in &args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a == "--telemetry-out" {
            skip_next = true;
            continue;
        }
        if a != "--quick" {
            which.push(a.clone());
        }
    }
    let want = |name: &str| {
        which.is_empty()
            || which.iter().any(|w| w == name || w == "all")
            || (name.starts_with("table")
                && which.iter().any(|w| w == "resources")
                && matches!(name, "table6" | "table7" | "table8" | "table9" | "table10"))
    };

    if want("table1") {
        let _span = tele.span("tables.table1");
        table1();
    }
    for (idx, width) in [(2usize, 512usize), (3, 1024), (4, 2048), (5, 3840)] {
        if !want(&format!("table{idx}")) {
            continue;
        }
        if width == 3840 && !sweep.include_3840 {
            println!("(skipping table5 / 3840x3840 in --quick mode)\n");
            continue;
        }
        let _span = tele.span(&format!("tables.table{idx}"));
        packed_table(width, sweep.scenes);
    }
    for (idx, kind) in [
        (6, ModuleKind::ForwardIwt),
        (7, ModuleKind::BitPacking),
        (8, ModuleKind::BitUnpacking),
        (9, ModuleKind::InverseIwt),
        (10, ModuleKind::Overall),
    ] {
        if want(&format!("table{idx}")) {
            let _span = tele.span(&format!("tables.table{idx}"));
            resource_table(idx, kind);
        }
    }
    if let Some(path) = tele_path {
        write_telemetry_report(&tele, &path).expect("write telemetry report");
    }
}

fn table1() {
    println!("Table I — traditional architecture 18Kb BRAMs\n");
    let mut rows = Vec::new();
    for &(n, paper_row) in &paper::TABLE1 {
        let mut row = vec![n.to_string()];
        for (w, &want) in [512usize, 1024, 2048, 3840].iter().zip(&paper_row) {
            let got = traditional_brams(n, *w);
            row.push(if got == want {
                got.to_string()
            } else {
                format!("{got} (paper {want})")
            });
        }
        rows.push(row);
    }
    println!(
        "{}",
        render(&["window", "512", "1024", "2048", "3840"], &rows)
    );
}

fn packed_table(width: usize, scenes: usize) {
    let table_no = match width {
        512 => "II",
        1024 => "III",
        2048 => "IV",
        _ => "V",
    };
    // Table V in the paper uses raw-capacity management accounting; II–IV
    // are structural (see EXPERIMENTS.md).
    let accounting = if width == 3840 {
        MgmtAccounting::PureCapacity
    } else {
        MgmtAccounting::Structured
    };
    eprintln!("rendering {scenes} scenes at {width}x{width}...");
    let images = scene_images(width, width, scenes);
    let paper_rows = paper::packed_table(width);

    println!("Table {table_no} — 18Kb BRAMs @ {width}x{width} (measured | paper)\n");
    let mut rows = Vec::new();
    for (wi, &n) in WINDOWS.iter().enumerate() {
        let mut row = vec![n.to_string()];
        let mut mgmt_cell = String::new();
        for (ti, &t) in THRESHOLDS.iter().enumerate() {
            let analyses = analyze_dataset(&images, n, t, ThresholdPolicy::DetailsOnly);
            let worst = worst_occupancy(&analyses);
            let p = plan(n, width, worst, accounting);
            let paper_val = paper_rows.map(|rs| rs[wi].packed[ti]);
            row.push(match paper_val {
                Some(v) => format!("{}|{v}", p.packed_brams),
                None => p.packed_brams.to_string(),
            });
            if ti == 0 {
                let paper_mgmt = paper_rows.map(|rs| rs[wi].mgmt);
                mgmt_cell = match paper_mgmt {
                    Some(v) => format!("{}|{v}", p.mgmt_brams()),
                    None => p.mgmt_brams().to_string(),
                };
            }
        }
        row.push(mgmt_cell);
        rows.push(row);
    }
    println!(
        "{}",
        render(&["window", "T=0", "T=2", "T=4", "T=6", "mgmt"], &rows)
    );
}

fn resource_table(idx: usize, kind: ModuleKind) {
    let roman = ["VI", "VII", "VIII", "IX", "X"][idx - 6];
    println!(
        "Table {roman} — {} resources (calibrated to the paper's synthesis)\n",
        kind.name()
    );
    let dev = Device::XC7Z020;
    let mut rows = Vec::new();
    for &n in &WINDOWS {
        let e = estimate(kind, n);
        let (lut_pct, reg_pct) = e.utilization(&dev);
        let fits = e.fits(&dev);
        rows.push(vec![
            n.to_string(),
            if fits || kind != ModuleKind::Overall {
                format!("{} ({lut_pct:.0}%)", e.luts)
            } else {
                format!("{} (exceeds {})", e.luts, dev.name)
            },
            format!("{} ({reg_pct:.0}%)", e.registers),
            format!("{:.1} MHz", e.fmax_mhz),
        ]);
    }
    println!(
        "{}",
        render(&["window", "LUTs", "registers", "Fmax"], &rows)
    );
}

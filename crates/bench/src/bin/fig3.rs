//! Figure 3 — memory required to buffer image rows, per sub-band, as a
//! 64×64 window slides across a 512×512 image (lossless).
//!
//! ```text
//! cargo run --release -p sw-bench --bin fig3 [--quick]
//! ```

use sw_bench::export::{out_dir_from_args, write_csv, write_svg, ChartMeta, Series};
use sw_bench::paper;
use sw_bench::table::render;
use sw_core::analysis::occupancy_trace;
use sw_core::config::ArchConfig;
use sw_image::ScenePreset;

fn main() {
    let n = 64;
    let res = 512;
    let img = ScenePreset::ALL[0].render(res, res);
    let cfg = ArchConfig::builder(n, res)
        .build()
        .expect("figure 3 config is valid");

    // Middle strip, as a representative row position.
    let strip = (res / n) / 2;
    let trace = occupancy_trace(&img, &cfg, strip);

    println!(
        "Figure 3 — buffered bits per sub-band, window {n} @ {res}x{res} (scene: {})\n",
        ScenePreset::ALL[0].name
    );
    let mut rows = Vec::new();
    for (x, s) in trace.iter().enumerate().step_by(32) {
        let [ll, lh, hl, hh] = s.per_band_bits;
        rows.push(vec![
            x.to_string(),
            format!("{:.1}", ll as f64 / 1024.0),
            format!("{:.1}", lh as f64 / 1024.0),
            format!("{:.1}", hl as f64 / 1024.0),
            format!("{:.1}", hh as f64 / 1024.0),
            format!("{:.1}", s.total_bits() as f64 / 1024.0),
        ]);
    }
    println!(
        "{}",
        render(
            &[
                "position",
                "LL Kbit",
                "LH Kbit",
                "HL Kbit",
                "HH Kbit",
                "total Kbit"
            ],
            &rows
        )
    );

    // Peaks, as the paper quotes them.
    let peak = |f: &dyn Fn(&sw_core::analysis::OccupancySample) -> u64| {
        trace.iter().map(f).max().unwrap() as f64 / 1024.0
    };
    let ll = peak(&|s| s.per_band_bits[0]);
    let lh = peak(&|s| s.per_band_bits[1]);
    let hl = peak(&|s| s.per_band_bits[2]);
    let hh = peak(&|s| s.per_band_bits[3]);
    let total = peak(&|s| s.total_bits());
    let traditional = (cfg.fifo_depth() * n * 8) as f64 / 1024.0;

    println!("peaks (Kbit):            measured   paper");
    println!(
        "  LL                     {ll:>8.1}   ~{:.0}",
        paper::FIG3_LL_KBITS
    );
    println!(
        "  details (LH/HL/HH)     {:>8.1}   ~{:.0} each",
        (lh + hl + hh) / 3.0,
        paper::FIG3_DETAIL_KBITS
    );
    println!(
        "  total incl. mgmt       {total:>8.1}   ~{:.0}",
        paper::FIG3_TOTAL_KBITS
    );
    println!(
        "  traditional buffer     {traditional:>8.1}   ~{:.0}",
        paper::FIG3_TRADITIONAL_KBITS
    );
    println!(
        "\nshape check: LL dominates each detail band by {:.1}x (paper: ~2x)",
        ll / ((lh + hl + hh) / 3.0)
    );

    // Optional file export (--out <dir>): CSV series + an SVG rendering of
    // the figure.
    if let Some(dir) = out_dir_from_args() {
        let band = |i: usize| Series {
            name: ["LL", "LH", "HL", "HH"][i].to_string(),
            points: trace
                .iter()
                .enumerate()
                .map(|(x, s)| (x as f64, s.per_band_bits[i] as f64 / 1024.0))
                .collect(),
        };
        let series: Vec<Series> = (0..4).map(band).collect();
        let csv = dir.join("fig3.csv");
        let svg = dir.join("fig3.svg");
        write_csv(&csv, &series).expect("write fig3.csv");
        write_svg(
            &svg,
            &ChartMeta {
                title: format!("Figure 3 - buffered Kbit per sub-band (window {n}, {res}x{res})"),
                x_label: "window position".into(),
                y_label: "Kbit".into(),
            },
            &series,
        )
        .expect("write fig3.svg");
        println!("wrote {} and {}", csv.display(), svg.display());
    }
}

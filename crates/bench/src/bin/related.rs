//! Related-work comparison (paper Section II + contribution 1).
//!
//! Three comparisons on the shared dataset:
//!
//! 1. **Compression ratio vs the state of the art** — the paper claims its
//!    scheme "gives comparable compression ratios to the state of the art
//!    compression algorithms"; we measure it against a LOCO-I / JPEG-LS
//!    style coder.
//! 2. **Block buffering** (refs \[5]\[6]) — on-chip memory vs off-chip
//!    traffic trade-off.
//! 3. **Segmented processing** (ref \[7]) — BRAMs vs re-fetch traffic and
//!    the loss of camera streaming.
//!
//! ```text
//! cargo run --release -p sw-bench --bin related [--quick]
//! ```

use rayon::prelude::*;
use sw_bench::table::render;
use sw_bench::{scene_images, Sweep};
use sw_core::analysis::analyze_frame;
use sw_core::config::ArchConfig;
use sw_core::planner::{plan, traditional_brams, MgmtAccounting};
use sw_core::stats::summarize;
use sw_related::{locoi_compressed_bits, BlockBufferPlan, SegmentedPlan};

fn main() {
    match sw_bench::jobs_from_args() {
        Ok(Some(jobs)) => sw_pool::configure_global(jobs).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        }),
        Ok(None) => {}
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
    let sweep = Sweep::from_args();
    let res = if sweep.scenes >= 10 { 512 } else { 256 };
    eprintln!("rendering {} scenes at {res}x{res}...", sweep.scenes);
    let images = scene_images(res, res, sweep.scenes);

    compression_ratio(&images, res);
    block_buffering(&images, res);
    segmented(&images, res);
}

fn compression_ratio(images: &[(String, sw_image::ImageU8)], res: usize) {
    println!("-- compression ratio: ours (lossless, window 8) vs LOCO-I/JPEG-LS --\n");
    let rows: Vec<(String, f64, f64)> = images
        .par_iter()
        .map(|(name, img)| {
            let cfg = ArchConfig::builder(8, res)
                .build()
                .expect("related-work config is valid");
            let ours = analyze_frame(img, &cfg).bits_per_pixel();
            let loco = locoi_compressed_bits(img) as f64 / (res * res) as f64;
            (name.clone(), ours, loco)
        })
        .collect();
    let mut table = Vec::new();
    for (name, ours, loco) in &rows {
        table.push(vec![
            name.clone(),
            format!("{ours:.2}"),
            format!("{loco:.2}"),
            format!("{:.2}x", ours / loco),
        ]);
    }
    let ours_mean = summarize(&rows.iter().map(|r| r.1).collect::<Vec<_>>())
        .expect("non-empty table")
        .mean;
    let loco_mean = summarize(&rows.iter().map(|r| r.2).collect::<Vec<_>>())
        .expect("non-empty table")
        .mean;
    table.push(vec![
        "mean".into(),
        format!("{ours_mean:.2}"),
        format!("{loco_mean:.2}"),
        format!("{:.2}x", ours_mean / loco_mean),
    ]);
    println!(
        "{}",
        render(&["scene", "ours bpp", "LOCO-I bpp", "ratio"], &table)
    );
    println!(
        "LOCO-I packs tighter, but needs the full-frame adaptive contexts and a\n\
         6-stage, ~27 MHz pipeline (paper ref [8]); ours compresses one column per\n\
         clock at 230+ MHz and decompresses in-stream. \"Comparable\" holds within\n\
         a factor of ~{:.1}.\n",
        ours_mean / loco_mean
    );
}

fn block_buffering(images: &[(String, sw_image::ImageU8)], res: usize) {
    println!("-- block buffering [5][6] vs line buffers (window 16) --\n");
    let n = 16;
    // Size both approaches to comparable BRAM budgets and compare off-chip
    // traffic per output window.
    let cfg = ArchConfig::builder(n, res)
        .build()
        .expect("related-work config is valid");
    let worst = images
        .par_iter()
        .map(|(_, img)| analyze_frame(img, &cfg).worst_payload_occupancy)
        .max()
        .unwrap();
    let ours = plan(n, res, worst, MgmtAccounting::Structured);

    let mut rows = Vec::new();
    for b in [n + 1, 2 * n, 4 * n, 8 * n] {
        let p = BlockBufferPlan::new(n, b, res, res);
        rows.push(vec![
            format!("block {b}"),
            p.brams().to_string(),
            format!("{:.2}", p.reads_per_window()),
        ]);
    }
    rows.push(vec![
        "traditional line buffers".into(),
        traditional_brams(n, res).to_string(),
        "1.00".into(),
    ]);
    rows.push(vec![
        "ours (compressed, lossless)".into(),
        ours.total_brams().to_string(),
        "1.00".into(),
    ]);
    println!(
        "{}",
        render(
            &["architecture", "18Kb BRAMs", "off-chip reads / window"],
            &rows
        )
    );
    println!(
        "Block buffering can undercut our BRAM count only by paying multiple\n\
         off-chip reads per window; the compressed line buffers keep the\n\
         streaming-optimal single read.\n"
    );
}

fn segmented(images: &[(String, sw_image::ImageU8)], res: usize) {
    println!("-- segmented processing [7] vs compressed line buffers (window 64) --\n");
    let n = 64;
    let cfg = ArchConfig::builder(n, res)
        .build()
        .expect("related-work config is valid");
    let worst = images
        .par_iter()
        .map(|(_, img)| analyze_frame(img, &cfg).worst_payload_occupancy)
        .max()
        .unwrap();
    let ours = plan(n, res, worst, MgmtAccounting::Structured);

    let mut rows = Vec::new();
    for s in [res / 4, res / 2, res] {
        if s <= n {
            continue;
        }
        let p = SegmentedPlan::new(n, s, res, res);
        rows.push(vec![
            format!("segment {s}"),
            p.brams().to_string(),
            format!("{:.2}", p.reads_per_pixel()),
            (if p.segments() == 1 { "yes" } else { "no" }).to_string(),
        ]);
    }
    rows.push(vec![
        "ours (compressed, lossless)".into(),
        ours.total_brams().to_string(),
        "1.00".into(),
        "yes".into(),
    ]);
    println!(
        "{}",
        render(
            &[
                "architecture",
                "18Kb BRAMs",
                "reads / pixel",
                "camera streaming"
            ],
            &rows
        )
    );
}

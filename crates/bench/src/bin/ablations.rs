//! Design-space ablations the paper describes in prose (experiments
//! E15–E18):
//!
//! * **Levels** (Section IV-C): "using 2 or 3 levels of decomposition did
//!   not increase the compression ratio significantly."
//! * **Wavelet choice** (Section IV-C): "We also chose the Haar wavelet
//!   transform instead of other transformations like 5/3 and 7/9."
//! * **NBits granularity** (Section IV-C): per column vs per coefficient
//!   vs per sub-band.
//! * **Threshold policy**: details-only (our default reading of Figure 2)
//!   vs thresholding every sub-band.
//!
//! ```text
//! cargo run --release -p sw-bench --bin ablations [--quick]
//! ```

use rayon::prelude::*;
use sw_bench::table::render;
use sw_bench::{analyze_dataset, scene_images, Sweep};
use sw_bitstream::column_cost;
use sw_core::compressed::CompressedSlidingWindow;
use sw_core::compressed_ml::TwoLevelCompressedSlidingWindow;
use sw_core::config::{ArchConfig, NBitsGranularity, ThresholdPolicy};
use sw_core::kernels::BoxFilter;
use sw_core::stats::summarize;
use sw_image::ImageU8;
use sw_wavelet::haar2d::forward_image;
use sw_wavelet::legall::legall53_forward_image;
use sw_wavelet::multilevel::decompose;
use sw_wavelet::{Coeff, SubBand};

/// Cost a coefficient plane with the paper's per-column scheme, using a
/// fixed 8-coefficient column height (the costing unit is held constant so
/// levels/wavelets compare like for like).
fn plane_bits(plane: &[Coeff], w: usize, h: usize, t: i16) -> u64 {
    const COL: usize = 8;
    let mut total = 0u64;
    let mut buf = [0 as Coeff; COL];
    for x in 0..w {
        let mut y = 0;
        while y < h {
            let len = COL.min(h - y);
            for (k, b) in buf[..len].iter_mut().enumerate() {
                *b = plane[(y + k) * w + x];
            }
            total += column_cost(&buf[..len], t).total_bits();
            y += len;
        }
    }
    total
}

fn levels_ablation(images: &[(String, ImageU8)]) {
    println!("E15 — decomposition levels (lossless, bits relative to raw 8 bpp)\n");
    let mut rows = Vec::new();
    for levels in 1..=3usize {
        let ratios: Vec<f64> = images
            .par_iter()
            .map(|(_, img)| {
                let (w, h) = (img.width(), img.height());
                let pixels: Vec<Coeff> = img.pixels().iter().map(|&p| p as Coeff).collect();
                let pyr = decompose(&pixels, w, h, levels);
                let mut bits = plane_bits(&pyr.top_ll, w >> levels, h >> levels, 0);
                for d in &pyr.details {
                    bits += plane_bits(&d.lh, d.w, d.h, 0);
                    bits += plane_bits(&d.hl, d.w, d.h, 0);
                    bits += plane_bits(&d.hh, d.w, d.h, 0);
                }
                bits as f64 / (w * h * 8) as f64
            })
            .collect();
        let s = summarize(&ratios).expect("non-empty dataset");
        rows.push(vec![
            levels.to_string(),
            format!("{:.4}", s.mean),
            format!("{:.1}%", (1.0 - s.mean) * 100.0),
        ]);
    }
    println!("{}", render(&["levels", "compressed/raw", "saving"], &rows));
    println!("(paper: extra levels \"did not increase the compression ratio significantly\")\n");
}

fn wavelet_ablation(images: &[(String, ImageU8)]) {
    println!("E16 — Haar vs LeGall 5/3 (single level, lossless)\n");
    let mut rows = Vec::new();
    for (name, is_haar) in [("Haar", true), ("LeGall 5/3", false)] {
        let ratios: Vec<f64> = images
            .par_iter()
            .map(|(_, img)| {
                let (w, h) = (img.width(), img.height());
                let pixels: Vec<Coeff> = img.pixels().iter().map(|&p| p as Coeff).collect();
                let planes = if is_haar {
                    forward_image(&pixels, w, h)
                } else {
                    legall53_forward_image(&pixels, w, h)
                };
                let bits: u64 = SubBand::ALL
                    .iter()
                    .map(|&b| plane_bits(planes.plane(b), planes.w, planes.h, 0))
                    .sum();
                bits as f64 / (w * h * 8) as f64
            })
            .collect();
        let s = summarize(&ratios).expect("non-empty dataset");
        rows.push(vec![
            name.to_string(),
            format!("{:.4}", s.mean),
            format!("{:.1}%", (1.0 - s.mean) * 100.0),
        ]);
    }
    println!(
        "{}",
        render(&["wavelet", "compressed/raw", "saving"], &rows)
    );
    println!("(paper: 5/3 rejected for hardware cost; the ratio gap quantifies what it buys)\n");
}

fn granularity_ablation(images: &[(String, ImageU8)]) {
    println!("E17 — NBits granularity (lossless, total = payload + management)\n");
    let mut rows = Vec::new();
    for n in [8usize, 64] {
        for (name, g) in [
            ("per column", NBitsGranularity::PerColumn),
            ("per coefficient", NBitsGranularity::PerCoefficient),
            ("per sub-band", NBitsGranularity::PerSubband),
        ] {
            let savings: Vec<f64> = images
                .par_iter()
                .map(|(_, img)| {
                    let cfg = sw_core::config::ArchConfig::builder(n, img.width())
                        .granularity(g)
                        .build()
                        .expect("ablation config is valid");
                    sw_core::analysis::analyze_frame(img, &cfg).saving_pct()
                })
                .collect();
            let s = summarize(&savings).expect("non-empty dataset");
            rows.push(vec![
                n.to_string(),
                name.to_string(),
                format!("{:.1} ± {:.1}", s.mean, s.ci90_half_width),
            ]);
        }
    }
    println!("{}", render(&["window", "granularity", "saving %"], &rows));
    println!("(the paper chose per-column as the streaming-friendly compromise)\n");
}

fn policy_ablation(images: &[(String, ImageU8)]) {
    println!("E18 — threshold policy (window 8)\n");
    let mut rows = Vec::new();
    for t in [2i16, 4, 6] {
        for (name, policy) in [
            ("details only", ThresholdPolicy::DetailsOnly),
            ("all sub-bands", ThresholdPolicy::AllSubbands),
        ] {
            let analyses = analyze_dataset(images, 8, t, policy);
            let s = summarize(&analyses.iter().map(|a| a.saving_pct()).collect::<Vec<_>>())
                .expect("non-empty dataset");
            rows.push(vec![
                t.to_string(),
                name.to_string(),
                format!("{:.1} ± {:.1}", s.mean, s.ci90_half_width),
            ]);
        }
    }
    println!("{}", render(&["T", "policy", "saving %"], &rows));
    println!("(thresholding LL buys little extra saving — LL coefficients are rarely small)\n");
}

fn streaming_levels(images: &[(String, ImageU8)]) {
    println!("E15b — streaming architectures: single-level vs two-level (lossless)\n");
    let mut rows = Vec::new();
    for n in [8usize, 16] {
        let width = images[0].1.width();
        let kernel = BoxFilter::new(n);
        let results: Vec<(f64, f64)> = images
            .par_iter()
            .map(|(_, img)| {
                let cfg = ArchConfig::builder(n, width)
                    .build()
                    .expect("ablation config is valid");
                let mut one = CompressedSlidingWindow::new(cfg);
                let s1 = one
                    .process_frame(img, &kernel)
                    .unwrap()
                    .stats
                    .memory_saving_pct();
                let mut two = TwoLevelCompressedSlidingWindow::new(cfg);
                let s2 = two
                    .process_frame(img, &kernel)
                    .unwrap()
                    .stats
                    .memory_saving_pct();
                (s1, s2)
            })
            .collect();
        let one =
            summarize(&results.iter().map(|r| r.0).collect::<Vec<_>>()).expect("non-empty dataset");
        let two =
            summarize(&results.iter().map(|r| r.1).collect::<Vec<_>>()).expect("non-empty dataset");
        rows.push(vec![
            n.to_string(),
            format!("{:.1} ± {:.1}", one.mean, one.ci90_half_width),
            format!("{:.1} ± {:.1}", two.mean, two.ci90_half_width),
        ]);
    }
    println!(
        "{}",
        render(&["window", "1-level saving %", "2-level saving %"], &rows)
    );
    println!("(the in-stream measurement of what the paper's rejected extension buys)\n");
}

fn main() {
    match sw_bench::jobs_from_args() {
        Ok(Some(jobs)) => sw_pool::configure_global(jobs).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        }),
        Ok(None) => {}
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
    let sweep = Sweep::from_args();
    let res = if sweep.scenes >= 10 { 512 } else { 256 };
    eprintln!("rendering {} scenes at {res}x{res}...", sweep.scenes);
    let images = scene_images(res, res, sweep.scenes);

    levels_ablation(&images);
    streaming_levels(&images);
    wavelet_ablation(&images);
    granularity_ablation(&images);
    policy_ablation(&images);
}

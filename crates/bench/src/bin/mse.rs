//! MSE vs threshold (experiment E8).
//!
//! The paper (Section VI-A): "thresholds of 2, 4 and 6 gives mean square
//! errors (MSEs) of 0.59, 3.2 and 4.8 respectively." Those are single-pass
//! figures; the streaming architecture recompresses each buffered pixel
//! `N − 1` times, so we report both regimes.
//!
//! ```text
//! cargo run --release -p sw-bench --bin mse [--quick] [--codec <name>]
//!     [--telemetry-out <path>]
//! ```
//!
//! `--codec` swaps the line codec in the compounded column (default: the
//! paper's Haar); the single-pass column is Haar-specific and unaffected.

use rayon::prelude::*;
use sw_bench::table::render;
use sw_bench::{cli_setup, codec_from_args, paper, scene_images, write_telemetry_report, Sweep};
use sw_bitstream::apply_threshold;
use sw_core::arch::build_arch;
use sw_core::codec::LineCodecKind;
use sw_core::config::ArchConfig;
use sw_core::kernels::Tap;
use sw_core::stats::summarize;
use sw_image::{mse, ImageU8};
use sw_wavelet::haar2d::{forward_image, inverse_image};
use sw_wavelet::SubBand;

/// Single-pass MSE: one forward transform, detail thresholding, inverse.
fn one_shot_mse(img: &ImageU8, t: i16) -> f64 {
    let (w, h) = (img.width(), img.height());
    let pixels: Vec<i16> = img.pixels().iter().map(|&p| p as i16).collect();
    let mut planes = forward_image(&pixels, w, h);
    for band in [SubBand::LH, SubBand::HL, SubBand::HH] {
        for c in planes.plane_mut(band) {
            *c = apply_threshold(*c, t);
        }
    }
    let rec: Vec<u8> = inverse_image(&planes)
        .into_iter()
        .map(|v| v.clamp(0, 255) as u8)
        .collect();
    mse(img, &ImageU8::from_vec(w, h, rec))
}

/// Compounded MSE: the real datapath, measured at the most-recirculated
/// window position (N − 1 compression trips). Datapath activity lands in
/// `telemetry` under `stage.mse_t<t>.*` (shared across the parallel scenes;
/// the instruments are atomic).
fn compounded_mse(
    img: &ImageU8,
    n: usize,
    t: i16,
    codec: LineCodecKind,
    telemetry: &sw_telemetry::TelemetryHandle,
) -> f64 {
    let cfg = ArchConfig::builder(n, img.width())
        .threshold(t)
        .codec(codec)
        .build()
        .expect("benchmark config is valid");
    let mut arch = build_arch(&cfg).expect("benchmark config is valid");
    arch.bind_telemetry(telemetry, &format!("mse_t{t}"));
    let out = arch
        .process_frame(img, &Tap::top_left(n))
        .expect("benchmark frame matches the config");
    let crop = img.crop(0, 0, out.image.width(), out.image.height());
    mse(&out.image, &crop)
}

fn main() {
    let (tele, tele_path) = cli_setup();
    let codec = codec_from_args()
        .unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        })
        .unwrap_or(LineCodecKind::Haar);
    let sweep = Sweep::from_args();
    let res = if sweep.scenes >= 10 { 512 } else { 256 };
    eprintln!("rendering {} scenes at {res}x{res}...", sweep.scenes);
    let images = scene_images(res, res, sweep.scenes);
    let n = 8;

    println!(
        "MSE vs threshold over {} scenes @ {res}x{res} (window {n}, codec {} for the compounded column)\n",
        sweep.scenes,
        codec.name()
    );
    let mut rows = Vec::new();
    for &(t, paper_mse) in &paper::PAPER_MSE {
        let _span = tele.span(&format!("mse.t{t}"));
        let single: Vec<f64> = images.par_iter().map(|(_, i)| one_shot_mse(i, t)).collect();
        let comp: Vec<f64> = images
            .par_iter()
            .map(|(_, i)| compounded_mse(i, n, t, codec, &tele))
            .collect();
        let s = summarize(&single).expect("non-empty dataset");
        let c = summarize(&comp).expect("non-empty dataset");
        rows.push(vec![
            t.to_string(),
            format!("{:.2} ± {:.2}", s.mean, s.ci90_half_width),
            format!("{:.2} ± {:.2}", c.mean, c.ci90_half_width),
            format!("{paper_mse:.2}"),
        ]);
    }
    println!(
        "{}",
        render(
            &["T", "single-pass MSE", "compounded MSE", "paper MSE"],
            &rows
        )
    );
    println!("(paper values are single-pass on MIT Places scenes; ours is a synthetic dataset)");
    if let Some(path) = tele_path {
        write_telemetry_report(&tele, &path).expect("write telemetry report");
    }
}

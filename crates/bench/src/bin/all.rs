//! Run the complete evaluation: every table and figure in sequence.
//!
//! ```text
//! cargo run --release -p sw-bench --bin all [--quick]
//! ```

use std::process::Command;

fn main() {
    let quick = sw_bench::quick_flag();
    let exe_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin dir")
        .to_path_buf();
    for bin in ["fig3", "fig13", "tables", "mse", "ablations", "related"] {
        println!("\n================ {bin} ================\n");
        let mut cmd = Command::new(exe_dir.join(bin));
        if quick {
            cmd.arg("--quick");
        }
        let status = cmd.status().unwrap_or_else(|e| {
            panic!("failed to launch {bin} (build with `cargo build --release -p sw-bench` first): {e}")
        });
        assert!(status.success(), "{bin} failed");
    }
}

//! Dataset construction and sweep plumbing shared by the binaries.

use rayon::prelude::*;
use std::path::{Path, PathBuf};
use sw_image::{ImageU8, ScenePreset};
use sw_telemetry::TelemetryHandle;

/// Render the first `count` scenes of the dataset at the given resolution,
/// in parallel. Returns `(name, image)` pairs.
pub fn scene_images(width: usize, height: usize, count: usize) -> Vec<(String, ImageU8)> {
    ScenePreset::ALL
        .par_iter()
        .take(count)
        .map(|p| (p.name.to_string(), p.render(width, height)))
        .collect()
}

/// Whether `--quick` was passed on the command line (reduced dataset for
/// smoke runs / CI).
pub fn quick_flag() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Parse `--telemetry-out <path>` from the command line. When present the
/// returned handle is enabled and the binary should finish with
/// [`write_telemetry_report`]; otherwise the handle is disabled and every
/// instrument bound from it is a no-op.
///
/// Errs (instead of panicking) when the flag is present without a value,
/// or when the "value" is the next flag.
pub fn telemetry_from_args() -> Result<(TelemetryHandle, Option<PathBuf>), String> {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--telemetry-out") {
        Some(i) => match args.get(i + 1).filter(|v| !v.starts_with("--")) {
            Some(path) => Ok((TelemetryHandle::new(), Some(PathBuf::from(path)))),
            None => Err(
                "--telemetry-out needs a file path (e.g. --telemetry-out report.json)".to_string(),
            ),
        },
        None => Ok((TelemetryHandle::disabled(), None)),
    }
}

/// Parse `--codec <name>` from the command line. `Ok(None)` when absent
/// (binaries default to the paper's Haar codec); friendly errors for a
/// missing value or an unknown codec name.
pub fn codec_from_args() -> Result<Option<sw_core::codec::LineCodecKind>, String> {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--codec") {
        Some(i) => match args.get(i + 1) {
            Some(v) => sw_core::codec::LineCodecKind::parse(v)
                .map(Some)
                .ok_or_else(|| format!("unknown codec '{v}' (raw, haar, haar2, legall, locoi)")),
            None => Err("--codec needs a value (e.g. --codec legall)".to_string()),
        },
        None => Ok(None),
    }
}

/// Parse `--jobs <n>` from the command line. `Ok(None)` when absent;
/// friendly errors for a missing value, `0`, or a non-numeric value.
pub fn jobs_from_args() -> Result<Option<usize>, String> {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--jobs") {
        Some(i) => match args.get(i + 1) {
            Some(v) => sw_pool::parse_jobs(v).map(Some),
            None => Err("--jobs needs a value (e.g. --jobs 4)".to_string()),
        },
        None => Ok(None),
    }
}

/// Shared CLI setup for the bench binaries: validate `--jobs` (sizing the
/// global pool that `par_iter` uses) and `--telemetry-out`, exiting with a
/// friendly message on malformed flags. Call this before any dataset work
/// so argument errors surface instantly.
pub fn cli_setup() -> (TelemetryHandle, Option<PathBuf>) {
    let fail = |e: String| -> ! {
        eprintln!("error: {e}");
        std::process::exit(2);
    };
    match jobs_from_args() {
        Ok(Some(jobs)) => {
            if let Err(e) = sw_pool::configure_global(jobs) {
                fail(e);
            }
        }
        Ok(None) => {}
        Err(e) => fail(e),
    }
    match telemetry_from_args() {
        Ok(pair) => pair,
        Err(e) => fail(e),
    }
}

/// Write the handle's metrics report as JSON — the same schema that
/// `swc --metrics-out` emits, so one consumer parses both.
pub fn write_telemetry_report(telemetry: &TelemetryHandle, path: &Path) -> std::io::Result<()> {
    std::fs::write(path, telemetry.report().to_json())?;
    eprintln!("wrote telemetry report: {}", path.display());
    Ok(())
}

/// A sweep configuration: which resolutions and how many scenes.
#[derive(Debug, Clone, Copy)]
pub struct Sweep {
    /// Number of dataset scenes to use (paper: 10).
    pub scenes: usize,
    /// Evaluate the expensive 3840-wide resolution.
    pub include_3840: bool,
    /// Square-image resolution used for Figure 13 (paper: 2048).
    pub fig13_resolution: usize,
}

impl Sweep {
    /// The paper's full evaluation.
    pub fn full() -> Self {
        Self {
            scenes: 10,
            include_3840: true,
            fig13_resolution: 2048,
        }
    }

    /// Reduced smoke-run settings.
    pub fn quick() -> Self {
        Self {
            scenes: 3,
            include_3840: false,
            fig13_resolution: 512,
        }
    }

    /// Selected by `--quick`.
    pub fn from_args() -> Self {
        if quick_flag() {
            Self::quick()
        } else {
            Self::full()
        }
    }

    /// The table widths to evaluate.
    pub fn widths(&self) -> Vec<usize> {
        let mut w = vec![512, 1024, 2048];
        if self.include_3840 {
            w.push(3840);
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scene_images_renders_named_scenes() {
        let imgs = scene_images(32, 16, 2);
        assert_eq!(imgs.len(), 2);
        assert_eq!(imgs[0].0, "forest_path");
        assert_eq!(imgs[0].1.width(), 32);
    }

    #[test]
    fn telemetry_defaults_to_disabled_without_the_flag() {
        let (tele, path) = telemetry_from_args().expect("no flag, no error");
        assert!(!tele.is_enabled());
        assert!(path.is_none());
    }

    #[test]
    fn jobs_defaults_to_none_without_the_flag() {
        assert_eq!(jobs_from_args(), Ok(None));
    }

    #[test]
    fn telemetry_report_lands_on_disk() {
        let tele = TelemetryHandle::new();
        tele.counter("bench.runs").inc();
        let path = std::env::temp_dir().join(format!("sw_runner_tele_{}.json", std::process::id()));
        write_telemetry_report(&tele, &path).unwrap();
        let report =
            sw_telemetry::Report::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(report.counters["bench.runs"], 1);
    }

    #[test]
    fn sweep_presets() {
        assert_eq!(Sweep::full().scenes, 10);
        assert_eq!(Sweep::quick().widths(), vec![512, 1024, 2048]);
        assert!(Sweep::full().widths().contains(&3840));
    }
}

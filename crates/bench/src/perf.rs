//! `swc bench` engine: the kernel × codec performance matrix, a stable
//! JSON schema for checked-in `BENCH_<date>.json` trajectories, and the
//! `--compare` regression gate.
//!
//! Each **cell** is one `(kernel, codec, mode)` triple — mode `seq` runs
//! the unsharded datapath, mode `par` the halo-sharded runner on a thread
//! pool. Throughput frames run with telemetry *disabled* (the production
//! configuration); one extra frame per cell runs with the hierarchical
//! profiler enabled to produce the `stage_breakdown`. Because the
//! profiler attributes every nanosecond of a parent span to exactly one
//! child (or to the parent's self time), a `seq` cell's `self_ns`
//! column sums to the root span's total — the invariant
//! [`CellResult::breakdown_self_sum_ns`] exposes and the tests pin. For
//! `par` cells strip entries carry *work* time (strips overlap in
//! wall-clock terms), so the sum may exceed the root's wall total.
//!
//! The schema is versioned (`swc-bench-v1`); [`compare`] refuses to diff
//! reports with mismatched schemas so a gate never silently compares
//! incompatible trajectories.

use std::time::Instant;
use sw_core::arch::build_arch;
use sw_core::codec::LineCodecKind;
use sw_core::config::ArchConfig;
use sw_core::integral::{analyze_integral, IntegralConfig};
use sw_core::kernels::{BoxFilter, GaussianFilter, SobelMagnitude, WindowKernel};
use sw_core::shard::ShardedFrameRunner;
use sw_image::{ImageU8, ScenePreset};
use sw_pool::ThreadPool;
use sw_telemetry::json::{self, Json};
use sw_telemetry::TelemetryHandle;

/// Schema identifier embedded in every report; bump on breaking change.
pub const SCHEMA: &str = "swc-bench-v1";
/// Numeric schema version matching [`SCHEMA`].
pub const SCHEMA_VERSION: u64 = 1;

/// The kernels benchmarked, by short name. All use the same window so
/// every codec (including two-level Haar, which needs `N % 4 == 0`) runs.
pub const KERNELS: [&str; 3] = ["box", "gaussian", "sobel"];
/// Window size shared by every cell (divisible by 4 for `haar2`).
pub const WINDOW: usize = 8;

fn kernel_by_name(name: &str) -> Box<dyn WindowKernel> {
    match name {
        "box" => Box::new(BoxFilter::new(WINDOW)),
        "gaussian" => Box::new(GaussianFilter::new(WINDOW)),
        "sobel" => Box::new(SobelMagnitude::new(WINDOW)),
        other => panic!("unknown bench kernel '{other}'"),
    }
}

/// Matrix dimensions and per-cell workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchSettings {
    /// Frame width.
    pub width: usize,
    /// Frame height.
    pub height: usize,
    /// Timed frames per cell (the p50/p99 sample count).
    pub frames: usize,
    /// Thread-pool size for `par` cells.
    pub jobs: usize,
    /// Whether these are the reduced `--quick` settings.
    pub quick: bool,
}

impl BenchSettings {
    /// The full trajectory settings (checked-in `BENCH_<date>.json`).
    pub fn full(jobs: usize) -> Self {
        Self {
            width: 512,
            height: 512,
            frames: 8,
            jobs,
            quick: false,
        }
    }

    /// Reduced settings for CI smoke runs (`--quick`).
    pub fn quick(jobs: usize) -> Self {
        Self {
            width: 128,
            height: 96,
            frames: 2,
            jobs,
            quick: true,
        }
    }

    /// Pixels streamed per frame (the Mpix/s numerator).
    pub fn pixels_per_frame(&self) -> u64 {
        (self.width * self.height) as u64
    }
}

/// One row of a cell's profiled stage breakdown. `stage` is the
/// slash-joined span path (`frame/encode`, `shard.bench/strip3`, …);
/// `self_ns` is `total_ns` minus the time attributed to child stages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageTime {
    /// Span path relative to the cell's profiler root.
    pub stage: String,
    /// Subtree wall-clock total in nanoseconds.
    pub total_ns: u64,
    /// Self time (total minus children) in nanoseconds.
    pub self_ns: u64,
    /// Times the stage ran during the profiled frame.
    pub calls: u64,
}

/// One benchmarked `(kernel, codec, mode)` cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Stable cell id, `<kernel>/<codec>/<mode>`.
    pub cell: String,
    /// Kernel short name.
    pub kernel: String,
    /// Codec name (`raw`, `haar`, …).
    pub codec: String,
    /// `seq` (unsharded) or `par` (halo-sharded on the pool).
    pub mode: String,
    /// Throughput over all timed frames, in megapixels per second.
    pub mpix_per_s: f64,
    /// Median per-frame wall-clock time (nanoseconds, exact from the
    /// sample set).
    pub p50_ns: u64,
    /// 99th-percentile per-frame wall-clock time (nanoseconds; with few
    /// samples this is the slowest frame).
    pub p99_ns: u64,
    /// Payload bytes the codec packs per frame on the unsharded
    /// datapath (deterministic; identical for `seq` and `par` cells so
    /// modes stay comparable — the sharded datapath re-packs halo rows).
    pub bytes_packed: u64,
    /// Hierarchical profile of one extra instrumented frame, in span
    /// path order (root first).
    pub stage_breakdown: Vec<StageTime>,
}

impl CellResult {
    /// Sum of `self_ns` over the breakdown. Equals the root stage's
    /// `total_ns` exactly when every span closed cleanly — the flame
    /// invariant the acceptance test checks to within 5 %.
    pub fn breakdown_self_sum_ns(&self) -> u64 {
        self.stage_breakdown.iter().map(|s| s.self_ns).sum()
    }

    /// The root stage's subtree total (0 for an empty breakdown).
    pub fn breakdown_root_total_ns(&self) -> u64 {
        self.stage_breakdown.first().map_or(0, |s| s.total_ns)
    }
}

/// A full `swc bench` run: settings plus one [`CellResult`] per cell.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Schema identifier ([`SCHEMA`]).
    pub schema: String,
    /// Schema version ([`SCHEMA_VERSION`]).
    pub version: u64,
    /// UTC date the report was generated (`YYYY-MM-DD`).
    pub created_utc: String,
    /// Hot path the matrix ran with (`scalar` or `sliced`). Reports
    /// written before the hot-path axis existed parse as `scalar` — the
    /// only implementation that era had.
    pub hot_path: String,
    /// Which workload matrix this is: `window` (the kernel × codec
    /// sliding-window matrix) or `integral` (the wide i32 integral-image
    /// engine). Reports written before the workload axis existed parse as
    /// `window` — the only matrix that era had.
    pub workload: String,
    /// Settings the matrix ran with.
    pub settings: BenchSettings,
    /// Results in matrix order (kernel-major, then codec, then mode).
    pub cells: Vec<CellResult>,
}

/// Every cell id of the matrix, in report order.
pub fn matrix_cell_ids() -> Vec<String> {
    let mut ids = Vec::new();
    for kernel in KERNELS {
        for codec in LineCodecKind::ALL {
            for mode in ["seq", "par"] {
                ids.push(format!("{kernel}/{}/{mode}", codec.name()));
            }
        }
    }
    ids
}

/// Cell ids of the integral workload matrix, in report order. The `wide`
/// codec tag marks the i32 instantiation of the column codec.
pub fn integral_cell_ids() -> Vec<String> {
    ["seq", "par"]
        .iter()
        .map(|mode| format!("integral/wide/{mode}"))
        .collect()
}

fn bench_image(settings: &BenchSettings) -> ImageU8 {
    ScenePreset::ALL[0].render(settings.width, settings.height)
}

fn cell_config(codec: LineCodecKind, settings: &BenchSettings) -> ArchConfig {
    ArchConfig::builder(WINDOW, settings.width)
        .codec(codec)
        .build()
        .expect("bench matrix configs are valid")
}

fn percentile(sorted_ns: &[u64], q: f64) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[idx.min(sorted_ns.len() - 1)]
}

/// Run one cell: `settings.frames` timed frames with telemetry disabled,
/// then one profiled frame for the stage breakdown.
///
/// # Errors
///
/// Propagates any datapath error as a string (misconfigured codec,
/// overflow, …) — the matrix settings are chosen so none occur.
pub fn run_cell(
    kernel_name: &str,
    codec: LineCodecKind,
    par: bool,
    img: &ImageU8,
    pool: &ThreadPool,
    settings: &BenchSettings,
) -> Result<CellResult, String> {
    let cfg = cell_config(codec, settings);
    let kernel = kernel_by_name(kernel_name);
    let mode = if par { "par" } else { "seq" };

    // Packed payload measured once on the unsharded datapath (see the
    // `bytes_packed` field docs), before any timing.
    let mut probe = build_arch(&cfg).map_err(|e| e.to_string())?;
    let stats = probe
        .process_frame(img, kernel.as_ref())
        .map_err(|e| e.to_string())?
        .stats;
    let bytes_packed = stats.payload_bits_total / 8;

    // Timed frames: telemetry disabled, i.e. the production datapath.
    let mut samples_ns = Vec::with_capacity(settings.frames);
    if par {
        let runner = ShardedFrameRunner::new(cfg);
        for _ in 0..settings.frames {
            let t0 = Instant::now();
            runner
                .run(img, kernel.as_ref(), pool)
                .map_err(|e| e.to_string())?;
            samples_ns.push(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
    } else {
        let mut arch = build_arch(&cfg).map_err(|e| e.to_string())?;
        for _ in 0..settings.frames {
            let t0 = Instant::now();
            arch.process_frame(img, kernel.as_ref())
                .map_err(|e| e.to_string())?;
            samples_ns.push(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
    }
    let total_ns: u64 = samples_ns.iter().sum();
    let pixels = settings.pixels_per_frame() * settings.frames as u64;
    let mpix_per_s = if total_ns == 0 {
        0.0
    } else {
        pixels as f64 / (total_ns as f64 / 1e9) / 1e6
    };
    samples_ns.sort_unstable();
    let p50_ns = percentile(&samples_ns, 0.50);
    let p99_ns = percentile(&samples_ns, 0.99);

    // One extra frame under the hierarchical profiler for the breakdown.
    let tele = TelemetryHandle::new();
    if par {
        ShardedFrameRunner::new(cfg)
            .with_named_telemetry(&tele, "bench")
            .run(img, kernel.as_ref(), pool)
            .map_err(|e| e.to_string())?;
    } else {
        let mut arch = build_arch(&cfg).map_err(|e| e.to_string())?;
        arch.bind_telemetry(&tele, "bench");
        arch.process_frame(img, kernel.as_ref())
            .map_err(|e| e.to_string())?;
    }
    let snap = tele.profile_snapshot();
    let stage_breakdown = snap
        .paths
        .iter()
        .map(|(path, p)| StageTime {
            stage: path.clone(),
            total_ns: p.total_ns,
            self_ns: p.self_ns(),
            calls: p.calls,
        })
        .collect();

    Ok(CellResult {
        cell: format!("{kernel_name}/{}/{mode}", codec.name()),
        kernel: kernel_name.to_string(),
        codec: codec.name().to_string(),
        mode: mode.to_string(),
        mpix_per_s,
        p50_ns,
        p99_ns,
        bytes_packed,
        stage_breakdown,
    })
}

/// Run the full kernel × codec × mode matrix.
///
/// # Errors
///
/// The first cell error, in matrix order.
pub fn run_matrix(settings: &BenchSettings, created_utc: &str) -> Result<BenchReport, String> {
    let img = bench_image(settings);
    let pool = ThreadPool::new(settings.jobs);
    let mut cells = Vec::new();
    for kernel in KERNELS {
        for codec in LineCodecKind::ALL {
            for par in [false, true] {
                cells.push(run_cell(kernel, codec, par, &img, &pool, settings)?);
            }
        }
    }
    Ok(BenchReport {
        schema: SCHEMA.to_string(),
        version: SCHEMA_VERSION,
        created_utc: created_utc.to_string(),
        // `cell_config` builds through `ArchConfig::builder`, which resolves the
        // hot path from the environment — record what actually ran.
        hot_path: sw_core::HotPath::from_env().name().to_string(),
        workload: "window".to_string(),
        settings: *settings,
        cells,
    })
}

/// Run one cell of the integral workload: time [`analyze_integral`] over
/// `settings.frames` frames. `seq` cells run on a one-thread pool, `par`
/// cells on the jobs pool; the report digests are identical either way.
/// Integral cells carry no stage breakdown — the engine is two phases,
/// not a span hierarchy.
///
/// # Errors
///
/// Propagates engine errors as strings (none occur at matrix settings).
pub fn run_integral_cell(
    par: bool,
    img: &ImageU8,
    pool: &ThreadPool,
    settings: &BenchSettings,
) -> Result<CellResult, String> {
    let cfg = IntegralConfig {
        segment: WINDOW,
        hot_path: sw_core::HotPath::from_env(),
    };
    let seq_pool;
    let pool = if par {
        pool
    } else {
        seq_pool = ThreadPool::new(1);
        &seq_pool
    };
    let probe = analyze_integral(img, &cfg, pool).map_err(|e| e.to_string())?;
    let bytes_packed = probe.payload_bits_total / 8;
    let mut samples_ns = Vec::with_capacity(settings.frames);
    for _ in 0..settings.frames {
        let t0 = Instant::now();
        analyze_integral(img, &cfg, pool).map_err(|e| e.to_string())?;
        samples_ns.push(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
    let total_ns: u64 = samples_ns.iter().sum();
    let pixels = settings.pixels_per_frame() * settings.frames as u64;
    let mpix_per_s = if total_ns == 0 {
        0.0
    } else {
        pixels as f64 / (total_ns as f64 / 1e9) / 1e6
    };
    samples_ns.sort_unstable();
    let mode = if par { "par" } else { "seq" };
    Ok(CellResult {
        cell: format!("integral/wide/{mode}"),
        kernel: "integral".to_string(),
        codec: "wide".to_string(),
        mode: mode.to_string(),
        mpix_per_s,
        p50_ns: percentile(&samples_ns, 0.50),
        p99_ns: percentile(&samples_ns, 0.99),
        bytes_packed,
        stage_breakdown: Vec::new(),
    })
}

/// Run the integral workload matrix (`integral/wide/{seq,par}`).
///
/// # Errors
///
/// The first cell error, in matrix order.
pub fn run_integral_matrix(
    settings: &BenchSettings,
    created_utc: &str,
) -> Result<BenchReport, String> {
    let img = bench_image(settings);
    let pool = ThreadPool::new(settings.jobs);
    let cells = [false, true]
        .iter()
        .map(|&par| run_integral_cell(par, &img, &pool, settings))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(BenchReport {
        schema: SCHEMA.to_string(),
        version: SCHEMA_VERSION,
        created_utc: created_utc.to_string(),
        hot_path: sw_core::HotPath::from_env().name().to_string(),
        workload: "integral".to_string(),
        settings: *settings,
        cells,
    })
}

// ---------------------------------------------------------------------
// JSON serialization / parsing
// ---------------------------------------------------------------------

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl BenchReport {
    /// Render the report as pretty-printed JSON (the `BENCH_<date>.json`
    /// format). Field order is fixed so diffs stay reviewable.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema\": \"{}\",\n", esc(&self.schema)));
        s.push_str(&format!("  \"version\": {},\n", self.version));
        s.push_str(&format!(
            "  \"created_utc\": \"{}\",\n",
            esc(&self.created_utc)
        ));
        s.push_str(&format!("  \"hot_path\": \"{}\",\n", esc(&self.hot_path)));
        s.push_str(&format!("  \"workload\": \"{}\",\n", esc(&self.workload)));
        s.push_str(&format!(
            "  \"frame\": {{\"width\": {}, \"height\": {}, \"frames\": {}, \"window\": {WINDOW}, \"jobs\": {}, \"quick\": {}}},\n",
            self.settings.width,
            self.settings.height,
            self.settings.frames,
            self.settings.jobs,
            self.settings.quick
        ));
        s.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"cell\": \"{}\",\n", esc(&c.cell)));
            s.push_str(&format!("      \"kernel\": \"{}\",\n", esc(&c.kernel)));
            s.push_str(&format!("      \"codec\": \"{}\",\n", esc(&c.codec)));
            s.push_str(&format!("      \"mode\": \"{}\",\n", esc(&c.mode)));
            s.push_str(&format!("      \"mpix_per_s\": {:.3},\n", c.mpix_per_s));
            s.push_str(&format!("      \"p50_ns\": {},\n", c.p50_ns));
            s.push_str(&format!("      \"p99_ns\": {},\n", c.p99_ns));
            s.push_str(&format!("      \"bytes_packed\": {},\n", c.bytes_packed));
            s.push_str("      \"stage_breakdown\": [");
            for (j, st) in c.stage_breakdown.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&format!(
                    "\n        {{\"stage\": \"{}\", \"total_ns\": {}, \"self_ns\": {}, \"calls\": {}}}",
                    esc(&st.stage),
                    st.total_ns,
                    st.self_ns,
                    st.calls
                ));
            }
            if !c.stage_breakdown.is_empty() {
                s.push_str("\n      ");
            }
            s.push_str("]\n");
            s.push_str(if i + 1 == self.cells.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parse a report from its JSON form, validating the schema marker.
    ///
    /// # Errors
    ///
    /// A descriptive message for malformed JSON, a missing/typed-wrong
    /// field, or a schema mismatch.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = json::parse(text).map_err(|e| format!("bench JSON: {e}"))?;
        let obj = v.as_obj().ok_or("bench JSON: top level is not an object")?;
        let str_field = |name: &str| -> Result<String, String> {
            obj.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("bench JSON: missing string field '{name}'"))
        };
        let schema = str_field("schema")?;
        if schema != SCHEMA {
            return Err(format!("bench JSON: schema '{schema}' != '{SCHEMA}'"));
        }
        let version = obj
            .get("version")
            .and_then(Json::as_u64)
            .ok_or("bench JSON: missing 'version'")?;
        let created_utc = str_field("created_utc")?;
        let hot_path = match obj.get("hot_path") {
            Some(v) => v
                .as_str()
                .ok_or("bench JSON: non-string 'hot_path'")?
                .to_string(),
            None => "scalar".to_string(),
        };
        let workload = match obj.get("workload") {
            Some(v) => v
                .as_str()
                .ok_or("bench JSON: non-string 'workload'")?
                .to_string(),
            None => "window".to_string(),
        };
        let frame = obj
            .get("frame")
            .and_then(Json::as_obj)
            .ok_or("bench JSON: missing 'frame' object")?;
        let fu = |name: &str| -> Result<u64, String> {
            frame
                .get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("bench JSON: missing frame field '{name}'"))
        };
        let settings = BenchSettings {
            width: fu("width")? as usize,
            height: fu("height")? as usize,
            frames: fu("frames")? as usize,
            jobs: fu("jobs")? as usize,
            quick: frame
                .get("quick")
                .and_then(Json::as_bool)
                .ok_or("bench JSON: missing frame field 'quick'")?,
        };
        if fu("window")? as usize != WINDOW {
            return Err(format!("bench JSON: window != {WINDOW}"));
        }
        let cells_json = obj
            .get("cells")
            .and_then(Json::as_arr)
            .ok_or("bench JSON: missing 'cells' array")?;
        let mut cells = Vec::with_capacity(cells_json.len());
        for cj in cells_json {
            cells.push(parse_cell(cj)?);
        }
        Ok(Self {
            schema,
            version,
            created_utc,
            hot_path,
            workload,
            settings,
            cells,
        })
    }
}

fn parse_cell(v: &Json) -> Result<CellResult, String> {
    let obj = v.as_obj().ok_or("bench JSON: cell is not an object")?;
    let st = |name: &str| -> Result<String, String> {
        obj.get(name)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("bench JSON: cell missing string '{name}'"))
    };
    let nu = |name: &str| -> Result<u64, String> {
        obj.get(name)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("bench JSON: cell missing integer '{name}'"))
    };
    let mpix_per_s = obj
        .get("mpix_per_s")
        .and_then(Json::as_f64)
        .ok_or("bench JSON: cell missing number 'mpix_per_s'")?;
    let mut stage_breakdown = Vec::new();
    for sj in obj
        .get("stage_breakdown")
        .and_then(Json::as_arr)
        .ok_or("bench JSON: cell missing 'stage_breakdown'")?
    {
        let so = sj
            .as_obj()
            .ok_or("bench JSON: stage entry is not an object")?;
        let su = |name: &str| -> Result<u64, String> {
            so.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("bench JSON: stage missing integer '{name}'"))
        };
        stage_breakdown.push(StageTime {
            stage: so
                .get("stage")
                .and_then(Json::as_str)
                .ok_or("bench JSON: stage missing 'stage'")?
                .to_string(),
            total_ns: su("total_ns")?,
            self_ns: su("self_ns")?,
            calls: su("calls")?,
        });
    }
    Ok(CellResult {
        cell: st("cell")?,
        kernel: st("kernel")?,
        codec: st("codec")?,
        mode: st("mode")?,
        mpix_per_s,
        p50_ns: nu("p50_ns")?,
        p99_ns: nu("p99_ns")?,
        bytes_packed: nu("bytes_packed")?,
        stage_breakdown,
    })
}

// ---------------------------------------------------------------------
// Regression gate
// ---------------------------------------------------------------------

/// Throughput change of one cell present in both reports.
#[derive(Debug, Clone, PartialEq)]
pub struct CellDelta {
    /// Cell id.
    pub cell: String,
    /// Baseline throughput (Mpix/s).
    pub base_mpix_per_s: f64,
    /// New throughput (Mpix/s).
    pub new_mpix_per_s: f64,
    /// Signed percentage change (negative = slower).
    pub delta_pct: f64,
}

/// Outcome of [`compare`].
#[derive(Debug, Clone, PartialEq)]
pub struct CompareOutcome {
    /// The loss threshold the gate ran with (percent).
    pub max_loss_pct: f64,
    /// Cells slower than `-max_loss_pct` — the gate failures.
    pub regressions: Vec<CellDelta>,
    /// All common cells, in baseline order.
    pub deltas: Vec<CellDelta>,
    /// Cells only in the baseline.
    pub missing: Vec<String>,
    /// Cells only in the new report.
    pub added: Vec<String>,
    /// `Some((base, new))` when the two reports ran different hot paths —
    /// expected when gating a sliced run against the scalar baseline.
    pub hot_paths: Option<(String, String)>,
}

impl CompareOutcome {
    /// Whether the gate should fail (any regression, or cells that
    /// disappeared from the matrix).
    pub fn is_regressed(&self) -> bool {
        !self.regressions.is_empty() || !self.missing.is_empty()
    }

    /// Human-readable gate summary.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{} cells compared, gate at -{:.1}%\n",
            self.deltas.len(),
            self.max_loss_pct
        ));
        if let Some((base, new)) = &self.hot_paths {
            s.push_str(&format!("  hot path: {base} -> {new}\n"));
        }
        for d in &self.deltas {
            let flag = if d.delta_pct < -self.max_loss_pct {
                "  REGRESSION"
            } else {
                ""
            };
            s.push_str(&format!(
                "  {:<22} {:>9.3} -> {:>9.3} Mpix/s  {:>+7.1}%{flag}\n",
                d.cell, d.base_mpix_per_s, d.new_mpix_per_s, d.delta_pct
            ));
        }
        for m in &self.missing {
            s.push_str(&format!("  {m:<22} MISSING from new report\n"));
        }
        for a in &self.added {
            s.push_str(&format!("  {a:<22} new cell (not in baseline)\n"));
        }
        if self.is_regressed() {
            s.push_str(&format!(
                "FAIL: {} regression(s), {} missing cell(s)\n",
                self.regressions.len(),
                self.missing.len()
            ));
        } else {
            s.push_str("OK: no cell regressed past the gate\n");
        }
        s
    }
}

/// Diff two reports cell-by-cell. A cell **regresses** when its
/// throughput drops by more than `max_loss_pct` percent relative to the
/// baseline; cells missing from `new` also fail the gate (a silently
/// shrunk matrix must not pass).
///
/// # Errors
///
/// When the two reports carry different schema identifiers or versions.
pub fn compare(
    base: &BenchReport,
    new: &BenchReport,
    max_loss_pct: f64,
) -> Result<CompareOutcome, String> {
    if base.schema != new.schema || base.version != new.version {
        return Err(format!(
            "schema mismatch: baseline {}/v{} vs new {}/v{}",
            base.schema, base.version, new.schema, new.version
        ));
    }
    if base.workload != new.workload {
        return Err(format!(
            "workload mismatch: baseline '{}' vs new '{}'",
            base.workload, new.workload
        ));
    }
    let mut deltas = Vec::new();
    let mut regressions = Vec::new();
    let mut missing = Vec::new();
    for bc in &base.cells {
        match new.cells.iter().find(|nc| nc.cell == bc.cell) {
            Some(nc) => {
                let delta_pct = if bc.mpix_per_s > 0.0 {
                    (nc.mpix_per_s - bc.mpix_per_s) / bc.mpix_per_s * 100.0
                } else {
                    0.0
                };
                let d = CellDelta {
                    cell: bc.cell.clone(),
                    base_mpix_per_s: bc.mpix_per_s,
                    new_mpix_per_s: nc.mpix_per_s,
                    delta_pct,
                };
                if delta_pct < -max_loss_pct {
                    regressions.push(d.clone());
                }
                deltas.push(d);
            }
            None => missing.push(bc.cell.clone()),
        }
    }
    let added = new
        .cells
        .iter()
        .filter(|nc| !base.cells.iter().any(|bc| bc.cell == nc.cell))
        .map(|nc| nc.cell.clone())
        .collect();
    Ok(CompareOutcome {
        max_loss_pct,
        regressions,
        deltas,
        missing,
        added,
        hot_paths: (base.hot_path != new.hot_path)
            .then(|| (base.hot_path.clone(), new.hot_path.clone())),
    })
}

// ---------------------------------------------------------------------
// Dates (no chrono in the tree: civil-from-days, proleptic Gregorian)
// ---------------------------------------------------------------------

/// Today's UTC date as `YYYY-MM-DD`, from the system clock.
pub fn utc_date_string() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    date_from_unix_days((secs / 86_400) as i64)
}

/// `YYYY-MM-DD` for a day count since 1970-01-01 (Howard Hinnant's
/// `civil_from_days`).
pub fn date_from_unix_days(days: i64) -> String {
    let z = days + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_settings() -> BenchSettings {
        BenchSettings {
            width: 64,
            height: 32,
            frames: 2,
            jobs: 2,
            quick: true,
        }
    }

    fn synthetic_report(mpix: &[(&str, f64)]) -> BenchReport {
        BenchReport {
            schema: SCHEMA.to_string(),
            version: SCHEMA_VERSION,
            created_utc: "2026-08-07".to_string(),
            hot_path: "sliced".to_string(),
            workload: "window".to_string(),
            settings: tiny_settings(),
            cells: mpix
                .iter()
                .map(|(cell, m)| CellResult {
                    cell: cell.to_string(),
                    kernel: cell.split('/').next().unwrap().to_string(),
                    codec: "haar".to_string(),
                    mode: "seq".to_string(),
                    mpix_per_s: *m,
                    p50_ns: 1_000,
                    p99_ns: 2_000,
                    bytes_packed: 512,
                    stage_breakdown: vec![StageTime {
                        stage: "frame".to_string(),
                        total_ns: 1_000,
                        self_ns: 1_000,
                        calls: 1,
                    }],
                })
                .collect(),
        }
    }

    #[test]
    fn matrix_enumerates_thirty_cells() {
        let ids = matrix_cell_ids();
        assert_eq!(ids.len(), 30); // 3 kernels x 5 codecs x 2 modes
        assert_eq!(ids[0], "box/raw/seq");
        assert!(ids.contains(&"sobel/locoi/par".to_string()));
    }

    #[test]
    fn one_cell_runs_and_profiles_both_modes() {
        let s = tiny_settings();
        let img = super::bench_image(&s);
        let pool = ThreadPool::new(2);
        for par in [false, true] {
            let c = run_cell("box", LineCodecKind::Haar, par, &img, &pool, &s).unwrap();
            assert_eq!(
                c.cell,
                format!("box/haar/{}", if par { "par" } else { "seq" })
            );
            assert!(c.mpix_per_s > 0.0);
            assert!(c.p99_ns >= c.p50_ns);
            assert!(c.bytes_packed > 0);
            assert!(!c.stage_breakdown.is_empty());
        }
    }

    #[test]
    fn flame_breakdown_self_times_sum_to_the_cell_total() {
        // Acceptance criterion: per-stage self times sum to the root
        // span's total within 5 % (exact by construction for a
        // same-thread hierarchy; the margin covers only the assertion's
        // own arithmetic).
        let s = tiny_settings();
        let img = super::bench_image(&s);
        let pool = ThreadPool::new(2);
        let c = run_cell("gaussian", LineCodecKind::Haar, false, &img, &pool, &s).unwrap();
        let total = c.breakdown_root_total_ns();
        let self_sum = c.breakdown_self_sum_ns();
        assert!(total > 0, "profiled frame must record a root span");
        let err = (self_sum as f64 - total as f64).abs() / total as f64;
        assert!(
            err <= 0.05,
            "self-time sum {self_sum} vs root total {total} ({:.2}% off)",
            err * 100.0
        );
    }

    #[test]
    fn par_breakdown_records_work_time_per_strip() {
        // Sharded cells record strip *work* time (strips overlap in
        // wall-clock terms), so the self-time sum may exceed the root
        // span's wall total — the flame identity applies per thread, not
        // across the pool. Pin the structure instead: a root plus one
        // entry per strip, every strip timed.
        let s = tiny_settings();
        let img = super::bench_image(&s);
        let pool = ThreadPool::new(2);
        let c = run_cell("gaussian", LineCodecKind::Haar, true, &img, &pool, &s).unwrap();
        assert_eq!(c.stage_breakdown[0].stage, "shard.bench");
        let strips = c
            .stage_breakdown
            .iter()
            .filter(|st| st.stage.starts_with("shard.bench/strip"))
            .count();
        assert_eq!(strips, c.stage_breakdown.len() - 1);
        assert!(strips >= 2, "sharded run must decompose into strips");
        assert!(c.stage_breakdown.iter().all(|st| st.total_ns > 0));
    }

    #[test]
    fn report_round_trips_through_json() {
        let s = tiny_settings();
        let img = super::bench_image(&s);
        let pool = ThreadPool::new(2);
        let report = BenchReport {
            schema: SCHEMA.to_string(),
            version: SCHEMA_VERSION,
            created_utc: "2026-08-07".to_string(),
            hot_path: "sliced".to_string(),
            workload: "window".to_string(),
            settings: s,
            cells: vec![run_cell("box", LineCodecKind::Raw, false, &img, &pool, &s).unwrap()],
        };
        let text = report.to_json();
        let back = BenchReport::from_json(&text).unwrap();
        // Integer fields round-trip exactly; the float field re-renders
        // identically (3-decimal fixed point both ways).
        assert_eq!(back.to_json(), text);
        assert_eq!(back.cells[0].cell, "box/raw/seq");
        assert_eq!(
            back.cells[0].stage_breakdown,
            report.cells[0].stage_breakdown
        );
        assert_eq!(back.settings.width, 64);
    }

    #[test]
    fn from_json_rejects_other_schemas() {
        let wrong = synthetic_report(&[("box/haar/seq", 10.0)])
            .to_json()
            .replace(SCHEMA, "swc-bench-v0");
        let err = BenchReport::from_json(&wrong).unwrap_err();
        assert!(err.contains("schema"), "{err}");
    }

    #[test]
    fn compare_detects_a_synthetic_twenty_percent_slowdown() {
        let base = synthetic_report(&[("box/haar/seq", 10.0), ("box/haar/par", 20.0)]);
        let mut new = base.clone();
        new.cells[1].mpix_per_s = 16.0; // -20 %
        let out = compare(&base, &new, 10.0).unwrap();
        assert!(out.is_regressed());
        assert_eq!(out.regressions.len(), 1);
        assert_eq!(out.regressions[0].cell, "box/haar/par");
        assert!((out.regressions[0].delta_pct - -20.0).abs() < 1e-9);
        assert!(out.render().contains("REGRESSION"));
    }

    #[test]
    fn compare_tolerates_losses_inside_the_gate_and_any_gain() {
        let base = synthetic_report(&[("box/haar/seq", 10.0), ("box/haar/par", 20.0)]);
        let mut new = base.clone();
        new.cells[0].mpix_per_s = 9.2; // -8 %, inside the 10 % gate
        new.cells[1].mpix_per_s = 40.0; // +100 %
        let out = compare(&base, &new, 10.0).unwrap();
        assert!(!out.is_regressed());
        assert!(out.regressions.is_empty());
        assert!(out.render().contains("OK"));
    }

    #[test]
    fn compare_fails_on_missing_cells_and_reports_added_ones() {
        let base = synthetic_report(&[("box/haar/seq", 10.0), ("box/haar/par", 20.0)]);
        let new = synthetic_report(&[("box/haar/seq", 10.0), ("box/legall/seq", 5.0)]);
        let out = compare(&base, &new, 10.0).unwrap();
        assert!(out.is_regressed(), "a shrunk matrix must fail the gate");
        assert_eq!(out.missing, vec!["box/haar/par".to_string()]);
        assert_eq!(out.added, vec!["box/legall/seq".to_string()]);
    }

    #[test]
    fn integral_matrix_runs_both_modes_and_round_trips() {
        let s = tiny_settings();
        assert_eq!(
            integral_cell_ids(),
            vec!["integral/wide/seq", "integral/wide/par"]
        );
        let report = run_integral_matrix(&s, "2026-08-07").unwrap();
        assert_eq!(report.workload, "integral");
        let ids: Vec<&str> = report.cells.iter().map(|c| c.cell.as_str()).collect();
        assert_eq!(ids, integral_cell_ids());
        for c in &report.cells {
            assert!(c.mpix_per_s > 0.0, "{}", c.cell);
            assert!(c.bytes_packed > 0, "{}", c.cell);
            assert!(c.stage_breakdown.is_empty(), "{}", c.cell);
        }
        let back = BenchReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back.to_json(), report.to_json());
        assert_eq!(back.workload, "integral");
    }

    #[test]
    fn legacy_reports_without_workload_parse_as_window() {
        let report = synthetic_report(&[("box/haar/seq", 10.0)]);
        let legacy = report
            .to_json()
            .replace("  \"workload\": \"window\",\n", "");
        let back = BenchReport::from_json(&legacy).unwrap();
        assert_eq!(back.workload, "window");
    }

    #[test]
    fn compare_rejects_workload_mismatches() {
        let base = synthetic_report(&[("box/haar/seq", 10.0)]);
        let mut new = base.clone();
        new.workload = "integral".to_string();
        let err = compare(&base, &new, 10.0).unwrap_err();
        assert!(err.contains("workload"), "{err}");
    }

    #[test]
    fn compare_rejects_schema_mismatches() {
        let base = synthetic_report(&[("box/haar/seq", 10.0)]);
        let mut new = base.clone();
        new.version = 2;
        assert!(compare(&base, &new, 10.0).is_err());
    }

    #[test]
    fn civil_dates_are_correct() {
        assert_eq!(date_from_unix_days(0), "1970-01-01");
        assert_eq!(date_from_unix_days(19_723), "2024-01-01");
        assert_eq!(date_from_unix_days(20_672), "2026-08-07");
        assert!(utc_date_string().len() == 10);
    }
}

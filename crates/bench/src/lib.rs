//! Evaluation harness: regenerates every table and figure of the paper's
//! Section VI (see `DESIGN.md` §5 for the experiment index and
//! `EXPERIMENTS.md` for recorded paper-vs-measured results).
//!
//! Binaries (all support `--quick` for a reduced dataset):
//!
//! | binary      | artifact |
//! |-------------|----------|
//! | `fig3`      | Figure 3 — buffered Kbits per sub-band vs window position |
//! | `fig13`     | Figure 13 — % memory saving with 90 % CIs |
//! | `tables`    | Tables I–V (BRAM counts) and VI–X (resources) |
//! | `mse`       | MSE vs threshold (paper: 0.59 / 3.2 / 4.8) |
//! | `ablations` | E15–E18: levels, 5/3 wavelet, NBits granularity, policy |
//! | `all`       | everything above in sequence |
//!
//! Criterion benches (`cargo bench -p sw-bench`): transform, packing,
//! architecture throughput, analyzer cost, and the full Figure 13 sweep.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod paper;
pub mod perf;
pub mod runner;
pub mod table;

pub use runner::{
    cli_setup, codec_from_args, jobs_from_args, quick_flag, scene_images, telemetry_from_args,
    write_telemetry_report, Sweep,
};

use rayon::prelude::*;
use sw_core::analysis::{analyze_frame, FrameAnalysis};
use sw_core::config::{ArchConfig, ThresholdPolicy};
use sw_core::stats::{summarize, Summary};
use sw_image::ImageU8;

/// The paper's evaluation grid.
pub const WINDOWS: [usize; 5] = [8, 16, 32, 64, 128];
/// The paper's threshold set.
pub const THRESHOLDS: [i16; 4] = [0, 2, 4, 6];
/// The paper's image widths (Tables I–V).
pub const WIDTHS: [usize; 4] = [512, 1024, 2048, 3840];

/// Analyze every image of a dataset under one configuration, in parallel.
pub fn analyze_dataset(
    images: &[(String, ImageU8)],
    window: usize,
    threshold: i16,
    policy: ThresholdPolicy,
) -> Vec<FrameAnalysis> {
    images
        .par_iter()
        .map(|(_, img)| {
            let cfg = ArchConfig::builder(window, img.width())
                .threshold(threshold)
                .policy(policy)
                .build()
                .expect("dataset analysis config is valid");
            analyze_frame(img, &cfg)
        })
        .collect()
}

/// Summary of memory savings across a dataset (the Figure 13 statistic).
/// `None` when `analyses` is empty.
pub fn savings_summary(analyses: &[FrameAnalysis]) -> Option<Summary> {
    let savings: Vec<f64> = analyses.iter().map(|a| a.saving_pct()).collect();
    summarize(&savings)
}

/// Worst-case payload occupancy across a dataset (what the BRAM planner
/// must provision for — Tables II–V).
pub fn worst_occupancy(analyses: &[FrameAnalysis]) -> u64 {
    analyses
        .iter()
        .map(|a| a.worst_payload_occupancy)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_analysis_runs_in_parallel_and_agrees_with_serial() {
        let images = scene_images(64, 64, 3);
        let par = analyze_dataset(&images, 8, 0, ThresholdPolicy::DetailsOnly);
        assert_eq!(par.len(), 3);
        for ((_, img), a) in images.iter().zip(&par) {
            let cfg = ArchConfig::builder(8, img.width()).build().unwrap();
            assert_eq!(a, &analyze_frame(img, &cfg));
        }
    }

    #[test]
    fn savings_summary_aggregates() {
        let images = scene_images(64, 64, 4);
        let analyses = analyze_dataset(&images, 8, 0, ThresholdPolicy::DetailsOnly);
        let s = savings_summary(&analyses).unwrap();
        assert_eq!(s.n, 4);
        assert!(s.min <= s.mean && s.mean <= s.max);
        assert!(worst_occupancy(&analyses) > 0);
        assert!(savings_summary(&[]).is_none());
    }
}

//! Figure data export: CSV series and a minimal dependency-free SVG line
//! chart, so `fig3`/`fig13` can regenerate the paper's figures as files
//! (`--out <dir>`), not just terminal tables.

use std::io::{self, Write};
use std::path::Path;

/// One named line series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// `(x, y)` points, sorted by x.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Construct from y-values with implicit integer x.
    pub fn from_ys(name: impl Into<String>, ys: impl IntoIterator<Item = f64>) -> Self {
        Self {
            name: name.into(),
            points: ys
                .into_iter()
                .enumerate()
                .map(|(i, y)| (i as f64, y))
                .collect(),
        }
    }
}

/// Write series as CSV: `x, <name1>, <name2>, …` (series must share x).
///
/// # Panics
///
/// Panics if series lengths or x-grids disagree.
pub fn write_csv(path: &Path, series: &[Series]) -> io::Result<()> {
    assert!(!series.is_empty(), "no series to write");
    let n = series[0].points.len();
    for s in series {
        assert_eq!(s.points.len(), n, "series length mismatch");
    }
    let mut f = std::fs::File::create(path)?;
    write!(f, "x")?;
    for s in series {
        write!(f, ",{}", s.name.replace(',', ";"))?;
    }
    writeln!(f)?;
    for i in 0..n {
        let x = series[0].points[i].0;
        write!(f, "{x}")?;
        for s in series {
            assert_eq!(s.points[i].0, x, "x-grid mismatch");
            write!(f, ",{}", s.points[i].1)?;
        }
        writeln!(f)?;
    }
    Ok(())
}

/// Chart labels.
#[derive(Debug, Clone)]
pub struct ChartMeta {
    /// Chart title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
}

const PALETTE: [&str; 6] = [
    "#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd", "#8c564b",
];
const W: f64 = 720.0;
const H: f64 = 440.0;
const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 130.0;
const MARGIN_T: f64 = 46.0;
const MARGIN_B: f64 = 52.0;

/// Render a multi-series line chart to an SVG string.
///
/// # Panics
///
/// Panics on empty input.
pub fn render_svg(meta: &ChartMeta, series: &[Series]) -> String {
    assert!(
        series.iter().any(|s| !s.points.is_empty()),
        "nothing to plot"
    );
    let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
    for s in series {
        for &(x, y) in &s.points {
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(y);
            y1 = y1.max(y);
        }
    }
    if (x1 - x0).abs() < 1e-12 {
        x1 = x0 + 1.0;
    }
    if (y1 - y0).abs() < 1e-12 {
        y1 = y0 + 1.0;
    }
    // Pad y a little and include zero when close.
    if y0 > 0.0 && y0 < 0.25 * y1 {
        y0 = 0.0;
    }
    let pad = (y1 - y0) * 0.06;
    y1 += pad;

    let plot_w = W - MARGIN_L - MARGIN_R;
    let plot_h = H - MARGIN_T - MARGIN_B;
    let sx = move |x: f64| MARGIN_L + (x - x0) / (x1 - x0) * plot_w;
    let sy = move |y: f64| MARGIN_T + (1.0 - (y - y0) / (y1 - y0)) * plot_h;

    let mut svg = String::new();
    svg.push_str(&format!(
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{W}" height="{H}" viewBox="0 0 {W} {H}" font-family="sans-serif">"#
    ));
    svg.push_str(r#"<rect width="100%" height="100%" fill="white"/>"#);
    svg.push_str(&format!(
        r#"<text x="{}" y="24" font-size="16" text-anchor="middle">{}</text>"#,
        W / 2.0,
        xml_escape(&meta.title)
    ));

    // Gridlines + ticks (5 divisions each axis).
    for i in 0..=5 {
        let t = i as f64 / 5.0;
        let gx = MARGIN_L + t * plot_w;
        let gy = MARGIN_T + t * plot_h;
        let xv = x0 + t * (x1 - x0);
        let yv = y1 - t * (y1 - y0);
        svg.push_str(&format!(
            r##"<line x1="{gx:.1}" y1="{MARGIN_T}" x2="{gx:.1}" y2="{:.1}" stroke="#eee"/>"##,
            MARGIN_T + plot_h
        ));
        svg.push_str(&format!(
            r##"<line x1="{MARGIN_L}" y1="{gy:.1}" x2="{:.1}" y2="{gy:.1}" stroke="#eee"/>"##,
            MARGIN_L + plot_w
        ));
        svg.push_str(&format!(
            r#"<text x="{gx:.1}" y="{:.1}" font-size="11" text-anchor="middle">{}</text>"#,
            MARGIN_T + plot_h + 18.0,
            fmt_tick(xv)
        ));
        svg.push_str(&format!(
            r#"<text x="{:.1}" y="{gy:.1}" font-size="11" text-anchor="end" dominant-baseline="middle">{}</text>"#,
            MARGIN_L - 8.0,
            fmt_tick(yv)
        ));
    }
    // Axes.
    svg.push_str(&format!(
        r##"<rect x="{MARGIN_L}" y="{MARGIN_T}" width="{plot_w:.1}" height="{plot_h:.1}" fill="none" stroke="#333"/>"##
    ));
    svg.push_str(&format!(
        r#"<text x="{}" y="{}" font-size="13" text-anchor="middle">{}</text>"#,
        MARGIN_L + plot_w / 2.0,
        H - 12.0,
        xml_escape(&meta.x_label)
    ));
    svg.push_str(&format!(
        r#"<text x="16" y="{}" font-size="13" text-anchor="middle" transform="rotate(-90 16 {})">{}</text>"#,
        MARGIN_T + plot_h / 2.0,
        MARGIN_T + plot_h / 2.0,
        xml_escape(&meta.y_label)
    ));

    // Series.
    for (i, s) in series.iter().enumerate() {
        let color = PALETTE[i % PALETTE.len()];
        let mut d = String::new();
        for (j, &(x, y)) in s.points.iter().enumerate() {
            d.push_str(if j == 0 { "M" } else { "L" });
            d.push_str(&format!("{:.2},{:.2} ", sx(x), sy(y)));
        }
        svg.push_str(&format!(
            r#"<path d="{d}" fill="none" stroke="{color}" stroke-width="2"/>"#
        ));
        // Legend entry.
        let ly = MARGIN_T + 16.0 + i as f64 * 20.0;
        let lx = MARGIN_L + plot_w + 12.0;
        svg.push_str(&format!(
            r#"<line x1="{lx}" y1="{ly}" x2="{}" y2="{ly}" stroke="{color}" stroke-width="3"/>"#,
            lx + 18.0
        ));
        svg.push_str(&format!(
            r#"<text x="{}" y="{}" font-size="12">{}</text>"#,
            lx + 24.0,
            ly + 4.0,
            xml_escape(&s.name)
        ));
    }
    svg.push_str("</svg>");
    svg
}

/// Render and write an SVG chart.
pub fn write_svg(path: &Path, meta: &ChartMeta, series: &[Series]) -> io::Result<()> {
    std::fs::write(path, render_svg(meta, series))
}

fn fmt_tick(v: f64) -> String {
    if v.abs() >= 1000.0 {
        format!("{:.0}k", v / 1000.0)
    } else if (v - v.round()).abs() < 1e-9 {
        format!("{:.0}", v)
    } else {
        format!("{v:.1}")
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Parse `--out <dir>` from the command line, creating the directory.
pub fn out_dir_from_args() -> Option<std::path::PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    let idx = args.iter().position(|a| a == "--out")?;
    let dir = std::path::PathBuf::from(args.get(idx + 1)?);
    std::fs::create_dir_all(&dir).ok()?;
    Some(dir)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sw_export_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn csv_roundtrips_textually() {
        let series = vec![
            Series::from_ys("a", [1.0, 2.0, 3.0]),
            Series::from_ys("b", [4.0, 5.0, 6.0]),
        ];
        let path = tmp("test.csv");
        write_csv(&path, &series).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(text, "x,a,b\n0,1,4\n1,2,5\n2,3,6\n");
    }

    #[test]
    fn svg_contains_all_series_and_labels() {
        let meta = ChartMeta {
            title: "Memory & savings".into(),
            x_label: "window".into(),
            y_label: "Kbit".into(),
        };
        let series = vec![
            Series::from_ys("LL", [65.0, 60.0, 58.0]),
            Series::from_ys("HH", [20.0, 21.0, 19.0]),
        ];
        let svg = render_svg(&meta, &series);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("LL"));
        assert!(svg.contains("HH"));
        assert!(svg.contains("Memory &amp; savings"), "title escaped");
        assert_eq!(svg.matches("<path").count(), 2);
    }

    #[test]
    fn svg_handles_single_point_series() {
        let meta = ChartMeta {
            title: "t".into(),
            x_label: "x".into(),
            y_label: "y".into(),
        };
        let svg = render_svg(&meta, &[Series::from_ys("s", [5.0])]);
        assert!(svg.contains("<path"));
    }

    #[test]
    #[should_panic(expected = "series length mismatch")]
    fn csv_rejects_ragged_series() {
        let series = vec![
            Series::from_ys("a", [1.0]),
            Series::from_ys("b", [1.0, 2.0]),
        ];
        write_csv(&tmp("ragged.csv"), &series).unwrap();
    }
}

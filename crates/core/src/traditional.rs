//! The traditional line-buffering sliding window architecture
//! (paper Section III, Figure 1).
//!
//! `N − 1` row FIFOs of raw pixels feed an N×N shift-register window. The
//! architecture has three phases — fill, process, drain — which this
//! streaming model reproduces implicitly: outputs are only emitted once the
//! window is fully inside the image, and a frame is fully processed after
//! exactly `H × W` clock cycles (one input pixel per clock).

use crate::compressed::occupancy_bounds;
use crate::config::ArchConfig;
use crate::kernels::WindowKernel;
use crate::window::ActiveWindow;
use crate::Pixel;
use std::collections::VecDeque;
use sw_image::ImageU8;
use sw_telemetry::{Counter, Gauge, Histogram, TelemetryHandle, TraceEvent, TraceKind};

/// Statistics of one processed frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraditionalFrameStats {
    /// Clock cycles consumed (always `H × W`: one pixel per clock).
    pub cycles: u64,
    /// On-chip bits the line buffers occupy:
    /// `(N − 1) × (W − N) × pixel_bits`.
    pub buffer_bits: u64,
}

/// Output of one frame.
#[derive(Debug, Clone)]
pub struct TraditionalOutput {
    /// Kernel output over the valid region,
    /// `(W − N + 1) × (H − N + 1)`.
    pub image: ImageU8,
    /// Frame statistics.
    pub stats: TraditionalFrameStats,
}

/// The traditional architecture.
#[derive(Debug, Clone)]
pub struct TraditionalSlidingWindow {
    cfg: ArchConfig,
    window: ActiveWindow,
    /// `fifos[k]` carries the exiting column's row `k + 1` pixel to the
    /// entering column's row `k`, one image row later.
    fifos: Vec<VecDeque<Pixel>>,
    entering: Vec<Pixel>,
    evicted: Vec<Pixel>,
    /// Pixels currently in the line buffers (all FIFOs combined).
    buffered_pixels: u64,
    // --- telemetry (no-ops unless `with_telemetry` was called) ---
    telemetry: TelemetryHandle,
    m_cycles: Counter,
    m_window_shifts: Counter,
    occ_hist: Histogram,
    occ_gauge: Gauge,
}

impl TraditionalSlidingWindow {
    /// Build the architecture for `cfg` (threshold fields are ignored —
    /// this is the uncompressed baseline).
    pub fn new(cfg: ArchConfig) -> Self {
        let n = cfg.window;
        Self {
            cfg,
            window: ActiveWindow::new(n),
            fifos: vec![VecDeque::with_capacity(cfg.fifo_depth()); n - 1],
            entering: vec![0; n],
            evicted: vec![0; n],
            buffered_pixels: 0,
            telemetry: TelemetryHandle::disabled(),
            m_cycles: Counter::noop(),
            m_window_shifts: Counter::noop(),
            occ_hist: Histogram::noop(),
            occ_gauge: Gauge::noop(),
        }
    }

    /// Bind instruments to `telemetry` under the default stage name
    /// `traditional`.
    pub fn with_telemetry(self, telemetry: &TelemetryHandle) -> Self {
        self.with_named_telemetry(telemetry, "traditional")
    }

    /// Bind instruments to `telemetry` under `stage.<name>.*` (cycles,
    /// window shifts) and `fifo.<name>.*` (line-buffer occupancy histogram
    /// and high-water mark, in bits).
    pub fn with_named_telemetry(mut self, telemetry: &TelemetryHandle, name: &str) -> Self {
        self.m_cycles = telemetry.counter(&format!("stage.{name}.cycles"));
        self.m_window_shifts = telemetry.counter(&format!("stage.{name}.window_shifts"));
        self.occ_hist = telemetry.histogram(
            &format!("fifo.{name}.occupancy_bits"),
            &occupancy_bounds(self.cfg.traditional_buffer_bits().max(1)),
        );
        self.occ_gauge = telemetry.gauge(&format!("fifo.{name}.high_water_bits"));
        self.telemetry = telemetry.clone();
        self
    }

    /// The architecture's configuration.
    pub fn config(&self) -> &ArchConfig {
        &self.cfg
    }

    /// Process a full frame, returning the kernel output over the valid
    /// region.
    ///
    /// # Panics
    ///
    /// Panics if the image width differs from the configured width, the
    /// image is shorter than the window, or the kernel's window size
    /// mismatches.
    pub fn process_frame(&mut self, img: &ImageU8, kernel: &dyn WindowKernel) -> TraditionalOutput {
        let n = self.cfg.window;
        assert_eq!(img.width(), self.cfg.width, "image width mismatch");
        assert!(img.height() >= n, "image shorter than the window");
        assert_eq!(kernel.window_size(), n, "kernel window size mismatch");
        self.reset();

        let w = img.width();
        let h = img.height();
        let delay = self.cfg.fifo_depth(); // W − N cycles inside the FIFOs
        let mut out = ImageU8::filled(w - n + 1, h - n + 1, 0);
        let mut cycles = 0u64;
        let pixel_bits = self.cfg.pixel_bits as u64;
        self.telemetry.trace(TraceEvent::new(
            0,
            TraceKind::FrameStart,
            w as u64,
            h as u64,
        ));

        for r in 0..h {
            let row = img.row(r);
            for (c, &input) in row.iter().enumerate() {
                // (1) FIFO reads: the entering column's top n−1 pixels.
                for (k, fifo) in self.fifos.iter_mut().enumerate() {
                    self.entering[k] = if fifo.len() >= delay {
                        self.buffered_pixels -= 1;
                        fifo.pop_front().expect("non-empty by length check")
                    } else {
                        0 // fill phase: registers power up as zero
                    };
                }
                // (2) The input pixel enters the bottom row.
                self.entering[n - 1] = input;
                // (3) Shift; capture the evicted (leftmost) column.
                self.window.shift_into(&self.entering, &mut self.evicted);
                // (4) FIFO writes: evicted rows 1..n re-enter one row up.
                for (k, fifo) in self.fifos.iter_mut().enumerate() {
                    fifo.push_back(self.evicted[k + 1]);
                }
                self.buffered_pixels += self.fifos.len() as u64;
                self.occ_hist.observe(self.buffered_pixels * pixel_bits);
                self.occ_gauge
                    .observe_max(self.buffered_pixels * pixel_bits);
                // (5) Kernel output once the window is fully interior.
                if r + 1 >= n && c + 1 >= n {
                    out.set(c + 1 - n, r + 1 - n, kernel.apply(&self.window.view()));
                }
                cycles += 1;
            }
        }

        self.m_cycles.add(cycles);
        self.m_window_shifts.add(cycles); // one shift per input pixel
        self.telemetry
            .trace(TraceEvent::new(cycles, TraceKind::FrameEnd, cycles, 0));

        TraditionalOutput {
            image: out,
            stats: TraditionalFrameStats {
                cycles,
                buffer_bits: self.cfg.traditional_buffer_bits(),
            },
        }
    }

    /// Clear all state (frame boundary).
    pub fn reset(&mut self) {
        self.window.clear();
        for f in &mut self.fifos {
            f.clear();
        }
        self.buffered_pixels = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{BoxFilter, MedianFilter, Tap};
    use crate::reference::direct_sliding_window;

    fn test_image(w: usize, h: usize) -> ImageU8 {
        ImageU8::from_fn(w, h, |x, y| ((x * 7 + y * 13 + (x * y) % 5) % 256) as u8)
    }

    #[test]
    fn matches_direct_reference_box() {
        let img = test_image(24, 16);
        let kernel = BoxFilter::new(4);
        let mut arch = TraditionalSlidingWindow::new(ArchConfig::new(4, 24));
        let got = arch.process_frame(&img, &kernel);
        let expect = direct_sliding_window(&img, &kernel);
        assert_eq!(got.image, expect);
        assert_eq!(got.stats.cycles, 24 * 16);
    }

    #[test]
    fn matches_direct_reference_median_various_windows() {
        for n in [2usize, 4, 6, 8] {
            let img = test_image(20, 20);
            let kernel = MedianFilter::new(n);
            let mut arch = TraditionalSlidingWindow::new(ArchConfig::new(n, 20));
            let got = arch.process_frame(&img, &kernel);
            let expect = direct_sliding_window(&img, &kernel);
            assert_eq!(got.image, expect, "window {n}");
        }
    }

    #[test]
    fn tap_verifies_exact_data_path() {
        // The tap kernel exposes raw buffered pixels: any off-by-one in the
        // FIFO delay shows up immediately.
        let img = test_image(17, 11); // deliberately odd sizes
        let kernel = Tap::top_left(4);
        let mut arch = TraditionalSlidingWindow::new(ArchConfig::new(4, 17));
        let got = arch.process_frame(&img, &kernel);
        let expect = direct_sliding_window(&img, &kernel);
        assert_eq!(got.image, expect);
    }

    #[test]
    fn narrowest_legal_image_works() {
        // W = N + 1: FIFO delay of exactly one cycle.
        let img = test_image(5, 9);
        let kernel = BoxFilter::new(4);
        let mut arch = TraditionalSlidingWindow::new(ArchConfig::new(4, 5));
        let got = arch.process_frame(&img, &kernel);
        assert_eq!(got.image, direct_sliding_window(&img, &kernel));
    }

    #[test]
    fn reusable_across_frames() {
        let kernel = BoxFilter::new(4);
        let mut arch = TraditionalSlidingWindow::new(ArchConfig::new(4, 16));
        let a = test_image(16, 12);
        let b = ImageU8::from_fn(16, 12, |x, y| (x * y % 251) as u8);
        let first = arch.process_frame(&a, &kernel);
        let second = arch.process_frame(&b, &kernel);
        assert_eq!(second.image, direct_sliding_window(&b, &kernel));
        assert_eq!(first.image, direct_sliding_window(&a, &kernel));
    }

    #[test]
    fn telemetry_high_water_matches_steady_state_occupancy() {
        let t = sw_telemetry::TelemetryHandle::new();
        let img = test_image(24, 16);
        let cfg = ArchConfig::new(4, 24);
        let mut arch = TraditionalSlidingWindow::new(cfg).with_named_telemetry(&t, "base");
        let out = arch.process_frame(&img, &BoxFilter::new(4));
        let r = t.report();
        assert_eq!(r.counters["stage.base.cycles"], out.stats.cycles);
        // Steady state fills every FIFO: occupancy equals buffer_bits.
        assert_eq!(r.gauges["fifo.base.high_water_bits"], out.stats.buffer_bits);
        assert_eq!(
            r.histograms["fifo.base.occupancy_bits"].count,
            out.stats.cycles
        );
    }

    #[test]
    fn buffer_bits_match_formula() {
        let arch = TraditionalSlidingWindow::new(ArchConfig::new(8, 512));
        let img = test_image(512, 16);
        let mut arch2 = arch.clone();
        let out = arch2.process_frame(&img, &BoxFilter::new(8));
        assert_eq!(out.stats.buffer_bits, (512 - 8) * 7 * 8);
    }
}

//! The traditional line-buffering sliding window architecture
//! (paper Section III, Figure 1).
//!
//! `N − 1` row FIFOs of raw pixels feed an N×N shift-register window. The
//! architecture has three phases — fill, process, drain — which this
//! streaming model reproduces implicitly: outputs are only emitted once the
//! window is fully inside the image, and a frame is fully processed after
//! exactly `H × W` clock cycles (one input pixel per clock).

use crate::config::ArchConfig;
use crate::kernels::WindowKernel;
use crate::window::ActiveWindow;
use crate::Pixel;
use std::collections::VecDeque;
use sw_image::ImageU8;

/// Statistics of one processed frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraditionalFrameStats {
    /// Clock cycles consumed (always `H × W`: one pixel per clock).
    pub cycles: u64,
    /// On-chip bits the line buffers occupy:
    /// `(N − 1) × (W − N) × pixel_bits`.
    pub buffer_bits: u64,
}

/// Output of one frame.
#[derive(Debug, Clone)]
pub struct TraditionalOutput {
    /// Kernel output over the valid region,
    /// `(W − N + 1) × (H − N + 1)`.
    pub image: ImageU8,
    /// Frame statistics.
    pub stats: TraditionalFrameStats,
}

/// The traditional architecture.
#[derive(Debug, Clone)]
pub struct TraditionalSlidingWindow {
    cfg: ArchConfig,
    window: ActiveWindow,
    /// `fifos[k]` carries the exiting column's row `k + 1` pixel to the
    /// entering column's row `k`, one image row later.
    fifos: Vec<VecDeque<Pixel>>,
    entering: Vec<Pixel>,
    evicted: Vec<Pixel>,
}

impl TraditionalSlidingWindow {
    /// Build the architecture for `cfg` (threshold fields are ignored —
    /// this is the uncompressed baseline).
    pub fn new(cfg: ArchConfig) -> Self {
        let n = cfg.window;
        Self {
            cfg,
            window: ActiveWindow::new(n),
            fifos: vec![VecDeque::with_capacity(cfg.fifo_depth()); n - 1],
            entering: vec![0; n],
            evicted: vec![0; n],
        }
    }

    /// The architecture's configuration.
    pub fn config(&self) -> &ArchConfig {
        &self.cfg
    }

    /// Process a full frame, returning the kernel output over the valid
    /// region.
    ///
    /// # Panics
    ///
    /// Panics if the image width differs from the configured width, the
    /// image is shorter than the window, or the kernel's window size
    /// mismatches.
    pub fn process_frame(&mut self, img: &ImageU8, kernel: &dyn WindowKernel) -> TraditionalOutput {
        let n = self.cfg.window;
        assert_eq!(img.width(), self.cfg.width, "image width mismatch");
        assert!(img.height() >= n, "image shorter than the window");
        assert_eq!(kernel.window_size(), n, "kernel window size mismatch");
        self.reset();

        let w = img.width();
        let h = img.height();
        let delay = self.cfg.fifo_depth(); // W − N cycles inside the FIFOs
        let mut out = ImageU8::filled(w - n + 1, h - n + 1, 0);
        let mut cycles = 0u64;

        for r in 0..h {
            let row = img.row(r);
            for (c, &input) in row.iter().enumerate() {
                // (1) FIFO reads: the entering column's top n−1 pixels.
                for (k, fifo) in self.fifos.iter_mut().enumerate() {
                    self.entering[k] = if fifo.len() >= delay {
                        fifo.pop_front().expect("non-empty by length check")
                    } else {
                        0 // fill phase: registers power up as zero
                    };
                }
                // (2) The input pixel enters the bottom row.
                self.entering[n - 1] = input;
                // (3) Shift; capture the evicted (leftmost) column.
                self.window.shift_into(&self.entering, &mut self.evicted);
                // (4) FIFO writes: evicted rows 1..n re-enter one row up.
                for (k, fifo) in self.fifos.iter_mut().enumerate() {
                    fifo.push_back(self.evicted[k + 1]);
                }
                // (5) Kernel output once the window is fully interior.
                if r + 1 >= n && c + 1 >= n {
                    out.set(c + 1 - n, r + 1 - n, kernel.apply(&self.window.view()));
                }
                cycles += 1;
            }
        }

        TraditionalOutput {
            image: out,
            stats: TraditionalFrameStats {
                cycles,
                buffer_bits: self.cfg.traditional_buffer_bits(),
            },
        }
    }

    /// Clear all state (frame boundary).
    pub fn reset(&mut self) {
        self.window.clear();
        for f in &mut self.fifos {
            f.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{BoxFilter, MedianFilter, Tap};
    use crate::reference::direct_sliding_window;

    fn test_image(w: usize, h: usize) -> ImageU8 {
        ImageU8::from_fn(w, h, |x, y| ((x * 7 + y * 13 + (x * y) % 5) % 256) as u8)
    }

    #[test]
    fn matches_direct_reference_box() {
        let img = test_image(24, 16);
        let kernel = BoxFilter::new(4);
        let mut arch = TraditionalSlidingWindow::new(ArchConfig::new(4, 24));
        let got = arch.process_frame(&img, &kernel);
        let expect = direct_sliding_window(&img, &kernel);
        assert_eq!(got.image, expect);
        assert_eq!(got.stats.cycles, 24 * 16);
    }

    #[test]
    fn matches_direct_reference_median_various_windows() {
        for n in [2usize, 4, 6, 8] {
            let img = test_image(20, 20);
            let kernel = MedianFilter::new(n);
            let mut arch = TraditionalSlidingWindow::new(ArchConfig::new(n, 20));
            let got = arch.process_frame(&img, &kernel);
            let expect = direct_sliding_window(&img, &kernel);
            assert_eq!(got.image, expect, "window {n}");
        }
    }

    #[test]
    fn tap_verifies_exact_data_path() {
        // The tap kernel exposes raw buffered pixels: any off-by-one in the
        // FIFO delay shows up immediately.
        let img = test_image(17, 11); // deliberately odd sizes
        let kernel = Tap::top_left(4);
        let mut arch = TraditionalSlidingWindow::new(ArchConfig::new(4, 17));
        let got = arch.process_frame(&img, &kernel);
        let expect = direct_sliding_window(&img, &kernel);
        assert_eq!(got.image, expect);
    }

    #[test]
    fn narrowest_legal_image_works() {
        // W = N + 1: FIFO delay of exactly one cycle.
        let img = test_image(5, 9);
        let kernel = BoxFilter::new(4);
        let mut arch = TraditionalSlidingWindow::new(ArchConfig::new(4, 5));
        let got = arch.process_frame(&img, &kernel);
        assert_eq!(got.image, direct_sliding_window(&img, &kernel));
    }

    #[test]
    fn reusable_across_frames() {
        let kernel = BoxFilter::new(4);
        let mut arch = TraditionalSlidingWindow::new(ArchConfig::new(4, 16));
        let a = test_image(16, 12);
        let b = ImageU8::from_fn(16, 12, |x, y| (x * y % 251) as u8);
        let first = arch.process_frame(&a, &kernel);
        let second = arch.process_frame(&b, &kernel);
        assert_eq!(second.image, direct_sliding_window(&b, &kernel));
        assert_eq!(first.image, direct_sliding_window(&a, &kernel));
    }

    #[test]
    fn buffer_bits_match_formula() {
        let arch = TraditionalSlidingWindow::new(ArchConfig::new(8, 512));
        let img = test_image(512, 16);
        let mut arch2 = arch.clone();
        let out = arch2.process_frame(&img, &BoxFilter::new(8));
        assert_eq!(out.stats.buffer_bits, (512 - 8) * 7 * 8);
    }
}

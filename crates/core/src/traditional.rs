//! The traditional line-buffering sliding window architecture
//! (paper Section III, Figure 1).
//!
//! `N − 1` row FIFOs of raw pixels feed an N×N shift-register window. The
//! architecture has three phases — fill, process, drain — which the
//! streaming model reproduces implicitly: outputs are only emitted once the
//! window is fully inside the image, and a frame is fully processed after
//! exactly `H × W` clock cycles (one input pixel per clock).
//!
//! Since the codec-layer refactor this is [`SlidingWindow`] instantiated
//! with the identity codec [`RawCodec`]: a group width of one column whose
//! "encoding" stores the `N − 1` recirculating pixels verbatim, so the
//! memory unit *is* the raw line buffer. The aliases below keep the
//! original API; the tests in this module pin the datapath and telemetry
//! against the stand-alone implementation this file used to contain.

use crate::arch::SlidingWindow;
use crate::codec::RawCodec;

/// The traditional architecture: the unified datapath with the identity
/// codec.
pub type TraditionalSlidingWindow = SlidingWindow<RawCodec>;

/// Statistics of one processed frame. The unified [`crate::FrameStats`];
/// the former `buffer_bits` field is now `raw_buffer_bits` (same value:
/// `(N − 1) × (W − N) × pixel_bits`).
#[deprecated(
    since = "0.1.0",
    note = "pre-unification alias; use sw_core::FrameStats"
)]
pub type TraditionalFrameStats = crate::arch::FrameStats;

/// Output of one frame.
#[deprecated(
    since = "0.1.0",
    note = "pre-unification alias; use sw_core::FrameOutput"
)]
pub type TraditionalOutput = crate::arch::FrameOutput;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ArchConfig;
    use crate::kernels::{BoxFilter, MedianFilter, Tap};
    use crate::reference::direct_sliding_window;
    use sw_image::ImageU8;

    fn test_image(w: usize, h: usize) -> ImageU8 {
        ImageU8::from_fn(w, h, |x, y| ((x * 7 + y * 13 + (x * y) % 5) % 256) as u8)
    }

    #[test]
    fn matches_direct_reference_box() {
        let img = test_image(24, 16);
        let kernel = BoxFilter::new(4);
        let mut arch = TraditionalSlidingWindow::new(ArchConfig::new(4, 24));
        let got = arch.process_frame(&img, &kernel).unwrap();
        let expect = direct_sliding_window(&img, &kernel);
        assert_eq!(got.image, expect);
        assert_eq!(got.stats.cycles, 24 * 16);
    }

    #[test]
    fn matches_direct_reference_median_various_windows() {
        for n in [2usize, 4, 6, 8] {
            let img = test_image(20, 20);
            let kernel = MedianFilter::new(n);
            let mut arch = TraditionalSlidingWindow::new(ArchConfig::new(n, 20));
            let got = arch.process_frame(&img, &kernel).unwrap();
            let expect = direct_sliding_window(&img, &kernel);
            assert_eq!(got.image, expect, "window {n}");
        }
    }

    #[test]
    fn tap_verifies_exact_data_path() {
        // The tap kernel exposes raw buffered pixels: any off-by-one in the
        // FIFO delay shows up immediately.
        let img = test_image(17, 11); // deliberately odd sizes
        let kernel = Tap::top_left(4);
        let mut arch = TraditionalSlidingWindow::new(ArchConfig::new(4, 17));
        let got = arch.process_frame(&img, &kernel).unwrap();
        let expect = direct_sliding_window(&img, &kernel);
        assert_eq!(got.image, expect);
    }

    #[test]
    fn narrowest_legal_image_works() {
        // W = N + 1: FIFO delay of exactly one cycle.
        let img = test_image(5, 9);
        let kernel = BoxFilter::new(4);
        let mut arch = TraditionalSlidingWindow::new(ArchConfig::new(4, 5));
        let got = arch.process_frame(&img, &kernel).unwrap();
        assert_eq!(got.image, direct_sliding_window(&img, &kernel));
    }

    #[test]
    fn reusable_across_frames() {
        let kernel = BoxFilter::new(4);
        let mut arch = TraditionalSlidingWindow::new(ArchConfig::new(4, 16));
        let a = test_image(16, 12);
        let b = ImageU8::from_fn(16, 12, |x, y| (x * y % 251) as u8);
        let first = arch.process_frame(&a, &kernel).unwrap();
        let second = arch.process_frame(&b, &kernel).unwrap();
        assert_eq!(second.image, direct_sliding_window(&b, &kernel));
        assert_eq!(first.image, direct_sliding_window(&a, &kernel));
    }

    #[test]
    fn telemetry_high_water_matches_steady_state_occupancy() {
        let t = sw_telemetry::TelemetryHandle::new();
        let img = test_image(24, 16);
        let cfg = ArchConfig::new(4, 24);
        let mut arch = TraditionalSlidingWindow::new(cfg).with_named_telemetry(&t, "base");
        let out = arch.process_frame(&img, &BoxFilter::new(4)).unwrap();
        let r = t.report();
        assert_eq!(r.counters["stage.base.cycles"], out.stats.cycles);
        // Steady state fills every FIFO: occupancy equals the raw span.
        assert_eq!(
            r.gauges["fifo.base.high_water_bits"],
            out.stats.raw_buffer_bits
        );
        assert_eq!(
            r.histograms["fifo.base.occupancy_bits"].count,
            out.stats.cycles
        );
    }

    #[test]
    fn buffer_bits_match_formula() {
        let arch = TraditionalSlidingWindow::new(ArchConfig::new(8, 512));
        let img = test_image(512, 16);
        let mut arch2 = arch.clone();
        let out = arch2.process_frame(&img, &BoxFilter::new(8)).unwrap();
        assert_eq!(out.stats.raw_buffer_bits, (512 - 8) * 7 * 8);
        // The raw codec saves nothing by construction.
        assert_eq!(out.stats.peak_total_occupancy, out.stats.raw_buffer_bits);
    }
}

//! Adaptive threshold control — the paper's stated future work, implemented.
//!
//! "Our future work will investigate making this automatically adjustable at
//! runtime based on the previous frame compression ratio" (Section VII), and
//! Section V-E: "This can be fixed in the future by making threshold values
//! automatically adjustable based on the available memory and the current
//! frame compression ratio."
//!
//! [`AdaptiveThreshold`] is that controller: after each frame it compares
//! the measured worst-case packed-bit occupancy against the provisioned
//! BRAM budget and walks the threshold up (on overflow risk) or down (when
//! there is comfortable headroom), with hysteresis so alternating scenes do
//! not cause oscillation.

use crate::Coeff;
use sw_telemetry::{Counter, Gauge, TelemetryHandle, TraceEvent, TraceKind};

/// Controller configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Provisioned packed-bit capacity in bits (e.g. from a
    /// [`crate::planner::BramPlan`]).
    pub budget_bits: u64,
    /// Raise the threshold when occupancy exceeds this fraction of budget.
    pub high_water: f64,
    /// Lower the threshold when occupancy falls below this fraction.
    pub low_water: f64,
    /// Largest threshold the controller may select.
    pub max_threshold: Coeff,
}

impl AdaptiveConfig {
    /// Sensible defaults: react above 95 % of budget, relax below 60 %.
    pub fn new(budget_bits: u64) -> Self {
        Self {
            budget_bits,
            high_water: 0.95,
            low_water: 0.60,
            max_threshold: 16,
        }
    }
}

/// Outcome of one controller step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Adjustment {
    /// Threshold raised (compression tightened).
    Raised,
    /// Threshold lowered (quality recovered).
    Lowered,
    /// No change.
    Held,
    /// Already at the maximum threshold but still over budget — the frame
    /// would overflow in hardware (the paper's unfixable "bad frame").
    SaturatedOverBudget,
}

/// The per-frame threshold controller.
///
/// ```
/// use sw_core::adaptive::{AdaptiveConfig, AdaptiveThreshold, Adjustment};
/// let mut ctl = AdaptiveThreshold::new(AdaptiveConfig::new(10_000), 0);
/// // A frame over budget raises the threshold immediately...
/// assert_eq!(ctl.observe(12_000), Adjustment::Raised);
/// assert_eq!(ctl.threshold(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct AdaptiveThreshold {
    cfg: AdaptiveConfig,
    threshold: Coeff,
    /// Frames to hold after a change (hysteresis).
    cooldown: u32,
    frames: u64,
    raises: u64,
    lowers: u64,
    // --- telemetry (no-ops unless `with_telemetry` was called) ---
    telemetry: TelemetryHandle,
    g_threshold: Gauge,
    m_raises: Counter,
    m_lowers: Counter,
    m_saturated: Counter,
}

impl AdaptiveThreshold {
    /// Controller starting at the given threshold.
    pub fn new(cfg: AdaptiveConfig, initial_threshold: Coeff) -> Self {
        assert!(cfg.budget_bits > 0, "budget must be positive");
        assert!(
            cfg.low_water < cfg.high_water,
            "low water must sit below high water"
        );
        Self {
            cfg,
            threshold: initial_threshold.clamp(0, cfg.max_threshold),
            cooldown: 0,
            frames: 0,
            raises: 0,
            lowers: 0,
            telemetry: TelemetryHandle::disabled(),
            g_threshold: Gauge::noop(),
            m_raises: Counter::noop(),
            m_lowers: Counter::noop(),
            m_saturated: Counter::noop(),
        }
    }

    /// Record controller activity into `telemetry` under `adaptive.*`
    /// (`threshold` gauge, `raises`/`lowers`/`saturated` counters) and emit
    /// a `threshold_change` trace event per adjustment (stamped with the
    /// frame number as the cycle).
    pub fn with_telemetry(mut self, telemetry: &TelemetryHandle) -> Self {
        self.g_threshold = telemetry.gauge("adaptive.threshold");
        self.m_raises = telemetry.counter("adaptive.raises");
        self.m_lowers = telemetry.counter("adaptive.lowers");
        self.m_saturated = telemetry.counter("adaptive.saturated");
        self.g_threshold.set(self.threshold.max(0) as u64);
        self.telemetry = telemetry.clone();
        self
    }

    /// The threshold to use for the next frame.
    #[inline]
    pub fn threshold(&self) -> Coeff {
        self.threshold
    }

    /// Frames observed so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// `(raises, lowers)` counters.
    pub fn adjustments(&self) -> (u64, u64) {
        (self.raises, self.lowers)
    }

    /// Feed the previous frame's measured worst-case packed occupancy and
    /// obtain the adjustment decision. Call once per frame.
    pub fn observe(&mut self, occupancy_bits: u64) -> Adjustment {
        self.frames += 1;
        let occ = occupancy_bits as f64;
        let budget = self.cfg.budget_bits as f64;
        // Over budget overrides hysteresis: react immediately.
        if occ > budget * self.cfg.high_water {
            if self.threshold >= self.cfg.max_threshold {
                self.m_saturated.inc();
                return Adjustment::SaturatedOverBudget;
            }
            self.threshold += 1;
            self.raises += 1;
            self.cooldown = 2;
            self.record_change(self.threshold - 1);
            self.m_raises.inc();
            return Adjustment::Raised;
        }
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return Adjustment::Held;
        }
        if occ < budget * self.cfg.low_water && self.threshold > 0 {
            self.threshold -= 1;
            self.lowers += 1;
            self.cooldown = 2;
            self.record_change(self.threshold + 1);
            self.m_lowers.inc();
            return Adjustment::Lowered;
        }
        Adjustment::Held
    }

    /// [`AdaptiveThreshold::observe`] that also applies the resulting
    /// threshold to an architecture through the object-safe
    /// [`crate::SlidingWindowArch`] trait, so the controller tunes any
    /// codec the same way. The architecture is only touched when the
    /// threshold actually moved.
    pub fn observe_and_retune(
        &mut self,
        occupancy_bits: u64,
        arch: &mut dyn crate::arch::SlidingWindowArch,
    ) -> Adjustment {
        let adj = self.observe(occupancy_bits);
        if matches!(adj, Adjustment::Raised | Adjustment::Lowered) {
            arch.set_threshold(self.threshold);
        }
        adj
    }

    /// Emit the gauge update and trace event for a threshold move.
    fn record_change(&self, old: Coeff) {
        self.g_threshold.set(self.threshold.max(0) as u64);
        self.telemetry.trace(TraceEvent::new(
            self.frames,
            TraceKind::ThresholdChange,
            self.threshold.max(0) as u64,
            old.max(0) as u64,
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(budget: u64) -> AdaptiveThreshold {
        AdaptiveThreshold::new(AdaptiveConfig::new(budget), 0)
    }

    #[test]
    fn raises_on_over_budget() {
        let mut c = controller(10_000);
        assert_eq!(c.observe(9_999), Adjustment::Raised); // > 95%
        assert_eq!(c.threshold(), 1);
    }

    #[test]
    fn lowers_after_cooldown_when_idle() {
        let mut c = AdaptiveThreshold::new(AdaptiveConfig::new(10_000), 4);
        // Well under budget, but hysteresis holds for two frames after
        // construction? No cooldown initially: lowers immediately.
        assert_eq!(c.observe(1_000), Adjustment::Lowered);
        assert_eq!(c.threshold(), 3);
        // Cooldown: held for two frames.
        assert_eq!(c.observe(1_000), Adjustment::Held);
        assert_eq!(c.observe(1_000), Adjustment::Held);
        assert_eq!(c.observe(1_000), Adjustment::Lowered);
    }

    #[test]
    fn holds_in_the_comfort_band() {
        let mut c = AdaptiveThreshold::new(AdaptiveConfig::new(10_000), 2);
        assert_eq!(c.observe(8_000), Adjustment::Held); // 60%..95%
        assert_eq!(c.threshold(), 2);
    }

    #[test]
    fn saturates_at_max_threshold() {
        let cfg = AdaptiveConfig {
            max_threshold: 2,
            ..AdaptiveConfig::new(1_000)
        };
        let mut c = AdaptiveThreshold::new(cfg, 0);
        assert_eq!(c.observe(5_000), Adjustment::Raised);
        assert_eq!(c.observe(5_000), Adjustment::Raised);
        assert_eq!(c.observe(5_000), Adjustment::SaturatedOverBudget);
        assert_eq!(c.threshold(), 2);
    }

    #[test]
    fn threshold_never_goes_negative() {
        let mut c = controller(u64::MAX / 2);
        for _ in 0..10 {
            c.observe(0);
        }
        assert_eq!(c.threshold(), 0);
    }

    #[test]
    fn counters_track_adjustments() {
        let mut c = controller(10_000);
        c.observe(20_000); // raise
        c.observe(1); // cooldown hold
        c.observe(1); // cooldown hold
        c.observe(1); // lower
        assert_eq!(c.adjustments(), (1, 1));
        assert_eq!(c.frames(), 4);
    }

    #[test]
    fn retunes_the_architecture_through_the_trait() {
        use crate::arch::build_arch;
        use crate::codec::LineCodecKind;
        use crate::config::ArchConfig;
        use crate::kernels::BoxFilter;
        use sw_image::ImageU8;

        let img = ImageU8::from_fn(64, 32, |x, y| {
            (128.0 + 64.0 * ((x as f64) * 0.11).sin() + 48.0 * ((y as f64) * 0.07).cos()) as u8
        });
        let cfg = ArchConfig::new(8, 64).with_codec(LineCodecKind::Legall);
        let mut arch = build_arch(&cfg).unwrap();
        let lossless = arch.process_frame(&img, &BoxFilter::new(8)).unwrap().stats;

        // A budget below the lossless peak forces the controller to raise
        // the threshold, and the retune must bite on the next frame.
        let budget = lossless.peak_payload_occupancy / 2;
        let mut ctl = AdaptiveThreshold::new(AdaptiveConfig::new(budget), 0);
        for _ in 0..3 {
            let adj = ctl.observe_and_retune(lossless.peak_payload_occupancy, arch.as_mut());
            assert_eq!(adj, Adjustment::Raised);
            assert_eq!(arch.config().threshold, ctl.threshold());
        }
        let tuned = arch.process_frame(&img, &BoxFilter::new(8)).unwrap().stats;
        assert!(
            tuned.peak_payload_occupancy < lossless.peak_payload_occupancy,
            "raised threshold must shrink the payload"
        );
    }

    #[test]
    fn telemetry_mirrors_controller_state() {
        let t = sw_telemetry::TelemetryHandle::new();
        let mut c = controller(10_000).with_telemetry(&t);
        c.observe(20_000); // raise
        c.observe(1); // hold
        c.observe(1); // hold
        c.observe(1); // lower
        let r = t.report();
        assert_eq!(r.counters["adaptive.raises"], 1);
        assert_eq!(r.counters["adaptive.lowers"], 1);
        assert_eq!(r.gauges["adaptive.threshold"], c.threshold() as u64);
        // Each adjustment left a threshold_change trace event.
        let mut buf = Vec::new();
        assert_eq!(t.write_trace_jsonl(&mut buf).unwrap(), 2);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("\"event\":\"threshold_change\""));
    }
}

//! Register-transfer-level datapath model of the compressed architecture.
//!
//! [`crate::compressed::CompressedSlidingWindow`] is the *functional* model:
//! it stores structured `EncodedColumn` records in the memory unit. This
//! module is the **RTL-faithful** model: the memory unit holds nothing but
//! raw bits in three hardware FIFOs, exactly as the paper's Figure 4 wires
//! them —
//!
//! * the **Pixel FIFO** receives the `WEN`-qualified output words of a real
//!   [`sw_bitstream::BitPackingUnit`] (Figure 6 registers: `CBits`,
//!   `Yout_Current`, `Yout_Reg`),
//! * the **NBits FIFO** receives one 4-bit width per sub-band column,
//!   computed by the gate-level [`sw_bitstream::NBitsCircuit`] (Figure 7),
//! * the **BitMap FIFO** receives one bit per coefficient,
//!
//! and the read side reconstructs coefficients through a real
//! [`sw_bitstream::BitUnpackingUnit`] (Figures 8–9: `CBits`, `Yout_rem`,
//! sign extension) with the same word-granular FIFO handshake the hardware
//! uses.
//!
//! The test suite proves the RTL model produces **bit-identical output
//! images** to the functional model (and therefore to the traditional
//! architecture in lossless mode) while the Pixel FIFO's occupancy
//! watermark tracks the functional model's accounting.

use crate::config::ArchConfig;
use crate::kernels::WindowKernel;
use crate::window::ActiveWindow;
use crate::{Coeff, Pixel};
use std::collections::VecDeque;
use sw_bitstream::nbits::min_bits_significant;
use sw_bitstream::{apply_threshold, BitPackingUnit, BitUnpackingUnit, NBitsCircuit};
use sw_fpga::fifo::{BitFifo, WordFifo};
use sw_image::ImageU8;
use sw_wavelet::haar2d::{ColumnPairInverse, ColumnPairTransformer, SubbandColumn};
use sw_wavelet::SubBand;

/// Per-frame statistics of the RTL model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtlFrameStats {
    /// Clock cycles (always `H × W`).
    pub cycles: u64,
    /// Words pushed into the Pixel FIFO (`WEN` pulses).
    pub pixel_fifo_words: u64,
    /// Peak Pixel FIFO occupancy in bits.
    pub pixel_fifo_peak_bits: u64,
    /// Peak NBits FIFO occupancy in entries.
    pub nbits_fifo_peak: u64,
    /// Peak BitMap FIFO occupancy in bits.
    pub bitmap_fifo_peak_bits: u64,
}

/// Output of one frame.
#[derive(Debug, Clone)]
pub struct RtlOutput {
    /// Kernel output over the valid region.
    pub image: ImageU8,
    /// Frame statistics.
    pub stats: RtlFrameStats,
}

/// Management record travelling beside the packed bits: the widths of the
/// two sub-band halves of one decomposed column.
#[derive(Debug, Clone, Copy)]
struct MgmtEntry {
    nbits: [u32; 2],
}

/// The RTL-faithful compressed sliding window.
#[derive(Debug)]
pub struct RtlCompressedSlidingWindow {
    cfg: ArchConfig,
    window: ActiveWindow,
    fwd: ColumnPairTransformer,
    inv: ColumnPairInverse,
    nbits_circuit: NBitsCircuit,
    packer: BitPackingUnit,
    unpacker: BitUnpackingUnit,
    /// Packed payload words (the Pixel FIFO).
    pixel_fifo: BitFifo,
    /// One entry per decomposed column (the NBits FIFO).
    nbits_fifo: WordFifo<MgmtEntry>,
    /// One bit per coefficient (the BitMap FIFO).
    bitmap_fifo: BitFifo,
    /// Decomposed-column order book-keeping: which sub-bands each pending
    /// column carries, tagged with its first-exit cycle.
    order: VecDeque<(u64, (SubBand, SubBand))>,
    carry: Option<Vec<Pixel>>,
    entering: Vec<Pixel>,
    evicted: Vec<Pixel>,
    wen_words: u64,
}

impl RtlCompressedSlidingWindow {
    /// Build the RTL model for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `width < window + 2` (same constraint as the functional
    /// model).
    pub fn new(cfg: ArchConfig) -> Self {
        assert!(
            cfg.width >= cfg.window + 2,
            "compressed architecture needs width >= window + 2"
        );
        let n = cfg.window;
        Self {
            cfg,
            window: ActiveWindow::new(n),
            fwd: ColumnPairTransformer::new(n),
            inv: ColumnPairInverse::new(n),
            // Exact Haar coefficients of u8 pixels need up to 10 bits.
            nbits_circuit: NBitsCircuit::new(11),
            // The per-band threshold (policy-dependent) is applied before
            // the packer, so the packer's own comparator only separates
            // zero from non-zero (threshold 0). Using cfg.threshold here
            // would wrongly threshold the LL band under the details-only
            // policy.
            packer: BitPackingUnit::new(0),
            unpacker: BitUnpackingUnit::new(),
            pixel_fifo: BitFifo::unbounded(),
            nbits_fifo: WordFifo::new(2 * cfg.width),
            bitmap_fifo: BitFifo::unbounded(),
            order: VecDeque::new(),
            carry: None,
            entering: vec![0; n],
            evicted: vec![0; n],
            wen_words: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ArchConfig {
        &self.cfg
    }

    /// Process one frame.
    ///
    /// # Panics
    ///
    /// Panics on geometry/kernel mismatches, as the functional model does.
    pub fn process_frame(&mut self, img: &ImageU8, kernel: &dyn WindowKernel) -> RtlOutput {
        let n = self.cfg.window;
        assert_eq!(img.width(), self.cfg.width, "image width mismatch");
        assert!(img.height() >= n, "image shorter than the window");
        assert_eq!(kernel.window_size(), n, "kernel window size mismatch");
        self.reset();

        let w = img.width();
        let h = img.height();
        let delay = self.cfg.fifo_depth() as u64;
        let mut out = ImageU8::filled(w - n + 1, h - n + 1, 0);
        let mut coeff_col: Vec<Coeff> = vec![0; n];
        let mut cycle: u64 = 0;

        for r in 0..h {
            let row = img.row(r);
            for (c, &input) in row.iter().enumerate() {
                // Read side: Bit Unpacking + inverse IWT.
                let delivered = if cycle >= delay {
                    self.read_side(cycle - delay)
                } else {
                    None
                };
                match delivered {
                    Some(col) => self.entering[..n - 1].copy_from_slice(&col[1..]),
                    None => self.entering[..n - 1].fill(0),
                }
                self.entering[n - 1] = input;

                // Window shift.
                self.window.shift_into(&self.entering, &mut self.evicted);

                // Write side: forward IWT + NBits + Bit Packing.
                for (dst, &src) in coeff_col.iter_mut().zip(&self.evicted) {
                    *dst = src as Coeff;
                }
                if let Some(pair) = self.fwd.push_column(&coeff_col) {
                    self.write_side(cycle - 1, pair.even);
                    self.write_side(cycle, pair.odd);
                }

                if r + 1 >= n && c + 1 >= n {
                    out.set(c + 1 - n, r + 1 - n, kernel.apply(&self.window.view()));
                }
                cycle += 1;
            }
        }

        let stats = RtlFrameStats {
            cycles: cycle,
            pixel_fifo_words: self.wen_words,
            pixel_fifo_peak_bits: self.pixel_fifo.high_watermark(),
            nbits_fifo_peak: self.nbits_fifo.high_watermark(),
            bitmap_fifo_peak_bits: self.bitmap_fifo.high_watermark(),
        };
        RtlOutput { image: out, stats }
    }

    /// Write side of the memory unit: threshold, NBits circuit, Bit Packing
    /// block, `WEN`-qualified FIFO pushes.
    fn write_side(&mut self, exit_cycle: u64, col: SubbandColumn) {
        let half = self.cfg.window / 2;
        let mut nbits = [1u32; 2];
        for (idx, band) in [col.bands.0, col.bands.1].into_iter().enumerate() {
            let t = self.cfg.policy.threshold_for(band, self.cfg.threshold);
            let coeffs = &col.coeffs[idx * half..(idx + 1) * half];
            // Hardware computes NBits combinationally over the thresholded
            // column (the NBits circuit sees post-threshold values).
            let thresholded: Vec<Coeff> = coeffs.iter().map(|&c| apply_threshold(c, t)).collect();
            let width = min_bits_significant(&thresholded, 0).max(
                // The gate-level circuit agrees; evaluate it to keep the
                // model honest (debug builds assert equality).
                if thresholded.iter().any(|&c| c != 0) {
                    self.nbits_circuit.evaluate(&thresholded)
                } else {
                    1
                },
            );
            nbits[idx] = width;
            // Drive the Bit Packing block, one coefficient per clock.
            // Its own threshold comparator handles the BitMap bit.
            for &c in &thresholded {
                let outp = self.packer.clock(c, width);
                let Ok(()) = self.bitmap_fifo.push_bits(outp.bitmap_bit as u32, 1) else {
                    unreachable!("BitMap FIFO is unbounded")
                };
                for word in outp.words {
                    let Ok(()) = self.pixel_fifo.push_bits(word as u32, 8) else {
                        unreachable!("Pixel FIFO is unbounded")
                    };
                    self.wen_words += 1;
                }
            }
        }
        let Ok(()) = self.nbits_fifo.push(MgmtEntry { nbits }) else {
            unreachable!("management FIFO is sized for a full row")
        };
        self.order.push_back((exit_cycle, col.bands));
    }

    /// Read side: Bit Unpacking with FIFO handshake, then the inverse IWT.
    fn read_side(&mut self, tag: u64) -> Option<Vec<Pixel>> {
        if let Some(col) = self.carry.take() {
            return Some(col);
        }
        let half = self.cfg.window / 2;
        // Reconstruct two decomposed columns (one pair), then run IIWT.
        let mut decomposed = Vec::with_capacity(2);
        for step in 0..2 {
            let (exit, bands) = *self.order.front()?;
            if step == 0 && exit != tag {
                debug_assert!(exit > tag, "memory unit fell behind");
                return None;
            }
            self.order.pop_front();
            let Ok(mgmt) = self.nbits_fifo.pop() else {
                unreachable!("one NBits entry exists per column")
            };
            let mut coeffs = Vec::with_capacity(2 * half);
            for nbits in mgmt.nbits {
                for _ in 0..half {
                    let Ok(raw_bit) = self.bitmap_fifo.pop_bits(1) else {
                        unreachable!("one BitMap bit exists per coefficient")
                    };
                    let bit = raw_bit == 1;
                    let c = loop {
                        match self.unpacker.clock(bit, nbits) {
                            Some(v) => break v,
                            None => {
                                if self.pixel_fifo.len_bits() >= 8 {
                                    let Ok(word) = self.pixel_fifo.pop_bits(8) else {
                                        unreachable!("length checked above")
                                    };
                                    self.unpacker.feed_word(word as u8);
                                } else {
                                    // Bypass path: the bits we need are
                                    // still staged in the packer's
                                    // Yout_Current (sparsely coded stretch).
                                    let avail = self.pixel_fifo.len_bits() as u32;
                                    if avail > 0 {
                                        let Ok(bits) = self.pixel_fifo.pop_bits(avail) else {
                                            unreachable!("length checked above")
                                        };
                                        self.unpacker.feed_bits(bits, avail);
                                    }
                                    let (bits, count) = self.packer.drain_staged();
                                    assert!(count > 0, "Pixel FIFO underrun with empty packer");
                                    self.unpacker.feed_bits(bits, count);
                                }
                            }
                        }
                    };
                    coeffs.push(c);
                }
            }
            decomposed.push(SubbandColumn { bands, coeffs });
        }
        let (Some(odd), Some(even)) = (decomposed.pop(), decomposed.pop()) else {
            unreachable!("exactly two columns were reconstructed")
        };
        debug_assert!(!self.inv.has_pending());
        let none = self.inv.push_column(even);
        debug_assert!(none.is_none());
        let Some((c0, c1)) = self.inv.push_column(odd) else {
            unreachable!("an even/odd pair always reconstructs")
        };
        let clamp = |v: Coeff| v.clamp(0, 255) as Pixel;
        self.carry = Some(c1.into_iter().map(clamp).collect());
        Some(c0.into_iter().map(clamp).collect())
    }

    /// Clear all state (frame boundary).
    pub fn reset(&mut self) {
        self.window.clear();
        self.fwd.reset();
        self.inv.reset();
        self.packer.reset();
        self.unpacker.reset();
        self.pixel_fifo.clear();
        self.nbits_fifo.clear();
        self.bitmap_fifo.clear();
        self.order.clear();
        self.carry = None;
        self.wen_words = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compressed::CompressedSlidingWindow;
    use crate::config::ThresholdPolicy;
    use crate::kernels::{BoxFilter, Tap};
    use crate::traditional::TraditionalSlidingWindow;

    fn test_image(w: usize, h: usize) -> ImageU8 {
        ImageU8::from_fn(w, h, |x, y| {
            let s = 90.0
                + 70.0 * ((x as f64 / w as f64) * 2.9).sin()
                + 50.0 * ((y as f64 / h as f64) * 2.1).cos()
                + ((x * 5 + y * 11) % 7) as f64;
            s.clamp(0.0, 255.0) as u8
        })
    }

    #[test]
    fn rtl_matches_functional_lossless() {
        for n in [4usize, 8] {
            let img = test_image(40, 24);
            let cfg = ArchConfig::new(n, 40);
            let kernel = BoxFilter::new(n);
            let mut rtl = RtlCompressedSlidingWindow::new(cfg);
            let mut func = CompressedSlidingWindow::new(cfg);
            let a = rtl.process_frame(&img, &kernel);
            let b = func.process_frame(&img, &kernel).unwrap();
            assert_eq!(a.image, b.image, "window {n}");
            assert_eq!(a.stats.cycles, b.stats.cycles);
        }
    }

    #[test]
    fn rtl_matches_traditional_lossless() {
        let img = test_image(33, 19);
        let cfg = ArchConfig::new(4, 33);
        let kernel = Tap::top_left(4);
        let mut rtl = RtlCompressedSlidingWindow::new(cfg);
        let mut trad = TraditionalSlidingWindow::new(cfg);
        assert_eq!(
            rtl.process_frame(&img, &kernel).image,
            trad.process_frame(&img, &kernel).unwrap().image
        );
    }

    #[test]
    fn rtl_matches_functional_lossy() {
        for t in [2i16, 4, 6] {
            let img = test_image(48, 24);
            let cfg = ArchConfig::new(8, 48).with_threshold(t);
            let kernel = Tap::top_left(8);
            let mut rtl = RtlCompressedSlidingWindow::new(cfg);
            let mut func = CompressedSlidingWindow::new(cfg);
            assert_eq!(
                rtl.process_frame(&img, &kernel).image,
                func.process_frame(&img, &kernel).unwrap().image,
                "threshold {t}"
            );
        }
    }

    #[test]
    fn rtl_matches_functional_all_subbands_policy() {
        let img = test_image(48, 24);
        let cfg = ArchConfig::new(8, 48)
            .with_threshold(4)
            .with_policy(ThresholdPolicy::AllSubbands);
        let kernel = Tap::top_left(8);
        let mut rtl = RtlCompressedSlidingWindow::new(cfg);
        let mut func = CompressedSlidingWindow::new(cfg);
        assert_eq!(
            rtl.process_frame(&img, &kernel).image,
            func.process_frame(&img, &kernel).unwrap().image
        );
    }

    #[test]
    fn pixel_fifo_watermark_tracks_functional_accounting() {
        let img = test_image(64, 32);
        let cfg = ArchConfig::new(8, 64);
        let mut rtl = RtlCompressedSlidingWindow::new(cfg);
        let mut func = CompressedSlidingWindow::new(cfg);
        let a = rtl.process_frame(&img, &BoxFilter::new(8));
        let b = func.process_frame(&img, &BoxFilter::new(8)).unwrap();
        let rtl_peak = a.stats.pixel_fifo_peak_bits as f64;
        let func_peak = b.stats.peak_payload_occupancy as f64;
        // The RTL FIFO holds whole bytes (packing boundary effects), so the
        // two measures agree only approximately.
        let ratio = rtl_peak / func_peak;
        assert!(
            (0.9..=1.1).contains(&ratio),
            "RTL {rtl_peak} vs functional {func_peak}"
        );
    }

    #[test]
    fn management_fifo_depths_match_formulas() {
        let img = test_image(64, 32);
        let cfg = ArchConfig::new(8, 64);
        let mut rtl = RtlCompressedSlidingWindow::new(cfg);
        let out = rtl.process_frame(&img, &BoxFilter::new(8));
        // Steady state holds ~(W − N) columns: one NBits entry and N BitMap
        // bits per column.
        let cols = (64 - 8) as u64;
        assert!(out.stats.nbits_fifo_peak <= cols + 2);
        assert!(out.stats.nbits_fifo_peak >= cols - 2);
        assert!(out.stats.bitmap_fifo_peak_bits <= (cols + 2) * 8);
    }

    #[test]
    fn wen_words_account_for_all_payload_bits() {
        let img = test_image(64, 32);
        let cfg = ArchConfig::new(8, 64);
        let mut rtl = RtlCompressedSlidingWindow::new(cfg);
        let mut func = CompressedSlidingWindow::new(cfg);
        let a = rtl.process_frame(&img, &BoxFilter::new(8));
        let b = func.process_frame(&img, &BoxFilter::new(8)).unwrap();
        // Every payload bit eventually leaves through an 8-bit WEN word
        // (up to the final partial word still staged at frame end).
        let words_expected = b.stats.payload_bits_total / 8;
        assert!(
            a.stats.pixel_fifo_words >= words_expected.saturating_sub(1)
                && a.stats.pixel_fifo_words <= words_expected + 1,
            "WEN words {} vs payload bits {}",
            a.stats.pixel_fifo_words,
            b.stats.payload_bits_total
        );
    }

    #[test]
    fn reusable_across_frames() {
        let cfg = ArchConfig::new(4, 24);
        let kernel = BoxFilter::new(4);
        let mut rtl = RtlCompressedSlidingWindow::new(cfg);
        let a = test_image(24, 12);
        let b = ImageU8::from_fn(24, 12, |x, y| ((x * y + 3) % 256) as u8);
        rtl.process_frame(&a, &kernel);
        let got = rtl.process_frame(&b, &kernel);
        let expect = crate::reference::direct_sliding_window(&b, &kernel);
        assert_eq!(got.image, expect);
    }
}

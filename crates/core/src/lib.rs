//! The modified sliding window architecture — core library.
//!
//! This crate is the paper's primary contribution, reproduced as a
//! bit-accurate streaming simulation on top of the substrate crates:
//!
//! * [`config`] — architecture parameters (window size, image width,
//!   threshold, threshold policy, NBits granularity, line codec).
//! * [`codec`] — the pluggable line-codec layer ([`codec::LineCodec`]):
//!   raw passthrough, the paper's Haar IWT, the two-level extension,
//!   LeGall 5/3 lifting, and a LOCO-I predictive baseline.
//! * [`arch`] — the unified sliding-window datapath
//!   ([`arch::SlidingWindow`]) generic over the codec, and the
//!   object-safe [`arch::SlidingWindowArch`] trait with
//!   [`arch::build_arch`] for config-driven selection.
//! * [`window`] — the N×N active window of shift registers and the
//!   [`window::WindowView`] handed to processing kernels.
//! * [`kernels`] — window operators (box, Gaussian, Sobel, median,
//!   morphology, taps, template matching) exercising the architectures.
//! * [`mod@reference`] — the direct (non-streaming) golden model.
//! * [`rtl`] — the register-transfer-level datapath: the memory unit holds
//!   raw packed bits in hardware FIFOs driven by the register-exact
//!   Bit Packing / Bit Unpacking units and the gate-level NBits circuit.
//! * [`traditional`] — the classic line-buffer architecture of Section III
//!   (Figure 1): `N − 1` row FIFOs of raw pixels.
//! * [`color`] — three-channel (24-bit) instantiations: per-plane
//!   datapaths with aggregated budgets.
//! * [`compressed`] — the paper's architecture (Section V, Figure 4):
//!   IWT → Bit Packing → Memory Unit → Bit Unpacking → IIWT, recirculating
//!   each buffered row in compressed form.
//! * [`compressed_ml`] — the two-level extension the paper declined:
//!   the LL stream recurses through a second transform level in-stream.
//! * [`analysis`] — the one-pass frame analyzer producing the paper's
//!   Figure 3 occupancy curves and the Figure 13 / Tables II–V memory
//!   statistics.
//! * [`planner`] — BRAM allocation (Tables I–V): row-per-BRAM mapping
//!   selection (Figure 11) and management-bit BRAM sizing.
//! * [`pipeline`] — chains of sliding-window stages sharing the compressed
//!   buffering (the paper's "2–5 sequential sliding window operations"
//!   motivation).
//! * [`shard`] — halo-sharded frame execution: `K` row strips with
//!   `N − 1`-row halos processed concurrently on a work-stealing pool and
//!   stitched deterministically (byte-identical for any `--jobs`).
//! * [`integral`] — the wide (`i32`) instantiation of the datapath: an
//!   integral-image line buffer packing delta lines through the
//!   width-generic column codec (experiment E27).
//! * [`adaptive`] — the paper's *future work*: a per-frame threshold
//!   controller that keeps packed bits within a BRAM budget.
//! * [`error`] — the crate-wide [`error::SwError`] / [`error::Result`]
//!   types every fallible public entry point returns.
//! * [`memory_unit`] — the capacity-enforcing Memory Unit runtime: packed
//!   groups ride real BRAM FIFO storage sized by the planner's budget,
//!   with configurable [`memory_unit::OverflowPolicy`] behaviour.
//! * [`faults`] — deterministic fault injection: seeded bit flips in the
//!   packed payload / BitMap / NBits words and forced FIFO faults, always
//!   surfaced as typed errors or bounded reconstruction error.
//! * [`stats`] — small-sample statistics (mean, 90 % confidence intervals)
//!   used by the evaluation harness.
//!
//! # Quick start
//!
//! ```
//! use sw_core::config::ArchConfig;
//! use sw_core::compressed::CompressedSlidingWindow;
//! use sw_core::kernels::BoxFilter;
//! use sw_image::ImageU8;
//!
//! let img = ImageU8::from_fn(64, 64, |x, y| ((x * 3 + y * 5) % 256) as u8);
//! let cfg = ArchConfig::new(8, img.width()).with_threshold(0); // lossless
//! let mut arch = CompressedSlidingWindow::new(cfg);
//! let out = arch.process_frame(&img, &BoxFilter::new(8))?;
//! assert_eq!(out.image.width(), 64 - 8 + 1);
//! // Lossless mode is bit-exact with the traditional architecture:
//! assert_eq!(out.stats.overflow_events, 0);
//! # Ok::<(), sw_core::error::SwError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod adaptive;
pub mod analysis;
pub mod arch;
pub mod codec;
pub mod color;
pub mod compressed;
pub mod compressed_ml;
pub mod config;
pub mod digest;
pub mod error;
pub mod faults;
pub mod integral;
pub mod kernels;
pub mod memory_unit;
pub mod pipeline;
pub mod planner;
pub mod reference;
pub mod rtl;
pub mod shard;
pub mod stats;
pub mod traditional;
pub mod window;

pub use arch::{build_arch, FrameOutput, FrameStats, SlidingWindow, SlidingWindowArch};
pub use codec::{LineCodec, LineCodecKind};
pub use config::{ArchConfig, ArchConfigBuilder, CoeffMode, NBitsGranularity, ThresholdPolicy};
pub use digest::{image_digest, stats_digest};
pub use error::SwError;
pub use faults::{FaultInjector, FaultSite, FaultSpec};
pub use integral::{analyze_integral, IntegralConfig, IntegralReport, WideCoeff, Workload};
pub use memory_unit::{MemoryUnit, MemoryUnitConfig, OverflowPolicy};
pub use sw_bitstream::{HotPath, Sample};
pub use window::{ActiveWindow, WindowView};

/// Pixel type (8-bit grayscale, as in the paper).
pub type Pixel = u8;

/// Coefficient type shared with the substrate crates.
pub type Coeff = sw_wavelet::Coeff;

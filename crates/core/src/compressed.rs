//! The modified (compressed) sliding window architecture
//! (paper Section V, Figure 4).
//!
//! Data path, one input pixel per clock:
//!
//! 1. the active window shifts; its oldest column (the paper's "right-most",
//!    image-wise the leftmost) exits into the **IWT**, which pairs it with
//!    the previously exited column and emits two decomposed columns —
//!    even `(LL, LH)` and odd `(HL, HH)`;
//! 2. each sub-band column is thresholded and **bit-packed** (NBits +
//!    BitMap + packed payload — the real bytes, via the `sw-bitstream`
//!    column codec, which is bit-exact with the register-level hardware
//!    models);
//! 3. the packed record rides the **memory unit** for exactly `W − N`
//!    cycles (the same delay the traditional FIFOs provide);
//! 4. on exit it is **bit-unpacked** and run through the **inverse IWT**;
//!    the reconstructed raw column re-enters the window one row down, its
//!    oldest pixel retiring.
//!
//! A buffered pixel therefore makes `N − 1` trips through the compressor:
//! in lossy mode the error *compounds*, which this model reproduces
//! faithfully (the paper does not discuss this; see `EXPERIMENTS.md` E8 for
//! measurements of both compounded and single-pass error).
//!
//! In lossless mode (`T = 0`) the output is **bit-identical** to the
//! traditional architecture — the integration tests prove it kernel by
//! kernel.

use crate::config::ArchConfig;
use crate::kernels::WindowKernel;
use crate::window::ActiveWindow;
use crate::{Coeff, Pixel};
use std::collections::VecDeque;
use sw_bitstream::{decode_column, encode_column, CodecTelemetry, EncodedColumn};
use sw_fpga::sim::Watermark;
use sw_image::ImageU8;
use sw_telemetry::{Counter, Gauge, Histogram, TelemetryHandle, TraceEvent, TraceKind};
use sw_wavelet::haar2d::{ColumnPairInverse, ColumnPairTransformer, SubbandColumn};
use sw_wavelet::SubBand;

/// Inclusive histogram bounds splitting `[1, max]` into eighths (deduplicated
/// for tiny ranges). Shared shape for occupancy histograms.
pub(crate) fn occupancy_bounds(max: u64) -> Vec<u64> {
    let mut bounds: Vec<u64> = (1..=8).map(|i| (max * i / 8).max(1)).collect();
    bounds.dedup();
    bounds
}

/// One compressed column pair in flight through the memory unit.
#[derive(Debug, Clone)]
struct PairEntry {
    /// Cycle at which the pair's first (even) raw column exited the window.
    first_exit: u64,
    /// Encoded sub-band columns: `[LL, LH, HL, HH]`.
    encoded: [EncodedColumn; 4],
}

impl PairEntry {
    fn payload_bits(&self) -> u64 {
        self.encoded.iter().map(|e| e.payload_bits).sum()
    }
}

/// Statistics of one frame through the compressed architecture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressedFrameStats {
    /// Clock cycles consumed (always `H × W`).
    pub cycles: u64,
    /// Total payload bits pushed into the memory unit during the frame.
    pub payload_bits_total: u64,
    /// Payload bits by sub-band `[LL, LH, HL, HH]`.
    pub per_band_bits_total: [u64; 4],
    /// Peak payload occupancy of the memory unit (bits).
    pub peak_payload_occupancy: u64,
    /// Peak occupancy including management bits (bits).
    pub peak_total_occupancy: u64,
    /// Static management-bit requirement (`2×4×(W−N) + (W−N)×N`).
    pub management_bits: u64,
    /// Raw bits the same buffered span would need uncompressed
    /// (`(W−N) × N × 8`).
    pub raw_buffer_bits: u64,
    /// Number of pushes that exceeded the configured capacity (0 when
    /// unbounded).
    pub overflow_events: usize,
}

impl CompressedFrameStats {
    /// Paper Equation 5: `(1 − Compressed/Uncompressed) × 100`, with the
    /// compressed size taken at peak occupancy including management bits.
    pub fn memory_saving_pct(&self) -> f64 {
        (1.0 - self.peak_total_occupancy as f64 / self.raw_buffer_bits as f64) * 100.0
    }
}

/// Output of one frame.
#[derive(Debug, Clone)]
pub struct CompressedOutput {
    /// Kernel output over the valid region, `(W−N+1) × (H−N+1)`.
    pub image: ImageU8,
    /// Frame statistics.
    pub stats: CompressedFrameStats,
}

/// The compressed sliding window architecture.
#[derive(Debug, Clone)]
pub struct CompressedSlidingWindow {
    cfg: ArchConfig,
    window: ActiveWindow,
    fwd: ColumnPairTransformer,
    inv: ColumnPairInverse,
    queue: VecDeque<PairEntry>,
    /// Second decoded column of the front pair, awaiting its cycle.
    carry: Option<Vec<Pixel>>,
    /// Optional capacity budget for the packed-bit memory (bits).
    capacity_bits: Option<u64>,
    // --- per-frame accounting ---
    payload_occupancy: u64,
    occupancy_watermark: Watermark,
    per_band_bits: [u64; 4],
    overflow_events: usize,
    entering: Vec<Pixel>,
    evicted: Vec<Pixel>,
    // --- telemetry (no-ops unless `with_telemetry` was called) ---
    telemetry: TelemetryHandle,
    m_cycles: Counter,
    m_window_shifts: Counter,
    m_iwt_pairs: Counter,
    m_unpack_pairs: Counter,
    m_overflow: Counter,
    m_threshold: Gauge,
    occ_hist: Histogram,
    occ_gauge: Gauge,
    codec: CodecTelemetry,
}

impl CompressedSlidingWindow {
    /// Build the architecture for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `width < window + 2` (the compressed pipeline needs at
    /// least two cycles of memory-unit latency; the paper's configurations
    /// all have `W ≫ N`).
    pub fn new(cfg: ArchConfig) -> Self {
        assert!(
            cfg.width >= cfg.window + 2,
            "compressed architecture needs width >= window + 2"
        );
        let n = cfg.window;
        Self {
            cfg,
            window: ActiveWindow::new(n),
            fwd: ColumnPairTransformer::new(n),
            inv: ColumnPairInverse::new(n),
            queue: VecDeque::new(),
            carry: None,
            capacity_bits: None,
            payload_occupancy: 0,
            occupancy_watermark: Watermark::new(),
            per_band_bits: [0; 4],
            overflow_events: 0,
            entering: vec![0; n],
            evicted: vec![0; n],
            telemetry: TelemetryHandle::disabled(),
            m_cycles: Counter::noop(),
            m_window_shifts: Counter::noop(),
            m_iwt_pairs: Counter::noop(),
            m_unpack_pairs: Counter::noop(),
            m_overflow: Counter::noop(),
            m_threshold: Gauge::noop(),
            occ_hist: Histogram::noop(),
            occ_gauge: Gauge::noop(),
            codec: CodecTelemetry::noop(),
        }
    }

    /// Set a packed-bit capacity budget; pushes beyond it are counted as
    /// overflow events (the data is still stored so measurement can
    /// continue — real hardware would corrupt, which is the paper's "bad
    /// frames" limitation).
    pub fn with_capacity_bits(mut self, bits: u64) -> Self {
        self.capacity_bits = Some(bits);
        self
    }

    /// Bind instruments to `telemetry` under the default stage name
    /// `compressed`.
    pub fn with_telemetry(self, telemetry: &TelemetryHandle) -> Self {
        self.with_named_telemetry(telemetry, "compressed")
    }

    /// Bind instruments to `telemetry` under `stage.<name>.*` (per-stage
    /// cycles, shifts, IWT pairs, unpack pairs, overflow events, threshold,
    /// codec traffic) and `fifo.<name>.*` (memory-unit occupancy histogram
    /// and high-water mark, in bits).
    pub fn with_named_telemetry(mut self, telemetry: &TelemetryHandle, name: &str) -> Self {
        let raw_bits =
            self.cfg.fifo_depth() as u64 * self.cfg.window as u64 * self.cfg.pixel_bits as u64;
        self.m_cycles = telemetry.counter(&format!("stage.{name}.cycles"));
        self.m_window_shifts = telemetry.counter(&format!("stage.{name}.window_shifts"));
        self.m_iwt_pairs = telemetry.counter(&format!("stage.{name}.iwt_pairs"));
        self.m_unpack_pairs = telemetry.counter(&format!("stage.{name}.unpack_pairs"));
        self.m_overflow = telemetry.counter(&format!("stage.{name}.overflow_events"));
        self.m_threshold = telemetry.gauge(&format!("stage.{name}.threshold"));
        self.m_threshold.set(self.cfg.threshold.max(0) as u64);
        self.occ_hist = telemetry.histogram(
            &format!("fifo.{name}.occupancy_bits"),
            &occupancy_bounds(raw_bits.max(1)),
        );
        self.occ_gauge = telemetry.gauge(&format!("fifo.{name}.high_water_bits"));
        self.codec = CodecTelemetry::attach(telemetry, &format!("stage.{name}"));
        self.telemetry = telemetry.clone();
        self
    }

    /// The architecture's configuration.
    pub fn config(&self) -> &ArchConfig {
        &self.cfg
    }

    /// Process one frame.
    ///
    /// # Panics
    ///
    /// Panics on image-width or kernel-size mismatch, or if the image is
    /// shorter than the window.
    pub fn process_frame(&mut self, img: &ImageU8, kernel: &dyn WindowKernel) -> CompressedOutput {
        let n = self.cfg.window;
        assert_eq!(img.width(), self.cfg.width, "image width mismatch");
        assert!(img.height() >= n, "image shorter than the window");
        assert_eq!(kernel.window_size(), n, "kernel window size mismatch");
        self.reset();

        let w = img.width();
        let h = img.height();
        let delay = self.cfg.fifo_depth() as u64; // W − N cycles
        let mut out = ImageU8::filled(w - n + 1, h - n + 1, 0);
        let mut coeff_col: Vec<Coeff> = vec![0; n];
        let mut cycle: u64 = 0;
        self.telemetry.trace(TraceEvent::new(
            0,
            TraceKind::FrameStart,
            w as u64,
            h as u64,
        ));

        for r in 0..h {
            let row = img.row(r);
            for (c, &input) in row.iter().enumerate() {
                // (1) Memory unit read: the column that exited `delay`
                //     cycles ago re-enters, shifted one row up.
                let delivered = if cycle >= delay {
                    self.deliver(cycle - delay)
                } else {
                    None
                };
                match delivered {
                    Some(col) => {
                        self.entering[..n - 1].copy_from_slice(&col[1..]);
                    }
                    None => self.entering[..n - 1].fill(0),
                }
                self.entering[n - 1] = input;

                // (2) Window shift; the evicted column heads to the IWT.
                self.window.shift_into(&self.entering, &mut self.evicted);

                // (3) Forward IWT over the evicted column (pairs complete on
                //     odd cycles), then threshold + bit packing.
                for (dst, &src) in coeff_col.iter_mut().zip(&self.evicted) {
                    *dst = src as Coeff;
                }
                if let Some(pair) = self.fwd.push_column(&coeff_col) {
                    self.push_pair(cycle - 1, pair.even, pair.odd);
                }

                // (4) Kernel output once the window is fully interior.
                if r + 1 >= n && c + 1 >= n {
                    out.set(c + 1 - n, r + 1 - n, kernel.apply(&self.window.view()));
                }
                cycle += 1;
            }
        }

        self.m_cycles.add(cycle);
        self.m_window_shifts.add(cycle); // one shift per input pixel
        self.telemetry
            .trace(TraceEvent::new(cycle, TraceKind::FrameEnd, cycle, 0));

        let stats = CompressedFrameStats {
            cycles: cycle,
            payload_bits_total: self.per_band_bits.iter().sum(),
            per_band_bits_total: self.per_band_bits,
            peak_payload_occupancy: self.occupancy_watermark.max(),
            peak_total_occupancy: self.occupancy_watermark.max() + self.cfg.management_bits(),
            management_bits: self.cfg.management_bits(),
            raw_buffer_bits: self.cfg.fifo_depth() as u64 * n as u64 * self.cfg.pixel_bits as u64,
            overflow_events: self.overflow_events,
        };
        CompressedOutput { image: out, stats }
    }

    /// Encode a completed column pair and push it into the memory unit.
    fn push_pair(&mut self, first_exit: u64, even: SubbandColumn, odd: SubbandColumn) {
        let t = self.cfg.threshold;
        let mode = self.cfg.coeff_mode;
        let enc = |half: &[Coeff], band: SubBand| {
            let t_band = self.cfg.policy.threshold_for(band, t);
            if band.is_detail() {
                // The configured datapath width saturates detail
                // coefficients (LL fits any mode: it stays in pixel range).
                let clamped: Vec<Coeff> = half.iter().map(|&c| mode.clamp_detail(c)).collect();
                encode_column(&clamped, t_band)
            } else {
                encode_column(half, t_band)
            }
        };
        let encoded = [
            enc(even.first_half(), SubBand::LL),
            enc(even.second_half(), SubBand::LH),
            enc(odd.first_half(), SubBand::HL),
            enc(odd.second_half(), SubBand::HH),
        ];
        for (i, e) in encoded.iter().enumerate() {
            self.per_band_bits[i] += e.payload_bits;
        }
        self.m_iwt_pairs.inc();
        for e in &encoded {
            self.codec.record_encoded(e);
        }
        let entry = PairEntry {
            first_exit,
            encoded,
        };
        let bits = entry.payload_bits();
        if let Some(cap) = self.capacity_bits {
            if self.payload_occupancy + bits > cap {
                self.overflow_events += 1;
                self.m_overflow.inc();
                self.telemetry.trace(TraceEvent::new(
                    first_exit,
                    TraceKind::Overflow,
                    self.payload_occupancy + bits,
                    cap,
                ));
            }
        }
        self.payload_occupancy += bits;
        self.occupancy_watermark.observe(self.payload_occupancy);
        self.occ_hist.observe(self.payload_occupancy);
        self.occ_gauge.observe_max(self.payload_occupancy);
        self.telemetry.trace(TraceEvent::new(
            first_exit,
            TraceKind::Pack,
            bits,
            self.payload_occupancy,
        ));
        self.queue.push_back(entry);
    }

    /// Deliver the decoded raw column with exit tag `tag`, if it exists.
    fn deliver(&mut self, tag: u64) -> Option<Vec<Pixel>> {
        // Odd tags are the carried second column of the front pair.
        if let Some(col) = self.carry.take() {
            debug_assert_eq!(tag % 2, 1, "carry must be consumed on odd tags");
            // The front pair is fully consumed: retire it.
            let entry = self.queue.pop_front().expect("front pair exists");
            self.payload_occupancy -= entry.payload_bits();
            self.telemetry.trace(TraceEvent::new(
                tag,
                TraceKind::FifoPop,
                self.payload_occupancy,
                entry.payload_bits(),
            ));
            return Some(col);
        }
        let front = self.queue.front_mut()?;
        if front.first_exit != tag {
            // Warmup: the requested column predates the first real pair.
            debug_assert!(
                front.first_exit > tag,
                "memory unit fell behind: front {} vs requested {tag}",
                front.first_exit
            );
            return None;
        }
        // Bit-unpack + inverse IWT.
        let n = self.cfg.window;
        self.m_unpack_pairs.inc();
        for e in &front.encoded {
            self.codec.record_decoded(e);
        }
        self.telemetry.trace(TraceEvent::new(
            tag,
            TraceKind::Unpack,
            front.encoded.iter().map(|e| e.payload_bits).sum(),
            0,
        ));
        let ll = decode_column(&front.encoded[0]);
        let lh = decode_column(&front.encoded[1]);
        let hl = decode_column(&front.encoded[2]);
        let hh = decode_column(&front.encoded[3]);
        let even = SubbandColumn {
            bands: (SubBand::LL, SubBand::LH),
            coeffs: ll.into_iter().chain(lh).collect(),
        };
        let odd = SubbandColumn {
            bands: (SubBand::HL, SubBand::HH),
            coeffs: hl.into_iter().chain(hh).collect(),
        };
        debug_assert!(!self.inv.has_pending());
        let none = self.inv.push_column(even);
        debug_assert!(none.is_none());
        let (c0, c1) = self
            .inv
            .push_column(odd)
            .expect("pair reconstructs two columns");
        let clamp = |v: Coeff| v.clamp(0, 255) as Pixel;
        let first: Vec<Pixel> = c0.into_iter().map(clamp).collect();
        let second: Vec<Pixel> = c1.into_iter().map(clamp).collect();
        debug_assert_eq!(first.len(), n);
        self.carry = Some(second);
        Some(first)
    }

    /// Clear all state (frame boundary).
    pub fn reset(&mut self) {
        self.window.clear();
        self.fwd.reset();
        self.inv.reset();
        self.queue.clear();
        self.carry = None;
        self.payload_occupancy = 0;
        self.occupancy_watermark.reset();
        self.per_band_bits = [0; 4];
        self.overflow_events = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ThresholdPolicy;
    use crate::kernels::{BoxFilter, GaussianFilter, Tap};
    use crate::reference::direct_sliding_window;
    use crate::traditional::TraditionalSlidingWindow;
    use sw_image::{mse, ImageU8};

    fn test_image(w: usize, h: usize) -> ImageU8 {
        // Smooth base + mild texture: compresses but not trivially.
        ImageU8::from_fn(w, h, |x, y| {
            let smooth = 96.0
                + 64.0 * ((x as f64 / w as f64) * 3.1).sin()
                + 48.0 * ((y as f64 / h as f64) * 2.3).cos();
            let texture = ((x * 7 + y * 13) % 5) as f64;
            (smooth + texture).clamp(0.0, 255.0) as u8
        })
    }

    #[test]
    fn lossless_matches_traditional_exactly() {
        for n in [4usize, 6, 8] {
            let img = test_image(32, 20);
            let kernel = BoxFilter::new(n);
            let cfg = ArchConfig::new(n, 32);
            let mut comp = CompressedSlidingWindow::new(cfg);
            let mut trad = TraditionalSlidingWindow::new(cfg);
            let a = comp.process_frame(&img, &kernel);
            let b = trad.process_frame(&img, &kernel);
            assert_eq!(a.image, b.image, "window {n}");
            assert_eq!(a.stats.cycles, b.stats.cycles);
        }
    }

    #[test]
    fn lossless_matches_direct_reference() {
        let img = test_image(40, 24);
        let kernel = GaussianFilter::new(8);
        let mut comp = CompressedSlidingWindow::new(ArchConfig::new(8, 40));
        let got = comp.process_frame(&img, &kernel);
        assert_eq!(got.image, direct_sliding_window(&img, &kernel));
    }

    #[test]
    fn lossless_tap_roundtrips_raw_pixels() {
        // The top-left tap reads pixels that made N−1 compression trips:
        // lossless mode must return them exactly.
        let img = test_image(33, 17);
        let kernel = Tap::top_left(4);
        let mut comp = CompressedSlidingWindow::new(ArchConfig::new(4, 33));
        let got = comp.process_frame(&img, &kernel);
        assert_eq!(got.image, direct_sliding_window(&img, &kernel));
    }

    #[test]
    fn lossy_mse_behaviour() {
        // The recirculating datapath compounds loss, so the MSE is not
        // strictly monotone between nearby thresholds; verify the robust
        // facts: lossless is exact, lossy is not, and T=2 is far better
        // than the higher thresholds.
        let img = test_image(64, 48);
        let n = 8;
        let run = |t: i16| {
            let cfg = ArchConfig::new(n, 64).with_threshold(t);
            let mut comp = CompressedSlidingWindow::new(cfg);
            let got = comp.process_frame(&img, &Tap::top_left(n));
            let expect = img.crop(0, 0, got.image.width(), got.image.height());
            mse(&got.image, &expect)
        };
        assert_eq!(run(0), 0.0, "lossless must be exact");
        let (m2, m4, m6) = (run(2), run(4), run(6));
        assert!(m2 > 0.0, "T=2 must be lossy");
        assert!(m2 < m4, "T=2 ({m2:.2}) must beat T=4 ({m4:.2})");
        assert!(m2 < m6, "T=2 ({m2:.2}) must beat T=6 ({m6:.2})");
    }

    #[test]
    fn lossy_reduces_peak_occupancy() {
        let img = test_image(64, 48);
        let occupancy = |t: i16| {
            let cfg = ArchConfig::new(8, 64).with_threshold(t);
            let mut comp = CompressedSlidingWindow::new(cfg);
            comp.process_frame(&img, &BoxFilter::new(8))
                .stats
                .peak_payload_occupancy
        };
        assert!(occupancy(6) < occupancy(0), "T=6 must compress harder");
    }

    #[test]
    fn flat_image_has_near_zero_detail_bits() {
        let img = ImageU8::filled(48, 32, 123);
        let mut comp = CompressedSlidingWindow::new(ArchConfig::new(8, 48));
        let got = comp.process_frame(&img, &BoxFilter::new(8));
        let [ll, lh, hl, hh] = got.stats.per_band_bits_total;
        // Warmup columns mix power-on zeros with the flat value, so a small
        // amount of detail energy exists; steady state contributes none.
        assert!(ll > 0, "LL still carries data");
        assert!(
            (lh + hl + hh) as f64 <= ll as f64 * 0.05,
            "details {lh}+{hl}+{hh} should be warmup-only vs LL {ll}"
        );
    }

    #[test]
    fn saving_is_positive_on_smooth_images() {
        let img = test_image(128, 64);
        let mut comp = CompressedSlidingWindow::new(ArchConfig::new(8, 128));
        let got = comp.process_frame(&img, &BoxFilter::new(8));
        let saving = got.stats.memory_saving_pct();
        assert!(
            saving > 5.0,
            "smooth image should save >5%, got {saving:.1}%"
        );
    }

    #[test]
    fn overflow_events_fire_on_random_frames_with_tight_budget() {
        // The paper's limitation: "in cases of bad frames or random images,
        // the compression ratio will be very low and the size of the packed
        // bits will be greater than the available BRAMs."
        let mut state = 1u32;
        let img = ImageU8::from_fn(64, 32, |_, _| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            (state >> 24) as u8
        });
        // Budget sized for a *smooth* frame.
        let smooth = test_image(64, 32);
        let cfg = ArchConfig::new(8, 64);
        let mut probe = CompressedSlidingWindow::new(cfg);
        let budget = probe
            .process_frame(&smooth, &BoxFilter::new(8))
            .stats
            .peak_payload_occupancy;
        let mut comp = CompressedSlidingWindow::new(cfg).with_capacity_bits(budget);
        let got = comp.process_frame(&img, &BoxFilter::new(8));
        assert!(got.stats.overflow_events > 0, "random frame must overflow");
        // And the smooth frame itself must not.
        let mut comp = CompressedSlidingWindow::new(cfg).with_capacity_bits(budget);
        let got = comp.process_frame(&smooth, &BoxFilter::new(8));
        assert_eq!(got.stats.overflow_events, 0);
    }

    #[test]
    fn all_subbands_policy_is_lossier_but_smaller() {
        let img = test_image(64, 48);
        let run = |policy: ThresholdPolicy| {
            let cfg = ArchConfig::new(8, 64).with_threshold(6).with_policy(policy);
            let mut comp = CompressedSlidingWindow::new(cfg);
            let got = comp.process_frame(&img, &Tap::top_left(8));
            let expect = img.crop(0, 0, got.image.width(), got.image.height());
            (got.stats.peak_payload_occupancy, mse(&got.image, &expect))
        };
        let (bits_d, mse_d) = run(ThresholdPolicy::DetailsOnly);
        let (bits_a, mse_a) = run(ThresholdPolicy::AllSubbands);
        assert!(bits_a <= bits_d, "thresholding LL can only shrink payload");
        assert!(mse_a >= mse_d, "thresholding LL can only hurt quality");
    }

    #[test]
    fn telemetry_reports_stage_and_fifo_series() {
        let img = test_image(32, 20);
        let t = sw_telemetry::TelemetryHandle::new();
        let cfg = ArchConfig::new(4, 32).with_threshold(2);
        let mut comp = CompressedSlidingWindow::new(cfg).with_named_telemetry(&t, "s0");
        let out = comp.process_frame(&img, &BoxFilter::new(4));

        let r = t.report();
        assert_eq!(r.counters["stage.s0.cycles"], out.stats.cycles);
        assert_eq!(r.counters["stage.s0.window_shifts"], 32 * 20);
        assert!(r.counters["stage.s0.iwt_pairs"] > 0);
        assert_eq!(
            r.counters["stage.s0.iwt_pairs"],
            r.counters["stage.s0.packer.columns"] / 4,
            "four sub-band columns per pair"
        );
        assert_eq!(
            r.counters["stage.s0.packer.payload_bits"], out.stats.payload_bits_total,
            "codec telemetry must agree with frame stats"
        );
        assert_eq!(r.gauges["stage.s0.threshold"], 2);
        assert_eq!(
            r.gauges["fifo.s0.high_water_bits"], out.stats.peak_payload_occupancy,
            "telemetry high-water must equal the stats watermark"
        );
        assert!(r.histograms["fifo.s0.occupancy_bits"].count > 0);
        // The trace saw frame boundaries and pack events.
        assert!(t.trace_len() > 2);
        let mut buf = Vec::new();
        t.write_trace_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("\"event\":\"frame_start\""));
        assert!(text.contains("\"event\":\"pack\""));
        assert!(text.contains("\"event\":\"unpack\""));
    }

    #[test]
    fn telemetry_disabled_changes_nothing() {
        let img = test_image(32, 20);
        let cfg = ArchConfig::new(4, 32).with_threshold(2);
        let mut plain = CompressedSlidingWindow::new(cfg);
        let mut wired = CompressedSlidingWindow::new(cfg)
            .with_telemetry(&sw_telemetry::TelemetryHandle::disabled());
        let a = plain.process_frame(&img, &BoxFilter::new(4));
        let b = wired.process_frame(&img, &BoxFilter::new(4));
        assert_eq!(a.image, b.image);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn reusable_across_frames() {
        let kernel = BoxFilter::new(4);
        let cfg = ArchConfig::new(4, 24);
        let mut comp = CompressedSlidingWindow::new(cfg);
        let a = test_image(24, 12);
        let b = ImageU8::from_fn(24, 12, |x, y| ((x * y) % 256) as u8);
        comp.process_frame(&a, &kernel);
        let second = comp.process_frame(&b, &kernel);
        assert_eq!(second.image, direct_sliding_window(&b, &kernel));
    }
}

#[cfg(test)]
mod coeff_mode_tests {
    use super::*;
    use crate::config::CoeffMode;
    use crate::kernels::Tap;
    use crate::reference::direct_sliding_window;
    use sw_image::{max_abs_error, ImageU8};

    fn natural(w: usize, h: usize) -> ImageU8 {
        ImageU8::from_fn(w, h, |x, y| {
            (110.0 + 80.0 * ((x as f64) * 0.07).sin() + 40.0 * ((y as f64) * 0.05).cos())
                .clamp(0.0, 255.0) as u8
        })
    }

    #[test]
    fn saturating_mode_is_exact_on_natural_content_after_warmup() {
        // Natural detail coefficients stay far below ±128, so the 8-bit
        // datapath changes nothing — except during warmup, where real
        // pixels pair vertically with power-on zeros (details ≈ ±pixel,
        // which clip). That first-row artifact is genuine 8-bit-datapath
        // behaviour; below it the two modes are identical.
        let img = natural(48, 24);
        let n = 8;
        let kernel = Tap::top_left(n);
        let exact = {
            let mut a = CompressedSlidingWindow::new(ArchConfig::new(n, 48));
            a.process_frame(&img, &kernel).image
        };
        let sat = {
            let cfg = ArchConfig::new(n, 48).with_coeff_mode(CoeffMode::Saturating8);
            let mut a = CompressedSlidingWindow::new(cfg);
            a.process_frame(&img, &kernel).image
        };
        assert_eq!(exact, direct_sliding_window(&img, &kernel));
        let (w, h) = (exact.width(), exact.height());
        assert_eq!(
            exact.crop(0, 1, w, h - 1),
            sat.crop(0, 1, w, h - 1),
            "steady-state rows must be identical"
        );
        assert_ne!(
            exact.row(0),
            sat.row(0),
            "warmup clipping is expected on the first output row"
        );
    }

    #[test]
    fn saturating_mode_clips_extreme_detail() {
        // A checkerboard drives HH to ±510: the 8-bit datapath must clip,
        // so "lossless" is no longer lossless — exactly the failure mode
        // DESIGN.md predicts for a literal 8-bit reading of the paper.
        let img = ImageU8::from_fn(32, 16, |x, y| if (x + y) % 2 == 0 { 0 } else { 255 });
        let n = 4;
        let kernel = Tap::top_left(n);
        let reference = direct_sliding_window(&img, &kernel);
        let exact = {
            let mut a = CompressedSlidingWindow::new(ArchConfig::new(n, 32));
            a.process_frame(&img, &kernel).image
        };
        assert_eq!(exact, reference, "exact mode survives the checkerboard");
        let sat = {
            let cfg = ArchConfig::new(n, 32).with_coeff_mode(CoeffMode::Saturating8);
            let mut a = CompressedSlidingWindow::new(cfg);
            a.process_frame(&img, &kernel).image
        };
        assert!(
            max_abs_error(&sat, &reference) > 50,
            "8-bit datapath must clip hard on the checkerboard"
        );
    }

    #[test]
    fn saturating_mode_never_stores_wide_details() {
        let img = ImageU8::from_fn(32, 16, |x, y| if (x + y) % 2 == 0 { 0 } else { 255 });
        let cfg = ArchConfig::new(4, 32).with_coeff_mode(CoeffMode::Saturating8);
        let mut a = CompressedSlidingWindow::new(cfg);
        let out = a.process_frame(&img, &Tap::top_left(4));
        // Details clamp to 8 bits; LL still needs up to 9. Per 4 pixels:
        // <= 9 + 3×8 bits.
        let max_bpp = (9.0 + 3.0 * 8.0) / 4.0;
        let cols = (32 - 4) as f64; // steady-state columns in flight
        let peak_bpp = out.stats.peak_payload_occupancy as f64 / (cols * 4.0);
        assert!(
            peak_bpp <= max_bpp + 0.5,
            "peak {peak_bpp:.2} bpp exceeds the 8-bit datapath bound {max_bpp:.2}"
        );
    }
}

//! The modified (compressed) sliding window architecture
//! (paper Section V, Figure 4).
//!
//! Data path, one input pixel per clock:
//!
//! 1. the active window shifts; its oldest column (the paper's "right-most",
//!    image-wise the leftmost) exits into the **IWT**, which pairs it with
//!    the previously exited column and emits two decomposed columns —
//!    even `(LL, LH)` and odd `(HL, HH)`;
//! 2. each sub-band column is thresholded and **bit-packed** (NBits +
//!    BitMap + packed payload — the real bytes, via the `sw-bitstream`
//!    column codec, which is bit-exact with the register-level hardware
//!    models);
//! 3. the packed record rides the **memory unit** for exactly `W − N`
//!    cycles (the same delay the traditional FIFOs provide);
//! 4. on exit it is **bit-unpacked** and run through the **inverse IWT**;
//!    the reconstructed raw column re-enters the window one row down, its
//!    oldest pixel retiring.
//!
//! A buffered pixel therefore makes `N − 1` trips through the compressor:
//! in lossy mode the error *compounds*, which this model reproduces
//! faithfully (the paper does not discuss this; see `EXPERIMENTS.md` E8 for
//! measurements of both compounded and single-pass error).
//!
//! In lossless mode (`T = 0`) the output is **bit-identical** to the
//! traditional architecture — the integration tests prove it kernel by
//! kernel.
//!
//! Since the codec-layer refactor this is [`SlidingWindow`] instantiated
//! with [`HaarIwtCodec`] (group width two: the IWT pairs exiting columns).
//! The aliases below keep the original API; the tests in this module pin
//! the datapath, stats, and telemetry series byte-for-byte against the
//! stand-alone implementation this file used to contain.

use crate::arch::SlidingWindow;
use crate::codec::HaarIwtCodec;

/// The compressed sliding window architecture: the unified datapath with
/// the paper's Haar IWT codec.
pub type CompressedSlidingWindow = SlidingWindow<HaarIwtCodec>;

/// Statistics of one frame through the compressed architecture. The
/// unified [`crate::FrameStats`].
#[deprecated(
    since = "0.1.0",
    note = "pre-unification alias; use sw_core::FrameStats"
)]
pub type CompressedFrameStats = crate::arch::FrameStats;

/// Output of one frame.
#[deprecated(
    since = "0.1.0",
    note = "pre-unification alias; use sw_core::FrameOutput"
)]
pub type CompressedOutput = crate::arch::FrameOutput;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ArchConfig, ThresholdPolicy};
    use crate::kernels::{BoxFilter, GaussianFilter, Tap};
    use crate::reference::direct_sliding_window;
    use crate::traditional::TraditionalSlidingWindow;
    use sw_image::{mse, ImageU8};

    fn test_image(w: usize, h: usize) -> ImageU8 {
        // Smooth base + mild texture: compresses but not trivially.
        ImageU8::from_fn(w, h, |x, y| {
            let smooth = 96.0
                + 64.0 * ((x as f64 / w as f64) * 3.1).sin()
                + 48.0 * ((y as f64 / h as f64) * 2.3).cos();
            let texture = ((x * 7 + y * 13) % 5) as f64;
            (smooth + texture).clamp(0.0, 255.0) as u8
        })
    }

    #[test]
    fn lossless_matches_traditional_exactly() {
        for n in [4usize, 6, 8] {
            let img = test_image(32, 20);
            let kernel = BoxFilter::new(n);
            let cfg = ArchConfig::new(n, 32);
            let mut comp = CompressedSlidingWindow::new(cfg);
            let mut trad = TraditionalSlidingWindow::new(cfg);
            let a = comp.process_frame(&img, &kernel).unwrap();
            let b = trad.process_frame(&img, &kernel).unwrap();
            assert_eq!(a.image, b.image, "window {n}");
            assert_eq!(a.stats.cycles, b.stats.cycles);
        }
    }

    #[test]
    fn lossless_matches_direct_reference() {
        let img = test_image(40, 24);
        let kernel = GaussianFilter::new(8);
        let mut comp = CompressedSlidingWindow::new(ArchConfig::new(8, 40));
        let got = comp.process_frame(&img, &kernel).unwrap();
        assert_eq!(got.image, direct_sliding_window(&img, &kernel));
    }

    #[test]
    fn lossless_tap_roundtrips_raw_pixels() {
        // The top-left tap reads pixels that made N−1 compression trips:
        // lossless mode must return them exactly.
        let img = test_image(33, 17);
        let kernel = Tap::top_left(4);
        let mut comp = CompressedSlidingWindow::new(ArchConfig::new(4, 33));
        let got = comp.process_frame(&img, &kernel).unwrap();
        assert_eq!(got.image, direct_sliding_window(&img, &kernel));
    }

    #[test]
    fn lossy_mse_behaviour() {
        // The recirculating datapath compounds loss, so the MSE is not
        // strictly monotone between nearby thresholds; verify the robust
        // facts: lossless is exact, lossy is not, and T=2 is far better
        // than the higher thresholds.
        let img = test_image(64, 48);
        let n = 8;
        let run = |t: i16| {
            let cfg = ArchConfig::new(n, 64).with_threshold(t);
            let mut comp = CompressedSlidingWindow::new(cfg);
            let got = comp.process_frame(&img, &Tap::top_left(n)).unwrap();
            let expect = img.crop(0, 0, got.image.width(), got.image.height());
            mse(&got.image, &expect)
        };
        assert_eq!(run(0), 0.0, "lossless must be exact");
        let (m2, m4, m6) = (run(2), run(4), run(6));
        assert!(m2 > 0.0, "T=2 must be lossy");
        assert!(m2 < m4, "T=2 ({m2:.2}) must beat T=4 ({m4:.2})");
        assert!(m2 < m6, "T=2 ({m2:.2}) must beat T=6 ({m6:.2})");
    }

    #[test]
    fn lossy_reduces_peak_occupancy() {
        let img = test_image(64, 48);
        let occupancy = |t: i16| {
            let cfg = ArchConfig::new(8, 64).with_threshold(t);
            let mut comp = CompressedSlidingWindow::new(cfg);
            comp.process_frame(&img, &BoxFilter::new(8))
                .unwrap()
                .stats
                .peak_payload_occupancy
        };
        assert!(occupancy(6) < occupancy(0), "T=6 must compress harder");
    }

    #[test]
    fn flat_image_has_near_zero_detail_bits() {
        let img = ImageU8::filled(48, 32, 123);
        let mut comp = CompressedSlidingWindow::new(ArchConfig::new(8, 48));
        let got = comp.process_frame(&img, &BoxFilter::new(8)).unwrap();
        let [ll, lh, hl, hh] = got.stats.per_band_bits_total;
        // Warmup columns mix power-on zeros with the flat value, so a small
        // amount of detail energy exists; steady state contributes none.
        assert!(ll > 0, "LL still carries data");
        assert!(
            (lh + hl + hh) as f64 <= ll as f64 * 0.05,
            "details {lh}+{hl}+{hh} should be warmup-only vs LL {ll}"
        );
    }

    #[test]
    fn saving_is_positive_on_smooth_images() {
        let img = test_image(128, 64);
        let mut comp = CompressedSlidingWindow::new(ArchConfig::new(8, 128));
        let got = comp.process_frame(&img, &BoxFilter::new(8)).unwrap();
        let saving = got.stats.memory_saving_pct();
        assert!(
            saving > 5.0,
            "smooth image should save >5%, got {saving:.1}%"
        );
    }

    #[test]
    fn overflow_events_fire_on_random_frames_with_tight_budget() {
        // The paper's limitation: "in cases of bad frames or random images,
        // the compression ratio will be very low and the size of the packed
        // bits will be greater than the available BRAMs."
        let mut state = 1u32;
        let img = ImageU8::from_fn(64, 32, |_, _| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            (state >> 24) as u8
        });
        // Budget sized for a *smooth* frame.
        let smooth = test_image(64, 32);
        let cfg = ArchConfig::new(8, 64);
        let mut probe = CompressedSlidingWindow::new(cfg);
        let budget = probe
            .process_frame(&smooth, &BoxFilter::new(8))
            .unwrap()
            .stats
            .peak_payload_occupancy;
        let mut comp = CompressedSlidingWindow::new(cfg).with_capacity_bits(budget);
        let got = comp.process_frame(&img, &BoxFilter::new(8)).unwrap();
        assert!(got.stats.overflow_events > 0, "random frame must overflow");
        // And the smooth frame itself must not.
        let mut comp = CompressedSlidingWindow::new(cfg).with_capacity_bits(budget);
        let got = comp.process_frame(&smooth, &BoxFilter::new(8)).unwrap();
        assert_eq!(got.stats.overflow_events, 0);
    }

    #[test]
    fn all_subbands_policy_is_lossier_but_smaller() {
        let img = test_image(64, 48);
        let run = |policy: ThresholdPolicy| {
            let cfg = ArchConfig::new(8, 64).with_threshold(6).with_policy(policy);
            let mut comp = CompressedSlidingWindow::new(cfg);
            let got = comp.process_frame(&img, &Tap::top_left(8)).unwrap();
            let expect = img.crop(0, 0, got.image.width(), got.image.height());
            (got.stats.peak_payload_occupancy, mse(&got.image, &expect))
        };
        let (bits_d, mse_d) = run(ThresholdPolicy::DetailsOnly);
        let (bits_a, mse_a) = run(ThresholdPolicy::AllSubbands);
        assert!(bits_a <= bits_d, "thresholding LL can only shrink payload");
        assert!(mse_a >= mse_d, "thresholding LL can only hurt quality");
    }

    #[test]
    fn telemetry_reports_stage_and_fifo_series() {
        let img = test_image(32, 20);
        let t = sw_telemetry::TelemetryHandle::new();
        let cfg = ArchConfig::new(4, 32).with_threshold(2);
        let mut comp = CompressedSlidingWindow::new(cfg).with_named_telemetry(&t, "s0");
        let out = comp.process_frame(&img, &BoxFilter::new(4)).unwrap();

        let r = t.report();
        assert_eq!(r.counters["stage.s0.cycles"], out.stats.cycles);
        assert_eq!(r.counters["stage.s0.window_shifts"], 32 * 20);
        assert!(r.counters["stage.s0.iwt_pairs"] > 0);
        assert_eq!(
            r.counters["stage.s0.iwt_pairs"],
            r.counters["stage.s0.packer.columns"] / 4,
            "four sub-band columns per pair"
        );
        assert_eq!(
            r.counters["stage.s0.packer.payload_bits"], out.stats.payload_bits_total,
            "codec telemetry must agree with frame stats"
        );
        assert_eq!(r.gauges["stage.s0.threshold"], 2);
        assert_eq!(
            r.gauges["fifo.s0.high_water_bits"], out.stats.peak_payload_occupancy,
            "telemetry high-water must equal the stats watermark"
        );
        assert!(r.histograms["fifo.s0.occupancy_bits"].count > 0);
        // The trace saw frame boundaries and pack events.
        assert!(t.trace_len() > 2);
        let mut buf = Vec::new();
        t.write_trace_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("\"event\":\"frame_start\""));
        assert!(text.contains("\"event\":\"pack\""));
        assert!(text.contains("\"event\":\"unpack\""));
    }

    #[test]
    fn telemetry_disabled_changes_nothing() {
        let img = test_image(32, 20);
        let cfg = ArchConfig::new(4, 32).with_threshold(2);
        let mut plain = CompressedSlidingWindow::new(cfg);
        let mut wired = CompressedSlidingWindow::new(cfg)
            .with_telemetry(&sw_telemetry::TelemetryHandle::disabled());
        let a = plain.process_frame(&img, &BoxFilter::new(4)).unwrap();
        let b = wired.process_frame(&img, &BoxFilter::new(4)).unwrap();
        assert_eq!(a.image, b.image);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn reusable_across_frames() {
        let kernel = BoxFilter::new(4);
        let cfg = ArchConfig::new(4, 24);
        let mut comp = CompressedSlidingWindow::new(cfg);
        let a = test_image(24, 12);
        let b = ImageU8::from_fn(24, 12, |x, y| ((x * y) % 256) as u8);
        comp.process_frame(&a, &kernel).unwrap();
        let second = comp.process_frame(&b, &kernel).unwrap();
        assert_eq!(second.image, direct_sliding_window(&b, &kernel));
    }
}

#[cfg(test)]
mod coeff_mode_tests {
    use super::*;
    use crate::config::{ArchConfig, CoeffMode};
    use crate::kernels::Tap;
    use crate::reference::direct_sliding_window;
    use sw_image::{max_abs_error, ImageU8};

    fn natural(w: usize, h: usize) -> ImageU8 {
        ImageU8::from_fn(w, h, |x, y| {
            (110.0 + 80.0 * ((x as f64) * 0.07).sin() + 40.0 * ((y as f64) * 0.05).cos())
                .clamp(0.0, 255.0) as u8
        })
    }

    #[test]
    fn saturating_mode_is_exact_on_natural_content_after_warmup() {
        // Natural detail coefficients stay far below ±128, so the 8-bit
        // datapath changes nothing — except during warmup, where real
        // pixels pair vertically with power-on zeros (details ≈ ±pixel,
        // which clip). That first-row artifact is genuine 8-bit-datapath
        // behaviour; below it the two modes are identical.
        let img = natural(48, 24);
        let n = 8;
        let kernel = Tap::top_left(n);
        let exact = {
            let mut a = CompressedSlidingWindow::new(ArchConfig::new(n, 48));
            a.process_frame(&img, &kernel).unwrap().image
        };
        let sat = {
            let cfg = ArchConfig::new(n, 48).with_coeff_mode(CoeffMode::Saturating8);
            let mut a = CompressedSlidingWindow::new(cfg);
            a.process_frame(&img, &kernel).unwrap().image
        };
        assert_eq!(exact, direct_sliding_window(&img, &kernel));
        let (w, h) = (exact.width(), exact.height());
        assert_eq!(
            exact.crop(0, 1, w, h - 1),
            sat.crop(0, 1, w, h - 1),
            "steady-state rows must be identical"
        );
        assert_ne!(
            exact.row(0),
            sat.row(0),
            "warmup clipping is expected on the first output row"
        );
    }

    #[test]
    fn saturating_mode_clips_extreme_detail() {
        // A checkerboard drives HH to ±510: the 8-bit datapath must clip,
        // so "lossless" is no longer lossless — exactly the failure mode
        // DESIGN.md predicts for a literal 8-bit reading of the paper.
        let img = ImageU8::from_fn(32, 16, |x, y| if (x + y) % 2 == 0 { 0 } else { 255 });
        let n = 4;
        let kernel = Tap::top_left(n);
        let reference = direct_sliding_window(&img, &kernel);
        let exact = {
            let mut a = CompressedSlidingWindow::new(ArchConfig::new(n, 32));
            a.process_frame(&img, &kernel).unwrap().image
        };
        assert_eq!(exact, reference, "exact mode survives the checkerboard");
        let sat = {
            let cfg = ArchConfig::new(n, 32).with_coeff_mode(CoeffMode::Saturating8);
            let mut a = CompressedSlidingWindow::new(cfg);
            a.process_frame(&img, &kernel).unwrap().image
        };
        assert!(
            max_abs_error(&sat, &reference) > 50,
            "8-bit datapath must clip hard on the checkerboard"
        );
    }

    #[test]
    fn saturating_mode_never_stores_wide_details() {
        let img = ImageU8::from_fn(32, 16, |x, y| if (x + y) % 2 == 0 { 0 } else { 255 });
        let cfg = ArchConfig::new(4, 32).with_coeff_mode(CoeffMode::Saturating8);
        let mut a = CompressedSlidingWindow::new(cfg);
        let out = a.process_frame(&img, &Tap::top_left(4)).unwrap();
        // Details clamp to 8 bits; LL still needs up to 9. Per 4 pixels:
        // <= 9 + 3×8 bits.
        let max_bpp = (9.0 + 3.0 * 8.0) / 4.0;
        let cols = (32 - 4) as f64; // steady-state columns in flight
        let peak_bpp = out.stats.peak_payload_occupancy as f64 / (cols * 4.0);
        assert!(
            peak_bpp <= max_bpp + 0.5,
            "peak {peak_bpp:.2} bpp exceeds the 8-bit datapath bound {max_bpp:.2}"
        );
    }
}

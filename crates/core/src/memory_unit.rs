//! The capacity-enforcing Memory Unit runtime.
//!
//! The paper provisions the packed-bit memory from the *worst case*
//! measured occupancy (Tables II–V); until this module, the simulation
//! kept the packed stream in unbounded `Vec`s and merely counted
//! would-be overflows. [`MemoryUnit`] closes that gap: the per-row packed
//! stream is mirrored word-by-word into real [`sw_fpga::BramFifo`]
//! storage (512×36 BRAM18s, exactly the planner's `packed_brams`
//! provisioning), occupancy is enforced against the provisioned bit
//! budget, and a would-be overflow triggers a configurable
//! [`OverflowPolicy`]:
//!
//! * [`OverflowPolicy::Fail`] — propagate a typed
//!   [`FifoError::Overflow`] through [`crate::error::SwError`];
//! * [`OverflowPolicy::Stall`] — accept the group and account the
//!   backpressure cycles the producer would have to wait for the deficit
//!   to drain (one 36-bit word per clock);
//! * [`OverflowPolicy::DegradeLossy`] — let the datapath escalate the
//!   threshold `T` (the same knob [`crate::adaptive`] tunes between
//!   frames) until the group fits, recording each escalation.
//!
//! Every stored word is a splitmix64 fingerprint of its (group,
//! word) position; retirement re-derives and compares them, so any
//! corruption of the BRAM stream — e.g. the forced-overflow overwrite
//! fault from [`crate::faults`] — is *detected* as a typed error rather
//! than silently reconstructed.

use crate::codec::LineCodecKind;
use crate::error::SwError;
use crate::faults::splitmix64;
use crate::planner::BramPlan;
use crate::Coeff;
use std::collections::VecDeque;
use sw_fpga::bram::{Bram18Config, BRAM18_BITS};
use sw_fpga::bram_fifo::BramFifo;
use sw_fpga::fifo::FifoError;
use sw_fpga::sim::Watermark;
use sw_telemetry::{Counter, Gauge, TelemetryHandle};

/// Memory-unit word width: the 512×36 BRAM18 aspect ratio the packed
/// stream is stored in.
pub const WORD_BITS: u64 = 36;

/// What to do when a packed group would exceed the provisioned budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Propagate a typed [`FifoError::Overflow`]; the frame aborts.
    Fail,
    /// Backpressure: accept the group and count the stall cycles needed
    /// to drain the deficit at one word per clock.
    Stall,
    /// Escalate the lossy threshold `T` until the group fits (up to
    /// [`MemoryUnitConfig::max_threshold`]), recording each escalation.
    DegradeLossy,
}

impl OverflowPolicy {
    /// Every policy, for sweeps.
    pub const ALL: [OverflowPolicy; 3] = [
        OverflowPolicy::Fail,
        OverflowPolicy::Stall,
        OverflowPolicy::DegradeLossy,
    ];

    /// Stable lower-case name (the CLI's `--overflow-policy` values).
    pub fn name(self) -> &'static str {
        match self {
            OverflowPolicy::Fail => "fail",
            OverflowPolicy::Stall => "stall",
            OverflowPolicy::DegradeLossy => "degrade",
        }
    }

    /// Parse a `--overflow-policy` value.
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|p| p.name() == s)
    }
}

impl std::fmt::Display for OverflowPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Provisioning and policy for one [`MemoryUnit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryUnitConfig {
    /// Provisioned packed-bit budget.
    pub capacity_bits: u64,
    /// Overflow behaviour.
    pub policy: OverflowPolicy,
    /// Ceiling for [`OverflowPolicy::DegradeLossy`] threshold escalation
    /// (the same saturation point as [`crate::adaptive::AdaptiveConfig`]).
    pub max_threshold: Coeff,
}

impl MemoryUnitConfig {
    /// A budget of `capacity_bits` under `policy`, with the default
    /// escalation ceiling of `T = 16`.
    pub fn new(capacity_bits: u64, policy: OverflowPolicy) -> Self {
        Self {
            capacity_bits: capacity_bits.max(1),
            policy,
            max_threshold: 16,
        }
    }

    /// Size the budget from a planner allocation: the packed-bit BRAMs'
    /// full capacity, exactly what the paper provisions.
    pub fn from_plan(plan: &BramPlan, policy: OverflowPolicy) -> Self {
        Self::new(u64::from(plan.packed_brams) * BRAM18_BITS, policy)
    }

    /// Override the degrade-escalation ceiling.
    pub fn with_max_threshold(mut self, t: Coeff) -> Self {
        self.max_threshold = t;
        self
    }

    /// Divide the budget evenly across `strips` shards (the sharded
    /// runner gives each strip its own memory unit, as hardware would
    /// replicate the block per segment).
    pub fn per_strip(&self, strips: usize) -> Self {
        Self {
            capacity_bits: (self.capacity_bits / strips.max(1) as u64).max(1),
            ..*self
        }
    }
}

/// One packed group in flight through the BRAM word stream.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    bits: u64,
    words_stored: u64,
    seq: u64,
}

/// The capacity-enforcing memory unit: provisioned BRAM18 storage for the
/// packed stream, occupancy accounting, and overflow-policy bookkeeping.
#[derive(Debug, Clone)]
pub struct MemoryUnit {
    cfg: MemoryUnitConfig,
    codec: LineCodecKind,
    fifo: BramFifo,
    in_flight: VecDeque<InFlight>,
    occupancy_bits: u64,
    watermark: Watermark,
    push_seq: u64,
    retire_seq: u64,
    stall_cycles: u64,
    escalations: u64,
    overflow_events: u64,
    // Telemetry — no-ops unless bound.
    m_occ: Gauge,
    m_high: Gauge,
    m_stalls: Counter,
    m_escalations: Counter,
    m_overflow: Counter,
}

impl MemoryUnit {
    /// Build the unit for `cfg`, storing `codec`'s packed stream.
    pub fn new(cfg: MemoryUnitConfig, codec: LineCodecKind) -> Self {
        let depth = u32::try_from(cfg.capacity_bits.div_ceil(WORD_BITS))
            .unwrap_or(u32::MAX)
            .max(1);
        Self {
            cfg,
            codec,
            fifo: BramFifo::new(Bram18Config::X36, depth),
            in_flight: VecDeque::new(),
            occupancy_bits: 0,
            watermark: Watermark::new(),
            push_seq: 0,
            retire_seq: 0,
            stall_cycles: 0,
            escalations: 0,
            overflow_events: 0,
            m_occ: Gauge::noop(),
            m_high: Gauge::noop(),
            m_stalls: Counter::noop(),
            m_escalations: Counter::noop(),
            m_overflow: Counter::noop(),
        }
    }

    /// Bind instruments under `memunit.<name>.*`.
    pub(crate) fn bind_telemetry(&mut self, telemetry: &TelemetryHandle, name: &str) {
        self.m_occ = telemetry.gauge(&format!("memunit.{name}.occupancy_bits"));
        self.m_high = telemetry.gauge(&format!("memunit.{name}.high_water_bits"));
        self.m_stalls = telemetry.counter(&format!("memunit.{name}.stall_cycles"));
        self.m_escalations = telemetry.counter(&format!("memunit.{name}.escalations"));
        self.m_overflow = telemetry.counter(&format!("memunit.{name}.overflow_events"));
    }

    /// The unit's configuration.
    pub fn config(&self) -> MemoryUnitConfig {
        self.cfg
    }

    /// The overflow policy in force.
    pub fn policy(&self) -> OverflowPolicy {
        self.cfg.policy
    }

    /// Provisioned budget in bits.
    pub fn capacity_bits(&self) -> u64 {
        self.cfg.capacity_bits
    }

    /// Current packed occupancy in bits.
    pub fn occupancy_bits(&self) -> u64 {
        self.occupancy_bits
    }

    /// Highest occupancy observed since the last [`MemoryUnit::reset`].
    pub fn high_water_bits(&self) -> u64 {
        self.watermark.max()
    }

    /// Stall cycles accounted this frame (Stall policy).
    pub fn stall_cycles(&self) -> u64 {
        self.stall_cycles
    }

    /// Threshold escalations this frame (DegradeLossy policy).
    pub fn escalations(&self) -> u64 {
        self.escalations
    }

    /// Overflow events this frame (budget exceeded and not resolved).
    pub fn overflow_events(&self) -> u64 {
        self.overflow_events
    }

    /// BRAM18s backing the word stream.
    pub fn brams_used(&self) -> u32 {
        self.fifo.brams_used()
    }

    /// Bits by which storing `bits` more would exceed the budget, if any.
    pub(crate) fn deficit(&self, bits: u64) -> Option<u64> {
        let need = self.occupancy_bits + bits;
        (need > self.cfg.capacity_bits).then(|| need - self.cfg.capacity_bits)
    }

    /// The typed error a `Fail`-policy overflow propagates.
    pub(crate) fn overflow_error(&self, bits: u64) -> SwError {
        SwError::Fifo(FifoError::Overflow {
            needed: self.occupancy_bits + bits,
            capacity: self.cfg.capacity_bits,
        })
    }

    /// Account the backpressure a `Stall`-policy overflow costs: the
    /// cycles needed to drain `deficit_bits` at one word per clock.
    /// Returns the cycles charged so the datapath can trace the stall.
    pub(crate) fn record_stall(&mut self, deficit_bits: u64) -> u64 {
        let cycles = deficit_bits.div_ceil(WORD_BITS);
        self.stall_cycles += cycles;
        self.m_stalls.add(cycles);
        cycles
    }

    /// Account one `DegradeLossy` threshold escalation.
    pub(crate) fn record_escalation(&mut self) {
        self.escalations += 1;
        self.m_escalations.inc();
    }

    /// Account one unresolved overflow (saturated degrade, or a codec
    /// that cannot shrink its groups).
    pub(crate) fn record_overflow(&mut self) {
        self.overflow_events += 1;
        self.m_overflow.inc();
    }

    /// Store one packed group of `bits` bits as fingerprinted 36-bit
    /// words. When `corrupt` is set (the forced-overflow fault) the first
    /// stored word is overwritten, to be detected at retirement.
    ///
    /// Words beyond the physical BRAM capacity are held upstream (the
    /// producer register the stall policy models); only what fits is
    /// stored and later verified.
    pub(crate) fn push_group(&mut self, bits: u64, corrupt: bool) {
        let words = bits.div_ceil(WORD_BITS);
        let mut stored = 0;
        for w in 0..words {
            let mut word = fingerprint(self.push_seq, w);
            if corrupt && w == 0 {
                word ^= 1;
            }
            if self.fifo.push(word).is_err() {
                break;
            }
            stored += 1;
        }
        self.in_flight.push_back(InFlight {
            bits,
            words_stored: stored,
            seq: self.push_seq,
        });
        self.push_seq += 1;
        self.occupancy_bits += bits;
        self.watermark.observe(self.occupancy_bits);
        self.m_occ.set(self.occupancy_bits);
        self.m_high.observe_max(self.occupancy_bits);
    }

    /// Retire the oldest group: pop its words back out of the BRAMs and
    /// verify every fingerprint. A mismatch (corrupted storage) or a
    /// missing word surfaces as a typed error.
    pub(crate) fn retire_group(&mut self) -> crate::error::Result<()> {
        let Some(g) = self.in_flight.pop_front() else {
            return Err(SwError::Fifo(FifoError::Underrun));
        };
        for w in 0..g.words_stored {
            let word = self.fifo.pop().map_err(SwError::Fifo)?;
            if word != fingerprint(g.seq, w) {
                return Err(SwError::Decode {
                    codec: self.codec,
                    detail: format!(
                        "memory unit word {w} of group {} failed its fingerprint \
                         check (overflow overwrite or bit upset)",
                        g.seq
                    ),
                });
            }
        }
        self.retire_seq += 1;
        self.occupancy_bits -= g.bits;
        self.m_occ.set(self.occupancy_bits);
        Ok(())
    }

    /// Retire sequence number of the *next* group to retire (the index
    /// [`crate::faults::FaultInjector::fifo_underflow_at`] matches).
    pub(crate) fn retire_seq(&self) -> u64 {
        self.retire_seq
    }

    /// The forced-underflow fault: the control logic pops a word the FIFO
    /// does not hold. Always a typed error.
    pub(crate) fn force_underflow(&mut self) -> SwError {
        SwError::Fifo(FifoError::Underrun)
    }

    /// Frame boundary: clear contents and per-frame accounting (the
    /// telemetry counters are cumulative and keep running).
    pub fn reset(&mut self) {
        self.fifo.clear();
        self.in_flight.clear();
        self.occupancy_bits = 0;
        self.watermark.reset();
        self.push_seq = 0;
        self.retire_seq = 0;
        self.stall_cycles = 0;
        self.escalations = 0;
        self.overflow_events = 0;
    }
}

/// Deterministic 36-bit fingerprint for word `word` of group `seq`.
fn fingerprint(seq: u64, word: u64) -> u64 {
    splitmix64(seq.wrapping_mul(0x100_0000).wrapping_add(word)) & ((1 << WORD_BITS) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(capacity_bits: u64, policy: OverflowPolicy) -> MemoryUnit {
        MemoryUnit::new(
            MemoryUnitConfig::new(capacity_bits, policy),
            LineCodecKind::Haar,
        )
    }

    #[test]
    fn policy_names_round_trip() {
        for p in OverflowPolicy::ALL {
            assert_eq!(OverflowPolicy::parse(p.name()), Some(p));
        }
        assert_eq!(OverflowPolicy::parse("never"), None);
    }

    #[test]
    fn push_retire_round_trip_verifies_fingerprints() {
        let mut mu = unit(10_000, OverflowPolicy::Fail);
        for bits in [100u64, 36, 1, 720] {
            mu.push_group(bits, false);
        }
        assert_eq!(mu.occupancy_bits(), 857);
        assert_eq!(mu.high_water_bits(), 857);
        for _ in 0..4 {
            mu.retire_group().unwrap();
        }
        assert_eq!(mu.occupancy_bits(), 0);
        assert!(matches!(
            mu.retire_group(),
            Err(SwError::Fifo(FifoError::Underrun))
        ));
    }

    #[test]
    fn corrupted_word_is_detected_at_retirement() {
        let mut mu = unit(10_000, OverflowPolicy::Fail);
        mu.push_group(100, false);
        mu.push_group(100, true);
        mu.retire_group().unwrap();
        match mu.retire_group() {
            Err(SwError::Decode { detail, .. }) => {
                assert!(detail.contains("fingerprint"), "{detail}");
            }
            other => panic!("expected a fingerprint mismatch, got {other:?}"),
        }
    }

    #[test]
    fn deficit_and_stall_accounting() {
        let mut mu = unit(100, OverflowPolicy::Stall);
        assert_eq!(mu.deficit(100), None);
        assert_eq!(mu.deficit(101), Some(1));
        mu.push_group(90, false);
        assert_eq!(mu.deficit(46), Some(36));
        mu.record_stall(36);
        assert_eq!(mu.stall_cycles(), 1);
        mu.record_stall(37);
        assert_eq!(mu.stall_cycles(), 3);
    }

    #[test]
    fn budget_matches_planner_provisioning() {
        let plan = crate::planner::plan(8, 512, 30_000, crate::planner::MgmtAccounting::Structured);
        let cfg = MemoryUnitConfig::from_plan(&plan, OverflowPolicy::DegradeLossy);
        assert_eq!(
            cfg.capacity_bits,
            u64::from(plan.packed_brams) * BRAM18_BITS
        );
        let mu = MemoryUnit::new(cfg, LineCodecKind::Haar);
        // The word stream is provisioned on exactly that many BRAM18s.
        assert_eq!(mu.brams_used(), plan.packed_brams);
    }

    #[test]
    fn per_strip_division_never_zeroes() {
        let cfg = MemoryUnitConfig::new(1000, OverflowPolicy::Stall);
        assert_eq!(cfg.per_strip(8).capacity_bits, 125);
        assert_eq!(cfg.per_strip(2000).capacity_bits, 1);
    }

    #[test]
    fn telemetry_series_use_memunit_prefix() {
        let t = TelemetryHandle::new();
        let mut mu = unit(1000, OverflowPolicy::Stall);
        mu.bind_telemetry(&t, "s0");
        mu.push_group(100, false);
        mu.record_stall(10);
        mu.record_escalation();
        mu.record_overflow();
        let r = t.report();
        assert_eq!(r.gauges["memunit.s0.occupancy_bits"], 100);
        assert_eq!(r.gauges["memunit.s0.high_water_bits"], 100);
        assert_eq!(r.counters["memunit.s0.stall_cycles"], 1);
        assert_eq!(r.counters["memunit.s0.escalations"], 1);
        assert_eq!(r.counters["memunit.s0.overflow_events"], 1);
    }

    /// Noisy deterministic frame that keeps the packed stream close to
    /// incompressible, so tight budgets actually bind.
    fn noisy_image(w: usize, h: usize) -> sw_image::ImageU8 {
        let mut state = 0x2545_f491u32;
        sw_image::ImageU8::from_fn(w, h, |_, _| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            (state >> 24) as u8
        })
    }

    fn run_with_budget(
        mu: Option<MemoryUnitConfig>,
        codec: LineCodecKind,
    ) -> crate::error::Result<crate::arch::FrameStats> {
        let (n, w, h) = (4usize, 20usize, 12usize);
        let img = noisy_image(w, h);
        let cfg = crate::config::ArchConfig::new(n, w).with_codec(codec);
        let mut arch = crate::arch::build_arch(&cfg)?;
        arch.set_memory_unit(mu);
        Ok(arch
            .process_frame(&img, &crate::kernels::Tap::top_left(n))?
            .stats)
    }

    /// Edge budget: capacity exactly equal to the measured demand is
    /// sufficient under `Fail`; one bit less overflows with exact
    /// `needed`/`capacity` arithmetic in the typed error.
    #[test]
    fn budget_exactly_equal_to_demand_is_tight() {
        let peak = run_with_budget(None, LineCodecKind::Haar)
            .unwrap()
            .peak_payload_occupancy;
        assert!(peak > WORD_BITS, "fixture must exercise multiple words");

        let exact = run_with_budget(
            Some(MemoryUnitConfig::new(peak, OverflowPolicy::Fail)),
            LineCodecKind::Haar,
        )
        .unwrap();
        assert_eq!(exact.peak_payload_occupancy, peak);
        assert_eq!(exact.overflow_events, 0);
        assert_eq!(exact.stall_cycles, 0);
        assert_eq!(exact.t_escalations, 0);

        // One bit under demand: the first push that reaches the unbounded
        // peak is the first deficit, so `needed` is exactly that peak.
        match run_with_budget(
            Some(MemoryUnitConfig::new(peak - 1, OverflowPolicy::Fail)),
            LineCodecKind::Haar,
        ) {
            Err(SwError::Fifo(FifoError::Overflow { needed, capacity })) => {
                assert_eq!(capacity, peak - 1);
                assert_eq!(needed, peak);
            }
            other => panic!("expected a typed overflow, got {other:?}"),
        }
    }

    /// Edge budget: a single 36-bit word. Unit-level word-granular stall
    /// arithmetic plus the end-to-end `Stall` run it predicts.
    #[test]
    fn one_word_budget_stall_arithmetic() {
        let mut mu = unit(WORD_BITS, OverflowPolicy::Stall);
        assert_eq!(mu.deficit(WORD_BITS), None, "exactly one word fits");
        assert_eq!(mu.deficit(WORD_BITS + 1), Some(1));
        mu.push_group(WORD_BITS, false);
        assert_eq!(mu.deficit(1), Some(1));
        mu.record_stall(1);
        assert_eq!(mu.stall_cycles(), 1, "a 1-bit deficit still costs a word");

        let stats = run_with_budget(
            Some(MemoryUnitConfig::new(WORD_BITS, OverflowPolicy::Stall)),
            LineCodecKind::Haar,
        )
        .unwrap();
        assert!(stats.peak_payload_occupancy > WORD_BITS);
        // Every deficit drains at one word per clock, so the total stall
        // bill is at least the peak deficit's word count.
        let peak_deficit = stats.peak_payload_occupancy - WORD_BITS;
        assert!(
            stats.stall_cycles >= peak_deficit.div_ceil(WORD_BITS),
            "stall_cycles {} below the word-granular floor {}",
            stats.stall_cycles,
            peak_deficit.div_ceil(WORD_BITS)
        );
        assert_eq!(stats.overflow_events, 0);
        assert_eq!(stats.t_escalations, 0);
    }

    /// Edge budget: `max_threshold` saturates with demand still over
    /// budget. Escalations are bounded by `max_threshold − T₀` (the
    /// threshold ratchets monotonically within a frame) and every group
    /// that still cannot fit counts one residual overflow.
    #[test]
    fn max_threshold_saturation_counts_residual_overflows() {
        let budget = MemoryUnitConfig::new(64, OverflowPolicy::DegradeLossy).with_max_threshold(3);
        let stats = run_with_budget(Some(budget), LineCodecKind::Haar).unwrap();
        assert!(stats.t_escalations > 0, "noise must force escalation");
        assert!(
            stats.t_escalations <= 3,
            "threshold ratchets 0→max_threshold at most once per step, got {}",
            stats.t_escalations
        );
        assert!(
            stats.overflow_events > 0,
            "a 64-bit budget must leave residual overflows at T = 3"
        );
        assert_eq!(stats.stall_cycles, 0, "degrade never bills stalls");

        // A codec that cannot shrink its groups records the overflows but
        // performs no escalation at all.
        let stats = run_with_budget(Some(budget), LineCodecKind::Locoi).unwrap();
        assert_eq!(stats.t_escalations, 0, "locoi is not lossy-capable");
        assert!(stats.overflow_events > 0);
    }

    #[test]
    fn reset_clears_frame_state() {
        let mut mu = unit(1000, OverflowPolicy::Stall);
        mu.push_group(500, false);
        mu.record_stall(100);
        mu.record_escalation();
        mu.record_overflow();
        mu.reset();
        assert_eq!(mu.occupancy_bits(), 0);
        assert_eq!(mu.high_water_bits(), 0);
        assert_eq!(mu.stall_cycles(), 0);
        assert_eq!(mu.escalations(), 0);
        assert_eq!(mu.overflow_events(), 0);
        assert!(matches!(
            mu.retire_group(),
            Err(SwError::Fifo(FifoError::Underrun))
        ));
    }
}

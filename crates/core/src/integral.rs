//! Integral-image workload engine: the wide instantiation of the datapath.
//!
//! Ehsan et al.'s embedded integral-image architectures stream the
//! summed-area table line by line: row `y`'s line is the previous line plus
//! the current row's prefix sums. Those lines are monotone 32-bit values —
//! exactly the workload the paper's 16-bit coefficient datapath cannot
//! hold — so this engine instantiates the width-generic column codec at
//! [`WideCoeff`] (`i32`, 5-bit NBits fields) and measures whether packed
//! line buffering still pays once the coefficient word doubles.
//!
//! The buffered quantity is the **delta from the previous integral-image
//! line**, which is precisely the current row's prefix-sum line `rs`:
//! `II_y = II_{y−1} + rs_y`. Deltas start small on the left of each row and
//! grow monotonically, so per-segment NBits/BitMap packing tracks the
//! content just as it does for wavelet detail coefficients — until wide
//! rows push every segment toward 20-bit deltas and the management overhead
//! stops paying (experiment E27).
//!
//! # Determinism contract
//!
//! Phase 1 (prefix sums + encode + decode-verify) is per-row independent
//! and runs on the pool via `par_map_indexed`; phase 2 (the running column
//! sum and the digest) is a serial fold in row order. The report is
//! therefore **byte-identical for any `--jobs` value**, and identical
//! between the scalar and bit-sliced hot paths (the conformance harness
//! pins both).

use crate::error::{Result, SwError};
use sw_bitstream::{
    decode_column_checked_into_of, decode_column_sliced_into_of, encode_column_into_of,
    encode_column_sliced_into_of, EncodedColumn, Fnv64, HotPath, Sample,
};
use sw_image::{integral::max_row_prefix_sum, row_prefix_sums, ImageU8};
use sw_pool::ThreadPool;
use sw_wavelet::swar::add_slices_of;

/// The wide coefficient word integral lines are buffered as.
pub type WideCoeff = i32;

/// Which workload a run exercises: the paper's sliding-window datapath
/// (16-bit coefficients) or the wide integral-image engine (32-bit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Workload {
    /// The sliding-window kernel × codec datapath (the default).
    #[default]
    Window,
    /// The integral-image line-buffer engine at [`WideCoeff`].
    Integral,
}

impl Workload {
    /// Every workload, in fixed order.
    pub const ALL: [Workload; 2] = [Workload::Window, Workload::Integral];

    /// Stable lowercase name (CLI flag value and report field).
    pub fn name(self) -> &'static str {
        match self {
            Workload::Window => "window",
            Workload::Integral => "integral",
        }
    }

    /// Parse a [`Workload::name`] back; `None` for anything else.
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|w| w.name() == s)
    }
}

/// NBits management field width at the wide instantiation (5 bits: values
/// up to 32 must be representable).
pub const WIDE_NBITS_FIELD_BITS: u32 = <WideCoeff as Sample>::NBITS_FIELD_BITS;

/// Configuration for [`analyze_integral`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntegralConfig {
    /// Segment length: each buffered line is packed in independent
    /// `segment`-sample columns, each carrying its own NBits field —
    /// the wide analogue of the paper's per-column management granularity.
    pub segment: usize,
    /// Which codec hot path encodes/decodes the segments.
    pub hot_path: HotPath,
}

impl Default for IntegralConfig {
    /// Segments of 8 (the evaluation's default window height) on the
    /// default hot path.
    fn default() -> Self {
        Self {
            segment: 8,
            hot_path: HotPath::default(),
        }
    }
}

/// Memory accounting for one analyzed frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntegralReport {
    /// Image width in pixels.
    pub width: usize,
    /// Image height (= number of buffered lines).
    pub height: usize,
    /// Segment length the lines were packed with.
    pub segment: usize,
    /// Payload bits summed over every line (excluding management).
    pub payload_bits_total: u64,
    /// Management bits *per line*: one BitMap bit per sample plus a
    /// 5-bit NBits field per segment. Constant across lines.
    pub management_bits_per_line: u64,
    /// Worst line's total packed cost (payload + management) — what a
    /// single compressed line buffer must be provisioned for.
    pub peak_line_bits: u64,
    /// Raw cost of one uncompressed line: `width × 32`.
    pub raw_line_bits: u64,
    /// FNV-1a 64 fingerprint of the reconstructed integral-image lines
    /// (dimensions, then every line's raw words in raster order).
    pub digest: u64,
}

impl IntegralReport {
    /// Peak saving of the packed line buffer versus a raw `i32` line,
    /// management included. Negative when packing stops paying.
    pub fn memory_saving_pct(&self) -> f64 {
        (1.0 - self.peak_line_bits as f64 / self.raw_line_bits as f64) * 100.0
    }

    /// Mean packed line cost (payload + management) in bits.
    pub fn mean_line_bits(&self) -> f64 {
        (self.payload_bits_total as f64 + self.management_bits_per_line as f64 * self.height as f64)
            / self.height as f64
    }
}

/// One row's phase-1 product: its verified prefix-sum line and the packed
/// cost of buffering it.
struct PackedLine {
    rs: Vec<WideCoeff>,
    payload_bits: u64,
}

fn pack_line(
    y: usize,
    row: &[u8],
    cfg: &IntegralConfig,
    enc: &mut EncodedColumn,
    dec: &mut Vec<WideCoeff>,
) -> Result<PackedLine> {
    let rs = row_prefix_sums(row);
    let mut payload_bits = 0u64;
    for (s, seg) in rs.chunks(cfg.segment).enumerate() {
        match cfg.hot_path {
            HotPath::Scalar => encode_column_into_of::<WideCoeff>(seg, 0, enc),
            HotPath::Sliced => encode_column_sliced_into_of::<WideCoeff>(seg, 0, enc),
        }
        payload_bits += enc.payload_bits;
        let decoded = match cfg.hot_path {
            HotPath::Scalar => decode_column_checked_into_of::<WideCoeff>(enc, dec),
            HotPath::Sliced => decode_column_sliced_into_of::<WideCoeff>(enc, dec),
        };
        decoded.map_err(|detail| {
            SwError::config(format!("integral line {y} segment {s}: {detail}"))
        })?;
        if dec != seg {
            return Err(SwError::config(format!(
                "integral line {y} segment {s}: lossless roundtrip mismatch"
            )));
        }
    }
    Ok(PackedLine { rs, payload_bits })
}

/// Stream `img` through the wide packed line buffer and account for it.
///
/// Every row's prefix-sum line is packed at threshold 0 (the integral
/// image is exact by definition — there is no lossy mode), decoded back,
/// verified, and folded into the running integral-image line whose raw
/// words feed the report digest.
///
/// # Errors
///
/// Rejects `segment = 0` and widths whose prefix sums could leave
/// [`WideCoeff`]; decode-guard failures (impossible unless the codec is
/// broken) surface as errors rather than panics.
pub fn analyze_integral(
    img: &ImageU8,
    cfg: &IntegralConfig,
    pool: &ThreadPool,
) -> Result<IntegralReport> {
    let (w, h) = (img.width(), img.height());
    if cfg.segment == 0 {
        return Err(SwError::config("integral segment must be >= 1"));
    }
    if max_row_prefix_sum(w) > i64::from(WideCoeff::MAX) {
        return Err(SwError::config(format!(
            "width {w} overflows the {}-bit line word",
            WideCoeff::BITS
        )));
    }

    // Phase 1: rows are independent — prefix-sum, pack, decode, verify.
    let lines = pool.par_map_indexed(h, |y| {
        let mut enc = EncodedColumn::default();
        let mut dec = Vec::with_capacity(cfg.segment);
        pack_line(y, img.row(y), cfg, &mut enc, &mut dec)
    });

    // Phase 2: serial fold in row order — the running column sum is the
    // integral-image line, digested raw.
    let management_bits_per_line =
        w as u64 + w.div_ceil(cfg.segment) as u64 * u64::from(WIDE_NBITS_FIELD_BITS);
    let mut ii = vec![0 as WideCoeff; w];
    let mut next = vec![0 as WideCoeff; w];
    let mut digest = Fnv64::new();
    digest.write_u64(w as u64);
    digest.write_u64(h as u64);
    let mut payload_bits_total = 0u64;
    let mut peak_line_bits = 0u64;
    for line in lines {
        let line = line?;
        match cfg.hot_path {
            HotPath::Scalar => {
                for ((d, &a), &b) in next.iter_mut().zip(&ii).zip(&line.rs) {
                    *d = a.wrapping_add(b);
                }
            }
            HotPath::Sliced => add_slices_of::<WideCoeff>(&ii, &line.rs, &mut next),
        }
        std::mem::swap(&mut ii, &mut next);
        for &v in &ii {
            digest.write_u64(v.to_raw());
        }
        payload_bits_total += line.payload_bits;
        peak_line_bits = peak_line_bits.max(line.payload_bits + management_bits_per_line);
    }

    Ok(IntegralReport {
        width: w,
        height: h,
        segment: cfg.segment,
        payload_bits_total,
        management_bits_per_line,
        peak_line_bits,
        raw_line_bits: w as u64 * u64::from(WideCoeff::BITS),
        digest: digest.finish(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_image::reference_integral_image;

    fn gradient(w: usize, h: usize) -> ImageU8 {
        ImageU8::from_fn(w, h, |x, y| ((x * 7 + y * 13) % 256) as u8)
    }

    fn cfg(hot_path: HotPath) -> IntegralConfig {
        IntegralConfig {
            segment: 8,
            hot_path,
        }
    }

    #[test]
    fn hot_paths_and_jobs_agree_bit_for_bit() {
        let img = gradient(64, 24);
        let p1 = ThreadPool::new(1);
        let p4 = ThreadPool::new(4);
        let scalar = analyze_integral(&img, &cfg(HotPath::Scalar), &p1).unwrap();
        let sliced = analyze_integral(&img, &cfg(HotPath::Sliced), &p4).unwrap();
        assert_eq!(scalar, sliced);
    }

    #[test]
    fn digest_matches_the_reference_integral_image() {
        let img = gradient(33, 9); // odd width exercises segment remainders
        let pool = ThreadPool::new(2);
        let report = analyze_integral(&img, &IntegralConfig::default(), &pool).unwrap();
        let reference = reference_integral_image(&img);
        let mut h = Fnv64::new();
        h.write_u64(33);
        h.write_u64(9);
        for &v in &reference {
            h.write_u64((v as i32).to_raw());
        }
        assert_eq!(report.digest, h.finish());
    }

    #[test]
    fn white_frame_saves_nothing_but_stays_lossless() {
        // All-255 rows make every delta large; packing must still be exact
        // and the report must admit the (near-)zero saving honestly.
        let img = ImageU8::filled(256, 8, 255);
        let pool = ThreadPool::new(1);
        let report = analyze_integral(&img, &IntegralConfig::default(), &pool).unwrap();
        assert!(report.peak_line_bits > 0);
        assert!(report.memory_saving_pct() < 50.0);
    }

    #[test]
    fn dark_frame_compresses_hard() {
        let img = ImageU8::filled(256, 8, 1);
        let pool = ThreadPool::new(1);
        let report = analyze_integral(&img, &IntegralConfig::default(), &pool).unwrap();
        // Deltas fit in ≤ 9 bits everywhere; most of the 32-bit raw line
        // should be recovered.
        assert!(report.memory_saving_pct() > 50.0, "{report:?}");
    }

    #[test]
    fn geometry_guards_reject_bad_configs() {
        let img = gradient(16, 4);
        let pool = ThreadPool::new(1);
        let bad = IntegralConfig {
            segment: 0,
            hot_path: HotPath::Scalar,
        };
        assert!(analyze_integral(&img, &bad, &pool).is_err());
    }

    #[test]
    fn accounting_identities_hold() {
        let img = gradient(40, 6);
        let pool = ThreadPool::new(1);
        let r = analyze_integral(&img, &IntegralConfig::default(), &pool).unwrap();
        assert_eq!(r.raw_line_bits, 40 * 32);
        assert_eq!(r.management_bits_per_line, 40 + 5 * 5);
        assert!(r.peak_line_bits >= r.management_bits_per_line);
        assert!(r.mean_line_bits() <= r.peak_line_bits as f64);
    }
}

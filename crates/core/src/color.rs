//! Color (24-bit) frame processing.
//!
//! The hardware replicates the single-plane datapath per channel
//! ("assuming 8-bit pixels … 24-bit colored pixels" triple the line-buffer
//! cost — paper Section III). This module wires three architectures in
//! parallel over the R/G/B planes and totals the memory accounting, which
//! is exactly how a color instantiation would be budgeted.

use crate::arch::FrameStats;
use crate::compressed::CompressedSlidingWindow;
use crate::config::ArchConfig;
use crate::kernels::WindowKernel;
use crate::planner::{plan, BramPlan, MgmtAccounting};
use sw_image::rgb::ImageRgb;

/// Output of one color frame.
#[derive(Debug, Clone)]
pub struct ColorOutput {
    /// Per-channel kernel outputs merged back into a color image.
    pub image: ImageRgb,
    /// Per-channel statistics `[R, G, B]`.
    pub stats: [FrameStats; 3],
}

impl ColorOutput {
    /// Total peak occupancy across channels (bits, management included).
    pub fn peak_total_occupancy(&self) -> u64 {
        self.stats.iter().map(|s| s.peak_total_occupancy).sum()
    }

    /// Total raw-buffer bits across channels.
    pub fn raw_buffer_bits(&self) -> u64 {
        self.stats.iter().map(|s| s.raw_buffer_bits).sum()
    }

    /// Memory saving across all three channels (paper Eq. 5).
    pub fn memory_saving_pct(&self) -> f64 {
        (1.0 - self.peak_total_occupancy() as f64 / self.raw_buffer_bits() as f64) * 100.0
    }
}

/// Three per-channel compressed architectures.
pub struct ColorCompressedSlidingWindow {
    channels: [CompressedSlidingWindow; 3],
}

impl ColorCompressedSlidingWindow {
    /// Build three channel datapaths with the same configuration.
    pub fn new(cfg: ArchConfig) -> Self {
        Self {
            channels: std::array::from_fn(|_| CompressedSlidingWindow::new(cfg)),
        }
    }

    /// The shared configuration.
    pub fn config(&self) -> &ArchConfig {
        self.channels[0].config()
    }

    /// Process a color frame: each plane flows through its own datapath
    /// (as in hardware), outputs are re-interleaved.
    ///
    /// # Errors
    ///
    /// The first [`crate::error::SwError`] any channel's datapath reports
    /// (channels run in R, G, B order).
    pub fn process_frame(
        &mut self,
        img: &ImageRgb,
        kernel: &dyn WindowKernel,
    ) -> crate::error::Result<ColorOutput> {
        let planes = img.planes();
        let mut outs = Vec::with_capacity(3);
        for (arch, plane) in self.channels.iter_mut().zip(&planes) {
            outs.push(arch.process_frame(plane, kernel)?);
        }
        let stats = [outs[0].stats, outs[1].stats, outs[2].stats];
        let image = ImageRgb::from_planes(&outs[0].image, &outs[1].image, &outs[2].image);
        Ok(ColorOutput { image, stats })
    }

    /// BRAM plans per channel for the last measured frame.
    pub fn plan_brams(&self, out: &ColorOutput, accounting: MgmtAccounting) -> [BramPlan; 3] {
        let cfg = self.config();
        std::array::from_fn(|c| {
            plan(
                cfg.window,
                cfg.width,
                out.stats[c].peak_payload_occupancy,
                accounting,
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{BoxFilter, Tap};
    use crate::planner::traditional_brams;
    use crate::traditional::TraditionalSlidingWindow;

    fn color_scene(w: usize, h: usize) -> ImageRgb {
        ImageRgb::from_fn(w, h, |x, y| {
            let base = 90.0 + 70.0 * ((x + 2 * y) as f64 * 0.05).sin();
            [
                (base * 1.1).clamp(0.0, 255.0) as u8,
                base.clamp(0.0, 255.0) as u8,
                (base * 0.7 + 20.0).clamp(0.0, 255.0) as u8,
            ]
        })
    }

    #[test]
    fn lossless_color_matches_per_plane_traditional() {
        let img = color_scene(48, 24);
        let cfg = ArchConfig::new(8, 48);
        let kernel = BoxFilter::new(8);
        let mut color = ColorCompressedSlidingWindow::new(cfg);
        let got = color.process_frame(&img, &kernel).unwrap();
        for (c, plane) in img.planes().iter().enumerate() {
            let mut trad = TraditionalSlidingWindow::new(cfg);
            let expect = trad.process_frame(plane, &kernel).unwrap();
            let got_plane = &got.image.planes()[c];
            assert_eq!(got_plane, &expect.image, "channel {c}");
        }
    }

    #[test]
    fn color_saving_aggregates_channels() {
        let img = color_scene(96, 48);
        let cfg = ArchConfig::new(8, 96);
        let mut color = ColorCompressedSlidingWindow::new(cfg);
        let got = color.process_frame(&img, &Tap::top_left(8)).unwrap();
        assert!(got.memory_saving_pct() > 0.0);
        assert_eq!(got.raw_buffer_bits(), 3 * got.stats[0].raw_buffer_bits);
    }

    #[test]
    fn color_triples_bram_budget_but_compression_still_wins() {
        let img = color_scene(512, 64);
        let cfg = ArchConfig::new(16, 512);
        let mut color = ColorCompressedSlidingWindow::new(cfg);
        let out = color.process_frame(&img, &BoxFilter::new(16)).unwrap();
        let plans = color.plan_brams(&out, MgmtAccounting::Structured);
        let compressed_total: u32 = plans.iter().map(|p| p.total_brams()).sum();
        let traditional_total = 3 * traditional_brams(16, 512);
        assert!(
            compressed_total < traditional_total,
            "{compressed_total} vs {traditional_total}"
        );
    }
}

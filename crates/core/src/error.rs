//! The crate-wide error type behind the `Result`-based public API.
//!
//! Every fallible entry point — [`crate::arch::build_arch`], frame
//! processing, the pipeline runners, configuration validation and the
//! CLI's file I/O — funnels into [`SwError`] so callers handle one type.
//! Hardware-faithful failure modes keep their typed payloads: a memory
//! unit overflow under [`crate::memory_unit::OverflowPolicy::Fail`]
//! surfaces the underlying [`sw_fpga::fifo::FifoError`], and a corrupted
//! packed stream surfaces the codec that detected it.

use crate::codec::LineCodecKind;
use sw_fpga::fifo::FifoError;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SwError>;

/// Unified error for the sliding-window architectures.
#[derive(Debug)]
pub enum SwError {
    /// Invalid configuration or geometry (window/width/threshold/codec).
    Config(String),
    /// A memory-unit FIFO rejected an operation (overflow under the
    /// `Fail` policy, or a forced underflow fault).
    Fifo(FifoError),
    /// The packed stream failed a consistency guard while decoding —
    /// corruption was *detected* rather than silently reconstructed.
    Decode {
        /// The codec whose guards caught the corruption.
        codec: LineCodecKind,
        /// Human-readable description of the failed guard.
        detail: String,
    },
    /// An I/O operation failed (PGM/video loading, report writing).
    Io {
        /// What was being done when the error occurred.
        context: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
}

impl std::fmt::Display for SwError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            SwError::Fifo(e) => write!(f, "memory unit fifo: {e}"),
            SwError::Decode { codec, detail } => {
                write!(f, "corrupt {} stream: {detail}", codec.name())
            }
            SwError::Io { context, source } => write!(f, "{context}: {source}"),
        }
    }
}

impl std::error::Error for SwError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SwError::Fifo(e) => Some(e),
            SwError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<FifoError> for SwError {
    fn from(e: FifoError) -> Self {
        SwError::Fifo(e)
    }
}

impl SwError {
    /// Shorthand for a configuration error.
    pub fn config(msg: impl Into<String>) -> Self {
        SwError::Config(msg.into())
    }

    /// Wrap an I/O error with the operation it interrupted.
    pub fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        SwError::Io {
            context: context.into(),
            source,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_friendly() {
        let c = SwError::config("window must be even");
        assert_eq!(c.to_string(), "invalid configuration: window must be even");
        let d = SwError::Decode {
            codec: LineCodecKind::Haar,
            detail: "nbits out of range".into(),
        };
        assert!(d.to_string().contains("haar"));
        assert!(d.to_string().contains("nbits out of range"));
    }

    #[test]
    fn fifo_errors_convert_and_chain() {
        let e: SwError = FifoError::Underrun.into();
        assert!(matches!(e, SwError::Fifo(FifoError::Underrun)));
        assert!(std::error::Error::source(&e).is_some());
    }
}

//! The unified sliding-window datapath, generic over the line codec.
//!
//! Every architecture in this repo — traditional raw line buffers, the
//! paper's compressed design, the two-level extension, and the rejected
//! alternatives — is the *same* machine with a different codec plugged
//! between the active window and the memory unit:
//!
//! 1. the window shifts one column per clock; the evicted column is
//!    staged until the codec's group is full (1, 2 or 4 columns);
//! 2. the codec encodes the group; the encoded record rides the memory
//!    unit for exactly `W − N` cycles (the delay the traditional FIFOs
//!    provide);
//! 3. on exit the group is decoded back into raw columns which re-enter
//!    the window one row down, their oldest pixel retiring.
//!
//! [`SlidingWindow`] is the generic implementation; [`SlidingWindowArch`]
//! is the object-safe face the layers above (pipeline, shard, adaptive,
//! CLI) program against; [`build_arch`] maps an [`ArchConfig`]'s codec
//! selection to a boxed instance. The historical types
//! (`TraditionalSlidingWindow`, `CompressedSlidingWindow`,
//! `TwoLevelCompressedSlidingWindow`) are aliases of `SlidingWindow<C>`
//! and remain bit-identical to their former stand-alone implementations —
//! the determinism and telemetry test suites pin this.
//!
//! # Errors and capacity
//!
//! `process_frame` returns [`crate::error::Result`]: geometry mismatches
//! are [`crate::error::SwError::Config`], corrupted in-flight groups are
//! [`crate::error::SwError::Decode`], and a capacity-enforcing
//! [`MemoryUnit`](crate::memory_unit) under the
//! [`OverflowPolicy::Fail`](crate::memory_unit::OverflowPolicy) policy
//! surfaces [`crate::error::SwError::Fifo`]. Without a memory unit or
//! fault injector configured the datapath is bit-identical to the
//! unchecked historical behaviour.

use crate::codec::{
    HaarIwtCodec, HaarTwoLevelCodec, LeGall53Codec, LineCodec, LineCodecKind, LocoIPredictiveCodec,
    RawCodec,
};
use crate::config::ArchConfig;
use crate::error::{Result, SwError};
use crate::faults::FaultInjector;
use crate::kernels::WindowKernel;
use crate::memory_unit::{MemoryUnit, MemoryUnitConfig, OverflowPolicy};
use crate::window::ActiveWindow;
use crate::{Coeff, Pixel};
use std::collections::VecDeque;
use std::time::Instant;
use sw_bitstream::Sample;
use sw_fpga::sim::Watermark;
use sw_image::ImageU8;
use sw_telemetry::{Counter, Gauge, Histogram, TelemetryHandle, TraceEvent, TraceKind};

/// Inclusive histogram bounds splitting `[1, max]` into eighths
/// (deduplicated for tiny ranges). Shared shape for occupancy histograms.
pub(crate) fn occupancy_bounds(max: u64) -> Vec<u64> {
    let mut bounds: Vec<u64> = (1..=8).map(|i| (max * i / 8).max(1)).collect();
    bounds.dedup();
    bounds
}

/// Statistics of one frame, unified across every codec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameStats {
    /// Clock cycles consumed (always `H × W`: one pixel per clock).
    pub cycles: u64,
    /// Total payload bits pushed into the memory unit during the frame.
    pub payload_bits_total: u64,
    /// Payload bits by sub-band `[LL, LH, HL, HH]` (codecs without a
    /// sub-band structure report everything under the first slot).
    pub per_band_bits_total: [u64; 4],
    /// Peak payload occupancy of the memory unit (bits).
    pub peak_payload_occupancy: u64,
    /// Peak occupancy including the codec's management bits.
    pub peak_total_occupancy: u64,
    /// Static management-bit requirement of the codec.
    pub management_bits: u64,
    /// Raw bits the same buffered span would occupy uncompressed — the
    /// denominator of the paper's Equation 5 (codec-dependent: the
    /// traditional span stores `N − 1` rows, the compressed spans `N`).
    pub raw_buffer_bits: u64,
    /// Number of pushes that exceeded the configured capacity (0 when
    /// unbounded).
    pub overflow_events: usize,
    /// Backpressure cycles charged by a memory unit under the `Stall`
    /// overflow policy (0 without a memory unit).
    pub stall_cycles: u64,
    /// Threshold escalations performed by a memory unit under the
    /// `DegradeLossy` overflow policy (0 without a memory unit).
    pub t_escalations: u64,
}

impl FrameStats {
    /// Paper Equation 5: `(1 − Compressed/Uncompressed) × 100`, with the
    /// compressed size taken at peak occupancy including management bits.
    ///
    /// Returns `0.0` when the buffered span is empty (`W == N` leaves no
    /// FIFO columns, so there is nothing to save) instead of `NaN`.
    pub fn memory_saving_pct(&self) -> f64 {
        if self.raw_buffer_bits == 0 {
            return 0.0;
        }
        (1.0 - self.peak_total_occupancy as f64 / self.raw_buffer_bits as f64) * 100.0
    }

    /// Every counter as a named `u64`, in a fixed declaration order.
    ///
    /// This is the digest/diff hook for the conformance harness: golden
    /// vectors serialize these fields, and oracle verdicts name the first
    /// divergent field by this name. The sub-band split appears as four
    /// `band*_bits` entries so a per-band drift is named precisely rather
    /// than collapsing into the total.
    pub fn fields(&self) -> [(&'static str, u64); 13] {
        [
            ("cycles", self.cycles),
            ("payload_bits_total", self.payload_bits_total),
            ("band0_bits", self.per_band_bits_total[0]),
            ("band1_bits", self.per_band_bits_total[1]),
            ("band2_bits", self.per_band_bits_total[2]),
            ("band3_bits", self.per_band_bits_total[3]),
            ("peak_payload_occupancy", self.peak_payload_occupancy),
            ("peak_total_occupancy", self.peak_total_occupancy),
            ("management_bits", self.management_bits),
            ("raw_buffer_bits", self.raw_buffer_bits),
            ("overflow_events", self.overflow_events as u64),
            ("stall_cycles", self.stall_cycles),
            ("t_escalations", self.t_escalations),
        ]
    }
}

/// Output of one frame.
#[derive(Debug, Clone)]
pub struct FrameOutput {
    /// Kernel output over the valid region, `(W−N+1) × (H−N+1)`.
    pub image: ImageU8,
    /// Frame statistics.
    pub stats: FrameStats,
}

/// The object-safe face of a sliding-window architecture: everything the
/// pipeline, shard runner, adaptive controller and CLI need, independent
/// of the concrete codec type.
pub trait SlidingWindowArch {
    /// Process one frame.
    ///
    /// # Errors
    ///
    /// [`SwError::Config`] on geometry mismatch, [`SwError::Decode`] when
    /// an in-flight group fails a consistency guard (only reachable with
    /// fault injection), [`SwError::Fifo`] when a capacity-enforcing
    /// memory unit overflows under [`OverflowPolicy::Fail`] or a forced
    /// underflow fault fires.
    fn process_frame(&mut self, img: &ImageU8, kernel: &dyn WindowKernel) -> Result<FrameOutput>;

    /// Open a row-streamed frame of `height` rows. Rows then arrive one
    /// at a time via [`push_row`](Self::push_row) and the output is
    /// collected by [`finish_frame`](Self::finish_frame) — byte-identical
    /// to a whole-frame [`process_frame`](Self::process_frame) call (the
    /// whole-frame path is implemented on top of this one).
    ///
    /// The default implementation reports the architecture as
    /// non-streaming; [`SlidingWindow`] overrides all three methods.
    fn begin_frame(&mut self, height: usize) -> Result<()> {
        let _ = height;
        Err(SwError::config(
            "this architecture does not support row streaming".to_string(),
        ))
    }

    /// Feed the next row of the open streamed frame, in raster order.
    fn push_row(&mut self, row: &[Pixel], kernel: &dyn WindowKernel) -> Result<()> {
        let _ = (row, kernel);
        Err(SwError::config(
            "this architecture does not support row streaming".to_string(),
        ))
    }

    /// Close the open streamed frame after all declared rows arrived and
    /// collect its output and statistics.
    fn finish_frame(&mut self) -> Result<FrameOutput> {
        Err(SwError::config(
            "this architecture does not support row streaming".to_string(),
        ))
    }

    /// Clear all state (frame boundary).
    fn reset(&mut self);

    /// The architecture's configuration.
    fn config(&self) -> &ArchConfig;

    /// The codec this architecture buffers its lines through.
    fn codec_kind(&self) -> LineCodecKind;

    /// Bind instruments under `stage.<name>.*` / `fifo.<name>.*`.
    fn bind_telemetry(&mut self, telemetry: &TelemetryHandle, name: &str);

    /// Retune the threshold in place (takes effect from the next frame;
    /// no-op in effect for inherently lossless codecs).
    fn set_threshold(&mut self, t: Coeff);

    /// Install (or remove) a capacity-enforcing memory unit. `None`
    /// restores the unbounded historical datapath.
    fn set_memory_unit(&mut self, cfg: Option<MemoryUnitConfig>);

    /// Install (or remove) a deterministic fault injector.
    fn set_fault_injector(&mut self, faults: Option<FaultInjector>);
}

/// Wall-time accumulators for the encode/decode stages of one frame.
#[derive(Debug, Clone, Copy, Default)]
struct FrameProf {
    encode_ns: u64,
    encode_calls: u64,
    decode_ns: u64,
    decode_calls: u64,
}

impl FrameProf {
    fn clear(&mut self) {
        *self = Self::default();
    }
}

/// In-flight state of a row-streamed frame between
/// [`SlidingWindow::begin_frame`] and [`SlidingWindow::finish_frame`].
#[derive(Debug, Clone)]
struct StreamFrame {
    /// Declared total rows.
    height: usize,
    /// Rows consumed so far.
    rows_in: usize,
    /// Global pixel cycle across the streamed frame.
    cycle: u64,
    /// Kernel output accumulated over the valid region.
    out: ImageU8,
}

/// One encoded column group in flight through the memory unit.
#[derive(Debug, Clone)]
struct GroupEntry<E> {
    /// Cycle at which the group's first raw column exited the window.
    first_exit: u64,
    /// Payload bits the group occupies.
    payload_bits: u64,
    /// The codec's encoded form.
    data: E,
}

/// The sliding window architecture, generic over the line codec `C`.
///
/// `SlidingWindow<RawCodec>` is the traditional architecture,
/// `SlidingWindow<HaarIwtCodec>` the paper's compressed one; see
/// [`crate::codec`] for the full matrix.
pub struct SlidingWindow<C: LineCodec> {
    cfg: ArchConfig,
    kind: LineCodecKind,
    group: usize,
    codec: C,
    window: ActiveWindow,
    /// Evicted columns (as the codec's coefficient word) awaiting a full
    /// codec group.
    staging: Vec<Vec<C::Sample>>,
    staged: usize,
    queue: VecDeque<GroupEntry<C::Encoded>>,
    /// Decoded raw columns of the front group awaiting delivery.
    carry: VecDeque<Vec<Pixel>>,
    carry_bits: u64,
    /// Retired encoded records recycled into `encode_group_reuse` so the
    /// sliced hot path re-packs into warm buffers instead of allocating.
    spare_encoded: Vec<C::Encoded>,
    /// Reusable container handed to `try_decode_group_into`; its column
    /// buffers cycle through `carry` → the datapath → `spare_cols` → here.
    decoded_scratch: Vec<Vec<Pixel>>,
    /// Retired decoded-column buffers awaiting reuse.
    spare_cols: Vec<Vec<Pixel>>,
    /// Optional capacity budget for the packed-bit memory (bits).
    capacity_bits: Option<u64>,
    /// Optional capacity-enforcing memory unit backed by BRAM FIFOs.
    memory_unit: Option<MemoryUnit>,
    /// Optional deterministic fault injector.
    faults: Option<FaultInjector>,
    /// Encode-order group sequence number within the frame.
    group_seq: u64,
    /// The configured threshold before any `DegradeLossy` escalation;
    /// restored at every frame boundary.
    base_threshold: Coeff,
    // --- per-frame accounting ---
    payload_occupancy: u64,
    occupancy_watermark: Watermark,
    per_band_bits: [u64; 4],
    overflow_events: usize,
    entering: Vec<Pixel>,
    evicted: Vec<Pixel>,
    /// Open row-streamed frame, if any ([`Self::begin_frame`]).
    stream: Option<StreamFrame>,
    /// Per-frame wall-time accumulators for the hierarchical profiler
    /// (encode/decode aggregates flushed once per frame, so the per-group
    /// hot path costs two `Instant::now` reads when telemetry is enabled
    /// and nothing when it is disabled).
    prof: FrameProf,
    // --- telemetry (no-ops unless a telemetry handle was bound) ---
    telemetry: TelemetryHandle,
    bound_name: Option<String>,
    m_cycles: Counter,
    m_window_shifts: Counter,
    m_iwt_pairs: Counter,
    m_unpack_pairs: Counter,
    m_overflow: Counter,
    m_threshold: Gauge,
    occ_hist: Histogram,
    occ_gauge: Gauge,
}

impl<C: LineCodec> std::fmt::Debug for SlidingWindow<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlidingWindow")
            .field("cfg", &self.cfg)
            .field("codec", &self.kind)
            .finish_non_exhaustive()
    }
}

impl<C: LineCodec + Clone> Clone for SlidingWindow<C>
where
    C::Encoded: Clone,
{
    fn clone(&self) -> Self {
        Self {
            cfg: self.cfg,
            kind: self.kind,
            group: self.group,
            codec: self.codec.clone(),
            window: self.window.clone(),
            staging: self.staging.clone(),
            staged: self.staged,
            queue: self.queue.clone(),
            carry: self.carry.clone(),
            carry_bits: self.carry_bits,
            spare_encoded: self.spare_encoded.clone(),
            decoded_scratch: self.decoded_scratch.clone(),
            spare_cols: self.spare_cols.clone(),
            capacity_bits: self.capacity_bits,
            memory_unit: self.memory_unit.clone(),
            faults: self.faults.clone(),
            group_seq: self.group_seq,
            base_threshold: self.base_threshold,
            payload_occupancy: self.payload_occupancy,
            occupancy_watermark: self.occupancy_watermark,
            per_band_bits: self.per_band_bits,
            overflow_events: self.overflow_events,
            entering: self.entering.clone(),
            evicted: self.evicted.clone(),
            stream: self.stream.clone(),
            prof: self.prof,
            telemetry: self.telemetry.clone(),
            bound_name: self.bound_name.clone(),
            m_cycles: self.m_cycles.clone(),
            m_window_shifts: self.m_window_shifts.clone(),
            m_iwt_pairs: self.m_iwt_pairs.clone(),
            m_unpack_pairs: self.m_unpack_pairs.clone(),
            m_overflow: self.m_overflow.clone(),
            m_threshold: self.m_threshold.clone(),
            occ_hist: self.occ_hist.clone(),
            occ_gauge: self.occ_gauge.clone(),
        }
    }
}

impl<C: LineCodec> SlidingWindow<C> {
    /// Build the architecture for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the codec rejects the geometry (e.g. the paper's codec
    /// needs `width ≥ window + 2`; the two-level one `width ≥ window + 4`
    /// and a window divisible by 4). Use [`build_arch`] for a checked,
    /// `Result`-returning construction path.
    pub fn new(cfg: ArchConfig) -> Self {
        let codec = C::new(&cfg);
        let kind = codec.kind();
        let group = codec.group_width();
        debug_assert!(cfg.width >= cfg.window + group, "codec geometry check");
        let n = cfg.window;
        Self {
            cfg,
            kind,
            group,
            codec,
            window: ActiveWindow::new(n),
            staging: vec![vec![<C::Sample as Sample>::ZERO; n]; group],
            staged: 0,
            queue: VecDeque::new(),
            carry: VecDeque::new(),
            carry_bits: 0,
            spare_encoded: Vec::new(),
            decoded_scratch: Vec::new(),
            spare_cols: Vec::new(),
            capacity_bits: None,
            memory_unit: None,
            faults: None,
            group_seq: 0,
            base_threshold: cfg.threshold,
            payload_occupancy: 0,
            occupancy_watermark: Watermark::new(),
            per_band_bits: [0; 4],
            overflow_events: 0,
            entering: vec![0; n],
            evicted: vec![0; n],
            stream: None,
            prof: FrameProf::default(),
            telemetry: TelemetryHandle::disabled(),
            bound_name: None,
            m_cycles: Counter::noop(),
            m_window_shifts: Counter::noop(),
            m_iwt_pairs: Counter::noop(),
            m_unpack_pairs: Counter::noop(),
            m_overflow: Counter::noop(),
            m_threshold: Gauge::noop(),
            occ_hist: Histogram::noop(),
            occ_gauge: Gauge::noop(),
        }
    }

    /// Set a packed-bit capacity budget; pushes beyond it are counted as
    /// overflow events (the data is still stored so measurement can
    /// continue — real hardware would corrupt, which is the paper's "bad
    /// frames" limitation).
    pub fn with_capacity_bits(mut self, bits: u64) -> Self {
        self.capacity_bits = Some(bits);
        self
    }

    /// Install a capacity-enforcing [`MemoryUnit`] that routes packed
    /// groups through real BRAM FIFO storage and applies `cfg.policy` on
    /// would-be overflow.
    pub fn with_memory_unit(mut self, cfg: MemoryUnitConfig) -> Self {
        self.install_memory_unit(Some(cfg));
        self
    }

    /// Install a deterministic fault injector (see [`crate::faults`]).
    pub fn with_fault_injector(mut self, faults: FaultInjector) -> Self {
        self.faults = Some(faults);
        self
    }

    fn install_memory_unit(&mut self, cfg: Option<MemoryUnitConfig>) {
        self.memory_unit = cfg.map(|c| {
            let mut mu = MemoryUnit::new(c, self.kind);
            if let Some(name) = &self.bound_name {
                mu.bind_telemetry(&self.telemetry, name);
            }
            mu
        });
    }

    /// Bind instruments to `telemetry` under the codec's default stage
    /// name (`traditional` for raw, `compressed` for Haar, the codec name
    /// otherwise).
    pub fn with_telemetry(self, telemetry: &TelemetryHandle) -> Self {
        let name = match self.kind {
            LineCodecKind::Raw => "traditional",
            LineCodecKind::Haar => "compressed",
            k => k.name(),
        };
        self.with_named_telemetry(telemetry, name)
    }

    /// Bind instruments to `telemetry` under `stage.<name>.*` (per-stage
    /// cycles, shifts, and — for compressing codecs — IWT pairs, unpack
    /// pairs, overflow events, threshold, codec traffic) and
    /// `fifo.<name>.*` (memory-unit occupancy histogram and high-water
    /// mark, in bits). A configured [`MemoryUnit`] additionally registers
    /// `memunit.<name>.*`.
    pub fn with_named_telemetry(mut self, telemetry: &TelemetryHandle, name: &str) -> Self {
        self.bind(telemetry, name);
        self
    }

    fn bind(&mut self, telemetry: &TelemetryHandle, name: &str) {
        self.m_cycles = telemetry.counter(&format!("stage.{name}.cycles"));
        self.m_window_shifts = telemetry.counter(&format!("stage.{name}.window_shifts"));
        if self.kind != LineCodecKind::Raw {
            self.m_iwt_pairs = telemetry.counter(&format!("stage.{name}.iwt_pairs"));
            self.m_unpack_pairs = telemetry.counter(&format!("stage.{name}.unpack_pairs"));
            self.m_overflow = telemetry.counter(&format!("stage.{name}.overflow_events"));
            self.m_threshold = telemetry.gauge(&format!("stage.{name}.threshold"));
            self.m_threshold.set(self.cfg.threshold.max(0) as u64);
        }
        self.occ_hist = telemetry.histogram(
            &format!("fifo.{name}.occupancy_bits"),
            &occupancy_bounds(self.kind.raw_span_bits(&self.cfg).max(1)),
        );
        self.occ_gauge = telemetry.gauge(&format!("fifo.{name}.high_water_bits"));
        if self.kind != LineCodecKind::Raw {
            self.codec
                .bind_telemetry(telemetry, &format!("stage.{name}"));
        }
        if let Some(mu) = self.memory_unit.as_mut() {
            mu.bind_telemetry(telemetry, name);
        }
        self.telemetry = telemetry.clone();
        self.bound_name = Some(name.to_string());
    }

    /// The architecture's configuration.
    pub fn config(&self) -> &ArchConfig {
        &self.cfg
    }

    /// The codec's management-bit requirement for this configuration.
    pub fn management_bits(&self) -> u64 {
        self.kind.management_bits(&self.cfg)
    }

    /// The installed memory unit, if any.
    pub fn memory_unit(&self) -> Option<&MemoryUnit> {
        self.memory_unit.as_ref()
    }

    /// Process one frame.
    ///
    /// # Errors
    ///
    /// See [`SlidingWindowArch::process_frame`].
    pub fn process_frame(
        &mut self,
        img: &ImageU8,
        kernel: &dyn WindowKernel,
    ) -> Result<FrameOutput> {
        let n = self.cfg.window;
        if img.width() != self.cfg.width {
            return Err(SwError::config(format!(
                "image width {} does not match the configured width {}",
                img.width(),
                self.cfg.width
            )));
        }
        if img.height() < n {
            return Err(SwError::config(format!(
                "image height {} is shorter than the {n}-row window",
                img.height()
            )));
        }
        if kernel.window_size() != n {
            return Err(SwError::config(format!(
                "kernel window size {} does not match the architecture window {n}",
                kernel.window_size()
            )));
        }
        // The whole-frame path *is* the streaming path driven to
        // completion in one call — byte-identical output by construction.
        let frame_span = self.telemetry.profile_span("frame");
        self.begin_frame(img.height())?;
        for r in 0..img.height() {
            self.push_row(img.row(r), kernel)?;
        }
        let out = self.finish_frame();
        drop(frame_span);
        out
    }

    /// Open a row-streamed frame of `height` rows: reset the datapath,
    /// size the output for the valid region and start the cycle counter.
    /// Any previously open stream is abandoned.
    ///
    /// # Errors
    ///
    /// [`SwError::Config`] when `height` cannot fit one window.
    pub fn begin_frame(&mut self, height: usize) -> Result<()> {
        let n = self.cfg.window;
        if height < n {
            return Err(SwError::config(format!(
                "image height {height} is shorter than the {n}-row window"
            )));
        }
        self.reset();
        let w = self.cfg.width;
        self.telemetry.trace(TraceEvent::new(
            0,
            TraceKind::FrameStart,
            w as u64,
            height as u64,
        ));
        self.stream = Some(StreamFrame {
            height,
            rows_in: 0,
            cycle: 0,
            out: ImageU8::filled(w - n + 1, height - n + 1, 0),
        });
        Ok(())
    }

    /// Feed the next row of the open streamed frame.
    ///
    /// # Errors
    ///
    /// [`SwError::Config`] when no stream is open, the row length or
    /// kernel mismatch the configuration, or more rows arrive than
    /// [`begin_frame`](Self::begin_frame) declared. Datapath errors
    /// propagate exactly as from
    /// [`process_frame`](Self::process_frame). Any error aborts the
    /// stream: subsequent calls fail until a new `begin_frame`.
    pub fn push_row(&mut self, row: &[Pixel], kernel: &dyn WindowKernel) -> Result<()> {
        let n = self.cfg.window;
        let Some(mut st) = self.stream.take() else {
            return Err(SwError::config(
                "push_row called without an open begin_frame stream".to_string(),
            ));
        };
        if row.len() != self.cfg.width {
            return Err(SwError::config(format!(
                "image width {} does not match the configured width {}",
                row.len(),
                self.cfg.width
            )));
        }
        if kernel.window_size() != n {
            return Err(SwError::config(format!(
                "kernel window size {} does not match the architecture window {n}",
                kernel.window_size()
            )));
        }
        if st.rows_in >= st.height {
            return Err(SwError::config(format!(
                "row {} exceeds the declared frame height {}",
                st.rows_in, st.height
            )));
        }
        let delay = self.cfg.fifo_depth() as u64; // W − N cycles
        let r = st.rows_in;
        for (c, &input) in row.iter().enumerate() {
            // (1) Memory unit read: the column that exited `delay`
            //     cycles ago re-enters, shifted one row up.
            let delivered = if st.cycle >= delay {
                self.deliver(st.cycle - delay)?
            } else {
                None
            };
            match delivered {
                Some(col) => {
                    self.entering[..n - 1].copy_from_slice(&col[1..]);
                    // The column buffer is spent: recycle it into the
                    // decode scratch pool instead of freeing it.
                    self.spare_cols.push(col);
                }
                None => self.entering[..n - 1].fill(0),
            }
            self.entering[n - 1] = input;

            // (2) Window shift; the evicted column heads to the codec.
            self.window.shift_into(&self.entering, &mut self.evicted);

            // (3) Stage the evicted column; encode when the codec's
            //     group is full.
            for (dst, &src) in self.staging[self.staged].iter_mut().zip(&self.evicted) {
                *dst = <C::Sample as Sample>::from_pixel(src);
            }
            self.staged += 1;
            if self.staged == self.group {
                self.staged = 0;
                self.push_group(st.cycle)?;
            }

            // (4) Kernel output once the window is fully interior.
            if r + 1 >= n && c + 1 >= n {
                st.out
                    .set(c + 1 - n, r + 1 - n, kernel.apply(&self.window.view()));
            }
            st.cycle += 1;
        }
        st.rows_in += 1;
        self.stream = Some(st);
        Ok(())
    }

    /// Close the open streamed frame and collect its output and
    /// statistics.
    ///
    /// # Errors
    ///
    /// [`SwError::Config`] when no stream is open or fewer rows arrived
    /// than [`begin_frame`](Self::begin_frame) declared.
    pub fn finish_frame(&mut self) -> Result<FrameOutput> {
        let Some(st) = self.stream.take() else {
            return Err(SwError::config(
                "finish_frame called without an open begin_frame stream".to_string(),
            ));
        };
        if st.rows_in != st.height {
            return Err(SwError::config(format!(
                "stream finished after {} of {} declared rows",
                st.rows_in, st.height
            )));
        }
        let cycle = st.cycle;
        self.m_cycles.add(cycle);
        self.m_window_shifts.add(cycle); // one shift per input pixel
        self.telemetry
            .trace(TraceEvent::new(cycle, TraceKind::FrameEnd, cycle, 0));

        // Flush the per-frame stage aggregates while any enclosing frame
        // span is still open, so they land under "frame/…" in the span
        // tree when driven by `process_frame`.
        if self.prof.encode_calls > 0 {
            self.telemetry
                .profile_record("encode", self.prof.encode_ns, self.prof.encode_calls);
        }
        if self.prof.decode_calls > 0 {
            self.telemetry
                .profile_record("decode", self.prof.decode_ns, self.prof.decode_calls);
        }

        let management_bits = self.kind.management_bits(&self.cfg);
        let (stall_cycles, t_escalations, mu_overflows) = match &self.memory_unit {
            Some(mu) => (
                mu.stall_cycles(),
                mu.escalations(),
                mu.overflow_events() as usize,
            ),
            None => (0, 0, 0),
        };
        let stats = FrameStats {
            cycles: cycle,
            payload_bits_total: self.per_band_bits.iter().sum(),
            per_band_bits_total: self.per_band_bits,
            peak_payload_occupancy: self.occupancy_watermark.max(),
            peak_total_occupancy: self.occupancy_watermark.max() + management_bits,
            management_bits,
            raw_buffer_bits: self.kind.raw_span_bits(&self.cfg),
            overflow_events: self.overflow_events + mu_overflows,
            stall_cycles,
            t_escalations,
        };
        Ok(FrameOutput {
            image: st.out,
            stats,
        })
    }

    /// Encode the staged group, resolve the memory unit's overflow policy
    /// and push the result into the in-flight queue.
    fn push_group(&mut self, cycle: u64) -> Result<()> {
        let t0 = self.telemetry.is_enabled().then(Instant::now);
        let first_exit = cycle + 1 - self.group as u64;
        let recycled = self.spare_encoded.pop();
        let mut encoded = self.codec.encode_group_reuse(&self.staging, recycled);
        self.m_iwt_pairs.inc();

        // Capacity policy: resolve before the per-band accounting so the
        // statistics describe the encoding that is actually stored.
        if let Some(mu) = self.memory_unit.as_mut() {
            if let Some(mut deficit) = mu.deficit(encoded.payload_bits) {
                match mu.policy() {
                    OverflowPolicy::Fail => {
                        return Err(mu.overflow_error(encoded.payload_bits));
                    }
                    OverflowPolicy::Stall => {
                        // Hardware would hold the pipeline until readout
                        // frees space; the model charges the drain time
                        // and stores the group.
                        let stall_cycles = mu.record_stall(deficit);
                        self.telemetry.trace(TraceEvent::new(
                            first_exit,
                            TraceKind::Stall,
                            stall_cycles,
                            deficit,
                        ));
                    }
                    OverflowPolicy::DegradeLossy => {
                        let max_t = mu.config().max_threshold;
                        while deficit > 0
                            && self.kind.is_lossy_capable()
                            && self.cfg.threshold < max_t
                        {
                            self.cfg.threshold += 1;
                            self.codec = C::new(&self.cfg);
                            if let Some(name) = &self.bound_name {
                                if self.kind != LineCodecKind::Raw {
                                    self.codec
                                        .bind_telemetry(&self.telemetry, &format!("stage.{name}"));
                                }
                            }
                            self.m_threshold.set(self.cfg.threshold.max(0) as u64);
                            let prev = encoded.data;
                            encoded = self.codec.encode_group_reuse(&self.staging, Some(prev));
                            mu.record_escalation();
                            deficit = mu.deficit(encoded.payload_bits).unwrap_or(0);
                        }
                        if deficit > 0 {
                            mu.record_overflow();
                        }
                    }
                }
            }
        }

        for (slot, bits) in self.per_band_bits.iter_mut().zip(encoded.per_band_bits) {
            *slot += bits;
        }

        // Fault injection: flip a bit of the final (stored) encoding.
        if let Some(faults) = &self.faults {
            if let Some((site, bit)) = faults.encoded_flip(self.group_seq) {
                self.codec.corrupt(&mut encoded.data, site, bit);
            }
        }
        let force_overflow = self
            .faults
            .as_ref()
            .is_some_and(|f| f.fifo_overflow_at(self.group_seq));

        let bits = encoded.payload_bits;
        if let Some(cap) = self.capacity_bits {
            if self.payload_occupancy + bits > cap {
                self.overflow_events += 1;
                self.m_overflow.inc();
                if self.kind != LineCodecKind::Raw {
                    self.telemetry.trace(TraceEvent::new(
                        first_exit,
                        TraceKind::Overflow,
                        self.payload_occupancy + bits,
                        cap,
                    ));
                }
            }
        }
        if let Some(mu) = self.memory_unit.as_mut() {
            mu.push_group(bits, force_overflow);
        }
        self.group_seq += 1;
        self.payload_occupancy += bits;
        self.occupancy_watermark.observe(self.payload_occupancy);
        self.occ_hist.observe(self.payload_occupancy);
        self.occ_gauge.observe_max(self.payload_occupancy);
        if self.kind != LineCodecKind::Raw {
            self.telemetry.trace(TraceEvent::new(
                first_exit,
                TraceKind::Pack,
                bits,
                self.payload_occupancy,
            ));
        }
        self.queue.push_back(GroupEntry {
            first_exit,
            payload_bits: bits,
            data: encoded.data,
        });
        if let Some(t0) = t0 {
            self.prof.encode_ns += u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.prof.encode_calls += 1;
        }
        Ok(())
    }

    /// Deliver the decoded raw column with exit tag `tag`, if it exists.
    /// The group's bits retire from the occupancy count when its *last*
    /// column is consumed.
    fn deliver(&mut self, tag: u64) -> Result<Option<Vec<Pixel>>> {
        if let Some(col) = self.carry.pop_front() {
            if self.carry.is_empty() {
                let bits = self.carry_bits;
                self.carry_bits = 0;
                self.retire_bits(tag, bits)?;
            }
            return Ok(Some(col));
        }
        match self.queue.front() {
            None => return Ok(None),
            Some(front) if front.first_exit != tag => {
                // Warmup: the requested column predates the first group.
                debug_assert!(
                    front.first_exit > tag,
                    "memory unit fell behind: front {} vs requested {tag}",
                    front.first_exit
                );
                return Ok(None);
            }
            Some(_) => {}
        }
        let Some(entry) = self.queue.pop_front() else {
            return Ok(None);
        };
        let t0 = self.telemetry.is_enabled().then(Instant::now);
        self.m_unpack_pairs.inc();
        if self.kind != LineCodecKind::Raw {
            self.telemetry.trace(TraceEvent::new(
                tag,
                TraceKind::Unpack,
                entry.payload_bits,
                0,
            ));
        }
        // Decode into the recycled container: its column buffers cycle
        // back through `spare_cols` as the datapath consumes them, so a
        // warmed-up sliced codec allocates nothing per group.
        let mut cols = std::mem::take(&mut self.decoded_scratch);
        while cols.len() < self.group {
            cols.push(self.spare_cols.pop().unwrap_or_default());
        }
        cols.truncate(self.group);
        if let Err(detail) = self.codec.try_decode_group_into(&entry.data, &mut cols) {
            self.decoded_scratch = cols;
            return Err(SwError::Decode {
                codec: self.kind,
                detail,
            });
        }
        debug_assert_eq!(cols.len(), self.group);
        if cols.is_empty() {
            self.decoded_scratch = cols;
            return Err(SwError::Decode {
                codec: self.kind,
                detail: "decoded group holds no columns".to_string(),
            });
        }
        // The spent encoded record goes back to the encode side.
        self.spare_encoded.push(entry.data);
        let mut drain = cols.drain(..);
        let Some(first) = drain.next() else {
            unreachable!("emptiness was rejected above")
        };
        self.carry.extend(drain);
        self.decoded_scratch = cols;
        if self.carry.is_empty() {
            self.retire_bits(tag, entry.payload_bits)?;
        } else {
            self.carry_bits = entry.payload_bits;
        }
        if let Some(t0) = t0 {
            self.prof.decode_ns += u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.prof.decode_calls += 1;
        }
        Ok(Some(first))
    }

    /// Retire one group's bits from the occupancy count; with a memory
    /// unit configured, also pop and verify its fingerprint words.
    fn retire_bits(&mut self, tag: u64, bits: u64) -> Result<()> {
        if let Some(mu) = self.memory_unit.as_mut() {
            if self
                .faults
                .as_ref()
                .is_some_and(|f| f.fifo_underflow_at(mu.retire_seq()))
            {
                return Err(mu.force_underflow());
            }
            mu.retire_group()?;
        }
        self.payload_occupancy -= bits;
        if self.kind != LineCodecKind::Raw {
            self.telemetry.trace(TraceEvent::new(
                tag,
                TraceKind::FifoPop,
                self.payload_occupancy,
                bits,
            ));
        }
        Ok(())
    }

    /// Clear all state (frame boundary). A `DegradeLossy` threshold
    /// escalation persists only to the end of its frame: the configured
    /// base threshold is restored here.
    pub fn reset(&mut self) {
        self.stream = None;
        self.window.clear();
        if self.cfg.threshold != self.base_threshold {
            self.cfg.threshold = self.base_threshold;
            self.codec = C::new(&self.cfg);
            self.m_threshold.set(self.base_threshold.max(0) as u64);
            if self.kind != LineCodecKind::Raw {
                if let Some(name) = self.bound_name.clone() {
                    self.codec
                        .bind_telemetry(&self.telemetry, &format!("stage.{name}"));
                }
            }
        }
        self.codec.reset();
        self.staged = 0;
        // Frame-boundary state clears recycle their buffers instead of
        // freeing them: the pools are bounded by the in-flight group count.
        self.spare_encoded
            .extend(self.queue.drain(..).map(|e| e.data));
        self.spare_cols.extend(self.carry.drain(..));
        self.carry_bits = 0;
        self.payload_occupancy = 0;
        self.occupancy_watermark.reset();
        self.per_band_bits = [0; 4];
        self.overflow_events = 0;
        self.group_seq = 0;
        self.prof.clear();
        if let Some(mu) = self.memory_unit.as_mut() {
            mu.reset();
        }
    }
}

impl<C: LineCodec> SlidingWindowArch for SlidingWindow<C> {
    fn process_frame(&mut self, img: &ImageU8, kernel: &dyn WindowKernel) -> Result<FrameOutput> {
        SlidingWindow::process_frame(self, img, kernel)
    }

    fn begin_frame(&mut self, height: usize) -> Result<()> {
        SlidingWindow::begin_frame(self, height)
    }

    fn push_row(&mut self, row: &[Pixel], kernel: &dyn WindowKernel) -> Result<()> {
        SlidingWindow::push_row(self, row, kernel)
    }

    fn finish_frame(&mut self) -> Result<FrameOutput> {
        SlidingWindow::finish_frame(self)
    }

    fn reset(&mut self) {
        SlidingWindow::reset(self);
    }

    fn config(&self) -> &ArchConfig {
        SlidingWindow::config(self)
    }

    fn codec_kind(&self) -> LineCodecKind {
        self.kind
    }

    fn bind_telemetry(&mut self, telemetry: &TelemetryHandle, name: &str) {
        self.bind(telemetry, name);
    }

    fn set_threshold(&mut self, t: Coeff) {
        assert!(t >= 0, "threshold must be non-negative");
        self.cfg.threshold = t;
        self.base_threshold = t;
        // Codecs capture the threshold at construction: rebuild, and
        // re-bind codec telemetry if instruments are attached.
        self.codec = C::new(&self.cfg);
        self.m_threshold.set(t.max(0) as u64);
        if self.kind != LineCodecKind::Raw {
            if let Some(name) = self.bound_name.clone() {
                self.codec
                    .bind_telemetry(&self.telemetry, &format!("stage.{name}"));
            }
        }
    }

    fn set_memory_unit(&mut self, cfg: Option<MemoryUnitConfig>) {
        self.install_memory_unit(cfg);
    }

    fn set_fault_injector(&mut self, faults: Option<FaultInjector>) {
        self.faults = faults;
    }
}

/// Build the architecture `cfg.codec` selects, behind the object-safe
/// trait. This is the single source of truth mapping the value-level
/// codec selection to the generic implementation.
///
/// # Errors
///
/// [`SwError::Config`] when the codec rejects the geometry (see
/// [`ArchConfig::validate`]).
pub fn build_arch(cfg: &ArchConfig) -> Result<Box<dyn SlidingWindowArch + Send>> {
    cfg.validate()?;
    Ok(match cfg.codec {
        LineCodecKind::Raw => Box::new(SlidingWindow::<RawCodec>::new(*cfg)),
        LineCodecKind::Haar => Box::new(SlidingWindow::<HaarIwtCodec>::new(*cfg)),
        LineCodecKind::Haar2 => Box::new(SlidingWindow::<HaarTwoLevelCodec>::new(*cfg)),
        LineCodecKind::Legall => Box::new(SlidingWindow::<LeGall53Codec>::new(*cfg)),
        LineCodecKind::Locoi => Box::new(SlidingWindow::<LocoIPredictiveCodec>::new(*cfg)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{BoxFilter, Tap};
    use crate::reference::direct_sliding_window;
    use sw_image::mse;

    fn test_image(w: usize, h: usize) -> ImageU8 {
        ImageU8::from_fn(w, h, |x, y| {
            let s = 96.0
                + 64.0 * ((x as f64 / w as f64) * 3.1).sin()
                + 48.0 * ((y as f64 / h as f64) * 2.3).cos()
                + ((x * 7 + y * 13) % 5) as f64;
            s.clamp(0.0, 255.0) as u8
        })
    }

    #[test]
    fn memory_saving_guards_empty_span() {
        // The W == N corner leaves zero FIFO columns: raw_buffer_bits is
        // 0 and the former implementation returned NaN. The guard returns
        // 0.0 — nothing buffered, nothing saved.
        let stats = FrameStats {
            cycles: 0,
            payload_bits_total: 0,
            per_band_bits_total: [0; 4],
            peak_payload_occupancy: 0,
            peak_total_occupancy: 0,
            management_bits: 0,
            raw_buffer_bits: 0,
            overflow_events: 0,
            stall_cycles: 0,
            t_escalations: 0,
        };
        let saving = stats.memory_saving_pct();
        assert!(!saving.is_nan(), "guard must prevent NaN");
        assert_eq!(saving, 0.0);
    }

    #[test]
    fn every_codec_runs_lossless_end_to_end_and_matches_direct() {
        let img = test_image(64, 40);
        let kernel = BoxFilter::new(8);
        let direct = direct_sliding_window(&img, &kernel);
        for kind in LineCodecKind::ALL {
            let cfg = ArchConfig::new(8, 64).with_codec(kind);
            let mut arch = build_arch(&cfg).unwrap();
            let out = arch.process_frame(&img, &kernel).unwrap();
            assert_eq!(out.image, direct, "{kind:?} lossless output");
            assert_eq!(out.stats.cycles, 64 * 40, "{kind:?} cycles");
            assert_eq!(arch.codec_kind(), kind);
        }
    }

    #[test]
    fn row_streaming_matches_whole_frame_per_codec() {
        // The serving layer's streamed-job contract: pushing rows one at
        // a time through begin/push/finish is byte-identical to one
        // process_frame call — image, stats, and threshold behavior.
        let img = test_image(64, 40);
        let kernel = BoxFilter::new(8);
        for kind in LineCodecKind::ALL {
            for threshold in [0, 4] {
                let cfg = ArchConfig::new(8, 64)
                    .with_codec(kind)
                    .with_threshold(threshold);
                let whole = build_arch(&cfg)
                    .unwrap()
                    .process_frame(&img, &kernel)
                    .unwrap();
                let mut arch = build_arch(&cfg).unwrap();
                arch.begin_frame(img.height()).unwrap();
                for r in 0..img.height() {
                    arch.push_row(img.row(r), &kernel).unwrap();
                }
                let streamed = arch.finish_frame().unwrap();
                assert_eq!(
                    streamed.image.pixels(),
                    whole.image.pixels(),
                    "{kind:?} T={threshold} streamed output"
                );
                assert_eq!(
                    streamed.stats.fields(),
                    whole.stats.fields(),
                    "{kind:?} T={threshold} streamed stats"
                );
            }
        }
    }

    #[test]
    fn stream_misuse_is_typed_and_recoverable() {
        let img = test_image(64, 40);
        let kernel = BoxFilter::new(8);
        let cfg = ArchConfig::new(8, 64).with_codec(LineCodecKind::Haar);
        let mut arch = build_arch(&cfg).unwrap();
        // No stream open.
        assert!(arch.push_row(img.row(0), &kernel).is_err());
        assert!(arch.finish_frame().is_err());
        // Too few rows.
        arch.begin_frame(img.height()).unwrap();
        arch.push_row(img.row(0), &kernel).unwrap();
        assert!(arch.finish_frame().is_err());
        // A short row aborts the stream; later pushes fail typed.
        arch.begin_frame(img.height()).unwrap();
        assert!(arch.push_row(&img.row(0)[..10], &kernel).is_err());
        assert!(arch.push_row(img.row(0), &kernel).is_err());
        // The architecture recovers fully for the next frame.
        let direct = direct_sliding_window(&img, &kernel);
        let out = arch.process_frame(&img, &kernel).unwrap();
        assert_eq!(out.image, direct);
    }

    #[test]
    fn raw_and_haar_lossless_outputs_are_bit_equal() {
        // The ISSUE's acceptance criterion, stated directly.
        let img = test_image(48, 32);
        let kernel = Tap::top_left(8);
        let raw = build_arch(&ArchConfig::new(8, 48).with_codec(LineCodecKind::Raw))
            .unwrap()
            .process_frame(&img, &kernel)
            .unwrap();
        let haar = build_arch(&ArchConfig::new(8, 48).with_codec(LineCodecKind::Haar))
            .unwrap()
            .process_frame(&img, &kernel)
            .unwrap();
        assert_eq!(raw.image.pixels(), haar.image.pixels());
    }

    #[test]
    fn raw_codec_reports_traditional_footprint() {
        let img = test_image(64, 24);
        let cfg = ArchConfig::new(8, 64).with_codec(LineCodecKind::Raw);
        let out = build_arch(&cfg)
            .unwrap()
            .process_frame(&img, &BoxFilter::new(8))
            .unwrap();
        assert_eq!(out.stats.raw_buffer_bits, (64 - 8) * 7 * 8);
        assert_eq!(out.stats.management_bits, 0);
        // Steady state fills the span exactly: peak equals the raw bits,
        // so the saving is 0 — raw buffering saves nothing, by definition.
        assert_eq!(out.stats.peak_total_occupancy, out.stats.raw_buffer_bits);
        assert_eq!(out.stats.memory_saving_pct(), 0.0);
    }

    #[test]
    fn lossy_thresholds_stay_bounded_per_codec() {
        let img = test_image(64, 40);
        let n = 8;
        for kind in [
            LineCodecKind::Haar,
            LineCodecKind::Haar2,
            LineCodecKind::Legall,
        ] {
            let cfg = ArchConfig::new(n, 64).with_codec(kind).with_threshold(4);
            let mut arch = build_arch(&cfg).unwrap();
            let out = arch.process_frame(&img, &Tap::top_left(n)).unwrap();
            let crop = img.crop(0, 0, out.image.width(), out.image.height());
            let e = mse(&out.image, &crop);
            assert!(e > 0.0, "{kind:?} T=4 must be lossy");
            assert!(e < 80.0, "{kind:?} T=4 MSE {e:.1} out of control");
        }
        // Inherently lossless codecs ignore the threshold.
        for kind in [LineCodecKind::Raw, LineCodecKind::Locoi] {
            let cfg = ArchConfig::new(n, 64).with_codec(kind).with_threshold(4);
            let mut arch = build_arch(&cfg).unwrap();
            let out = arch.process_frame(&img, &Tap::top_left(n)).unwrap();
            let crop = img.crop(0, 0, out.image.width(), out.image.height());
            assert_eq!(mse(&out.image, &crop), 0.0, "{kind:?} stays lossless");
        }
    }

    #[test]
    fn set_threshold_retunes_through_the_trait() {
        let img = test_image(64, 40);
        let cfg = ArchConfig::new(8, 64).with_codec(LineCodecKind::Haar);
        let mut arch = build_arch(&cfg).unwrap();
        let lossless = arch.process_frame(&img, &BoxFilter::new(8)).unwrap();
        arch.set_threshold(6);
        assert_eq!(arch.config().threshold, 6);
        let lossy = arch.process_frame(&img, &BoxFilter::new(8)).unwrap();
        assert!(
            lossy.stats.peak_payload_occupancy < lossless.stats.peak_payload_occupancy,
            "raising the threshold must shrink the payload"
        );
        arch.set_threshold(0);
        let back = arch.process_frame(&img, &BoxFilter::new(8)).unwrap();
        assert_eq!(back.stats, lossless.stats, "retune back to lossless");
    }

    #[test]
    fn telemetry_series_per_codec_family() {
        let img = test_image(32, 20);
        // Raw registers exactly the traditional series.
        let t = TelemetryHandle::new();
        let mut arch = build_arch(&ArchConfig::new(4, 32).with_codec(LineCodecKind::Raw)).unwrap();
        arch.bind_telemetry(&t, "s0");
        arch.process_frame(&img, &BoxFilter::new(4)).unwrap();
        let r = t.report();
        assert!(r.counters.contains_key("stage.s0.cycles"));
        assert!(!r.counters.contains_key("stage.s0.iwt_pairs"));
        assert!(!r.gauges.contains_key("stage.s0.threshold"));
        // No memory unit configured: no memunit series registered.
        assert!(!r.counters.keys().any(|k| k.starts_with("memunit.")));
        assert!(!r.gauges.keys().any(|k| k.starts_with("memunit.")));
        // Compressing codecs register the full set.
        for kind in [
            LineCodecKind::Haar2,
            LineCodecKind::Legall,
            LineCodecKind::Locoi,
        ] {
            let t = TelemetryHandle::new();
            let mut arch = build_arch(&ArchConfig::new(4, 32).with_codec(kind)).unwrap();
            arch.bind_telemetry(&t, "s0");
            arch.process_frame(&img, &BoxFilter::new(4)).unwrap();
            let r = t.report();
            assert!(r.counters["stage.s0.iwt_pairs"] > 0, "{kind:?}");
            // Groups packed in the frame's last W−N cycles stay in flight
            // when it ends, so unpacks trail packs by at most that tail.
            let packed = r.counters["stage.s0.iwt_pairs"];
            let unpacked = r.counters["stage.s0.unpack_pairs"];
            assert!(
                unpacked > 0 && unpacked <= packed,
                "{kind:?}: {unpacked} unpacked of {packed} packed"
            );
            assert!(
                r.gauges["fifo.s0.high_water_bits"] > 0,
                "{kind:?} high water"
            );
        }
    }

    #[test]
    fn locoi_compresses_flat_columns_but_not_textured_ones() {
        // Per-column LOCO-I restarts its contexts every N pixels, so it
        // only wins where run mode can engage (flat columns) — which is
        // exactly the paper's argument against generic predictive coding
        // in a line buffer. Pin both sides of that trade-off.
        let run = |img: &ImageU8| {
            build_arch(&ArchConfig::new(8, 96).with_codec(LineCodecKind::Locoi))
                .unwrap()
                .process_frame(img, &BoxFilter::new(8))
                .unwrap()
                .stats
                .peak_payload_occupancy
        };
        let raw_span = (96u64 - 8) * 8 * 8;
        assert!(
            run(&ImageU8::filled(96, 48, 128)) < raw_span,
            "LOCO-I must undercut the raw span on flat content"
        );
        assert!(
            run(&test_image(96, 48)) > raw_span / 2,
            "textured columns defeat per-column restarts"
        );
    }

    #[test]
    fn memory_unit_presence_keeps_default_output_identical() {
        // A generously sized memory unit never trips its policy, so the
        // frame output and statistics (minus the memunit-only fields)
        // must be identical to the unbounded datapath.
        let img = test_image(64, 40);
        let cfg = ArchConfig::new(8, 64).with_codec(LineCodecKind::Haar);
        let baseline = build_arch(&cfg)
            .unwrap()
            .process_frame(&img, &BoxFilter::new(8))
            .unwrap();
        let mut arch = build_arch(&cfg).unwrap();
        arch.set_memory_unit(Some(MemoryUnitConfig::new(1 << 24, OverflowPolicy::Fail)));
        let out = arch.process_frame(&img, &BoxFilter::new(8)).unwrap();
        assert_eq!(out.image, baseline.image);
        assert_eq!(out.stats, baseline.stats, "ample capacity changes nothing");
    }

    #[test]
    fn fail_policy_surfaces_a_typed_overflow() {
        let img = test_image(64, 40);
        let cfg = ArchConfig::new(8, 64).with_codec(LineCodecKind::Haar);
        let mut arch = build_arch(&cfg).unwrap();
        arch.set_memory_unit(Some(MemoryUnitConfig::new(64, OverflowPolicy::Fail)));
        let err = arch
            .process_frame(&img, &BoxFilter::new(8))
            .expect_err("64 bits cannot hold the frame");
        assert!(matches!(err, SwError::Fifo(_)), "got {err}");
    }

    #[test]
    fn stall_policy_charges_backpressure_and_keeps_output() {
        let img = test_image(64, 40);
        let cfg = ArchConfig::new(8, 64).with_codec(LineCodecKind::Haar);
        let baseline = build_arch(&cfg)
            .unwrap()
            .process_frame(&img, &BoxFilter::new(8))
            .unwrap();
        let mut arch = build_arch(&cfg).unwrap();
        arch.set_memory_unit(Some(MemoryUnitConfig::new(512, OverflowPolicy::Stall)));
        let out = arch.process_frame(&img, &BoxFilter::new(8)).unwrap();
        assert_eq!(out.image, baseline.image, "stall never corrupts data");
        assert!(out.stats.stall_cycles > 0, "tiny budget must stall");
        assert_eq!(out.stats.t_escalations, 0);
    }

    #[test]
    fn degrade_policy_escalates_threshold_and_bounds_occupancy() {
        let img = test_image(64, 40);
        let cfg = ArchConfig::new(8, 64).with_codec(LineCodecKind::Haar);
        let mut arch = build_arch(&cfg).unwrap();
        arch.set_memory_unit(Some(MemoryUnitConfig::new(
            2048,
            OverflowPolicy::DegradeLossy,
        )));
        let out = arch.process_frame(&img, &BoxFilter::new(8)).unwrap();
        assert!(out.stats.t_escalations > 0, "tight budget must escalate");
        // The escalation persists only within the frame: the configured
        // threshold is restored at the next frame boundary, so a rerun
        // reproduces the same statistics.
        assert!(
            arch.config().threshold > 0,
            "escalated T visible after frame"
        );
        let again = arch.process_frame(&img, &BoxFilter::new(8)).unwrap();
        assert_eq!(out.stats, again.stats, "degrade path is deterministic");
    }
}

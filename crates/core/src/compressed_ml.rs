//! Two-level streaming compressed sliding window — the extension the paper
//! declined ("adding more levels complicates the architecture for both the
//! forward and inverse wavelet transform blocks", Section IV-C).
//!
//! The offline ablation (experiment E15) shows a second decomposition level
//! removes a further ~14 points of memory on our dataset, because the LL
//! band dominates the payload. This module pays the complexity the paper
//! avoided and implements the second level *in-stream*:
//!
//! * level 1 works exactly as in [`crate::compressed`]: exiting window
//!   columns pair up into (LL₁,LH₁)/(HL₁,HH₁) columns;
//! * the LL₁ column stream (one per two image columns, height N/2) feeds a
//!   second [`ColumnPairTransformer`], so every **four** image columns
//!   complete a quad: level-1 details (LH₁ ×2, HL₁, HH₁ ×… per the column
//!   layout) plus the four level-2 sub-band columns of their LL₁ halves;
//! * the memory unit stores quads; the read side reverses both levels.
//!
//! The paper's complexity claim is visible in the code itself: the quad
//! pipeline needs 4-column batching, two transformer pairs, and a deeper
//! minimum image width (`W ≥ N + 4`) — versus one pair and `W ≥ N + 2` for
//! the single-level design. The tests quantify what that buys.

use crate::config::ArchConfig;
use crate::kernels::WindowKernel;
use crate::window::ActiveWindow;
use crate::{Coeff, Pixel};
use std::collections::VecDeque;
use sw_bitstream::{decode_column, encode_column, EncodedColumn};
use sw_fpga::sim::Watermark;
use sw_image::ImageU8;
use sw_wavelet::haar2d::{ColumnPairInverse, ColumnPairTransformer, SubbandColumn};
use sw_wavelet::SubBand;

/// Encoded contents of one 4-column quad.
#[derive(Debug, Clone)]
struct QuadEntry {
    /// Exit cycle of the quad's first column.
    first_exit: u64,
    /// Level-1 detail columns:
    /// `[LH1(c0), HL1(c1), HH1(c1), LH1(c2), HL1(c3), HH1(c3)]`.
    l1: [EncodedColumn; 6],
    /// Level-2 sub-band columns `[LL2, LH2, HL2, HH2]` of `(LL1(c0), LL1(c2))`.
    l2: [EncodedColumn; 4],
}

impl QuadEntry {
    fn payload_bits(&self) -> u64 {
        self.l1.iter().map(|e| e.payload_bits).sum::<u64>()
            + self.l2.iter().map(|e| e.payload_bits).sum::<u64>()
    }
}

/// Per-frame statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TwoLevelFrameStats {
    /// Clock cycles (`H × W`).
    pub cycles: u64,
    /// Total payload bits pushed during the frame.
    pub payload_bits_total: u64,
    /// Peak payload occupancy of the memory unit (bits).
    pub peak_payload_occupancy: u64,
    /// Management bits (two-level: `(10 + N)` per column, see module docs).
    pub management_bits: u64,
    /// Raw bits of the buffered span (`(W−N) × N × 8`).
    pub raw_buffer_bits: u64,
}

impl TwoLevelFrameStats {
    /// Paper Eq. 5 at peak occupancy, management included.
    pub fn memory_saving_pct(&self) -> f64 {
        let compressed = self.peak_payload_occupancy + self.management_bits;
        (1.0 - compressed as f64 / self.raw_buffer_bits as f64) * 100.0
    }
}

/// Output of one frame.
#[derive(Debug, Clone)]
pub struct TwoLevelOutput {
    /// Kernel output over the valid region.
    pub image: ImageU8,
    /// Frame statistics.
    pub stats: TwoLevelFrameStats,
}

/// The two-level streaming architecture.
#[derive(Debug)]
pub struct TwoLevelCompressedSlidingWindow {
    cfg: ArchConfig,
    window: ActiveWindow,
    l1: ColumnPairTransformer,
    l2: ColumnPairTransformer,
    inv1: ColumnPairInverse,
    inv2: ColumnPairInverse,
    /// Level-1 detail columns of the quad under construction.
    staging: Vec<EncodedColumn>,
    queue: VecDeque<QuadEntry>,
    /// Decoded raw columns awaiting delivery (up to three carried).
    carry: VecDeque<Vec<Pixel>>,
    payload_occupancy: u64,
    occupancy_watermark: Watermark,
    payload_total: u64,
    entering: Vec<Pixel>,
    evicted: Vec<Pixel>,
}

impl TwoLevelCompressedSlidingWindow {
    /// Build the two-level architecture.
    ///
    /// # Panics
    ///
    /// Panics unless the window is a multiple of 4 and `width ≥ window + 4`
    /// (the quad pipeline's minimum latency).
    pub fn new(cfg: ArchConfig) -> Self {
        assert!(
            cfg.window.is_multiple_of(4) && cfg.window >= 4,
            "two-level decomposition needs a window divisible by 4"
        );
        assert!(
            cfg.width >= cfg.window + 4,
            "two-level architecture needs width >= window + 4"
        );
        let n = cfg.window;
        Self {
            cfg,
            window: ActiveWindow::new(n),
            l1: ColumnPairTransformer::new(n),
            l2: ColumnPairTransformer::new(n / 2),
            inv1: ColumnPairInverse::new(n),
            inv2: ColumnPairInverse::new(n / 2),
            staging: Vec::with_capacity(6),
            queue: VecDeque::new(),
            carry: VecDeque::new(),
            payload_occupancy: 0,
            occupancy_watermark: Watermark::new(),
            payload_total: 0,
            entering: vec![0; n],
            evicted: vec![0; n],
        }
    }

    /// Two-level management bits: per image column the buffer carries one
    /// BitMap bit per coefficient (`N`) plus, per 4-column quad, six level-1
    /// and four level-2 NBits fields (40 bits ⇒ 10 per column).
    pub fn management_bits(&self) -> u64 {
        let cols = self.cfg.fifo_depth() as u64;
        cols * (10 + self.cfg.window as u64)
    }

    /// Process one frame.
    ///
    /// # Panics
    ///
    /// Panics on geometry or kernel mismatch.
    pub fn process_frame(&mut self, img: &ImageU8, kernel: &dyn WindowKernel) -> TwoLevelOutput {
        let n = self.cfg.window;
        assert_eq!(img.width(), self.cfg.width, "image width mismatch");
        assert!(img.height() >= n, "image shorter than the window");
        assert_eq!(kernel.window_size(), n, "kernel window size mismatch");
        self.reset();

        let w = img.width();
        let h = img.height();
        let delay = self.cfg.fifo_depth() as u64;
        let mut out = ImageU8::filled(w - n + 1, h - n + 1, 0);
        let mut coeff_col: Vec<Coeff> = vec![0; n];
        let mut cycle: u64 = 0;

        for r in 0..h {
            let row = img.row(r);
            for (c, &input) in row.iter().enumerate() {
                let delivered = if cycle >= delay {
                    self.deliver(cycle - delay)
                } else {
                    None
                };
                match delivered {
                    Some(col) => self.entering[..n - 1].copy_from_slice(&col[1..]),
                    None => self.entering[..n - 1].fill(0),
                }
                self.entering[n - 1] = input;

                self.window.shift_into(&self.entering, &mut self.evicted);

                for (dst, &src) in coeff_col.iter_mut().zip(&self.evicted) {
                    *dst = src as Coeff;
                }
                if let Some(pair) = self.l1.push_column(&coeff_col) {
                    self.absorb_level1(cycle, pair.even, pair.odd);
                }

                if r + 1 >= n && c + 1 >= n {
                    out.set(c + 1 - n, r + 1 - n, kernel.apply(&self.window.view()));
                }
                cycle += 1;
            }
        }

        let stats = TwoLevelFrameStats {
            cycles: cycle,
            payload_bits_total: self.payload_total,
            peak_payload_occupancy: self.occupancy_watermark.max(),
            management_bits: self.management_bits(),
            raw_buffer_bits: self.cfg.fifo_depth() as u64 * n as u64 * 8,
        };
        TwoLevelOutput { image: out, stats }
    }

    fn enc(&self, coeffs: &[Coeff], band: SubBand) -> EncodedColumn {
        let t = self.cfg.policy.threshold_for(band, self.cfg.threshold);
        encode_column(coeffs, t)
    }

    /// Absorb one level-1 column pair; completes a quad every second pair.
    fn absorb_level1(&mut self, cycle: u64, even: SubbandColumn, odd: SubbandColumn) {
        // Level-1 details are final; LL1 recurses into level 2.
        self.staging.push(self.enc(even.second_half(), SubBand::LH));
        self.staging.push(self.enc(odd.first_half(), SubBand::HL));
        self.staging.push(self.enc(odd.second_half(), SubBand::HH));
        let ll1: Vec<Coeff> = even.first_half().to_vec();
        if let Some(pair2) = self.l2.push_column(&ll1) {
            // Quad complete: columns exited at cycle-4 … cycle-1? The odd
            // column of this pair exited *this* cycle; the quad's first
            // column exited three cycles earlier.
            debug_assert_eq!(self.staging.len(), 6);
            let mut it = self.staging.drain(..);
            let l1 = [
                it.next().unwrap(),
                it.next().unwrap(),
                it.next().unwrap(),
                it.next().unwrap(),
                it.next().unwrap(),
                it.next().unwrap(),
            ];
            drop(it);
            let l2 = [
                self.enc(pair2.even.first_half(), SubBand::LL),
                self.enc(pair2.even.second_half(), SubBand::LH),
                self.enc(pair2.odd.first_half(), SubBand::HL),
                self.enc(pair2.odd.second_half(), SubBand::HH),
            ];
            let entry = QuadEntry {
                first_exit: cycle - 3,
                l1,
                l2,
            };
            let bits = entry.payload_bits();
            self.payload_occupancy += bits;
            self.payload_total += bits;
            self.occupancy_watermark.observe(self.payload_occupancy);
            self.queue.push_back(entry);
        }
    }

    /// Deliver the decoded raw column with exit tag `tag`.
    fn deliver(&mut self, tag: u64) -> Option<Vec<Pixel>> {
        if let Some(col) = self.carry.pop_front() {
            return Some(col);
        }
        let front = self.queue.front()?;
        if front.first_exit != tag {
            debug_assert!(front.first_exit > tag, "memory unit fell behind");
            return None;
        }
        let entry = self.queue.pop_front().expect("front exists");
        self.payload_occupancy -= entry.payload_bits();

        // Level-2 inverse: recover LL1(c0) and LL1(c2).
        let half = self.cfg.window / 2;
        let even2 = SubbandColumn {
            bands: (SubBand::LL, SubBand::LH),
            coeffs: decode_column(&entry.l2[0])
                .into_iter()
                .chain(decode_column(&entry.l2[1]))
                .collect(),
        };
        let odd2 = SubbandColumn {
            bands: (SubBand::HL, SubBand::HH),
            coeffs: decode_column(&entry.l2[2])
                .into_iter()
                .chain(decode_column(&entry.l2[3]))
                .collect(),
        };
        debug_assert!(!self.inv2.has_pending());
        let none = self.inv2.push_column(even2);
        debug_assert!(none.is_none());
        let (ll1_c0, ll1_c2) = self.inv2.push_column(odd2).expect("level-2 pair");

        // Level-1 inverse for (c0, c1) and (c2, c3).
        let mut raws = Vec::with_capacity(4);
        for (ll1, lh_idx, hl_idx, hh_idx) in [(ll1_c0, 0usize, 1, 2), (ll1_c2, 3, 4, 5)] {
            let even1 = SubbandColumn {
                bands: (SubBand::LL, SubBand::LH),
                coeffs: ll1
                    .into_iter()
                    .chain(decode_column(&entry.l1[lh_idx]))
                    .collect(),
            };
            let odd1 = SubbandColumn {
                bands: (SubBand::HL, SubBand::HH),
                coeffs: decode_column(&entry.l1[hl_idx])
                    .into_iter()
                    .chain(decode_column(&entry.l1[hh_idx]))
                    .collect(),
            };
            debug_assert_eq!(even1.coeffs.len(), 2 * half);
            debug_assert!(!self.inv1.has_pending());
            let none = self.inv1.push_column(even1);
            debug_assert!(none.is_none());
            let (a, b) = self.inv1.push_column(odd1).expect("level-1 pair");
            let clamp = |v: Coeff| v.clamp(0, 255) as Pixel;
            raws.push(a.into_iter().map(clamp).collect::<Vec<Pixel>>());
            raws.push(b.into_iter().map(clamp).collect::<Vec<Pixel>>());
        }
        let first = raws.remove(0);
        self.carry.extend(raws);
        Some(first)
    }

    /// Clear all state.
    pub fn reset(&mut self) {
        self.window.clear();
        self.l1.reset();
        self.l2.reset();
        self.inv1.reset();
        self.inv2.reset();
        self.staging.clear();
        self.queue.clear();
        self.carry.clear();
        self.payload_occupancy = 0;
        self.occupancy_watermark.reset();
        self.payload_total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compressed::CompressedSlidingWindow;
    use crate::kernels::{BoxFilter, Tap};
    use crate::reference::direct_sliding_window;
    use crate::traditional::TraditionalSlidingWindow;
    use sw_image::{mse, ScenePreset};

    fn test_image(w: usize, h: usize) -> ImageU8 {
        ImageU8::from_fn(w, h, |x, y| {
            let s = 100.0
                + 70.0 * ((x as f64 / w as f64) * 2.9).sin()
                + 50.0 * ((y as f64 / h as f64) * 2.1).cos()
                + ((x * 5 + y * 11) % 7) as f64;
            s.clamp(0.0, 255.0) as u8
        })
    }

    #[test]
    fn lossless_matches_traditional_exactly() {
        for n in [4usize, 8] {
            let img = test_image(40, 24);
            let cfg = ArchConfig::new(n, 40);
            let kernel = BoxFilter::new(n);
            let mut two = TwoLevelCompressedSlidingWindow::new(cfg);
            let mut trad = TraditionalSlidingWindow::new(cfg);
            assert_eq!(
                two.process_frame(&img, &kernel).image,
                trad.process_frame(&img, &kernel).image,
                "window {n}"
            );
        }
    }

    #[test]
    fn lossless_datapath_is_exact() {
        let img = test_image(37, 21); // odd geometry
        let cfg = ArchConfig::new(4, 37);
        let kernel = Tap::top_left(4);
        let mut two = TwoLevelCompressedSlidingWindow::new(cfg);
        assert_eq!(
            two.process_frame(&img, &kernel).image,
            direct_sliding_window(&img, &kernel)
        );
    }

    #[test]
    fn second_level_reduces_occupancy_on_scenes() {
        // The E15 claim, now measured in-architecture: level 2 compresses
        // the dominant LL band.
        let img = ScenePreset::ALL[1].render(256, 64);
        let cfg = ArchConfig::new(8, 256);
        let mut one = CompressedSlidingWindow::new(cfg);
        let mut two = TwoLevelCompressedSlidingWindow::new(cfg);
        let kernel = BoxFilter::new(8);
        let p1 = one
            .process_frame(&img, &kernel)
            .stats
            .peak_payload_occupancy;
        let p2 = two
            .process_frame(&img, &kernel)
            .stats
            .peak_payload_occupancy;
        assert!(
            (p2 as f64) < (p1 as f64) * 0.9,
            "two-level {p2} should beat single-level {p1} by >10%"
        );
    }

    #[test]
    fn lossy_mode_degrades_gracefully() {
        let img = test_image(64, 32);
        let n = 8;
        for t in [2i16, 6] {
            let cfg = ArchConfig::new(n, 64).with_threshold(t);
            let mut two = TwoLevelCompressedSlidingWindow::new(cfg);
            let out = two.process_frame(&img, &Tap::top_left(n));
            let crop = img.crop(0, 0, out.image.width(), out.image.height());
            let e = mse(&out.image, &crop);
            assert!(e > 0.0, "T={t} must be lossy");
            assert!(e < 60.0, "T={t}: MSE {e:.1} out of control");
        }
        // And T=0 stays exact.
        let cfg = ArchConfig::new(n, 64);
        let mut two = TwoLevelCompressedSlidingWindow::new(cfg);
        let out = two.process_frame(&img, &Tap::top_left(n));
        let crop = img.crop(0, 0, out.image.width(), out.image.height());
        assert_eq!(mse(&out.image, &crop), 0.0);
    }

    #[test]
    fn management_overhead_is_higher_than_single_level() {
        let cfg = ArchConfig::new(8, 64);
        let two = TwoLevelCompressedSlidingWindow::new(cfg);
        assert!(two.management_bits() > cfg.management_bits());
    }

    #[test]
    fn reusable_across_frames() {
        let cfg = ArchConfig::new(4, 24);
        let kernel = BoxFilter::new(4);
        let mut two = TwoLevelCompressedSlidingWindow::new(cfg);
        let a = test_image(24, 12);
        let b = ImageU8::from_fn(24, 12, |x, y| ((x * y + 3) % 256) as u8);
        two.process_frame(&a, &kernel);
        assert_eq!(
            two.process_frame(&b, &kernel).image,
            direct_sliding_window(&b, &kernel)
        );
    }

    #[test]
    #[should_panic(expected = "divisible by 4")]
    fn window_must_be_multiple_of_four() {
        TwoLevelCompressedSlidingWindow::new(ArchConfig::new(6, 64));
    }
}

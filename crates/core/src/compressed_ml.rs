//! Two-level streaming compressed sliding window — the extension the paper
//! declined ("adding more levels complicates the architecture for both the
//! forward and inverse wavelet transform blocks", Section IV-C).
//!
//! The offline ablation (experiment E15) shows a second decomposition level
//! removes a further ~14 points of memory on our dataset, because the LL
//! band dominates the payload. This architecture pays the complexity the
//! paper avoided and implements the second level *in-stream*:
//!
//! * level 1 works exactly as in [`crate::compressed`]: exiting window
//!   columns pair up into (LL₁,LH₁)/(HL₁,HH₁) columns;
//! * the LL₁ column stream (one per two image columns, height N/2) feeds a
//!   second transformer, so every **four** image columns complete a quad:
//!   six level-1 detail columns plus the four level-2 sub-band columns of
//!   their LL₁ halves;
//! * the memory unit stores quads; the read side reverses both levels.
//!
//! The paper's complexity claim is visible in the code itself: the quad
//! pipeline needs 4-column batching, two transformer pairs, and a deeper
//! minimum image width (`W ≥ N + 4`) — versus one pair and `W ≥ N + 2` for
//! the single-level design. The tests quantify what that buys.
//!
//! Since the codec-layer refactor this is [`SlidingWindow`] instantiated
//! with [`HaarTwoLevelCodec`] (group width four). One deliberate behaviour
//! change rode along: a quad's payload now retires from the occupancy count
//! when its *last* column is consumed (previously the first), matching the
//! retirement rule every codec shares; peak occupancy moves by under 2% and
//! the margin-based tests below still pin the E15 claim.

use crate::arch::SlidingWindow;
use crate::codec::HaarTwoLevelCodec;

/// The two-level streaming architecture: the unified datapath with the
/// two-level Haar codec.
pub type TwoLevelCompressedSlidingWindow = SlidingWindow<HaarTwoLevelCodec>;

/// Per-frame statistics. The unified [`crate::FrameStats`].
#[deprecated(
    since = "0.1.0",
    note = "pre-unification alias; use sw_core::FrameStats"
)]
pub type TwoLevelFrameStats = crate::arch::FrameStats;

/// Output of one frame.
#[deprecated(
    since = "0.1.0",
    note = "pre-unification alias; use sw_core::FrameOutput"
)]
pub type TwoLevelOutput = crate::arch::FrameOutput;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compressed::CompressedSlidingWindow;
    use crate::config::ArchConfig;
    use crate::kernels::{BoxFilter, Tap};
    use crate::reference::direct_sliding_window;
    use crate::traditional::TraditionalSlidingWindow;
    use sw_image::{mse, ImageU8, ScenePreset};

    fn test_image(w: usize, h: usize) -> ImageU8 {
        ImageU8::from_fn(w, h, |x, y| {
            let s = 100.0
                + 70.0 * ((x as f64 / w as f64) * 2.9).sin()
                + 50.0 * ((y as f64 / h as f64) * 2.1).cos()
                + ((x * 5 + y * 11) % 7) as f64;
            s.clamp(0.0, 255.0) as u8
        })
    }

    #[test]
    fn lossless_matches_traditional_exactly() {
        for n in [4usize, 8] {
            let img = test_image(40, 24);
            let cfg = ArchConfig::new(n, 40);
            let kernel = BoxFilter::new(n);
            let mut two = TwoLevelCompressedSlidingWindow::new(cfg);
            let mut trad = TraditionalSlidingWindow::new(cfg);
            assert_eq!(
                two.process_frame(&img, &kernel).unwrap().image,
                trad.process_frame(&img, &kernel).unwrap().image,
                "window {n}"
            );
        }
    }

    #[test]
    fn lossless_datapath_is_exact() {
        let img = test_image(37, 21); // odd geometry
        let cfg = ArchConfig::new(4, 37);
        let kernel = Tap::top_left(4);
        let mut two = TwoLevelCompressedSlidingWindow::new(cfg);
        assert_eq!(
            two.process_frame(&img, &kernel).unwrap().image,
            direct_sliding_window(&img, &kernel)
        );
    }

    #[test]
    fn second_level_reduces_occupancy_on_scenes() {
        // The E15 claim, now measured in-architecture: level 2 compresses
        // the dominant LL band.
        let img = ScenePreset::ALL[1].render(256, 64);
        let cfg = ArchConfig::new(8, 256);
        let mut one = CompressedSlidingWindow::new(cfg);
        let mut two = TwoLevelCompressedSlidingWindow::new(cfg);
        let kernel = BoxFilter::new(8);
        let p1 = one
            .process_frame(&img, &kernel)
            .unwrap()
            .stats
            .peak_payload_occupancy;
        let p2 = two
            .process_frame(&img, &kernel)
            .unwrap()
            .stats
            .peak_payload_occupancy;
        assert!(
            (p2 as f64) < (p1 as f64) * 0.9,
            "two-level {p2} should beat single-level {p1} by >10%"
        );
    }

    #[test]
    fn lossy_mode_degrades_gracefully() {
        let img = test_image(64, 32);
        let n = 8;
        for t in [2i16, 6] {
            let cfg = ArchConfig::new(n, 64).with_threshold(t);
            let mut two = TwoLevelCompressedSlidingWindow::new(cfg);
            let out = two.process_frame(&img, &Tap::top_left(n)).unwrap();
            let crop = img.crop(0, 0, out.image.width(), out.image.height());
            let e = mse(&out.image, &crop);
            assert!(e > 0.0, "T={t} must be lossy");
            assert!(e < 60.0, "T={t}: MSE {e:.1} out of control");
        }
        // And T=0 stays exact.
        let cfg = ArchConfig::new(n, 64);
        let mut two = TwoLevelCompressedSlidingWindow::new(cfg);
        let out = two.process_frame(&img, &Tap::top_left(n)).unwrap();
        let crop = img.crop(0, 0, out.image.width(), out.image.height());
        assert_eq!(mse(&out.image, &crop), 0.0);
    }

    #[test]
    fn management_overhead_is_higher_than_single_level() {
        let cfg = ArchConfig::new(8, 64);
        let two = TwoLevelCompressedSlidingWindow::new(cfg);
        assert!(two.management_bits() > cfg.management_bits());
    }

    #[test]
    fn reusable_across_frames() {
        let cfg = ArchConfig::new(4, 24);
        let kernel = BoxFilter::new(4);
        let mut two = TwoLevelCompressedSlidingWindow::new(cfg);
        let a = test_image(24, 12);
        let b = ImageU8::from_fn(24, 12, |x, y| ((x * y + 3) % 256) as u8);
        two.process_frame(&a, &kernel).unwrap();
        assert_eq!(
            two.process_frame(&b, &kernel).unwrap().image,
            direct_sliding_window(&b, &kernel)
        );
    }

    #[test]
    #[should_panic(expected = "divisible by 4")]
    fn window_must_be_multiple_of_four() {
        TwoLevelCompressedSlidingWindow::new(ArchConfig::new(6, 64));
    }
}

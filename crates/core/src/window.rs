//! The N×N active window of shift registers.
//!
//! Both architectures expose every pixel of the window to the processing
//! kernel each clock (paper Section V: "The active window is implemented
//! using shift registers so that a processing kernel can directly access all
//! pixels of the active window each clock cycle").
//!
//! Orientation: the view is in natural image coordinates — row 0 is the top
//! (oldest buffered image row), column 0 the left (oldest image column).
//! Internally columns rotate through a ring buffer so a clock is O(N), not
//! O(N²).

use crate::Pixel;

/// N×N pixel window with shift-register semantics.
#[derive(Debug, Clone)]
pub struct ActiveWindow {
    n: usize,
    /// Column-major storage: `cols[slot]` is one column, top to bottom.
    cols: Vec<Vec<Pixel>>,
    /// Ring index of the oldest (leftmost) column.
    head: usize,
}

impl ActiveWindow {
    /// A zero-filled N×N window.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "window too small");
        Self {
            n,
            cols: vec![vec![0; n]; n],
            head: 0,
        }
    }

    /// Window size N.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Shift one clock: the oldest (leftmost) column is returned and
    /// `incoming` becomes the newest (rightmost) column.
    ///
    /// `incoming` is top-to-bottom; its bottom element is the current input
    /// pixel, the rest come from the buffering path.
    ///
    /// # Panics
    ///
    /// Panics if `incoming.len() != n`.
    pub fn shift(&mut self, incoming: &[Pixel]) -> Vec<Pixel> {
        assert_eq!(incoming.len(), self.n, "column height mismatch");
        let evicted = std::mem::replace(&mut self.cols[self.head], incoming.to_vec());
        self.head = (self.head + 1) % self.n;
        evicted
    }

    /// Like [`shift`](Self::shift) but reuses the evicted buffer: copies the
    /// evicted column into `evicted_out` and `incoming` into the freed slot.
    pub fn shift_into(&mut self, incoming: &[Pixel], evicted_out: &mut Vec<Pixel>) {
        assert_eq!(incoming.len(), self.n, "column height mismatch");
        evicted_out.clear();
        evicted_out.extend_from_slice(&self.cols[self.head]);
        self.cols[self.head].copy_from_slice(incoming);
        self.head = (self.head + 1) % self.n;
    }

    /// The column that will be evicted by the next shift (the leftmost /
    /// oldest), top to bottom.
    pub fn oldest_column(&self) -> &[Pixel] {
        &self.cols[self.head]
    }

    /// Natural-orientation view for kernels.
    pub fn view(&self) -> WindowView<'_> {
        WindowView { win: self }
    }

    /// Reset all registers to zero.
    pub fn clear(&mut self) {
        for col in &mut self.cols {
            col.fill(0);
        }
        self.head = 0;
    }

    /// Pixel at natural coordinates (row from top, col from left).
    #[inline]
    fn get(&self, row: usize, col: usize) -> Pixel {
        debug_assert!(row < self.n && col < self.n);
        let slot = (self.head + col) % self.n;
        self.cols[slot][row]
    }
}

/// Read-only natural-orientation view of an [`ActiveWindow`].
#[derive(Debug, Clone, Copy)]
pub struct WindowView<'a> {
    win: &'a ActiveWindow,
}

impl<'a> WindowView<'a> {
    /// Window size N.
    #[inline]
    pub fn n(&self) -> usize {
        self.win.n
    }

    /// Pixel at `(row, col)` — row 0 = top (oldest image row), col 0 = left
    /// (oldest image column).
    ///
    /// # Panics
    ///
    /// Panics (debug) on out-of-range coordinates.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> Pixel {
        assert!(
            row < self.win.n && col < self.win.n,
            "window coordinates out of range"
        );
        self.win.get(row, col)
    }

    /// Iterate all pixels row-major.
    pub fn iter(&self) -> impl Iterator<Item = Pixel> + '_ {
        let n = self.win.n;
        (0..n).flat_map(move |r| (0..n).map(move |c| self.win.get(r, c)))
    }

    /// Copy the window into a row-major vector (for kernels that need random
    /// access patterns like the median).
    pub fn to_vec(&self) -> Vec<Pixel> {
        self.iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shifting_preserves_natural_orientation() {
        let mut w = ActiveWindow::new(3);
        // Push columns [1,2,3], [4,5,6], [7,8,9]: the last push is rightmost.
        w.shift(&[1, 2, 3]);
        w.shift(&[4, 5, 6]);
        w.shift(&[7, 8, 9]);
        let v = w.view();
        // Row 0 (top) = firsts of each column, left to right.
        assert_eq!([v.get(0, 0), v.get(0, 1), v.get(0, 2)], [1, 4, 7]);
        assert_eq!([v.get(2, 0), v.get(2, 1), v.get(2, 2)], [3, 6, 9]);
    }

    #[test]
    fn shift_evicts_oldest() {
        let mut w = ActiveWindow::new(2);
        w.shift(&[1, 2]);
        w.shift(&[3, 4]);
        let evicted = w.shift(&[5, 6]);
        assert_eq!(evicted, vec![1, 2]);
        assert_eq!(w.oldest_column(), &[3, 4]);
    }

    #[test]
    fn shift_into_matches_shift() {
        let mut a = ActiveWindow::new(4);
        let mut b = ActiveWindow::new(4);
        let mut evicted = Vec::new();
        for i in 0..10u8 {
            let col: Vec<u8> = (0..4).map(|r| i * 4 + r).collect();
            let ev_a = a.shift(&col);
            b.shift_into(&col, &mut evicted);
            assert_eq!(ev_a, evicted);
        }
        assert_eq!(a.view().to_vec(), b.view().to_vec());
    }

    #[test]
    fn view_iter_is_row_major() {
        let mut w = ActiveWindow::new(2);
        w.shift(&[1, 2]);
        w.shift(&[3, 4]);
        assert_eq!(w.view().to_vec(), vec![1, 3, 2, 4]);
    }

    #[test]
    fn clear_zeroes_and_resets() {
        let mut w = ActiveWindow::new(2);
        w.shift(&[1, 2]);
        w.clear();
        assert_eq!(w.view().to_vec(), vec![0, 0, 0, 0]);
    }
}

//! Multi-stage sliding-window pipelines.
//!
//! The paper's introduction motivates the BRAM problem with pipelines:
//! "most image processing algorithms consists of 2-5 sequential sliding
//! window operations, where the output of one operation is fed via line
//! buffers to the following operation. These implementations require a high
//! number of BRAMs for implementing multiple sets of buffer lines." This
//! module chains stages, runs frames through them, and totals the BRAM cost
//! under traditional vs compressed buffering.

use crate::analysis::analyze_frame;
use crate::arch::build_arch;
use crate::codec::LineCodecKind;
use crate::config::ArchConfig;
use crate::error::{Result, SwError};
use crate::faults::FaultInjector;
use crate::kernels::WindowKernel;
use crate::memory_unit::MemoryUnitConfig;
use crate::planner::{plan, traditional_brams, BramPlan, MgmtAccounting};
use sw_bitstream::HotPath;
use sw_image::ImageU8;
use sw_telemetry::TelemetryHandle;

/// One pipeline stage: a kernel plus how its line buffers are realized —
/// a [`LineCodecKind`] and a threshold, the same pair [`ArchConfig`]
/// carries.
pub struct Stage {
    /// The window kernel.
    pub kernel: Box<dyn WindowKernel>,
    /// The line codec buffering this stage's recirculated rows.
    pub codec: LineCodecKind,
    /// Threshold `T` for this stage (0 = lossless; ignored by codecs that
    /// are inherently lossless).
    pub threshold: i16,
}

impl Stage {
    /// Traditional-buffered stage (raw line buffers, Section III).
    pub fn traditional(kernel: Box<dyn WindowKernel>) -> Self {
        Self::with_codec(kernel, LineCodecKind::Raw, 0)
    }

    /// Compressed-buffered stage (the paper's Haar codec, Section V).
    pub fn compressed(kernel: Box<dyn WindowKernel>, threshold: i16) -> Self {
        Self::with_codec(kernel, LineCodecKind::Haar, threshold)
    }

    /// Stage buffered through an arbitrary line codec.
    pub fn with_codec(kernel: Box<dyn WindowKernel>, codec: LineCodecKind, threshold: i16) -> Self {
        Self {
            kernel,
            codec,
            threshold,
        }
    }
}

/// Result of running a frame through the pipeline.
#[derive(Debug, Clone)]
pub struct PipelineOutput {
    /// The final stage's output image.
    pub image: ImageU8,
    /// Per-stage BRAM plans (compressed stages sized from this frame's
    /// measured occupancy; traditional stages from Table I).
    pub stage_brams: Vec<u32>,
    /// Total clock cycles across stages (stages pipeline in hardware; the
    /// sum is the sequential-simulation cost).
    pub cycles: u64,
}

impl PipelineOutput {
    /// Total BRAMs across all stages.
    pub fn total_brams(&self) -> u32 {
        self.stage_brams.iter().sum()
    }
}

/// A chain of sliding-window stages.
pub struct Pipeline {
    stages: Vec<Stage>,
    telemetry: TelemetryHandle,
    memory_unit: Option<MemoryUnitConfig>,
    faults: Option<FaultInjector>,
    hot_path: HotPath,
}

impl Pipeline {
    /// Build a pipeline from stages.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty.
    pub fn new(stages: Vec<Stage>) -> Self {
        assert!(!stages.is_empty(), "pipeline needs at least one stage");
        Self {
            stages,
            telemetry: TelemetryHandle::disabled(),
            memory_unit: None,
            faults: None,
            hot_path: HotPath::from_env(),
        }
    }

    /// Run every stage's codec on the given hot path (defaults to the
    /// `SWC_HOT_PATH` environment variable, sliced when unset).
    pub fn with_hot_path(mut self, hot_path: HotPath) -> Self {
        self.hot_path = hot_path;
        self
    }

    /// Enforce a memory-unit capacity on every stage (the same budget per
    /// stage; sharded runs split it per strip).
    pub fn with_memory_unit(mut self, cfg: MemoryUnitConfig) -> Self {
        self.memory_unit = Some(cfg);
        self
    }

    /// Inject deterministic faults into every stage.
    pub fn with_fault_injector(mut self, faults: FaultInjector) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Record per-stage telemetry into `telemetry`: stage `i` reports under
    /// `stage.stage<i>.*` / `fifo.stage<i>.*`, and each stage's wall-clock
    /// time under `pipeline.stage<i>.{ns_total,calls}`. The hierarchical
    /// profiler additionally sees `pipeline` → `pipeline/stage<i>` →
    /// `pipeline/stage<i>/frame` → `…/frame/{encode,decode}` span paths
    /// (rendered by `TelemetryHandle::flame_table`).
    pub fn with_telemetry(mut self, telemetry: &TelemetryHandle) -> Self {
        self.telemetry = telemetry.clone();
        self
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the pipeline is empty (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Run one frame through every stage, shrinking the valid region at
    /// each step, and report per-stage BRAM costs.
    ///
    /// # Errors
    ///
    /// [`SwError::Config`] if an intermediate image becomes smaller than
    /// the next stage's window; any memory-unit or fault-injection error
    /// a stage's datapath surfaces.
    pub fn run(&mut self, input: &ImageU8) -> Result<PipelineOutput> {
        let mut img = input.clone();
        let mut stage_brams = Vec::with_capacity(self.stages.len());
        let mut cycles = 0u64;
        let _pipeline_span = self.telemetry.profile_span("pipeline");
        for (i, stage) in self.stages.iter_mut().enumerate() {
            let n = stage.kernel.window_size();
            if img.width() <= n || img.height() < n {
                return Err(SwError::config(format!(
                    "stage {i}: intermediate image {}x{} too small for a {n}-pixel window",
                    img.width(),
                    img.height()
                )));
            }
            let stage_name = format!("stage{i}");
            let _span = self.telemetry.span(&format!("pipeline.{stage_name}"));
            let _stage_span = self.telemetry.profile_span(&stage_name);
            let cfg = ArchConfig::new(n, img.width())
                .with_codec(stage.codec)
                .with_threshold(stage.threshold)
                .with_hot_path(self.hot_path);
            let mut arch = build_arch(&cfg)?;
            arch.bind_telemetry(&self.telemetry, &stage_name);
            if self.memory_unit.is_some() {
                arch.set_memory_unit(self.memory_unit);
            }
            if self.faults.is_some() {
                arch.set_fault_injector(self.faults.clone());
            }
            let out = arch.process_frame(&img, stage.kernel.as_ref())?;
            if stage.codec == LineCodecKind::Raw {
                stage_brams.push(traditional_brams(n, img.width()));
            } else {
                let p: BramPlan = plan(
                    n,
                    img.width(),
                    out.stats.peak_payload_occupancy,
                    MgmtAccounting::Structured,
                );
                stage_brams.push(p.total_brams());
            }
            cycles += out.stats.cycles;
            img = out.image;
        }
        Ok(PipelineOutput {
            image: img,
            stage_brams,
            cycles,
        })
    }

    /// [`Pipeline::run`] with every stage executed strip-parallel on
    /// `pool` via the halo-sharded runner ([`crate::shard`]).
    ///
    /// The strip count is fixed by `strips` (not by the pool size), so the
    /// output is byte-identical for any `--jobs` value. Compressed stages
    /// size their BRAM plan from the maximum per-strip peak occupancy —
    /// the capacity one strip datapath must provision.
    ///
    /// # Errors
    ///
    /// [`SwError::Config`] if an intermediate image becomes smaller than
    /// the next stage's window; the first error any strip surfaces (in
    /// strip order).
    pub fn run_sharded(
        &self,
        input: &ImageU8,
        pool: &sw_pool::ThreadPool,
        strips: usize,
    ) -> Result<PipelineOutput> {
        let mut img = input.clone();
        let mut stage_brams = Vec::with_capacity(self.stages.len());
        let mut cycles = 0u64;
        let _pipeline_span = self.telemetry.profile_span("pipeline");
        for (i, stage) in self.stages.iter().enumerate() {
            let n = stage.kernel.window_size();
            if img.width() <= n || img.height() < n {
                return Err(SwError::config(format!(
                    "stage {i}: intermediate image {}x{} too small for a {n}-pixel window",
                    img.width(),
                    img.height()
                )));
            }
            let stage_name = format!("stage{i}");
            let _span = self.telemetry.span(&format!("pipeline.{stage_name}"));
            let _stage_span = self.telemetry.profile_span(&stage_name);
            let cfg = ArchConfig::new(n, img.width())
                .with_codec(stage.codec)
                .with_threshold(stage.threshold)
                .with_hot_path(self.hot_path);
            let mut runner = crate::shard::ShardedFrameRunner::new(cfg)
                .with_strips(strips)
                .with_named_telemetry(&self.telemetry, &stage_name);
            if let Some(mu) = self.memory_unit {
                runner = runner.with_memory_unit(mu);
            }
            if let Some(faults) = self.faults.clone() {
                runner = runner.with_fault_injector(faults);
            }
            let out = runner.run(&img, stage.kernel.as_ref(), pool)?;
            stage_brams.push(out.brams);
            cycles += out.cycles;
            img = out.image;
        }
        Ok(PipelineOutput {
            image: img,
            stage_brams,
            cycles,
        })
    }

    /// Static BRAM plan for the whole pipeline at a given input width,
    /// sizing compressed stages from a representative frame.
    pub fn plan_brams(&self, frame: &ImageU8) -> Vec<BramPlan> {
        let mut width = frame.width();
        let mut img = frame.clone();
        let mut plans = Vec::new();
        for stage in &self.stages {
            let n = stage.kernel.window_size();
            let t = if stage.codec == LineCodecKind::Raw {
                0
            } else {
                stage.threshold
            };
            let cfg = ArchConfig::new(n, width).with_threshold(t);
            let a = analyze_frame(&img, &cfg);
            plans.push(plan(
                n,
                width,
                a.worst_payload_occupancy,
                MgmtAccounting::Structured,
            ));
            // Approximate the next stage's input geometry.
            if width > n && img.height() > n {
                img = img.crop(0, 0, width - n + 1, img.height() - n + 1);
                width -= n - 1;
            }
        }
        plans
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{BoxFilter, GaussianFilter, SobelMagnitude};

    fn scene(w: usize, h: usize) -> ImageU8 {
        ImageU8::from_fn(w, h, |x, y| {
            (100.0 + 70.0 * ((x + 2 * y) as f64 * 0.05).sin()) as u8
        })
    }

    #[test]
    fn two_stage_pipeline_shrinks_valid_region() {
        let mut p = Pipeline::new(vec![
            Stage::compressed(Box::new(GaussianFilter::new(8)), 0),
            Stage::compressed(Box::new(SobelMagnitude::new(4)), 0),
        ]);
        let img = scene(64, 48);
        let out = p.run(&img).unwrap();
        // 64 -> 57 -> 54 wide.
        assert_eq!(out.image.width(), 54);
        assert_eq!(out.image.height(), 38);
        assert_eq!(out.stage_brams.len(), 2);
        assert_eq!(out.cycles, 64 * 48 + 57 * 41);
    }

    #[test]
    fn compressed_stages_use_fewer_brams_than_traditional() {
        let img = scene(512, 64);
        let mut trad = Pipeline::new(vec![
            Stage::traditional(Box::new(GaussianFilter::new(16))),
            Stage::traditional(Box::new(BoxFilter::new(8))),
        ]);
        let mut comp = Pipeline::new(vec![
            Stage::compressed(Box::new(GaussianFilter::new(16)), 0),
            Stage::compressed(Box::new(BoxFilter::new(8)), 0),
        ]);
        let t = trad.run(&img).unwrap().total_brams();
        let c = comp.run(&img).unwrap().total_brams();
        assert!(c < t, "compressed pipeline {c} vs traditional {t}");
    }

    #[test]
    fn lossless_compressed_pipeline_matches_traditional_output() {
        let img = scene(96, 48);
        let mut a = Pipeline::new(vec![
            Stage::traditional(Box::new(GaussianFilter::new(8))),
            Stage::traditional(Box::new(SobelMagnitude::new(4))),
        ]);
        let mut b = Pipeline::new(vec![
            Stage::compressed(Box::new(GaussianFilter::new(8)), 0),
            Stage::compressed(Box::new(SobelMagnitude::new(4)), 0),
        ]);
        assert_eq!(a.run(&img).unwrap().image, b.run(&img).unwrap().image);
    }

    #[test]
    fn plan_brams_covers_every_stage() {
        let p = Pipeline::new(vec![
            Stage::compressed(Box::new(GaussianFilter::new(8)), 2),
            Stage::compressed(Box::new(BoxFilter::new(8)), 2),
        ]);
        let plans = p.plan_brams(&scene(256, 64));
        assert_eq!(plans.len(), 2);
        assert!(plans.iter().all(|p| p.fits));
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_pipeline_rejected() {
        Pipeline::new(vec![]);
    }

    #[test]
    fn telemetry_covers_every_stage() {
        let t = sw_telemetry::TelemetryHandle::new();
        let mut p = Pipeline::new(vec![
            Stage::traditional(Box::new(GaussianFilter::new(8))),
            Stage::compressed(Box::new(SobelMagnitude::new(4)), 2),
        ])
        .with_telemetry(&t);
        let out = p.run(&scene(64, 48)).unwrap();
        let r = t.report();
        // Per-stage cycle counters sum to the pipeline total.
        assert_eq!(
            r.counters["stage.stage0.cycles"] + r.counters["stage.stage1.cycles"],
            out.cycles
        );
        // The compressed stage reports codec traffic; the traditional one
        // reports line-buffer occupancy.
        assert!(r.counters["stage.stage1.packer.columns"] > 0);
        assert!(r.gauges["fifo.stage0.high_water_bits"] > 0);
        // Wall-clock spans fired once per stage.
        assert_eq!(r.counters["pipeline.stage0.calls"], 1);
        assert_eq!(r.counters["pipeline.stage1.calls"], 1);
    }

    #[test]
    fn hierarchical_profile_decomposes_stages_into_datapath_spans() {
        let t = sw_telemetry::TelemetryHandle::new();
        let mut p = Pipeline::new(vec![
            Stage::compressed(Box::new(GaussianFilter::new(8)), 0),
            Stage::compressed(Box::new(SobelMagnitude::new(4)), 0),
        ])
        .with_telemetry(&t);
        p.run(&scene(64, 48)).unwrap();
        let snap = t.profile_snapshot();
        for path in [
            "pipeline",
            "pipeline/stage0",
            "pipeline/stage0/frame",
            "pipeline/stage0/frame/encode",
            "pipeline/stage0/frame/decode",
            "pipeline/stage1/frame/encode",
        ] {
            assert!(snap.paths.contains_key(path), "missing span path {path}");
        }
        assert_eq!(snap.paths["pipeline"].calls, 1);
        assert_eq!(snap.paths["pipeline/stage0/frame"].calls, 1);
        assert_eq!(snap.abandoned, 0);
        // Stage spans cover their frames: child time <= total time, and the
        // pipeline's children account for both stages.
        let pipeline = &snap.paths["pipeline"];
        let s0 = &snap.paths["pipeline/stage0"];
        let s1 = &snap.paths["pipeline/stage1"];
        assert!(pipeline.child_ns >= s0.total_ns + s1.total_ns - 1);
        assert!(s0.child_ns <= s0.total_ns);
    }
}

//! Pluggable line-buffer codecs — the compression axis of the architecture.
//!
//! The paper's core idea is to swap raw line buffers for compressed ones;
//! *which* codec sits between the window and the memory unit is the design
//! axis the paper itself explores (it rejects LeGall 5/3 and predictive
//! schemes like JPEG-LS in favour of single-level Haar, Section IV-C).
//! This module makes that axis first-class: a [`LineCodec`] turns the
//! columns evicted from the active window into an encoded *group* riding
//! the memory unit, and back. The generic datapath in [`crate::arch`] is
//! identical for every codec; only the group width and the bit accounting
//! differ.
//!
//! | codec | group | sub-band layout | management bits / column |
//! |---|---|---|---|
//! | [`RawCodec`] | 1 | none (raw rows 1..N) | 0 |
//! | [`HaarIwtCodec`] | 2 | LL, LH, HL, HH | 8 + N |
//! | [`HaarTwoLevelCodec`] | 4 | LL2..HH2 + 6 level-1 details | 10 + N |
//! | [`LeGall53Codec`] | 1 | low, high | 8 + N |
//! | [`LocoIPredictiveCodec`] | 1 | none (predictive bytes) | 16 |
//!
//! A codec is free to be lossy under a threshold ([`HaarIwtCodec`],
//! [`HaarTwoLevelCodec`], [`LeGall53Codec`]) or inherently lossless
//! ([`RawCodec`], [`LocoIPredictiveCodec`], which ignore the threshold).

use crate::config::ArchConfig;
use crate::faults::FaultSite;
use crate::{Coeff, Pixel};
use sw_bitstream::locoi::{locoi_encode, locoi_try_decode};
use sw_bitstream::{
    decode_column_checked, decode_column_sliced_into, encode_column, encode_column_sliced_into,
    CodecTelemetry, EncodedColumn, HotPath, Sample, NBITS_FIELD_BITS,
};
use sw_image::ImageU8;
use sw_telemetry::TelemetryHandle;
use sw_wavelet::haar2d::{ColumnPairInverse, ColumnPairTransformer, SubbandColumn};
use sw_wavelet::legall::{legall53_forward, legall53_inverse};
use sw_wavelet::swar::{legall53_fwd_sliced, legall53_inv_sliced};
use sw_wavelet::SubBand;

/// The codecs a sliding window architecture can buffer its lines through.
///
/// This is the value-level selector ([`ArchConfig::codec`] and the CLI
/// `--codec` flag); the type-level side is the [`LineCodec`] impls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LineCodecKind {
    /// No compression: the traditional raw line buffers (Section III).
    Raw,
    /// Single-level Haar IWT + threshold + bit packing — the paper's codec.
    #[default]
    Haar,
    /// Two-level Haar: the LL band recurses once more (the extension the
    /// paper declined, Section IV-C).
    Haar2,
    /// LeGall 5/3 reversible integer wavelet (the JPEG 2000 lossless
    /// filter the paper rejects on hardware grounds).
    Legall,
    /// LOCO-I / JPEG-LS-style predictive coder (paper ref \[8]);
    /// inherently lossless — the threshold is ignored.
    Locoi,
}

impl LineCodecKind {
    /// Every codec, in CLI order.
    pub const ALL: [LineCodecKind; 5] = [
        LineCodecKind::Raw,
        LineCodecKind::Haar,
        LineCodecKind::Haar2,
        LineCodecKind::Legall,
        LineCodecKind::Locoi,
    ];

    /// The CLI name (`raw`, `haar`, `haar2`, `legall`, `locoi`).
    pub fn name(self) -> &'static str {
        match self {
            LineCodecKind::Raw => "raw",
            LineCodecKind::Haar => "haar",
            LineCodecKind::Haar2 => "haar2",
            LineCodecKind::Legall => "legall",
            LineCodecKind::Locoi => "locoi",
        }
    }

    /// Parse a CLI name; inverse of [`LineCodecKind::name`].
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.name() == s)
    }

    /// Raw image columns per encoded group (the codec's batching factor).
    pub fn group_width(self) -> usize {
        match self {
            LineCodecKind::Haar => 2,
            LineCodecKind::Haar2 => 4,
            _ => 1,
        }
    }

    /// Whether the threshold has any effect (predictive/raw codecs are
    /// inherently lossless and ignore it).
    pub fn is_lossy_capable(self) -> bool {
        !matches!(self, LineCodecKind::Raw | LineCodecKind::Locoi)
    }

    /// Whether a cycle-level RTL model of this codec's datapath exists
    /// ([`crate::rtl`]). Only the paper's Haar pipeline has one today; the
    /// conformance RTL matrix iterates this hook so that an RTL model added
    /// for another codec is picked up by the differential tests without
    /// touching them.
    pub fn has_rtl_model(self) -> bool {
        matches!(self, LineCodecKind::Haar)
    }

    /// Static management-bit requirement of the buffered span.
    ///
    /// * `raw` stores nothing beyond the pixels;
    /// * `haar` needs the paper's `2×4` NBits + `N` BitMap bits per column;
    /// * `haar2` amortizes ten NBits fields over each 4-column quad plus
    ///   the BitMap (`10 + N` per column);
    /// * `legall` packs two sub-band columns per image column (`8 + N`);
    /// * `locoi` stores one 16-bit record-length field per column.
    pub fn management_bits(self, cfg: &ArchConfig) -> u64 {
        let cols = cfg.fifo_depth() as u64;
        let n = cfg.window as u64;
        match self {
            LineCodecKind::Raw => 0,
            LineCodecKind::Haar => cfg.management_bits(),
            LineCodecKind::Haar2 => cols * (10 + n),
            LineCodecKind::Legall => cols * (8 + n),
            LineCodecKind::Locoi => cols * 16,
        }
    }

    /// Raw bits the same buffered span occupies uncompressed — the
    /// denominator of the paper's Equation 5.
    ///
    /// The traditional architecture physically stores only `N − 1` rows
    /// per column (the bottom row streams straight in), so `raw` spans
    /// `(W−N)×(N−1)×pixel_bits`; the compressed architectures recirculate
    /// whole `N`-pixel columns, spanning `(W−N)×N×pixel_bits`.
    pub fn raw_span_bits(self, cfg: &ArchConfig) -> u64 {
        match self {
            LineCodecKind::Raw => cfg.traditional_buffer_bits(),
            _ => cfg.fifo_depth() as u64 * cfg.window as u64 * cfg.pixel_bits as u64,
        }
    }
}

/// One encoded column group plus its cost accounting.
#[derive(Debug, Clone)]
pub struct EncodedGroup<E> {
    /// The codec's opaque encoded form.
    pub data: E,
    /// Payload bits this group occupies in the memory unit.
    pub payload_bits: u64,
    /// Payload bits attributed to `[LL, LH, HL, HH]` (codecs without a
    /// sub-band structure report everything under the first slot).
    pub per_band_bits: [u64; 4],
}

/// A line-buffer codec: encodes groups of raw columns evicted from the
/// active window into the form that rides the memory unit, and decodes
/// them back into raw columns on exit.
///
/// A codec is a pure column transformer — the generic datapath in
/// [`crate::arch::SlidingWindow`] owns all queueing, occupancy accounting,
/// and trace emission. `encode_group` always receives exactly
/// [`LineCodec::group_width`] columns of `cfg.window` coefficients;
/// `decode_group` must return the same number of columns, each
/// `cfg.window` pixels tall.
pub trait LineCodec {
    /// Coefficient word the codec's datapath carries. Every paper codec is
    /// a [`Coeff`] (i16) instance; the integral-image engine instantiates
    /// the wide i32 word, and the generic datapath in
    /// [`crate::arch::SlidingWindow`] sizes its staging buffers and bit
    /// accounting from `Sample::BITS` instead of a fixed constant.
    type Sample: Sample;

    /// Opaque encoded form of one column group.
    type Encoded;

    /// Build the codec for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration's geometry cannot support the codec
    /// (each implementation documents its requirement).
    fn new(cfg: &ArchConfig) -> Self
    where
        Self: Sized;

    /// The value-level selector this codec implements.
    fn kind(&self) -> LineCodecKind;

    /// Raw columns per encoded group.
    fn group_width(&self) -> usize {
        self.kind().group_width()
    }

    /// Encode one group of raw columns (as coefficients) with full cost
    /// accounting.
    fn encode_group(&mut self, cols: &[Vec<Self::Sample>]) -> EncodedGroup<Self::Encoded>;

    /// Encode one group, optionally reusing the buffers of a retired
    /// encoded record (one that already made its round trip through the
    /// memory unit). Codecs with a sliced hot path overwrite the recycled
    /// record in place instead of allocating a fresh one; the default
    /// simply drops it and delegates to [`LineCodec::encode_group`].
    fn encode_group_reuse(
        &mut self,
        cols: &[Vec<Self::Sample>],
        recycled: Option<Self::Encoded>,
    ) -> EncodedGroup<Self::Encoded> {
        let _ = recycled;
        self.encode_group(cols)
    }

    /// Decode a group back into raw pixel columns, in eviction order,
    /// running the codec's consistency guards: a corrupted encoding
    /// (bit-flipped NBits/BitMap/payload) either trips a guard (`Err`)
    /// or decodes to bounded wrong pixels — never a panic.
    fn try_decode_group(&mut self, enc: &Self::Encoded) -> Result<Vec<Vec<Pixel>>, String>;

    /// Decode a group into a caller-provided container, reusing its
    /// column buffers. Codecs with a sliced hot path fill `out` without
    /// allocating; the default delegates to
    /// [`LineCodec::try_decode_group`] and replaces `out` wholesale.
    ///
    /// # Errors
    ///
    /// Exactly the failures of [`LineCodec::try_decode_group`]; on error
    /// the contents of `out` are unspecified.
    fn try_decode_group_into(
        &mut self,
        enc: &Self::Encoded,
        out: &mut Vec<Vec<Pixel>>,
    ) -> Result<(), String> {
        *out = self.try_decode_group(enc)?;
        Ok(())
    }

    /// Decode a group back into raw pixel columns, in eviction order.
    ///
    /// # Panics
    ///
    /// Panics where [`LineCodec::try_decode_group`] would return `Err`.
    fn decode_group(&mut self, enc: &Self::Encoded) -> Vec<Vec<Pixel>> {
        match self.try_decode_group(enc) {
            Ok(cols) => cols,
            Err(e) => panic!("corrupt {} group: {e}", self.kind().name()),
        }
    }

    /// Flip one deterministic bit of the encoded form (fault injection;
    /// see [`crate::faults`]). The default is a no-op for codecs without
    /// a mutable encoded surface.
    fn corrupt(&self, _enc: &mut Self::Encoded, _site: FaultSite, _bit: u64) {}

    /// Clear any internal state (frame boundary).
    fn reset(&mut self) {}

    /// Attach per-codec telemetry under `prefix` (e.g. `stage.s0`).
    fn bind_telemetry(&mut self, _telemetry: &TelemetryHandle, _prefix: &str) {}
}

/// Flip one bit of an [`EncodedColumn`] at the requested fault site.
///
/// NBits upsets flip a bit of the 4-bit management *field* (which stores
/// `nbits − 1`), exactly as a BRAM bit flip would, so the corrupted width
/// stays in the representable 1..=16 range — it is the payload-length
/// consistency guard, not a range check, that detects it.
fn flip_in_column(col: &mut EncodedColumn, site: FaultSite, bit: u64) {
    match site {
        FaultSite::Payload if !col.payload.is_empty() => {
            let pos = (bit % (col.payload.len() as u64 * 8)) as usize;
            col.payload[pos / 8] ^= 1 << (pos % 8);
        }
        // An empty payload leaves nothing to hit; the upset lands in the
        // adjacent management word instead.
        FaultSite::Payload | FaultSite::Nbits => {
            let field = col.nbits.wrapping_sub(1) & 0xf;
            col.nbits = (field ^ (1 << (bit % u64::from(NBITS_FIELD_BITS)))) + 1;
        }
        FaultSite::Bitmap if !col.bitmap.is_empty() => {
            let pos = (bit % col.bitmap.len() as u64) as usize;
            col.bitmap.set(pos, !col.bitmap.get(pos));
        }
        _ => {}
    }
}

/// Pick the column a fault lands in: a rotation of `bit`'s high half,
/// skipping payload-free columns for payload flips so the fault has
/// something to hit.
fn pick_column(cols: &[&EncodedColumn], site: FaultSite, bit: u64) -> usize {
    let n = cols.len().max(1);
    let start = ((bit >> 32) as usize) % n;
    if site == FaultSite::Payload {
        (0..n)
            .map(|i| (start + i) % n)
            .find(|&i| !cols[i].payload.is_empty())
            .unwrap_or(start)
    } else {
        start
    }
}

/// The no-op codec of the traditional architecture: stores the evicted
/// column's rows `1..N` verbatim (row 0 retires; the hardware's `N − 1`
/// line FIFOs never see it).
#[derive(Debug, Clone)]
pub struct RawCodec {
    window: usize,
    pixel_bits: u32,
}

impl LineCodec for RawCodec {
    type Sample = Coeff;
    type Encoded = Vec<Pixel>;

    fn new(cfg: &ArchConfig) -> Self {
        Self {
            window: cfg.window,
            pixel_bits: cfg.pixel_bits,
        }
    }

    fn kind(&self) -> LineCodecKind {
        LineCodecKind::Raw
    }

    fn encode_group(&mut self, cols: &[Vec<Coeff>]) -> EncodedGroup<Self::Encoded> {
        debug_assert_eq!(cols.len(), 1);
        let data: Vec<Pixel> = cols[0][1..]
            .iter()
            .map(|&c| c.clamp(0, 255) as Pixel)
            .collect();
        let bits = (self.window as u64 - 1) * self.pixel_bits as u64;
        EncodedGroup {
            data,
            payload_bits: bits,
            per_band_bits: [bits, 0, 0, 0],
        }
    }

    fn try_decode_group(&mut self, enc: &Self::Encoded) -> Result<Vec<Vec<Pixel>>, String> {
        if enc.len() != self.window - 1 {
            return Err(format!(
                "raw record holds {} rows, window needs {}",
                enc.len(),
                self.window - 1
            ));
        }
        // Row 0 retired on eviction; the datapath only reads rows 1..N of
        // a delivered column, so slot 0 is a don't-care.
        let mut col = vec![0; self.window];
        col[1..].copy_from_slice(enc);
        Ok(vec![col])
    }

    fn corrupt(&self, enc: &mut Self::Encoded, _site: FaultSite, bit: u64) {
        // Raw storage has no management structure: every site degrades to
        // a pixel bit flip — corruption is bounded, never detectable.
        if enc.is_empty() {
            return;
        }
        let pos = (bit % (enc.len() as u64 * 8)) as usize;
        enc[pos / 8] ^= 1 << (pos % 8);
    }
}

/// The paper's codec: single-level integer Haar over column pairs,
/// details thresholded and clamped per [`crate::config::CoeffMode`], each
/// sub-band column bit-packed via `sw-bitstream` (NBits + BitMap +
/// payload).
#[derive(Debug, Clone)]
pub struct HaarIwtCodec {
    cfg: ArchConfig,
    fwd: ColumnPairTransformer,
    inv: ColumnPairInverse,
    codec: CodecTelemetry,
    /// Sliced-path scratch: clamped detail coefficients.
    clamp: Vec<Coeff>,
    /// Sliced-path scratch: decoded sub-band columns `[LL, LH, HL, HH]`.
    bands: [Vec<Coeff>; 4],
}

impl HaarIwtCodec {
    fn enc(&self, half: &[Coeff], band: SubBand) -> EncodedColumn {
        let t_band = self.cfg.policy.threshold_for(band, self.cfg.threshold);
        if band.is_detail() {
            // The configured datapath width saturates detail coefficients
            // (LL fits any mode: it stays in pixel range).
            let clamped: Vec<Coeff> = half
                .iter()
                .map(|&c| self.cfg.coeff_mode.clamp_detail(c))
                .collect();
            encode_column(&clamped, t_band)
        } else {
            encode_column(half, t_band)
        }
    }

    /// Sliced twin of [`Self::enc`]: encodes into `out` through the
    /// recycled clamp scratch, free of per-call allocation.
    fn enc_sliced(
        cfg: &ArchConfig,
        clamp: &mut Vec<Coeff>,
        half: &[Coeff],
        band: SubBand,
        out: &mut EncodedColumn,
    ) {
        let t_band = cfg.policy.threshold_for(band, cfg.threshold);
        if band.is_detail() && cfg.coeff_mode != crate::config::CoeffMode::Exact {
            clamp.clear();
            clamp.extend(half.iter().map(|&c| cfg.coeff_mode.clamp_detail(c)));
            encode_column_sliced_into(clamp, t_band, out);
        } else {
            encode_column_sliced_into(half, t_band, out);
        }
    }
}

impl LineCodec for HaarIwtCodec {
    type Sample = Coeff;
    /// `[LL, LH, HL, HH]` of one column pair.
    type Encoded = [EncodedColumn; 4];

    fn new(cfg: &ArchConfig) -> Self {
        assert!(
            cfg.width >= cfg.window + 2,
            "compressed architecture needs width >= window + 2"
        );
        Self {
            cfg: *cfg,
            fwd: ColumnPairTransformer::new(cfg.window),
            inv: ColumnPairInverse::new(cfg.window),
            codec: CodecTelemetry::noop(),
            clamp: Vec::new(),
            bands: Default::default(),
        }
    }

    fn kind(&self) -> LineCodecKind {
        LineCodecKind::Haar
    }

    fn encode_group(&mut self, cols: &[Vec<Coeff>]) -> EncodedGroup<Self::Encoded> {
        self.encode_group_reuse(cols, None)
    }

    fn encode_group_reuse(
        &mut self,
        cols: &[Vec<Coeff>],
        recycled: Option<Self::Encoded>,
    ) -> EncodedGroup<Self::Encoded> {
        debug_assert_eq!(cols.len(), 2);
        if self.cfg.hot_path == HotPath::Scalar {
            let none = self.fwd.push_column(&cols[0]);
            debug_assert!(none.is_none());
            let Some(pair) = self.fwd.push_column(&cols[1]) else {
                unreachable!("second column completes the pair")
            };
            let encoded = [
                self.enc(pair.even.first_half(), SubBand::LL),
                self.enc(pair.even.second_half(), SubBand::LH),
                self.enc(pair.odd.first_half(), SubBand::HL),
                self.enc(pair.odd.second_half(), SubBand::HH),
            ];
            let mut per_band = [0u64; 4];
            for (slot, e) in per_band.iter_mut().zip(&encoded) {
                *slot = e.payload_bits;
                self.codec.record_encoded(e);
            }
            return EncodedGroup {
                payload_bits: per_band.iter().sum(),
                per_band_bits: per_band,
                data: encoded,
            };
        }
        let none = self.fwd.push_column_sliced(&cols[0]);
        debug_assert!(none.is_none());
        let Some(pair) = self.fwd.push_column_sliced(&cols[1]) else {
            unreachable!("second column completes the pair")
        };
        let mut encoded = recycled.unwrap_or_default();
        let halves = [
            (pair.even.first_half(), SubBand::LL),
            (pair.even.second_half(), SubBand::LH),
            (pair.odd.first_half(), SubBand::HL),
            (pair.odd.second_half(), SubBand::HH),
        ];
        for ((half, band), out) in halves.into_iter().zip(encoded.iter_mut()) {
            Self::enc_sliced(&self.cfg, &mut self.clamp, half, band, out);
        }
        let mut per_band = [0u64; 4];
        for (slot, e) in per_band.iter_mut().zip(&encoded) {
            *slot = e.payload_bits;
            self.codec.record_encoded(e);
        }
        EncodedGroup {
            payload_bits: per_band.iter().sum(),
            per_band_bits: per_band,
            data: encoded,
        }
    }

    fn try_decode_group(&mut self, enc: &Self::Encoded) -> Result<Vec<Vec<Pixel>>, String> {
        if self.cfg.hot_path != HotPath::Scalar {
            let mut out = Vec::new();
            self.try_decode_group_into(enc, &mut out)?;
            return Ok(out);
        }
        for e in enc {
            self.codec.record_decoded(e);
        }
        let ll = decode_column_checked(&enc[0])?;
        let lh = decode_column_checked(&enc[1])?;
        let hl = decode_column_checked(&enc[2])?;
        let hh = decode_column_checked(&enc[3])?;
        let even = SubbandColumn {
            bands: (SubBand::LL, SubBand::LH),
            coeffs: ll.into_iter().chain(lh).collect(),
        };
        let odd = SubbandColumn {
            bands: (SubBand::HL, SubBand::HH),
            coeffs: hl.into_iter().chain(hh).collect(),
        };
        debug_assert!(!self.inv.has_pending());
        let none = self.inv.push_column(even);
        debug_assert!(none.is_none());
        let Some((c0, c1)) = self.inv.push_column(odd) else {
            unreachable!("pair reconstructs two columns")
        };
        let clamp = |v: Coeff| v.clamp(0, 255) as Pixel;
        Ok(vec![
            c0.into_iter().map(clamp).collect(),
            c1.into_iter().map(clamp).collect(),
        ])
    }

    fn try_decode_group_into(
        &mut self,
        enc: &Self::Encoded,
        out: &mut Vec<Vec<Pixel>>,
    ) -> Result<(), String> {
        if self.cfg.hot_path == HotPath::Scalar {
            *out = self.try_decode_group(enc)?;
            return Ok(());
        }
        for e in enc {
            self.codec.record_decoded(e);
        }
        for (e, buf) in enc.iter().zip(self.bands.iter_mut()) {
            decode_column_sliced_into(e, buf)?;
        }
        let [ll, lh, hl, hh] = &self.bands;
        let (c0, c1) = self.inv.push_quad_sliced(ll, lh, hl, hh);
        out.resize_with(2, Vec::new);
        let clamp = |&v: &Coeff| v.clamp(0, 255) as Pixel;
        out[0].clear();
        out[0].extend(c0.iter().map(clamp));
        out[1].clear();
        out[1].extend(c1.iter().map(clamp));
        Ok(())
    }

    fn corrupt(&self, enc: &mut Self::Encoded, site: FaultSite, bit: u64) {
        let idx = pick_column(&[&enc[0], &enc[1], &enc[2], &enc[3]], site, bit);
        flip_in_column(&mut enc[idx], site, bit);
    }

    fn reset(&mut self) {
        self.fwd.reset();
        self.inv.reset();
    }

    fn bind_telemetry(&mut self, telemetry: &TelemetryHandle, prefix: &str) {
        self.codec = CodecTelemetry::attach(telemetry, prefix);
    }
}

/// Two-level Haar: the LL₁ column stream recurses through a second
/// transformer, so every four image columns complete a quad of six
/// level-1 detail columns plus four level-2 sub-band columns.
///
/// Matching the original two-level architecture, detail coefficients are
/// *not* clamped through [`crate::config::CoeffMode`] (the two-level
/// datapath is modelled wide).
#[derive(Debug, Clone)]
pub struct HaarTwoLevelCodec {
    cfg: ArchConfig,
    l1: ColumnPairTransformer,
    l2: ColumnPairTransformer,
    inv1: ColumnPairInverse,
    inv2: ColumnPairInverse,
    codec: CodecTelemetry,
    /// Sliced-path scratch: the two level-1 LL halves of the quad
    /// (copied out so the level-1 transformer can be reused in between).
    ll_pair: (Vec<Coeff>, Vec<Coeff>),
    /// Sliced-path scratch: decoded sub-band columns (level-2 quad, then
    /// reused per level-1 pair).
    dec_bands: [Vec<Coeff>; 4],
    /// Sliced-path scratch: reconstructed level-1 LL columns.
    dec_ll: (Vec<Coeff>, Vec<Coeff>),
}

impl HaarTwoLevelCodec {
    fn enc(&self, coeffs: &[Coeff], band: SubBand) -> EncodedColumn {
        let t = self.cfg.policy.threshold_for(band, self.cfg.threshold);
        encode_column(coeffs, t)
    }

    fn enc_sliced(cfg: &ArchConfig, coeffs: &[Coeff], band: SubBand, out: &mut EncodedColumn) {
        let t = cfg.policy.threshold_for(band, cfg.threshold);
        encode_column_sliced_into(coeffs, t, out);
    }
}

impl LineCodec for HaarTwoLevelCodec {
    type Sample = Coeff;
    /// Level-1 detail columns `[LH1(c0), HL1(c1), HH1(c1), LH1(c2),
    /// HL1(c3), HH1(c3)]` plus level-2 `[LL2, LH2, HL2, HH2]`.
    type Encoded = ([EncodedColumn; 6], [EncodedColumn; 4]);

    fn new(cfg: &ArchConfig) -> Self {
        assert!(
            cfg.window.is_multiple_of(4) && cfg.window >= 4,
            "two-level decomposition needs a window divisible by 4"
        );
        assert!(
            cfg.width >= cfg.window + 4,
            "two-level architecture needs width >= window + 4"
        );
        Self {
            cfg: *cfg,
            l1: ColumnPairTransformer::new(cfg.window),
            l2: ColumnPairTransformer::new(cfg.window / 2),
            inv1: ColumnPairInverse::new(cfg.window),
            inv2: ColumnPairInverse::new(cfg.window / 2),
            codec: CodecTelemetry::noop(),
            ll_pair: Default::default(),
            dec_bands: Default::default(),
            dec_ll: Default::default(),
        }
    }

    fn kind(&self) -> LineCodecKind {
        LineCodecKind::Haar2
    }

    fn encode_group_reuse(
        &mut self,
        cols: &[Vec<Coeff>],
        recycled: Option<Self::Encoded>,
    ) -> EncodedGroup<Self::Encoded> {
        debug_assert_eq!(cols.len(), 4);
        if self.cfg.hot_path == HotPath::Scalar {
            return self.encode_group(cols);
        }
        let (mut l1e, mut l2e) = recycled.unwrap_or_default();
        // First level-1 pair: encode its detail columns immediately and
        // stash the LL half, freeing the transformer's output for the
        // second pair.
        let none = self.l1.push_column_sliced(&cols[0]);
        debug_assert!(none.is_none());
        let Some(pair_a) = self.l1.push_column_sliced(&cols[1]) else {
            unreachable!("first level-1 pair")
        };
        Self::enc_sliced(
            &self.cfg,
            pair_a.even.second_half(),
            SubBand::LH,
            &mut l1e[0],
        );
        Self::enc_sliced(&self.cfg, pair_a.odd.first_half(), SubBand::HL, &mut l1e[1]);
        Self::enc_sliced(
            &self.cfg,
            pair_a.odd.second_half(),
            SubBand::HH,
            &mut l1e[2],
        );
        self.ll_pair.0.clear();
        self.ll_pair.0.extend_from_slice(pair_a.even.first_half());

        let none = self.l1.push_column_sliced(&cols[2]);
        debug_assert!(none.is_none());
        let Some(pair_b) = self.l1.push_column_sliced(&cols[3]) else {
            unreachable!("second level-1 pair")
        };
        Self::enc_sliced(
            &self.cfg,
            pair_b.even.second_half(),
            SubBand::LH,
            &mut l1e[3],
        );
        Self::enc_sliced(&self.cfg, pair_b.odd.first_half(), SubBand::HL, &mut l1e[4]);
        Self::enc_sliced(
            &self.cfg,
            pair_b.odd.second_half(),
            SubBand::HH,
            &mut l1e[5],
        );
        self.ll_pair.1.clear();
        self.ll_pair.1.extend_from_slice(pair_b.even.first_half());

        let none = self.l2.push_column_sliced(&self.ll_pair.0);
        debug_assert!(none.is_none());
        let Some(pair2) = self.l2.push_column_sliced(&self.ll_pair.1) else {
            unreachable!("level-2 pair")
        };
        Self::enc_sliced(&self.cfg, pair2.even.first_half(), SubBand::LL, &mut l2e[0]);
        Self::enc_sliced(
            &self.cfg,
            pair2.even.second_half(),
            SubBand::LH,
            &mut l2e[1],
        );
        Self::enc_sliced(&self.cfg, pair2.odd.first_half(), SubBand::HL, &mut l2e[2]);
        Self::enc_sliced(&self.cfg, pair2.odd.second_half(), SubBand::HH, &mut l2e[3]);

        let mut per_band = [0u64; 4];
        for (i, e) in l2e.iter().enumerate() {
            per_band[i] += e.payload_bits;
        }
        for (e, band) in l1e.iter().zip([1usize, 2, 3, 1, 2, 3]) {
            per_band[band] += e.payload_bits;
        }
        for e in l1e.iter().chain(&l2e) {
            self.codec.record_encoded(e);
        }
        EncodedGroup {
            payload_bits: per_band.iter().sum(),
            per_band_bits: per_band,
            data: (l1e, l2e),
        }
    }

    fn encode_group(&mut self, cols: &[Vec<Coeff>]) -> EncodedGroup<Self::Encoded> {
        debug_assert_eq!(cols.len(), 4);
        if self.cfg.hot_path != HotPath::Scalar {
            return self.encode_group_reuse(cols, None);
        }
        let none = self.l1.push_column(&cols[0]);
        debug_assert!(none.is_none());
        let Some(pair_a) = self.l1.push_column(&cols[1]) else {
            unreachable!("first level-1 pair")
        };
        let none = self.l1.push_column(&cols[2]);
        debug_assert!(none.is_none());
        let Some(pair_b) = self.l1.push_column(&cols[3]) else {
            unreachable!("second level-1 pair")
        };

        let l1 = [
            self.enc(pair_a.even.second_half(), SubBand::LH),
            self.enc(pair_a.odd.first_half(), SubBand::HL),
            self.enc(pair_a.odd.second_half(), SubBand::HH),
            self.enc(pair_b.even.second_half(), SubBand::LH),
            self.enc(pair_b.odd.first_half(), SubBand::HL),
            self.enc(pair_b.odd.second_half(), SubBand::HH),
        ];
        let none = self.l2.push_column(pair_a.even.first_half());
        debug_assert!(none.is_none());
        let Some(pair2) = self.l2.push_column(pair_b.even.first_half()) else {
            unreachable!("level-2 pair")
        };
        let l2 = [
            self.enc(pair2.even.first_half(), SubBand::LL),
            self.enc(pair2.even.second_half(), SubBand::LH),
            self.enc(pair2.odd.first_half(), SubBand::HL),
            self.enc(pair2.odd.second_half(), SubBand::HH),
        ];

        // Per-band attribution: level-2 columns land in their own band;
        // level-1 details fold into the matching detail band.
        let mut per_band = [0u64; 4];
        for (i, e) in l2.iter().enumerate() {
            per_band[i] += e.payload_bits;
        }
        for (e, band) in l1.iter().zip([1usize, 2, 3, 1, 2, 3]) {
            per_band[band] += e.payload_bits;
        }
        for e in l1.iter().chain(&l2) {
            self.codec.record_encoded(e);
        }
        EncodedGroup {
            payload_bits: per_band.iter().sum(),
            per_band_bits: per_band,
            data: (l1, l2),
        }
    }

    fn try_decode_group_into(
        &mut self,
        enc: &Self::Encoded,
        out: &mut Vec<Vec<Pixel>>,
    ) -> Result<(), String> {
        if self.cfg.hot_path == HotPath::Scalar {
            *out = self.try_decode_group(enc)?;
            return Ok(());
        }
        let (l1, l2) = enc;
        for e in l1.iter().chain(l2.iter()) {
            self.codec.record_decoded(e);
        }
        // Level-2 inverse: recover LL1(c0) and LL1(c2).
        for (e, buf) in l2.iter().zip(self.dec_bands.iter_mut()) {
            decode_column_sliced_into(e, buf)?;
        }
        {
            let [b0, b1, b2, b3] = &self.dec_bands;
            let (a, b) = self.inv2.push_quad_sliced(b0, b1, b2, b3);
            self.dec_ll.0.clear();
            self.dec_ll.0.extend_from_slice(a);
            self.dec_ll.1.clear();
            self.dec_ll.1.extend_from_slice(b);
        }
        // Level-1 inverse for (c0, c1) and (c2, c3), reusing the band
        // scratch for each pair's three detail columns.
        out.resize_with(4, Vec::new);
        for (pair_idx, (lh_i, hl_i, hh_i)) in [(0usize, (0usize, 1, 2)), (1, (3, 4, 5))] {
            decode_column_sliced_into(&l1[lh_i], &mut self.dec_bands[0])?;
            decode_column_sliced_into(&l1[hl_i], &mut self.dec_bands[1])?;
            decode_column_sliced_into(&l1[hh_i], &mut self.dec_bands[2])?;
            let ll1 = if pair_idx == 0 {
                &self.dec_ll.0
            } else {
                &self.dec_ll.1
            };
            let (a, b) = self.inv1.push_quad_sliced(
                ll1,
                &self.dec_bands[0],
                &self.dec_bands[1],
                &self.dec_bands[2],
            );
            let clamp = |&v: &Coeff| v.clamp(0, 255) as Pixel;
            let o = 2 * pair_idx;
            out[o].clear();
            out[o].extend(a.iter().map(clamp));
            out[o + 1].clear();
            out[o + 1].extend(b.iter().map(clamp));
        }
        Ok(())
    }

    fn try_decode_group(&mut self, enc: &Self::Encoded) -> Result<Vec<Vec<Pixel>>, String> {
        if self.cfg.hot_path != HotPath::Scalar {
            let mut out = Vec::new();
            self.try_decode_group_into(enc, &mut out)?;
            return Ok(out);
        }
        let (l1, l2) = enc;
        for e in l1.iter().chain(l2.iter()) {
            self.codec.record_decoded(e);
        }
        // Level-2 inverse: recover LL1(c0) and LL1(c2).
        let even2 = SubbandColumn {
            bands: (SubBand::LL, SubBand::LH),
            coeffs: decode_column_checked(&l2[0])?
                .into_iter()
                .chain(decode_column_checked(&l2[1])?)
                .collect(),
        };
        let odd2 = SubbandColumn {
            bands: (SubBand::HL, SubBand::HH),
            coeffs: decode_column_checked(&l2[2])?
                .into_iter()
                .chain(decode_column_checked(&l2[3])?)
                .collect(),
        };
        debug_assert!(!self.inv2.has_pending());
        let none = self.inv2.push_column(even2);
        debug_assert!(none.is_none());
        let Some((ll1_c0, ll1_c2)) = self.inv2.push_column(odd2) else {
            unreachable!("level-2 pair")
        };

        // Level-1 inverse for (c0, c1) and (c2, c3).
        let mut raws = Vec::with_capacity(4);
        for (ll1, lh_idx, hl_idx, hh_idx) in [(ll1_c0, 0usize, 1, 2), (ll1_c2, 3, 4, 5)] {
            let even1 = SubbandColumn {
                bands: (SubBand::LL, SubBand::LH),
                coeffs: ll1
                    .into_iter()
                    .chain(decode_column_checked(&l1[lh_idx])?)
                    .collect(),
            };
            let odd1 = SubbandColumn {
                bands: (SubBand::HL, SubBand::HH),
                coeffs: decode_column_checked(&l1[hl_idx])?
                    .into_iter()
                    .chain(decode_column_checked(&l1[hh_idx])?)
                    .collect(),
            };
            debug_assert!(!self.inv1.has_pending());
            let none = self.inv1.push_column(even1);
            debug_assert!(none.is_none());
            let Some((a, b)) = self.inv1.push_column(odd1) else {
                unreachable!("level-1 pair")
            };
            let clamp = |v: Coeff| v.clamp(0, 255) as Pixel;
            raws.push(a.into_iter().map(clamp).collect::<Vec<Pixel>>());
            raws.push(b.into_iter().map(clamp).collect::<Vec<Pixel>>());
        }
        Ok(raws)
    }

    fn corrupt(&self, enc: &mut Self::Encoded, site: FaultSite, bit: u64) {
        let (l1, l2) = enc;
        let refs: Vec<&EncodedColumn> = l1.iter().chain(l2.iter()).collect();
        let idx = pick_column(&refs, site, bit);
        let col = if idx < 6 {
            &mut l1[idx]
        } else {
            &mut l2[idx - 6]
        };
        flip_in_column(col, site, bit);
    }

    fn reset(&mut self) {
        self.l1.reset();
        self.l2.reset();
        self.inv1.reset();
        self.inv2.reset();
    }

    fn bind_telemetry(&mut self, telemetry: &TelemetryHandle, prefix: &str) {
        self.codec = CodecTelemetry::attach(telemetry, prefix);
    }
}

/// LeGall 5/3 over single columns: each evicted column splits into a
/// low/high sub-band pair, thresholded like the Haar bands (low band maps
/// to LL — spared under `DetailsOnly` — and high to LH) and bit-packed
/// with the same NBits + BitMap scheme.
#[derive(Debug, Clone)]
pub struct LeGall53Codec {
    cfg: ArchConfig,
    low: Vec<Coeff>,
    high: Vec<Coeff>,
    scratch: Vec<Coeff>,
    codec: CodecTelemetry,
    /// Sliced-path scratch: decoded sub-band columns.
    dec_low: Vec<Coeff>,
    dec_high: Vec<Coeff>,
}

impl LineCodec for LeGall53Codec {
    type Sample = Coeff;
    /// `[low, high]` of one column.
    type Encoded = [EncodedColumn; 2];

    fn new(cfg: &ArchConfig) -> Self {
        let half = cfg.window / 2;
        Self {
            cfg: *cfg,
            low: vec![0; half],
            high: vec![0; half],
            scratch: vec![0; cfg.window],
            codec: CodecTelemetry::noop(),
            dec_low: Vec::new(),
            dec_high: Vec::new(),
        }
    }

    fn kind(&self) -> LineCodecKind {
        LineCodecKind::Legall
    }

    fn encode_group(&mut self, cols: &[Vec<Coeff>]) -> EncodedGroup<Self::Encoded> {
        self.encode_group_reuse(cols, None)
    }

    fn encode_group_reuse(
        &mut self,
        cols: &[Vec<Coeff>],
        recycled: Option<Self::Encoded>,
    ) -> EncodedGroup<Self::Encoded> {
        debug_assert_eq!(cols.len(), 1);
        let sliced = self.cfg.hot_path != HotPath::Scalar;
        if sliced {
            legall53_fwd_sliced(&cols[0], &mut self.low, &mut self.high);
        } else {
            legall53_forward(&cols[0], &mut self.low, &mut self.high);
        }
        let t_low = self
            .cfg
            .policy
            .threshold_for(SubBand::LL, self.cfg.threshold);
        let t_high = self
            .cfg
            .policy
            .threshold_for(SubBand::LH, self.cfg.threshold);
        for c in &mut self.high {
            *c = self.cfg.coeff_mode.clamp_detail(*c);
        }
        let encoded = if sliced {
            let mut encoded = recycled.unwrap_or_default();
            encode_column_sliced_into(&self.low, t_low, &mut encoded[0]);
            encode_column_sliced_into(&self.high, t_high, &mut encoded[1]);
            encoded
        } else {
            [
                encode_column(&self.low, t_low),
                encode_column(&self.high, t_high),
            ]
        };
        for e in &encoded {
            self.codec.record_encoded(e);
        }
        let per_band = [encoded[0].payload_bits, encoded[1].payload_bits, 0, 0];
        EncodedGroup {
            payload_bits: per_band.iter().sum(),
            per_band_bits: per_band,
            data: encoded,
        }
    }

    fn try_decode_group(&mut self, enc: &Self::Encoded) -> Result<Vec<Vec<Pixel>>, String> {
        if self.cfg.hot_path != HotPath::Scalar {
            let mut out = Vec::new();
            self.try_decode_group_into(enc, &mut out)?;
            return Ok(out);
        }
        for e in enc {
            self.codec.record_decoded(e);
        }
        let low = decode_column_checked(&enc[0])?;
        let high = decode_column_checked(&enc[1])?;
        legall53_inverse(&low, &high, &mut self.scratch);
        Ok(vec![self
            .scratch
            .iter()
            .map(|&v| v.clamp(0, 255) as Pixel)
            .collect()])
    }

    fn try_decode_group_into(
        &mut self,
        enc: &Self::Encoded,
        out: &mut Vec<Vec<Pixel>>,
    ) -> Result<(), String> {
        if self.cfg.hot_path == HotPath::Scalar {
            *out = self.try_decode_group(enc)?;
            return Ok(());
        }
        for e in enc {
            self.codec.record_decoded(e);
        }
        decode_column_sliced_into(&enc[0], &mut self.dec_low)?;
        decode_column_sliced_into(&enc[1], &mut self.dec_high)?;
        legall53_inv_sliced(&self.dec_low, &self.dec_high, &mut self.scratch);
        out.resize_with(1, Vec::new);
        out[0].clear();
        out[0].extend(self.scratch.iter().map(|&v| v.clamp(0, 255) as Pixel));
        Ok(())
    }

    fn corrupt(&self, enc: &mut Self::Encoded, site: FaultSite, bit: u64) {
        let idx = pick_column(&[&enc[0], &enc[1]], site, bit);
        flip_in_column(&mut enc[idx], site, bit);
    }

    fn bind_telemetry(&mut self, telemetry: &TelemetryHandle, prefix: &str) {
        self.codec = CodecTelemetry::attach(telemetry, prefix);
    }
}

/// LOCO-I / JPEG-LS-style predictive coder over single columns (MED
/// prediction + context-adaptive Rice codes, see [`sw_bitstream::locoi`]).
///
/// Inherently lossless: the threshold has no effect. Each column is coded
/// as a 1×N image, so the vertical neighbourhood drives the predictor and
/// the per-column context statistics restart — the price of random column
/// retirement from the memory unit.
#[derive(Debug, Clone)]
pub struct LocoIPredictiveCodec {
    window: usize,
}

impl LineCodec for LocoIPredictiveCodec {
    type Sample = Coeff;
    /// The LOCO-I bitstream of one column.
    type Encoded = Vec<u8>;

    fn new(cfg: &ArchConfig) -> Self {
        Self { window: cfg.window }
    }

    fn kind(&self) -> LineCodecKind {
        LineCodecKind::Locoi
    }

    fn encode_group(&mut self, cols: &[Vec<Coeff>]) -> EncodedGroup<Self::Encoded> {
        debug_assert_eq!(cols.len(), 1);
        let col = &cols[0];
        let img = ImageU8::from_fn(1, self.window, |_, y| col[y].clamp(0, 255) as Pixel);
        let data = locoi_encode(&img);
        let bits = data.len() as u64 * 8;
        EncodedGroup {
            data,
            payload_bits: bits,
            per_band_bits: [bits, 0, 0, 0],
        }
    }

    fn try_decode_group(&mut self, enc: &Self::Encoded) -> Result<Vec<Vec<Pixel>>, String> {
        let img = locoi_try_decode(enc, 1, self.window)?;
        Ok(vec![(0..self.window).map(|y| img.get(0, y)).collect()])
    }

    fn corrupt(&self, enc: &mut Self::Encoded, _site: FaultSite, bit: u64) {
        // The LOCO-I stream has no separate management fields: every fault
        // site degrades to a bit flip somewhere in the predictive bitstream.
        if enc.is_empty() {
            return;
        }
        let pos = (bit % (enc.len() as u64 * 8)) as usize;
        enc[pos / 8] ^= 1 << (pos % 8);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: usize, w: usize) -> ArchConfig {
        ArchConfig::new(n, w)
    }

    fn column(n: usize, seed: usize) -> Vec<Coeff> {
        (0..n)
            .map(|i| ((i * 37 + seed * 91 + 13) % 256) as Coeff)
            .collect()
    }

    #[test]
    fn kind_parse_roundtrips() {
        for kind in LineCodecKind::ALL {
            assert_eq!(LineCodecKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(LineCodecKind::parse("huffman"), None);
    }

    #[test]
    fn group_widths() {
        assert_eq!(LineCodecKind::Raw.group_width(), 1);
        assert_eq!(LineCodecKind::Haar.group_width(), 2);
        assert_eq!(LineCodecKind::Haar2.group_width(), 4);
        assert_eq!(LineCodecKind::Legall.group_width(), 1);
        assert_eq!(LineCodecKind::Locoi.group_width(), 1);
    }

    #[test]
    fn raw_codec_roundtrips_rows_1_to_n() {
        let c = cfg(8, 64);
        let mut codec = RawCodec::new(&c);
        let col = column(8, 0);
        let eg = codec.encode_group(std::slice::from_ref(&col));
        assert_eq!(eg.payload_bits, 7 * 8);
        let back = codec.decode_group(&eg.data);
        assert_eq!(back.len(), 1);
        // Rows 1..N round-trip; row 0 is a don't-care (it retired).
        for i in 1..8 {
            assert_eq!(back[0][i] as Coeff, col[i]);
        }
    }

    #[test]
    fn lossless_roundtrip_every_codec() {
        let c = cfg(8, 64);
        let cols: Vec<Vec<Coeff>> = (0..4).map(|i| column(8, i)).collect();
        fn roundtrip<C: LineCodec<Sample = Coeff>>(c: &ArchConfig, cols: &[Vec<Coeff>]) {
            let mut codec = C::new(c);
            let g = codec.group_width();
            let eg = codec.encode_group(&cols[..g]);
            let back = codec.decode_group(&eg.data);
            assert_eq!(back.len(), g);
            for (orig, got) in cols[..g].iter().zip(&back) {
                let as_pixels: Vec<Pixel> = orig.iter().map(|&v| v as Pixel).collect();
                assert_eq!(&as_pixels, got, "{:?}", codec.kind());
            }
        }
        roundtrip::<HaarIwtCodec>(&c, &cols);
        roundtrip::<HaarTwoLevelCodec>(&c, &cols);
        roundtrip::<LeGall53Codec>(&c, &cols);
        roundtrip::<LocoIPredictiveCodec>(&c, &cols);
    }

    #[test]
    fn thresholds_shrink_lossy_capable_codecs() {
        let base = cfg(8, 64);
        let cols: Vec<Vec<Coeff>> = (0..4)
            .map(|i| {
                (0..8)
                    .map(|j| (100 + ((i * 13 + j * 7) % 5)) as Coeff)
                    .collect()
            })
            .collect();
        fn bits<C: LineCodec<Sample = Coeff>>(c: &ArchConfig, cols: &[Vec<Coeff>]) -> u64 {
            let mut codec = C::new(c);
            let g = codec.group_width();
            codec.encode_group(&cols[..g]).payload_bits
        }
        let lossy = base.with_threshold(6);
        assert!(bits::<HaarIwtCodec>(&lossy, &cols) < bits::<HaarIwtCodec>(&base, &cols));
        assert!(
            bits::<HaarTwoLevelCodec>(&lossy, &cols) <= bits::<HaarTwoLevelCodec>(&base, &cols)
        );
        assert!(bits::<LeGall53Codec>(&lossy, &cols) < bits::<LeGall53Codec>(&base, &cols));
        // Inherently lossless codecs ignore the threshold entirely.
        assert_eq!(
            bits::<LocoIPredictiveCodec>(&lossy, &cols),
            bits::<LocoIPredictiveCodec>(&base, &cols)
        );
        assert_eq!(
            bits::<RawCodec>(&lossy, &cols),
            bits::<RawCodec>(&base, &cols)
        );
    }

    #[test]
    fn management_bits_match_module_table() {
        let c = cfg(8, 64);
        let cols = c.fifo_depth() as u64;
        assert_eq!(LineCodecKind::Raw.management_bits(&c), 0);
        assert_eq!(LineCodecKind::Haar.management_bits(&c), c.management_bits());
        assert_eq!(LineCodecKind::Haar2.management_bits(&c), cols * (10 + 8));
        assert_eq!(LineCodecKind::Legall.management_bits(&c), cols * (8 + 8));
        assert_eq!(LineCodecKind::Locoi.management_bits(&c), cols * 16);
    }

    #[test]
    fn raw_span_matches_architecture_footprint() {
        let c = cfg(8, 64);
        assert_eq!(
            LineCodecKind::Raw.raw_span_bits(&c),
            c.traditional_buffer_bits()
        );
        for kind in [
            LineCodecKind::Haar,
            LineCodecKind::Haar2,
            LineCodecKind::Legall,
            LineCodecKind::Locoi,
        ] {
            assert_eq!(kind.raw_span_bits(&c), (64 - 8) * 8 * 8, "{kind:?}");
        }
    }

    #[test]
    #[should_panic(expected = "divisible by 4")]
    fn two_level_rejects_window_6() {
        HaarTwoLevelCodec::new(&cfg(6, 64));
    }
}

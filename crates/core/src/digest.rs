//! Digest hooks for the conformance harness.
//!
//! Golden vectors (the `sw-conformance` crate) pin datapath outputs to
//! 64-bit FNV-1a fingerprints. These helpers define the *canonical byte
//! encoding* of each structure — the part that must never drift once
//! vectors are checked in:
//!
//! * an image digests as `width, height` (as `u64`s) followed by its
//!   pixel rows in raster order, so two images with the same pixel bytes
//!   but different shapes hash differently;
//! * [`FrameStats`] digests as its [`FrameStats::fields`] values in
//!   declaration order, each as a fixed-width little-endian `u64`.

use crate::arch::FrameStats;
use sw_bitstream::digest::Fnv64;
use sw_image::ImageU8;

/// FNV-1a 64 fingerprint of an image: dimensions then raster pixels.
pub fn image_digest(img: &ImageU8) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(img.width() as u64);
    h.write_u64(img.height() as u64);
    h.write(img.pixels());
    h.finish()
}

/// FNV-1a 64 fingerprint of a frame's statistics (field order fixed by
/// [`FrameStats::fields`]).
pub fn stats_digest(stats: &FrameStats) -> u64 {
    let mut h = Fnv64::new();
    for (_, v) in stats.fields() {
        h.write_u64(v);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_digest_separates_shape_from_content() {
        let a = ImageU8::filled(4, 2, 9);
        let b = ImageU8::filled(2, 4, 9);
        assert_ne!(image_digest(&a), image_digest(&b));
        assert_eq!(image_digest(&a), image_digest(&ImageU8::filled(4, 2, 9)));
    }

    #[test]
    fn stats_digest_tracks_every_field() {
        let base = FrameStats {
            cycles: 1,
            payload_bits_total: 2,
            per_band_bits_total: [2, 0, 0, 0],
            peak_payload_occupancy: 3,
            peak_total_occupancy: 4,
            management_bits: 1,
            raw_buffer_bits: 5,
            overflow_events: 0,
            stall_cycles: 0,
            t_escalations: 0,
        };
        let d0 = stats_digest(&base);
        let mut bumped = base;
        bumped.t_escalations = 1;
        assert_ne!(stats_digest(&bumped), d0);
        let mut band = base;
        band.per_band_bits_total = [0, 2, 0, 0];
        assert_ne!(stats_digest(&band), d0);
    }
}

//! Direct (non-streaming) golden model.
//!
//! Computes the sliding-window output by materializing every window — the
//! obviously-correct implementation the streaming architectures are tested
//! against. O(H·W·N²); use on small images.

use crate::kernels::WindowKernel;
use crate::window::ActiveWindow;
use sw_image::ImageU8;

/// Apply `kernel` at every fully-interior window position.
///
/// The output has size `(W − N + 1) × (H − N + 1)`: output `(x, y)`
/// corresponds to the window whose top-left pixel is `(x, y)`.
///
/// # Panics
///
/// Panics if the image is smaller than the kernel's window.
pub fn direct_sliding_window(img: &ImageU8, kernel: &dyn WindowKernel) -> ImageU8 {
    let n = kernel.window_size();
    assert!(
        img.width() >= n && img.height() >= n,
        "image smaller than the window"
    );
    let out_w = img.width() - n + 1;
    let out_h = img.height() - n + 1;
    let mut win = ActiveWindow::new(n);
    let mut out = ImageU8::filled(out_w, out_h, 0);
    let mut column = vec![0u8; n];
    for y in 0..out_h {
        // Prime the window with the first n columns of this strip.
        for x in 0..img.width() {
            for (r, c) in column.iter_mut().enumerate() {
                *c = img.get(x, y + r);
            }
            win.shift(&column);
            if x + 1 >= n {
                out.set(x + 1 - n, y, kernel.apply(&win.view()));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{BoxFilter, Tap};

    #[test]
    fn output_dimensions() {
        let img = ImageU8::filled(20, 12, 5);
        let out = direct_sliding_window(&img, &BoxFilter::new(4));
        assert_eq!((out.width(), out.height()), (17, 9));
    }

    #[test]
    fn tap_reproduces_shifted_image() {
        let img = ImageU8::from_fn(10, 8, |x, y| (x * 10 + y) as u8);
        // Top-left tap: output(x, y) = img(x, y).
        let out = direct_sliding_window(&img, &Tap::top_left(4));
        for y in 0..out.height() {
            for x in 0..out.width() {
                assert_eq!(out.get(x, y), img.get(x, y));
            }
        }
        // Bottom-right tap: output(x, y) = img(x + n - 1, y + n - 1).
        let out = direct_sliding_window(&img, &Tap::bottom_right(4));
        for y in 0..out.height() {
            for x in 0..out.width() {
                assert_eq!(out.get(x, y), img.get(x + 3, y + 3));
            }
        }
    }

    #[test]
    fn box_filter_hand_computed() {
        let img = ImageU8::from_vec(3, 3, vec![0, 4, 8, 12, 16, 20, 24, 28, 32]);
        let out = direct_sliding_window(&img, &BoxFilter::new(2));
        // Windows: [0,4,12,16]=8, [4,8,16,20]=12, [12,16,24,28]=20, [16,20,28,32]=24
        assert_eq!(out.pixels(), &[8, 12, 20, 24]);
    }
}

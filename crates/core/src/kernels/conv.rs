//! Generic convolution kernels: arbitrary N×N weight matrices and the
//! separable fast path. These cover the paper's general claim that the
//! architecture serves any "2D image filter [that] could multiply each
//! pixel in the active window with a corresponding constant in the filter
//! kernel" (Section V).

use super::WindowKernel;
use crate::window::WindowView;

/// Full N×N convolution with arbitrary weights.
#[derive(Debug, Clone)]
pub struct Convolution {
    n: usize,
    weights: Vec<f64>,
    bias: f64,
    name: &'static str,
}

impl Convolution {
    /// Kernel from a row-major weight matrix.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != n * n`.
    pub fn new(n: usize, weights: Vec<f64>, bias: f64) -> Self {
        Self::named(n, weights, bias, "conv")
    }

    fn named(n: usize, weights: Vec<f64>, bias: f64, name: &'static str) -> Self {
        assert!(n >= 2, "window too small");
        assert_eq!(weights.len(), n * n, "weight matrix size mismatch");
        Self {
            n,
            weights,
            bias,
            name,
        }
    }

    /// Unsharp-mask sharpening: identity plus a scaled high-pass.
    pub fn sharpen(n: usize, amount: f64) -> Self {
        let count = (n * n) as f64;
        let mut weights = vec![-amount / count; n * n];
        let center = (n / 2) * n + n / 2;
        weights[center] += 1.0 + amount;
        Self::named(n, weights, 0.0, "sharpen")
    }

    /// Laplacian-of-Gaussian blob detector (difference-of-means
    /// approximation: inner disk positive, outer ring negative), mapped to
    /// mid-gray 128.
    pub fn laplacian_of_gaussian(n: usize) -> Self {
        let c = (n as f64 - 1.0) / 2.0;
        let r_inner = n as f64 / 4.0;
        let mut weights = vec![0.0; n * n];
        let mut inner = 0usize;
        let mut outer = 0usize;
        for y in 0..n {
            for x in 0..n {
                let d = ((x as f64 - c).powi(2) + (y as f64 - c).powi(2)).sqrt();
                if d <= r_inner {
                    inner += 1;
                } else {
                    outer += 1;
                }
            }
        }
        for y in 0..n {
            for x in 0..n {
                let d = ((x as f64 - c).powi(2) + (y as f64 - c).powi(2)).sqrt();
                weights[y * n + x] = if d <= r_inner {
                    1.0 / inner as f64
                } else {
                    -1.0 / outer as f64
                };
            }
        }
        Self::named(n, weights, 128.0, "log")
    }

    /// Emboss (directional derivative) mapped to mid-gray.
    pub fn emboss(n: usize) -> Self {
        let mut weights = vec![0.0; n * n];
        weights[0] = -1.0;
        weights[n * n - 1] = 1.0;
        Self::named(n, weights, 128.0, "emboss")
    }
}

impl WindowKernel for Convolution {
    fn window_size(&self) -> usize {
        self.n
    }

    fn apply(&self, win: &WindowView<'_>) -> u8 {
        debug_assert_eq!(win.n(), self.n);
        let mut acc = self.bias;
        let mut i = 0;
        for r in 0..self.n {
            for c in 0..self.n {
                acc += self.weights[i] * win.get(r, c) as f64;
                i += 1;
            }
        }
        acc.round().clamp(0.0, 255.0) as u8
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

/// Separable convolution: outer product of a column and a row vector,
/// evaluated in O(N²) adds but only 2N multiplies per output.
#[derive(Debug, Clone)]
pub struct SeparableConv {
    col: Vec<f64>,
    row: Vec<f64>,
    bias: f64,
}

impl SeparableConv {
    /// Kernel `col ⊗ row`.
    ///
    /// # Panics
    ///
    /// Panics if the vectors' lengths differ or are < 2.
    pub fn new(col: Vec<f64>, row: Vec<f64>, bias: f64) -> Self {
        assert_eq!(col.len(), row.len(), "separable factors must match");
        assert!(col.len() >= 2, "window too small");
        Self { col, row, bias }
    }

    /// The equivalent full [`Convolution`] (for cross-checking).
    pub fn to_full(&self) -> Convolution {
        let n = self.col.len();
        let mut weights = Vec::with_capacity(n * n);
        for r in 0..n {
            for c in 0..n {
                weights.push(self.col[r] * self.row[c]);
            }
        }
        Convolution::new(n, weights, self.bias)
    }
}

impl WindowKernel for SeparableConv {
    fn window_size(&self) -> usize {
        self.col.len()
    }

    fn apply(&self, win: &WindowView<'_>) -> u8 {
        let n = self.col.len();
        let mut acc = self.bias;
        for r in 0..n {
            let mut row_acc = 0.0;
            for c in 0..n {
                row_acc += self.row[c] * win.get(r, c) as f64;
            }
            acc += self.col[r] * row_acc;
        }
        acc.round().clamp(0.0, 255.0) as u8
    }

    fn name(&self) -> &'static str {
        "separable-conv"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::test_support::window_from_patch;

    #[test]
    fn identity_convolution_is_center_passthrough() {
        let n = 4;
        let mut weights = vec![0.0; 16];
        weights[2 * 4 + 2] = 1.0;
        let k = Convolution::new(n, weights, 0.0);
        let patch: Vec<u8> = (0..16).map(|i| (i * 13) as u8).collect();
        let w = window_from_patch(n, &patch);
        assert_eq!(k.apply(&w.view()), patch[10]);
    }

    #[test]
    fn sharpen_preserves_flat_and_boosts_peaks() {
        let k = Convolution::sharpen(4, 1.0);
        let flat = window_from_patch(4, &[90; 16]);
        assert_eq!(k.apply(&flat.view()), 90);
        let mut spiky = vec![90u8; 16];
        spiky[2 * 4 + 2] = 140;
        let w = window_from_patch(4, &spiky);
        assert!(k.apply(&w.view()) > 140, "peak must be amplified");
    }

    #[test]
    fn log_responds_to_blobs_not_flats() {
        let k = Convolution::laplacian_of_gaussian(8);
        let flat = window_from_patch(8, &[70; 64]);
        assert_eq!(k.apply(&flat.view()), 128, "flat maps to mid-gray");
        // Bright centered blob.
        let blob: Vec<u8> = (0..64)
            .map(|i| {
                let (x, y) = (i % 8, i / 8);
                let d2 = (x - 3i32).pow(2) + (y - 3i32).pow(2);
                if d2 <= 4 {
                    220
                } else {
                    40
                }
            })
            .collect();
        let w = window_from_patch(8, &blob);
        assert!(k.apply(&w.view()) > 180, "blob must excite LoG");
    }

    #[test]
    fn separable_matches_full() {
        let col = vec![0.25, 0.5, 0.25, 0.1];
        let row = vec![0.1, 0.4, 0.4, 0.1];
        let sep = SeparableConv::new(col, row, 3.0);
        let full = sep.to_full();
        let mut state = 5u32;
        for _ in 0..20 {
            let patch: Vec<u8> = (0..16)
                .map(|_| {
                    state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                    (state >> 24) as u8
                })
                .collect();
            let w = window_from_patch(4, &patch);
            assert_eq!(sep.apply(&w.view()), full.apply(&w.view()));
        }
    }

    #[test]
    fn emboss_flat_is_midgray() {
        let k = Convolution::emboss(4);
        let w = window_from_patch(4, &[200; 16]);
        assert_eq!(k.apply(&w.view()), 128);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn weight_matrix_size_checked() {
        Convolution::new(4, vec![0.0; 15], 0.0);
    }
}

//! Texture descriptors: census transform and local binary patterns — the
//! stereo/feature workloads that motivate *large* sliding windows on FPGAs
//! (census windows grow with disparity range, which is exactly the BRAM
//! pressure the paper addresses).

use super::WindowKernel;
use crate::window::WindowView;

/// Census transform: an 8-bit signature comparing the window center against
/// eight ring samples at the window's quarter radius.
///
/// Bigger windows give wider rings and more robust signatures — the
/// classic reason census stereo pipelines want windows the paper's
/// traditional architecture cannot afford.
#[derive(Debug, Clone)]
pub struct CensusTransform {
    n: usize,
}

impl CensusTransform {
    /// Census over an `n × n` window (n ≥ 4).
    pub fn new(n: usize) -> Self {
        assert!(n >= 4, "census needs at least a 4-pixel window");
        Self { n }
    }

    /// The eight ring sample offsets (dr, dc) at quarter radius.
    fn ring(&self) -> [(isize, isize); 8] {
        let r = (self.n / 4).max(1) as isize;
        [
            (-r, -r),
            (-r, 0),
            (-r, r),
            (0, r),
            (r, r),
            (r, 0),
            (r, -r),
            (0, -r),
        ]
    }
}

impl WindowKernel for CensusTransform {
    fn window_size(&self) -> usize {
        self.n
    }

    fn apply(&self, win: &WindowView<'_>) -> u8 {
        let c = (self.n / 2) as isize;
        let center = win.get(c as usize, c as usize);
        let mut sig = 0u8;
        for (bit, (dr, dc)) in self.ring().into_iter().enumerate() {
            let v = win.get((c + dr) as usize, (c + dc) as usize);
            if v > center {
                sig |= 1 << bit;
            }
        }
        sig
    }

    fn name(&self) -> &'static str {
        "census"
    }
}

/// Classic 3×3 local binary pattern around the window center.
#[derive(Debug, Clone)]
pub struct LocalBinaryPattern {
    n: usize,
}

impl LocalBinaryPattern {
    /// LBP within an `n × n` window (n ≥ 4 so the center has a full 3×3
    /// neighbourhood).
    pub fn new(n: usize) -> Self {
        assert!(n >= 4, "LBP needs at least a 4-pixel window");
        Self { n }
    }
}

impl WindowKernel for LocalBinaryPattern {
    fn window_size(&self) -> usize {
        self.n
    }

    fn apply(&self, win: &WindowView<'_>) -> u8 {
        let c = self.n / 2;
        let center = win.get(c, c);
        // Clockwise from top-left, the standard LBP ordering.
        let offsets: [(isize, isize); 8] = [
            (-1, -1),
            (-1, 0),
            (-1, 1),
            (0, 1),
            (1, 1),
            (1, 0),
            (1, -1),
            (0, -1),
        ];
        let mut code = 0u8;
        for (bit, (dr, dc)) in offsets.into_iter().enumerate() {
            let v = win.get((c as isize + dr) as usize, (c as isize + dc) as usize);
            if v >= center {
                code |= 1 << bit;
            }
        }
        code
    }

    fn name(&self) -> &'static str {
        "lbp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::test_support::window_from_patch;

    #[test]
    fn census_flat_is_zero() {
        let w = window_from_patch(8, &[55; 64]);
        assert_eq!(CensusTransform::new(8).apply(&w.view()), 0);
    }

    #[test]
    fn census_detects_bright_above() {
        // Rows above center bright, below dark: the three top ring samples
        // (bits 0..=2) fire.
        let patch: Vec<u8> = (0..64).map(|i| if i / 8 < 4 { 200 } else { 20 }).collect();
        let w = window_from_patch(8, &patch);
        let sig = CensusTransform::new(8).apply(&w.view());
        assert_eq!(sig & 0b0000_0111, 0b0000_0111, "top samples set: {sig:08b}");
        assert_eq!(sig & 0b0111_0000, 0, "bottom samples clear: {sig:08b}");
    }

    #[test]
    fn census_is_illumination_invariant() {
        // Adding a constant offset must not change the signature.
        let base: Vec<u8> = (0..64).map(|i| ((i * 23) % 140) as u8).collect();
        let brighter: Vec<u8> = base.iter().map(|&p| p + 100).collect();
        let k = CensusTransform::new(8);
        let a = k.apply(&window_from_patch(8, &base).view());
        let b = k.apply(&window_from_patch(8, &brighter).view());
        assert_eq!(a, b);
    }

    #[test]
    fn lbp_flat_is_all_ones() {
        // >= comparison: equal neighbours set every bit.
        let w = window_from_patch(4, &[99; 16]);
        assert_eq!(LocalBinaryPattern::new(4).apply(&w.view()), 0xff);
    }

    #[test]
    fn lbp_dark_neighbours_clear_bits() {
        let mut patch = vec![10u8; 16];
        patch[2 * 4 + 2] = 200; // bright center at (2, 2)
        let w = window_from_patch(4, &patch);
        assert_eq!(LocalBinaryPattern::new(4).apply(&w.view()), 0);
    }
}
